#include <gtest/gtest.h>

#include <regex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "table/plan.h"
#include "table/vec_ops.h"
#include "util/thread_pool.h"

namespace mde {
namespace {

using obs::Registry;
using obs::Tracer;

// ---------------------------------------------------------------------------
// Metrics: concurrent correctness (run under TSan in CI).
// ---------------------------------------------------------------------------

TEST(ObsMetricsTest, ConcurrentCounterHammeringIsExact) {
  obs::Counter* c = Registry::Global().counter("test.hammer_counter");
  const uint64_t before = c->Value();
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c->Add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->Value() - before, kThreads * kPerThread);
}

TEST(ObsMetricsTest, ConcurrentHistogramHammeringIsExact) {
  obs::Histogram* h = Registry::Global().histogram(
      "test.hammer_histogram", {1.0, 10.0, 100.0});
  const uint64_t before = h->Count();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h] {
      for (int i = 0; i < kPerThread; ++i) {
        h->Observe(static_cast<double>(i % 4) * 50.0);  // 0, 50, 100, 150
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h->Count() - before, uint64_t{kThreads * kPerThread});
  // 0 -> bucket[0] (<=1), 50 -> bucket[2] (<=100), 100 -> bucket[2],
  // 150 -> bucket[3] (+inf). Per thread: 1250 each of the four values.
  const std::vector<uint64_t> buckets = h->BucketCounts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], uint64_t{kThreads * 1250});
  EXPECT_EQ(buckets[1], 0u);
  EXPECT_EQ(buckets[2], uint64_t{kThreads * 2500});
  EXPECT_EQ(buckets[3], uint64_t{kThreads * 1250});
  const double sum = static_cast<double>(kThreads) * 1250.0 * (50 + 100 + 150);
  EXPECT_DOUBLE_EQ(h->Sum(), sum + 0.0);  // before==0 on first registration
}

TEST(ObsMetricsTest, GaugeHoldsLastWrite) {
  obs::Gauge* g = Registry::Global().gauge("test.gauge");
  g->Set(3.25);
  EXPECT_DOUBLE_EQ(g->Value(), 3.25);
  g->Set(-7.5);
  EXPECT_DOUBLE_EQ(g->Value(), -7.5);
}

TEST(ObsMetricsTest, RegistryReturnsStablePointersAndSnapshots) {
  obs::Counter* a = Registry::Global().counter("test.stable");
  obs::Counter* b = Registry::Global().counter("test.stable");
  EXPECT_EQ(a, b);
  a->Add(5);
  bool found = false;
  for (const auto& m : Registry::Global().Snapshot()) {
    if (m.name == "test.stable") {
      found = true;
      EXPECT_EQ(m.kind, obs::MetricSnapshot::Kind::kCounter);
      EXPECT_GE(m.value, 5.0);
    }
  }
  EXPECT_TRUE(found);
  EXPECT_NE(Registry::Global().TextDump().find("test.stable"),
            std::string::npos);
}

/// Enables tracing for one test body and restores the disabled default.
class ScopedTracing {
 public:
  ScopedTracing() {
    Tracer::Global().Clear();
    Tracer::Global().Enable();
  }
  ~ScopedTracing() {
    Tracer::Global().Disable();
    Tracer::Global().Clear();
  }
};

// The next block of metric/trace tests asserts the side effects of the
// MDE_OBS_* / MDE_TRACE_SPAN macros, which compile to nothing under
// MDE_OBS_DISABLED — the direct-API tests above cover that configuration.
#ifndef MDE_OBS_DISABLED

TEST(ObsMetricsTest, EngineCountersPopulateFromVecKernels) {
  table::Table t{table::Schema(
      {{"id", table::DataType::kInt64}, {"x", table::DataType::kDouble}})};
  for (int64_t i = 0; i < 100; ++i) {
    t.Append({table::Value(i), table::Value(static_cast<double>(i))});
  }
  obs::Counter* in = Registry::Global().counter("vec.filter.rows_in");
  obs::Counter* out = Registry::Global().counter("vec.filter.rows_out");
  const uint64_t in_before = in->Value();
  const uint64_t out_before = out->Value();
  auto cols = t.ToColumnar().value();
  auto sel = table::VecFilter(*cols, nullptr, "x", table::CmpOp::kLt,
                              table::Value(50.0), nullptr);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(in->Value() - in_before, 100u);
  EXPECT_EQ(out->Value() - out_before, 50u);
}

// ---------------------------------------------------------------------------
// Tracing: span nesting, ring behavior, export formats.
// ---------------------------------------------------------------------------

TEST(ObsTraceTest, DisabledTracerRecordsNothing) {
  Tracer::Global().Clear();
  ASSERT_FALSE(Tracer::Global().enabled());
  {
    MDE_TRACE_SPAN("test.should_not_appear");
  }
  EXPECT_TRUE(Tracer::Global().Collect().empty());
}

TEST(ObsTraceTest, SpanNestingDepthAndContainment) {
  ScopedTracing tracing;
  {
    MDE_TRACE_SPAN("test.outer");
    {
      MDE_TRACE_SPAN("test.inner");
    }
  }
  const std::vector<obs::TraceEvent> events = Tracer::Global().Collect();
  ASSERT_EQ(events.size(), 2u);
  // Collect sorts by start time: outer opened first.
  const obs::TraceEvent& outer = events[0];
  const obs::TraceEvent& inner = events[1];
  EXPECT_STREQ(outer.name, "test.outer");
  EXPECT_STREQ(inner.name, "test.inner");
  EXPECT_EQ(outer.depth, 0u);
  EXPECT_EQ(inner.depth, 1u);
  EXPECT_EQ(outer.tid, inner.tid);
  // Temporal containment: inner lies within outer.
  EXPECT_GE(inner.ts_ns, outer.ts_ns);
  EXPECT_LE(inner.ts_ns + inner.dur_ns, outer.ts_ns + outer.dur_ns);
}

TEST(ObsTraceTest, ConcurrentSpansLandInDistinctThreadBuffers) {
  ScopedTracing tracing;
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        MDE_TRACE_SPAN("test.mt_span");
      }
    });
  }
  for (auto& t : threads) t.join();
  const std::vector<obs::TraceEvent> events = Tracer::Global().Collect();
  EXPECT_EQ(events.size(), size_t{kThreads * kSpansPerThread});
}

TEST(ObsTraceTest, RingKeepsNewestEventsOnOverflow) {
  ScopedTracing tracing;
  const uint64_t dropped_before = Tracer::Global().dropped();
  for (size_t i = 0; i < Tracer::kRingCapacity + 100; ++i) {
    MDE_TRACE_SPAN("test.overflow");
  }
  const std::vector<obs::TraceEvent> events = Tracer::Global().Collect();
  EXPECT_EQ(events.size(), Tracer::kRingCapacity);
  EXPECT_GE(Tracer::Global().dropped() - dropped_before, 100u);
  // Retained events are the newest: strictly increasing start times, and
  // the last event closed after every retained start.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].ts_ns, events[i - 1].ts_ns);
  }
}

TEST(ObsTraceTest, ChromeTraceJsonShape) {
  ScopedTracing tracing;
  {
    MDE_TRACE_SPAN("test.json_span");
  }
  const std::string json = Tracer::Global().ChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("test.json_span"), std::string::npos);
  // Valid even when empty.
  Tracer::Global().Clear();
  const std::string empty = Tracer::Global().ChromeTraceJson();
  EXPECT_NE(empty.find("\"traceEvents\""), std::string::npos);
}

TEST(ObsTraceTest, FlameSummarySeparatesSelfFromInclusive) {
  ScopedTracing tracing;
  {
    MDE_TRACE_SPAN("test.flame_outer");
    MDE_TRACE_SPAN("test.flame_inner");
  }
  const std::string flame = Tracer::Global().FlameSummary();
  EXPECT_NE(flame.find("test.flame_outer"), std::string::npos);
  EXPECT_NE(flame.find("test.flame_inner"), std::string::npos);
}

#endif  // MDE_OBS_DISABLED

// ---------------------------------------------------------------------------
// ThreadPool worker stats.
// ---------------------------------------------------------------------------

TEST(ObsPoolTest, WorkerStatsCountExecutedTasks) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1); });
  }
  pool.WaitAll();
  EXPECT_EQ(ran.load(), 50);
  const auto stats = pool.WorkerStatsSnapshot();
  ASSERT_EQ(stats.size(), 3u);
  uint64_t total = 0;
  for (const auto& w : stats) total += w.tasks_executed;
  EXPECT_EQ(total, 50u);
}

// ---------------------------------------------------------------------------
// EXPLAIN ANALYZE.
// ---------------------------------------------------------------------------

table::Table OrdersTable() {
  table::Table t{table::Schema({{"oid", table::DataType::kInt64},
                                {"cid", table::DataType::kInt64},
                                {"amount", table::DataType::kDouble}})};
  for (int64_t o = 0; o < 1000; ++o) {
    t.Append({table::Value(o), table::Value(o % 100),
              table::Value(10.0 + static_cast<double>(o % 7))});
  }
  return t;
}

table::Table CustomersTable() {
  table::Table t{table::Schema({{"cid", table::DataType::kInt64},
                                {"region", table::DataType::kString}})};
  for (int64_t c = 0; c < 100; ++c) {
    t.Append({table::Value(c), table::Value(c % 4 == 0 ? "EAST" : "WEST")});
  }
  return t;
}

/// Replaces the run-dependent values (wall/self times, cardinality
/// estimates — which shift as catalog feedback accumulates) so the rest of
/// the output is golden-comparable.
std::string NormalizeTimes(const std::string& s) {
  std::string out = std::regex_replace(
      s, std::regex("(time|self)=[0-9.]+[a-z]+"), "$1=X");
  return std::regex_replace(out, std::regex("est=[0-9]+"), "est=E");
}

TEST(ObsExplainAnalyzeTest, ThreeNodePlanReportsRowsAndTime) {
  table::Table orders = OrdersTable();
  table::PlanPtr plan = table::PlanNode::Project(
      table::PlanNode::Filter(table::PlanNode::Scan(&orders, "orders"),
                              {{"amount", table::CmpOp::kGt,
                                table::Value(14.0)}}),
      {"oid", "amount"});
  table::ExecutionStats stats;
  auto result = table::ExecutePlan(plan, &stats);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(stats.nodes.size(), 3u);  // Project, Filter, Scan (pre-order)
  // Inclusive times nest: parent >= child.
  EXPECT_GE(stats.nodes[0].wall_ns, stats.nodes[1].wall_ns);
  EXPECT_GE(stats.nodes[1].wall_ns, stats.nodes[2].wall_ns);
  EXPECT_EQ(stats.nodes[2].rows_out, 1000u);                     // Scan
  EXPECT_EQ(stats.nodes[1].rows_out, result.value().num_rows());  // Filter
  EXPECT_EQ(stats.nodes[0].rows_out, result.value().num_rows());  // Project
  EXPECT_TRUE(stats.nodes[0].vectorized);

  const std::string analyzed =
      NormalizeTimes(table::ExplainAnalyze(plan, stats));
  const std::string expected =
      "Project(oid, amount) [rows=" +
      std::to_string(result.value().num_rows()) +
      " est=E time=X self=X chunks=1 vec]\n"
      "  Filter(amount > 14.000000) [rows=" +
      std::to_string(result.value().num_rows()) +
      " est=E time=X self=X chunks=1 vec]\n"
      "    Scan(orders) [rows=1000 est=E time=X self=X chunks=1 vec]\n";
  EXPECT_EQ(analyzed, expected);
}

TEST(ObsExplainAnalyzeTest, JoinPlanProfilesAllNodes) {
  table::Table orders = OrdersTable();
  table::Table customers = CustomersTable();
  table::PlanPtr plan = table::PlanNode::Filter(
      table::PlanNode::Join(table::PlanNode::Scan(&orders, "orders"),
                            table::PlanNode::Scan(&customers, "customers"),
                            {"cid"}, {"cid"}),
      {{"region", table::CmpOp::kEq, table::Value("EAST")}});
  table::ExecutionStats stats;
  auto result = table::ExecutePlan(plan, &stats);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(stats.nodes.size(), 4u);  // Filter, Join, Scan, Scan
  EXPECT_EQ(stats.nodes[2].rows_out, 1000u);  // left scan (pre-order)
  EXPECT_EQ(stats.nodes[3].rows_out, 100u);   // right scan
  EXPECT_EQ(stats.nodes[1].rows_out, 1000u);  // join: every order matches
  const std::string analyzed = table::ExplainAnalyze(plan, stats);
  EXPECT_EQ(analyzed.find("[no profile]"), std::string::npos);
}

TEST(ObsExplainAnalyzeTest, RowPathParityWithVecPath) {
  table::Table orders = OrdersTable();
  table::PlanPtr plan = table::PlanNode::Project(
      table::PlanNode::Filter(table::PlanNode::Scan(&orders, "orders"),
                              {{"amount", table::CmpOp::kGt,
                                table::Value(14.0)}}),
      {"oid", "amount"});
  table::ExecutionStats vec_stats, row_stats;
  auto vec = table::ExecutePlan(plan, &vec_stats);
  auto row = table::internal::ExecutePlanRowPath(plan, &row_stats);
  ASSERT_TRUE(vec.ok());
  ASSERT_TRUE(row.ok());
  // Identical results...
  EXPECT_EQ(vec.value().ToString(2000), row.value().ToString(2000));
  // ...and identical per-node cardinalities at identical pre-order indices.
  ASSERT_EQ(vec_stats.nodes.size(), row_stats.nodes.size());
  for (size_t i = 0; i < vec_stats.nodes.size(); ++i) {
    EXPECT_EQ(vec_stats.nodes[i].rows_out, row_stats.nodes[i].rows_out)
        << "node " << i;
    EXPECT_TRUE(vec_stats.nodes[i].vectorized);
    EXPECT_FALSE(row_stats.nodes[i].vectorized);
  }
  EXPECT_EQ(vec_stats.rows_scanned, row_stats.rows_scanned);
  EXPECT_EQ(vec_stats.intermediate_rows, row_stats.intermediate_rows);
  // Row-path EXPLAIN ANALYZE tags nodes with the row marker.
  EXPECT_NE(table::ExplainAnalyze(plan, row_stats).find(" row]"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Determinism: obs enabled must not perturb engine output across pools.
// ---------------------------------------------------------------------------

TEST(ObsDeterminismTest, TracedPlanExecutionIsBitIdenticalAcrossPools) {
  ScopedTracing tracing;
  table::Table orders = OrdersTable();
  table::Table customers = CustomersTable();
  table::PlanPtr plan = table::PlanNode::Filter(
      table::PlanNode::Join(table::PlanNode::Scan(&orders, "orders"),
                            table::PlanNode::Scan(&customers, "customers"),
                            {"cid"}, {"cid"}),
      {{"region", table::CmpOp::kEq, table::Value("EAST")},
       {"amount", table::CmpOp::kGt, table::Value(12.0)}});

  table::SetVecPool(nullptr);  // serial
  table::ExecutionStats serial_stats;
  const std::string serial =
      table::ExecutePlan(plan, &serial_stats).value().ToString(5000);

  for (size_t threads : {2u, 8u}) {
    ThreadPool pool(threads);
    table::SetVecPool(&pool);
    table::ExecutionStats stats;
    auto result = table::ExecutePlan(plan, &stats);
    table::SetVecPool(nullptr);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().ToString(5000), serial)
        << "threads=" << threads;
    ASSERT_EQ(stats.nodes.size(), serial_stats.nodes.size());
    for (size_t i = 0; i < stats.nodes.size(); ++i) {
      EXPECT_EQ(stats.nodes[i].rows_out, serial_stats.nodes[i].rows_out);
    }
  }
}

}  // namespace
}  // namespace mde
