/// End-to-end reproduction of the MCDB-R threshold query from Section 2.1:
/// "Which regions will see more than a 2% decline in sales with at least
/// 50% probability?" — regions with stochastic per-store sales, evaluated
/// with the tuple-bundle executor and the grouped threshold estimator.

#include <cmath>

#include <gtest/gtest.h>

#include "mcdb/bundle.h"
#include "mcdb/estimators.h"
#include "mcdb/mcdb.h"
#include "mcdb/vg_function.h"

namespace mde::mcdb {
namespace {

using table::DataType;
using table::Row;
using table::Schema;
using table::Table;
using table::Value;

/// Stores table: region + per-store baseline sales + a drift parameter.
/// Sales next quarter ~ Normal(baseline * (1 + drift), noise). The WEST
/// region is given a strongly negative drift, EAST a flat one.
MonteCarloDb MakeSalesDb(size_t stores_per_region) {
  MonteCarloDb db;
  Table stores{Schema({{"sid", DataType::kInt64},
                       {"region", DataType::kString},
                       {"baseline", DataType::kDouble},
                       {"drift", DataType::kDouble}})};
  Rng rng(3);
  int64_t sid = 0;
  for (const char* region : {"EAST", "WEST", "NORTH"}) {
    const double drift = region[0] == 'W' ? -0.05
                         : region[0] == 'N' ? -0.021
                                            : 0.0;
    for (size_t s = 0; s < stores_per_region; ++s) {
      stores.Append({Value(sid++), Value(region),
                     Value(100.0 + 10.0 * rng.NextDouble()),
                     Value(drift)});
    }
  }
  EXPECT_TRUE(db.AddTable("STORES", std::move(stores)).ok());

  StochasticTableSpec sales;
  sales.name = "NEXT_SALES";
  sales.outer_table = "STORES";
  sales.vg = std::make_shared<NormalVg>();
  sales.param_binder = [](const Row& store, const DatabaseInstance&)
      -> Result<Row> {
    const double mean = store[2].AsDouble() * (1.0 + store[3].AsDouble());
    return Row{Value(mean), Value(1.5)};
  };
  sales.output_schema = Schema({{"sid", DataType::kInt64},
                                {"region", DataType::kString},
                                {"sales", DataType::kDouble}});
  sales.projector = [](const Row& store, const Row& vg) {
    return Row{store[0], store[1], vg[0]};
  };
  EXPECT_TRUE(db.AddStochasticTable(std::move(sales)).ok());
  return db;
}

TEST(ThresholdQueryTest, RegionsDecliningWithHighProbability) {
  MonteCarloDb db = MakeSalesDb(40);
  const size_t reps = 300;
  auto bundles =
      GenerateBundles(db, db.stochastic_specs()[0], "sales", reps, 11)
          .value();
  // Grouped per-repetition totals.
  auto grouped = bundles.GroupSum("region", "sales");
  ASSERT_TRUE(grouped.ok());
  ASSERT_EQ(grouped.value().size(), 3u);

  // Baselines per region (deterministic).
  const table::Table* stores = db.FindTable("STORES");
  std::map<std::string, double> baseline_total;
  for (const Row& r : stores->rows()) {
    baseline_total[r[1].AsString()] += r[2].AsDouble();
  }

  // Convert to per-repetition decline fractions; ask which regions decline
  // > 2% with >= 50% probability.
  std::vector<GroupSamples> declines;
  for (const auto& g : grouped.value()) {
    GroupSamples d;
    d.group = g.group;
    const double base = baseline_total.at(g.group);
    for (double total : g.sums) {
      d.samples.push_back((base - total) / base);  // decline fraction
    }
    declines.push_back(std::move(d));
  }
  auto hits = GroupsExceedingThreshold(declines, 0.02, 0.5);
  ASSERT_TRUE(hits.ok());
  // WEST (-5% drift) certainly; NORTH (-2.1%) sits just past the line;
  // EAST (flat) must not appear.
  ASSERT_FALSE(hits.value().empty());
  for (const auto& region : hits.value()) {
    EXPECT_NE(region, "EAST");
  }
  EXPECT_NE(std::find(hits.value().begin(), hits.value().end(), "WEST"),
            hits.value().end());
}

TEST(ThresholdQueryTest, GroupSumMatchesUngroupedTotal) {
  MonteCarloDb db = MakeSalesDb(10);
  auto bundles =
      GenerateBundles(db, db.stochastic_specs()[0], "sales", 50, 13)
          .value();
  auto grouped = bundles.GroupSum("region", "sales").value();
  auto total = bundles.AggregateSum("sales").value();
  for (size_t rep = 0; rep < 50; ++rep) {
    double sum = 0.0;
    for (const auto& g : grouped) sum += g.sums[rep];
    EXPECT_NEAR(sum, total[rep], 1e-9);
  }
}

TEST(ThresholdQueryTest, GroupSumUnknownColumnsError) {
  MonteCarloDb db = MakeSalesDb(5);
  auto bundles =
      GenerateBundles(db, db.stochastic_specs()[0], "sales", 10, 17)
          .value();
  EXPECT_FALSE(bundles.GroupSum("nope", "sales").ok());
  EXPECT_FALSE(bundles.GroupSum("region", "nope").ok());
}

}  // namespace
}  // namespace mde::mcdb
