#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "doe/designs.h"
#include "doe/main_effects.h"
#include "util/distributions.h"
#include "util/rng.h"

namespace mde::doe {
namespace {

TEST(FullFactorialTest, AllCombinations) {
  linalg::Matrix d = FullFactorial(3);
  EXPECT_EQ(d.rows(), 8u);
  EXPECT_EQ(d.cols(), 3u);
  std::set<std::vector<double>> rows;
  for (size_t r = 0; r < 8; ++r) {
    rows.insert({d(r, 0), d(r, 1), d(r, 2)});
  }
  EXPECT_EQ(rows.size(), 8u);
  EXPECT_DOUBLE_EQ(MaxColumnCorrelation(d), 0.0);
}

TEST(Figure3Test, ReproducesPaperDesignExactly) {
  // Figure 3 of the paper: the 2^{7-4}_III design, 8 runs x 7 factors.
  const double expected[8][7] = {
      {-1, -1, -1, 1, 1, 1, -1}, {1, -1, -1, -1, -1, 1, 1},
      {-1, 1, -1, -1, 1, -1, 1}, {1, 1, -1, 1, -1, -1, -1},
      {-1, -1, 1, 1, -1, -1, 1}, {1, -1, 1, -1, 1, -1, -1},
      {-1, 1, 1, -1, -1, 1, -1}, {1, 1, 1, 1, 1, 1, 1}};
  linalg::Matrix d = Resolution3Design7Factors();
  ASSERT_EQ(d.rows(), 8u);
  ASSERT_EQ(d.cols(), 7u);
  for (size_t r = 0; r < 8; ++r) {
    for (size_t c = 0; c < 7; ++c) {
      EXPECT_DOUBLE_EQ(d(r, c), expected[r][c])
          << "run " << r + 1 << " factor " << c + 1;
    }
  }
  // Orthogonal columns, as the paper notes.
  EXPECT_DOUBLE_EQ(MaxColumnCorrelation(d), 0.0);
}

TEST(FractionalFactorialTest, ResolutionComputation) {
  // 2^{7-4}_III: generators of length 2 and 3 -> resolution III.
  EXPECT_EQ(DesignResolution(3, {{0, 1}, {0, 2}, {1, 2}, {0, 1, 2}}), 3u);
  // 2^{8-4}_IV: all generators are 3-factor words -> resolution IV.
  EXPECT_EQ(DesignResolution(4, {{0, 1, 2}, {0, 1, 3}, {0, 2, 3}, {1, 2, 3}}),
            4u);
  // 2^{7-2} with 4-factor generator words -> resolution IV.
  EXPECT_EQ(DesignResolution(5, {{0, 1, 2, 3}, {0, 1, 3, 4}}), 4u);
}

TEST(FractionalFactorialTest, ResolutionVDesign) {
  linalg::Matrix d = Resolution5Design8Factors();
  EXPECT_EQ(d.rows(), 64u);
  EXPECT_EQ(d.cols(), 8u);
  EXPECT_DOUBLE_EQ(MaxColumnCorrelation(d), 0.0);
  // Generators x7 = x1x2x3x4, x8 = x1x2x5x6 have 5-letter defining words
  // and a 6-letter product: resolution V exactly.
  EXPECT_EQ(DesignResolution(6, {{0, 1, 2, 3}, {0, 1, 4, 5}}), 5u);
}

TEST(FractionalFactorialTest, CannedDesignShapes) {
  linalg::Matrix r4 = Resolution4Design8Factors();
  EXPECT_EQ(r4.rows(), 16u);
  EXPECT_EQ(r4.cols(), 8u);
  EXPECT_DOUBLE_EQ(MaxColumnCorrelation(r4), 0.0);
  linalg::Matrix d32 = Design7Factors32Runs();
  EXPECT_EQ(d32.rows(), 32u);
  EXPECT_EQ(d32.cols(), 7u);
  EXPECT_DOUBLE_EQ(MaxColumnCorrelation(d32), 0.0);
}

TEST(FractionalFactorialTest, RejectsBadGenerators) {
  EXPECT_FALSE(FractionalFactorial(3, {{}}).ok());
  EXPECT_FALSE(FractionalFactorial(3, {{5}}).ok());
  EXPECT_FALSE(FractionalFactorial(0, {}).ok());
}

TEST(LatinHypercubeTest, PropertyHolds) {
  Rng rng(1);
  for (size_t factors : {2u, 5u}) {
    for (size_t levels : {9u, 17u}) {
      linalg::Matrix d = RandomLatinHypercube(factors, levels, rng);
      EXPECT_EQ(d.rows(), levels);
      EXPECT_EQ(d.cols(), factors);
      EXPECT_TRUE(IsLatinHypercube(d));
      // Levels are centered integers.
      double sum = 0.0;
      for (size_t r = 0; r < levels; ++r) sum += d(r, 0);
      EXPECT_NEAR(sum, 0.0, 1e-9);
    }
  }
}

TEST(NolhTest, SearchReducesCorrelation) {
  Rng rng1(2), rng2(2);
  linalg::Matrix random = RandomLatinHypercube(4, 17, rng1);
  linalg::Matrix nolh = NearlyOrthogonalLatinHypercube(4, 17, 200, rng2);
  EXPECT_TRUE(IsLatinHypercube(nolh));
  EXPECT_LE(MaxColumnCorrelation(nolh), MaxColumnCorrelation(random) + 1e-12);
  EXPECT_LT(MaxColumnCorrelation(nolh), 0.2);
}

TEST(Figure5Test, OrthogonalNineRunDesign) {
  linalg::Matrix d = Figure5LatinHypercube();
  EXPECT_EQ(d.rows(), 9u);
  EXPECT_EQ(d.cols(), 2u);
  EXPECT_TRUE(IsLatinHypercube(d));
  EXPECT_DOUBLE_EQ(MaxColumnCorrelation(d), 0.0);  // exactly orthogonal
  // Levels are -4..4 in each column.
  for (size_t c = 0; c < 2; ++c) {
    std::set<double> levels;
    for (size_t r = 0; r < 9; ++r) levels.insert(d(r, c));
    EXPECT_EQ(*levels.begin(), -4.0);
    EXPECT_EQ(*levels.rbegin(), 4.0);
    EXPECT_EQ(levels.size(), 9u);
  }
}

TEST(ScaleDesignTest, MapsToRanges) {
  linalg::Matrix d = Figure5LatinHypercube();
  auto scaled = ScaleDesign(d, {0.0, 10.0}, {1.0, 20.0});
  ASSERT_TRUE(scaled.ok());
  double min0 = 1e9, max0 = -1e9;
  for (size_t r = 0; r < 9; ++r) {
    min0 = std::min(min0, scaled.value()(r, 0));
    max0 = std::max(max0, scaled.value()(r, 0));
  }
  EXPECT_DOUBLE_EQ(min0, 0.0);
  EXPECT_DOUBLE_EQ(max0, 1.0);
  EXPECT_FALSE(ScaleDesign(d, {1.0}, {2.0}).ok());       // arity
  EXPECT_FALSE(ScaleDesign(d, {1.0, 1.0}, {0.0, 2.0}).ok());  // lo >= hi
}

TEST(MaominTest, DistanceComputation) {
  linalg::Matrix d = linalg::Matrix::FromRows({{0, 0}, {3, 4}, {0, 1}});
  EXPECT_DOUBLE_EQ(MaominDistance(d), 1.0);
}

double LinearResponse(const linalg::Matrix& d, size_t run,
                      const std::vector<double>& beta, double noise,
                      Rng& rng) {
  double y = 5.0;
  for (size_t f = 0; f < d.cols(); ++f) y += beta[f] * d(run, f);
  return y + SampleNormal(rng, 0.0, noise);
}

TEST(MainEffectsTest, RecoversCoefficientsFromResolutionIII) {
  // Figure 4 scenario: 7 factors, linear response, estimated from 8 runs.
  const std::vector<double> beta = {3.0, 0.0, -2.0, 0.5, 0.0, 1.0, 0.0};
  linalg::Matrix d = Resolution3Design7Factors();
  Rng rng(3);
  linalg::Vector y(d.rows());
  for (size_t r = 0; r < d.rows(); ++r) {
    y[r] = LinearResponse(d, r, beta, 0.01, rng);
  }
  auto effects = ComputeMainEffects(d, y);
  ASSERT_TRUE(effects.ok());
  ASSERT_EQ(effects.value().size(), 7u);
  for (size_t f = 0; f < 7; ++f) {
    // Effect = high - low = 2 * beta under +-1 coding.
    EXPECT_NEAR(effects.value()[f].effect, 2.0 * beta[f], 0.05) << "f=" << f;
    EXPECT_NEAR(effects.value()[f].high_mean - effects.value()[f].low_mean,
                effects.value()[f].effect, 1e-12);
  }
}

TEST(MainEffectsTest, ImportantFactorSelection) {
  const std::vector<double> beta = {3.0, 0.05, -2.5, 0.0, 0.0, 0.0, 0.0};
  linalg::Matrix d = Resolution3Design7Factors();
  Rng rng(4);
  linalg::Vector y(d.rows());
  for (size_t r = 0; r < d.rows(); ++r) {
    y[r] = LinearResponse(d, r, beta, 0.02, rng);
  }
  auto effects = ComputeMainEffects(d, y);
  ASSERT_TRUE(effects.ok());
  auto important = ImportantFactors(effects.value(), 5.0);
  EXPECT_EQ(important, (std::vector<size_t>{0, 2}));
}

TEST(MainEffectsTest, RejectsNonTwoLevelDesign) {
  linalg::Matrix d = Figure5LatinHypercube();  // has a 0 level
  linalg::Vector y(9, 1.0);
  EXPECT_FALSE(ComputeMainEffects(d, y).ok());
}

TEST(HalfNormalTest, ScoresSortedAndQuantilesIncreasing) {
  std::vector<MainEffect> effects = {
      {0, 0, 0, 0.1}, {1, 0, 0, -3.0}, {2, 0, 0, 0.2}, {3, 0, 0, 1.5}};
  auto pts = HalfNormalScores(effects);
  ASSERT_TRUE(pts.ok());
  ASSERT_EQ(pts.value().size(), 4u);
  for (size_t i = 1; i < 4; ++i) {
    EXPECT_GE(pts.value()[i].abs_effect, pts.value()[i - 1].abs_effect);
    EXPECT_GT(pts.value()[i].quantile, pts.value()[i - 1].quantile);
  }
  EXPECT_EQ(pts.value().back().factor, 1u);  // |−3| is largest
}

TEST(RunSavingsTest, FractionalVsFullFactorialAccuracyComparable) {
  // The Section 4.2 claim: the 8-run resolution III design estimates main
  // effects of a linear 7-factor model as well as the 128-run full
  // factorial (both are orthogonal), at 1/16th the cost.
  const std::vector<double> beta = {1.0, -0.5, 2.0, 0.0, 0.25, -1.5, 0.75};
  Rng rng(5);
  linalg::Matrix frac = Resolution3Design7Factors();
  linalg::Matrix full = FullFactorial(7);
  linalg::Vector y_frac(frac.rows()), y_full(full.rows());
  for (size_t r = 0; r < frac.rows(); ++r) {
    y_frac[r] = LinearResponse(frac, r, beta, 0.05, rng);
  }
  for (size_t r = 0; r < full.rows(); ++r) {
    y_full[r] = LinearResponse(full, r, beta, 0.05, rng);
  }
  auto ef = ComputeMainEffects(frac, y_frac);
  auto eu = ComputeMainEffects(full, y_full);
  ASSERT_TRUE(ef.ok() && eu.ok());
  for (size_t f = 0; f < 7; ++f) {
    EXPECT_NEAR(ef.value()[f].effect, 2 * beta[f], 0.2);
    EXPECT_NEAR(eu.value()[f].effect, 2 * beta[f], 0.05);
  }
  EXPECT_EQ(frac.rows() * 16, full.rows());
}

}  // namespace
}  // namespace mde::doe
