#include <cmath>

#include <gtest/gtest.h>

#include "simsql/simsql.h"
#include "table/ops.h"
#include "util/distributions.h"
#include "util/stats.h"

namespace mde::simsql {
namespace {

using table::DataType;
using table::Row;
using table::Schema;
using table::Table;
using table::Value;

/// A chain table WALKERS(id, pos): each step every walker moves by a
/// standard normal increment — a database-valued random walk.
ChainTableSpec MakeWalkerSpec(size_t walkers) {
  ChainTableSpec spec;
  spec.name = "WALKERS";
  spec.init = [walkers](const DatabaseState&, Rng&) -> Result<Table> {
    Table t{Schema({{"id", DataType::kInt64}, {"pos", DataType::kDouble}})};
    for (size_t i = 0; i < walkers; ++i) {
      t.Append({Value(static_cast<int64_t>(i)), Value(0.0)});
    }
    return t;
  };
  spec.transition = [](const DatabaseState& prev, const DatabaseState&,
                       Rng& rng) -> Result<Table> {
    const Table& old = prev.at("WALKERS");
    Table t(old.schema());
    for (const Row& r : old.rows()) {
      t.Append({r[0], Value(r[1].AsDouble() + SampleStandardNormal(rng))});
    }
    return t;
  };
  return spec;
}

TEST(MarkovChainTest, RunProducesVersions) {
  MarkovChainDb db;
  ASSERT_TRUE(db.AddChainTable(MakeWalkerSpec(20)).ok());
  size_t versions_seen = 0;
  auto final_state = db.Run(10, 42, 0, [&](size_t i, const DatabaseState& s) {
    EXPECT_EQ(i, versions_seen++);
    EXPECT_EQ(s.at("WALKERS").num_rows(), 20u);
    return Status::OK();
  });
  ASSERT_TRUE(final_state.ok());
  EXPECT_EQ(versions_seen, 11u);  // D[0] .. D[10]
}

TEST(MarkovChainTest, VarianceGrowsLinearly) {
  // Var(pos at step t) = t for a standard random walk.
  MarkovChainDb db;
  ASSERT_TRUE(db.AddChainTable(MakeWalkerSpec(4000)).ok());
  auto state = db.Run(9, 7, 0);
  ASSERT_TRUE(state.ok());
  std::vector<double> positions;
  for (const Row& r : state.value().at("WALKERS").rows()) {
    positions.push_back(r[1].AsDouble());
  }
  EXPECT_NEAR(Variance(positions), 9.0, 0.7);
}

TEST(MarkovChainTest, HistoryRetention) {
  MarkovChainDb db;
  ASSERT_TRUE(db.AddChainTable(MakeWalkerSpec(3)).ok());
  db.set_history_limit(4);
  ASSERT_TRUE(db.Run(10, 1, 0).ok());
  EXPECT_EQ(db.history().size(), 4u);
}

TEST(MarkovChainTest, CrossTableParametrization) {
  // Table B's generation is parameterized by chain table A: A counts up,
  // B holds 2 * A's value. (SimSQL recursive definitions.)
  MarkovChainDb db;
  ChainTableSpec a;
  a.name = "A";
  a.init = [](const DatabaseState&, Rng&) -> Result<Table> {
    Table t{Schema({{"v", DataType::kInt64}})};
    t.Append({Value(int64_t{0})});
    return t;
  };
  a.transition = [](const DatabaseState& prev, const DatabaseState&,
                    Rng&) -> Result<Table> {
    Table t{Schema({{"v", DataType::kInt64}})};
    t.Append({Value(prev.at("A").row(0)[0].AsInt() + 1)});
    return t;
  };
  ChainTableSpec b;
  b.name = "B";
  // B reads the SAME-version A (registered before it).
  b.init = [](const DatabaseState& current, Rng&) -> Result<Table> {
    Table t{Schema({{"v", DataType::kInt64}})};
    t.Append({Value(current.at("A").row(0)[0].AsInt() * 2)});
    return t;
  };
  b.transition = [](const DatabaseState&, const DatabaseState& current,
                    Rng&) -> Result<Table> {
    Table t{Schema({{"v", DataType::kInt64}})};
    t.Append({Value(current.at("A").row(0)[0].AsInt() * 2)});
    return t;
  };
  ASSERT_TRUE(db.AddChainTable(std::move(a)).ok());
  ASSERT_TRUE(db.AddChainTable(std::move(b)).ok());
  auto state = db.Run(5, 3, 0);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state.value().at("A").row(0)[0].AsInt(), 5);
  EXPECT_EQ(state.value().at("B").row(0)[0].AsInt(), 10);
}

TEST(MarkovChainTest, DeterministicTablesVisible) {
  MarkovChainDb db;
  Table params{Schema({{"drift", DataType::kDouble}})};
  params.Append({Value(1.0)});
  ASSERT_TRUE(db.AddDeterministic("PARAMS", std::move(params)).ok());
  ChainTableSpec spec;
  spec.name = "X";
  spec.init = [](const DatabaseState& cur, Rng&) -> Result<Table> {
    EXPECT_TRUE(cur.count("PARAMS") > 0);
    Table t{Schema({{"v", DataType::kDouble}})};
    t.Append({Value(0.0)});
    return t;
  };
  spec.transition = [](const DatabaseState& prev, const DatabaseState& cur,
                       Rng&) -> Result<Table> {
    const double drift = cur.at("PARAMS").row(0)[0].AsDouble();
    Table t{Schema({{"v", DataType::kDouble}})};
    t.Append({Value(prev.at("X").row(0)[0].AsDouble() + drift)});
    return t;
  };
  ASSERT_TRUE(db.AddChainTable(std::move(spec)).ok());
  auto state = db.Run(7, 5, 0);
  ASSERT_TRUE(state.ok());
  EXPECT_DOUBLE_EQ(state.value().at("X").row(0)[0].AsDouble(), 7.0);
}

TEST(MarkovChainTest, RejectsDuplicatesAndIncompleteSpecs) {
  MarkovChainDb db;
  ASSERT_TRUE(db.AddChainTable(MakeWalkerSpec(1)).ok());
  EXPECT_FALSE(db.AddChainTable(MakeWalkerSpec(1)).ok());
  ChainTableSpec bad;
  bad.name = "BAD";
  EXPECT_FALSE(db.AddChainTable(std::move(bad)).ok());
}

TEST(MonteCarloChainTest, SamplesMarginalDistribution) {
  MarkovChainDb db;
  ASSERT_TRUE(db.AddChainTable(MakeWalkerSpec(1)).ok());
  auto samples = MonteCarloChain(
      db, 16, 400, 13, [](const DatabaseState& s) -> Result<double> {
        return s.at("WALKERS").row(0)[1].AsDouble();
      });
  ASSERT_TRUE(samples.ok());
  // Walker position after 16 steps: N(0, 16).
  EXPECT_NEAR(Mean(samples.value()), 0.0, 0.5);
  EXPECT_NEAR(Variance(samples.value()), 16.0, 3.0);
}

TEST(MonteCarloChainTest, ReplicationsIndependent) {
  MarkovChainDb db;
  ASSERT_TRUE(db.AddChainTable(MakeWalkerSpec(1)).ok());
  auto s = MonteCarloChain(db, 4, 50, 21,
                           [](const DatabaseState& st) -> Result<double> {
                             return st.at("WALKERS").row(0)[1].AsDouble();
                           });
  ASSERT_TRUE(s.ok());
  // Not all equal.
  EXPECT_GT(StdDev(s.value()), 0.1);
}

}  // namespace
}  // namespace mde::simsql
