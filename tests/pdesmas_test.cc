#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "pdesmas/ssv.h"
#include "util/distributions.h"
#include "util/rng.h"

namespace mde::pdesmas {
namespace {

TEST(SsvTest, TimestampedReads) {
  SharedStateVariable v;
  EXPECT_FALSE(v.Current().ok());
  ASSERT_TRUE(v.Write(1.0, 10.0).ok());
  ASSERT_TRUE(v.Write(3.0, 30.0).ok());
  EXPECT_FALSE(v.ValueAt(0.5).ok());      // before first write
  EXPECT_DOUBLE_EQ(v.ValueAt(1.0).value(), 10.0);
  EXPECT_DOUBLE_EQ(v.ValueAt(2.9).value(), 10.0);
  EXPECT_DOUBLE_EQ(v.ValueAt(3.0).value(), 30.0);
  EXPECT_DOUBLE_EQ(v.ValueAt(99.0).value(), 30.0);
  EXPECT_DOUBLE_EQ(v.Current().value(), 30.0);
}

TEST(SsvTest, RejectsOutOfOrderWrites) {
  SharedStateVariable v;
  ASSERT_TRUE(v.Write(5.0, 1.0).ok());
  EXPECT_FALSE(v.Write(4.0, 2.0).ok());
  EXPECT_TRUE(v.Write(5.0, 3.0).ok());  // equal time allowed
}

TEST(ClpTreeTest, CurrentRangeQueryMatchesBruteForce) {
  Rng rng(1);
  const size_t n = 500;
  ClpTree tree(n, 16);
  std::vector<double> current(n);
  for (size_t id = 0; id < n; ++id) {
    current[id] = rng.NextDouble() * 100.0;
    ASSERT_TRUE(tree.Write(id, 0.0, current[id]).ok());
  }
  for (auto [lo, hi] : std::vector<std::pair<double, double>>{
           {10.0, 20.0}, {0.0, 100.0}, {95.0, 99.0}, {50.0, 50.0}}) {
    auto got = tree.CurrentRangeQuery(lo, hi);
    std::vector<size_t> want;
    for (size_t id = 0; id < n; ++id) {
      if (current[id] >= lo && current[id] <= hi) want.push_back(id);
    }
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, want) << "range [" << lo << ", " << hi << "]";
  }
}

TEST(ClpTreeTest, PruningVisitsFewNodesForNarrowQueries) {
  // Writes are sorted by id (position ~ id), so narrow range queries prune
  // most of the tree.
  const size_t n = 4096;
  ClpTree tree(n, 8);
  for (size_t id = 0; id < n; ++id) {
    ASSERT_TRUE(tree.Write(id, 0.0, static_cast<double>(id)).ok());
  }
  tree.CurrentRangeQuery(100.0, 110.0);
  const size_t narrow = tree.last_query_nodes_visited();
  tree.CurrentRangeQuery(0.0, 5000.0);
  const size_t wide = tree.last_query_nodes_visited();
  EXPECT_LT(narrow * 10, wide);
}

TEST(ClpTreeTest, TimestampedQueriesSeeConsistentSnapshots) {
  // Two "agents" advance at different rates: agent 0 writes at t=1,2,3;
  // agent 1 only at t=1. A query at t=2 must see agent 1's t=1 value.
  ClpTree tree(2, 1);
  ASSERT_TRUE(tree.Write(0, 1.0, 10.0).ok());
  ASSERT_TRUE(tree.Write(1, 1.0, 20.0).ok());
  ASSERT_TRUE(tree.Write(0, 2.0, 11.0).ok());
  ASSERT_TRUE(tree.Write(0, 3.0, 99.0).ok());
  auto at2 = tree.RangeQueryAt(2.0, 0.0, 50.0);
  std::sort(at2.begin(), at2.end());
  EXPECT_EQ(at2, (std::vector<size_t>{0, 1}));  // 11 and 20 both in range
  // At t=3 agent 0's value 99 left the range.
  auto at3 = tree.RangeQueryAt(3.0, 0.0, 50.0);
  EXPECT_EQ(at3, (std::vector<size_t>{1}));
}

TEST(ClpTreeTest, TimestampedMatchesBruteForceUnderRandomWrites) {
  Rng rng(2);
  const size_t n = 100;
  ClpTree tree(n, 4);
  // Each SSV gets writes at random times with random values ("ALPs at
  // different rates").
  std::vector<std::vector<std::pair<double, double>>> history(n);
  for (size_t id = 0; id < n; ++id) {
    double t = 0.0;
    const size_t writes = 1 + rng.NextBounded(5);
    for (size_t w = 0; w < writes; ++w) {
      t += 0.1 + rng.NextDouble();
      const double v = rng.NextDouble() * 10.0;
      history[id].push_back({t, v});
      ASSERT_TRUE(tree.Write(id, t, v).ok());
    }
  }
  for (double t : {0.5, 1.5, 3.0, 10.0}) {
    auto got = tree.RangeQueryAt(t, 2.0, 8.0);
    std::set<size_t> got_set(got.begin(), got.end());
    for (size_t id = 0; id < n; ++id) {
      double latest = -1.0;
      bool has = false;
      for (auto [wt, wv] : history[id]) {
        if (wt <= t) {
          latest = wv;
          has = true;
        }
      }
      const bool want = has && latest >= 2.0 && latest <= 8.0;
      EXPECT_EQ(got_set.count(id) > 0, want) << "id=" << id << " t=" << t;
    }
  }
}

TEST(ClpTreeTest, LeafAccessCountsTrackLoad) {
  ClpTree tree(64, 8);
  // Hammer the first SSV range with writes.
  for (int w = 0; w < 100; ++w) {
    ASSERT_TRUE(tree.Write(3, static_cast<double>(w), 1.0).ok());
  }
  ASSERT_TRUE(tree.Write(60, 0.0, 5.0).ok());
  auto counts = tree.LeafAccessCounts();
  ASSERT_EQ(counts.size(), 8u);
  // The hot leaf (holding SSV 3) dominates the others — the imbalance
  // signal PDES-MAS reconfiguration would act on.
  const size_t hot = counts[0];
  EXPECT_GE(hot, 100u);
  size_t others = 0;
  for (size_t i = 1; i < counts.size(); ++i) others += counts[i];
  EXPECT_LT(others, hot);
}

TEST(ClpTreeTest, LeafSizeTradesPruningForDepth) {
  const size_t n = 1024;
  auto nodes_for = [&](size_t leaf) {
    ClpTree tree(n, leaf);
    for (size_t id = 0; id < n; ++id) {
      EXPECT_TRUE(tree.Write(id, 0.0, static_cast<double>(id)).ok());
    }
    tree.CurrentRangeQuery(10.0, 20.0);
    return tree.last_query_nodes_visited();
  };
  // A finer tree visits more nodes but scans fewer SSVs; both finish. This
  // is the reconfiguration trade-off PDES-MAS tunes dynamically.
  EXPECT_GT(nodes_for(2), nodes_for(256));
}

}  // namespace
}  // namespace mde::pdesmas
