#include <cmath>
#include <cstring>

#include <gtest/gtest.h>

#include "mcdb/bundle.h"
#include "mcdb/estimators.h"
#include "mcdb/mcdb.h"
#include "mcdb/pregen.h"
#include "mcdb/vg_function.h"
#include "table/query.h"
#include "util/distributions.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace mde::mcdb {
namespace {

using table::CmpOp;
using table::DataType;
using table::Row;
using table::Schema;
using table::Table;
using table::Value;

/// Builds the paper's SBP example: PATIENTS plus a single-row SBP_PARAM
/// table holding (mean, std), and the stochastic SBP_DATA spec.
MonteCarloDb MakeSbpDb(double mean, double std, size_t patients) {
  MonteCarloDb db;
  Table p{Schema({{"PID", DataType::kInt64}, {"GENDER", DataType::kString}})};
  for (size_t i = 0; i < patients; ++i) {
    p.Append({Value(static_cast<int64_t>(i)), Value(i % 2 ? "M" : "F")});
  }
  EXPECT_TRUE(db.AddTable("PATIENTS", std::move(p)).ok());
  Table param{Schema({{"MEAN", DataType::kDouble},
                      {"STD", DataType::kDouble}})};
  param.Append({Value(mean), Value(std)});
  EXPECT_TRUE(db.AddTable("SBP_PARAM", std::move(param)).ok());

  StochasticTableSpec spec;
  spec.name = "SBP_DATA";
  spec.outer_table = "PATIENTS";
  spec.vg = std::make_shared<NormalVg>();
  spec.param_binder = [](const Row&, const DatabaseInstance& det)
      -> Result<Row> {
    // WITH SBP AS Normal((SELECT s.MEAN, s.STD FROM SBP_PARAM s)).
    const Table& param = det.at("SBP_PARAM");
    return Row{param.row(0)[0], param.row(0)[1]};
  };
  spec.output_schema = Schema({{"PID", DataType::kInt64},
                               {"GENDER", DataType::kString},
                               {"SBP", DataType::kDouble}});
  spec.projector = [](const Row& outer, const Row& vg) {
    return Row{outer[0], outer[1], vg[0]};
  };
  EXPECT_TRUE(db.AddStochasticTable(std::move(spec)).ok());
  return db;
}

TEST(VgFunctionTest, NormalShape) {
  NormalVg vg;
  Rng rng(1);
  std::vector<Row> out;
  ASSERT_TRUE(vg.Generate({Value(10.0), Value(0.0)}, rng, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0][0].AsDouble(), 10.0);  // zero std
  EXPECT_FALSE(vg.Generate({Value(1.0)}, rng, &out).ok());  // arity
}

TEST(VgFunctionTest, PoissonNonNegative) {
  PoissonVg vg;
  Rng rng(2);
  std::vector<Row> out;
  for (int i = 0; i < 100; ++i) {
    out.clear();
    ASSERT_TRUE(vg.Generate({Value(3.0)}, rng, &out).ok());
    EXPECT_GE(out[0][0].AsInt(), 0);
  }
}

TEST(VgFunctionTest, BackwardWalkProducesSteps) {
  BackwardRandomWalkVg vg;
  Rng rng(3);
  std::vector<Row> out;
  ASSERT_TRUE(vg.Generate({Value(100.0), Value(0.001), Value(0.02),
                           Value(int64_t{5})},
                          rng, &out)
                  .ok());
  EXPECT_EQ(out.size(), 5u);
  for (const Row& r : out) EXPECT_GT(r[1].AsDouble(), 0.0);
  EXPECT_EQ(out[0][0].AsInt(), -1);
  EXPECT_EQ(out[4][0].AsInt(), -5);
}

TEST(VgFunctionTest, BayesianDemandRespondsToPrice) {
  BayesianDemandVg vg;
  Rng rng(4);
  // High price should produce lower average demand than low price.
  auto mean_demand = [&](double price) {
    double total = 0;
    std::vector<Row> out;
    for (int i = 0; i < 3000; ++i) {
      out.clear();
      EXPECT_TRUE(vg.Generate({Value(2.0), Value(1.0), Value(20.0),
                               Value(10.0), Value(price), Value(10.0),
                               Value(1.5)},
                              rng, &out)
                      .ok());
      total += static_cast<double>(out[0][0].AsInt());
    }
    return total / 3000;
  };
  EXPECT_GT(mean_demand(5.0), mean_demand(20.0) * 1.5);
}

TEST(McdbTest, InstantiateRealizesStochasticTable) {
  MonteCarloDb db = MakeSbpDb(120.0, 10.0, 50);
  auto inst = db.Instantiate(7, 0);
  ASSERT_TRUE(inst.ok());
  const Table& sbp = inst.value().at("SBP_DATA");
  EXPECT_EQ(sbp.num_rows(), 50u);
  // Values look like draws around 120.
  double mean = table::AvgColumn(sbp, "SBP").value();
  EXPECT_NEAR(mean, 120.0, 10.0);
}

TEST(McdbTest, DifferentRepsDiffer) {
  MonteCarloDb db = MakeSbpDb(120.0, 10.0, 10);
  auto a = db.Instantiate(7, 0);
  auto b = db.Instantiate(7, 1);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a.value().at("SBP_DATA").row(0)[2].AsDouble(),
            b.value().at("SBP_DATA").row(0)[2].AsDouble());
}

TEST(McdbTest, SameRepReproducible) {
  MonteCarloDb db = MakeSbpDb(120.0, 10.0, 10);
  auto a = db.Instantiate(7, 3);
  auto b = db.Instantiate(7, 3);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a.value().at("SBP_DATA").row(5)[2].AsDouble(),
                   b.value().at("SBP_DATA").row(5)[2].AsDouble());
}

TEST(McdbTest, DuplicateNamesRejected) {
  MonteCarloDb db = MakeSbpDb(120.0, 10.0, 5);
  Table t{Schema({{"x", DataType::kInt64}})};
  EXPECT_FALSE(db.AddTable("PATIENTS", t).ok());
}

TEST(McdbTest, NaiveMonteCarloEstimatesQueryDistribution) {
  MonteCarloDb db = MakeSbpDb(120.0, 15.0, 200);
  // Query: average SBP over all patients.
  auto query = [](const DatabaseInstance& inst) -> Result<double> {
    return table::AvgColumn(inst.at("SBP_DATA"), "SBP");
  };
  auto samples = db.RunNaive(query, 50, 11);
  ASSERT_TRUE(samples.ok());
  auto summary = Summarize(samples.value());
  ASSERT_TRUE(summary.ok());
  EXPECT_NEAR(summary.value().mean, 120.0, 1.0);
  // Std error of a 200-patient average with sd 15 is ~1.06.
  EXPECT_NEAR(std::sqrt(summary.value().variance), 15.0 / std::sqrt(200.0),
              0.5);
}

TEST(BundleTest, GenerationShape) {
  MonteCarloDb db = MakeSbpDb(120.0, 10.0, 30);
  auto bundles =
      GenerateBundles(db, db.stochastic_specs()[0], "SBP", 64, 13);
  ASSERT_TRUE(bundles.ok());
  EXPECT_EQ(bundles.value().num_rows(), 30u);
  EXPECT_EQ(bundles.value().num_reps(), 64u);
}

TEST(BundleTest, AggregateMatchesNaiveDistribution) {
  MonteCarloDb db = MakeSbpDb(120.0, 15.0, 100);
  const size_t reps = 200;
  auto bundles =
      GenerateBundles(db, db.stochastic_specs()[0], "SBP", reps, 17);
  ASSERT_TRUE(bundles.ok());
  auto sums = bundles.value().AggregateAvg("SBP");
  ASSERT_TRUE(sums.ok());
  EXPECT_EQ(sums.value().size(), reps);
  EXPECT_NEAR(Mean(sums.value()), 120.0, 1.0);
  EXPECT_NEAR(StdDev(sums.value()), 15.0 / std::sqrt(100.0), 0.4);
}

TEST(BundleTest, FilterDetAppliesOnce) {
  MonteCarloDb db = MakeSbpDb(120.0, 10.0, 40);
  auto bundles =
      GenerateBundles(db, db.stochastic_specs()[0], "SBP", 16, 19);
  ASSERT_TRUE(bundles.ok());
  auto pred = table::ColumnCompare(bundles.value().det_schema(), "GENDER",
                                   CmpOp::kEq, "F");
  ASSERT_TRUE(pred.ok());
  BundleTable females = bundles.value().FilterDet(pred.value());
  EXPECT_EQ(females.num_rows(), 20u);
}

TEST(BundleTest, FilterStochIsPerRepetition) {
  MonteCarloDb db = MakeSbpDb(120.0, 15.0, 50);
  auto bundles =
      GenerateBundles(db, db.stochastic_specs()[0], "SBP", 32, 23);
  ASSERT_TRUE(bundles.ok());
  auto high = bundles.value().FilterStoch("SBP", CmpOp::kGt, 120.0);
  ASSERT_TRUE(high.ok());
  auto counts = high.value().AggregateCount();
  // About half the patients exceed the mean in each repetition.
  EXPECT_NEAR(Mean(counts), 25.0, 5.0);
  // Counts vary across repetitions (the per-rep masks differ).
  EXPECT_GT(StdDev(counts), 0.5);
}

/// The determinism contract of the columnar kernels: generation and the
/// whole filter/aggregate pipeline must be BIT-identical for the serial
/// path and for pools of any size. Chunk boundaries (BundleTable::kRowGrain)
/// and the partial-sum combine order are pure functions of the row count,
/// and every row owns its RNG substream, so thread count must not leak into
/// a single bit of the result.
TEST(BundleTest, ParallelExecutionIsBitIdentical) {
  MonteCarloDb db = MakeSbpDb(120.0, 15.0, 700);  // > 2 chunks of 256 rows
  const size_t reps = 100;
  const uint64_t seed = 31;

  auto run = [&](ThreadPool* pool) {
    auto bundles = GenerateBundles(db, db.stochastic_specs()[0], "SBP", reps,
                                   seed, pool);
    EXPECT_TRUE(bundles.ok());
    auto sums = bundles.value().AggregateSum("SBP");
    EXPECT_TRUE(sums.ok());
    auto high = bundles.value().FilterStoch("SBP", CmpOp::kGt, 120.0);
    EXPECT_TRUE(high.ok());
    auto avg = high.value().AggregateAvg("SBP");
    EXPECT_TRUE(avg.ok());
    std::vector<double> out = sums.value();
    out.insert(out.end(), avg.value().begin(), avg.value().end());
    return out;
  };

  const std::vector<double> serial = run(nullptr);
  for (size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    const std::vector<double> parallel = run(&pool);
    ASSERT_EQ(parallel.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      // EXPECT_EQ, not EXPECT_NEAR: the contract is bitwise.
      EXPECT_EQ(parallel[i], serial[i])
          << "thread count " << threads << " diverged at sample " << i;
    }
  }
}

/// Row materialization round-trips the packed columnar storage.
TEST(BundleTest, RowMaterializesPackedMasks) {
  MonteCarloDb db = MakeSbpDb(120.0, 15.0, 10);
  auto bundles =
      GenerateBundles(db, db.stochastic_specs()[0], "SBP", 70, 5);
  ASSERT_TRUE(bundles.ok());
  auto high = bundles.value().FilterStoch("SBP", CmpOp::kGt, 120.0).value();
  ASSERT_GT(high.num_rows(), 0u);
  const auto r0 = high.row(0);
  ASSERT_EQ(r0.active.size(), 70u);
  ASSERT_EQ(r0.stoch.size(), 1u);
  size_t active_count = 0;
  for (size_t rep = 0; rep < 70; ++rep) {
    EXPECT_EQ(r0.active[rep] != 0, high.is_active(0, rep));
    if (r0.active[rep]) {
      ++active_count;
      EXPECT_GT(r0.stoch[0][rep], 120.0);
      EXPECT_EQ(r0.stoch[0][rep], high.stoch_block(0)[rep]);
    }
  }
  EXPECT_GT(active_count, 0u);
  EXPECT_LT(active_count, 70u);
}

TEST(BundleTest, MapStochComputesDerivedAttribute) {
  MonteCarloDb db = MakeSbpDb(120.0, 10.0, 10);
  auto bundles =
      GenerateBundles(db, db.stochastic_specs()[0], "SBP", 8, 29);
  ASSERT_TRUE(bundles.ok());
  auto mapped = bundles.value().MapStoch(
      "SBP_SHIFT", [](const Row&, const std::vector<double>& s) {
        return s[0] - 100.0;
      });
  ASSERT_TRUE(mapped.ok());
  auto a = mapped.value().AggregateSum("SBP").value();
  auto b = mapped.value().AggregateSum("SBP_SHIFT").value();
  for (size_t rep = 0; rep < a.size(); ++rep) {
    EXPECT_NEAR(a[rep] - b[rep], 1000.0, 1e-9);  // 10 rows * 100
  }
}

TEST(EstimatorsTest, SummaryFields) {
  std::vector<double> s = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  auto sum = Summarize(s);
  ASSERT_TRUE(sum.ok());
  EXPECT_DOUBLE_EQ(sum.value().mean, 5.5);
  EXPECT_DOUBLE_EQ(sum.value().min, 1);
  EXPECT_DOUBLE_EQ(sum.value().max, 10);
  EXPECT_DOUBLE_EQ(sum.value().median, 5.5);
  EXPECT_FALSE(Summarize({}).ok());
}

TEST(EstimatorsTest, ThresholdProbability) {
  std::vector<double> s;
  for (int i = 1; i <= 100; ++i) s.push_back(i);
  auto est = ThresholdProbability(s, 75.0, 0.95);
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est.value().probability, 0.25);
  EXPECT_GT(est.value().half_width, 0.0);
}

TEST(EstimatorsTest, ExtremeQuantileBrackets) {
  Rng rng(31);
  std::vector<double> s;
  for (int i = 0; i < 20000; ++i) s.push_back(SampleNormal(rng, 0, 1));
  auto est = ExtremeQuantile(s, 0.99, 0.95);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(est.value().value, 2.326, 0.1);
  EXPECT_LE(est.value().ci_low, est.value().value);
  EXPECT_GE(est.value().ci_high, est.value().value);
}

TEST(EstimatorsTest, GroupThreshold) {
  std::vector<GroupSamples> groups = {
      {"declines", {0.03, 0.04, 0.05, 0.01, 0.06}},
      {"stable", {0.0, 0.01, 0.0, 0.01, 0.0}},
  };
  // Which groups decline by > 2% with >= 50% probability?
  auto hits = GroupsExceedingThreshold(groups, 0.02, 0.5);
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits.value().size(), 1u);
  EXPECT_EQ(hits.value()[0], "declines");
}

// ---------------------------------------------------------------------------
// Pre-generation pushdown (pregen.h): deterministic predicates hoisted
// below VG generation must reproduce generate-then-FilterDet bit for bit —
// same deterministic rows, same sampled doubles, same mask words — for any
// thread count.
// ---------------------------------------------------------------------------

void ExpectBundlesBitIdentical(const BundleTable& a, const BundleTable& b,
                               const std::string& what) {
  ASSERT_EQ(a.num_rows(), b.num_rows()) << what;
  ASSERT_EQ(a.num_reps(), b.num_reps()) << what;
  for (size_t i = 0; i < a.num_rows(); ++i) {
    const Row& ra = a.det_row(i);
    const Row& rb = b.det_row(i);
    ASSERT_EQ(ra.size(), rb.size()) << what;
    for (size_t c = 0; c < ra.size(); ++c) {
      ASSERT_TRUE(ra[c] == rb[c]) << what << ": det row " << i;
    }
  }
  const auto& sa = a.stoch_block(0);
  const auto& sb = b.stoch_block(0);
  ASSERT_EQ(sa.size(), sb.size()) << what;
  if (!sa.empty()) {
    EXPECT_EQ(std::memcmp(sa.data(), sb.data(), sa.size() * sizeof(double)),
              0)
        << what << ": stochastic blocks differ";
  }
  const auto& wa = a.active_words();
  const auto& wb = b.active_words();
  ASSERT_EQ(wa.size(), wb.size()) << what;
  for (size_t i = 0; i < wa.size(); ++i) {
    ASSERT_EQ(wa[i], wb[i]) << what << ": mask word " << i;
  }
}

TEST(PregenTest, PushdownMatchesGenerateThenFilterBitIdentically) {
  MonteCarloDb db = MakeSbpDb(120.0, 10.0, 500);
  const size_t reps = 70;  // not a multiple of 64: tail mask bits in play
  auto full = GenerateBundles(db, db.stochastic_specs()[0], "SBP", reps, 31);
  ASSERT_TRUE(full.ok());
  auto pred = table::ColumnCompare(full.value().det_schema(), "GENDER",
                                   CmpOp::kEq, Value("F"));
  ASSERT_TRUE(pred.ok());
  BundleTable expect = full.value().FilterDet(pred.value());
  ASSERT_GT(expect.num_rows(), 0u);
  ASSERT_LT(expect.num_rows(), 500u);

  PregenReport report;
  auto pushed = GenerateBundlesWhere(db, db.stochastic_specs()[0], "SBP",
                                     reps, 31,
                                     {{"GENDER", CmpOp::kEq, Value("F")}},
                                     nullptr, &report);
  ASSERT_TRUE(pushed.ok());
  ExpectBundlesBitIdentical(expect, pushed.value(), "pushdown vs filter");
  EXPECT_EQ(report.outer_rows, 500u);
  EXPECT_EQ(report.kept_rows, expect.num_rows());
  EXPECT_EQ(report.rows_pruned, 500u - expect.num_rows());
  EXPECT_EQ(report.draws_saved, (500u - expect.num_rows()) * reps);
}

TEST(PregenTest, BitIdenticalAcrossThreadCounts) {
  MonteCarloDb db = MakeSbpDb(100.0, 5.0, 999);
  const size_t reps = 33;
  std::vector<table::PlanPredicate> preds = {
      {"GENDER", CmpOp::kEq, Value("M")},
      {"PID", CmpOp::kLt, Value(int64_t{700})}};
  auto serial = GenerateBundlesWhere(db, db.stochastic_specs()[0], "SBP",
                                     reps, 77, preds);
  ASSERT_TRUE(serial.ok());
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    ThreadPool pool(threads);
    auto parallel = GenerateBundlesWhere(db, db.stochastic_specs()[0], "SBP",
                                         reps, 77, preds, &pool);
    ASSERT_TRUE(parallel.ok());
    ExpectBundlesBitIdentical(serial.value(), parallel.value(),
                              "threads=" + std::to_string(threads));
  }
  // The two-predicate conjunction equals generate-then-filter too.
  auto full =
      GenerateBundles(db, db.stochastic_specs()[0], "SBP", reps, 77);
  ASSERT_TRUE(full.ok());
  auto p1 = table::ColumnCompare(full.value().det_schema(), "GENDER",
                                 CmpOp::kEq, Value("M"));
  auto p2 = table::ColumnCompare(full.value().det_schema(), "PID", CmpOp::kLt,
                                 Value(int64_t{700}));
  ASSERT_TRUE(p1.ok() && p2.ok());
  BundleTable expect =
      full.value().FilterDet(table::And(p1.value(), p2.value()));
  ExpectBundlesBitIdentical(expect, serial.value(), "conjunction");
}

TEST(PregenTest, NoPredicatesEqualsGenerateBundles) {
  MonteCarloDb db = MakeSbpDb(120.0, 10.0, 128);
  auto a = GenerateBundles(db, db.stochastic_specs()[0], "SBP", 16, 9);
  PregenReport report;
  auto b = GenerateBundlesWhere(db, db.stochastic_specs()[0], "SBP", 16, 9,
                                {}, nullptr, &report);
  ASSERT_TRUE(a.ok() && b.ok());
  ExpectBundlesBitIdentical(a.value(), b.value(), "no predicates");
  EXPECT_EQ(report.kept_rows, 128u);
  EXPECT_EQ(report.draws_saved, 0u);
}

TEST(PregenTest, EmptySurvivorSetAndBadPredicates) {
  MonteCarloDb db = MakeSbpDb(120.0, 10.0, 64);
  // Nothing survives: a well-formed, zero-row bundle (no draws made).
  PregenReport report;
  auto none = GenerateBundlesWhere(db, db.stochastic_specs()[0], "SBP", 8, 3,
                                   {{"PID", CmpOp::kLt, Value(int64_t{0})}},
                                   nullptr, &report);
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none.value().num_rows(), 0u);
  EXPECT_EQ(report.draws_saved, 64u * 8u);
  auto sums = none.value().AggregateSum("SBP");
  ASSERT_TRUE(sums.ok());
  for (double s : sums.value()) EXPECT_EQ(s, 0.0);
  // Unknown predicate column: an error, same as FilterDet's ColumnCompare.
  auto bad = GenerateBundlesWhere(db, db.stochastic_specs()[0], "SBP", 8, 3,
                                  {{"NOPE", CmpOp::kEq, Value(int64_t{1})}});
  EXPECT_FALSE(bad.ok());
}

TEST(PregenTest, AggregatesMatchBetweenPushdownAndFilter) {
  MonteCarloDb db = MakeSbpDb(150.0, 20.0, 400);
  const size_t reps = 64;
  auto full = GenerateBundles(db, db.stochastic_specs()[0], "SBP", reps, 55);
  ASSERT_TRUE(full.ok());
  auto pred = table::ColumnCompare(full.value().det_schema(), "GENDER",
                                   CmpOp::kEq, Value("F"));
  ASSERT_TRUE(pred.ok());
  auto ref = full.value().FilterDet(pred.value()).AggregateSum("SBP");
  auto pushed = GenerateBundlesWhere(db, db.stochastic_specs()[0], "SBP",
                                     reps, 55,
                                     {{"GENDER", CmpOp::kEq, Value("F")}});
  ASSERT_TRUE(pushed.ok());
  auto got = pushed.value().AggregateSum("SBP");
  ASSERT_TRUE(ref.ok() && got.ok());
  ASSERT_EQ(ref.value().size(), got.value().size());
  for (size_t r = 0; r < ref.value().size(); ++r) {
    uint64_t ba, bb;
    std::memcpy(&ba, &ref.value()[r], sizeof(ba));
    std::memcpy(&bb, &got.value()[r], sizeof(bb));
    EXPECT_EQ(ba, bb) << "rep " << r;
  }
}

}  // namespace
}  // namespace mde::mcdb
