#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "abs/schelling.h"
#include "abs/spatial.h"
#include "abs/traffic.h"
#include "util/distributions.h"
#include "util/thread_pool.h"

namespace mde::abs {
namespace {

TEST(SpatialGridTest, NeighborQueryMatchesBruteForce) {
  Rng rng(1);
  std::vector<Point> pts;
  for (int i = 0; i < 500; ++i) {
    pts.push_back({rng.NextDouble() * 100, rng.NextDouble() * 100});
  }
  const double radius = 5.0;
  SpatialGrid grid(pts, radius);
  for (size_t i = 0; i < pts.size(); i += 37) {
    std::set<size_t> via_grid;
    grid.ForEachNeighbor(i, radius, [&](size_t j) { via_grid.insert(j); });
    std::set<size_t> brute;
    for (size_t j = 0; j < pts.size(); ++j) {
      if (j != i && Distance(pts[i], pts[j]) <= radius) brute.insert(j);
    }
    EXPECT_EQ(via_grid, brute) << "point " << i;
  }
}

TEST(SpatialGridTest, ParallelNeighborListsMatchSequential) {
  Rng rng(2);
  std::vector<Point> pts;
  for (int i = 0; i < 1000; ++i) {
    pts.push_back({rng.NextDouble() * 50, rng.NextDouble() * 50});
  }
  SpatialGrid grid(pts, 3.0);
  ThreadPool pool(4);
  auto par = grid.NeighborLists(3.0, &pool);
  auto seq = grid.NeighborLists(3.0, nullptr);
  ASSERT_EQ(par.size(), seq.size());
  for (size_t i = 0; i < par.size(); ++i) {
    std::sort(par[i].begin(), par[i].end());
    std::sort(seq[i].begin(), seq[i].end());
    EXPECT_EQ(par[i], seq[i]);
  }
}

TEST(SpatialGridTest, EmptyAndSinglePoint) {
  std::vector<Point> none;
  SpatialGrid g0(none, 1.0);
  EXPECT_GE(g0.num_cells(), 1u);
  std::vector<Point> one = {{0.0, 0.0}};
  SpatialGrid g1(one, 1.0);
  size_t count = 0;
  g1.ForEachNeighbor(0, 1.0, [&](size_t) { ++count; });
  EXPECT_EQ(count, 0u);
}

TEST(TrafficTest, FreeFlowAtLowDensity) {
  TrafficSim::Config cfg;
  cfg.num_cells = 1000;
  cfg.num_cars = 30;  // 3% density
  cfg.p_slow = 0.1;
  TrafficSim sim(cfg);
  for (int t = 0; t < 200; ++t) sim.Step();
  // Nearly free flow: mean speed close to vmax.
  EXPECT_GT(sim.MeanSpeed(), 3.5);
}

TEST(TrafficTest, JamsAtHighDensity) {
  TrafficSim::Config cfg;
  cfg.num_cells = 1000;
  cfg.num_cars = 500;  // 50% density
  TrafficSim sim(cfg);
  for (int t = 0; t < 200; ++t) sim.Step();
  EXPECT_LT(sim.MeanSpeed(), 1.5);
  EXPECT_GE(sim.CountJams(), 1u);
}

TEST(TrafficTest, CarsNeverCollide) {
  TrafficSim::Config cfg;
  cfg.num_cells = 200;
  cfg.num_cars = 60;
  TrafficSim sim(cfg);
  for (int t = 0; t < 300; ++t) {
    sim.Step();
    std::set<size_t> positions;
    for (size_t c = 0; c < sim.num_cars(); ++c) {
      EXPECT_TRUE(positions.insert(sim.position(c)).second)
          << "collision at t=" << t;
    }
  }
}

TEST(TrafficTest, FundamentalDiagramDecreasing) {
  // Mean speed decreases with density (the jam phase transition).
  auto speeds = FundamentalDiagram({50, 200, 400, 700}, 1000, 100, 100, 5);
  ASSERT_EQ(speeds.size(), 4u);
  EXPECT_GT(speeds[0], speeds[1]);
  EXPECT_GT(speeds[1], speeds[2]);
  EXPECT_GT(speeds[2], speeds[3]);
}

TEST(SchellingTest, SegregationEmergesFromMildPreferences) {
  SchellingSim::Config cfg;
  cfg.width = 40;
  cfg.height = 40;
  cfg.occupancy = 0.85;
  cfg.similarity_threshold = 0.35;  // mild preference
  SchellingSim sim(cfg);
  const double initial = sim.SegregationIndex();
  for (int t = 0; t < 60; ++t) sim.Step();
  const double final_seg = sim.SegregationIndex();
  // Random layout is near 0.5; dynamics push well above.
  EXPECT_NEAR(initial, 0.5, 0.06);
  EXPECT_GT(final_seg, initial + 0.15);
}

TEST(SchellingTest, ConvergesToContentment) {
  SchellingSim::Config cfg;
  cfg.width = 30;
  cfg.height = 30;
  cfg.similarity_threshold = 0.3;
  SchellingSim sim(cfg);
  size_t moves = 1;
  for (int t = 0; t < 200 && moves > 0; ++t) moves = sim.Step();
  EXPECT_GT(sim.ContentFraction(), 0.97);
}

TEST(SchellingTest, HighThresholdStaysRestless) {
  SchellingSim::Config cfg;
  cfg.width = 30;
  cfg.height = 30;
  cfg.similarity_threshold = 0.8;  // nearly impossible to satisfy
  SchellingSim sim(cfg);
  size_t total_moves = 0;
  for (int t = 0; t < 20; ++t) total_moves += sim.Step();
  EXPECT_GT(total_moves, 100u);
}

// Property sweep over traffic densities: flow is low at both extremes
// (empty road / gridlock) — the fundamental diagram is unimodal.
class TrafficDensityTest : public ::testing::TestWithParam<size_t> {};

TEST_P(TrafficDensityTest, SpeedWithinPhysicalBounds) {
  TrafficSim::Config cfg;
  cfg.num_cells = 500;
  cfg.num_cars = GetParam();
  TrafficSim sim(cfg);
  for (int t = 0; t < 100; ++t) sim.Step();
  EXPECT_GE(sim.MeanSpeed(), 0.0);
  EXPECT_LE(sim.MeanSpeed(), cfg.max_speed);
}

INSTANTIATE_TEST_SUITE_P(Densities, TrafficDensityTest,
                         ::testing::Values(10, 100, 250, 450));

}  // namespace
}  // namespace mde::abs
