/// Section 2.1 claims SimSQL is "well suited to scalable Bayesian machine
/// learning": a Gibbs sampler is exactly a database-valued Markov chain in
/// which each stochastic table holds one block of parameters and is
/// regenerated conditioned on the other tables' current version. This test
/// implements the conjugate Normal-Gamma Gibbs sampler that way and checks
/// the chain's posterior against closed forms.

#include <cmath>

#include <gtest/gtest.h>

#include "simsql/simsql.h"
#include "util/distributions.h"
#include "util/stats.h"

namespace mde::simsql {
namespace {

using table::DataType;
using table::Schema;
using table::Table;
using table::Value;

struct NormalGammaPrior {
  double mu0 = 0.0;
  double k0 = 1.0;
  double a0 = 2.0;
  double b0 = 2.0;
};

Table ScalarTable(const char* col, double v) {
  Table t{Schema({{col, DataType::kDouble}})};
  t.Append({Value(v)});
  return t;
}

TEST(BayesianGibbsTest, NormalGammaPosteriorViaChainTables) {
  // Data: x_i ~ N(3, sd 2).
  Rng data_rng(42);
  const size_t n = 200;
  std::vector<double> data;
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    data.push_back(SampleNormal(data_rng, 3.0, 2.0));
    sum += data.back();
  }
  const double xbar = sum / static_cast<double>(n);
  NormalGammaPrior prior;

  // Chain table MU: regenerated from the current TAU (same version —
  // SimSQL's recursive cross-table parametrization); chain table TAU:
  // regenerated from the previous MU.
  MarkovChainDb db;
  {
    Table dt{Schema({{"x", DataType::kDouble}})};
    for (double x : data) dt.Append({Value(x)});
    ASSERT_TRUE(db.AddDeterministic("DATA", std::move(dt)).ok());
  }
  ChainTableSpec tau_spec;
  tau_spec.name = "TAU";
  tau_spec.init = [](const DatabaseState&, Rng&) -> Result<Table> {
    return ScalarTable("tau", 1.0);
  };
  tau_spec.transition = [prior, n](const DatabaseState& prev,
                                   const DatabaseState& cur,
                                   Rng& rng) -> Result<Table> {
    const double mu = prev.at("MU").row(0)[0].AsDouble();
    double ss = 0.0;
    for (const auto& row : cur.at("DATA").rows()) {
      const double d = row[0].AsDouble() - mu;
      ss += d * d;
    }
    const double a = prior.a0 + (static_cast<double>(n) + 1.0) / 2.0;
    const double b = prior.b0 + 0.5 * ss +
                     0.5 * prior.k0 * (mu - prior.mu0) * (mu - prior.mu0);
    return ScalarTable("tau", SampleGamma(rng, a, 1.0 / b));
  };
  ChainTableSpec mu_spec;
  mu_spec.name = "MU";
  mu_spec.init = [](const DatabaseState&, Rng&) -> Result<Table> {
    return ScalarTable("mu", 0.0);
  };
  mu_spec.transition = [prior, n, xbar](const DatabaseState&,
                                        const DatabaseState& cur,
                                        Rng& rng) -> Result<Table> {
    // Uses the SAME-version TAU, generated just before MU this step.
    const double tau = cur.at("TAU").row(0)[0].AsDouble();
    const double kn = prior.k0 + static_cast<double>(n);
    const double mean =
        (prior.k0 * prior.mu0 + static_cast<double>(n) * xbar) / kn;
    return ScalarTable("mu", SampleNormal(rng, mean,
                                          1.0 / std::sqrt(kn * tau)));
  };
  ASSERT_TRUE(db.AddChainTable(std::move(tau_spec)).ok());
  ASSERT_TRUE(db.AddChainTable(std::move(mu_spec)).ok());

  // Collect posterior samples after burn-in via the observer.
  RunningStat mu_samples, tau_samples;
  const size_t steps = 3000;
  const size_t burn_in = 200;
  auto obs = [&](size_t i, const DatabaseState& s) -> Status {
    if (i > burn_in) {
      mu_samples.Add(s.at("MU").row(0)[0].AsDouble());
      tau_samples.Add(s.at("TAU").row(0)[0].AsDouble());
    }
    return Status::OK();
  };
  ASSERT_TRUE(db.Run(steps, 7, 0, obs).ok());

  // Closed-form Normal-Gamma posterior.
  const double kn = prior.k0 + static_cast<double>(n);
  const double post_mu =
      (prior.k0 * prior.mu0 + static_cast<double>(n) * xbar) / kn;
  double ss = 0.0;
  for (double x : data) ss += (x - xbar) * (x - xbar);
  const double an = prior.a0 + static_cast<double>(n) / 2.0;
  const double bn = prior.b0 + 0.5 * ss +
                    prior.k0 * static_cast<double>(n) * (xbar - prior.mu0) *
                        (xbar - prior.mu0) / (2.0 * kn);

  EXPECT_NEAR(mu_samples.mean(), post_mu, 0.03);
  EXPECT_NEAR(tau_samples.mean(), an / bn, 0.02);
  // Posterior sd of mu: sqrt(bn / (an * kn)) under the marginal t; rough
  // normal check within 20%.
  const double post_sd = std::sqrt(bn / (an * kn));
  EXPECT_NEAR(mu_samples.stddev(), post_sd, 0.2 * post_sd);
}

TEST(BayesianGibbsTest, ChainMixes) {
  // The mu-chain's lag-1 autocorrelation should be far from 1 (this Gibbs
  // sampler mixes essentially immediately because the conditional of mu
  // barely depends on tau).
  Rng data_rng(5);
  MarkovChainDb db;
  ChainTableSpec spec;
  spec.name = "MU";
  spec.init = [](const DatabaseState&, Rng&) -> Result<Table> {
    return ScalarTable("mu", 0.0);
  };
  spec.transition = [](const DatabaseState&, const DatabaseState&,
                       Rng& rng) -> Result<Table> {
    return ScalarTable("mu", SampleNormal(rng, 1.0, 0.5));
  };
  ASSERT_TRUE(db.AddChainTable(std::move(spec)).ok());
  std::vector<double> trace;
  auto obs = [&](size_t, const DatabaseState& s) -> Status {
    trace.push_back(s.at("MU").row(0)[0].AsDouble());
    return Status::OK();
  };
  ASSERT_TRUE(db.Run(2000, 9, 0, obs).ok());
  EXPECT_LT(std::fabs(Autocorrelation(trace, 1)), 0.1);
}

}  // namespace
}  // namespace mde::simsql
