#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "doe/designs.h"
#include "screening/screening.h"
#include "util/distributions.h"

namespace mde::screening {
namespace {

/// Linear response with positive main effects for the given important
/// factors (the sequential-bifurcation model assumptions).
ScreeningResponse MakeLinearResponse(const std::vector<double>& beta,
                                     double noise_sd) {
  return [beta, noise_sd](const std::vector<int>& levels, Rng& rng) {
    double y = 10.0;
    for (size_t f = 0; f < beta.size(); ++f) {
      y += beta[f] * static_cast<double>(levels[f]);
    }
    return y + SampleNormal(rng, 0.0, noise_sd);
  };
}

TEST(SequentialBifurcationTest, FindsImportantFactors) {
  std::vector<double> beta(64, 0.0);
  beta[3] = 4.0;
  beta[17] = 3.0;
  beta[50] = 5.0;
  auto result = SequentialBifurcation(MakeLinearResponse(beta, 0.05), 64,
                                      /*effect_threshold=*/1.0,
                                      /*replications=*/3, 7);
  EXPECT_EQ(result.important, (std::vector<size_t>{3, 17, 50}));
}

TEST(SequentialBifurcationTest, FarFewerRunsThanOneAtATime) {
  std::vector<double> beta(64, 0.0);
  beta[10] = 4.0;
  beta[42] = 4.0;
  auto sb = SequentialBifurcation(MakeLinearResponse(beta, 0.05), 64, 1.0, 3,
                                  11);
  auto oat = OneAtATimeScreening(MakeLinearResponse(beta, 0.05), 64, 1.0, 3,
                                 11);
  EXPECT_EQ(sb.important, oat.important);
  // Group testing wins decisively: O(k log n) vs n+1 staircase points.
  EXPECT_LT(sb.runs_used * 2, oat.runs_used);
}

TEST(SequentialBifurcationTest, NoImportantFactorsOneTest) {
  std::vector<double> beta(32, 0.0);
  auto result = SequentialBifurcation(MakeLinearResponse(beta, 0.01), 32,
                                      1.0, 2, 13);
  EXPECT_TRUE(result.important.empty());
  // Only the two endpoint staircase evaluations are needed.
  EXPECT_LE(result.runs_used, 2u * 2u);
}

TEST(SequentialBifurcationTest, AllFactorsImportant) {
  std::vector<double> beta(8, 3.0);
  auto result = SequentialBifurcation(MakeLinearResponse(beta, 0.05), 8, 1.0,
                                      3, 17);
  EXPECT_EQ(result.important.size(), 8u);
}

TEST(SequentialBifurcationTest, NoiseHandledByReplication) {
  std::vector<double> beta(16, 0.0);
  beta[5] = 4.0;
  auto result = SequentialBifurcation(MakeLinearResponse(beta, 1.0), 16, 1.0,
                                      /*replications=*/30, 19);
  EXPECT_EQ(result.important, (std::vector<size_t>{5}));
}

TEST(OneAtATimeTest, ThresholdRespected) {
  std::vector<double> beta = {2.0, 0.1, 0.0, 3.0};
  auto result = OneAtATimeScreening(MakeLinearResponse(beta, 0.01), 4, 1.0,
                                    2, 23);
  EXPECT_EQ(result.important, (std::vector<size_t>{0, 3}));
  EXPECT_EQ(result.runs_used, 2u * 5u);  // base + 4 flips, 2 reps each
}

TEST(GpScreeningTest, ThetaSeparatesActiveFactors) {
  // Response depends strongly on x1, not at all on x2/x3.
  Rng rng(29);
  linalg::Matrix design =
      doe::NearlyOrthogonalLatinHypercube(3, 25, 64, rng);
  // Scale to [0, 1].
  auto scaled = doe::ScaleDesign(design, {0, 0, 0}, {1, 1, 1});
  ASSERT_TRUE(scaled.ok());
  linalg::Vector y(scaled.value().rows());
  for (size_t r = 0; r < y.size(); ++r) {
    y[r] = std::sin(6.0 * scaled.value()(r, 0));
  }
  auto important = GpThetaScreening(scaled.value(), y, 0.5);
  ASSERT_TRUE(important.ok());
  ASSERT_FALSE(important.value().empty());
  EXPECT_EQ(important.value()[0], 0u);
  // x2 and x3 should not be flagged.
  for (size_t f : important.value()) EXPECT_EQ(f, 0u);
}

// Property sweep: SB scales logarithmically — runs grow slowly with the
// number of factors when k is fixed.
class SbScalingTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SbScalingTest, RunCountStaysSmall) {
  const size_t n = GetParam();
  std::vector<double> beta(n, 0.0);
  beta[n / 2] = 4.0;
  auto result =
      SequentialBifurcation(MakeLinearResponse(beta, 0.02), n, 1.0, 2, 31);
  EXPECT_EQ(result.important, (std::vector<size_t>{n / 2}));
  // ~2 log2(n) staircase points, 2 reps each.
  const double bound = 2.0 * 2.0 * (std::log2(static_cast<double>(n)) + 2.0);
  EXPECT_LE(static_cast<double>(result.runs_used), bound);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SbScalingTest,
                         ::testing::Values(16, 64, 256, 1024));

}  // namespace
}  // namespace mde::screening
