#include <cmath>

#include <gtest/gtest.h>

#include "timeseries/align.h"
#include "timeseries/forecast.h"
#include "timeseries/timeseries.h"
#include "util/distributions.h"
#include "util/thread_pool.h"

namespace mde::timeseries {
namespace {

TimeSeries MakeSine(size_t points, double t0 = 0.0, double t1 = 10.0) {
  TimeSeries ts(1);
  for (size_t i = 0; i < points; ++i) {
    const double t =
        t0 + (t1 - t0) * static_cast<double>(i) / (points - 1);
    EXPECT_TRUE(ts.Append(t, std::sin(t)).ok());
  }
  return ts;
}

TEST(TimeSeriesTest, AppendEnforcesOrder) {
  TimeSeries ts(1);
  EXPECT_TRUE(ts.Append(1.0, 1.0).ok());
  EXPECT_FALSE(ts.Append(1.0, 2.0).ok());   // equal time rejected
  EXPECT_FALSE(ts.Append(0.5, 2.0).ok());   // backwards rejected
  EXPECT_TRUE(ts.Append(2.0, 2.0).ok());
}

TEST(TimeSeriesTest, WidthChecked) {
  TimeSeries ts(2);
  EXPECT_FALSE(ts.Append(0.0, {1.0}).ok());
  EXPECT_TRUE(ts.Append(0.0, {1.0, 2.0}).ok());
}

TEST(TimeSeriesTest, SliceAndFindSegment) {
  TimeSeries ts = MakeSine(11, 0, 10);
  TimeSeries mid = ts.Slice(3.0, 7.0);
  EXPECT_EQ(mid.size(), 5u);
  EXPECT_EQ(ts.FindSegment(4.5).value(), 4u);
  EXPECT_EQ(ts.FindSegment(0.0).value(), 0u);
  EXPECT_FALSE(ts.FindSegment(-1.0).ok());
}

TEST(UniformGridTest, EndpointsExact) {
  auto g = UniformGrid(2.0, 5.0, 7);
  EXPECT_EQ(g.size(), 7u);
  EXPECT_DOUBLE_EQ(g.front(), 2.0);
  EXPECT_DOUBLE_EQ(g.back(), 5.0);
}

TEST(AlignmentKindTest, Classification) {
  EXPECT_EQ(DetermineAlignment(1.0, 5.0), AlignmentKind::kAggregation);
  EXPECT_EQ(DetermineAlignment(5.0, 1.0), AlignmentKind::kInterpolation);
  EXPECT_EQ(DetermineAlignment(2.0, 2.0), AlignmentKind::kIdentity);
}

TEST(AggregateAlignTest, MeanCoarsening) {
  TimeSeries src(1);
  for (int i = 1; i <= 6; ++i) {
    ASSERT_TRUE(src.Append(i, static_cast<double>(i)).ok());
  }
  auto out = AggregateAlign(src, {2.0, 4.0, 6.0}, AggMethod::kMean);
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ(out.value().value(0), 1.5);  // mean of 1, 2
  EXPECT_DOUBLE_EQ(out.value().value(1), 3.5);  // mean of 3, 4
  EXPECT_DOUBLE_EQ(out.value().value(2), 5.5);
}

TEST(AggregateAlignTest, SumMinMaxLast) {
  TimeSeries src(1);
  for (int i = 1; i <= 4; ++i) {
    ASSERT_TRUE(src.Append(i, static_cast<double>(i)).ok());
  }
  EXPECT_DOUBLE_EQ(
      AggregateAlign(src, {4.0}, AggMethod::kSum).value().value(0), 10.0);
  EXPECT_DOUBLE_EQ(
      AggregateAlign(src, {4.0}, AggMethod::kMin).value().value(0), 1.0);
  EXPECT_DOUBLE_EQ(
      AggregateAlign(src, {4.0}, AggMethod::kMax).value().value(0), 4.0);
  EXPECT_DOUBLE_EQ(
      AggregateAlign(src, {4.0}, AggMethod::kLast).value().value(0), 4.0);
}

TEST(AggregateAlignTest, EmptyTickErrors) {
  TimeSeries src(1);
  ASSERT_TRUE(src.Append(1.0, 1.0).ok());
  auto out = AggregateAlign(src, {1.0, 2.0}, AggMethod::kMean);
  EXPECT_FALSE(out.ok());
}

TEST(LinearInterpolateTest, ExactOnLinearData) {
  TimeSeries src(1);
  for (int i = 0; i <= 10; ++i) {
    ASSERT_TRUE(src.Append(i, 2.0 * i + 1.0).ok());
  }
  auto out = LinearInterpolate(src, {0.5, 3.25, 9.75});
  ASSERT_TRUE(out.ok());
  EXPECT_NEAR(out.value().value(0), 2.0, 1e-12);
  EXPECT_NEAR(out.value().value(1), 7.5, 1e-12);
  EXPECT_NEAR(out.value().value(2), 20.5, 1e-12);
}

TEST(LinearInterpolateTest, OutOfRangeErrors) {
  TimeSeries src = MakeSine(5, 0, 4);
  EXPECT_FALSE(LinearInterpolate(src, {-0.1}).ok());
  EXPECT_FALSE(LinearInterpolate(src, {4.1}).ok());
}

TEST(SplineSystemTest, TridiagonalShape) {
  TimeSeries src = MakeSine(10);
  auto sys = BuildSplineSystem(src, 0);
  ASSERT_TRUE(sys.ok());
  EXPECT_EQ(sys.value().a.size(), 8u);  // m-1 interior unknowns
  EXPECT_EQ(sys.value().b.size(), 8u);
}

TEST(SplineConstantsTest, NaturalBoundary) {
  TimeSeries src = MakeSine(20);
  auto sigma = SplineConstants(src, 0);
  ASSERT_TRUE(sigma.ok());
  EXPECT_DOUBLE_EQ(sigma.value().front(), 0.0);
  EXPECT_DOUBLE_EQ(sigma.value().back(), 0.0);
}

TEST(CubicSplineTest, InterpolatesKnotsExactly) {
  TimeSeries src = MakeSine(15);
  std::vector<double> knots = src.times();
  auto out = CubicSplineInterpolate(src, knots);
  ASSERT_TRUE(out.ok());
  for (size_t i = 0; i < src.size(); ++i) {
    EXPECT_NEAR(out.value().value(i), src.value(i), 1e-10);
  }
}

TEST(CubicSplineTest, BeatsLinearOnSmoothCurve) {
  TimeSeries src = MakeSine(12, 0, 6.28);
  std::vector<double> targets = UniformGrid(0.1, 6.2, 200);
  auto spline = CubicSplineInterpolate(src, targets);
  auto linear = LinearInterpolate(src, targets);
  ASSERT_TRUE(spline.ok() && linear.ok());
  double spline_err = 0.0, linear_err = 0.0;
  for (size_t i = 0; i < targets.size(); ++i) {
    const double truth = std::sin(targets[i]);
    spline_err += std::pow(spline.value().value(i) - truth, 2);
    linear_err += std::pow(linear.value().value(i) - truth, 2);
  }
  EXPECT_LT(spline_err, linear_err * 0.1);
}

TEST(ParallelInterpolateTest, MatchesSequential) {
  TimeSeries src = MakeSine(40);
  std::vector<double> targets = UniformGrid(0.05, 9.95, 500);
  ThreadPool pool(4);
  auto par = ParallelInterpolate(src, targets, pool, /*use_spline=*/true);
  auto seq = CubicSplineInterpolate(src, targets);
  ASSERT_TRUE(par.ok() && seq.ok());
  for (size_t i = 0; i < targets.size(); ++i) {
    EXPECT_NEAR(par.value().value(i), seq.value().value(i), 1e-12);
  }
}

TEST(ParallelInterpolateTest, LinearModeMatches) {
  TimeSeries src = MakeSine(40);
  std::vector<double> targets = UniformGrid(0.05, 9.95, 300);
  ThreadPool pool(3);
  auto par = ParallelInterpolate(src, targets, pool, /*use_spline=*/false);
  auto seq = LinearInterpolate(src, targets);
  ASSERT_TRUE(par.ok() && seq.ok());
  for (size_t i = 0; i < targets.size(); ++i) {
    EXPECT_NEAR(par.value().value(i), seq.value().value(i), 1e-12);
  }
}

TEST(TrendAr1Test, RecoversLinearTrend) {
  TimeSeries ts(1);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(ts.Append(i, 10.0 + 2.0 * i).ok());
  }
  auto model = TrendAr1Model::Fit(ts, /*quadratic=*/false);
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model.value().params().trend[0], 10.0, 1e-4);
  EXPECT_NEAR(model.value().params().trend[1], 2.0, 1e-5);
  auto fc = model.value().Forecast({60.0});
  EXPECT_NEAR(fc[0], 130.0, 1e-4);
}

TEST(TrendAr1Test, EstimatesAr1Coefficient) {
  Rng rng(31);
  TimeSeries ts(1);
  double resid = 0.0;
  for (int i = 0; i < 3000; ++i) {
    resid = 0.7 * resid + SampleNormal(rng, 0.0, 1.0);
    ASSERT_TRUE(ts.Append(i, 5.0 + resid).ok());
  }
  auto model = TrendAr1Model::Fit(ts, false);
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model.value().params().phi, 0.7, 0.05);
}

TEST(SyntheticHousingTest, HasRegimeBreak) {
  TimeSeries ts = SyntheticHousingIndex(1970, 2011, 2006, 99);
  // Prices rise until 2006 then fall.
  double at_2006 = 0.0, at_2011 = 0.0, at_1990 = 0.0;
  for (size_t i = 0; i < ts.size(); ++i) {
    if (ts.time(i) == 1990) at_1990 = ts.value(i);
    if (ts.time(i) == 2006) at_2006 = ts.value(i);
    if (ts.time(i) == 2011) at_2011 = ts.value(i);
  }
  EXPECT_GT(at_2006, at_1990);
  EXPECT_LT(at_2011, at_2006 * 0.8);
}

TEST(Figure1Test, ExtrapolationFailsAcrossBreak) {
  // The Figure 1 phenomenon: a model fit through 2006 predicts continued
  // growth; reality collapses.
  TimeSeries truth = SyntheticHousingIndex(1970, 2011, 2006, 7);
  // Fit on the log scale (prices grow multiplicatively).
  TimeSeries log_history(1);
  for (size_t i = 0; i < truth.size(); ++i) {
    if (truth.time(i) <= 2006) {
      ASSERT_TRUE(
          log_history.Append(truth.time(i), std::log(truth.value(i))).ok());
    }
  }
  auto model = TrendAr1Model::Fit(log_history, /*quadratic=*/true);
  ASSERT_TRUE(model.ok());
  std::vector<double> future_times;
  std::vector<double> future_truth;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (truth.time(i) > 2006) {
      future_times.push_back(truth.time(i));
      future_truth.push_back(truth.value(i));
    }
  }
  auto log_pred = model.value().Forecast(future_times);
  // Prediction keeps growing; truth collapses: prediction exceeds truth by
  // a wide margin at 2011.
  EXPECT_GT(std::exp(log_pred.back()), future_truth.back() * 1.3);
  // In-sample fit is good (log-RMSE small).
  std::vector<double> hist_times, hist_vals;
  for (size_t i = 0; i < log_history.size(); ++i) {
    hist_times.push_back(log_history.time(i));
    hist_vals.push_back(log_history.value(i));
  }
  auto fit = model.value().Forecast(hist_times);
  EXPECT_LT(ForecastRmse(fit, hist_vals), 0.1);
}

}  // namespace
}  // namespace mde::timeseries
