/// Tests for the Indemics behavioral-adaptation extension: fear levels
/// track local infectious prevalence and reduce effective contact time.

#include <gtest/gtest.h>

#include "epi/indemics.h"
#include "epi/network.h"
#include "table/query.h"

namespace mde::epi {
namespace {

PopulationConfig Pop(size_t n, uint64_t seed) {
  PopulationConfig cfg;
  cfg.num_people = n;
  cfg.seed = seed;
  return cfg;
}

TEST(BehaviorTest, FearRisesDuringOutbreak) {
  DiseaseConfig dc;
  dc.behavioral_adaptation = true;
  dc.transmissibility = 0.015;
  dc.initial_infections = 30;
  EpidemicSim sim(GeneratePopulation(Pop(2000, 3)), dc);
  sim.Advance(20);
  double total_fear = 0.0;
  for (const Person& p : sim.network().people()) total_fear += p.fear;
  EXPECT_GT(total_fear / 2000.0, 0.01);
}

TEST(BehaviorTest, FearStaysZeroWithoutAdaptation) {
  DiseaseConfig dc;
  dc.behavioral_adaptation = false;
  dc.transmissibility = 0.015;
  EpidemicSim sim(GeneratePopulation(Pop(1000, 4)), dc);
  sim.Advance(20);
  for (const Person& p : sim.network().people()) {
    EXPECT_DOUBLE_EQ(p.fear, 0.0);
  }
}

TEST(BehaviorTest, AdaptationSuppressesEpidemic) {
  DiseaseConfig base;
  base.transmissibility = 0.012;
  base.seed = 11;
  DiseaseConfig adaptive = base;
  adaptive.behavioral_adaptation = true;

  EpidemicSim plain(GeneratePopulation(Pop(4000, 5)), base);
  plain.Advance(120);
  EpidemicSim careful(GeneratePopulation(Pop(4000, 5)), adaptive);
  careful.Advance(120);
  // Fear-driven contact reduction cuts the attack count.
  EXPECT_LT(careful.TotalInfected(), plain.TotalInfected());
}

TEST(BehaviorTest, FearDecaysAfterOutbreak) {
  DiseaseConfig dc;
  dc.behavioral_adaptation = true;
  dc.transmissibility = 0.02;
  dc.mean_infectious_days = 2.0;
  dc.fear_decay = 0.7;
  EpidemicSim sim(GeneratePopulation(Pop(1500, 6)), dc);
  sim.Advance(60);
  double fear_mid = 0.0;
  for (const Person& p : sim.network().people()) fear_mid += p.fear;
  // Let the epidemic burn out, then fear should fade.
  sim.Advance(200);
  double fear_late = 0.0;
  for (const Person& p : sim.network().people()) fear_late += p.fear;
  EXPECT_LT(fear_late, fear_mid * 0.5 + 1.0);
}

TEST(BehaviorTest, FearVisibleThroughQueryEngine) {
  DiseaseConfig dc;
  dc.behavioral_adaptation = true;
  dc.transmissibility = 0.02;
  dc.initial_infections = 40;
  EpidemicSim sim(GeneratePopulation(Pop(1500, 7)), dc);
  sim.Advance(15);
  // SQL-style: average fear of people with an infectious household member
  // should exceed the population average. Simpler check: mean fear > 0
  // via the relation.
  auto mean_fear = table::Query(sim.PersonTable())
                       .GroupByAgg({}, {{table::AggKind::kAvg, "fear",
                                         "mean_fear"}})
                       .ExecuteScalar();
  ASSERT_TRUE(mean_fear.ok());
  EXPECT_GT(mean_fear.value().AsDouble(), 0.0);
  EXPECT_LE(mean_fear.value().AsDouble(), 1.0);
}

}  // namespace
}  // namespace mde::epi
