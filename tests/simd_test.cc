#include "simd/simd.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "mcdb/bundle.h"
#include "table/vec_ops.h"
#include "util/aligned.h"
#include "util/rng.h"

/// Differential suite for the runtime-dispatched SIMD layer: every kernel,
/// on every tier this machine supports, must produce BITWISE-identical
/// results to the portable scalar reference — including NaN handling, empty
/// inputs, sub-lane lengths and lengths that are not a multiple of the
/// vector width or of 64.
namespace mde {
namespace {

using simd::Cmp;
using simd::Tier;

// The batch/grain invariants the bitmap word layout depends on
// (satellite: pool chunk and bundle row-grain boundaries may never tear a
// 64-bit activity/validity word).
static_assert(table::kVecGrain % 64 == 0);
static_assert(mcdb::BundleTable::kRowGrain % 64 == 0);
static_assert(table::kVecGrain % simd::kRngBatch == 0);
static_assert(simd::kRngBatch == 64);

std::vector<Tier> AvailableTiers() {
  std::vector<Tier> tiers = {Tier::kScalar};
  const int best = static_cast<int>(simd::BestSupportedTier());
  if (best >= static_cast<int>(Tier::kSse4)) tiers.push_back(Tier::kSse4);
  if (best >= static_cast<int>(Tier::kAvx2)) tiers.push_back(Tier::kAvx2);
  return tiers;
}

/// Runs `fn` once per available tier with the dispatch table pinned to it;
/// restores the best tier afterwards.
template <typename Fn>
void ForEachTier(Fn&& fn) {
  for (Tier t : AvailableTiers()) {
    simd::SetTier(t);
    ASSERT_EQ(simd::ActiveTier(), t);
    fn(t);
  }
  simd::SetTier(simd::BestSupportedTier());
}

/// Interesting lengths: empty, below any lane width, straddling one vector,
/// straddling one 64-bit word, non-multiples of both, and chunk-sized.
const size_t kLens[] = {0, 1, 3, 5, 63, 64, 65, 127, 128, 130, 1000, 4096, 4131};

std::vector<double> RandomDoubles(size_t n, uint64_t seed, bool with_nan) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = (rng.NextDouble() - 0.5) * 100.0;
    if (with_nan && rng.NextBounded(13) == 0) {
      v[i] = std::numeric_limits<double>::quiet_NaN();
    }
  }
  return v;
}

bool BitEq(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

TEST(SimdDispatchTest, TierNamesAndClamping) {
  EXPECT_STREQ(simd::TierName(Tier::kScalar), "scalar");
  EXPECT_STREQ(simd::TierName(Tier::kSse4), "sse4");
  EXPECT_STREQ(simd::TierName(Tier::kAvx2), "avx2");
  // Requesting more than the hardware supports clamps.
  simd::SetTier(Tier::kAvx2);
  EXPECT_LE(static_cast<int>(simd::ActiveTier()),
            static_cast<int>(simd::BestSupportedTier()));
  simd::SetTier(Tier::kScalar);
  EXPECT_EQ(simd::ActiveTier(), Tier::kScalar);
  simd::SetTier(simd::BestSupportedTier());
}

TEST(SimdKernelTest, CmpF64BitmapMatchesScalarOnEveryTier) {
  for (size_t n : kLens) {
    const std::vector<double> data = RandomDoubles(n, 0xabc + n, true);
    const double lit = 7.25;
    for (Cmp op : {Cmp::kEq, Cmp::kNe, Cmp::kLt, Cmp::kLe, Cmp::kGt, Cmp::kGe}) {
      const size_t nwords = (n + 63) / 64;
      std::vector<uint64_t> ref(nwords, 0xdeadbeefULL);
      simd::SetTier(Tier::kScalar);
      simd::CmpF64Bitmap(data.data(), n, op, lit, ref.data());
      // Scalar result itself must equal the C++ operator element by element.
      for (size_t j = 0; j < n; ++j) {
        const double x = data[j];
        bool expect = false;
        switch (op) {
          case Cmp::kEq: expect = x == lit; break;
          case Cmp::kNe: expect = x != lit; break;
          case Cmp::kLt: expect = x < lit; break;
          case Cmp::kLe: expect = x <= lit; break;
          case Cmp::kGt: expect = x > lit; break;
          case Cmp::kGe: expect = x >= lit; break;
        }
        ASSERT_EQ((ref[j / 64] >> (j % 64)) & 1, expect ? 1u : 0u)
            << "n=" << n << " j=" << j;
      }
      if (n % 64 != 0) {
        ASSERT_EQ(ref.back() >> (n % 64), 0u) << "padding bits must be zero";
      }
      ForEachTier([&](Tier t) {
        std::vector<uint64_t> out(nwords, 0x12345678ULL);
        simd::CmpF64Bitmap(data.data(), n, op, lit, out.data());
        ASSERT_EQ(out, ref) << "tier=" << simd::TierName(t) << " n=" << n
                            << " op=" << static_cast<int>(op);
      });
    }
  }
}

TEST(SimdKernelTest, CmpI64RangeBitmapMatchesScalarOnEveryTier) {
  for (size_t n : kLens) {
    Rng rng(0x5151 + n);
    std::vector<int64_t> data(n);
    for (auto& v : data) {
      v = static_cast<int64_t>(rng.Next() % 2001) - 1000;
    }
    const size_t nwords = (n + 63) / 64;
    struct Case { int64_t lo, hi; bool neg; };
    const Case cases[] = {{-100, 250, false}, {-100, 250, true},
                          {5, 5, false},      {10, -10, false},
                          {10, -10, true}};
    for (const Case& c : cases) {
      std::vector<uint64_t> ref(nwords);
      simd::SetTier(Tier::kScalar);
      simd::CmpI64RangeBitmap(data.data(), n, c.lo, c.hi, c.neg, ref.data());
      for (size_t j = 0; j < n; ++j) {
        const bool expect = (c.lo <= data[j] && data[j] <= c.hi) != c.neg;
        ASSERT_EQ((ref[j / 64] >> (j % 64)) & 1, expect ? 1u : 0u);
      }
      ForEachTier([&](Tier t) {
        std::vector<uint64_t> out(nwords, ~0ULL);
        simd::CmpI64RangeBitmap(data.data(), n, c.lo, c.hi, c.neg, out.data());
        ASSERT_EQ(out, ref) << "tier=" << simd::TierName(t) << " n=" << n;
      });
    }
  }
}

TEST(SimdKernelTest, CmpU32AndU8BitmapsMatchScalarOnEveryTier) {
  for (size_t n : kLens) {
    Rng rng(0x7777 + n);
    std::vector<uint32_t> codes(n);
    std::vector<uint8_t> bytes(n);
    for (size_t i = 0; i < n; ++i) {
      codes[i] = static_cast<uint32_t>(rng.NextBounded(5));
      bytes[i] = static_cast<uint8_t>(rng.NextBounded(2));
    }
    const size_t nwords = (n + 63) / 64;
    for (bool negate : {false, true}) {
      std::vector<uint64_t> ref(nwords);
      simd::SetTier(Tier::kScalar);
      simd::CmpU32EqBitmap(codes.data(), n, 3, negate, ref.data());
      ForEachTier([&](Tier t) {
        std::vector<uint64_t> out(nwords, 0xabcdULL);
        simd::CmpU32EqBitmap(codes.data(), n, 3, negate, out.data());
        ASSERT_EQ(out, ref) << "tier=" << simd::TierName(t) << " n=" << n;
      });
    }
    for (bool match_nonzero : {false, true}) {
      std::vector<uint64_t> ref(nwords);
      simd::SetTier(Tier::kScalar);
      simd::CmpU8Bitmap(bytes.data(), n, match_nonzero, ref.data());
      for (size_t j = 0; j < n; ++j) {
        ASSERT_EQ((ref[j / 64] >> (j % 64)) & 1,
                  ((bytes[j] != 0) == match_nonzero) ? 1u : 0u);
      }
      ForEachTier([&](Tier t) {
        std::vector<uint64_t> out(nwords, 0xabcdULL);
        simd::CmpU8Bitmap(bytes.data(), n, match_nonzero, out.data());
        ASSERT_EQ(out, ref) << "tier=" << simd::TierName(t) << " n=" << n;
      });
    }
  }
}

TEST(SimdKernelTest, BitmapWordOpsMatchScalarOnEveryTier) {
  for (size_t nwords : {size_t{0}, size_t{1}, size_t{3}, size_t{4}, size_t{7},
                        size_t{64}, size_t{65}}) {
    Rng rng(0x9999 + nwords);
    std::vector<uint64_t> a(nwords), b(nwords);
    for (size_t i = 0; i < nwords; ++i) {
      a[i] = rng.Next();
      b[i] = rng.Next();
    }
    uint64_t pop_ref = 0;
    std::vector<uint64_t> and_ref(nwords), or_ref(nwords), andnot_ref(nwords);
    for (size_t i = 0; i < nwords; ++i) {
      and_ref[i] = a[i] & b[i];
      or_ref[i] = a[i] | b[i];
      andnot_ref[i] = a[i] & ~b[i];
      pop_ref += static_cast<uint64_t>(std::popcount(a[i]));
    }
    ForEachTier([&](Tier t) {
      std::vector<uint64_t> out(nwords);
      simd::AndWords(a.data(), b.data(), nwords, out.data());
      ASSERT_EQ(out, and_ref) << simd::TierName(t);
      simd::OrWords(a.data(), b.data(), nwords, out.data());
      ASSERT_EQ(out, or_ref) << simd::TierName(t);
      simd::AndNotWords(a.data(), b.data(), nwords, out.data());
      ASSERT_EQ(out, andnot_ref) << simd::TierName(t);
      ASSERT_EQ(simd::PopcountWords(a.data(), nwords), pop_ref)
          << simd::TierName(t);
    });
  }
}

TEST(SimdKernelTest, BitmapToSelEnumeratesSetBitsAscending) {
  Rng rng(0x4242);
  std::vector<uint64_t> words = {0, ~0ULL, rng.Next(), 1ULL << 63, rng.Next()};
  std::vector<uint32_t> expect;
  for (size_t w = 0; w < words.size(); ++w) {
    for (uint32_t b = 0; b < 64; ++b) {
      if ((words[w] >> b) & 1) {
        expect.push_back(1000 + static_cast<uint32_t>(w) * 64 + b);
      }
    }
  }
  std::vector<uint32_t> out(expect.size() + 8, 0xffffffffu);
  const size_t k = simd::BitmapToSel(words.data(), words.size(), 1000,
                                     out.data());
  ASSERT_EQ(k, expect.size());
  out.resize(k);
  EXPECT_EQ(out, expect);
}

TEST(SimdKernelTest, CmpF64MaskWordMatchesScalarForEveryWidth) {
  const std::vector<double> data = RandomDoubles(64, 0x2468, true);
  for (size_t nbits = 0; nbits <= 64; ++nbits) {
    for (Cmp op : {Cmp::kEq, Cmp::kNe, Cmp::kLt, Cmp::kLe, Cmp::kGt, Cmp::kGe}) {
      simd::SetTier(Tier::kScalar);
      const uint64_t ref = simd::CmpF64MaskWord(data.data(), nbits, op, 1.0);
      if (nbits < 64) {
        ASSERT_EQ(ref >> nbits, 0u) << "high bits must be zero";
      }
      ForEachTier([&](Tier t) {
        ASSERT_EQ(simd::CmpF64MaskWord(data.data(), nbits, op, 1.0), ref)
            << "tier=" << simd::TierName(t) << " nbits=" << nbits
            << " op=" << static_cast<int>(op);
      });
    }
  }
}

TEST(SimdKernelTest, MaskedAndDenseAddsMatchScalarBitwise) {
  const std::vector<double> x = RandomDoubles(64, 0x1357, false);
  const std::vector<double> acc0 = RandomDoubles(64, 0x8642, false);
  const uint64_t masks[] = {0,       ~0ULL,         0x1ULL,
                            1ULL << 63, 0xf0f0f0f0f0f0f0f0ULL,
                            0x123456789abcdef0ULL};
  for (uint64_t mask : masks) {
    std::vector<double> ref = acc0;
    for (uint64_t m = mask; m != 0; m &= m - 1) {
      const int b = std::countr_zero(m);
      ref[b] += x[b];
    }
    std::vector<double> refc = acc0;
    for (uint64_t m = mask; m != 0; m &= m - 1) {
      refc[std::countr_zero(m)] += 2.5;
    }
    ForEachTier([&](Tier t) {
      std::vector<double> acc = acc0;
      simd::MaskedAddF64Word(acc.data(), x.data(), mask);
      for (int j = 0; j < 64; ++j) {
        ASSERT_TRUE(BitEq(acc[j], ref[j]))
            << simd::TierName(t) << " mask=" << mask << " j=" << j;
      }
      acc = acc0;
      simd::MaskedAddConstF64Word(acc.data(), 2.5, mask);
      for (int j = 0; j < 64; ++j) {
        ASSERT_TRUE(BitEq(acc[j], refc[j])) << simd::TierName(t) << " j=" << j;
      }
    });
  }
  for (size_t n : kLens) {
    const std::vector<double> xs = RandomDoubles(n, 0x777 + n, false);
    const std::vector<double> a0 = RandomDoubles(n, 0x888 + n, false);
    std::vector<double> ref = a0;
    for (size_t i = 0; i < n; ++i) ref[i] += xs[i];
    std::vector<double> refc = a0;
    for (size_t i = 0; i < n; ++i) refc[i] += -1.25;
    ForEachTier([&](Tier t) {
      std::vector<double> acc = a0;
      simd::AddF64(acc.data(), xs.data(), n);
      for (size_t j = 0; j < n; ++j) {
        ASSERT_TRUE(BitEq(acc[j], ref[j])) << simd::TierName(t) << " n=" << n;
      }
      acc = a0;
      simd::AddConstF64(acc.data(), -1.25, n);
      for (size_t j = 0; j < n; ++j) {
        ASSERT_TRUE(BitEq(acc[j], refc[j])) << simd::TierName(t) << " n=" << n;
      }
    });
  }
}

TEST(SimdKernelTest, AffineMapMatchesScalarBitwiseAndAllowsInPlace) {
  for (size_t n : kLens) {
    const std::vector<double> in = RandomDoubles(n, 0xaaa + n, false);
    const double scale = 3.7, offset = -11.25;
    std::vector<double> ref(n);
    for (size_t i = 0; i < n; ++i) ref[i] = offset + scale * in[i];
    ForEachTier([&](Tier t) {
      std::vector<double> out(n, std::numeric_limits<double>::quiet_NaN());
      simd::AffineMapF64(in.data(), n, scale, offset, out.data());
      for (size_t j = 0; j < n; ++j) {
        ASSERT_TRUE(BitEq(out[j], ref[j])) << simd::TierName(t) << " n=" << n;
      }
      std::vector<double> inplace = in;
      simd::AffineMapF64(inplace.data(), n, scale, offset, inplace.data());
      for (size_t j = 0; j < n; ++j) {
        ASSERT_TRUE(BitEq(inplace[j], ref[j])) << simd::TierName(t);
      }
    });
  }
}

TEST(SimdKernelTest, ReductionsMatchScalarBitwiseOnEveryTier) {
  for (size_t n : kLens) {
    const std::vector<double> x = RandomDoubles(n, 0xbbb + n, false);
    simd::SetTier(Tier::kScalar);
    const double sum_ref = simd::SumF64(x.data(), n);
    const double min_ref = simd::MinF64(x.data(), n);
    const double max_ref = simd::MaxF64(x.data(), n);
    if (n == 0) {
      EXPECT_EQ(sum_ref, 0.0);
      EXPECT_EQ(min_ref, std::numeric_limits<double>::infinity());
      EXPECT_EQ(max_ref, -std::numeric_limits<double>::infinity());
    }
    ForEachTier([&](Tier t) {
      ASSERT_TRUE(BitEq(simd::SumF64(x.data(), n), sum_ref))
          << simd::TierName(t) << " n=" << n;
      ASSERT_TRUE(BitEq(simd::MinF64(x.data(), n), min_ref))
          << simd::TierName(t) << " n=" << n;
      ASSERT_TRUE(BitEq(simd::MaxF64(x.data(), n), max_ref))
          << simd::TierName(t) << " n=" << n;
    });
  }
  // NaN handling is the vminpd/vmaxpd rule (acc = acc < x ? acc : x): a NaN
  // survives only while it is the newer operand. Cross-tier results must
  // still agree bit for bit on NaN-laden data...
  for (size_t n : kLens) {
    const std::vector<double> x = RandomDoubles(n, 0xccc + n, true);
    simd::SetTier(Tier::kScalar);
    const double sum_ref = simd::SumF64(x.data(), n);
    const double min_ref = simd::MinF64(x.data(), n);
    const double max_ref = simd::MaxF64(x.data(), n);
    ForEachTier([&](Tier t) {
      ASSERT_TRUE(BitEq(simd::SumF64(x.data(), n), sum_ref))
          << simd::TierName(t) << " n=" << n;
      ASSERT_TRUE(BitEq(simd::MinF64(x.data(), n), min_ref))
          << simd::TierName(t) << " n=" << n;
      ASSERT_TRUE(BitEq(simd::MaxF64(x.data(), n), max_ref))
          << simd::TierName(t) << " n=" << n;
    });
  }
  // ...and a NaN that is the last element of lane 3 provably reaches the
  // result through the (l0+l1)+(l2+l3)-shaped combine on every tier.
  std::vector<double> withnan = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0,
                                 std::numeric_limits<double>::quiet_NaN(),
                                 9.0};
  ForEachTier([&](Tier t) {
    EXPECT_TRUE(std::isnan(simd::MinF64(withnan.data(), withnan.size())))
        << simd::TierName(t);
    EXPECT_TRUE(std::isnan(simd::MaxF64(withnan.data(), withnan.size())))
        << simd::TierName(t);
  });
}

TEST(SimdKernelTest, RngAndVariateBlocksIdenticalAcrossTiers) {
  alignas(64) uint64_t state0[16];
  Rng seeder(0x1020304050ULL);
  for (auto& w : state0) w = seeder.Next();

  simd::SetTier(Tier::kScalar);
  alignas(64) uint64_t state_ref[16];
  std::memcpy(state_ref, state0, sizeof(state0));
  alignas(64) uint64_t raw_ref[simd::kRngBatch];
  simd::RngBlock(state_ref, raw_ref);
  alignas(64) double uni_ref[simd::kRngBatch];
  alignas(64) double nrm_ref[simd::kRngBatch];
  simd::UniformBlock(raw_ref, uni_ref);
  simd::NormalBlock(raw_ref, nrm_ref);

  // Lane semantics: lane l of the block is a xoshiro256++ stream seeded
  // with state words state0[w*4+l], and uniforms are (raw >> 12) * 2^-52.
  for (int l = 0; l < 4; ++l) {
    Rng lane(0);
    lane.set_state({state0[0 * 4 + l], state0[1 * 4 + l], state0[2 * 4 + l],
                    state0[3 * 4 + l]});
    for (int s = 0; s < 16; ++s) {
      ASSERT_EQ(raw_ref[s * 4 + l], lane.Next()) << "lane=" << l;
    }
  }
  for (size_t j = 0; j < simd::kRngBatch; ++j) {
    ASSERT_TRUE(BitEq(uni_ref[j],
                      static_cast<double>(raw_ref[j] >> 12) * 0x1.0p-52));
    ASSERT_GE(uni_ref[j], 0.0);
    ASSERT_LT(uni_ref[j], 1.0);
    ASSERT_TRUE(std::isfinite(nrm_ref[j]));
  }

  ForEachTier([&](Tier t) {
    alignas(64) uint64_t state[16];
    std::memcpy(state, state0, sizeof(state0));
    alignas(64) uint64_t raw[simd::kRngBatch];
    simd::RngBlock(state, raw);
    ASSERT_EQ(std::memcmp(state, state_ref, sizeof(state)), 0)
        << simd::TierName(t);
    ASSERT_EQ(std::memcmp(raw, raw_ref, sizeof(raw)), 0) << simd::TierName(t);
    alignas(64) double uni[simd::kRngBatch];
    alignas(64) double nrm[simd::kRngBatch];
    simd::UniformBlock(raw, uni);
    simd::NormalBlock(raw, nrm);
    for (size_t j = 0; j < simd::kRngBatch; ++j) {
      ASSERT_TRUE(BitEq(uni[j], uni_ref[j]))
          << simd::TierName(t) << " j=" << j;
      ASSERT_TRUE(BitEq(nrm[j], nrm_ref[j]))
          << simd::TierName(t) << " j=" << j;
    }
  });
}

TEST(SimdKernelTest, BatchRngStreamInvariantUnderTierAndChunking) {
  constexpr size_t kDraws = 100000;
  simd::SetTier(Tier::kScalar);
  std::vector<double> uni_ref(kDraws), nrm_ref(kDraws);
  {
    Rng seeder(0xfeed);
    BatchRng batch(seeder);
    batch.FillUniform(uni_ref.data(), kDraws);
    batch.FillNormal(nrm_ref.data(), kDraws);
  }
  ForEachTier([&](Tier t) {
    Rng seeder(0xfeed);
    BatchRng batch(seeder);
    std::vector<double> uni(kDraws), nrm(kDraws);
    batch.FillUniform(uni.data(), kDraws);
    batch.FillNormal(nrm.data(), kDraws);
    for (size_t j = 0; j < kDraws; ++j) {
      ASSERT_TRUE(BitEq(uni[j], uni_ref[j]))
          << simd::TierName(t) << " j=" << j;
      ASSERT_TRUE(BitEq(nrm[j], nrm_ref[j]))
          << simd::TierName(t) << " j=" << j;
    }
  });
  // Chunked consumption (odd sizes, single draws) yields the same stream.
  {
    Rng seeder(0xfeed);
    BatchRng batch(seeder);
    std::vector<double> uni;
    uni.reserve(kDraws);
    size_t step = 1;
    while (uni.size() < kDraws) {
      const size_t take = std::min(step, kDraws - uni.size());
      std::vector<double> part(take);
      batch.FillUniform(part.data(), take);
      uni.insert(uni.end(), part.begin(), part.end());
      step = step * 3 + 1;
      if (step > 500) step = 1;
    }
    for (size_t j = 0; j < kDraws; ++j) {
      ASSERT_TRUE(BitEq(uni[j], uni_ref[j])) << "chunked j=" << j;
    }
    Rng seeder2(0xfeed);
    BatchRng one(seeder2);
    for (size_t j = 0; j < 200; ++j) {
      ASSERT_TRUE(BitEq(one.NextUniform(), uni_ref[j])) << j;
    }
  }
  // Normal stream has plausible moments (it is a real N(0,1) sampler, not
  // just a deterministic function).
  double mean = 0, var = 0;
  for (double v : nrm_ref) mean += v;
  mean /= kDraws;
  for (double v : nrm_ref) var += (v - mean) * (v - mean);
  var /= kDraws;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(SimdKernelTest, NormalBlockMatchesLibmBoxMullerClosely) {
  // The polynomial log/sin/cos are not libm, but they must be accurate: the
  // worst draw across a large sample stays within a few ulp-equivalents of
  // the libm-computed Box-Muller value.
  simd::SetTier(simd::BestSupportedTier());
  Rng seeder(0xacc);
  BatchRng batch(seeder);
  Rng seeder2(0xacc);
  // Reconstruct the raw stream to compute the libm reference.
  alignas(64) uint64_t state[16];
  for (int l = 0; l < 4; ++l) {
    SplitMix64 sm(seeder2.Next());
    for (int w = 0; w < 4; ++w) state[w * 4 + l] = sm.Next();
  }
  constexpr size_t kBlocks = 2000;
  double worst = 0;
  for (size_t blk = 0; blk < kBlocks; ++blk) {
    alignas(64) uint64_t raw[simd::kRngBatch];
    simd::RngBlock(state, raw);
    double got[simd::kRngBatch];
    batch.FillNormal(got, simd::kRngBatch);
    for (size_t i = 0; i < 32; ++i) {
      const double u1 =
          static_cast<double>(raw[i] >> 12) * 0x1.0p-52 + 0x1.0p-52;
      const double u2 = static_cast<double>(raw[32 + i] >> 12) * 0x1.0p-52;
      const double r = std::sqrt(-2.0 * std::log(u1));
      const double c = r * std::cos(6.283185307179586476925286766559 * u2);
      const double s = r * std::sin(6.283185307179586476925286766559 * u2);
      worst = std::max(worst, std::abs(got[i] - c));
      worst = std::max(worst, std::abs(got[32 + i] - s));
    }
  }
  EXPECT_LT(worst, 1e-11);
}

// ---------------------------------------------------------------------------
// Engine-level differential sweep (satellite): the full columnar filter
// path, the bundle query kernels, and a 1e6-draw GenerateScalarN stream
// must be bitwise-identical across every SIMD tier and for 1/2/8 worker
// threads. This is the end-to-end guarantee the per-kernel tests above
// build up to.
// ---------------------------------------------------------------------------

mcdb::MonteCarloDb MakeSimdSweepDb(size_t patients) {
  using table::DataType;
  using table::Row;
  using table::Schema;
  using table::Value;
  mcdb::MonteCarloDb db;
  table::Table p{
      Schema({{"PID", DataType::kInt64}, {"REGION", DataType::kString}})};
  for (size_t i = 0; i < patients; ++i) {
    p.Append({Value(static_cast<int64_t>(i)),
              Value(i % 3 == 0 ? "N" : (i % 3 == 1 ? "S" : "W"))});
  }
  EXPECT_TRUE(db.AddTable("PATIENTS", std::move(p)).ok());
  table::Table param{
      Schema({{"MEAN", DataType::kDouble}, {"STD", DataType::kDouble}})};
  param.Append({Value(120.0), Value(15.0)});
  EXPECT_TRUE(db.AddTable("SBP_PARAM", std::move(param)).ok());
  mcdb::StochasticTableSpec spec;
  spec.name = "SBP_DATA";
  spec.outer_table = "PATIENTS";
  spec.vg = std::make_shared<mcdb::NormalVg>();
  spec.param_binder = [](const Row&, const mcdb::DatabaseInstance& det)
      -> Result<Row> {
    const table::Table& param = det.at("SBP_PARAM");
    return Row{param.row(0)[0], param.row(0)[1]};
  };
  spec.output_schema = Schema({{"PID", DataType::kInt64},
                               {"REGION", DataType::kString},
                               {"SBP", DataType::kDouble}});
  spec.projector = [](const Row& outer, const Row& vg) {
    return Row{outer[0], outer[1], vg[0]};
  };
  EXPECT_TRUE(db.AddStochasticTable(std::move(spec)).ok());
  return db;
}

/// One full engine pass under the CURRENT tier and the given pool: bundle
/// generation, stochastic filter, aggregates, group-by, and a vectorized
/// columnar filter stack. Returns every double/index produced, flattened,
/// for bitwise comparison.
std::vector<double> RunEngineSweep(ThreadPool* pool) {
  std::vector<double> trace;
  mcdb::MonteCarloDb db = MakeSimdSweepDb(777);
  auto bundles = mcdb::GenerateBundles(db, db.stochastic_specs()[0], "SBP",
                                       /*num_reps=*/300, /*seed=*/42, pool);
  EXPECT_TRUE(bundles.ok());
  mcdb::BundleTable bt = std::move(bundles).value();
  auto filtered = bt.FilterStoch("SBP", table::CmpOp::kGt, 128.0);
  EXPECT_TRUE(filtered.ok());
  for (const auto& r :
       {bt.AggregateSum("SBP"), bt.AggregateAvg("SBP"),
        filtered.value().AggregateSum("SBP"),
        filtered.value().AggregateAvg("SBP")}) {
    EXPECT_TRUE(r.ok());
    trace.insert(trace.end(), r.value().begin(), r.value().end());
  }
  const std::vector<double> cnt = filtered.value().AggregateCount();
  trace.insert(trace.end(), cnt.begin(), cnt.end());
  auto groups = filtered.value().GroupSum("REGION", "SBP");
  EXPECT_TRUE(groups.ok());
  for (const auto& g : groups.value()) {
    trace.push_back(static_cast<double>(g.group.size()));
    trace.insert(trace.end(), g.sums.begin(), g.sums.end());
  }

  // Columnar filter path: materialize an instance-like table with nulls and
  // a NaN, then push every comparison kind through VecFilter.
  table::Table t{table::Schema({{"PID", table::DataType::kInt64},
                                {"REGION", table::DataType::kString},
                                {"SBP", table::DataType::kDouble},
                                {"FLAG", table::DataType::kBool}})};
  Rng mk(99);
  for (size_t i = 0; i < 20000; ++i) {
    table::Value sbp = (i % 97 == 0)
                           ? table::Value()
                           : table::Value(90.0 + 60.0 * mk.NextDouble());
    if (i == 12345) sbp = table::Value(std::nan(""));
    t.Append({table::Value(static_cast<int64_t>(i % 5000)),
              table::Value(i % 3 == 0 ? "N" : (i % 3 == 1 ? "S" : "W")),
              std::move(sbp), table::Value(i % 7 < 3)});
  }
  auto cols = t.ToColumnar();
  EXPECT_TRUE(cols.ok());
  const table::ColumnarTable& ct = *cols.value();
  const auto ops = {table::CmpOp::kEq, table::CmpOp::kNe, table::CmpOp::kLt,
                    table::CmpOp::kLe, table::CmpOp::kGt, table::CmpOp::kGe};
  for (table::CmpOp op : ops) {
    for (const auto& [col, lit] :
         std::vector<std::pair<std::string, table::Value>>{
             {"SBP", table::Value(120.0)},
             {"PID", table::Value(static_cast<int64_t>(2500))},
             {"PID", table::Value(2500.5)},
             {"REGION", table::Value("S")},
             {"FLAG", table::Value(true)}}) {
      auto sel = table::VecFilter(ct, nullptr, col, op, lit, pool);
      if (!sel.ok()) continue;  // unsupported op/type combos error uniformly
      trace.push_back(static_cast<double>(sel.value().size()));
      for (uint32_t idx : sel.value()) trace.push_back(idx);
    }
  }
  return trace;
}

TEST(SimdEngineDifferentialTest, TiersAndThreadCountsAreBitIdentical) {
  simd::SetTier(Tier::kScalar);
  const std::vector<double> reference = RunEngineSweep(nullptr);
  EXPECT_GT(reference.size(), 2000u);
  for (Tier t : AvailableTiers()) {
    simd::SetTier(t);
    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      ThreadPool pool(threads);
      const std::vector<double> got = RunEngineSweep(&pool);
      ASSERT_EQ(got.size(), reference.size())
          << simd::TierName(t) << " x" << threads;
      for (size_t i = 0; i < got.size(); ++i) {
        ASSERT_TRUE(BitEq(got[i], reference[i]))
            << simd::TierName(t) << " x" << threads << " at " << i;
      }
    }
  }
  simd::SetTier(simd::BestSupportedTier());
}

TEST(SimdEngineDifferentialTest, MillionDrawVariateStreamsAreTierInvariant) {
  using VgCase = std::pair<std::shared_ptr<mcdb::VgFunction>, table::Row>;
  const std::vector<VgCase> cases = {
      {std::make_shared<mcdb::NormalVg>(),
       {table::Value(5.0), table::Value(2.0)}},
      {std::make_shared<mcdb::UniformVg>(),
       {table::Value(-1.0), table::Value(3.0)}},
  };
  constexpr size_t kN = 1'000'000;
  for (const auto& [vg, params] : cases) {
    simd::SetTier(Tier::kScalar);
    std::vector<double> ref(kN);
    {
      Rng rng(0xfeed);
      ASSERT_TRUE(vg->GenerateScalarN(params, rng, kN, ref.data()));
    }
    for (Tier t : AvailableTiers()) {
      simd::SetTier(t);
      std::vector<double> got(kN, 0.0);
      Rng rng(0xfeed);
      ASSERT_TRUE(vg->GenerateScalarN(params, rng, kN, got.data()));
      size_t mismatches = 0;
      for (size_t i = 0; i < kN; ++i) {
        if (!BitEq(got[i], ref[i])) ++mismatches;
      }
      EXPECT_EQ(mismatches, 0u) << vg->name() << " on " << simd::TierName(t);
    }
  }
  simd::SetTier(simd::BestSupportedTier());
}

}  // namespace
}  // namespace mde
