#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "util/distributions.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace mde {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad arg");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad arg");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, BoundedRespectsLimit) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.NextBounded(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit
}

TEST(RngTest, SubstreamsDoNotOverlap) {
  Rng s0 = Rng::Substream(5, 0);
  Rng s1 = Rng::Substream(5, 1);
  std::set<uint64_t> first;
  for (int i = 0; i < 1000; ++i) first.insert(s0.Next());
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(first.count(s1.Next()), 0u);
}

TEST(DistributionsTest, NormalMoments) {
  Rng rng(11);
  RunningStat stat;
  for (int i = 0; i < 100000; ++i) stat.Add(SampleNormal(rng, 3.0, 2.0));
  EXPECT_NEAR(stat.mean(), 3.0, 0.05);
  EXPECT_NEAR(stat.stddev(), 2.0, 0.05);
}

TEST(DistributionsTest, ExponentialMoments) {
  Rng rng(12);
  RunningStat stat;
  for (int i = 0; i < 100000; ++i) stat.Add(SampleExponential(rng, 2.0));
  EXPECT_NEAR(stat.mean(), 0.5, 0.01);
  EXPECT_NEAR(stat.variance(), 0.25, 0.02);
}

TEST(DistributionsTest, PoissonSmallLambda) {
  Rng rng(13);
  RunningStat stat;
  for (int i = 0; i < 50000; ++i) {
    stat.Add(static_cast<double>(SamplePoisson(rng, 4.5)));
  }
  EXPECT_NEAR(stat.mean(), 4.5, 0.1);
  EXPECT_NEAR(stat.variance(), 4.5, 0.2);
}

TEST(DistributionsTest, PoissonLargeLambda) {
  Rng rng(14);
  RunningStat stat;
  for (int i = 0; i < 50000; ++i) {
    stat.Add(static_cast<double>(SamplePoisson(rng, 100.0)));
  }
  EXPECT_NEAR(stat.mean(), 100.0, 0.5);
}

TEST(DistributionsTest, GammaMoments) {
  Rng rng(15);
  RunningStat stat;
  for (int i = 0; i < 50000; ++i) stat.Add(SampleGamma(rng, 3.0, 2.0));
  EXPECT_NEAR(stat.mean(), 6.0, 0.1);       // k * theta
  EXPECT_NEAR(stat.variance(), 12.0, 0.5);  // k * theta^2
}

TEST(DistributionsTest, GammaSmallShape) {
  Rng rng(16);
  RunningStat stat;
  for (int i = 0; i < 50000; ++i) stat.Add(SampleGamma(rng, 0.5, 1.0));
  EXPECT_NEAR(stat.mean(), 0.5, 0.05);
}

TEST(DistributionsTest, BinomialMoments) {
  Rng rng(17);
  RunningStat stat;
  for (int i = 0; i < 50000; ++i) {
    stat.Add(static_cast<double>(SampleBinomial(rng, 20, 0.3)));
  }
  EXPECT_NEAR(stat.mean(), 6.0, 0.1);
  EXPECT_NEAR(stat.variance(), 4.2, 0.3);
}

TEST(DistributionsTest, BinomialEdgeCases) {
  Rng rng(18);
  EXPECT_EQ(SampleBinomial(rng, 0, 0.5), 0);
  EXPECT_EQ(SampleBinomial(rng, 10, 0.0), 0);
  EXPECT_EQ(SampleBinomial(rng, 10, 1.0), 10);
}

TEST(DistributionsTest, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    if (SampleBernoulli(rng, 0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(DistributionsTest, GeometricMean) {
  Rng rng(20);
  RunningStat stat;
  for (int i = 0; i < 50000; ++i) {
    stat.Add(static_cast<double>(SampleGeometric(rng, 0.25)));
  }
  EXPECT_NEAR(stat.mean(), 3.0, 0.1);  // (1-p)/p
}

TEST(AliasTableTest, MatchesWeights) {
  Rng rng(21);
  AliasTable table({1.0, 2.0, 3.0, 4.0});
  std::vector<int> counts(4, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[table.Sample(rng)];
  for (int k = 0; k < 4; ++k) {
    EXPECT_NEAR(counts[k] / static_cast<double>(n), (k + 1) / 10.0, 0.01);
  }
}

TEST(AliasTableTest, ZeroWeightNeverSampled) {
  Rng rng(22);
  AliasTable table({0.0, 1.0});
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(table.Sample(rng), 1u);
}

TEST(NormalFunctionsTest, QuantileInvertsCdf) {
  for (double p : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double x = NormalQuantile(p);
    EXPECT_NEAR(NormalCdf(x, 0.0, 1.0), p, 1e-6);
  }
}

TEST(NormalFunctionsTest, PdfIntegratesToCdfDelta) {
  // Riemann check on [-1, 1].
  double integral = 0.0;
  const int steps = 20000;
  for (int i = 0; i < steps; ++i) {
    const double x = -1.0 + 2.0 * i / steps;
    integral += NormalPdf(x, 0.0, 1.0) * (2.0 / steps);
  }
  EXPECT_NEAR(integral, NormalCdf(1, 0, 1) - NormalCdf(-1, 0, 1), 1e-3);
}

TEST(RunningStatTest, MatchesBatchFormulas) {
  std::vector<double> data = {1.0, 2.0, 4.0, 8.0, 16.0};
  RunningStat rs;
  for (double v : data) rs.Add(v);
  EXPECT_DOUBLE_EQ(rs.mean(), Mean(data));
  EXPECT_NEAR(rs.variance(), Variance(data), 1e-12);
  EXPECT_EQ(rs.min(), 1.0);
  EXPECT_EQ(rs.max(), 16.0);
}

TEST(RunningStatTest, MergeEqualsSequential) {
  Rng rng(23);
  RunningStat all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double v = SampleNormal(rng, 0, 1);
    all.Add(v);
    (i % 2 == 0 ? a : b).Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(RunningCovarianceTest, KnownCovariance) {
  RunningCovariance rc;
  // y = 2x exactly: correlation 1, covariance = 2 * var(x).
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) rc.Add(x, 2.0 * x);
  EXPECT_NEAR(rc.correlation(), 1.0, 1e-12);
  EXPECT_NEAR(rc.covariance(), 2.0 * 2.5, 1e-12);
}

TEST(QuantileTest, MedianAndExtremes) {
  std::vector<double> v = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.25), 2.0);
}

TEST(AutocorrelationTest, WhiteNoiseNearZeroAr1High) {
  Rng rng(24);
  std::vector<double> white, ar;
  double prev = 0.0;
  for (int i = 0; i < 20000; ++i) {
    white.push_back(SampleNormal(rng, 0, 1));
    prev = 0.9 * prev + SampleNormal(rng, 0, 1);
    ar.push_back(prev);
  }
  EXPECT_NEAR(Autocorrelation(white, 1), 0.0, 0.03);
  EXPECT_NEAR(Autocorrelation(ar, 1), 0.9, 0.03);
}

TEST(HistogramTest, CountsAndClamping) {
  std::vector<double> v = {-10.0, 0.1, 0.5, 0.9, 10.0};
  auto h = Histogram(v, 0.0, 1.0, 2);
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[0] + h[1], 5u);
  EXPECT_EQ(h[0], 2u);  // -10 (clamped into the low bin) and 0.1
  EXPECT_EQ(h[1], 3u);  // 0.5 (bin edge), 0.9, and 10 (clamped)
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, WaitAllBlocksUntilDone) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&] { done++; });
  }
  pool.WaitAll();
  EXPECT_EQ(done.load(), 10);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // Regression: a worker calling ParallelFor from inside a pool task used
  // to block in WaitAll forever once every worker was occupied. The caller
  // now help-runs its own chunks, so nesting composes at any depth.
  ThreadPool pool(4);
  std::atomic<int> inner_hits{0};
  pool.ParallelFor(8, 1, [&](size_t) {
    pool.ParallelFor(16, 1, [&](size_t) { inner_hits++; });
  });
  EXPECT_EQ(inner_hits.load(), 8 * 16);
}

TEST(ThreadPoolTest, NestedSubmitWaitAllFromWorker) {
  // A task that fans out subtasks and joins them with WaitAll used to
  // deadlock (the worker blocked on a queue it was supposed to drain, and
  // its own enclosing task kept in_flight above zero). The worker now
  // help-runs and waits only for tasks beyond its own stack.
  ThreadPool pool(2);
  std::atomic<int> done{0};
  std::atomic<int> seen_at_join{-1};
  pool.Submit([&] {
    for (int j = 0; j < 8; ++j) {
      pool.Submit([&] { done++; });
    }
    pool.WaitAll();  // from a worker: help-runs the 8 subtasks
    seen_at_join = done.load();
  });
  pool.WaitAll();
  EXPECT_EQ(done.load(), 8);
  EXPECT_EQ(seen_at_join.load(), 8);
}

TEST(ThreadPoolTest, ParallelForEdgeCases) {
  ThreadPool pool(4);
  std::atomic<int> hits{0};
  pool.ParallelFor(0, [&](size_t) { hits++; });  // n == 0: no-op
  EXPECT_EQ(hits.load(), 0);
  pool.ParallelFor(1, [&](size_t i) { hits += static_cast<int>(i) + 1; });
  EXPECT_EQ(hits.load(), 1);  // n == 1: index 0 exactly once
  hits = 0;
  pool.ParallelFor(3, [&](size_t) { hits++; });  // n < workers
  EXPECT_EQ(hits.load(), 3);
  hits = 0;
  pool.ParallelFor(10, 128, [&](size_t) { hits++; });  // grain > n
  EXPECT_EQ(hits.load(), 10);
}

TEST(ThreadPoolTest, ParallelForChunksPartitionExactly) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  pool.ParallelForChunks(100, 7, [&](size_t, size_t begin, size_t end) {
    EXPECT_LE(end - begin, 7u);
    for (size_t i = begin; i < end; ++i) hits[i]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(pool.NumChunks(100, 7), 15u);
  EXPECT_EQ(pool.NumChunks(0, 7), 0u);
}

TEST(ThreadPoolTest, ParallelReduceDeterministicSum) {
  // Fixed chunking + in-order combine: the floating-point sum is
  // bit-identical across thread counts.
  std::vector<double> data(10000);
  Rng rng(42);
  for (double& v : data) v = rng.NextDouble() * 2.0 - 1.0;
  auto sum_with = [&](size_t threads) {
    ThreadPool pool(threads);
    return pool.ParallelReduce<double>(
        data.size(), 64, 0.0,
        [&](size_t begin, size_t end) {
          double s = 0.0;
          for (size_t i = begin; i < end; ++i) s += data[i];
          return s;
        },
        [](double a, double b) { return a + b; });
  };
  const double s1 = sum_with(1);
  const double s2 = sum_with(2);
  const double s8 = sum_with(8);
  EXPECT_EQ(s1, s2);  // bitwise, not NEAR
  EXPECT_EQ(s1, s8);
}

TEST(ConfidenceTest, HalfWidthShrinksWithN) {
  Rng rng(25);
  RunningStat small, big;
  for (int i = 0; i < 100; ++i) small.Add(SampleNormal(rng, 0, 1));
  for (int i = 0; i < 10000; ++i) big.Add(SampleNormal(rng, 0, 1));
  EXPECT_GT(ConfidenceHalfWidth(small, 0.95),
            ConfidenceHalfWidth(big, 0.95));
}

// Property sweep: sample means of several distributions match analytic
// expectations within Monte Carlo error.
struct MomentCase {
  const char* name;
  double expected_mean;
  double tolerance;
  std::function<double(Rng&)> sampler;
};

class DistributionMomentTest : public ::testing::TestWithParam<int> {};

TEST_P(DistributionMomentTest, MeanMatches) {
  static const MomentCase kCases[] = {
      {"normal", 1.5, 0.05, [](Rng& r) { return SampleNormal(r, 1.5, 1.0); }},
      {"exp", 0.25, 0.01, [](Rng& r) { return SampleExponential(r, 4.0); }},
      {"lognormal", std::exp(0.5), 0.05,
       [](Rng& r) { return SampleLognormal(r, 0.0, 1.0); }},
      {"uniform", 1.0, 0.02, [](Rng& r) { return SampleUniform(r, 0, 2); }},
      {"beta22", 0.5, 0.01, [](Rng& r) { return SampleBeta(r, 2, 2); }},
      {"gamma", 4.0, 0.1, [](Rng& r) { return SampleGamma(r, 2.0, 2.0); }},
  };
  const MomentCase& c = kCases[GetParam()];
  Rng rng(1000 + GetParam());
  RunningStat stat;
  for (int i = 0; i < 60000; ++i) stat.Add(c.sampler(rng));
  EXPECT_NEAR(stat.mean(), c.expected_mean, c.tolerance) << c.name;
}

INSTANTIATE_TEST_SUITE_P(AllDistributions, DistributionMomentTest,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace mde
