#include <cmath>

#include <gtest/gtest.h>

#include "mcdb/variance_reduction.h"
#include "screening/sobol.h"
#include "util/distributions.h"

namespace mde {
namespace {

TEST(SobolTest, LinearModelIndicesProportionalToSquaredCoefficients) {
  // Y = 4 x1 + 2 x2 (+0 x3) with x ~ U(0,1): Var contributions
  // 16/12 : 4/12 : 0 -> S = 0.8, 0.2, 0.
  auto model = [](const std::vector<double>& x) {
    return 4.0 * x[0] + 2.0 * x[1] + 0.0 * x[2];
  };
  auto idx = screening::ComputeSobolIndices(model, 3, 20000, 1);
  ASSERT_TRUE(idx.ok());
  EXPECT_NEAR(idx.value().first_order[0], 0.8, 0.05);
  EXPECT_NEAR(idx.value().first_order[1], 0.2, 0.05);
  EXPECT_NEAR(idx.value().first_order[2], 0.0, 0.03);
  // No interactions: total == first order.
  for (int j = 0; j < 3; ++j) {
    EXPECT_NEAR(idx.value().total_order[j], idx.value().first_order[j],
                0.05);
  }
  EXPECT_EQ(idx.value().evaluations, 20000u * 5u);
}

TEST(SobolTest, PureInteractionShowsOnlyInTotalOrder) {
  // Y = (x1 - 1/2)(x2 - 1/2): zero first-order effects, all variance in
  // the interaction.
  auto model = [](const std::vector<double>& x) {
    return (x[0] - 0.5) * (x[1] - 0.5);
  };
  auto idx = screening::ComputeSobolIndices(model, 2, 30000, 2);
  ASSERT_TRUE(idx.ok());
  EXPECT_LT(idx.value().first_order[0], 0.05);
  EXPECT_LT(idx.value().first_order[1], 0.05);
  EXPECT_GT(idx.value().total_order[0], 0.8);
  EXPECT_GT(idx.value().total_order[1], 0.8);
}

TEST(SobolTest, IshigamiLikeNonlinearity) {
  // Y = sin(2 pi x1) + 0.3 * x2^4: x1 dominates.
  auto model = [](const std::vector<double>& x) {
    return std::sin(2.0 * M_PI * x[0]) + 0.3 * std::pow(x[1], 4.0);
  };
  auto idx = screening::ComputeSobolIndices(model, 2, 20000, 3);
  ASSERT_TRUE(idx.ok());
  EXPECT_GT(idx.value().first_order[0], 5.0 * idx.value().first_order[1]);
}

TEST(SobolTest, ConstantModelAllZero) {
  auto idx = screening::ComputeSobolIndices(
      [](const std::vector<double>&) { return 7.0; }, 3, 1000, 4);
  ASSERT_TRUE(idx.ok());
  for (double s : idx.value().first_order) EXPECT_DOUBLE_EQ(s, 0.0);
  EXPECT_DOUBLE_EQ(idx.value().output_variance, 0.0);
}

TEST(SobolTest, RejectsBadArguments) {
  auto m = [](const std::vector<double>&) { return 0.0; };
  EXPECT_FALSE(screening::ComputeSobolIndices(m, 0, 100, 1).ok());
  EXPECT_FALSE(screening::ComputeSobolIndices(m, 2, 4, 1).ok());
}

TEST(CrnTest, CommonRandomNumbersShrinkComparisonVariance) {
  // Two M/M/1-ish queues sharing arrival randomness: config 1 has a
  // slightly faster server. Outputs are strongly positively correlated
  // under CRN.
  auto run = [](int config, Rng& rng) {
    const double service_rate = config == 0 ? 1.0 : 1.1;
    double clock = 0.0, busy_until = 0.0, total_wait = 0.0;
    for (int c = 0; c < 200; ++c) {
      clock += SampleExponential(rng, 0.8);
      const double start = std::max(clock, busy_until);
      total_wait += start - clock;
      busy_until = start + SampleExponential(rng, service_rate);
    }
    return total_wait / 200.0;
  };
  auto cmp = mcdb::CompareWithCrn(run, 200, 5);
  ASSERT_TRUE(cmp.ok());
  // The faster server has lower waits.
  EXPECT_GT(cmp.value().mean_difference, 0.0);
  // CRN variance reduction is substantial.
  EXPECT_GT(cmp.value().variance_reduction_factor, 3.0);
  EXPECT_LT(cmp.value().crn_std_error, cmp.value().independent_std_error);
}

TEST(CrnTest, RejectsTooFewReps) {
  EXPECT_FALSE(
      mcdb::CompareWithCrn([](int, Rng&) { return 0.0; }, 2, 1).ok());
}

}  // namespace
}  // namespace mde
