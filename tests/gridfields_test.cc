#include <gtest/gtest.h>

#include "gridfields/gridfields.h"
#include "util/rng.h"

namespace mde::gridfields {
namespace {

TEST(GridTest, RegularGridCellCounts) {
  Grid g = MakeRegularGrid2D(3, 2);
  EXPECT_EQ(g.num_cells(0), 12u);  // 4 x 3 nodes
  // Edges: horizontal 3*3=9, vertical 4*2=8.
  EXPECT_EQ(g.num_cells(1), 17u);
  EXPECT_EQ(g.num_cells(2), 6u);  // quads
}

TEST(GridTest, IncidenceRelation) {
  Grid g = MakeRegularGrid2D(2, 2);
  // Quad 0 has 4 edges and 4 corner nodes.
  EXPECT_EQ(g.Faces({2, 0}, 1).size(), 4u);
  EXPECT_EQ(g.Faces({2, 0}, 0).size(), 4u);
  // Node 0 is a corner of quad 0: 0-cell <= 2-cell.
  EXPECT_TRUE(g.Leq({0, 0}, {2, 0}));
  // Reflexive.
  EXPECT_TRUE(g.Leq({2, 0}, {2, 0}));
  // Equal dims, different cells: not <=.
  EXPECT_FALSE(g.Leq({2, 0}, {2, 1}));
  // A far-away node is not incident.
  EXPECT_FALSE(g.Leq({0, 8}, {2, 0}));
}

TEST(GridTest, IncidenceValidation) {
  Grid g(2);
  const size_t n0 = g.AddCell(0);
  const size_t e0 = g.AddCell(1);
  EXPECT_TRUE(g.AddIncidence({0, n0}, {1, e0}).ok());
  // dim(lower) must be < dim(higher).
  EXPECT_FALSE(g.AddIncidence({1, e0}, {0, n0}).ok());
  EXPECT_FALSE(g.AddIncidence({0, 99}, {1, e0}).ok());
}

TEST(GridFieldTest, BindingChecksArity) {
  Grid g = MakeRegularGrid2D(2, 2);
  std::vector<double> quad_data = {1, 2, 3, 4};
  GridField f(&g, 2, quad_data);
  EXPECT_EQ(f.size(), 4u);
  EXPECT_DOUBLE_EQ(f.value(2), 3.0);
}

TEST(RegridTest, AggregationFunctions) {
  Grid g = MakeRegularGrid2D(4, 1);  // 4 quads in a row
  GridField src(&g, 2, {1.0, 2.0, 3.0, 4.0});
  // Coarsen 4 -> 2: cells {0,1} -> 0, {2,3} -> 1.
  std::vector<size_t> assign = {0, 0, 1, 1};
  EXPECT_EQ(Regrid(src, 2, assign, RegridAgg::kSum).value(),
            (std::vector<double>{3.0, 7.0}));
  EXPECT_EQ(Regrid(src, 2, assign, RegridAgg::kMean).value(),
            (std::vector<double>{1.5, 3.5}));
  EXPECT_EQ(Regrid(src, 2, assign, RegridAgg::kMax).value(),
            (std::vector<double>{2.0, 4.0}));
  EXPECT_EQ(Regrid(src, 2, assign, RegridAgg::kMin).value(),
            (std::vector<double>{1.0, 3.0}));
  EXPECT_EQ(Regrid(src, 2, assign, RegridAgg::kCount).value(),
            (std::vector<double>{2.0, 2.0}));
}

TEST(RegridTest, UnassignedAndEmptyTargets) {
  Grid g = MakeRegularGrid2D(3, 1);
  GridField src(&g, 2, {5.0, 6.0, 7.0});
  std::vector<size_t> assign = {0, kUnassigned, 0};
  auto out = Regrid(src, 2, assign, RegridAgg::kSum, /*fill=*/-1.0);
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ(out.value()[0], 12.0);
  EXPECT_DOUBLE_EQ(out.value()[1], -1.0);  // fill for empty target
}

TEST(RegridTest, RejectsBadAssignment) {
  Grid g = MakeRegularGrid2D(2, 1);
  GridField src(&g, 2, {1.0, 2.0});
  EXPECT_FALSE(Regrid(src, 2, {0}, RegridAgg::kSum).ok());      // arity
  EXPECT_FALSE(Regrid(src, 2, {0, 5}, RegridAgg::kSum).ok());   // range
}

TEST(RestrictTest, KeepsMatchingCells) {
  Grid g = MakeRegularGrid2D(5, 1);
  GridField f(&g, 2, {1, 5, 2, 8, 3});
  auto kept = RestrictCells(f, [](double v) { return v > 2.5; });
  EXPECT_EQ(kept, (std::vector<size_t>{1, 3, 4}));
}

TEST(CommuteTest, RestrictCommutesWithRegrid) {
  // The Howe-Maier optimization: restricting target cells before or after
  // regrid yields identical values, but pushing the restriction down
  // processes fewer source cells.
  Rng rng(1);
  const size_t nx = 40;
  Grid g = MakeRegularGrid2D(nx, 1);
  std::vector<double> data(nx);
  for (auto& v : data) v = rng.NextDouble() * 10.0;
  GridField src(&g, 2, data);
  // Coarsen 40 -> 10 (blocks of 4), keep only 3 of the 10 targets.
  std::vector<size_t> assign(nx);
  for (size_t i = 0; i < nx; ++i) assign[i] = i / 4;
  std::vector<bool> keep(10, false);
  keep[1] = keep[4] = keep[7] = true;

  for (RegridAgg agg : {RegridAgg::kSum, RegridAgg::kMean, RegridAgg::kMax}) {
    auto slow = RegridThenRestrict(src, 10, assign, agg, keep);
    auto fast = RestrictThenRegrid(src, 10, assign, agg, keep);
    ASSERT_TRUE(slow.ok() && fast.ok());
    ASSERT_EQ(slow.value().values.size(), fast.value().values.size());
    for (size_t i = 0; i < slow.value().values.size(); ++i) {
      EXPECT_DOUBLE_EQ(slow.value().values[i], fast.value().values[i]);
    }
    // The pushed-down form touches 12 source cells instead of 40.
    EXPECT_EQ(fast.value().source_cells_processed, 12u);
    EXPECT_EQ(slow.value().source_cells_processed, 40u);
  }
}

TEST(CommuteTest, KeepAllIsPlainRegrid) {
  Grid g = MakeRegularGrid2D(6, 1);
  GridField src(&g, 2, {1, 2, 3, 4, 5, 6});
  std::vector<size_t> assign = {0, 0, 1, 1, 2, 2};
  std::vector<bool> keep(3, true);
  auto fast = RestrictThenRegrid(src, 3, assign, RegridAgg::kSum, keep);
  ASSERT_TRUE(fast.ok());
  EXPECT_EQ(fast.value().values, (std::vector<double>{3.0, 7.0, 11.0}));
  EXPECT_EQ(fast.value().source_cells_processed, 6u);
}

}  // namespace
}  // namespace mde::gridfields
