#include <cmath>

#include <gtest/gtest.h>

#include "smc/importance.h"
#include "smc/particle_filter.h"
#include "smc/resample.h"
#include "util/distributions.h"
#include "util/stats.h"

namespace mde::smc {
namespace {

TEST(ResampleTest, NormalizeWeights) {
  std::vector<double> w = {1.0, 3.0};
  ASSERT_TRUE(NormalizeWeights(&w).ok());
  EXPECT_DOUBLE_EQ(w[0], 0.25);
  EXPECT_DOUBLE_EQ(w[1], 0.75);
  std::vector<double> zero = {0.0, 0.0};
  EXPECT_FALSE(NormalizeWeights(&zero).ok());
  std::vector<double> neg = {1.0, -1.0};
  EXPECT_FALSE(NormalizeWeights(&neg).ok());
}

TEST(ResampleTest, EffectiveSampleSize) {
  EXPECT_DOUBLE_EQ(EffectiveSampleSize({0.25, 0.25, 0.25, 0.25}), 4.0);
  EXPECT_DOUBLE_EQ(EffectiveSampleSize({1.0, 0.0, 0.0, 0.0}), 1.0);
}

TEST(ResampleTest, MultinomialFrequencies) {
  Rng rng(1);
  std::vector<double> w = {0.1, 0.2, 0.3, 0.4};
  std::vector<size_t> counts(4, 0);
  const size_t n = 100000;
  auto idx = ResampleIndices(w, n, ResampleMethod::kMultinomial, rng);
  for (size_t i : idx) ++counts[i];
  for (size_t k = 0; k < 4; ++k) {
    EXPECT_NEAR(counts[k] / static_cast<double>(n), w[k], 0.01);
  }
}

TEST(ResampleTest, SystematicFrequenciesAndLowVariance) {
  Rng rng(2);
  std::vector<double> w = {0.5, 0.3, 0.2};
  auto idx = ResampleIndices(w, 1000, ResampleMethod::kSystematic, rng);
  std::vector<size_t> counts(3, 0);
  for (size_t i : idx) ++counts[i];
  // Systematic resampling puts counts within 1 of n*w deterministically.
  EXPECT_NEAR(counts[0], 500.0, 1.0);
  EXPECT_NEAR(counts[1], 300.0, 1.0);
  EXPECT_NEAR(counts[2], 200.0, 1.0);
}

TEST(ResampleTest, SystematicZeroWeightTailRegression) {
  // Regression: with trailing zero-weight particles and a CDF that rounds
  // just below 1.0, comb positions past the last positive-weight bucket
  // used to fall through to a zero-weight (or out-of-range) ancestor. They
  // must clamp to the last particle with positive weight.
  std::vector<double> w = {0.5, 0.48, 0.0, 0.0};
  const double sum = w[0] + w[1];
  for (double& x : w) x /= sum;
  for (uint64_t seed = 0; seed < 64; ++seed) {
    Rng rng(seed);
    auto idx = ResampleIndices(w, 1000, ResampleMethod::kSystematic, rng);
    ASSERT_EQ(idx.size(), 1000u);
    for (size_t i : idx) EXPECT_LE(i, 1u);  // never a zero-weight ancestor
  }
}

TEST(ResampleTest, SystematicSkipsLeadingZeroWeights) {
  std::vector<double> w = {0.0, 0.0, 1.0};
  for (uint64_t seed = 0; seed < 16; ++seed) {
    Rng rng(seed);
    for (size_t i : ResampleIndices(w, 100, ResampleMethod::kSystematic, rng)) {
      EXPECT_EQ(i, 2u);
    }
  }
}

TEST(ResampleTest, MultinomialMonotoneCdfExtremeRatios) {
  // Regression: 1e6 particles with weight ratios spanning 12 orders of
  // magnitude. Rounding in the running CDF sum used to produce a final
  // entry slightly below (or non-monotone around) 1.0, so draws near 1.0
  // could bisect past the end. Every index must stay in range and the
  // heavy particles must absorb essentially all of the mass.
  const size_t m = 1000000;
  std::vector<double> w(m, 1e-12);
  size_t heavy = 0;
  for (size_t i = 0; i < m; i += 100000) {
    w[i] = 1.0;
    ++heavy;
  }
  ASSERT_TRUE(NormalizeWeights(&w).ok());
  Rng rng(5);
  const size_t n = 20000;
  auto idx = ResampleIndices(w, n, ResampleMethod::kMultinomial, rng);
  ASSERT_EQ(idx.size(), n);
  size_t heavy_draws = 0;
  for (size_t i : idx) {
    ASSERT_LT(i, m);
    if (i % 100000 == 0) ++heavy_draws;
  }
  // Light particles hold ~1e-7 of the total mass; seeing more than a
  // handful of light draws means the CDF leaked mass.
  EXPECT_GE(heavy_draws, n - 5);
  (void)heavy;
}

TEST(ResampleTest, NormalizeWeightsCompensatedSummation) {
  // Regression: one unit weight plus a million tiny weights. A naive
  // accumulation loses the tiny contributions entirely; the compensated
  // sum keeps the normalized total at 1 to near machine precision.
  std::vector<double> w(1, 1.0);
  w.resize(1 + 1000000, 1e-16);
  ASSERT_TRUE(NormalizeWeights(&w).ok());
  double sum = 0.0, c = 0.0;
  for (double x : w) {  // Kahan re-sum so the check itself is exact
    const double y = x - c;
    const double t = sum + y;
    c = (t - sum) - y;
    sum = t;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(ResampleTest, LogWeightsStable) {
  // Very negative log-weights must not underflow to total collapse.
  auto w = NormalizedFromLog({-1000.0, -1001.0});
  ASSERT_TRUE(w.ok());
  EXPECT_NEAR(w.value()[0], 1.0 / (1.0 + std::exp(-1.0)), 1e-12);
}

TEST(ImportanceSamplingTest, EstimatesNormalizingConstant) {
  // gamma(x) = 3 * N(x; 0, 1) -> Z = 3; proposal N(0, 2).
  auto r = ImportanceSample(
      [](double x) { return std::log(3.0) + NormalLogPdf(x, 0, 1); },
      [](Rng& rng) { return SampleNormal(rng, 0, 2); },
      [](double x) { return NormalLogPdf(x, 0, 2); },
      [](double x) { return x * x; }, 200000, 5);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value().normalizing_constant, 3.0, 0.05);
  EXPECT_NEAR(r.value().expectation, 1.0, 0.03);  // E[X^2] under N(0,1)
  EXPECT_GT(r.value().ess, 10000.0);
}

TEST(SisTest, WeightDegeneracyWithoutResampling) {
  // Plain SIS over a growing product target: ESS collapses as n grows —
  // the pathology that motivates the resampling step (Section 3.2).
  auto trace = SisEssTrace(
      [](double x) { return NormalLogPdf(x, 0.0, 1.0); },
      [](double prev, Rng& rng) { return SampleNormal(rng, prev * 0.5, 1.2); },
      [](double prev, double x) { return NormalLogPdf(x, prev * 0.5, 1.2); },
      500, 50, 7);
  ASSERT_TRUE(trace.ok());
  const auto& ess = trace.value().ess_per_step;
  EXPECT_GT(ess.front(), 100.0);
  EXPECT_LT(ess.back(), ess.front() * 0.2);
  EXPECT_GT(trace.value().final_max_weight, 0.05);
}

/// Linear-Gaussian state-space model with known Kalman-filter ground truth:
/// x_n = a x_{n-1} + N(0, q); y_n = x_n + N(0, r).
class LinearGaussianSsm : public StateSpaceModel {
 public:
  LinearGaussianSsm(double a, double q, double r) : a_(a), q_(q), r_(r) {}

  State SampleInitial(const Observation& y, Rng& rng) const override {
    // Diffuse-ish prior centered at the observation.
    return {y[0] + SampleNormal(rng, 0.0, 2.0)};
  }
  State SampleProposal(const Observation&, const State& prev,
                       Rng& rng) const override {
    return {a_ * prev[0] + SampleNormal(rng, 0.0, std::sqrt(q_))};
  }
  double LogObservation(const Observation& y, const State& x) const override {
    return NormalLogPdf(y[0], x[0], std::sqrt(r_));
  }

 private:
  double a_, q_, r_;
};

/// Reference scalar Kalman filter.
struct Kalman {
  double mean = 0.0, var = 4.0;
  void Step(double a, double q, double r, double y, bool first) {
    if (!first) {
      mean = a * mean;
      var = a * a * var + q;
    }
    const double k = var / (var + r);
    mean += k * (y - mean);
    var *= (1.0 - k);
  }
};

TEST(ParticleFilterTest, TracksLinearGaussianPosterior) {
  const double a = 0.9, q = 0.5, r = 0.4;
  LinearGaussianSsm model(a, q, r);
  ParticleFilterOptions opt;
  opt.num_particles = 4000;
  opt.seed = 11;
  ParticleFilter pf(model, opt);

  // Simulate a trajectory.
  Rng rng(99);
  double x = 0.0;
  std::vector<double> ys;
  for (int t = 0; t < 30; ++t) {
    x = a * x + SampleNormal(rng, 0, std::sqrt(q));
    ys.push_back(x + SampleNormal(rng, 0, std::sqrt(r)));
  }
  // The PF prior is N(y1, 4) around the first observation; mirror that in
  // the Kalman reference.
  Kalman kf;
  kf.mean = ys[0];
  kf.var = 4.0;
  ASSERT_TRUE(pf.Initialize({ys[0]}).ok());
  kf.Step(a, q, r, ys[0], true);
  for (size_t t = 1; t < ys.size(); ++t) {
    ASSERT_TRUE(pf.Step({ys[t]}).ok());
    kf.Step(a, q, r, ys[t], false);
    EXPECT_NEAR(pf.MeanState()[0], kf.mean, 4.0 * std::sqrt(kf.var / 100.0))
        << "t=" << t;
  }
}

/// Pooled propagation must reproduce the serial filter bit for bit: every
/// (step, particle) pair owns its RNG substream and resampling stays on the
/// filter's serial stream, so the executor cannot perturb the trajectory.
TEST(ParticleFilterTest, PooledFilterIsBitIdenticalToSerial) {
  const double a = 0.9, q = 0.5, r = 0.4;
  LinearGaussianSsm model(a, q, r);
  const std::vector<double> ys = {0.0, 0.3, -0.2, 0.8, 0.5, -0.1, 0.4};

  auto run = [&](ThreadPool* pool) {
    ParticleFilterOptions opt;
    opt.num_particles = 300;
    opt.seed = 21;
    opt.pool = pool;
    ParticleFilter pf(model, opt);
    EXPECT_TRUE(pf.Initialize({ys[0]}).ok());
    for (size_t t = 1; t < ys.size(); ++t) {
      EXPECT_TRUE(pf.Step({ys[t]}).ok());
    }
    return std::pair<double, double>(pf.MeanState()[0],
                                     pf.TotalLogLikelihood());
  };

  const auto serial = run(nullptr);
  for (size_t threads : {1u, 4u}) {
    ThreadPool pool(threads);
    const auto pooled = run(&pool);
    EXPECT_EQ(pooled.first, serial.first);
    EXPECT_EQ(pooled.second, serial.second);
  }
}

TEST(ParticleFilterTest, RequiresInitialize) {
  LinearGaussianSsm model(0.9, 0.5, 0.4);
  ParticleFilterOptions opt;
  ParticleFilter pf(model, opt);
  EXPECT_FALSE(pf.Step({1.0}).ok());
}

TEST(ParticleFilterTest, EssThresholdControlsResampling) {
  LinearGaussianSsm model(0.9, 0.5, 0.4);
  ParticleFilterOptions always;
  always.ess_threshold = 1.0;
  always.num_particles = 200;
  ParticleFilter pf_always(model, always);
  ASSERT_TRUE(pf_always.Initialize({0.0}).ok());
  ASSERT_TRUE(pf_always.Step({0.1}).ok());
  EXPECT_TRUE(pf_always.step_stats().back().resampled);

  ParticleFilterOptions never;
  never.ess_threshold = 0.0;
  never.num_particles = 200;
  ParticleFilter pf_never(model, never);
  ASSERT_TRUE(pf_never.Initialize({0.0}).ok());
  ASSERT_TRUE(pf_never.Step({0.1}).ok());
  EXPECT_FALSE(pf_never.step_stats().back().resampled);
}

TEST(ParticleFilterTest, MoreParticlesLowerError) {
  const double a = 0.95, q = 0.3, r = 0.3;
  LinearGaussianSsm model(a, q, r);
  Rng rng(123);
  double x = 0.0;
  std::vector<double> ys, xs;
  for (int t = 0; t < 40; ++t) {
    x = a * x + SampleNormal(rng, 0, std::sqrt(q));
    xs.push_back(x);
    ys.push_back(x + SampleNormal(rng, 0, std::sqrt(r)));
  }
  auto rmse_for = [&](size_t particles) {
    ParticleFilterOptions opt;
    opt.num_particles = particles;
    opt.seed = 5;
    ParticleFilter pf(model, opt);
    EXPECT_TRUE(pf.Initialize({ys[0]}).ok());
    double ss = 0;
    for (size_t t = 1; t < ys.size(); ++t) {
      EXPECT_TRUE(pf.Step({ys[t]}).ok());
      ss += std::pow(pf.MeanState()[0] - xs[t], 2);
    }
    return std::sqrt(ss / (ys.size() - 1));
  };
  // Averaged over several seeds the ordering is strict; for one seed allow
  // a generous margin.
  EXPECT_LT(rmse_for(2000), rmse_for(10) * 1.5);
}

TEST(KernelDensityTest, GaussianKernelIntegratesToOne) {
  KernelDensity kde({0.0, 1.0, 2.0}, 0.5);
  double integral = 0.0;
  for (double x = -5; x <= 7; x += 0.01) integral += kde.Density(x) * 0.01;
  EXPECT_NEAR(integral, 1.0, 0.01);
}

TEST(KernelDensityTest, PeaksNearData) {
  KernelDensity kde({0.0, 0.1, -0.1, 0.05}, 0.2);
  EXPECT_GT(kde.Density(0.0), kde.Density(2.0) * 10);
}

TEST(KernelDensityTest, SilvermanBandwidthReasonable) {
  Rng rng(3);
  std::vector<double> samples;
  for (int i = 0; i < 1000; ++i) samples.push_back(SampleNormal(rng, 0, 1));
  const double h = KernelDensity::SilvermanBandwidth(samples);
  EXPECT_GT(h, 0.1);
  EXPECT_LT(h, 0.5);
  // KDE approximates the true density at a few points.
  KernelDensity kde(samples, h);
  EXPECT_NEAR(kde.Density(0.0), NormalPdf(0, 0, 1), 0.05);
  EXPECT_NEAR(kde.Density(1.5), NormalPdf(1.5, 0, 1), 0.05);
}

TEST(KernelDensityTest, LaplaceKernel) {
  KernelDensity kde({0.0}, 1.0, KernelDensity::Kernel::kLaplace);
  EXPECT_NEAR(kde.Density(0.0), 0.5, 1e-12);
  EXPECT_NEAR(kde.Density(1.0), 0.5 * std::exp(-1.0), 1e-12);
}

}  // namespace
}  // namespace mde::smc
