#include <cmath>

#include <gtest/gtest.h>

#include "util/stats.h"
#include "wildfire/assimilate.h"
#include "wildfire/fire.h"

namespace mde::wildfire {
namespace {

FireSim::Config DefaultFire() {
  FireSim::Config cfg;
  return cfg;
}

TEST(TerrainTest, FieldsInRange) {
  Terrain t = GenerateTerrain(30, 20, 0.5, 0.0, 1);
  EXPECT_EQ(t.size(), 600u);
  for (double f : t.fuel) {
    EXPECT_GE(f, 0.29);
    EXPECT_LE(f, 1.01);
  }
  for (double m : t.moisture) {
    EXPECT_GE(m, 0.0);
    EXPECT_LE(m, 0.55);
  }
}

TEST(TerrainTest, SmoothedFieldsAreSpatiallyCorrelated) {
  Terrain t = GenerateTerrain(50, 50, 0, 0, 2);
  // Neighboring fuel values are closer than random pairs on average.
  double neighbor_diff = 0.0, random_diff = 0.0;
  size_t n = 0;
  Rng rng(3);
  for (size_t y = 0; y < 50; ++y) {
    for (size_t x = 0; x + 1 < 50; ++x) {
      neighbor_diff += std::fabs(t.fuel[t.index(x, y)] -
                                 t.fuel[t.index(x + 1, y)]);
      random_diff += std::fabs(t.fuel[rng.NextBounded(2500)] -
                               t.fuel[rng.NextBounded(2500)]);
      ++n;
    }
  }
  EXPECT_LT(neighbor_diff, random_diff * 0.7);
}

TEST(FireSimTest, IgnitionCreatesSingleBurningCell) {
  Terrain t = GenerateTerrain(20, 20, 0, 0, 4);
  FireSim sim(t, DefaultFire());
  Rng rng(5);
  FireState s = sim.Ignite(10, 10, rng);
  EXPECT_EQ(s.NumBurning(), 1u);
  EXPECT_EQ(s.NumBurned(), 0u);
  EXPECT_EQ(s.cells[t.index(10, 10)], CellState::kBurning);
}

TEST(FireSimTest, FireSpreadsAndBurnsOut) {
  Terrain t = GenerateTerrain(30, 30, 0, 0, 6);
  FireSim sim(t, DefaultFire());
  Rng rng(7);
  FireState s = sim.Ignite(15, 15, rng);
  size_t max_burning = 1;
  for (int step = 0; step < 100; ++step) {
    sim.Step(&s, rng);
    max_burning = std::max(max_burning, s.NumBurning());
  }
  EXPECT_GT(max_burning, 10u);        // it spread
  EXPECT_GT(s.NumBurned(), 50u);      // and consumed cells
}

TEST(FireSimTest, WindBiasesSpreadDirection) {
  // Strong +x wind: after the same number of steps, the burned centroid
  // shifts in +x.
  Terrain t = GenerateTerrain(60, 30, 1.0, 0.0, 8);
  FireSim::Config cfg = DefaultFire();
  cfg.wind_bias = 0.9;
  FireSim sim(t, cfg);
  Rng rng(9);
  FireState s = sim.Ignite(30, 15, rng);
  for (int step = 0; step < 25; ++step) sim.Step(&s, rng);
  double cx = 0.0;
  size_t n = 0;
  for (size_t y = 0; y < 30; ++y) {
    for (size_t x = 0; x < 60; ++x) {
      if (s.cells[t.index(x, y)] != CellState::kUnburned) {
        cx += static_cast<double>(x);
        ++n;
      }
    }
  }
  ASSERT_GT(n, 10u);
  EXPECT_GT(cx / static_cast<double>(n), 31.0);
}

TEST(FireStateTest, DisagreementMetric) {
  Terrain t = GenerateTerrain(10, 10, 0, 0, 10);
  FireSim sim(t, DefaultFire());
  Rng rng(11);
  FireState a = sim.Ignite(5, 5, rng);
  FireState b = a;
  EXPECT_DOUBLE_EQ(a.CellDisagreement(b), 0.0);
  b.cells[0] = CellState::kBurned;
  EXPECT_DOUBLE_EQ(a.CellDisagreement(b), 0.01);
}

TEST(SensorModelTest, ReadingsReflectFire) {
  Terrain t = GenerateTerrain(25, 25, 0, 0, 12);
  SensorModel::Config sc;
  sc.stride = 5;
  sc.noise_sd = 1.0;
  SensorModel sensors(t, sc);
  EXPECT_EQ(sensors.num_sensors(), 25u);
  FireSim sim(t, DefaultFire());
  Rng rng(13);
  FireState cold = sim.Ignite(0, 0, rng);
  // Put fire directly on a sensor cell.
  const size_t sensor_cell = sensors.sensor_cells()[12];
  FireState hot = cold;
  hot.cells[sensor_cell] = CellState::kBurning;
  hot.intensity[sensor_cell] = 1.0;
  EXPECT_GT(sensors.ExpectedReading(hot, 12),
            sensors.ExpectedReading(cold, 12) + 100.0);
}

TEST(SensorModelTest, LikelihoodPrefersTrueState) {
  Terrain t = GenerateTerrain(25, 25, 0, 0, 14);
  SensorModel sensors(t, {});
  FireSim sim(t, DefaultFire());
  Rng rng(15);
  FireState truth = sim.Ignite(12, 12, rng);
  for (int i = 0; i < 10; ++i) sim.Step(&truth, rng);
  FireState wrong = sim.Ignite(2, 2, rng);
  auto y = sensors.Observe(truth, rng);
  EXPECT_GT(sensors.LogLikelihood(truth, y),
            sensors.LogLikelihood(wrong, y));
}

TEST(WildfireFilterTest, BootstrapTracksBetterThanOpenLoop) {
  Terrain t = GenerateTerrain(30, 30, 0.3, 0.1, 16);
  FireSim sim(t, DefaultFire());
  SensorModel::Config sc;
  sc.stride = 4;
  SensorModel sensors(t, sc);
  AssimilationConfig cfg;
  cfg.num_particles = 60;
  cfg.proposal = ProposalKind::kBootstrap;
  cfg.seed = 17;
  auto run = RunAssimilation(sim, sensors, 20, cfg, 18);
  ASSERT_TRUE(run.ok());
  const double open_mean = Mean(run.value().open_loop_error);
  const double filter_mean = Mean(run.value().filter_error);
  EXPECT_LT(filter_mean, open_mean);
  // ESS is tracked and positive.
  for (double e : run.value().ess) EXPECT_GT(e, 0.0);
}

TEST(WildfireFilterTest, SensorAwareProposalRuns) {
  Terrain t = GenerateTerrain(20, 20, 0, 0, 19);
  FireSim sim(t, DefaultFire());
  SensorModel::Config sc;
  sc.stride = 4;
  SensorModel sensors(t, sc);
  AssimilationConfig cfg;
  cfg.num_particles = 30;
  cfg.proposal = ProposalKind::kSensorAware;
  cfg.kde_samples = 4;
  cfg.seed = 20;
  auto run = RunAssimilation(sim, sensors, 10, cfg, 21);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run.value().filter_error.size(), 10u);
  EXPECT_LT(Mean(run.value().filter_error), 0.5);
}

TEST(WildfireFilterTest, ClassifyMajorityVote) {
  Terrain t = GenerateTerrain(10, 10, 0, 0, 22);
  FireSim sim(t, DefaultFire());
  Rng rng(23);
  FireState initial = sim.Ignite(5, 5, rng);
  SensorModel::Config sc;
  sc.stride = 3;
  SensorModel sensors(t, sc);
  AssimilationConfig cfg;
  cfg.num_particles = 10;
  WildfireFilter filter(sim, sensors, initial, cfg);
  FireState classified = filter.Classify();
  // Before any steps all particles equal the initial state.
  EXPECT_DOUBLE_EQ(classified.CellDisagreement(initial), 0.0);
  auto prob = filter.BurningProbability();
  EXPECT_DOUBLE_EQ(prob[t.index(5, 5)], 1.0);
  EXPECT_DOUBLE_EQ(prob[t.index(0, 0)], 0.0);
}

}  // namespace
}  // namespace mde::wildfire
