#include <gtest/gtest.h>

#include "epi/indemics.h"
#include "epi/network.h"
#include "table/query.h"

namespace mde::epi {
namespace {

PopulationConfig SmallPopulation(size_t n = 2000, uint64_t seed = 5) {
  PopulationConfig cfg;
  cfg.num_people = n;
  cfg.seed = seed;
  return cfg;
}

TEST(PopulationTest, GeneratesRequestedSize) {
  ContactNetwork net = GeneratePopulation(SmallPopulation(1500));
  EXPECT_EQ(net.num_people(), 1500u);
  EXPECT_GT(net.num_contacts(), 1500u);  // households alone give plenty
}

TEST(PopulationTest, HouseholdsAreCliquesWithAdults) {
  ContactNetwork net = GeneratePopulation(SmallPopulation());
  // Every person has >= 0 household id; households have at least one adult
  // among the first two members by construction.
  int64_t max_household = 0;
  for (const Person& p : net.people()) {
    max_household = std::max(max_household, p.household);
    EXPECT_GE(p.age, 0);
    EXPECT_LE(p.age, 70);
  }
  EXPECT_GT(max_household, 100);
}

TEST(PopulationTest, HasPreschoolers) {
  ContactNetwork net = GeneratePopulation(SmallPopulation(5000));
  size_t preschool = 0;
  for (const Person& p : net.people()) {
    if (p.age <= 4) ++preschool;
  }
  EXPECT_GT(preschool, 50u);
}

TEST(EpidemicSimTest, SeedsInitialInfections) {
  DiseaseConfig dc;
  dc.initial_infections = 25;
  EpidemicSim sim(GeneratePopulation(SmallPopulation()), dc);
  size_t infectious = 0;
  for (const Person& p : sim.network().people()) {
    if (p.health == Health::kInfectious) ++infectious;
  }
  EXPECT_EQ(infectious, 25u);
}

TEST(EpidemicSimTest, ConservesPopulation) {
  DiseaseConfig dc;
  EpidemicSim sim(GeneratePopulation(SmallPopulation()), dc);
  auto last = sim.Advance(30);
  EXPECT_EQ(last.susceptible + last.exposed + last.infectious +
                last.recovered,
            sim.network().num_people());
}

TEST(EpidemicSimTest, EpidemicSpreads) {
  DiseaseConfig dc;
  dc.transmissibility = 0.01;
  EpidemicSim sim(GeneratePopulation(SmallPopulation(3000)), dc);
  sim.Advance(60);
  EXPECT_GT(sim.TotalInfected(), 500u);
  EXPECT_GT(sim.PeakInfectious(), 50u);
}

TEST(EpidemicSimTest, NoTransmissionAtZeroTransmissibility) {
  DiseaseConfig dc;
  dc.transmissibility = 0.0;
  dc.initial_infections = 10;
  EpidemicSim sim(GeneratePopulation(SmallPopulation()), dc);
  sim.Advance(40);
  EXPECT_EQ(sim.TotalInfected(), 10u);
}

TEST(EpidemicSimTest, PersonTableMatchesNetwork) {
  DiseaseConfig dc;
  EpidemicSim sim(GeneratePopulation(SmallPopulation(500)), dc);
  table::Table t = sim.PersonTable();
  EXPECT_EQ(t.num_rows(), 500u);
  EXPECT_TRUE(t.schema().Has("pid"));
  EXPECT_TRUE(t.schema().Has("health"));
  // Infectious count in the table matches the sim.
  auto infected = sim.InfectedPersonTable();
  size_t direct = 0;
  for (const Person& p : sim.network().people()) {
    if (p.health == Health::kInfectious) ++direct;
  }
  EXPECT_EQ(infected.num_rows(), direct);
}

TEST(EpidemicSimTest, VaccinationImmunizes) {
  DiseaseConfig dc;
  dc.vaccine_efficacy = 1.0;
  dc.initial_infections = 0;
  EpidemicSim sim(GeneratePopulation(SmallPopulation(100)), dc);
  std::vector<int64_t> everyone;
  for (size_t i = 0; i < 100; ++i) everyone.push_back(i);
  const size_t immunized = sim.Vaccinate(everyone);
  EXPECT_EQ(immunized, 100u);
  EXPECT_EQ(sim.TotalInfected(), 0u);  // vaccine immunity isn't infection
}

TEST(EpidemicSimTest, QuarantineBlocksTransmission) {
  DiseaseConfig dc;
  dc.transmissibility = 0.05;  // aggressive spread
  dc.initial_infections = 20;
  ContactNetwork net = GeneratePopulation(SmallPopulation(2000, 8));
  EpidemicSim sim(net, dc);
  // Quarantine everybody: epidemic cannot spread beyond the seeds.
  std::vector<int64_t> everyone;
  for (size_t i = 0; i < 2000; ++i) everyone.push_back(i);
  sim.Quarantine(everyone);
  sim.Advance(30);
  EXPECT_EQ(sim.TotalInfected(), 20u);
}

TEST(Algorithm1Test, PolicyReducesAttackRate) {
  // The paper's Algorithm 1: vaccinate preschoolers when > 1% are sick.
  DiseaseConfig dc;
  dc.transmissibility = 0.012;
  dc.seed = 31;
  const PopulationConfig pop = SmallPopulation(4000, 9);

  EpidemicSim no_policy(GeneratePopulation(pop), dc);
  auto base = RunWithPolicy(no_policy, 120, 7, nullptr);
  ASSERT_TRUE(base.ok());

  EpidemicSim with_policy(GeneratePopulation(pop), dc);
  auto treated =
      RunWithPolicy(with_policy, 120, 7, VaccinatePreschoolersPolicy(0.01));
  ASSERT_TRUE(treated.ok());

  // Preschoolers got vaccinated...
  size_t vaccinated = 0;
  for (const Person& p : with_policy.network().people()) {
    if (p.vaccinated) {
      ++vaccinated;
      EXPECT_LE(p.age, 4);
    }
  }
  EXPECT_GT(vaccinated, 0u);
  // ...and the attack count does not increase (usually strictly drops).
  EXPECT_LE(with_policy.TotalInfected(), no_policy.TotalInfected());
}

TEST(Algorithm1Test, NoTriggerNoVaccination) {
  DiseaseConfig dc;
  dc.transmissibility = 0.0;  // never passes the 1% trigger
  dc.initial_infections = 1;
  EpidemicSim sim(GeneratePopulation(SmallPopulation(1000)), dc);
  auto run = RunWithPolicy(sim, 50, 5, VaccinatePreschoolersPolicy(0.01));
  ASSERT_TRUE(run.ok());
  for (const Person& p : sim.network().people()) {
    EXPECT_FALSE(p.vaccinated);
  }
}

TEST(QueryIntegrationTest, SqlStyleSubpopulationAggregation) {
  // "Percent infected among school-age children", phrased as a query.
  DiseaseConfig dc;
  dc.transmissibility = 0.015;
  EpidemicSim sim(GeneratePopulation(SmallPopulation(3000, 12)), dc);
  sim.Advance(40);
  auto school_age = table::Query(sim.PersonTable())
                        .Where("age", table::CmpOp::kGe, int64_t{5})
                        .Where("age", table::CmpOp::kLe, int64_t{18})
                        .Execute();
  ASSERT_TRUE(school_age.ok());
  auto infected = table::Query(school_age.value())
                      .Where("health", table::CmpOp::kEq, "I")
                      .CountStar("n")
                      .ExecuteScalar();
  ASSERT_TRUE(infected.ok());
  EXPECT_GE(infected.value().AsInt(), 0);
  EXPECT_LE(infected.value().AsInt(),
            static_cast<int64_t>(school_age.value().num_rows()));
}

TEST(RunWithPolicyTest, RejectsZeroInterval) {
  DiseaseConfig dc;
  EpidemicSim sim(GeneratePopulation(SmallPopulation(100)), dc);
  EXPECT_FALSE(RunWithPolicy(sim, 10, 0, nullptr).ok());
}

}  // namespace
}  // namespace mde::epi
