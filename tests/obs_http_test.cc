#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "mcdb/bundle.h"
#include "mcdb/mcdb.h"
#include "mcdb/vg_function.h"
#include "obs/context.h"
#include "obs/export.h"
#include "obs/flight.h"
#include "obs/http.h"
#include "obs/profiler.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "util/distributions.h"
#include "util/thread_pool.h"

namespace mde {
namespace {

using table::DataType;
using table::Row;
using table::Schema;
using table::Table;
using table::Value;

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::in | std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Burns `seconds` of THREAD CPU time (not wall time) so profiler sample
/// counts — which are CPU-time driven — have a known expectation.
void SpinCpu(double seconds) {
  timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  const double start = ts.tv_sec + ts.tv_nsec * 1e-9;
  volatile double sink = 0.0;
  for (;;) {
    for (int i = 0; i < 20000; ++i) sink = sink + i * 1e-9;
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    if (ts.tv_sec + ts.tv_nsec * 1e-9 - start >= seconds) break;
  }
}

/// Minimal blocking HTTP/1.1 GET against the loopback diagnostics server.
/// Returns the body; status code goes to `*status_out` (0 on socket
/// failure).
std::string HttpGet(int port, const std::string& target, int* status_out) {
  *status_out = 0;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string req = "GET " + target +
                          " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                          "Connection: close\r\n\r\n";
  size_t sent = 0;
  while (sent < req.size()) {
    const ssize_t n = ::send(fd, req.data() + sent, req.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    sent += static_cast<size_t>(n);
  }
  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    raw.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  if (raw.compare(0, 5, "HTTP/") != 0) return "";
  *status_out = std::atoi(raw.c_str() + 9);
  const size_t hdr_end = raw.find("\r\n\r\n");
  return hdr_end == std::string::npos ? "" : raw.substr(hdr_end + 4);
}

/// The paper's SBP stochastic table (same shape as the mcdb tests): a real
/// engine workload whose bundle generation fans out over a pool.
mcdb::MonteCarloDb MakeSbpDb(size_t patients) {
  mcdb::MonteCarloDb db;
  Table p{Schema({{"PID", DataType::kInt64}, {"GENDER", DataType::kString}})};
  for (size_t i = 0; i < patients; ++i) {
    p.Append({Value(static_cast<int64_t>(i)), Value(i % 2 ? "M" : "F")});
  }
  EXPECT_TRUE(db.AddTable("PATIENTS", std::move(p)).ok());
  Table param{
      Schema({{"MEAN", DataType::kDouble}, {"STD", DataType::kDouble}})};
  param.Append({Value(120.0), Value(9.0)});
  EXPECT_TRUE(db.AddTable("SBP_PARAM", std::move(param)).ok());

  mcdb::StochasticTableSpec spec;
  spec.name = "SBP_DATA";
  spec.outer_table = "PATIENTS";
  spec.vg = std::make_shared<mcdb::NormalVg>();
  spec.param_binder = [](const Row&, const mcdb::DatabaseInstance& det)
      -> Result<Row> {
    const Table& param = det.at("SBP_PARAM");
    return Row{param.row(0)[0], param.row(0)[1]};
  };
  spec.output_schema = Schema({{"PID", DataType::kInt64},
                               {"GENDER", DataType::kString},
                               {"SBP", DataType::kDouble}});
  spec.projector = [](const Row& outer, const Row& vg) {
    return Row{outer[0], outer[1], vg[0]};
  };
  EXPECT_TRUE(db.AddStochasticTable(std::move(spec)).ok());
  return db;
}

// ---------------------------------------------------------------------------
// Fatal-signal chaining. FIRST in the file on purpose: InstallCrashHandler
// is once-per-process, and the child must inherit a state where OUR handler
// was installed on top of the marker handler — no earlier test may have
// installed it already.
// ---------------------------------------------------------------------------

void MarkerSegvHandler(int) { ::_exit(42); }

TEST(ObsFatalChainTest, CrashHandlerChainsToPreviousAndDumps) {
  const std::string path = ::testing::TempDir() + "/obs_http_chain_flight.json";
  std::remove(path.c_str());

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: a pre-existing SIGSEGV handler (the "application's" handler),
    // then ours on top. The crash must run our dump AND still reach the
    // application's handler — which exits 42 instead of dying by signal.
    ::setenv("MDE_FLIGHT_PATH", path.c_str(), 1);
    struct sigaction marker;
    std::memset(&marker, 0, sizeof(marker));
    marker.sa_handler = MarkerSegvHandler;
    ::sigemptyset(&marker.sa_mask);
    if (::sigaction(SIGSEGV, &marker, nullptr) != 0) ::_exit(3);
    obs::FlightRecorder::InstallCrashHandler();
    {
      obs::QueryScope scope("test.chain", 0xC0FFEEu);
      ::raise(SIGSEGV);
    }
    ::_exit(4);  // unreachable: the marker handler exits first
  }

  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status)) << "child died by signal instead of "
                                    "chaining to the previous handler";
  EXPECT_EQ(WEXITSTATUS(status), 42);

  // The signal-path dump landed before the chain and parses as a flight
  // report carrying the live query context.
  const std::string json = ReadFile(path);
  ASSERT_FALSE(json.empty());
  std::string report;
  std::string error;
  ASSERT_TRUE(obs::RenderFlightReport(json, obs::RunReportOptions{}, &report,
                                      &error))
      << error;
  EXPECT_NE(report.find("test.chain"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ObsFatalChainTest, CrashWithDefaultDispositionDiesBySignal) {
#if defined(__SANITIZE_THREAD__)
#define MDE_TEST_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MDE_TEST_TSAN 1
#endif
#endif
#if defined(MDE_TEST_TSAN)
  // TSan installs its own SEGV reporter that exits the process instead of
  // letting the re-raised signal's default disposition kill it, so the
  // WIFSIGNALED half of this test cannot hold under TSan. The chained
  // variant above still runs (it exits via the marker handler first).
  GTEST_SKIP() << "default-disposition death is replaced by TSan's reporter";
#endif
  const std::string path = ::testing::TempDir() + "/obs_http_dfl_flight.json";
  std::remove(path.c_str());

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // No previous handler: after the dump the process must still die by
    // SIGSEGV (default disposition re-raised), not exit cleanly.
    ::setenv("MDE_FLIGHT_PATH", path.c_str(), 1);
    obs::FlightRecorder::InstallCrashHandler();
    ::raise(SIGSEGV);
    ::_exit(4);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGSEGV);
  EXPECT_FALSE(ReadFile(path).empty());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Diagnostics server.
// ---------------------------------------------------------------------------

TEST(DiagServerTest, EphemeralPortStartStop) {
  obs::DiagServer server;
  ASSERT_TRUE(server.Start(0));
  EXPECT_TRUE(server.running());
  EXPECT_GT(server.port(), 0);
  EXPECT_FALSE(server.Start(0)) << "double Start must fail";
  server.Stop();
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.port(), 0);
  server.Stop();  // idempotent

  // Restartable on a fresh ephemeral port.
  ASSERT_TRUE(server.Start(0));
  EXPECT_GT(server.port(), 0);
  server.Stop();
}

TEST(DiagServerTest, ServesEndpointsWhileEngineRunsEightThreads) {
  obs::DiagServer server;
  ASSERT_TRUE(server.Start(0));
  const int port = server.port();

  // 8 threads of real engine work (bundle generation under QueryScopes)
  // while the scrape runs — the server reads side-band state only.
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&stop, t] {
      mcdb::MonteCarloDb db = MakeSbpDb(50);
      uint64_t rep = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        obs::QueryScope scope("test.scrape",
                              0x9000u + static_cast<uint64_t>(t));
        auto bundles = mcdb::GenerateBundles(db, db.stochastic_specs()[0],
                                             "SBP", 4, /*seed=*/rep++,
                                             /*pool=*/nullptr);
        ASSERT_TRUE(bundles.ok());
      }
    });
  }

  int status = 0;
  EXPECT_EQ(HttpGet(port, "/healthz", &status), "ok\n");
  EXPECT_EQ(status, 200);

  const std::string metrics = HttpGet(port, "/metrics", &status);
  EXPECT_EQ(status, 200);
  EXPECT_NE(metrics.find("mde_build_info{git_hash=\""), std::string::npos);
  EXPECT_NE(metrics.find("simd_tier=\""), std::string::npos);
  EXPECT_NE(metrics.find("mde_process_uptime_seconds"), std::string::npos);

  const std::string statusz = HttpGet(port, "/statusz", &status);
  EXPECT_EQ(status, 200);
  EXPECT_NE(statusz.find("git_hash"), std::string::npos);
  EXPECT_NE(statusz.find("uptime"), std::string::npos);

  const std::string queryz = HttpGet(port, "/queryz?format=json", &status);
  EXPECT_EQ(status, 200);
  EXPECT_NE(queryz.find("\"queries\""), std::string::npos);
  EXPECT_NE(queryz.find("test.scrape"), std::string::npos);

  const std::string flightz = HttpGet(port, "/flightz", &status);
  EXPECT_EQ(status, 200);
  EXPECT_NE(flightz.find("\"flight\""), std::string::npos);

  HttpGet(port, "/tracez", &status);
  EXPECT_EQ(status, 200);

  HttpGet(port, "/profilez?seconds=bogus", &status);
  EXPECT_EQ(status, 400);
  HttpGet(port, "/nosuch", &status);
  EXPECT_EQ(status, 404);

  EXPECT_GE(server.requests_served(), 8u);

  stop.store(true, std::memory_order_relaxed);
  for (auto& w : workers) w.join();
  server.Stop();
}

TEST(DiagServerTest, ConcurrentScrapersAllAnswered) {
  obs::DiagServer server;
  ASSERT_TRUE(server.Start(0));
  const int port = server.port();

  std::atomic<int> ok{0};
  std::vector<std::thread> scrapers;
  for (int i = 0; i < 16; ++i) {
    scrapers.emplace_back([port, &ok] {
      for (int j = 0; j < 8; ++j) {
        int status = 0;
        const std::string body = HttpGet(port, "/healthz", &status);
        // 503 shedding is an acceptable answer under burst; a hung or
        // dropped connection is not.
        if ((status == 200 && body == "ok\n") || status == 503) ++ok;
      }
    });
  }
  for (auto& s : scrapers) s.join();
  EXPECT_EQ(ok.load(), 16 * 8);
  server.Stop();
}

TEST(DiagServerTest, RegisteredHandlerRoutesQueryStringAndIndex) {
  obs::DiagServer server;
  ASSERT_TRUE(server.Start(0));
  const int port = server.port();

  const uint64_t id = obs::RegisterDiagHandler(
      "/echoz",
      [](const std::string& query) {
        obs::DiagPage page;
        page.body = "echo:" + obs::DiagQueryParam(query, "msg");
        return page;
      },
      "<a href=\"/echoz\">/echoz</a> — test echo");

  int status = 0;
  EXPECT_EQ(HttpGet(port, "/echoz?msg=hello", &status), "echo:hello");
  EXPECT_EQ(status, 200);
  const std::string index = HttpGet(port, "/", &status);
  EXPECT_EQ(status, 200);
  EXPECT_NE(index.find("/echoz"), std::string::npos)
      << "registered pages must be advertised on the index";

  // Built-ins always win over a registered path.
  const uint64_t shadow = obs::RegisterDiagHandler(
      "/healthz", [](const std::string&) { return obs::DiagPage{}; });
  EXPECT_EQ(HttpGet(port, "/healthz", &status), "ok\n");
  obs::UnregisterDiagHandler(shadow);

  obs::UnregisterDiagHandler(id);
  HttpGet(port, "/echoz", &status);
  EXPECT_EQ(status, 404) << "unregistered pages must 404 again";
  server.Stop();
}

TEST(DiagServerTest, ThrottledReaderReceivesFullLargeBody) {
  obs::DiagServer server;
  ASSERT_TRUE(server.Start(0));
  const int port = server.port();

  // A body far larger than any socket buffer: against the throttled reader
  // below the kernel send buffer fills and ::send returns short counts.
  // Before SendAll looped, the tail of the body was silently dropped —
  // exactly how large /metrics and /profilez scrapes got truncated.
  std::string big;
  big.reserve(4u << 20);
  uint64_t line = 0;
  while (big.size() < (4u << 20)) {
    big += "payload line ";
    big += std::to_string(line++);
    big += '\n';
  }
  const uint64_t id = obs::RegisterDiagHandler(
      "/bigz", [&big](const std::string&) {
        obs::DiagPage page;
        page.body = big;
        return page;
      });

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  // Shrink the receive window BEFORE connect so the handshake advertises
  // it; combined with slow small reads this throttles the server's sender.
  int rcvbuf = 4096;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string req =
      "GET /bigz HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: close\r\n\r\n";
  ASSERT_EQ(::send(fd, req.data(), req.size(), 0),
            static_cast<ssize_t>(req.size()));

  std::string raw;
  char buf[2048];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    raw.append(buf, static_cast<size_t>(n));
    // ~2 KiB per 300 us is ~7 MB/s: slow enough to fill the send buffer,
    // fast enough to stay far inside the server's 10 s send timeout.
    ::usleep(300);
  }
  ::close(fd);

  const size_t hdr_end = raw.find("\r\n\r\n");
  ASSERT_NE(hdr_end, std::string::npos);
  const std::string headers = raw.substr(0, hdr_end);
  EXPECT_NE(headers.find("Content-Length: " + std::to_string(big.size())),
            std::string::npos)
      << headers;
  const std::string body = raw.substr(hdr_end + 4);
  ASSERT_EQ(body.size(), big.size())
      << "throttled reader got a truncated body";
  EXPECT_EQ(body, big);

  obs::UnregisterDiagHandler(id);
  server.Stop();
}

// ---------------------------------------------------------------------------
// Profiler: scaling, filtering, folded format, determinism.
// ---------------------------------------------------------------------------

TEST(ProfilerTest, StartStopIdempotentAndRegistered) {
  obs::Profiler& prof = obs::Profiler::Global();
  prof.RegisterCurrentThread();
  ASSERT_TRUE(prof.Start(250));
  EXPECT_TRUE(prof.running());
  EXPECT_EQ(prof.hz(), 250);
  EXPECT_FALSE(prof.Start(97)) << "double Start must fail";
  prof.Stop();
  EXPECT_FALSE(prof.running());
  prof.Stop();  // idempotent
}

TEST(ProfilerTest, SampleCountScalesWithCpuTime) {
  obs::Profiler& prof = obs::Profiler::Global();
  prof.RegisterCurrentThread();
  prof.Reset();
  ASSERT_TRUE(prof.Start(250));

  const uint64_t t0 = obs::NowNanos();
  SpinCpu(0.2);
  const uint64_t t1 = obs::NowNanos();
  SpinCpu(0.6);
  const uint64_t t2 = obs::NowNanos();
  prof.Stop();

  const size_t short_window = prof.Collect(t0, t1).size();
  const size_t long_window = prof.Collect(t1, t2).size();
  // 0.2 s at 250 Hz expects ~50 samples, 0.6 s expects ~150. Bounds are
  // loose — CI machines jitter — but the 3x CPU ratio must show through.
  EXPECT_GT(short_window, 10u);
  EXPECT_GT(long_window, short_window * 2)
      << "short=" << short_window << " long=" << long_window;

  // Samples carry non-empty stacks.
  for (const auto& s : prof.Collect(t0, t2)) {
    EXPECT_FALSE(s.pcs.empty());
  }
}

TEST(ProfilerTest, FiltersByQueryFingerprint) {
  obs::Profiler& prof = obs::Profiler::Global();
  prof.RegisterCurrentThread();
  prof.Reset();
  ASSERT_TRUE(prof.Start(250));

  constexpr uint64_t kFp = 0xFEEDBEEF12345678u;
  const uint64_t t0 = obs::NowNanos();
  {
    obs::QueryScope scope("test.filter", kFp);
    SpinCpu(0.3);
  }
  const uint64_t t1 = obs::NowNanos();
  prof.Stop();

  const auto matching = prof.Collect(t0, t1, kFp);
  ASSERT_GT(matching.size(), 5u);
  for (const auto& s : matching) {
    EXPECT_EQ(s.fingerprint, kFp);
    ASSERT_NE(s.tag, nullptr);
    EXPECT_STREQ(s.tag, "test.filter");
  }
  EXPECT_TRUE(prof.Collect(t0, t1, 0xDEAD0000u).empty());
}

TEST(ProfilerTest, CpuSecondsReconcileWithAttribution) {
  obs::Profiler& prof = obs::Profiler::Global();
  prof.RegisterCurrentThread();
  prof.Reset();
  ASSERT_TRUE(prof.Start(250));

  constexpr uint64_t kFp = 0xAB12CD34u;
  const uint64_t t0 = obs::NowNanos();
  {
    obs::QueryScope scope("test.reconcile", kFp);
    SpinCpu(0.5);
  }
  const uint64_t t1 = obs::NowNanos();
  prof.Stop();

  const double est_s =
      static_cast<double>(prof.Collect(t0, t1, kFp).size()) / 250.0;
  // 0.5 s of spin at 250 Hz: sampling noise is ~sqrt(125)/125 ~ 9%, so a
  // 2x band is comfortably beyond flake territory while still proving the
  // estimate tracks real CPU.
  EXPECT_GT(est_s, 0.25);
  EXPECT_LT(est_s, 1.0);
}

TEST(ProfilerTest, FoldedOutputWellFormedAndReportable) {
  obs::Profiler& prof = obs::Profiler::Global();
  prof.RegisterCurrentThread();

  // Busy worker under a QueryScope so stacks get a query root.
  std::atomic<bool> stop{false};
  std::thread worker([&stop] {
    obs::Profiler::Global().RegisterCurrentThread();
    obs::QueryScope scope("test.folded", 0x0F01DEDu);
    while (!stop.load(std::memory_order_relaxed)) SpinCpu(0.05);
  });

  const std::string folded =
      prof.CaptureFolded(/*seconds=*/0.4, /*query_fp=*/0,
                         /*query_roots=*/true, /*hz=*/250);
  stop.store(true, std::memory_order_relaxed);
  worker.join();

  ASSERT_EQ(folded.compare(0, 14, "# mde_profile "), 0) << folded;
  EXPECT_NE(folded.find("hz=250"), std::string::npos);
  EXPECT_NE(folded.find("window_s="), std::string::npos);

  std::istringstream lines(folded);
  std::string line;
  size_t stacks = 0;
  uint64_t prev_count = ~0ull;
  bool saw_query_root = false;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    ++stacks;
    // Grammar: "frame;frame;...;frame count", count after the LAST space.
    const size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    char* end = nullptr;
    const uint64_t count = std::strtoull(line.c_str() + sp + 1, &end, 10);
    ASSERT_GT(count, 0u) << line;
    ASSERT_EQ(*end, '\0') << line;
    EXPECT_LE(count, prev_count) << "counts must be descending";
    prev_count = count;
    const std::string stack = line.substr(0, sp);
    EXPECT_FALSE(stack.empty());
    if (stack.compare(0, 6, "query:") == 0) saw_query_root = true;
  }
  ASSERT_GT(stacks, 0u) << folded;
  EXPECT_TRUE(saw_query_root);

  // The folded text renders as an mde_report profile section.
  std::string report;
  std::string error;
  ASSERT_TRUE(obs::RenderProfileReport(folded, /*metrics_jsonl=*/"",
                                       obs::RunReportOptions{}, &report,
                                       &error))
      << error;
  EXPECT_NE(report.find("CPU profile"), std::string::npos);
  EXPECT_NE(report.find("Per-query samples"), std::string::npos);
}

TEST(ProfilerTest, ProfilezEndpointReturnsFoldedStacks) {
  obs::DiagServer server;
  ASSERT_TRUE(server.Start(0));

  std::atomic<bool> stop{false};
  std::thread worker([&stop] {
    obs::Profiler::Global().RegisterCurrentThread();
    obs::QueryScope scope("test.profilez", 0xBEEF01u);
    while (!stop.load(std::memory_order_relaxed)) SpinCpu(0.05);
  });

  int status = 0;
  const std::string body =
      HttpGet(server.port(), "/profilez?seconds=0.4&hz=250", &status);
  stop.store(true, std::memory_order_relaxed);
  worker.join();

  EXPECT_EQ(status, 200);
  ASSERT_EQ(body.compare(0, 14, "# mde_profile "), 0) << body;
  EXPECT_NE(body.find("query:0xbeef01"), std::string::npos) << body;

  // Query-filtered slice only keeps that fingerprint's stacks.
  stop.store(false, std::memory_order_relaxed);
  std::thread worker2([&stop] {
    obs::Profiler::Global().RegisterCurrentThread();
    obs::QueryScope scope("test.profilez2", 0xBEEF02u);
    while (!stop.load(std::memory_order_relaxed)) SpinCpu(0.05);
  });
  const std::string filtered = HttpGet(
      server.port(), "/profilez?seconds=0.4&hz=250&query=0xbeef02", &status);
  stop.store(true, std::memory_order_relaxed);
  worker2.join();
  EXPECT_EQ(status, 200);
  EXPECT_EQ(filtered.find("query:0xbeef01"), std::string::npos);

  server.Stop();
}

TEST(ProfilerTest, EngineResultsBitIdenticalWithProfilerRunning) {
  mcdb::MonteCarloDb db = MakeSbpDb(300);
  constexpr size_t kReps = 48;

  auto run = [&db](size_t threads) {
    ThreadPool pool(threads);
    auto bundles = mcdb::GenerateBundles(db, db.stochastic_specs()[0], "SBP",
                                         kReps, /*seed=*/13, &pool);
    EXPECT_TRUE(bundles.ok());
    auto agg = bundles.value().AggregateSum("SBP");
    EXPECT_TRUE(agg.ok());
    return std::move(agg).value();
  };

  const std::vector<double> baseline = run(4);  // profiler off

  obs::Profiler& prof = obs::Profiler::Global();
  prof.RegisterCurrentThread();
  ASSERT_TRUE(prof.Start(obs::Profiler::kDefaultHz));
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    const std::vector<double> sampled = run(threads);
    ASSERT_EQ(sampled.size(), baseline.size());
    // Bitwise, not approximate: memcmp over the IEEE-754 payloads.
    EXPECT_EQ(std::memcmp(baseline.data(), sampled.data(),
                          baseline.size() * sizeof(double)),
              0)
        << "profiler perturbed engine output at " << threads << " threads";
  }
  prof.Stop();
}

}  // namespace
}  // namespace mde
