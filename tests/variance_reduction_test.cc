#include <cmath>

#include <gtest/gtest.h>

#include "mcdb/variance_reduction.h"
#include "util/distributions.h"
#include "util/rng.h"

namespace mde::mcdb {
namespace {

TEST(PlainMonteCarloTest, EstimatesIntegral) {
  // E[U^2] = 1/3.
  auto e = PlainMonteCarlo([](double u) { return u * u; }, 100000, 1);
  EXPECT_NEAR(e.mean, 1.0 / 3.0, 0.005);
  EXPECT_EQ(e.samples, 100000u);
}

TEST(AntitheticTest, SameAnswerLessVariance) {
  // Monotone integrand: e^u, E = e - 1.
  auto f = [](double u) { return std::exp(u); };
  auto plain = PlainMonteCarlo(f, 20000, 2);
  auto anti = AntitheticMonteCarlo(f, 10000, 2);  // same # of f calls
  EXPECT_NEAR(plain.mean, std::exp(1.0) - 1.0, 0.01);
  EXPECT_NEAR(anti.mean, std::exp(1.0) - 1.0, 0.01);
  // Pair-average variance far below half of the plain per-sample variance.
  EXPECT_LT(anti.variance, 0.5 * plain.variance * 0.5);
  EXPECT_LT(anti.std_error, plain.std_error);
}

TEST(AntitheticTest, NoHarmOnSymmetricIntegrand) {
  // f symmetric around u=1/2: antithetic pairs are perfectly correlated,
  // so the estimate stays valid (variance may not improve).
  auto f = [](double u) { return (u - 0.5) * (u - 0.5); };
  auto anti = AntitheticMonteCarlo(f, 50000, 3);
  EXPECT_NEAR(anti.mean, 1.0 / 12.0, 0.002);
}

TEST(ControlVariateTest, KnownControlShrinksVariance) {
  // Y = 3X + noise with X ~ N(0, 1), E[X] = 0 known.
  Rng rng(4);
  std::vector<double> y, x;
  for (int i = 0; i < 20000; ++i) {
    const double xi = SampleNormal(rng, 0.0, 1.0);
    x.push_back(xi);
    y.push_back(5.0 + 3.0 * xi + SampleNormal(rng, 0.0, 0.5));
  }
  auto est = ControlVariate(y, x, 0.0);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(est.value().mean, 5.0, 0.02);
  EXPECT_NEAR(est.value().beta, 3.0, 0.05);
  // Var(Y) = 9.25, adjusted = 0.25 -> factor ~ 37.
  EXPECT_GT(est.value().variance_reduction_factor, 20.0);
}

TEST(ControlVariateTest, UncorrelatedControlIsHarmless) {
  Rng rng(5);
  std::vector<double> y, x;
  for (int i = 0; i < 20000; ++i) {
    y.push_back(SampleNormal(rng, 2.0, 1.0));
    x.push_back(SampleNormal(rng, 0.0, 1.0));
  }
  auto est = ControlVariate(y, x, 0.0);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(est.value().mean, 2.0, 0.03);
  EXPECT_NEAR(est.value().variance_reduction_factor, 1.0, 0.05);
}

TEST(ControlVariateTest, RejectsDegenerateInput) {
  EXPECT_FALSE(ControlVariate({1.0}, {1.0}, 0.0).ok());
  EXPECT_FALSE(
      ControlVariate({1, 2, 3}, {5, 5, 5}, 5.0).ok());  // constant control
  EXPECT_FALSE(ControlVariate({1, 2, 3}, {1, 2}, 0.0).ok());
}

}  // namespace
}  // namespace mde::mcdb
