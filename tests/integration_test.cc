/// Cross-module integration tests: each exercises a pipeline the paper
/// describes as a composition of the surveyed systems.

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "abs/traffic.h"
#include "calibrate/msm.h"
#include "composite/model.h"
#include "composite/result_caching.h"
#include "doe/designs.h"
#include "doe/main_effects.h"
#include "dsgd/dsgd.h"
#include "epi/indemics.h"
#include "metamodel/kriging.h"
#include "simsql/simsql.h"
#include "table/query.h"
#include "timeseries/align.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace mde {
namespace {

// Splash-style harmonization chain: a fine-grained "climate" series is
// aggregated for a coarse model, whose output is spline-interpolated back
// to fine granularity — with the spline constants produced by DSGD instead
// of the exact solver, as Section 2.2 proposes for massive series.
TEST(Integration, TimeAlignmentWithDsgdSplineConstants) {
  timeseries::TimeSeries fine(1);
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(fine.Append(i * 0.25, std::sin(0.1 * i * 0.25)).ok());
  }
  // Aggregate to unit ticks.
  std::vector<double> coarse_times = timeseries::UniformGrid(1.0, 99.0, 99);
  auto coarse = timeseries::AggregateAlign(fine, coarse_times,
                                           timeseries::AggMethod::kMean);
  ASSERT_TRUE(coarse.ok());
  // Spline constants via DSGD.
  auto sys = timeseries::BuildSplineSystem(coarse.value(), 0);
  ASSERT_TRUE(sys.ok());
  ThreadPool pool(4);
  dsgd::DsgdOptions opt;
  opt.rounds = 3000;
  auto dsgd_result =
      dsgd::SolveTridiagonalDsgd(sys.value().a, sys.value().b, pool, opt);
  std::vector<double> sigma(coarse.value().size(), 0.0);
  for (size_t i = 0; i < dsgd_result.x.size(); ++i) {
    sigma[i + 1] = dsgd_result.x[i];
  }
  // Interpolate back down to quarter ticks.
  std::vector<double> targets = timeseries::UniformGrid(1.5, 98.5, 389);
  auto interp = timeseries::CubicSplineInterpolate(coarse.value(), targets,
                                                   0, sigma);
  ASSERT_TRUE(interp.ok());
  // Matches the exact-solver interpolation closely.
  auto exact = timeseries::CubicSplineInterpolate(coarse.value(), targets);
  ASSERT_TRUE(exact.ok());
  double max_diff = 0.0;
  for (size_t i = 0; i < targets.size(); ++i) {
    max_diff = std::max(max_diff, std::fabs(interp.value().value(i) -
                                            exact.value().value(i)));
  }
  EXPECT_LT(max_diff, 1e-3);
}

// The ABS-in-the-database idea: a SimSQL Markov chain whose state table is
// the traffic simulator's car table, queried with SQL between steps.
TEST(Integration, TrafficAbsAsDatabaseMarkovChain) {
  using table::DataType;
  using table::Schema;
  using table::Table;
  using table::Value;
  auto sim = std::make_shared<abs::TrafficSim>([] {
    abs::TrafficSim::Config cfg;
    cfg.num_cells = 300;
    cfg.num_cars = 90;
    return cfg;
  }());
  simsql::MarkovChainDb db;
  simsql::ChainTableSpec spec;
  spec.name = "CARS";
  auto snapshot = [sim]() {
    Table t{Schema({{"car", DataType::kInt64},
                    {"pos", DataType::kInt64},
                    {"speed", DataType::kInt64}})};
    for (size_t c = 0; c < sim->num_cars(); ++c) {
      t.Append({Value(static_cast<int64_t>(c)),
                Value(static_cast<int64_t>(sim->position(c))),
                Value(static_cast<int64_t>(sim->speed(c)))});
    }
    return t;
  };
  spec.init = [snapshot](const simsql::DatabaseState&,
                         Rng&) -> Result<Table> { return snapshot(); };
  spec.transition = [sim, snapshot](const simsql::DatabaseState&,
                                    const simsql::DatabaseState&,
                                    Rng&) -> Result<Table> {
    sim->Step();
    return snapshot();
  };
  ASSERT_TRUE(db.AddChainTable(std::move(spec)).ok());
  auto final_state = db.Run(80, 1, 0);
  ASSERT_TRUE(final_state.ok());
  // SQL over the simulation state: mean speed of cars in the first third
  // of the ring.
  auto mean_speed =
      table::Query(final_state.value().at("CARS"))
          .Where("pos", table::CmpOp::kLt, int64_t{100})
          .GroupByAgg({}, {{table::AggKind::kAvg, "speed", "v"}})
          .ExecuteScalar();
  ASSERT_TRUE(mean_speed.ok());
  EXPECT_GE(mean_speed.value().AsDouble(), 0.0);
  EXPECT_LE(mean_speed.value().AsDouble(), 5.0);
}

// Result caching around a *real* epidemic model: M1 generates a synthetic
// population network (expensive), M2 runs an epidemic season on it
// (stochastic). The optimizer picks alpha < 1 and the budgeted run obeys
// the analysis of Section 2.3.
TEST(Integration, ResultCachingOverEpidemicComposite) {
  auto m1 = std::make_shared<composite::FunctionModel>(
      "population",
      [](const std::vector<double>&, Rng& rng)
          -> Result<std::vector<double>> {
        // Output: a population seed (stands in for a serialized network).
        return std::vector<double>{static_cast<double>(rng.Next() % 100000)};
      },
      /*cost=*/50.0);
  auto m2 = std::make_shared<composite::FunctionModel>(
      "season",
      [](const std::vector<double>& in, Rng& rng)
          -> Result<std::vector<double>> {
        epi::PopulationConfig pc;
        pc.num_people = 300;
        pc.seed = static_cast<uint64_t>(in[0]);
        epi::DiseaseConfig dc;
        dc.transmissibility = 0.01;
        dc.seed = rng.Next();
        epi::EpidemicSim sim(epi::GeneratePopulation(pc), dc);
        sim.Advance(30);
        return std::vector<double>{static_cast<double>(sim.TotalInfected())};
      },
      /*cost=*/1.0);
  auto stats = composite::EstimateStatistics(*m1, *m2, {}, 20, 4, 3);
  ASSERT_TRUE(stats.ok());
  const double alpha = composite::OptimalAlpha(stats.value());
  auto run = composite::RunWithBudget(*m1, *m2, {}, alpha, 2000.0, 5);
  ASSERT_TRUE(run.ok());
  EXPECT_LE(run.value().total_cost, 2000.0);
  EXPECT_GT(run.value().estimate, 0.0);
  EXPECT_LE(run.value().m1_runs, run.value().m2_runs);
}

// DOE + metamodel over the epidemic simulator: screen transmissibility vs
// an inert parameter using a factorial design and main effects.
TEST(Integration, DoeScreensEpidemicParameters) {
  Rng rng(11);
  // Factors: x1 = transmissibility in {0.002, 0.02}; x2 = vaccine efficacy
  // (inert here because nobody is vaccinated).
  linalg::Matrix design = doe::FullFactorial(2);
  linalg::Vector response(design.rows());
  for (size_t r = 0; r < design.rows(); ++r) {
    epi::DiseaseConfig dc;
    dc.transmissibility = design(r, 0) < 0 ? 0.002 : 0.02;
    dc.vaccine_efficacy = design(r, 1) < 0 ? 0.5 : 0.9;
    dc.seed = 100 + r;
    epi::PopulationConfig pc;
    pc.num_people = 1500;
    pc.seed = 9;
    epi::EpidemicSim sim(epi::GeneratePopulation(pc), dc);
    sim.Advance(40);
    response[r] = static_cast<double>(sim.TotalInfected());
  }
  auto effects = doe::ComputeMainEffects(design, response);
  ASSERT_TRUE(effects.ok());
  // Transmissibility dominates the inert factor by an order of magnitude.
  EXPECT_GT(std::fabs(effects.value()[0].effect),
            10.0 * std::fabs(effects.value()[1].effect));
}

// Kriging metamodel of the traffic simulator's density-speed response:
// "simulation on demand" — after 7 runs, predictions at unseen densities
// match fresh simulations.
TEST(Integration, KrigingMetamodelOfTrafficSim) {
  auto simulate = [](double density) {
    abs::TrafficSim::Config cfg;
    cfg.num_cells = 600;
    cfg.num_cars = static_cast<size_t>(density * 600.0);
    cfg.seed = 21;
    abs::TrafficSim sim(cfg);
    for (int t = 0; t < 150; ++t) sim.Step();
    double total = 0.0;
    for (int t = 0; t < 50; ++t) {
      sim.Step();
      total += sim.MeanSpeed();
    }
    return total / 50.0;
  };
  linalg::Matrix design(10, 1);
  linalg::Vector y(10);
  for (int i = 0; i < 10; ++i) {
    design(i, 0) = 0.05 + 0.08 * i;  // densities 0.05 .. 0.77
    y[i] = simulate(design(i, 0));
  }
  metamodel::KrigingModel::Options opt;
  opt.fit_hyperparameters = true;
  auto surface = metamodel::KrigingModel::Fit(design, y, opt);
  ASSERT_TRUE(surface.ok());
  for (double density : {0.11, 0.35, 0.6}) {
    EXPECT_NEAR(surface.value().Predict({density}), simulate(density), 0.8)
        << "density " << density;
  }
}

}  // namespace
}  // namespace mde
