#include <gtest/gtest.h>

#include "table/schema_mapping.h"

namespace mde::table {
namespace {

Schema SourceSchema() {
  return Schema({{"id", DataType::kInt64},
                 {"temp_f", DataType::kDouble},
                 {"city", DataType::kString}});
}

Table SourceTable() {
  Table t{SourceSchema()};
  t.Append({Value(int64_t{1}), Value(212.0), Value("sj")});
  t.Append({Value(int64_t{2}), Value(32.0), Value("ny")});
  return t;
}

TEST(SchemaMappingTest, CopyCastConstantComputed) {
  Schema target({{"pid", DataType::kInt64},
                 {"temp_c", DataType::kDouble},
                 {"source_model", DataType::kString},
                 {"id_as_double", DataType::kDouble}});
  using CM = SchemaMapping::ColumnMapping;
  std::vector<CM> mappings;
  mappings.push_back({"pid", CM::Kind::kCopy, "id", {}, nullptr});
  mappings.push_back({"temp_c", CM::Kind::kComputed, "", {},
                      [](const Row& r) {
                        return Value((r[1].AsDouble() - 32.0) * 5.0 / 9.0);
                      }});
  mappings.push_back(
      {"source_model", CM::Kind::kConstant, "", Value("weather-v2"),
       nullptr});
  mappings.push_back({"id_as_double", CM::Kind::kCast, "id", {}, nullptr});

  auto mapping = SchemaMapping::Compile(SourceSchema(), target, mappings);
  ASSERT_TRUE(mapping.ok());
  auto out = mapping.value().Apply(SourceTable());
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.value().num_rows(), 2u);
  EXPECT_EQ(out.value().row(0)[0].AsInt(), 1);
  EXPECT_NEAR(out.value().row(0)[1].AsDouble(), 100.0, 1e-12);
  EXPECT_NEAR(out.value().row(1)[1].AsDouble(), 0.0, 1e-12);
  EXPECT_EQ(out.value().row(0)[2].AsString(), "weather-v2");
  EXPECT_DOUBLE_EQ(out.value().row(1)[3].AsDouble(), 2.0);
}

TEST(SchemaMappingTest, RejectsUnmappedTarget) {
  Schema target({{"a", DataType::kInt64}, {"b", DataType::kInt64}});
  using CM = SchemaMapping::ColumnMapping;
  auto m = SchemaMapping::Compile(
      SourceSchema(), target, {{"a", CM::Kind::kCopy, "id", {}, nullptr}});
  EXPECT_FALSE(m.ok());
}

TEST(SchemaMappingTest, RejectsDoubleMapping) {
  Schema target({{"a", DataType::kInt64}});
  using CM = SchemaMapping::ColumnMapping;
  auto m = SchemaMapping::Compile(
      SourceSchema(), target,
      {{"a", CM::Kind::kCopy, "id", {}, nullptr},
       {"a", CM::Kind::kConstant, "", Value(int64_t{5}), nullptr}});
  EXPECT_FALSE(m.ok());
}

TEST(SchemaMappingTest, RejectsTypeMismatches) {
  using CM = SchemaMapping::ColumnMapping;
  // Copy string into int.
  Schema t1({{"a", DataType::kInt64}});
  EXPECT_FALSE(SchemaMapping::Compile(
                   SourceSchema(), t1,
                   {{"a", CM::Kind::kCopy, "city", {}, nullptr}})
                   .ok());
  // Cast string.
  EXPECT_FALSE(SchemaMapping::Compile(
                   SourceSchema(), t1,
                   {{"a", CM::Kind::kCast, "city", {}, nullptr}})
                   .ok());
  // Constant of wrong type.
  EXPECT_FALSE(SchemaMapping::Compile(
                   SourceSchema(), t1,
                   {{"a", CM::Kind::kConstant, "", Value(1.5), nullptr}})
                   .ok());
}

TEST(SchemaMappingTest, ComputedTypeCheckedAtApply) {
  Schema target({{"a", DataType::kInt64}});
  using CM = SchemaMapping::ColumnMapping;
  auto m = SchemaMapping::Compile(
      SourceSchema(), target,
      {{"a", CM::Kind::kComputed, "", {},
        [](const Row&) { return Value("wrong type"); }}});
  ASSERT_TRUE(m.ok());
  EXPECT_FALSE(m.value().Apply(SourceTable()).ok());
}

TEST(SchemaMappingTest, RejectsForeignSourceTable) {
  Schema target({{"a", DataType::kInt64}});
  using CM = SchemaMapping::ColumnMapping;
  auto m = SchemaMapping::Compile(
      SourceSchema(), target, {{"a", CM::Kind::kCopy, "id", {}, nullptr}});
  ASSERT_TRUE(m.ok());
  Table other{Schema({{"x", DataType::kInt64}})};
  EXPECT_FALSE(m.value().Apply(other).ok());
}

TEST(SchemaMappingTest, CastRoundTripTruncates) {
  Schema target({{"i", DataType::kInt64}});
  using CM = SchemaMapping::ColumnMapping;
  auto m = SchemaMapping::Compile(
      SourceSchema(), target,
      {{"i", CM::Kind::kCast, "temp_f", {}, nullptr}});
  ASSERT_TRUE(m.ok());
  auto out = m.value().Apply(SourceTable());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().row(0)[0].AsInt(), 212);
}

}  // namespace
}  // namespace mde::table
