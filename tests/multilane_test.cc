#include <set>

#include <gtest/gtest.h>

#include "abs/multilane.h"

namespace mde::abs {
namespace {

TEST(MultiLaneTest, NoCollisionsEver) {
  MultiLaneTraffic::Config cfg;
  cfg.num_cells = 300;
  cfg.num_lanes = 3;
  cfg.num_cars = 250;
  MultiLaneTraffic sim(cfg);
  for (int t = 0; t < 200; ++t) {
    sim.Step();
    std::set<std::pair<size_t, size_t>> slots;
    for (size_t c = 0; c < sim.num_cars(); ++c) {
      EXPECT_TRUE(slots.insert({sim.lane(c), sim.position(c)}).second)
          << "two cars share a slot at t=" << t;
    }
  }
}

TEST(MultiLaneTest, LaneChangesHappenUnderCongestion) {
  MultiLaneTraffic::Config cfg;
  cfg.num_cells = 500;
  cfg.num_lanes = 2;
  cfg.num_cars = 300;  // 30% density: plenty of blocking
  MultiLaneTraffic sim(cfg);
  for (int t = 0; t < 100; ++t) sim.Step();
  EXPECT_GT(sim.total_lane_changes(), 50u);
}

TEST(MultiLaneTest, NoLaneChangesOnSingleLane) {
  MultiLaneTraffic::Config cfg;
  cfg.num_lanes = 1;
  cfg.num_cells = 200;
  cfg.num_cars = 60;
  MultiLaneTraffic sim(cfg);
  for (int t = 0; t < 50; ++t) sim.Step();
  EXPECT_EQ(sim.total_lane_changes(), 0u);
}

TEST(MultiLaneTest, SecondLaneImprovesFlowAtModerateDensity) {
  // Same total density: 1 lane with n cars per cell-lane vs 2 lanes.
  auto mean_speed = [](size_t lanes, size_t cars, uint64_t seed) {
    MultiLaneTraffic::Config cfg;
    cfg.num_cells = 600;
    cfg.num_lanes = lanes;
    cfg.num_cars = cars;
    cfg.seed = seed;
    MultiLaneTraffic sim(cfg);
    for (int t = 0; t < 300; ++t) sim.Step();
    double total = 0.0;
    for (int t = 0; t < 100; ++t) {
      sim.Step();
      total += sim.MeanSpeed();
    }
    return total / 100.0;
  };
  // 20% density in both cases; lane changing lets drivers route around
  // local jams, so the two-lane road flows at least as well.
  const double one = mean_speed(1, 120, 5);
  const double two = mean_speed(2, 240, 5);
  EXPECT_GE(two, one * 0.98);
}

TEST(MultiLaneTest, SpeedsBounded) {
  MultiLaneTraffic::Config cfg;
  cfg.num_cars = 100;
  MultiLaneTraffic sim(cfg);
  for (int t = 0; t < 100; ++t) {
    sim.Step();
    for (size_t c = 0; c < sim.num_cars(); ++c) {
      EXPECT_GE(sim.speed(c), 0);
      EXPECT_LE(sim.speed(c), cfg.max_speed);
    }
  }
}

}  // namespace
}  // namespace mde::abs
