#include <cmath>

#include <gtest/gtest.h>

#include "dsgd/dsgd.h"
#include "linalg/solve.h"
#include "timeseries/align.h"
#include "timeseries/timeseries.h"
#include "util/thread_pool.h"

namespace mde::dsgd {
namespace {

linalg::Tridiagonal MakeSystem(size_t n, uint64_t seed) {
  Rng rng(seed);
  linalg::Tridiagonal t;
  t.diag.resize(n);
  t.lower.resize(n - 1);
  t.upper.resize(n - 1);
  for (size_t i = 0; i < n; ++i) t.diag[i] = 4.0 + rng.NextDouble();
  for (size_t i = 0; i + 1 < n; ++i) {
    t.lower[i] = 1.0;
    t.upper[i] = 1.0;
  }
  return t;
}

TEST(SparseRowTest, DotProduct) {
  SparseRow r;
  r.entries = {{0, 2.0}, {2, 3.0}};
  EXPECT_DOUBLE_EQ(r.Dot({1.0, 99.0, 2.0}), 8.0);
}

TEST(RowsFromTridiagonalTest, StructureCorrect) {
  auto t = MakeSystem(5, 1);
  auto rows = RowsFromTridiagonal(t, {1, 2, 3, 4, 5});
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0].entries.size(), 2u);  // first row: diag + upper
  EXPECT_EQ(rows[2].entries.size(), 3u);  // interior: lower + diag + upper
  EXPECT_EQ(rows[4].entries.size(), 2u);
  EXPECT_DOUBLE_EQ(rows[3].b, 4.0);
}

TEST(StrataTest, ThreeStrataConflictFree) {
  auto t = MakeSystem(100, 2);
  linalg::Vector b(100, 1.0);
  auto rows = RowsFromTridiagonal(t, b);
  auto strata = TridiagonalStrata(100);
  ASSERT_EQ(strata.size(), 3u);
  EXPECT_TRUE(StrataAreConflictFree(rows, strata));
}

TEST(StrataTest, TwoStrataWouldConflict) {
  // Adjacent rows share unknowns, so a 2-way round-robin split has
  // conflicts (rows 0 and 2 are fine, but rows 0,2 vs 1,3: stratum {0,2}
  // is fine; {0,1} is not). Construct a deliberately bad stratification.
  auto t = MakeSystem(4, 3);
  linalg::Vector b(4, 1.0);
  auto rows = RowsFromTridiagonal(t, b);
  std::vector<std::vector<size_t>> bad = {{0, 1}, {2, 3}};
  EXPECT_FALSE(StrataAreConflictFree(rows, bad));
}

TEST(SgdTest, KaczmarzConvergesToSolution) {
  const size_t n = 50;
  auto t = MakeSystem(n, 4);
  Rng rng(5);
  linalg::Vector x_true(n);
  for (auto& v : x_true) v = rng.NextDouble() * 2 - 1;
  linalg::Vector b = t.Apply(x_true);
  auto rows = RowsFromTridiagonal(t, b);

  SgdOptions opt;
  opt.rule = StepRule::kKaczmarz;
  opt.iterations = 20000;
  SgdResult result = SolveSgd(rows, n, opt);
  EXPECT_LT(result.residual, 1e-6);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(result.x[i], x_true[i], 1e-5);
  }
}

TEST(SgdTest, PaperSgdRuleDescendsResidual) {
  const size_t n = 30;
  auto t = MakeSystem(n, 6);
  linalg::Vector x_true(n, 0.5);
  linalg::Vector b = t.Apply(x_true);
  auto rows = RowsFromTridiagonal(t, b);
  SgdOptions opt;
  opt.rule = StepRule::kSgd;
  opt.step0 = 2e-3;
  opt.alpha = 0.75;
  opt.iterations = 40000;
  opt.trace_every = 10000;
  SgdResult result = SolveSgd(rows, n, opt);
  const double initial = ResidualNorm(rows, linalg::Vector(n, 0.0));
  EXPECT_LT(result.residual, initial * 0.1);
  // Residual trace is (weakly) decreasing at checkpoints.
  for (size_t i = 1; i < result.residual_trace.size(); ++i) {
    EXPECT_LE(result.residual_trace[i], result.residual_trace[i - 1] * 1.5);
  }
}

TEST(DsgdTest, MatchesThomasOnSplineSystem) {
  // Build a genuine spline-constant system and check DSGD converges to the
  // Thomas solution.
  timeseries::TimeSeries src(1);
  for (int i = 0; i < 60; ++i) {
    EXPECT_TRUE(src.Append(i, std::sin(0.2 * i) + 0.3 * i).ok());
  }
  auto sys = timeseries::BuildSplineSystem(src, 0);
  ASSERT_TRUE(sys.ok());
  auto exact = linalg::SolveTridiagonal(sys.value().a, sys.value().b);
  ASSERT_TRUE(exact.ok());

  ThreadPool pool(4);
  DsgdOptions opt;
  opt.sgd.rule = StepRule::kKaczmarz;
  opt.rounds = 3000;
  SgdResult result =
      SolveTridiagonalDsgd(sys.value().a, sys.value().b, pool, opt);
  ASSERT_EQ(result.x.size(), exact.value().size());
  for (size_t i = 0; i < result.x.size(); ++i) {
    EXPECT_NEAR(result.x[i], exact.value()[i], 1e-4);
  }
}

TEST(DsgdTest, ResidualDecreasesOverRounds) {
  const size_t n = 3000;
  auto t = MakeSystem(n, 8);
  linalg::Vector x_true(n, 1.0);
  linalg::Vector b = t.Apply(x_true);
  ThreadPool pool(4);
  DsgdOptions opt;
  opt.rounds = 600;
  opt.sgd.trace_every = 100;
  SgdResult result = SolveTridiagonalDsgd(t, b, pool, opt);
  ASSERT_GE(result.residual_trace.size(), 3u);
  EXPECT_LT(result.residual_trace.back(), result.residual_trace.front());
  EXPECT_LT(result.residual, 1.0);
}

TEST(DsgdTest, RoundRobinAlsoConverges) {
  const size_t n = 500;
  auto t = MakeSystem(n, 9);
  linalg::Vector b = t.Apply(linalg::Vector(n, -0.5));
  ThreadPool pool(2);
  DsgdOptions opt;
  opt.random_stratum_order = false;
  opt.rounds = 1500;
  SgdResult result = SolveTridiagonalDsgd(t, b, pool, opt);
  EXPECT_LT(result.residual, 1e-3);
}

TEST(DsgdTest, SingleThreadMatchesMultiThreadQuality) {
  const size_t n = 1000;
  auto t = MakeSystem(n, 10);
  linalg::Vector b = t.Apply(linalg::Vector(n, 0.25));
  DsgdOptions opt;
  opt.rounds = 900;
  ThreadPool p1(1), p4(4);
  SgdResult r1 = SolveTridiagonalDsgd(t, b, p1, opt);
  SgdResult r4 = SolveTridiagonalDsgd(t, b, p4, opt);
  EXPECT_LT(r1.residual, 1e-2);
  EXPECT_LT(r4.residual, 1e-2);
}

// Property sweep: DSGD residual shrinks with round count.
class DsgdRoundsTest : public ::testing::TestWithParam<size_t> {};

TEST_P(DsgdRoundsTest, MoreRoundsSmallerResidual) {
  const size_t n = 600;
  auto t = MakeSystem(n, 11);
  linalg::Vector b = t.Apply(linalg::Vector(n, 2.0));
  ThreadPool pool(2);
  DsgdOptions few, many;
  few.rounds = GetParam();
  many.rounds = GetParam() * 4;
  const double r_few = SolveTridiagonalDsgd(t, b, pool, few).residual;
  const double r_many = SolveTridiagonalDsgd(t, b, pool, many).residual;
  EXPECT_LT(r_many, r_few + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Rounds, DsgdRoundsTest,
                         ::testing::Values(30, 90, 300));

}  // namespace
}  // namespace mde::dsgd
