/// Tests for the smaller extensions: contact-type interventions (school
/// closure), lag estimation between composite-model clocks, and bootstrap
/// confidence intervals.

#include <cmath>

#include <gtest/gtest.h>

#include "epi/indemics.h"
#include "mcdb/estimators.h"
#include "timeseries/align.h"
#include "util/distributions.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace mde {
namespace {

TEST(SchoolClosureTest, ClosingSchoolsReducesChildInfections) {
  epi::PopulationConfig pop;
  pop.num_people = 4000;
  pop.seed = 21;
  epi::DiseaseConfig dc;
  dc.transmissibility = 0.012;
  dc.seed = 22;

  auto child_attack = [&](bool close_schools) {
    epi::EpidemicSim sim(epi::GeneratePopulation(pop), dc);
    if (close_schools) {
      sim.SetContactTypeActive(epi::ContactType::kSchool, false);
    }
    sim.Advance(100);
    size_t infected_children = 0;
    for (const epi::Person& p : sim.network().people()) {
      if (p.age <= 18 && p.health != epi::Health::kSusceptible) {
        ++infected_children;
      }
    }
    return infected_children;
  };
  EXPECT_LT(child_attack(true), child_attack(false));
}

TEST(SchoolClosureTest, FlagsToggle) {
  epi::PopulationConfig pop;
  pop.num_people = 100;
  epi::DiseaseConfig dc;
  epi::EpidemicSim sim(epi::GeneratePopulation(pop), dc);
  EXPECT_TRUE(sim.ContactTypeActive(epi::ContactType::kSchool));
  sim.SetContactTypeActive(epi::ContactType::kSchool, false);
  EXPECT_FALSE(sim.ContactTypeActive(epi::ContactType::kSchool));
  sim.SetContactTypeActive(epi::ContactType::kSchool, true);
  EXPECT_TRUE(sim.ContactTypeActive(epi::ContactType::kSchool));
}

TEST(SchoolClosureTest, AllContactsClosedStopsEpidemic) {
  epi::PopulationConfig pop;
  pop.num_people = 1500;
  pop.seed = 23;
  epi::DiseaseConfig dc;
  dc.transmissibility = 0.05;
  dc.initial_infections = 15;
  epi::EpidemicSim sim(epi::GeneratePopulation(pop), dc);
  for (auto type :
       {epi::ContactType::kHousehold, epi::ContactType::kSchool,
        epi::ContactType::kWork, epi::ContactType::kCommunity}) {
    sim.SetContactTypeActive(type, false);
  }
  sim.Advance(50);
  EXPECT_EQ(sim.TotalInfected(), 15u);
}

TEST(LagEstimationTest, RecoversKnownShift) {
  Rng rng(31);
  // target[t] = source[t - 5]: a 5-tick delayed copy plus noise.
  std::vector<double> signal;
  for (int i = 0; i < 300; ++i) {
    signal.push_back(std::sin(0.15 * i) + 0.5 * std::sin(0.045 * i));
  }
  timeseries::TimeSeries source(1), target(1);
  for (int i = 0; i < 280; ++i) {
    ASSERT_TRUE(source.Append(i, signal[i + 10]).ok());
    ASSERT_TRUE(
        target.Append(i, signal[i + 5] + SampleNormal(rng, 0.0, 0.02)).ok());
  }
  auto lag = timeseries::EstimateLag(source, target, 20);
  ASSERT_TRUE(lag.ok());
  EXPECT_EQ(lag.value(), 5);
}

TEST(LagEstimationTest, ZeroLagForAlignedSeries) {
  timeseries::TimeSeries a(1), b(1);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(a.Append(i, std::sin(0.2 * i)).ok());
    ASSERT_TRUE(b.Append(i, 2.0 * std::sin(0.2 * i) + 1.0).ok());
  }
  auto lag = timeseries::EstimateLag(a, b, 10);
  ASSERT_TRUE(lag.ok());
  EXPECT_EQ(lag.value(), 0);
}

TEST(LagEstimationTest, RejectsShortSeries) {
  timeseries::TimeSeries a(1), b(1);
  ASSERT_TRUE(a.Append(0, 1.0).ok());
  ASSERT_TRUE(b.Append(0, 1.0).ok());
  EXPECT_FALSE(timeseries::EstimateLag(a, b, 5).ok());
}

TEST(BootstrapTest, CoversTrueMedian) {
  Rng rng(41);
  std::vector<double> samples;
  for (int i = 0; i < 500; ++i) samples.push_back(SampleNormal(rng, 10, 2));
  auto ci = mcdb::BootstrapConfidenceInterval(
      samples, [](const std::vector<double>& s) { return Quantile(s, 0.5); },
      500, 0.95, 7);
  ASSERT_TRUE(ci.ok());
  EXPECT_LT(ci.value().lo, 10.0);
  EXPECT_GT(ci.value().hi, 10.0);
  EXPECT_NEAR(ci.value().estimate, 10.0, 0.3);
  EXPECT_LT(ci.value().hi - ci.value().lo, 1.0);
}

TEST(BootstrapTest, WiderIntervalForTailStatistic) {
  Rng rng(42);
  std::vector<double> samples;
  for (int i = 0; i < 500; ++i) samples.push_back(SampleNormal(rng, 0, 1));
  auto median = mcdb::BootstrapConfidenceInterval(
      samples, [](const std::vector<double>& s) { return Quantile(s, 0.5); },
      400, 0.95, 9);
  auto p99 = mcdb::BootstrapConfidenceInterval(
      samples,
      [](const std::vector<double>& s) { return Quantile(s, 0.99); }, 400,
      0.95, 9);
  ASSERT_TRUE(median.ok() && p99.ok());
  EXPECT_GT(p99.value().hi - p99.value().lo,
            median.value().hi - median.value().lo);
}

/// Each bootstrap replicate owns an RNG substream, so fanning the
/// replicates across a pool must not change a single bit of the interval.
TEST(BootstrapTest, PooledBootstrapIsBitIdenticalToSerial) {
  Rng rng(43);
  std::vector<double> samples;
  for (int i = 0; i < 200; ++i) samples.push_back(SampleNormal(rng, 5, 1));
  auto stat = [](const std::vector<double>& s) { return Quantile(s, 0.5); };
  auto serial = mcdb::BootstrapConfidenceInterval(samples, stat, 200, 0.9, 3);
  ASSERT_TRUE(serial.ok());
  for (size_t threads : {1u, 4u}) {
    ThreadPool pool(threads);
    auto pooled =
        mcdb::BootstrapConfidenceInterval(samples, stat, 200, 0.9, 3, &pool);
    ASSERT_TRUE(pooled.ok());
    EXPECT_EQ(pooled.value().estimate, serial.value().estimate);
    EXPECT_EQ(pooled.value().lo, serial.value().lo);
    EXPECT_EQ(pooled.value().hi, serial.value().hi);
  }
}

TEST(BootstrapTest, RejectsBadInput) {
  auto stat = [](const std::vector<double>& s) { return s[0]; };
  EXPECT_FALSE(
      mcdb::BootstrapConfidenceInterval({1.0}, stat, 100, 0.95, 1).ok());
  EXPECT_FALSE(
      mcdb::BootstrapConfidenceInterval({1, 2}, stat, 5, 0.95, 1).ok());
  EXPECT_FALSE(
      mcdb::BootstrapConfidenceInterval({1, 2}, stat, 100, 1.5, 1).ok());
}

}  // namespace
}  // namespace mde
