// End-to-end crash-safety: for every checkpointable engine, checkpoint at
// an interior step, destroy the engine, restore into a fresh one, finish —
// and require the final state to be BIT-IDENTICAL to an uninterrupted run,
// at every pool width. Final snapshots serialize the complete working state
// (doubles as IEEE-754 bits), so byte equality of Save() outputs is exactly
// that guarantee.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/fault.h"
#include "ckpt/recovery.h"
#include "dsgd/dsgd.h"
#include "dsgd/matrix_completion.h"
#include "mcdb/vg_function.h"
#include "simd/simd.h"
#include "simsql/simsql.h"
#include "smc/particle_filter.h"
#include "table/table.h"
#include "util/distributions.h"
#include "util/thread_pool.h"
#include "wildfire/assimilate.h"
#include "wildfire/fire.h"

namespace mde {
namespace {

using Factory = std::function<std::unique_ptr<ckpt::Checkpointable>()>;

/// Reference run vs kill-at-step-k + restore + finish: final snapshots must
/// match byte for byte.
void ExpectBitIdenticalRecovery(const Factory& make, size_t kill_at) {
  ckpt::FaultInjector::Global().Configure({});  // quiesce
  auto reference = make();
  while (!reference->Done()) ASSERT_TRUE(reference->StepOnce().ok());
  auto ref_snap = reference->Save();
  ASSERT_TRUE(ref_snap.ok()) << ref_snap.status().message();

  std::string mid;
  {
    auto victim = make();
    for (size_t s = 0; s < kill_at && !victim->Done(); ++s) {
      ASSERT_TRUE(victim->StepOnce().ok());
    }
    auto m = victim->Save();
    ASSERT_TRUE(m.ok()) << m.status().message();
    mid = m.value();
  }  // destroyed: the "kill"

  auto recovered = make();
  ASSERT_TRUE(recovered->Restore(mid).ok());
  while (!recovered->Done()) ASSERT_TRUE(recovered->StepOnce().ok());
  auto rec_snap = recovered->Save();
  ASSERT_TRUE(rec_snap.ok());
  EXPECT_EQ(rec_snap.value(), ref_snap.value());
}

/// Same guarantee through the production recovery loop with an injected
/// fault at the engine's fault point.
void ExpectBitIdenticalInjectedRecovery(const Factory& make,
                                        const std::string& fault_point,
                                        uint64_t fire_at_hit) {
  ckpt::FaultInjector::Global().Configure({});
  auto reference = make();
  while (!reference->Done()) ASSERT_TRUE(reference->StepOnce().ok());
  auto ref_snap = reference->Save();
  ASSERT_TRUE(ref_snap.ok());

  ckpt::FaultInjector::Config c;
  c.enabled = true;
  c.point = fault_point;
  c.fire_at_hit = fire_at_hit;
  ckpt::FaultInjector::Global().Configure(c);
  auto faulty = make();
  ckpt::RecoveryOptions opts;
  opts.checkpoint_every = 1;
  opts.retry.sleep = false;
  auto stats = ckpt::RunWithRecovery(*faulty, opts);
  ckpt::FaultInjector::Global().Configure({});
  ASSERT_TRUE(stats.ok()) << stats.status().message();
  EXPECT_EQ(stats.value().faults, 1u);
  EXPECT_EQ(stats.value().restores, 1u);
  auto rec_snap = faulty->Save();
  ASSERT_TRUE(rec_snap.ok());
  EXPECT_EQ(rec_snap.value(), ref_snap.value());
}

const size_t kThreadCounts[] = {1, 2, 8};

// ---------------------------------------------------------------------------
// DSGD.
// ---------------------------------------------------------------------------

struct DsgdProblem {
  DsgdProblem() {
    const size_t n = 48;
    linalg::Tridiagonal a;
    a.lower.assign(n - 1, 1.0);
    a.diag.assign(n, 4.0);
    a.upper.assign(n - 1, 1.0);
    linalg::Vector b(n, 1.0);
    rows = dsgd::RowsFromTridiagonal(a, b);
    strata = dsgd::TridiagonalStrata(rows.size());
    options.rounds = 24;
    options.sgd.trace_every = 4;  // exercises the ConvergenceMonitor state
  }
  std::vector<dsgd::SparseRow> rows;
  std::vector<std::vector<size_t>> strata;
  dsgd::DsgdOptions options;
};

TEST(RecoveryTest, DsgdKillAndRestoreIsBitIdentical) {
  DsgdProblem p;
  for (size_t threads : kThreadCounts) {
    ThreadPool pool(threads);
    const Factory make = [&]() {
      return std::make_unique<dsgd::DsgdRun>(p.rows, p.rows.size(), p.strata,
                                             pool, p.options);
    };
    ExpectBitIdenticalRecovery(make, /*kill_at=*/11);
  }
}

TEST(RecoveryTest, DsgdInjectedFaultRecovery) {
  DsgdProblem p;
  ThreadPool pool(2);
  const Factory make = [&]() {
    return std::make_unique<dsgd::DsgdRun>(p.rows, p.rows.size(), p.strata,
                                           pool, p.options);
  };
  ExpectBitIdenticalInjectedRecovery(make, "dsgd.round", /*fire_at_hit=*/13);
}

// ---------------------------------------------------------------------------
// Matrix completion.
// ---------------------------------------------------------------------------

struct McProblem {
  McProblem() {
    ratings = dsgd::SyntheticRatings(30, 24, 3, 0.35, 0.1, 5);
    options.rank = 4;
    options.epochs = 5;
    options.blocks = 3;
  }
  dsgd::RatingsDataset ratings;
  dsgd::CompletionOptions options;
};

TEST(RecoveryTest, MatrixCompletionKillAndRestoreIsBitIdentical) {
  McProblem p;
  for (size_t threads : kThreadCounts) {
    ThreadPool pool(threads);
    const Factory make = [&]() {
      auto run = std::make_unique<dsgd::MatrixCompletionRun>(
          p.ratings.train, p.ratings.rows, p.ratings.cols, pool, p.options);
      EXPECT_TRUE(run->status().ok());
      return run;
    };
    // Kill mid-epoch (stratum 2 of epoch 2): the (epoch, sub-epoch) block
    // cursor and the per-epoch permutation must both survive.
    ExpectBitIdenticalRecovery(make, /*kill_at=*/7);
  }
}

TEST(RecoveryTest, MatrixCompletionInjectedFaultRecovery) {
  McProblem p;
  ThreadPool pool(2);
  const Factory make = [&]() {
    return std::make_unique<dsgd::MatrixCompletionRun>(
        p.ratings.train, p.ratings.rows, p.ratings.cols, pool, p.options);
  };
  ExpectBitIdenticalInjectedRecovery(make, "mc.sub_epoch", /*fire_at_hit=*/8);
}

// ---------------------------------------------------------------------------
// SimSQL chain.
// ---------------------------------------------------------------------------

simsql::ChainTableSpec WalkerSpec(size_t walkers) {
  simsql::ChainTableSpec spec;
  spec.name = "WALKERS";
  spec.init = [walkers](const simsql::DatabaseState&,
                        Rng&) -> Result<table::Table> {
    table::Table t{table::Schema({{"id", table::DataType::kInt64},
                                  {"pos", table::DataType::kDouble}})};
    for (size_t i = 0; i < walkers; ++i) {
      t.Append({table::Value(static_cast<int64_t>(i)), table::Value(0.0)});
    }
    return t;
  };
  spec.transition = [](const simsql::DatabaseState& prev,
                       const simsql::DatabaseState&,
                       Rng& rng) -> Result<table::Table> {
    const table::Table& old = prev.at("WALKERS");
    table::Table t(old.schema());
    for (const table::Row& r : old.rows()) {
      t.Append({r[0],
                table::Value(r[1].AsDouble() + SampleStandardNormal(rng))});
    }
    return t;
  };
  return spec;
}

TEST(RecoveryTest, SimsqlChainKillAndRestoreIsBitIdentical) {
  simsql::MarkovChainDb db;
  ASSERT_TRUE(db.AddChainTable(WalkerSpec(6)).ok());
  db.set_history_limit(3);  // retained history is part of the snapshot
  const Factory make = [&]() {
    return std::make_unique<simsql::ChainRunner>(db, /*steps=*/12,
                                                 /*seed=*/42, /*rep=*/1);
  };
  ExpectBitIdenticalRecovery(make, /*kill_at=*/6);
}

TEST(RecoveryTest, SimsqlChainInjectedFaultRecovery) {
  simsql::MarkovChainDb db;
  ASSERT_TRUE(db.AddChainTable(WalkerSpec(6)).ok());
  const Factory make = [&]() {
    return std::make_unique<simsql::ChainRunner>(db, /*steps=*/10,
                                                 /*seed=*/7, /*rep=*/0);
  };
  ExpectBitIdenticalInjectedRecovery(make, "simsql.version",
                                     /*fire_at_hit=*/5);
}

TEST(RecoveryTest, SimsqlCrossTierCheckpointRestoreIsBitIdentical) {
  // Checkpoints carry no SIMD-tier state and every dispatched kernel is
  // bitwise tier-identical, so a snapshot written while running on the
  // scalar tier must restore and finish bit-identically on the best
  // (e.g. AVX2) tier. The chain transition draws through the batched
  // vectorized sampler so the run genuinely exercises the kernels.
  simsql::ChainTableSpec spec;
  spec.name = "WALKERS";
  spec.init = [](const simsql::DatabaseState&,
                 Rng&) -> Result<table::Table> {
    table::Table t{table::Schema({{"id", table::DataType::kInt64},
                                  {"pos", table::DataType::kDouble}})};
    for (int64_t i = 0; i < 6; ++i) t.Append({i, 0.0});
    return t;
  };
  const auto vg = std::make_shared<mcdb::NormalVg>();
  spec.transition = [vg](const simsql::DatabaseState& prev,
                         const simsql::DatabaseState&,
                         Rng& rng) -> Result<table::Table> {
    const table::Table& old = prev.at("WALKERS");
    std::vector<double> steps(old.num_rows());
    const table::Row params{table::Value(0.0), table::Value(1.0)};
    if (!vg->GenerateScalarN(params, rng, steps.size(), steps.data())) {
      return Status::Internal("normal batch draw failed");
    }
    table::Table t(old.schema());
    for (size_t i = 0; i < old.num_rows(); ++i) {
      t.Append({old.row(i)[0],
                table::Value(old.row(i)[1].AsDouble() + steps[i])});
    }
    return t;
  };
  simsql::MarkovChainDb db;
  ASSERT_TRUE(db.AddChainTable(std::move(spec)).ok());
  const Factory make = [&]() {
    return std::make_unique<simsql::ChainRunner>(db, /*steps=*/12,
                                                 /*seed=*/63, /*rep=*/0);
  };

  const simd::Tier best = simd::BestSupportedTier();
  // Reference: uninterrupted run on the best tier.
  simd::SetTier(best);
  auto reference = make();
  while (!reference->Done()) ASSERT_TRUE(reference->StepOnce().ok());
  auto ref_snap = reference->Save();
  ASSERT_TRUE(ref_snap.ok());

  // Checkpoint half-way under the scalar tier, then "kill".
  simd::SetTier(simd::Tier::kScalar);
  std::string mid;
  {
    auto victim = make();
    for (size_t s = 0; s < 6; ++s) ASSERT_TRUE(victim->StepOnce().ok());
    auto m = victim->Save();
    ASSERT_TRUE(m.ok());
    mid = m.value();
  }

  // Restore and finish on the best tier.
  simd::SetTier(best);
  auto recovered = make();
  ASSERT_TRUE(recovered->Restore(mid).ok());
  while (!recovered->Done()) ASSERT_TRUE(recovered->StepOnce().ok());
  auto rec_snap = recovered->Save();
  ASSERT_TRUE(rec_snap.ok());
  EXPECT_EQ(rec_snap.value(), ref_snap.value());
}

TEST(RecoveryTest, SimsqlRunnerMatchesMarkovChainDbRun) {
  // The resumable runner is the implementation of Run(): same seed/rep must
  // produce the same final state, cell for cell.
  simsql::MarkovChainDb db;
  ASSERT_TRUE(db.AddChainTable(WalkerSpec(5)).ok());
  auto direct = db.Run(8, 21, 2);
  ASSERT_TRUE(direct.ok());
  simsql::ChainRunner runner(db, 8, 21, 2);
  while (!runner.Done()) ASSERT_TRUE(runner.StepOnce().ok());
  auto finished = runner.Finish();
  ASSERT_TRUE(finished.ok());
  const table::Table& a = direct.value().at("WALKERS");
  const table::Table& b = finished.value().at("WALKERS");
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (size_t i = 0; i < a.num_rows(); ++i) {
    EXPECT_EQ(a.row(i)[1].AsDouble(), b.row(i)[1].AsDouble());
  }
}

// ---------------------------------------------------------------------------
// Particle filter.
// ---------------------------------------------------------------------------

/// Linear-Gaussian model: x_n = 0.9 x_{n-1} + N(0, 0.5); y = x + N(0, 0.4).
class ArModel : public smc::StateSpaceModel {
 public:
  smc::State SampleInitial(const smc::Observation&, Rng& rng) const override {
    return {SampleNormal(rng, 0.0, 1.0)};
  }
  smc::State SampleProposal(const smc::Observation&,
                            const smc::State& x_prev, Rng& rng) const override {
    return {0.9 * x_prev[0] + SampleNormal(rng, 0.0, 0.5)};
  }
  double LogObservation(const smc::Observation& y,
                        const smc::State& x) const override {
    return NormalLogPdf(y[0], x[0], 0.4);
  }
};

std::vector<smc::Observation> ArObservations(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<smc::Observation> obs;
  double x = 0.0;
  for (size_t t = 0; t < n; ++t) {
    x = 0.9 * x + SampleNormal(rng, 0.0, 0.5);
    obs.push_back({x + SampleNormal(rng, 0.0, 0.4)});
  }
  return obs;
}

TEST(RecoveryTest, ParticleFilterKillAndRestoreIsBitIdentical) {
  ArModel model;
  const auto observations = ArObservations(10, 31);
  for (size_t threads : kThreadCounts) {
    ThreadPool pool(threads);
    smc::ParticleFilterOptions options;
    options.num_particles = 150;
    options.seed = 77;
    options.pool = &pool;
    const Factory make = [&]() {
      return std::make_unique<smc::FilterRun>(model, observations, options);
    };
    ExpectBitIdenticalRecovery(make, /*kill_at=*/5);
  }
}

TEST(RecoveryTest, ParticleFilterInjectedFaultRecovery) {
  ArModel model;
  const auto observations = ArObservations(8, 19);
  smc::ParticleFilterOptions options;
  options.num_particles = 100;
  options.seed = 3;
  const Factory make = [&]() {
    return std::make_unique<smc::FilterRun>(model, observations, options);
  };
  ExpectBitIdenticalInjectedRecovery(make, "smc.step", /*fire_at_hit=*/4);
}

TEST(RecoveryTest, ParticleFilterStandaloneSnapshotRoundTrips) {
  // SaveSnapshot/RestoreSnapshot on the bare filter (no run adapter).
  ArModel model;
  const auto observations = ArObservations(6, 77);
  smc::ParticleFilterOptions options;
  options.num_particles = 80;
  smc::ParticleFilter a(model, options);
  ASSERT_TRUE(a.Initialize(observations[0]).ok());
  ASSERT_TRUE(a.Step(observations[1]).ok());
  auto snap = a.SaveSnapshot();
  ASSERT_TRUE(snap.ok());

  smc::ParticleFilter b(model, options);
  ASSERT_TRUE(b.RestoreSnapshot(snap.value()).ok());
  for (size_t t = 2; t < observations.size(); ++t) {
    ASSERT_TRUE(a.Step(observations[t]).ok());
    ASSERT_TRUE(b.Step(observations[t]).ok());
  }
  EXPECT_EQ(a.TotalLogLikelihood(), b.TotalLogLikelihood());  // bit-exact
  EXPECT_EQ(a.MeanState()[0], b.MeanState()[0]);
  EXPECT_EQ(a.weights(), b.weights());
}

// ---------------------------------------------------------------------------
// Wildfire assimilation.
// ---------------------------------------------------------------------------

struct WildfireProblem {
  WildfireProblem()
      : terrain(wildfire::GenerateTerrain(16, 16, 0.4, 0.1, 13)),
        sim(terrain, wildfire::FireSim::Config{}),
        sensors(terrain, wildfire::SensorModel::Config{}) {
    config.num_particles = 30;
  }
  wildfire::Terrain terrain;
  wildfire::FireSim sim;
  wildfire::SensorModel sensors;
  wildfire::AssimilationConfig config;
};

TEST(RecoveryTest, WildfireKillAndRestoreIsBitIdentical) {
  WildfireProblem p;
  const Factory make = [&]() {
    return std::make_unique<wildfire::AssimilationDriver>(
        p.sim, p.sensors, /*steps=*/8, p.config, /*truth_seed=*/11);
  };
  ExpectBitIdenticalRecovery(make, /*kill_at=*/4);
}

TEST(RecoveryTest, WildfireSensorAwareKillAndRestoreIsBitIdentical) {
  WildfireProblem p;
  p.config.proposal = wildfire::ProposalKind::kSensorAware;
  p.config.kde_samples = 4;
  const Factory make = [&]() {
    return std::make_unique<wildfire::AssimilationDriver>(
        p.sim, p.sensors, /*steps=*/6, p.config, /*truth_seed=*/23);
  };
  ExpectBitIdenticalRecovery(make, /*kill_at=*/3);
}

TEST(RecoveryTest, WildfireInjectedFaultRecovery) {
  WildfireProblem p;
  const Factory make = [&]() {
    return std::make_unique<wildfire::AssimilationDriver>(
        p.sim, p.sensors, /*steps=*/6, p.config, /*truth_seed=*/11);
  };
  ExpectBitIdenticalInjectedRecovery(make, "wildfire.step",
                                     /*fire_at_hit=*/3);
}

// ---------------------------------------------------------------------------
// Cross-engine safety.
// ---------------------------------------------------------------------------

TEST(RecoveryTest, RejectsSnapshotFromDifferentEngine) {
  DsgdProblem dp;
  ThreadPool pool(1);
  dsgd::DsgdRun run(dp.rows, dp.rows.size(), dp.strata, pool, dp.options);
  ASSERT_TRUE(run.StepOnce().ok());
  auto snap = run.Save();
  ASSERT_TRUE(snap.ok());

  McProblem mp;
  dsgd::MatrixCompletionRun mc(mp.ratings.train, mp.ratings.rows,
                               mp.ratings.cols, pool, mp.options);
  const Status st = mc.Restore(snap.value());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(RecoveryTest, RejectsSnapshotForDifferentProblemShape) {
  WildfireProblem p;
  wildfire::AssimilationDriver a(p.sim, p.sensors, 6, p.config, 11);
  ASSERT_TRUE(a.StepOnce().ok());
  auto snap = a.Save();
  ASSERT_TRUE(snap.ok());
  // Different run length: refuse rather than finish the wrong experiment.
  wildfire::AssimilationDriver b(p.sim, p.sensors, 9, p.config, 11);
  EXPECT_EQ(b.Restore(snap.value()).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace mde
