#include <cmath>

#include <gtest/gtest.h>

#include "linalg/matrix.h"
#include "linalg/solve.h"
#include "util/rng.h"

namespace mde::linalg {
namespace {

TEST(MatrixTest, IdentityMultiplication) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix i = Matrix::Identity(2);
  Matrix p = a * i;
  EXPECT_DOUBLE_EQ(p(0, 0), 1);
  EXPECT_DOUBLE_EQ(p(0, 1), 2);
  EXPECT_DOUBLE_EQ(p(1, 0), 3);
  EXPECT_DOUBLE_EQ(p(1, 1), 4);
}

TEST(MatrixTest, TransposeRoundTrip) {
  Matrix a = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  Matrix t = a.Transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6);
  Matrix tt = t.Transpose();
  EXPECT_DOUBLE_EQ((tt - a).FrobeniusNorm(), 0.0);
}

TEST(MatrixTest, MatVecProduct) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Vector v = {1, 1};
  Vector r = a * v;
  EXPECT_DOUBLE_EQ(r[0], 3);
  EXPECT_DOUBLE_EQ(r[1], 7);
}

TEST(VectorOpsTest, DotAndNorm) {
  Vector a = {3, 4};
  EXPECT_DOUBLE_EQ(Dot(a, a), 25);
  EXPECT_DOUBLE_EQ(Norm(a), 5);
  Vector b = Axpy(a, 2.0, {1, 1});
  EXPECT_DOUBLE_EQ(b[0], 5);
  EXPECT_DOUBLE_EQ(b[1], 6);
}

Tridiagonal MakeSplineLikeSystem(size_t n, Rng& rng) {
  Tridiagonal t;
  t.diag.resize(n);
  t.lower.resize(n - 1);
  t.upper.resize(n - 1);
  for (size_t i = 0; i < n; ++i) {
    t.diag[i] = 4.0 + rng.NextDouble();  // diagonally dominant
  }
  for (size_t i = 0; i + 1 < n; ++i) {
    t.lower[i] = 0.5 + rng.NextDouble() * 0.5;
    t.upper[i] = 0.5 + rng.NextDouble() * 0.5;
  }
  return t;
}

TEST(TridiagonalTest, ThomasSolvesKnownSystem) {
  // [2 1; 1 2] x = [3; 3] -> x = [1; 1].
  Tridiagonal t;
  t.diag = {2, 2};
  t.lower = {1};
  t.upper = {1};
  auto x = SolveTridiagonal(t, {3, 3});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(x.value()[0], 1.0, 1e-12);
  EXPECT_NEAR(x.value()[1], 1.0, 1e-12);
}

TEST(TridiagonalTest, ResidualTinyOnRandomSystems) {
  Rng rng(42);
  for (size_t n : {3u, 10u, 100u, 1000u}) {
    Tridiagonal t = MakeSplineLikeSystem(n, rng);
    Vector b(n);
    for (auto& v : b) v = rng.NextDouble() * 10 - 5;
    auto x = SolveTridiagonal(t, b);
    ASSERT_TRUE(x.ok());
    Vector r = t.Apply(x.value());
    double err = 0;
    for (size_t i = 0; i < n; ++i) err = std::max(err, std::fabs(r[i] - b[i]));
    EXPECT_LT(err, 1e-9) << "n=" << n;
  }
}

TEST(TridiagonalTest, DenseExpansionMatchesApply) {
  Rng rng(43);
  Tridiagonal t = MakeSplineLikeSystem(5, rng);
  Vector x = {1, -2, 3, -4, 5};
  Vector via_apply = t.Apply(x);
  Vector via_dense = t.ToDense() * x;
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(via_apply[i], via_dense[i], 1e-12);
  }
}

TEST(CholeskyTest, FactorReconstructs) {
  Matrix a = Matrix::FromRows({{4, 2, 0}, {2, 5, 1}, {0, 1, 3}});
  auto l = Cholesky(a);
  ASSERT_TRUE(l.ok());
  Matrix rec = l.value() * l.value().Transpose();
  EXPECT_LT((rec - a).FrobeniusNorm(), 1e-10);
}

TEST(CholeskyTest, RejectsIndefinite) {
  Matrix a = Matrix::FromRows({{1, 2}, {2, 1}});  // eigenvalues 3, -1
  EXPECT_FALSE(Cholesky(a).ok());
}

TEST(SpdSolveTest, SolvesAgainstKnownSolution) {
  Matrix a = Matrix::FromRows({{4, 1}, {1, 3}});
  Vector x_true = {1, 2};
  Vector b = a * x_true;
  auto x = SolveSpd(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(x.value()[0], 1.0, 1e-10);
  EXPECT_NEAR(x.value()[1], 2.0, 1e-10);
}

TEST(LuTest, SolvesNonSymmetric) {
  Matrix a = Matrix::FromRows({{0, 2, 1}, {1, -2, -3}, {-1, 1, 2}});
  Vector x_true = {1, 2, 3};
  Vector b = a * x_true;
  auto x = SolveLu(a, b);
  ASSERT_TRUE(x.ok());
  for (size_t i = 0; i < 3; ++i) EXPECT_NEAR(x.value()[i], x_true[i], 1e-10);
}

TEST(LuTest, DetectsSingular) {
  Matrix a = Matrix::FromRows({{1, 2}, {2, 4}});
  EXPECT_FALSE(SolveLu(a, {1, 1}).ok());
}

TEST(InverseTest, InverseTimesSelfIsIdentity) {
  Matrix a = Matrix::FromRows({{2, 1, 0}, {1, 3, 1}, {0, 1, 4}});
  auto inv = Inverse(a);
  ASSERT_TRUE(inv.ok());
  Matrix prod = a * inv.value();
  EXPECT_LT((prod - Matrix::Identity(3)).FrobeniusNorm(), 1e-10);
}

TEST(LeastSquaresTest, RecoversExactLinearModel) {
  // y = 2 + 3x, no noise; X = [1 x].
  Matrix x(5, 2);
  Vector y(5);
  for (size_t i = 0; i < 5; ++i) {
    x(i, 0) = 1.0;
    x(i, 1) = static_cast<double>(i);
    y[i] = 2.0 + 3.0 * static_cast<double>(i);
  }
  auto beta = LeastSquares(x, y);
  ASSERT_TRUE(beta.ok());
  EXPECT_NEAR(beta.value()[0], 2.0, 1e-6);
  EXPECT_NEAR(beta.value()[1], 3.0, 1e-6);
}

TEST(LeastSquaresTest, ProjectsNoisyData) {
  Rng rng(44);
  const size_t n = 2000;
  Matrix x(n, 3);
  Vector y(n);
  for (size_t i = 0; i < n; ++i) {
    x(i, 0) = 1.0;
    x(i, 1) = rng.NextDouble() * 4 - 2;
    x(i, 2) = rng.NextDouble() * 4 - 2;
    y[i] = 1.0 - 2.0 * x(i, 1) + 0.5 * x(i, 2) +
           (rng.NextDouble() - 0.5) * 0.1;
  }
  auto beta = LeastSquares(x, y);
  ASSERT_TRUE(beta.ok());
  EXPECT_NEAR(beta.value()[0], 1.0, 0.01);
  EXPECT_NEAR(beta.value()[1], -2.0, 0.01);
  EXPECT_NEAR(beta.value()[2], 0.5, 0.01);
}

// Property: Thomas solve matches dense LU solve on random tridiagonal
// systems of varying size.
class TridiagonalVsDenseTest : public ::testing::TestWithParam<size_t> {};

TEST_P(TridiagonalVsDenseTest, AgreesWithDenseLu) {
  Rng rng(100 + GetParam());
  const size_t n = GetParam();
  Tridiagonal t = MakeSplineLikeSystem(n, rng);
  Vector b(n);
  for (auto& v : b) v = rng.NextDouble();
  auto fast = SolveTridiagonal(t, b);
  auto dense = SolveLu(t.ToDense(), b);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(dense.ok());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(fast.value()[i], dense.value()[i], 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TridiagonalVsDenseTest,
                         ::testing::Values(2, 3, 5, 17, 64, 129));

}  // namespace
}  // namespace mde::linalg
