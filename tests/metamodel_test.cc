#include <cmath>

#include <gtest/gtest.h>

#include "metamodel/kriging.h"
#include "metamodel/polynomial.h"
#include "util/distributions.h"
#include "util/rng.h"

namespace mde::metamodel {
namespace {

TEST(PolynomialTest, FitsExactLinearResponse) {
  // y = 1 + 2 x1 - 3 x2 on a 2^2 factorial.
  linalg::Matrix x = linalg::Matrix::FromRows(
      {{-1, -1}, {1, -1}, {-1, 1}, {1, 1}});
  linalg::Vector y(4);
  for (size_t r = 0; r < 4; ++r) y[r] = 1 + 2 * x(r, 0) - 3 * x(r, 1);
  PolynomialMetamodel::Options opt;
  opt.max_interaction_order = 1;
  auto m = PolynomialMetamodel::Fit(x, y, opt);
  ASSERT_TRUE(m.ok());
  EXPECT_NEAR(m.value().coefficients()[0], 1.0, 1e-8);
  EXPECT_NEAR(m.value().MainEffect(0), 2.0, 1e-8);
  EXPECT_NEAR(m.value().MainEffect(1), -3.0, 1e-8);
  EXPECT_NEAR(m.value().r_squared(), 1.0, 1e-9);
  EXPECT_NEAR(m.value().Predict({0.5, 0.5}), 1.0 + 1.0 - 1.5, 1e-8);
}

TEST(PolynomialTest, InteractionTerms) {
  // y = x1 * x2 needs order-2 terms.
  linalg::Matrix x = linalg::Matrix::FromRows(
      {{-1, -1}, {1, -1}, {-1, 1}, {1, 1}});
  linalg::Vector y = {1, -1, -1, 1};
  PolynomialMetamodel::Options lin{1};
  PolynomialMetamodel::Options quad{2};
  auto linear = PolynomialMetamodel::Fit(x, y, lin);
  auto full = PolynomialMetamodel::Fit(x, y, quad);
  ASSERT_TRUE(linear.ok() && full.ok());
  EXPECT_LT(linear.value().r_squared(), 0.1);  // linear can't see it
  EXPECT_NEAR(full.value().r_squared(), 1.0, 1e-9);
  // The interaction coefficient is the last term (x1*x2).
  EXPECT_NEAR(full.value().coefficients().back(), 1.0, 1e-8);
}

TEST(PolynomialTest, TermNamesEnumerated) {
  linalg::Matrix x = linalg::Matrix::FromRows(
      {{-1, -1, -1}, {1, -1, -1}, {-1, 1, -1}, {1, 1, -1},
       {-1, -1, 1}, {1, -1, 1}, {-1, 1, 1}, {1, 1, 1}});
  linalg::Vector y(8, 0.0);
  PolynomialMetamodel::Options opt{3};
  auto m = PolynomialMetamodel::Fit(x, y, opt);
  ASSERT_TRUE(m.ok());
  const auto& names = m.value().term_names();
  ASSERT_EQ(names.size(), 8u);  // 1 + 3 + 3 + 1
  EXPECT_EQ(names[0], "1");
  EXPECT_EQ(names[1], "x1");
  EXPECT_EQ(names[4], "x1*x2");
  EXPECT_EQ(names[7], "x1*x2*x3");
}

TEST(PolynomialTest, RejectsUnderdeterminedFit) {
  linalg::Matrix x = linalg::Matrix::FromRows({{-1, -1}, {1, 1}});
  linalg::Vector y = {0, 1};
  PolynomialMetamodel::Options opt{2};  // 4 terms > 2 runs
  EXPECT_FALSE(PolynomialMetamodel::Fit(x, y, opt).ok());
}

linalg::Matrix Grid1D(size_t n, double lo, double hi) {
  linalg::Matrix x(n, 1);
  for (size_t i = 0; i < n; ++i) {
    x(i, 0) = lo + (hi - lo) * static_cast<double>(i) / (n - 1);
  }
  return x;
}

TEST(KrigingTest, InterpolatesDesignPointsExactly) {
  linalg::Matrix x = Grid1D(8, 0.0, 7.0);
  linalg::Vector y(8);
  for (size_t i = 0; i < 8; ++i) y[i] = std::sin(x(i, 0));
  KrigingModel::Options opt;
  opt.theta = {1.0};
  auto m = KrigingModel::Fit(x, y, opt);
  ASSERT_TRUE(m.ok());
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(m.value().Predict({x(i, 0)}), y[i], 1e-5);
    EXPECT_NEAR(m.value().PredictVariance({x(i, 0)}), 0.0, 1e-4);
  }
}

TEST(KrigingTest, PredictsSmoothFunctionBetweenPoints) {
  linalg::Matrix x = Grid1D(15, 0.0, 6.28);
  linalg::Vector y(15);
  for (size_t i = 0; i < 15; ++i) y[i] = std::sin(x(i, 0));
  KrigingModel::Options opt;
  opt.theta = {2.0};
  auto m = KrigingModel::Fit(x, y, opt);
  ASSERT_TRUE(m.ok());
  double max_err = 0.0;
  for (double t = 0.2; t < 6.1; t += 0.05) {
    max_err = std::max(max_err,
                       std::fabs(m.value().Predict({t}) - std::sin(t)));
  }
  EXPECT_LT(max_err, 0.05);
}

TEST(KrigingTest, VarianceGrowsAwayFromDesign) {
  linalg::Matrix x = Grid1D(5, 0.0, 4.0);
  linalg::Vector y = {0, 1, 0, -1, 0};
  KrigingModel::Options opt;
  opt.theta = {1.0};
  auto m = KrigingModel::Fit(x, y, opt);
  ASSERT_TRUE(m.ok());
  EXPECT_GT(m.value().PredictVariance({10.0}),
            m.value().PredictVariance({2.1}));
}

TEST(KrigingTest, HyperparameterFitImprovesLikelihood) {
  Rng rng(5);
  // Data from a fast-varying function: theta = 1 underfits unless tuned.
  linalg::Matrix x = Grid1D(20, 0.0, 2.0);
  linalg::Vector y(20);
  for (size_t i = 0; i < 20; ++i) y[i] = std::sin(8.0 * x(i, 0));
  auto ll_before = KrigingLogLikelihood(x, y, {0.01}, 1e-8);
  ASSERT_TRUE(ll_before.ok());
  KrigingModel::Options opt;
  opt.theta = {0.01};
  opt.fit_hyperparameters = true;
  auto m = KrigingModel::Fit(x, y, opt);
  ASSERT_TRUE(m.ok());
  auto ll_after = KrigingLogLikelihood(x, y, m.value().theta(), 1e-8);
  ASSERT_TRUE(ll_after.ok());
  EXPECT_GT(ll_after.value(), ll_before.value());
  EXPECT_GT(m.value().theta()[0], 0.5);  // learned a shorter length scale
}

TEST(StochasticKrigingTest, SmoothsNoisyObservationsInsteadOfInterpolating) {
  Rng rng(7);
  // True surface y = x^2 observed with heavy noise, 10 reps per point.
  linalg::Matrix x = Grid1D(9, -2.0, 2.0);
  linalg::Vector ybar(9);
  std::vector<double> point_var(9);
  const double noise_sd = 0.5;
  const size_t reps = 10;
  for (size_t i = 0; i < 9; ++i) {
    double sum = 0.0;
    std::vector<double> obs;
    for (size_t r = 0; r < reps; ++r) {
      obs.push_back(x(i, 0) * x(i, 0) +
                    SampleNormal(rng, 0.0, noise_sd));
      sum += obs.back();
    }
    ybar[i] = sum / reps;
    point_var[i] = noise_sd * noise_sd / reps;  // Var of the average
  }
  KrigingModel::Options opt;
  opt.theta = {0.5};
  opt.tau2 = 2.0;
  auto det = KrigingModel::Fit(x, ybar, opt);
  auto stoch = KrigingModel::FitStochastic(x, ybar, point_var, opt);
  ASSERT_TRUE(det.ok() && stoch.ok());
  // Deterministic kriging interpolates the noisy ybar exactly; stochastic
  // kriging shrinks toward the trend, giving smaller true-surface error.
  double det_err = 0.0, stoch_err = 0.0;
  for (double t = -1.9; t <= 1.9; t += 0.1) {
    det_err += std::fabs(det.value().Predict({t}) - t * t);
    stoch_err += std::fabs(stoch.value().Predict({t}) - t * t);
  }
  EXPECT_LT(stoch_err, det_err * 1.05);
}

TEST(KrigingTest, MultiDimensional) {
  // y = x1^2 + x2 on a 5x5 grid.
  std::vector<linalg::Vector> rows;
  linalg::Vector y;
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 5; ++j) {
      const double a = -1.0 + 0.5 * i;
      const double b = -1.0 + 0.5 * j;
      rows.push_back({a, b});
      y.push_back(a * a + b);
    }
  }
  linalg::Matrix x = linalg::Matrix::FromRows(rows);
  KrigingModel::Options opt;
  opt.theta = {1.0, 1.0};
  auto m = KrigingModel::Fit(x, y, opt);
  ASSERT_TRUE(m.ok());
  EXPECT_NEAR(m.value().Predict({0.25, -0.25}), 0.0625 - 0.25, 0.02);
}

TEST(KrigingTest, RejectsBadInput) {
  linalg::Matrix x = Grid1D(3, 0, 2);
  EXPECT_FALSE(KrigingModel::Fit(x, {1.0, 2.0}, {}).ok());
  EXPECT_FALSE(
      KrigingModel::FitStochastic(x, {1, 2, 3}, {0.1, 0.1}, {}).ok());
}

}  // namespace
}  // namespace mde::metamodel
