#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "mcdb/bundle.h"
#include "obs/export.h"
#include "obs/mem.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/stat.h"
#include "smc/particle_filter.h"
#include "util/distributions.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace mde {
namespace {

using obs::Registry;

// ---------------------------------------------------------------------------
// Statistical monitors vs brute force.
// ---------------------------------------------------------------------------

TEST(ObsStatTest, WelfordMatchesBruteForce) {
  Rng rng(7);
  std::vector<double> xs;
  obs::Welford w;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble() * 100.0 - 20.0;
    xs.push_back(x);
    w.Add(x);
  }
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double m2 = 0.0;
  for (double x : xs) m2 += (x - mean) * (x - mean);
  const double var = m2 / static_cast<double>(xs.size() - 1);
  EXPECT_EQ(w.count(), xs.size());
  EXPECT_NEAR(w.mean(), mean, 1e-9);
  EXPECT_NEAR(w.variance(), var, 1e-9);
  EXPECT_NEAR(w.std_error(), std::sqrt(var / 1000.0), 1e-12);
}

TEST(ObsStatTest, WelfordMergeEqualsSinglePass) {
  Rng rng(11);
  obs::Welford all, a, b;
  for (int i = 0; i < 500; ++i) {
    const double x = SampleStandardNormal(rng);
    all.Add(x);
    (i % 3 == 0 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(ObsStatTest, P2QuantileTracksExactQuantile) {
  for (const double p : {0.5, 0.9, 0.95}) {
    Rng rng(13);
    obs::P2Quantile sketch(p);
    std::vector<double> xs;
    for (int i = 0; i < 20000; ++i) {
      const double x = SampleNormal(rng, 1.0, 3.0);
      xs.push_back(x);
      sketch.Add(x);
    }
    std::sort(xs.begin(), xs.end());
    const double exact =
        xs[static_cast<size_t>(p * static_cast<double>(xs.size() - 1))];
    // P² is an estimate; for 20k gaussian draws it lands well inside a
    // tenth of a standard deviation of the exact order statistic.
    EXPECT_NEAR(sketch.Value(), exact, 0.3) << "p=" << p;
    EXPECT_EQ(sketch.count(), 20000u);
  }
}

TEST(ObsStatTest, P2QuantileExactForSmallSamples) {
  obs::P2Quantile med(0.5);
  EXPECT_DOUBLE_EQ(med.Value(), 0.0);  // empty
  med.Add(3.0);
  EXPECT_DOUBLE_EQ(med.Value(), 3.0);
  med.Add(1.0);
  med.Add(2.0);
  EXPECT_DOUBLE_EQ(med.Value(), 2.0);  // exact median of {1,2,3}
}

TEST(ObsStatTest, P2QuantileTinyNExactFallback) {
  // The sketch needs 5 markers before the parabolic update is defined; for
  // n in {0,1,2,5} the value must be the EXACT interpolated quantile of
  // what was seen, for every p, in any insertion order.
  for (const double p : {0.05, 0.5, 0.95}) {
    obs::P2Quantile q(p);
    EXPECT_DOUBLE_EQ(q.Value(), 0.0) << "n=0 p=" << p;  // documented empty
    q.Add(7.0);
    EXPECT_DOUBLE_EQ(q.Value(), 7.0) << "n=1 p=" << p;
    q.Add(3.0);  // unsorted insertion
    // Exact two-point interpolation between sorted {3, 7}.
    EXPECT_DOUBLE_EQ(q.Value(), 3.0 + p * 4.0) << "n=2 p=" << p;
    q.Add(9.0);
    q.Add(1.0);
    q.Add(5.0);
    // n=5: markers are the sorted sample {1,3,5,7,9}; the estimate must
    // equal the exact rank-interpolated quantile.
    const double rank = p * 4.0;
    const auto lo = static_cast<size_t>(rank);
    const double sorted[5] = {1.0, 3.0, 5.0, 7.0, 9.0};
    const double exact =
        sorted[lo] +
        (rank - static_cast<double>(lo)) *
            (sorted[std::min<size_t>(lo + 1, 4)] - sorted[lo]);
    EXPECT_DOUBLE_EQ(q.Value(), exact) << "n=5 p=" << p;
  }
}

TEST(ObsStatTest, CiMonitorTinyNHasNoSpuriousPrecision) {
  obs::CiMonitor ci;
  // n = 0 and n = 1: no CLT bound exists. A zero half-width here would let
  // a one-draw cache entry satisfy ANY precision target.
  EXPECT_TRUE(std::isinf(ci.half_width()));
  ci.Add(42.0);
  EXPECT_EQ(ci.count(), 1u);
  EXPECT_TRUE(std::isinf(ci.half_width()));
  EXPECT_DOUBLE_EQ(ci.mean(), 42.0);
  // n = 2: first finite bound, and it matches the closed form.
  ci.Add(44.0);
  const double sd2 = std::sqrt(2.0);  // stddev of {42, 44}
  EXPECT_NEAR(ci.half_width(), 1.959964 * sd2 / std::sqrt(2.0), 1e-12);
  // n = 5 stays finite and shrinks vs n = 2 for same-scale data.
  ci.Add(43.0);
  ci.Add(42.5);
  ci.Add(43.5);
  EXPECT_EQ(ci.count(), 5u);
  EXPECT_TRUE(std::isfinite(ci.half_width()));
  EXPECT_LT(ci.half_width(), 1.959964 * sd2 / std::sqrt(2.0));
}

TEST(ObsStatTest, CiMonitorHalfWidthMatchesBruteForce) {
  obs::CiMonitor ci;  // no gauge publication
  std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (double x : xs) ci.Add(x);
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double m2 = 0.0;
  for (double x : xs) m2 += (x - mean) * (x - mean);
  const double se =
      std::sqrt(m2 / static_cast<double>(xs.size() - 1)) /
      std::sqrt(static_cast<double>(xs.size()));
  EXPECT_NEAR(ci.half_width(), 1.959964 * se, 1e-12);
  EXPECT_DOUBLE_EQ(ci.mean(), mean);
}

TEST(ObsStatTest, ConvergenceMonitorVerdicts) {
  using Verdict = obs::ConvergenceMonitor::Verdict;
  obs::ConvergenceMonitor m("", /*window=*/3, /*rel_tol=*/1e-3,
                            /*diverge_factor=*/10.0);
  EXPECT_EQ(m.Add(100.0), Verdict::kImproving);
  EXPECT_EQ(m.Add(50.0), Verdict::kImproving);
  // Three consecutive non-improving epochs -> stalled.
  EXPECT_EQ(m.Add(50.0), Verdict::kImproving);
  EXPECT_EQ(m.Add(50.0), Verdict::kImproving);
  EXPECT_EQ(m.Add(50.0), Verdict::kStalled);
  // Improvement clears the stall.
  EXPECT_EQ(m.Add(10.0), Verdict::kImproving);
  // Blow-up past diverge_factor * best is sticky.
  EXPECT_EQ(m.Add(500.0), Verdict::kDiverged);
  EXPECT_EQ(m.Add(1.0), Verdict::kDiverged);
  EXPECT_STREQ(obs::ConvergenceMonitor::VerdictName(Verdict::kDiverged),
               "diverged");

  obs::ConvergenceMonitor nonfinite("");
  EXPECT_EQ(nonfinite.Add(std::nan("")), Verdict::kDiverged);
}

// ---------------------------------------------------------------------------
// Prometheus exposition.
// ---------------------------------------------------------------------------

TEST(ObsExportTest, SanitizeMetricName) {
  EXPECT_EQ(obs::SanitizeMetricName("pool.steals"), "pool_steals");
  EXPECT_EQ(obs::SanitizeMetricName("a-b c:d"), "a_b_c:d");
  EXPECT_EQ(obs::SanitizeMetricName("9lives"), "_9lives");
  EXPECT_EQ(obs::SanitizeMetricName("ok_name"), "ok_name");
}

TEST(ObsExportTest, PrometheusTextGolden) {
  std::vector<obs::MetricSnapshot> snapshot;
  obs::MetricSnapshot c;
  c.name = "vec.chunks";
  c.kind = obs::MetricSnapshot::Kind::kCounter;
  c.value = 42.0;
  snapshot.push_back(c);
  obs::MetricSnapshot g;
  g.name = "smc.ess";
  g.kind = obs::MetricSnapshot::Kind::kGauge;
  g.value = 123.5;
  snapshot.push_back(g);
  obs::MetricSnapshot h;
  h.name = "lat.ms";
  h.kind = obs::MetricSnapshot::Kind::kHistogram;
  h.bounds = {1.0, 10.0};
  h.buckets = {3, 2, 1};  // per-bucket counts, +inf last
  h.count = 6;
  h.value = 25.5;  // sum
  snapshot.push_back(h);

  const std::string expected =
      "# TYPE vec_chunks counter\n"
      "vec_chunks 42\n"
      "# TYPE smc_ess gauge\n"
      "smc_ess 123.5\n"
      "# TYPE lat_ms histogram\n"
      "lat_ms_bucket{le=\"1\"} 3\n"
      "lat_ms_bucket{le=\"10\"} 5\n"
      "lat_ms_bucket{le=\"+Inf\"} 6\n"
      "lat_ms_sum 25.5\n"
      "lat_ms_count 6\n";
  EXPECT_EQ(obs::PrometheusText(snapshot), expected);
}

TEST(ObsExportTest, AppendDerivedGaugesPairsMemCounters) {
  std::vector<obs::MetricSnapshot> snapshot;
  obs::MetricSnapshot a;
  a.name = "obs.mem.poolx.alloc_bytes";
  a.kind = obs::MetricSnapshot::Kind::kCounter;
  a.value = 1000.0;
  snapshot.push_back(a);
  obs::MetricSnapshot f;
  f.name = "obs.mem.poolx.freed_bytes";
  f.kind = obs::MetricSnapshot::Kind::kCounter;
  f.value = 400.0;
  snapshot.push_back(f);
  obs::AppendDerivedGauges(&snapshot);
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[2].name, "obs.mem.poolx.live_bytes");
  EXPECT_EQ(snapshot[2].kind, obs::MetricSnapshot::Kind::kGauge);
  EXPECT_DOUBLE_EQ(snapshot[2].value, 600.0);
}

#ifndef MDE_OBS_DISABLED

TEST(ObsExportTest, GlobalPrometheusHasCumulativeBuckets) {
  obs::Histogram* h = Registry::Global().histogram(
      "test.prom_hist", {1.0, 10.0, 100.0});
  h->Observe(0.5);
  h->Observe(5.0);
  h->Observe(50.0);
  h->Observe(500.0);
  const std::string text = obs::PrometheusText();
  // Extract this histogram's bucket lines; the running totals must be
  // non-decreasing and the +Inf bucket must equal _count.
  std::regex bucket_re("test_prom_hist_bucket\\{le=\"([^\"]+)\"\\} (\\d+)");
  std::regex count_re("test_prom_hist_count (\\d+)");
  auto begin =
      std::sregex_iterator(text.begin(), text.end(), bucket_re);
  uint64_t prev = 0;
  uint64_t last = 0;
  size_t n_buckets = 0;
  std::string last_le;
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    const uint64_t v = std::stoull((*it)[2].str());
    EXPECT_GE(v, prev);
    prev = v;
    last = v;
    last_le = (*it)[1].str();
    ++n_buckets;
  }
  EXPECT_EQ(n_buckets, 4u);
  EXPECT_EQ(last_le, "+Inf");
  std::smatch cm;
  ASSERT_TRUE(std::regex_search(text, cm, count_re));
  EXPECT_EQ(std::stoull(cm[1].str()), last);
}

TEST(ObsMetricsTest, HistogramBoundsConflictCounted) {
  obs::Counter* conflicts =
      Registry::Global().counter("obs.histogram.bounds_conflict");
  Registry::Global().histogram("test.conflict_hist", {1.0, 2.0});
  const uint64_t before = conflicts->Value();
  // Same bounds: no conflict.
  obs::Histogram* again =
      Registry::Global().histogram("test.conflict_hist", {1.0, 2.0});
  EXPECT_EQ(conflicts->Value(), before);
  // Different bounds: first registration wins, conflict counted.
  obs::Histogram* other =
      Registry::Global().histogram("test.conflict_hist", {5.0});
  EXPECT_EQ(conflicts->Value(), before + 1);
  EXPECT_EQ(again, other);
  EXPECT_EQ(other->bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(ObsMetricsTest, TextDumpGaugesRoundTrip) {
  const double v = 0.1 + 1.0 / 3.0;  // not representable in 6 digits
  Registry::Global().gauge("test.roundtrip_gauge")->Set(v);
  const std::string dump = Registry::Global().TextDump();
  std::regex line_re("test\\.roundtrip_gauge ([^\\n]+)");
  std::smatch m;
  ASSERT_TRUE(std::regex_search(dump, m, line_re));
  EXPECT_EQ(std::strtod(m[1].str().c_str(), nullptr), v);
}

// ---------------------------------------------------------------------------
// Memory accounting.
// ---------------------------------------------------------------------------

TEST(ObsMemTest, LiveBytesTracksAllocAndFree) {
  const uint64_t before = obs::LiveBytes("test.mempool");
  obs::RecordAlloc("test.mempool", 1000);
  EXPECT_EQ(obs::LiveBytes("test.mempool"), before + 1000);
  obs::RecordFree("test.mempool", 400);
  EXPECT_EQ(obs::LiveBytes("test.mempool"), before + 600);
  obs::RecordFree("test.mempool", 600);
  EXPECT_EQ(obs::LiveBytes("test.mempool"), before);
}

TEST(ObsMemTest, MemAccountRaii) {
  const uint64_t before = obs::LiveBytes("test.raii_pool");
  {
    obs::MemAccount acc("test.raii_pool");
    acc.Set(500);
    EXPECT_EQ(obs::LiveBytes("test.raii_pool"), before + 500);
    acc.Set(200);  // shrink reports the delta as freed
    EXPECT_EQ(obs::LiveBytes("test.raii_pool"), before + 200);
    obs::MemAccount copy = acc;  // copy re-reports its footprint
    EXPECT_EQ(obs::LiveBytes("test.raii_pool"), before + 400);
    obs::MemAccount moved = std::move(copy);  // move transfers, no change
    EXPECT_EQ(obs::LiveBytes("test.raii_pool"), before + 400);
  }
  EXPECT_EQ(obs::LiveBytes("test.raii_pool"), before);
}

TEST(ObsMemTest, ProcessMemorySampleOnLinux) {
  const obs::ProcessMemory mem = obs::SampleProcessMemory();
  if (mem.ok) {
    EXPECT_GT(mem.rss_kb, 0);
    EXPECT_GE(mem.peak_rss_kb, mem.rss_kb);
  }
}

// ---------------------------------------------------------------------------
// Sampler.
// ---------------------------------------------------------------------------

TEST(ObsSamplerTest, MonotoneDeltasUnderConcurrentWriters) {
  const std::string path =
      testing::TempDir() + "/obs_export_sampler_test.jsonl";
  obs::Counter* c = Registry::Global().counter("test.sampler_mono");
  const uint64_t start = c->Value();
  {
    obs::SamplerOptions options;
    options.path = path;
    options.period = std::chrono::milliseconds(5);
    obs::Sampler sampler(options);
    ASSERT_TRUE(sampler.ok());
    std::vector<std::thread> writers;
    for (int t = 0; t < 4; ++t) {
      writers.emplace_back([c] {
        for (int i = 0; i < 50000; ++i) c->Add(1);
      });
    }
    for (auto& t : writers) t.join();
    sampler.Stop();
    EXPECT_GE(sampler.samples_written(), 1u);
  }
  const uint64_t total = c->Value() - start;
  EXPECT_EQ(total, 200000u);

  // Re-read the file: totals must be non-decreasing, deltas must sum to
  // the final total, and every line must parse (the report renders it).
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string jsonl = buffer.str();
  std::regex re(
      "\"test\\.sampler_mono\":\\{\"v\":(\\d+),\"d\":(\\d+)\\}");
  uint64_t prev_v = 0;
  uint64_t sum_d = 0;
  uint64_t last_v = 0;
  size_t lines_with_counter = 0;
  for (auto it = std::sregex_iterator(jsonl.begin(), jsonl.end(), re);
       it != std::sregex_iterator(); ++it) {
    const uint64_t v = std::stoull((*it)[1].str());
    EXPECT_GE(v, prev_v);
    prev_v = v;
    sum_d += std::stoull((*it)[2].str());
    last_v = v;
    ++lines_with_counter;
  }
  ASSERT_GE(lines_with_counter, 1u);
  EXPECT_EQ(sum_d, last_v);
  EXPECT_GE(last_v, start + total);

  std::string report, error;
  ASSERT_TRUE(obs::RenderRunReport("", jsonl, {}, &report, &error)) << error;
  EXPECT_NE(report.find("test.sampler_mono"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Engine wiring: smc.ess gauge.
// ---------------------------------------------------------------------------

/// Bootstrap 1-D random walk observed in gaussian noise.
class WalkModel : public smc::StateSpaceModel {
 public:
  smc::State SampleInitial(const smc::Observation&, Rng& rng) const override {
    return {SampleStandardNormal(rng)};
  }
  smc::State SampleProposal(const smc::Observation&, const smc::State& x,
                            Rng& rng) const override {
    return {SampleNormal(rng, x[0], 0.5)};
  }
  double LogObservation(const smc::Observation& y,
                        const smc::State& x) const override {
    const double d = y[0] - x[0];
    return -0.5 * d * d;
  }
};

TEST(ObsWiringTest, SmcEssGaugeMatchesLastStepStats) {
  WalkModel model;
  smc::ParticleFilterOptions options;
  options.num_particles = 200;
  options.ess_threshold = 0.5;
  options.seed = 99;
  smc::ParticleFilter pf(model, options);
  ASSERT_TRUE(pf.Initialize({0.1}).ok());
  for (double y : {0.2, -0.1, 0.4, 1.0}) {
    ASSERT_TRUE(pf.Step({y}).ok());
  }
  ASSERT_FALSE(pf.step_stats().empty());
  const double gauge = Registry::Global().gauge("smc.ess")->Value();
  EXPECT_DOUBLE_EQ(gauge, pf.step_stats().back().ess);
}

#endif  // MDE_OBS_DISABLED

// ---------------------------------------------------------------------------
// Histogram quantiles + run report.
// ---------------------------------------------------------------------------

TEST(ObsReportTest, HistogramQuantileInterpolates) {
  const std::vector<double> bounds = {10.0, 20.0, 30.0};
  // 10 observations uniform in the second bucket (10, 20].
  const std::vector<uint64_t> buckets = {0, 10, 0, 0};
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(bounds, buckets, 0.5), 15.0);
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(bounds, buckets, 1.0), 20.0);
  // Mass split across buckets: p50 exactly at the first bound.
  EXPECT_DOUBLE_EQ(
      obs::HistogramQuantile(bounds, {5, 5, 0, 0}, 0.5), 10.0);
  // +inf bucket has no upper edge: reports the last finite bound.
  EXPECT_DOUBLE_EQ(
      obs::HistogramQuantile(bounds, {0, 0, 0, 4}, 0.99), 30.0);
  // Empty histogram.
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(bounds, {0, 0, 0, 0}, 0.5), 0.0);
}

TEST(ObsReportTest, HistogramQuantileFlagsOverflowBucket) {
  // Regression: a quantile landing in the +inf bucket used to be reported
  // as a plain value at the last finite bound, silently understating the
  // tail. The Ex variant must flag it so callers can render ">= bound".
  const std::vector<double> bounds = {10.0, 20.0, 30.0};
  const auto all_over = obs::HistogramQuantileEx(bounds, {0, 0, 0, 4}, 0.99);
  EXPECT_TRUE(all_over.overflow);
  EXPECT_DOUBLE_EQ(all_over.value, 30.0);

  // Mass split between the first bucket and the overflow bucket: p25 is a
  // real interpolated value, p99 is censored.
  const auto low = obs::HistogramQuantileEx(bounds, {5, 0, 0, 5}, 0.25);
  EXPECT_FALSE(low.overflow);
  EXPECT_DOUBLE_EQ(low.value, 5.0);
  const auto high = obs::HistogramQuantileEx(bounds, {5, 0, 0, 5}, 0.99);
  EXPECT_TRUE(high.overflow);
  EXPECT_DOUBLE_EQ(high.value, 30.0);

  // Empty histograms are not "overflowed".
  EXPECT_FALSE(obs::HistogramQuantileEx(bounds, {0, 0, 0, 0}, 0.5).overflow);
}

TEST(ObsReportTest, ReportRendersOverflowQuantilesAsLowerBound) {
  // One observation in (10, 20] and three past the last bound: p50/p99 sit
  // in the overflow bucket and must render as ">= 20", not as "20".
  const std::string jsonl =
      R"({"t_ms":1.0,"hist":{"lat":{"count":4,"sum":400,)"
      R"("bounds":[10,20],"buckets":[0,1,3]}}})"
      "\n";
  std::string report;
  std::string error;
  ASSERT_TRUE(obs::RenderRunReport("", jsonl, {}, &report, &error)) << error;
  EXPECT_NE(report.find(">= 20"), std::string::npos) << report;
}

TEST(ObsReportTest, RendersSectionsFromInlineArtifacts) {
  const std::string trace = R"({"traceEvents":[
    {"name":"plan.execute","cat":"mde","ph":"X","ts":0,"dur":100,"pid":1,"tid":1},
    {"name":"vec.filter","cat":"mde","ph":"X","ts":10,"dur":40,"pid":1,"tid":1},
    {"name":"vec.filter","cat":"mde","ph":"X","ts":60,"dur":20,"pid":1,"tid":1}
  ]})";
  const std::string jsonl =
      "{\"t_ms\":1.0,\"counters\":{\"steps\":{\"v\":10,\"d\":10}},"
      "\"gauges\":{\"obs.health.dsgd\":0,\"smc.ess\":150.0,"
      "\"obs.mem.p.live_bytes\":64},\"hist\":{\"lat\":{\"count\":10,"
      "\"sum\":150,\"bounds\":[10,20],\"buckets\":[0,10,0]}},"
      "\"mem\":{\"rss_kb\":1024,\"peak_rss_kb\":2048}}\n"
      "{\"t_ms\":101.0,\"counters\":{\"steps\":{\"v\":110,\"d\":100}},"
      "\"gauges\":{\"obs.health.dsgd\":1,\"smc.ess\":120.0,"
      "\"obs.mem.p.live_bytes\":128},\"hist\":{\"lat\":{\"count\":20,"
      "\"sum\":300,\"bounds\":[10,20],\"buckets\":[0,20,0]}},"
      "\"mem\":{\"rss_kb\":2048,\"peak_rss_kb\":2048}}\n";
  std::string report, error;
  ASSERT_TRUE(obs::RenderRunReport(trace, jsonl, {}, &report, &error))
      << error;
  // Spans: vec.filter self 60us, plan.execute self 40us.
  EXPECT_NE(report.find("Top self-time spans"), std::string::npos);
  EXPECT_LT(report.find("vec.filter"), report.find("plan.execute"));
  // Counter totals and a 1000/s rate over the 100ms window.
  EXPECT_NE(report.find("| steps | 110 | 1000.0 |"), std::string::npos);
  // Histogram quantiles from the final line's buckets.
  EXPECT_NE(report.find("Histogram quantiles"), std::string::npos);
  EXPECT_NE(report.find("| lat | 20 | 15 | 15 | 19 | 19.9 |"),
            std::string::npos);
  // Health verdict mapped to its name; stalled = 1.
  EXPECT_NE(report.find("| dsgd | stalled |"), std::string::npos);
  EXPECT_NE(report.find("| smc.ess | 120 |"), std::string::npos);
  // Memory section shows the live pool and process RSS.
  EXPECT_NE(report.find("obs.mem.p.live_bytes"), std::string::npos);
  EXPECT_NE(report.find("| process RSS (kB) | 2048 |"), std::string::npos);

  // Plain-text mode renders without Markdown pipes in headings.
  obs::RunReportOptions text_options;
  text_options.markdown = false;
  ASSERT_TRUE(
      obs::RenderRunReport(trace, jsonl, text_options, &report, &error));
  EXPECT_NE(report.find("=== mde run report ==="), std::string::npos);
}

TEST(ObsReportTest, EmptyInputsRenderEmptyReport) {
  std::string report, error;
  ASSERT_TRUE(obs::RenderRunReport("", "", {}, &report, &error));
  EXPECT_NE(report.find("run report"), std::string::npos);
}

TEST(ObsReportTest, MalformedInputsFail) {
  std::string report, error;
  EXPECT_FALSE(obs::RenderRunReport("{not json", "", {}, &report, &error));
  EXPECT_FALSE(error.empty());
  error.clear();
  EXPECT_FALSE(
      obs::RenderRunReport("", "{\"t_ms\":oops}\n", {}, &report, &error));
  EXPECT_NE(error.find("line 1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Determinism: engine results are bit-identical across thread counts while
// a fast Sampler snapshots the registry concurrently.
// ---------------------------------------------------------------------------

TEST(ObsDeterminismTest, BundleAggregatesIdenticalUnderSampler) {
  const std::string path =
      testing::TempDir() + "/obs_export_determinism.jsonl";
  obs::SamplerOptions options;
  options.path = path;
  options.period = std::chrono::milliseconds(10);
  obs::Sampler sampler(options);

  auto run = [](ThreadPool* pool) {
    table::Schema schema({{"id", table::DataType::kInt64}});
    mcdb::BundleTable t(schema, {"x"}, /*num_reps=*/64);
    t.set_pool(pool);
    Rng rng(42);
    for (int64_t i = 0; i < 2000; ++i) {
      mcdb::BundleTable::BundleRow row;
      row.det = {table::Value(i)};
      row.stoch.resize(1);
      for (int r = 0; r < 64; ++r) {
        row.stoch[0].push_back(SampleNormal(rng, 0.0, 10.0));
      }
      t.Append(std::move(row));
    }
    auto filtered = t.FilterStoch("x", table::CmpOp::kGt, -5.0);
    EXPECT_TRUE(filtered.ok());
    auto sums = filtered.value().AggregateSum("x");
    EXPECT_TRUE(sums.ok());
    return sums.value();
  };

  const std::vector<double> serial = run(nullptr);
  ThreadPool pool2(2);
  ThreadPool pool8(8);
  const std::vector<double> with2 = run(&pool2);
  const std::vector<double> with8 = run(&pool8);
  ASSERT_EQ(serial.size(), with2.size());
  ASSERT_EQ(serial.size(), with8.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    // Bit-identical, not approximately equal.
    EXPECT_EQ(serial[i], with2[i]) << "rep " << i;
    EXPECT_EQ(serial[i], with8[i]) << "rep " << i;
  }
  sampler.Stop();
  EXPECT_GE(sampler.samples_written(), 1u);
}

}  // namespace
}  // namespace mde
