#include <cmath>

#include <gtest/gtest.h>

#include "dsgd/matrix_completion.h"
#include "util/thread_pool.h"

namespace mde::dsgd {
namespace {

TEST(FactorModelTest, PredictionIsDotProduct) {
  FactorModel m(3, 4, 2, 1);
  double* w = m.RowFactor(1);
  double* h = m.ColFactor(2);
  w[0] = 1.0;
  w[1] = 2.0;
  h[0] = 3.0;
  h[1] = -1.0;
  EXPECT_DOUBLE_EQ(m.Predict(1, 2), 1.0);
}

TEST(SyntheticRatingsTest, SplitAndDensity) {
  RatingsDataset ds = SyntheticRatings(100, 80, 3, 0.2, 0.1, 5);
  const size_t total = ds.train.size() + ds.test.size();
  EXPECT_NEAR(static_cast<double>(total), 0.2 * 100 * 80, 200.0);
  EXPECT_GT(ds.train.size(), ds.test.size() * 3);  // ~85/15 split
  for (const RatingEntry& e : ds.train) {
    EXPECT_LT(e.row, 100u);
    EXPECT_LT(e.col, 80u);
  }
}

TEST(CompleteSgdTest, LearnsLowRankStructure) {
  RatingsDataset ds = SyntheticRatings(120, 90, 3, 0.25, 0.05, 7);
  CompletionOptions opt;
  opt.rank = 3;
  opt.epochs = 40;
  auto result = CompleteSgd(ds.train, ds.rows, ds.cols, opt);
  ASSERT_TRUE(result.ok());
  // Training RMSE decreases and ends near the noise floor.
  const auto& curve = result.value().rmse_per_epoch;
  EXPECT_LT(curve.back(), curve.front() * 0.3);
  EXPECT_LT(curve.back(), 0.3);
  // Generalization: test RMSE far below the raw value scale (sd ~ rank).
  EXPECT_LT(result.value().model.Rmse(ds.test), 0.6);
}

TEST(CompleteSgdTest, RejectsBadInput) {
  CompletionOptions opt;
  EXPECT_FALSE(CompleteSgd({}, 10, 10, opt).ok());
  EXPECT_FALSE(CompleteSgd({{11, 0, 1.0}}, 10, 10, opt).ok());
}

TEST(CompleteDsgdTest, MatchesSequentialQuality) {
  RatingsDataset ds = SyntheticRatings(150, 110, 3, 0.2, 0.05, 9);
  CompletionOptions opt;
  opt.rank = 3;
  opt.epochs = 40;
  opt.blocks = 4;
  ThreadPool pool(4);
  auto seq = CompleteSgd(ds.train, ds.rows, ds.cols, opt);
  auto par = CompleteDsgd(ds.train, ds.rows, ds.cols, pool, opt);
  ASSERT_TRUE(seq.ok() && par.ok());
  const double seq_rmse = seq.value().model.Rmse(ds.test);
  const double par_rmse = par.value().model.Rmse(ds.test);
  // The Gemulla et al. result: stratified DSGD matches sequential SGD.
  EXPECT_LT(par_rmse, seq_rmse * 1.3);
  EXPECT_LT(par_rmse, 0.6);
}

TEST(CompleteDsgdTest, RmseDecreasesMonotonicallyEnough) {
  RatingsDataset ds = SyntheticRatings(80, 80, 2, 0.3, 0.05, 11);
  CompletionOptions opt;
  opt.rank = 2;
  opt.epochs = 25;
  ThreadPool pool(2);
  auto result = CompleteDsgd(ds.train, ds.rows, ds.cols, pool, opt);
  ASSERT_TRUE(result.ok());
  const auto& curve = result.value().rmse_per_epoch;
  // Allow transient bumps but require overall descent.
  EXPECT_LT(curve.back(), curve.front() * 0.5);
}

TEST(CompleteDsgdTest, SingleBlockDegeneratesToSequentialStructure) {
  RatingsDataset ds = SyntheticRatings(50, 50, 2, 0.3, 0.05, 13);
  CompletionOptions opt;
  opt.rank = 2;
  opt.epochs = 15;
  opt.blocks = 1;
  ThreadPool pool(2);
  auto result = CompleteDsgd(ds.train, ds.rows, ds.cols, pool, opt);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result.value().rmse_per_epoch.back(), 0.6);
}

// Property: more observed data -> better test RMSE (at fixed effort).
class DensitySweepTest : public ::testing::TestWithParam<double> {};

TEST_P(DensitySweepTest, TestRmseReasonable) {
  RatingsDataset ds = SyntheticRatings(100, 100, 2, GetParam(), 0.05, 17);
  CompletionOptions opt;
  opt.rank = 2;
  opt.epochs = 30;
  ThreadPool pool(2);
  auto result = CompleteDsgd(ds.train, ds.rows, ds.cols, pool, opt);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result.value().model.Rmse(ds.test), 1.0)
      << "density " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Densities, DensitySweepTest,
                         ::testing::Values(0.15, 0.3, 0.5));

}  // namespace
}  // namespace mde::dsgd
