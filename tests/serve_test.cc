#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/context.h"
#include "obs/http.h"
#include "obs/stat.h"
#include "serve/cache.h"
#include "serve/mvcc.h"
#include "serve/server.h"
#include "simsql/simsql.h"
#include "table/table.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace mde {
namespace {

using serve::Answer;
using serve::CacheKey;
using serve::McQuerySpec;
using serve::Request;
using serve::ResultCache;
using serve::Server;
using serve::SessionWorkload;
using serve::SnapshotRef;
using serve::VersionChain;
using simsql::DatabaseState;
using table::DataType;
using table::Schema;
using table::Table;
using table::Value;

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Content fingerprint of a whole database state: bit-exact over every
/// numeric cell, so two reads agree iff they saw identical bits.
uint64_t StateChecksum(const DatabaseState& state) {
  uint64_t h = obs::FingerprintString("state");
  for (const auto& [name, t] : state) {
    h = obs::FingerprintMix(h, obs::FingerprintString(name));
    for (size_t r = 0; r < t.num_rows(); ++r) {
      for (const Value& v : t.row(r)) {
        const double d = v.AsDouble();
        uint64_t bits = 0;
        std::memcpy(&bits, &d, sizeof(bits));
        h = obs::FingerprintMix(h, bits);
      }
    }
  }
  return h;
}

DatabaseState MarkerState(uint64_t version) {
  Table t{Schema({{"V", DataType::kDouble}})};
  t.Append({Value(static_cast<double>(version) * 3.25 + 1.0)});
  DatabaseState state;
  state.emplace("MARK", std::move(t));
  return state;
}

/// A small asset-price random walk: chain table PRICES evolves per
/// version, deterministic POSITIONS holds quantities.
simsql::MarkovChainDb MakePriceDb(size_t assets = 4) {
  simsql::MarkovChainDb db;
  Table pos{
      Schema({{"ASSET", DataType::kInt64}, {"QTY", DataType::kDouble}})};
  for (size_t i = 0; i < assets; ++i) {
    pos.Append({Value(static_cast<int64_t>(i)),
                Value(1.0 + static_cast<double>(i))});
  }
  EXPECT_TRUE(db.AddDeterministic("POSITIONS", std::move(pos)).ok());

  simsql::ChainTableSpec spec;
  spec.name = "PRICES";
  spec.init = [assets](const DatabaseState&, Rng& rng) -> Result<Table> {
    Table t{
        Schema({{"ASSET", DataType::kInt64}, {"PRICE", DataType::kDouble}})};
    for (size_t i = 0; i < assets; ++i) {
      t.Append({Value(static_cast<int64_t>(i)),
                Value(100.0 + 10.0 * static_cast<double>(i) +
                      rng.NextDouble())});
    }
    return t;
  };
  spec.transition = [assets](const DatabaseState& prev, const DatabaseState&,
                             Rng& rng) -> Result<Table> {
    const Table& p = prev.at("PRICES");
    Table t{
        Schema({{"ASSET", DataType::kInt64}, {"PRICE", DataType::kDouble}})};
    for (size_t i = 0; i < assets; ++i) {
      t.Append({p.row(i)[0],
                Value(p.row(i)[1].AsDouble() + (rng.NextDouble() - 0.5))});
    }
    return t;
  };
  EXPECT_TRUE(db.AddChainTable(std::move(spec)).ok());
  return db;
}

/// Monte Carlo portfolio value: simulate each price `horizon` steps forward
/// at volatility `vol`, sum price x quantity. One eval = one replication.
McQuerySpec PortfolioValueQuery() {
  McQuerySpec spec;
  spec.name = "pv";
  spec.eval = [](const DatabaseState& state,
                 const std::map<std::string, double>& params,
                 Rng& rng) -> Result<double> {
    const double vol =
        params.count("vol") != 0 ? params.at("vol") : 1.0;
    const int horizon =
        params.count("horizon") != 0
            ? static_cast<int>(params.at("horizon"))
            : 4;
    const Table& prices = state.at("PRICES");
    const Table& pos = state.at("POSITIONS");
    double total = 0.0;
    for (size_t i = 0; i < prices.num_rows(); ++i) {
      double p = prices.row(i)[1].AsDouble();
      for (int h = 0; h < horizon; ++h) {
        p += (rng.NextDouble() - 0.5) * vol;
      }
      total += p * pos.row(i)[1].AsDouble();
    }
    return total;
  };
  return spec;
}

// ---------------------------------------------------------------------------
// MVCC version chain.
// ---------------------------------------------------------------------------

TEST(MvccTest, InstallPinReleaseReclaim) {
  VersionChain chain(/*min_retain=*/1);
  EXPECT_EQ(chain.head_version(), VersionChain::kNone);
  EXPECT_FALSE(chain.PinHead().valid());
  EXPECT_FALSE(chain.Pin(0).valid());

  EXPECT_EQ(chain.Install(MarkerState(0)), 0u);
  EXPECT_EQ(chain.Install(MarkerState(1)), 1u);
  EXPECT_EQ(chain.head_version(), 1u);

  // v0 is retired and unpinned: the second install reclaimed it.
  EXPECT_EQ(chain.live_versions(), 1u);
  EXPECT_EQ(chain.reclaimed(), 1u);
  EXPECT_FALSE(chain.Pin(0).valid());

  // Pin the head; installs must not touch it while pinned.
  SnapshotRef pinned = chain.PinHead();
  ASSERT_TRUE(pinned.valid());
  EXPECT_EQ(pinned.version(), 1u);
  const uint64_t sum_before = StateChecksum(pinned.state());
  EXPECT_EQ(chain.Install(MarkerState(2)), 2u);
  EXPECT_EQ(chain.Install(MarkerState(3)), 3u);
  EXPECT_EQ(StateChecksum(pinned.state()), sum_before)
      << "pinned state changed under concurrent installs";
  // v1 pinned, v2 unpinned+retired (reclaimed), v3 head.
  EXPECT_EQ(chain.live_versions(), 2u);
  ASSERT_TRUE(chain.Pin(1).valid());

  // Second pin on the same version; releasing one keeps it resident.
  SnapshotRef second = chain.Pin(1);
  second.Release();
  EXPECT_FALSE(second.valid());
  EXPECT_EQ(chain.Install(MarkerState(4)), 4u);
  EXPECT_TRUE(chain.Pin(1).valid()) << "still pinned by the first ref";

  // Releasing the last pin frees v1 at the next install.
  pinned.Release();
  chain.Install(MarkerState(5));
  EXPECT_FALSE(chain.Pin(1).valid());
  EXPECT_EQ(chain.live_versions(), 1u);
}

TEST(MvccTest, MoveTransfersThePin) {
  VersionChain chain(1);
  chain.Install(MarkerState(0));
  SnapshotRef a = chain.PinHead();
  SnapshotRef b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): spec'd empty
  ASSERT_TRUE(b.valid());
  chain.Install(MarkerState(1));
  chain.Install(MarkerState(2));
  EXPECT_TRUE(chain.Pin(0).valid()) << "moved-to ref must keep the pin";
  b.Release();
  chain.Install(MarkerState(3));
  EXPECT_FALSE(chain.Pin(0).valid());
}

/// The concurrency satellite: writers advance versions while readers pin,
/// re-read, and hold snapshots across installs. Run under TSan in CI. Every
/// read of a pinned version must be bit-identical, and versions with live
/// pins must never be reclaimed out from under a reader.
TEST(MvccTest, ConcurrentSnapshotHammer) {
  constexpr int kInstalls = 200;
  constexpr int kReaders = 6;
  VersionChain chain(/*min_retain=*/2);
  chain.Install(MarkerState(0));

  // Readers run a FIXED number of iterations (not gated on the writer
  // finishing — a fast writer must not turn this into a no-op test), so
  // pins and installs genuinely overlap for the whole run.
  constexpr int kReaderIters = 400;
  std::thread writer([&chain] {
    for (uint64_t v = 1; v <= kInstalls; ++v) {
      chain.Install(MarkerState(v));
    }
  });

  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&chain, &reads, r] {
      Rng rng(1234 + static_cast<uint64_t>(r));
      std::vector<std::pair<SnapshotRef, uint64_t>> held;  // ref, checksum
      for (int iter = 0; iter < kReaderIters; ++iter) {
        if (held.size() < 4 || rng.NextBounded(2) == 0) {
          SnapshotRef snap = chain.PinHead();
          if (snap.valid()) {
            const uint64_t version = snap.version();
            const uint64_t sum = StateChecksum(snap.state());
            // The marker state is a pure function of the version number:
            // any torn or stale read shows up as a checksum mismatch.
            ASSERT_EQ(sum, StateChecksum(MarkerState(version)));
            held.emplace_back(std::move(snap), sum);
          }
        } else {
          // Re-validate the OLDEST held snapshot (the one most installs
          // have happened past), then release it.
          auto& [snap, sum] = held.front();
          ASSERT_EQ(StateChecksum(snap.state()), sum)
              << "held snapshot v" << snap.version()
              << " changed while pinned";
          held.erase(held.begin());
        }
        reads.fetch_add(1, std::memory_order_relaxed);
      }
      // Drain: every held snapshot must still read back identically.
      for (auto& [snap, sum] : held) {
        ASSERT_EQ(StateChecksum(snap.state()), sum);
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();

  EXPECT_EQ(reads.load(),
            static_cast<uint64_t>(kReaders) * kReaderIters);
  EXPECT_EQ(chain.head_version(), static_cast<uint64_t>(kInstalls));
  // All pins are gone: everything but the retained tail is reclaimable,
  // and one more install proves the chain still works.
  chain.Install(MarkerState(kInstalls + 1));
  EXPECT_LE(chain.live_versions(), 2u + 1u);
  EXPECT_GT(chain.reclaimed(), 0u);
}

// ---------------------------------------------------------------------------
// CLT-bounded result cache.
// ---------------------------------------------------------------------------

/// rep_fn whose value is a pure function of the index, which also records
/// every index it was asked for — the each-rep-exactly-once ledger.
struct CountingRepFn {
  std::vector<int> calls_per_index = std::vector<int>(4096, 0);
  double operator()(uint64_t rep) {
    ++calls_per_index[rep];
    Rng rng = Rng::Substream(/*seed=*/77, rep);
    return 10.0 + rng.NextDouble();
  }
};

TEST(ResultCacheTest, LooserIsAHitTighterSpendsOnlyIncrementalReps) {
  ResultCache cache;
  CountingRepFn fn;
  const ResultCache::RepFn rep_fn = [&fn](uint64_t rep) -> Result<double> {
    return fn(rep);
  };
  const CacheKey key{1, 2, 3};

  // Cold: no target pressure -> exactly min_reps run.
  auto first = cache.Fetch(key, /*target=*/kInf, /*min_reps=*/8,
                           /*max_reps=*/256, rep_fn);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().reps, 8u);
  EXPECT_EQ(first.value().reps_added, 8u);
  EXPECT_FALSE(first.value().pure_hit);
  EXPECT_TRUE(std::isfinite(first.value().half_width));

  // Same key, looser precision: pure hit, zero reps, same answer bits.
  auto looser = cache.Fetch(key, first.value().half_width * 4.0, 8, 256,
                            rep_fn);
  ASSERT_TRUE(looser.ok());
  EXPECT_TRUE(looser.value().pure_hit);
  EXPECT_EQ(looser.value().reps_added, 0u);
  EXPECT_EQ(std::memcmp(&looser.value().estimate, &first.value().estimate,
                        sizeof(double)),
            0);

  // Tighter: only the missing reps run, resuming at index 8.
  const double tight = first.value().half_width / 3.0;
  auto tighter = cache.Fetch(key, tight, 8, 4096, rep_fn);
  ASSERT_TRUE(tighter.ok());
  EXPECT_FALSE(tighter.value().pure_hit);
  EXPECT_GT(tighter.value().reps, 8u);
  EXPECT_EQ(tighter.value().reps_added, tighter.value().reps - 8u);
  EXPECT_LE(tighter.value().half_width, tight);

  // Bit-identity: a fresh sequential Welford over reps 0..n-1 reproduces
  // the cached accumulator exactly.
  obs::Welford fresh;
  CountingRepFn replay;
  for (uint64_t i = 0; i < tighter.value().reps; ++i) fresh.Add(replay(i));
  const double fresh_mean = fresh.state().mean;
  EXPECT_EQ(std::memcmp(&tighter.value().estimate, &fresh_mean,
                        sizeof(double)),
            0)
      << "cache-assembled estimate differs from a single sequential run";

  // Each-rep-exactly-once, process-wide.
  for (uint64_t i = 0; i < tighter.value().reps; ++i) {
    EXPECT_EQ(fn.calls_per_index[i], 1) << "rep " << i;
  }

  const serve::CacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.pure_hits, 1u);
  EXPECT_EQ(stats.topups, 1u);
  EXPECT_EQ(stats.reps_run, tighter.value().reps);
}

TEST(ResultCacheTest, TinyNNeverClaimsPrecision) {
  // min_reps below 2 is clamped: an n=1 "answer" would have an infinite
  // CLT half-width and must not satisfy any finite target.
  ResultCache cache;
  uint64_t runs = 0;
  const ResultCache::RepFn rep_fn = [&runs](uint64_t) -> Result<double> {
    ++runs;
    return 5.0;
  };
  auto r = cache.Fetch(CacheKey{9, 9, 9}, /*target=*/kInf, /*min_reps=*/0,
                       /*max_reps=*/256, rep_fn);
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r.value().reps, 2u);
}

TEST(ResultCacheTest, RepErrorPropagatesAndKeepsEarlierReps) {
  ResultCache cache;
  std::atomic<bool> fail_at_5{true};
  uint64_t runs = 0;
  const ResultCache::RepFn rep_fn =
      [&fail_at_5, &runs](uint64_t rep) -> Result<double> {
    if (fail_at_5.load() && rep == 5) {
      return Status::Internal("transient rep failure");
    }
    ++runs;
    return static_cast<double>(rep);
  };
  const CacheKey key{4, 5, 6};
  auto broken = cache.Fetch(key, kInf, 8, 256, rep_fn);
  ASSERT_FALSE(broken.ok());
  EXPECT_EQ(runs, 5u);

  // Retry after the fault clears: resumes at rep 5, reps 0..4 not re-run.
  fail_at_5.store(false);
  auto fixed = cache.Fetch(key, kInf, 8, 256, rep_fn);
  ASSERT_TRUE(fixed.ok());
  EXPECT_EQ(fixed.value().reps, 8u);
  EXPECT_EQ(fixed.value().reps_added, 3u);
  EXPECT_EQ(runs, 8u);
}

TEST(ResultCacheTest, StaleEntriesEvictUnderByteBudget) {
  ResultCache::Options opts;
  opts.max_bytes = 2 * ResultCache::kEntryBytes;  // budget: 2 entries
  ResultCache cache(opts);
  const ResultCache::RepFn rep_fn = [](uint64_t rep) -> Result<double> {
    return static_cast<double>(rep);
  };
  ASSERT_TRUE(cache.Fetch(CacheKey{1, 0, 0}, kInf, 2, 8, rep_fn).ok());
  ASSERT_TRUE(cache.Fetch(CacheKey{2, 0, 0}, kInf, 2, 8, rep_fn).ok());
  // Same epoch: nothing is stale, the budget may be transiently exceeded
  // rather than evicting what was just inserted.
  ASSERT_TRUE(cache.Fetch(CacheKey{3, 0, 0}, kInf, 2, 8, rep_fn).ok());
  EXPECT_EQ(cache.stats().evictions, 0u);

  // One epoch later the older keys are fair game.
  cache.AdvanceEpoch();
  ASSERT_TRUE(cache.Fetch(CacheKey{4, 0, 0}, kInf, 2, 8, rep_fn).ok());
  const serve::CacheStats stats = cache.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.entries, 2u);
  EXPECT_LE(stats.bytes, opts.max_bytes);
}

// ---------------------------------------------------------------------------
// Server + sessions end to end.
// ---------------------------------------------------------------------------

TEST(ServeServerTest, CachedAnswerBitIdenticalToFreshSingleSessionRun) {
  // Server A answers via cache assembly: a loose request seeds 8 reps,
  // a tight request tops up to exactly 40 (target 0 is unreachable, so it
  // runs to max_reps).
  simsql::MarkovChainDb db_a = MakePriceDb();
  Server::Options opts;
  opts.seed = 2024;
  opts.min_reps = 8;
  Server a(db_a, opts);
  ASSERT_TRUE(a.AddQuery(PortfolioValueQuery()).ok());
  ASSERT_TRUE(a.Start().ok());

  Request loose;
  loose.query = "pv";
  loose.params = {{"vol", 2.0}, {"horizon", 3.0}};
  loose.target_half_width = kInf;
  loose.max_reps = 40;
  auto s1 = a.OpenSession("loose-first");
  auto r1 = s1->Execute(loose);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1.value().reps, 8u);

  Request tight = loose;
  tight.target_half_width = 0.0;
  auto s2 = a.OpenSession("tight-later");
  auto r2 = s2->Execute(tight);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value().reps, 40u);
  EXPECT_EQ(r2.value().reps_added, 32u);
  EXPECT_FALSE(r2.value().cache_hit);

  // Server B: identical chain + seed, one fresh session running all 40
  // reps itself. The assembled answer must match bitwise.
  simsql::MarkovChainDb db_b = MakePriceDb();
  Server b(db_b, opts);
  ASSERT_TRUE(b.AddQuery(PortfolioValueQuery()).ok());
  ASSERT_TRUE(b.Start().ok());
  auto r3 = b.OpenSession("fresh-one-shot")->Execute(tight);
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3.value().reps, 40u);
  EXPECT_EQ(r3.value().reps_added, 40u);
  EXPECT_EQ(std::memcmp(&r2.value().estimate, &r3.value().estimate,
                        sizeof(double)),
            0)
      << "cache-assembled " << r2.value().estimate << " vs fresh "
      << r3.value().estimate;
  EXPECT_EQ(std::memcmp(&r2.value().half_width, &r3.value().half_width,
                        sizeof(double)),
            0);

  // Third session on A: pure hit with the same bits.
  auto r4 = a.OpenSession("hit")->Execute(tight);
  ASSERT_TRUE(r4.ok());
  EXPECT_TRUE(r4.value().cache_hit);
  EXPECT_EQ(std::memcmp(&r4.value().estimate, &r3.value().estimate,
                        sizeof(double)),
            0);
}

TEST(ServeServerTest, VersionsIsolateAnswersAndPinnedReadsSurviveAdvance) {
  simsql::MarkovChainDb db = MakePriceDb();
  Server::Options opts;
  opts.min_retain_versions = 8;  // keep v0 resident for the pinned read
  Server server(db, opts);
  ASSERT_TRUE(server.AddQuery(PortfolioValueQuery()).ok());
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(server.head_version(), 0u);
  EXPECT_FALSE(server.Start().ok()) << "double Start must fail";

  auto session = server.OpenSession("versions");
  Request req;
  req.query = "pv";
  req.target_half_width = kInf;
  auto at_v0 = session->Execute(req);
  ASSERT_TRUE(at_v0.ok());
  EXPECT_EQ(at_v0.value().version, 0u);

  ASSERT_TRUE(server.AdvanceVersion().ok());
  EXPECT_EQ(server.head_version(), 1u);

  // Head request now keys a different version: a miss, different answer.
  auto at_v1 = session->Execute(req);
  ASSERT_TRUE(at_v1.ok());
  EXPECT_EQ(at_v1.value().version, 1u);
  EXPECT_FALSE(at_v1.value().cache_hit);

  // Explicit old-version request: pure hit, bit-identical to the first.
  Request pinned = req;
  pinned.version = 0;
  auto again_v0 = session->Execute(pinned);
  ASSERT_TRUE(again_v0.ok());
  EXPECT_TRUE(again_v0.value().cache_hit);
  EXPECT_EQ(std::memcmp(&again_v0.value().estimate, &at_v0.value().estimate,
                        sizeof(double)),
            0);

  // Unknown query and never-installed version fail cleanly.
  Request bogus = req;
  bogus.query = "nope";
  EXPECT_FALSE(session->Execute(bogus).ok());
  Request future = req;
  future.version = 99;
  EXPECT_FALSE(session->Execute(future).ok());
}

TEST(ServeServerTest, ConcurrentSessionsHitRateAndPrecisionContract) {
  simsql::MarkovChainDb db = MakePriceDb();
  Server::Options opts;
  opts.seed = 7;
  opts.min_reps = 8;
  Server server(db, opts);
  ASSERT_TRUE(server.AddQuery(PortfolioValueQuery()).ok());
  ASSERT_TRUE(server.Start().ok());

  // 8 sessions x 30 requests over 5 shared request shapes: after each
  // shape's first (per-precision-tier) touch, everything is a pure hit.
  constexpr int kSessions = 8;
  constexpr int kRequestsPerSession = 30;
  std::vector<Request> shapes;
  for (int s = 0; s < 5; ++s) {
    Request r;
    r.query = "pv";
    r.params = {{"vol", 1.0 + s}, {"horizon", 3.0}};
    r.target_half_width = 4.0;  // reachable at a few dozen reps
    r.max_reps = 2048;
    shapes.push_back(r);
  }
  std::vector<SessionWorkload> workloads(kSessions);
  for (int s = 0; s < kSessions; ++s) {
    workloads[s].tag = "client-" + std::to_string(s);
    Rng rng(900 + static_cast<uint64_t>(s));
    for (int q = 0; q < kRequestsPerSession; ++q) {
      workloads[s].requests.push_back(
          shapes[rng.NextBounded(shapes.size())]);
    }
  }

  ThreadPool pool(kSessions);
  auto results = serve::ServeLoop(server, workloads, &pool);
  ASSERT_TRUE(results.ok());

  uint64_t hits = 0;
  uint64_t total = 0;
  // Cross-session consistency: same request shape (vol parameter) at the
  // same version must produce bitwise-identical estimates everywhere.
  std::map<std::pair<uint64_t, uint64_t>, uint64_t> canonical_bits;
  for (size_t s = 0; s < results.value().size(); ++s) {
    const auto& session_answers = results.value()[s];
    ASSERT_EQ(session_answers.size(), workloads[s].requests.size());
    for (size_t q = 0; q < session_answers.size(); ++q) {
      const Answer& answer = session_answers[q];
      ++total;
      hits += answer.cache_hit ? 1 : 0;
      // Precision contract: every answer satisfies the requested bound
      // (max_reps was sized so the target is always reachable).
      ASSERT_LE(answer.half_width, 4.0);
      ASSERT_GE(answer.reps, opts.min_reps);
      const double vol = workloads[s].requests[q].params.at("vol");
      uint64_t vol_bits = 0;
      std::memcpy(&vol_bits, &vol, sizeof(vol_bits));
      uint64_t est_bits = 0;
      std::memcpy(&est_bits, &answer.estimate, sizeof(est_bits));
      const auto key = std::make_pair(vol_bits, answer.version);
      const auto [it, inserted] = canonical_bits.emplace(key, est_bits);
      ASSERT_EQ(it->second, est_bits)
          << "session " << s << " got a different answer for vol=" << vol;
      (void)inserted;
    }
  }
  EXPECT_EQ(total,
            static_cast<uint64_t>(kSessions * kRequestsPerSession));
  // >= 0.9 hit rate: at most 5 shapes miss once each; 5/240 misses.
  EXPECT_GE(static_cast<double>(hits) / static_cast<double>(total), 0.9)
      << hits << "/" << total;

  // ServeLoop sessions close with their workloads; an open session shows
  // up on /sessionz with its counters, alongside the shared cache line.
  auto inspector = server.OpenSession("inspector");
  ASSERT_TRUE(inspector->Execute(shapes[0]).ok());
  const std::string sessionz = server.RenderSessionz();
  EXPECT_NE(sessionz.find("inspector"), std::string::npos) << sessionz;
  EXPECT_NE(sessionz.find("cache:"), std::string::npos);
  EXPECT_NE(sessionz.find("head_version: 0"), std::string::npos);
}

/// Minimal loopback GET; returns the body, status via *status_out.
std::string HttpGet(int port, const std::string& target, int* status_out) {
  *status_out = 0;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string req = "GET " + target +
                          " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                          "Connection: close\r\n\r\n";
  if (::send(fd, req.data(), req.size(), 0) !=
      static_cast<ssize_t>(req.size())) {
    ::close(fd);
    return "";
  }
  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    raw.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  if (raw.compare(0, 5, "HTTP/") != 0) return "";
  *status_out = std::atoi(raw.c_str() + 9);
  const size_t hdr_end = raw.find("\r\n\r\n");
  return hdr_end == std::string::npos ? "" : raw.substr(hdr_end + 4);
}

TEST(ServeServerTest, SessionzServedOverDiagServerWhileServerLives) {
#ifdef MDE_OBS_DISABLED
  GTEST_SKIP() << "no diagnostics server in the obs-disabled build";
#endif
  obs::DiagServer diag;
  ASSERT_TRUE(diag.Start(0));

  int status = 0;
  {
    simsql::MarkovChainDb db = MakePriceDb();
    Server server(db, Server::Options{});
    ASSERT_TRUE(server.AddQuery(PortfolioValueQuery()).ok());
    ASSERT_TRUE(server.Start().ok());
    auto session = server.OpenSession("web-client");
    Request req;
    req.query = "pv";
    req.target_half_width = kInf;
    ASSERT_TRUE(session->Execute(req).ok());

    const std::string body = HttpGet(diag.port(), "/sessionz", &status);
    EXPECT_EQ(status, 200);
    EXPECT_NE(body.find("web-client"), std::string::npos) << body;
    EXPECT_NE(body.find("head_version: 0"), std::string::npos);
    const std::string index = HttpGet(diag.port(), "/", &status);
    EXPECT_NE(index.find("/sessionz"), std::string::npos)
        << "index must advertise the registered page";
  }
  // Server gone: its handler unregistered with it.
  HttpGet(diag.port(), "/sessionz", &status);
  EXPECT_EQ(status, 404);
  diag.Stop();
}

TEST(ServeServerTest, HammerReadersWhileWriterAdvances) {
  // Sessions execute continuously (mixed head + pinned-v0 requests) while
  // the writer advances the chain; run under TSan in CI. Pinned v0
  // answers must stay bit-identical throughout.
  simsql::MarkovChainDb db = MakePriceDb();
  Server::Options opts;
  opts.min_retain_versions = 64;  // v0 stays resident for the whole test
  Server server(db, opts);
  ASSERT_TRUE(server.AddQuery(PortfolioValueQuery()).ok());
  ASSERT_TRUE(server.Start().ok());

  Request v0_req;
  v0_req.query = "pv";
  v0_req.target_half_width = kInf;
  v0_req.version = 0;
  auto baseline = server.OpenSession("baseline")->Execute(v0_req);
  ASSERT_TRUE(baseline.ok());

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&server, &stop, &failures, &baseline, &v0_req,
                          c] {
      auto session = server.OpenSession("hammer-" + std::to_string(c));
      while (!stop.load(std::memory_order_acquire)) {
        auto pinned = session->Execute(v0_req);
        if (!pinned.ok() ||
            std::memcmp(&pinned.value().estimate,
                        &baseline.value().estimate, sizeof(double)) != 0) {
          failures.fetch_add(1);
          return;
        }
        Request head;
        head.query = "pv";
        head.target_half_width = kInf;
        if (!session->Execute(head).ok()) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (int v = 0; v < 30; ++v) {
    ASSERT_TRUE(server.AdvanceVersion().ok());
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.head_version(), 30u);
}

}  // namespace
}  // namespace mde
