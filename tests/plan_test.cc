#include <gtest/gtest.h>

#include "table/plan.h"

namespace mde::table {
namespace {

Table Orders() {
  Table t{Schema({{"oid", DataType::kInt64},
                  {"cid", DataType::kInt64},
                  {"amount", DataType::kDouble}})};
  for (int64_t o = 0; o < 1000; ++o) {
    t.Append({Value(o), Value(o % 100), Value(10.0 + (o % 7))});
  }
  return t;
}

Table Customers() {
  Table t{Schema({{"cid", DataType::kInt64},
                  {"region", DataType::kString}})};
  for (int64_t c = 0; c < 100; ++c) {
    t.Append({Value(c), Value(c % 4 == 0 ? "EAST" : "WEST")});
  }
  return t;
}

TEST(PlanTest, ScanFilterProjectExecute) {
  Table orders = Orders();
  PlanPtr plan = PlanNode::Project(
      PlanNode::Filter(PlanNode::Scan(&orders, "orders"),
                       {{"amount", CmpOp::kGt, Value(14.0)}}),
      {"oid", "amount"});
  ExecutionStats stats;
  auto result = ExecutePlan(plan, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().schema().num_columns(), 2u);
  EXPECT_GT(result.value().num_rows(), 0u);
  EXPECT_EQ(stats.rows_scanned, 1000u);
  for (const Row& r : result.value().rows()) {
    EXPECT_GT(r[1].AsDouble(), 14.0);
  }
}

TEST(PlanTest, OutputSchemaResolution) {
  Table orders = Orders();
  Table customers = Customers();
  PlanPtr join =
      PlanNode::Join(PlanNode::Scan(&orders, "orders"),
                     PlanNode::Scan(&customers, "customers"), {"cid"},
                     {"cid"});
  auto schema = join->OutputSchema();
  ASSERT_TRUE(schema.ok());
  EXPECT_TRUE(schema.value().Has("oid"));
  EXPECT_TRUE(schema.value().Has("r.cid"));  // right-side duplicate renamed
  EXPECT_TRUE(schema.value().Has("region"));
}

TEST(PlanTest, OptimizedPlanGivesSameAnswer) {
  Table orders = Orders();
  Table customers = Customers();
  // Filter above the join references one column from each side.
  PlanPtr naive = PlanNode::Filter(
      PlanNode::Join(PlanNode::Scan(&orders, "orders"),
                     PlanNode::Scan(&customers, "customers"), {"cid"},
                     {"cid"}),
      {{"region", CmpOp::kEq, Value("EAST")},
       {"amount", CmpOp::kGt, Value(12.0)}});
  auto optimized = OptimizePlan(naive);
  ASSERT_TRUE(optimized.ok());

  auto a = ExecutePlan(naive, nullptr);
  auto b = ExecutePlan(optimized.value(), nullptr);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a.value().num_rows(), b.value().num_rows());
  ASSERT_TRUE(a.value().schema() == b.value().schema());
  // Row-set equality via sorted comparison on a key.
  auto sa = OrderBy(a.value(), {"oid"}).value();
  auto sb = OrderBy(b.value(), {"oid"}).value();
  for (size_t i = 0; i < sa.num_rows(); ++i) {
    EXPECT_TRUE(sa.row(i)[0] == sb.row(i)[0]);
  }
}

TEST(PlanTest, PushdownReducesIntermediateRows) {
  Table orders = Orders();
  Table customers = Customers();
  PlanPtr naive = PlanNode::Filter(
      PlanNode::Join(PlanNode::Scan(&orders, "orders"),
                     PlanNode::Scan(&customers, "customers"), {"cid"},
                     {"cid"}),
      {{"region", CmpOp::kEq, Value("EAST")},
       {"amount", CmpOp::kGt, Value(15.0)}});
  auto optimized = OptimizePlan(naive).value();

  ExecutionStats naive_stats, opt_stats;
  ASSERT_TRUE(ExecutePlan(naive, &naive_stats).ok());
  ASSERT_TRUE(ExecutePlan(optimized, &opt_stats).ok());
  // Naive: join materializes 1000 rows, filter runs after. Optimized:
  // both inputs shrink before the join.
  EXPECT_LT(opt_stats.intermediate_rows, naive_stats.intermediate_rows / 2);
}

TEST(PlanTest, PushdownThroughRightSidePrefix) {
  Table orders = Orders();
  Table customers = Customers();
  // Predicate written against the join-output name "r.cid".
  PlanPtr naive = PlanNode::Filter(
      PlanNode::Join(PlanNode::Scan(&orders, "orders"),
                     PlanNode::Scan(&customers, "customers"), {"cid"},
                     {"cid"}),
      {{"r.cid", CmpOp::kLt, Value(int64_t{10})}});
  auto optimized = OptimizePlan(naive);
  ASSERT_TRUE(optimized.ok());
  // The filter sank below the join (root is now the join).
  EXPECT_EQ(optimized.value()->kind(), PlanNode::Kind::kJoin);
  auto a = ExecutePlan(naive, nullptr).value();
  auto b = ExecutePlan(optimized.value(), nullptr).value();
  EXPECT_EQ(a.num_rows(), b.num_rows());
}

TEST(PlanTest, FilterMergesThroughProjection) {
  Table orders = Orders();
  PlanPtr plan = PlanNode::Filter(
      PlanNode::Project(PlanNode::Scan(&orders, "orders"),
                        {"oid", "amount"}),
      {{"amount", CmpOp::kLe, Value(11.0)}});
  auto optimized = OptimizePlan(plan);
  ASSERT_TRUE(optimized.ok());
  // Root is the projection; the filter sits below it now.
  EXPECT_EQ(optimized.value()->kind(), PlanNode::Kind::kProject);
  auto a = ExecutePlan(plan, nullptr).value();
  auto b = ExecutePlan(optimized.value(), nullptr).value();
  EXPECT_EQ(a.num_rows(), b.num_rows());
}

TEST(PlanTest, UnknownPredicateColumnErrors) {
  Table orders = Orders();
  PlanPtr plan =
      PlanNode::Filter(PlanNode::Scan(&orders, "orders"),
                       {{"missing", CmpOp::kEq, Value(int64_t{1})}});
  EXPECT_FALSE(ExecutePlan(plan, nullptr).ok());
}

TEST(PlanTest, ExplainShowsTree) {
  Table orders = Orders();
  Table customers = Customers();
  PlanPtr plan = PlanNode::Filter(
      PlanNode::Join(PlanNode::Scan(&orders, "orders"),
                     PlanNode::Scan(&customers, "customers"), {"cid"},
                     {"cid"}),
      {{"region", CmpOp::kEq, Value("EAST")}});
  const std::string naive = ExplainPlan(plan);
  EXPECT_NE(naive.find("Filter(region = EAST)"), std::string::npos);
  EXPECT_NE(naive.find("HashJoin(cid=cid)"), std::string::npos);
  const std::string opt = ExplainPlan(OptimizePlan(plan).value());
  // After pushdown the filter appears under the join (deeper indentation).
  EXPECT_LT(opt.find("HashJoin"), opt.find("Filter"));
}

}  // namespace
}  // namespace mde::table
