#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "table/catalog.h"
#include "table/cost.h"
#include "table/ops.h"
#include "table/optimizer.h"
#include "table/plan.h"
#include "table/table.h"
#include "table/value.h"

namespace mde::table {
namespace {

Table Orders(size_t n = 1000) {
  Table t{Schema({{"oid", DataType::kInt64},
                  {"cid", DataType::kInt64},
                  {"amount", DataType::kDouble}})};
  for (size_t o = 0; o < n; ++o) {
    t.Append({Value(static_cast<int64_t>(o)),
              Value(static_cast<int64_t>(o % 100)),
              Value(10.0 + static_cast<double>(o % 7))});
  }
  return t;
}

Table Customers(size_t n = 100) {
  Table t{Schema({{"cid", DataType::kInt64}, {"region", DataType::kString}})};
  for (size_t c = 0; c < n; ++c) {
    t.Append({Value(static_cast<int64_t>(c)),
              Value(c % 4 == 0 ? "EAST" : "WEST")});
  }
  return t;
}

/// Sorted multiset of row renderings — order-insensitive result equality.
std::vector<std::string> RowStrings(const Table& t) {
  std::vector<std::string> out;
  out.reserve(t.num_rows());
  for (const Row& r : t.rows()) {
    std::string s;
    for (const Value& v : r) {
      s += v.ToString();
      s += '|';
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end());
  return out;
}

// ---------------------------------------------------------------------------
// Statistics catalog
// ---------------------------------------------------------------------------

TEST(CatalogTest, NumericColumnStats) {
  Table t = Orders(1000);
  auto stats = Catalog::Global().StatsFor(t);
  ASSERT_EQ(stats->row_count, 1000u);
  const ColumnStats* oid = stats->Find("oid");
  ASSERT_NE(oid, nullptr);
  EXPECT_TRUE(oid->has_range);
  EXPECT_DOUBLE_EQ(oid->min, 0.0);
  EXPECT_DOUBLE_EQ(oid->max, 999.0);
  EXPECT_DOUBLE_EQ(oid->distinct, 1000.0);  // exact below kDistinctExact
  EXPECT_DOUBLE_EQ(oid->null_fraction, 0.0);
  EXPECT_TRUE(oid->sorted_asc);
  EXPECT_FALSE(oid->sorted_desc);
  ASSERT_EQ(oid->hist.size(), ColumnStats::kHistBuckets);
  uint64_t binned = 0;
  for (uint64_t b : oid->hist) binned += b;
  EXPECT_EQ(binned, 1000u);
  EXPECT_EQ(oid->hist_rows, 1000u);

  const ColumnStats* amount = stats->Find("amount");
  ASSERT_NE(amount, nullptr);
  EXPECT_DOUBLE_EQ(amount->min, 10.0);
  EXPECT_DOUBLE_EQ(amount->max, 16.0);
  EXPECT_DOUBLE_EQ(amount->distinct, 7.0);
  EXPECT_FALSE(amount->sorted_asc);
}

TEST(CatalogTest, StringDictionaryDistinct) {
  Table t{Schema({{"s", DataType::kString}})};
  for (int i = 0; i < 200; ++i) {
    if (i % 10 == 0) {
      t.Append({Value()});
    } else {
      t.Append({Value(std::string(1, static_cast<char>('a' + i % 4)))});
    }
  }
  auto stats = Catalog::Global().StatsFor(t);
  const ColumnStats* s = stats->Find("s");
  ASSERT_NE(s, nullptr);
  // Dictionary cardinality is the distinct estimate — exact.
  EXPECT_DOUBLE_EQ(s->distinct, 4.0);
  EXPECT_NEAR(s->null_fraction, 0.1, 1e-12);
  EXPECT_FALSE(s->has_range);
  EXPECT_TRUE(s->hist.empty());
}

TEST(CatalogTest, EmptyTableStats) {
  Table t{Schema({{"a", DataType::kInt64}, {"b", DataType::kString}})};
  auto stats = Catalog::Global().StatsFor(t);
  EXPECT_EQ(stats->row_count, 0u);
  const ColumnStats* a = stats->Find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_FALSE(a->has_range);
  EXPECT_DOUBLE_EQ(a->distinct, 0.0);
  EXPECT_DOUBLE_EQ(a->null_fraction, 0.0);
  EXPECT_FALSE(a->sorted_asc);
  EXPECT_EQ(stats->Find("missing"), nullptr);
}

TEST(CatalogTest, StatsMemoizedAndDroppedOnMutation) {
  Table t = Orders(50);
  auto s1 = Catalog::Global().StatsFor(t);
  auto s2 = Catalog::Global().StatsFor(t);
  EXPECT_EQ(s1.get(), s2.get());  // memoized, no rescan
  t.Append({Value(int64_t{50}), Value(int64_t{50}), Value(99.0)});
  auto s3 = Catalog::Global().StatsFor(t);
  EXPECT_NE(s1.get(), s3.get());
  EXPECT_EQ(s3->row_count, 51u);
  EXPECT_DOUBLE_EQ(s3->Find("amount")->max, 99.0);
}

// ---------------------------------------------------------------------------
// Cardinality estimation
// ---------------------------------------------------------------------------

TEST(CostTest, AllRowsAndNoRowsSelectivity) {
  Catalog::Global().ClearFeedback();
  Table orders = Orders(1000);
  PlanPtr scan = PlanNode::Scan(&orders, "orders");
  CostModel model;
  EXPECT_DOUBLE_EQ(model.EstimateRows(scan), 1000.0);

  // amount <= max: every row qualifies.
  PlanPtr all = PlanNode::Filter(scan, {{"amount", CmpOp::kLe, Value(16.0)}});
  EXPECT_NEAR(model.EstimateRows(all), 1000.0, 1.0);

  // amount > max / amount < min: nothing qualifies.
  PlanPtr none_hi =
      PlanNode::Filter(scan, {{"amount", CmpOp::kGt, Value(16.0)}});
  EXPECT_NEAR(model.EstimateRows(none_hi), 0.0, 1000.0 / 7.0 + 1.0);
  PlanPtr none_lo =
      PlanNode::Filter(scan, {{"amount", CmpOp::kLt, Value(10.0)}});
  EXPECT_NEAR(model.EstimateRows(none_lo), 0.0, 1.0);
  // Equality outside [min, max] is impossible.
  PlanPtr none_eq =
      PlanNode::Filter(scan, {{"amount", CmpOp::kEq, Value(500.0)}});
  EXPECT_DOUBLE_EQ(model.EstimateRows(none_eq), 0.0);
  // Comparisons to null never match.
  PlanPtr null_lit = PlanNode::Filter(scan, {{"amount", CmpOp::kEq, Value()}});
  EXPECT_DOUBLE_EQ(model.EstimateRows(null_lit), 0.0);
}

TEST(CostTest, EmptyTableEstimatesZero) {
  Catalog::Global().ClearFeedback();
  Table empty{Schema({{"x", DataType::kInt64}})};
  PlanPtr plan = PlanNode::Filter(PlanNode::Scan(&empty, "empty"),
                                  {{"x", CmpOp::kGt, Value(int64_t{0})}});
  CostModel model;
  EXPECT_DOUBLE_EQ(model.EstimateRows(plan), 0.0);
  EXPECT_GE(model.EstimateCost(plan), 0.0);
}

TEST(CostTest, HistogramRangeEstimateTracksData) {
  Catalog::Global().ClearFeedback();
  Table orders = Orders(1000);
  PlanPtr scan = PlanNode::Scan(&orders, "orders");
  CostModel model;
  // amount > 14 keeps {15, 16}: 2 of the 7 lattice values = ~286 rows.
  PlanPtr plan = PlanNode::Filter(scan, {{"amount", CmpOp::kGt, Value(14.0)}});
  const double est = model.EstimateRows(plan);
  EXPECT_GT(est, 100.0);
  EXPECT_LT(est, 500.0);
}

// ---------------------------------------------------------------------------
// Optimizer passes
// ---------------------------------------------------------------------------

TEST(OptimizerTest, PredicateOrderingMostSelectiveFirst) {
  Catalog::Global().ClearFeedback();
  Table orders = Orders(1000);
  // As written: a keep-everything range predicate ahead of a point lookup.
  PlanPtr plan = PlanNode::Filter(PlanNode::Scan(&orders, "orders"),
                                  {{"amount", CmpOp::kLe, Value(16.0)},
                                   {"oid", CmpOp::kEq, Value(int64_t{5})}});
  auto opt = OptimizePlan(plan);
  ASSERT_TRUE(opt.ok());
  ASSERT_EQ(opt.value()->kind(), PlanNode::Kind::kFilter);
  const auto& preds = opt.value()->predicates();
  ASSERT_EQ(preds.size(), 2u);
  EXPECT_EQ(preds[0].column, "oid");  // 1/1000 sorts before ~1.0
  EXPECT_EQ(preds[1].column, "amount");

  auto a = ExecutePlan(plan, nullptr);
  auto b = ExecutePlan(opt.value(), nullptr);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(RowStrings(a.value()), RowStrings(b.value()));
}

TEST(OptimizerTest, FilterAboveProjectWithSurvivingColumn) {
  Table orders = Orders(1000);
  PlanPtr plan = PlanNode::Filter(
      PlanNode::Project(PlanNode::Scan(&orders, "orders"), {"oid", "amount"}),
      {{"amount", CmpOp::kGt, Value(14.0)}});
  auto opt = OptimizePlan(plan);
  ASSERT_TRUE(opt.ok());
  // The filter sank below the projection.
  EXPECT_EQ(opt.value()->kind(), PlanNode::Kind::kProject);
  auto a = ExecutePlan(plan, nullptr);
  auto b = ExecutePlan(opt.value(), nullptr);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(RowStrings(a.value()), RowStrings(b.value()));
  EXPECT_TRUE(a.value().schema() == b.value().schema());
}

TEST(OptimizerTest, FilterAboveProjectWithDroppedColumnErrors) {
  Table orders = Orders(100);
  // "amount" does not survive the projection, so the predicate can never
  // be evaluated — both the optimizer and the executor must say so.
  PlanPtr plan = PlanNode::Filter(
      PlanNode::Project(PlanNode::Scan(&orders, "orders"), {"oid"}),
      {{"amount", CmpOp::kGt, Value(14.0)}});
  EXPECT_FALSE(OptimizePlan(plan).ok());
  EXPECT_FALSE(ExecutePlan(plan, nullptr).ok());
}

TEST(OptimizerTest, ProjectionPushdownNarrowsScans) {
  Table orders = Orders(1000);
  Table customers = Customers(100);
  PlanPtr plan = PlanNode::Project(
      PlanNode::Join(PlanNode::Scan(&orders, "orders"),
                     PlanNode::Scan(&customers, "customers"), {"cid"},
                     {"cid"}),
      {"oid", "region"});
  auto opt = OptimizePlan(plan);
  ASSERT_TRUE(opt.ok());
  // The join inputs are themselves projections now: "amount" never crosses
  // the join. ExplainPlan shows one Project per narrowed scan.
  const std::string explain = ExplainPlan(opt.value());
  size_t projects = 0;
  for (size_t pos = explain.find("Project");
       pos != std::string::npos; pos = explain.find("Project", pos + 1)) {
    ++projects;
  }
  EXPECT_GE(projects, 2u) << explain;
  EXPECT_EQ(explain.find("amount"), std::string::npos) << explain;

  auto a = ExecutePlan(plan, nullptr);
  auto b = ExecutePlan(opt.value(), nullptr);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(a.value().schema() == b.value().schema());
  EXPECT_EQ(RowStrings(a.value()), RowStrings(b.value()));
}

TEST(OptimizerTest, JoinReorderPreservesResultAndSchema) {
  Catalog::Global().ClearFeedback();
  // A chain written worst-first: big x big, then the tiny filter arrives
  // last. A cost-based reorder joins through the small side first.
  Table orders = Orders(2000);
  Table customers = Customers(100);
  Table regions{Schema({{"region", DataType::kString},
                        {"zone", DataType::kInt64}})};
  regions.Append({Value("EAST"), Value(int64_t{1})});
  regions.Append({Value("WEST"), Value(int64_t{2})});

  PlanPtr plan = PlanNode::Filter(
      PlanNode::Join(
          PlanNode::Join(PlanNode::Scan(&orders, "orders"),
                         PlanNode::Scan(&customers, "customers"), {"cid"},
                         {"cid"}),
          PlanNode::Scan(&regions, "regions"), {"region"}, {"region"}),
      {{"zone", CmpOp::kEq, Value(int64_t{1})}});
  auto opt = OptimizePlan(plan);
  ASSERT_TRUE(opt.ok());
  auto a = ExecutePlan(plan, nullptr);
  auto b = ExecutePlan(opt.value(), nullptr);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(a.value().schema() == b.value().schema())
      << a.value().schema().ToString() << " vs "
      << b.value().schema().ToString();
  EXPECT_EQ(RowStrings(a.value()), RowStrings(b.value()));
}

TEST(OptimizerTest, EmptyInputsOptimizeAndExecute) {
  Table el{Schema({{"k", DataType::kInt64}, {"v", DataType::kDouble}})};
  Table er{Schema({{"k", DataType::kInt64}, {"w", DataType::kString}})};
  PlanPtr plan = PlanNode::Project(
      PlanNode::Filter(
          PlanNode::Join(PlanNode::Scan(&el, "el"), PlanNode::Scan(&er, "er"),
                         {"k"}, {"k"}),
          {{"v", CmpOp::kGt, Value(0.0)}}),
      {"k", "w"});
  auto opt = OptimizePlan(plan);
  ASSERT_TRUE(opt.ok());
  auto out = ExecutePlan(opt.value(), nullptr);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().num_rows(), 0u);
}

TEST(OptimizerTest, DisabledPassesLeavePlanExecutable) {
  Table orders = Orders(500);
  PlanPtr plan = PlanNode::Filter(PlanNode::Scan(&orders, "orders"),
                                  {{"amount", CmpOp::kGt, Value(14.0)}});
  OptimizerOptions off;
  off.push_selections = off.reorder_joins = off.push_projections =
      off.order_predicates = false;
  auto opt = CostBasedOptimize(plan, off);
  ASSERT_TRUE(opt.ok());
  auto a = ExecutePlan(plan, nullptr);
  auto b = ExecutePlan(opt.value(), nullptr);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(RowStrings(a.value()), RowStrings(b.value()));
}

// ---------------------------------------------------------------------------
// Self-correcting feedback loop
// ---------------------------------------------------------------------------

TEST(FeedbackTest, EstimatesTightenBetweenRuns) {
  Catalog::Global().ClearFeedback();
  // Skewed data the analytic model must mis-estimate: 90% of amounts are
  // one value, so eq-selectivity 1/ndv (uniform assumption) is far off.
  Table t{Schema({{"id", DataType::kInt64}, {"amount", DataType::kDouble}})};
  for (int64_t i = 0; i < 1000; ++i) {
    t.Append({Value(i), Value(i % 10 == 0 ? static_cast<double>(i) : 42.0)});
  }
  PlanPtr plan = PlanNode::Filter(PlanNode::Scan(&t, "skewed"),
                                  {{"amount", CmpOp::kEq, Value(42.0)}});

  ExecutionStats run1;
  ASSERT_TRUE(ExecutePlan(plan, &run1).ok());
  ASSERT_EQ(run1.nodes.size(), 2u);  // Filter, Scan
  const double actual = static_cast<double>(run1.nodes[0].rows_out);
  ASSERT_GT(actual, 800.0);
  ASSERT_GE(run1.nodes[0].est_rows, 0.0);
  const double err1 = std::abs(run1.nodes[0].est_rows - actual) / actual;
  EXPECT_GT(err1, 0.5);  // the uniform guess is badly wrong here
  EXPECT_GT(Catalog::Global().feedback_entries(), 0u);

  // Run 2: the recorded actual replaces the analytic guess.
  ExecutionStats run2;
  ASSERT_TRUE(ExecutePlan(plan, &run2).ok());
  const double err2 = std::abs(run2.nodes[0].est_rows - actual) / actual;
  EXPECT_LT(err2, err1);
  EXPECT_NEAR(run2.nodes[0].est_rows, actual, 0.5);
}

TEST(FeedbackTest, FingerprintIgnoresPredicateOrderAndJoinSides) {
  Table orders = Orders(100);
  Table customers = Customers(10);
  PlanPtr a = PlanNode::Filter(PlanNode::Scan(&orders, "orders"),
                               {{"amount", CmpOp::kGt, Value(14.0)},
                                {"oid", CmpOp::kEq, Value(int64_t{5})}});
  PlanPtr b = PlanNode::Filter(PlanNode::Scan(&orders, "orders"),
                               {{"oid", CmpOp::kEq, Value(int64_t{5})},
                                {"amount", CmpOp::kGt, Value(14.0)}});
  EXPECT_EQ(PlanFingerprint(a), PlanFingerprint(b));

  PlanPtr j1 = PlanNode::Join(PlanNode::Scan(&orders, "orders"),
                              PlanNode::Scan(&customers, "customers"),
                              {"cid"}, {"cid"});
  PlanPtr j2 = PlanNode::Join(PlanNode::Scan(&customers, "customers"),
                              PlanNode::Scan(&orders, "orders"), {"cid"},
                              {"cid"});
  EXPECT_EQ(PlanFingerprint(j1), PlanFingerprint(j2));

  // Projections never change cardinality, so they share the child's key.
  PlanPtr p = PlanNode::Project(a, {"oid"});
  EXPECT_EQ(PlanFingerprint(p), PlanFingerprint(a));
}

TEST(FeedbackTest, ScanFingerprintTracksRowCount) {
  Table t1 = Orders(100);
  Table t2 = Orders(200);
  // Same table name, different row count: feedback for one never pollutes
  // the other (the count is part of the key).
  EXPECT_NE(PlanFingerprint(PlanNode::Scan(&t1, "orders")),
            PlanFingerprint(PlanNode::Scan(&t2, "orders")));
}

TEST(FeedbackTest, MutationInvalidatesFeedbackEvenAtSameRowCount) {
  Catalog::Global().ClearFeedback();
  // Skewed so the analytic guess and the recorded actual are far apart.
  Table t{Schema({{"id", DataType::kInt64}, {"amount", DataType::kDouble}})};
  for (int64_t i = 0; i < 1000; ++i) {
    t.Append({Value(i), Value(i % 10 == 0 ? static_cast<double>(i) : 42.0)});
  }
  PlanPtr plan = PlanNode::Filter(PlanNode::Scan(&t, "skewed"),
                                  {{"amount", CmpOp::kEq, Value(42.0)}});
  const std::string fp_before = PlanFingerprint(plan);

  ExecutionStats run1;
  ASSERT_TRUE(ExecutePlan(plan, &run1).ok());
  const double actual = static_cast<double>(run1.nodes[0].rows_out);
  ASSERT_GT(actual, 800.0);
  double fed_back = 0.0;
  ASSERT_TRUE(Catalog::Global().LookupActual(fp_before, &fed_back));
  EXPECT_EQ(fed_back, actual);

  // Overwrite every amount in place: the row count is unchanged, but the
  // recorded actual (≈900 matches) is now wildly stale (0 match).
  for (size_t r = 0; r < t.num_rows(); ++r) {
    t.Set(r, 1, Value(-1.0));
  }
  const std::string fp_after = PlanFingerprint(plan);
  EXPECT_NE(fp_before, fp_after);  // content-version salt changed the key
  double stale = 0.0;
  EXPECT_FALSE(Catalog::Global().LookupActual(fp_after, &stale));
  // The estimate for the mutated table is analytic again, not the stale
  // ~900-row actual that used to leak through the unchanged row count.
  CostModel model;
  EXPECT_LT(model.EstimateRows(plan), 800.0);

  // Unmutated copies keep sharing the original key (feedback still works).
  Catalog::Global().ClearFeedback();
}

}  // namespace
}  // namespace mde::table
