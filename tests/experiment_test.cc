#include <cmath>

#include <gtest/gtest.h>

#include "composite/experiment.h"
#include "doe/designs.h"
#include "doe/main_effects.h"
#include "metamodel/kriging.h"
#include "util/distributions.h"

namespace mde::composite {
namespace {

/// Noisy quadratic test simulation over two named parameters.
Result<double> BowlSim(const std::map<std::string, double>& p, Rng& rng) {
  const double a = p.at("alpha");
  const double b = p.at("beta");
  return (a - 2.0) * (a - 2.0) + 2.0 * (b - 1.0) * (b - 1.0) +
         SampleNormal(rng, 0.0, 0.01);
}

TEST(ExperimentTest, RunsDesignWithReplications) {
  Rng rng(1);
  linalg::Matrix design = doe::RandomLatinHypercube(2, 9, rng);
  std::vector<ParameterSpec> params = {{"alpha", 0.0, 4.0},
                                       {"beta", 0.0, 2.0}};
  ExperimentOptions opt;
  opt.replications = 5;
  auto result = RunExperiment(design, params, BowlSim, opt);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().mean_response.size(), 9u);
  // Responses match the true surface closely (small noise, 5 reps).
  for (size_t p = 0; p < 9; ++p) {
    const double a = result.value().scaled_design(p, 0);
    const double b = result.value().scaled_design(p, 1);
    const double truth =
        (a - 2.0) * (a - 2.0) + 2.0 * (b - 1.0) * (b - 1.0);
    EXPECT_NEAR(result.value().mean_response[p], truth, 0.05);
    EXPECT_LT(result.value().response_variance[p], 0.01);
  }
}

TEST(ExperimentTest, Reproducible) {
  Rng rng(2);
  linalg::Matrix design = doe::RandomLatinHypercube(2, 5, rng);
  std::vector<ParameterSpec> params = {{"alpha", 0.0, 4.0},
                                       {"beta", 0.0, 2.0}};
  ExperimentOptions opt;
  opt.seed = 99;
  auto a = RunExperiment(design, params, BowlSim, opt);
  auto b = RunExperiment(design, params, BowlSim, opt);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t p = 0; p < 5; ++p) {
    EXPECT_DOUBLE_EQ(a.value().mean_response[p],
                     b.value().mean_response[p]);
  }
}

TEST(ExperimentTest, AsTableUnifiedView) {
  Rng rng(3);
  linalg::Matrix design = doe::FullFactorial(2);
  std::vector<ParameterSpec> params = {{"alpha", 1.0, 3.0},
                                       {"beta", 0.5, 1.5}};
  auto result = RunExperiment(design, params, BowlSim, {});
  ASSERT_TRUE(result.ok());
  auto t = result.value().AsTable(params);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value().num_rows(), 4u);
  EXPECT_TRUE(t.value().schema().Has("alpha"));
  EXPECT_TRUE(t.value().schema().Has("mean_response"));
  // Physical units respected.
  EXPECT_DOUBLE_EQ(t.value().At(0, "alpha").value().AsDouble(), 1.0);
}

TEST(ExperimentTest, ErrorsOnBadSpecs) {
  Rng rng(4);
  linalg::Matrix design = doe::FullFactorial(2);
  EXPECT_FALSE(
      RunExperiment(design, {{"only_one", 0, 1}}, BowlSim, {}).ok());
  EXPECT_FALSE(RunExperiment(design,
                             {{"a", 1.0, 1.0}, {"b", 0.0, 1.0}},  // empty range
                             BowlSim, {})
                   .ok());
  ExperimentOptions zero;
  zero.replications = 0;
  EXPECT_FALSE(RunExperiment(design,
                             {{"a", 0.0, 1.0}, {"b", 0.0, 1.0}}, BowlSim,
                             zero)
                   .ok());
}

TEST(ExperimentTest, FactorialDesignFeedsMainEffects) {
  // End-to-end §4.2 workflow: coded factorial -> experiment -> main
  // effects. Response = 3*alpha_coded - beta_coded.
  auto sim = [](const std::map<std::string, double>& p,
                Rng& rng) -> Result<double> {
    // Map physical back to coded for a known linear truth.
    const double ac = p.at("alpha") - 1.0;  // ranges [0,2] -> coded [-1,1]
    const double bc = p.at("beta");         // ranges [-1,1]
    return 3.0 * ac - bc + SampleNormal(rng, 0.0, 0.01);
  };
  linalg::Matrix design = doe::FullFactorial(2);
  std::vector<ParameterSpec> params = {{"alpha", 0.0, 2.0},
                                       {"beta", -1.0, 1.0}};
  ExperimentOptions opt;
  opt.replications = 8;
  auto result = RunExperiment(design, params, sim, opt);
  ASSERT_TRUE(result.ok());
  auto effects =
      doe::ComputeMainEffects(result.value().coded_design,
                              result.value().mean_response);
  ASSERT_TRUE(effects.ok());
  EXPECT_NEAR(effects.value()[0].effect, 6.0, 0.1);   // 2 * 3
  EXPECT_NEAR(effects.value()[1].effect, -2.0, 0.1);  // 2 * -1
}

TEST(ExperimentTest, LhDesignFeedsKrigingMetamodel) {
  // §4.1 + §4.2: NOLH experiment -> stochastic kriging surface.
  Rng rng(5);
  linalg::Matrix design = doe::NearlyOrthogonalLatinHypercube(2, 17, 64, rng);
  std::vector<ParameterSpec> params = {{"alpha", 0.0, 4.0},
                                       {"beta", 0.0, 2.0}};
  ExperimentOptions opt;
  opt.replications = 6;
  auto result = RunExperiment(design, params, BowlSim, opt);
  ASSERT_TRUE(result.ok());
  std::vector<double> point_var(17);
  for (size_t p = 0; p < 17; ++p) {
    point_var[p] = result.value().response_variance[p] / 6.0;
  }
  metamodel::KrigingModel::Options kopt;
  kopt.fit_hyperparameters = true;
  auto surface = metamodel::KrigingModel::Fit(
      result.value().scaled_design, result.value().mean_response, kopt);
  ASSERT_TRUE(surface.ok());
  // The metamodel finds the bowl's minimum region.
  EXPECT_NEAR(surface.value().Predict({2.0, 1.0}), 0.0, 0.35);
  EXPECT_GT(surface.value().Predict({0.0, 0.0}), 3.0);
}

}  // namespace
}  // namespace mde::composite
