#include <gtest/gtest.h>

#include "table/ops.h"
#include "table/query.h"
#include "table/table.h"
#include "table/value.h"

namespace mde::table {
namespace {

Table MakePeople() {
  Table t{Schema({{"pid", DataType::kInt64},
                  {"age", DataType::kInt64},
                  {"city", DataType::kString},
                  {"income", DataType::kDouble}})};
  t.Append({Value(int64_t{1}), Value(int64_t{3}), Value("NYC"), Value(0.0)});
  t.Append({Value(int64_t{2}), Value(int64_t{25}), Value("NYC"),
            Value(55000.0)});
  t.Append({Value(int64_t{3}), Value(int64_t{40}), Value("SF"),
            Value(90000.0)});
  t.Append({Value(int64_t{4}), Value(int64_t{4}), Value("SF"), Value(0.0)});
  t.Append({Value(int64_t{5}), Value(int64_t{67}), Value("NYC"),
            Value(30000.0)});
  return t;
}

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value(int64_t{5}).type(), DataType::kInt64);
  EXPECT_EQ(Value(2.5).type(), DataType::kDouble);
  EXPECT_EQ(Value("x").type(), DataType::kString);
  EXPECT_EQ(Value(true).type(), DataType::kBool);
  EXPECT_DOUBLE_EQ(Value(int64_t{5}).AsDouble(), 5.0);  // numeric coercion
}

TEST(ValueTest, NullNeverEquals) {
  EXPECT_FALSE(Value().Equals(Value()));
  EXPECT_FALSE(Value().Equals(Value(1)));
}

TEST(ValueTest, CrossNumericEquality) {
  EXPECT_TRUE(Value(int64_t{3}).Equals(Value(3.0)));
  EXPECT_FALSE(Value(int64_t{3}).Equals(Value(3.5)));
}

TEST(ValueTest, OrderingAcrossTypes) {
  EXPECT_TRUE(Value(int64_t{1}).LessThan(Value(2.5)));
  EXPECT_TRUE(Value(false).LessThan(Value(true)));
  EXPECT_TRUE(Value("a").LessThan(Value("b")));
  EXPECT_TRUE(Value(int64_t{99}).LessThan(Value("a")));  // numeric < string
}

TEST(SchemaTest, LookupAndDuplicates) {
  Schema s({{"a", DataType::kInt64}, {"b", DataType::kDouble}});
  EXPECT_EQ(s.IndexOf("b").value(), 1u);
  EXPECT_FALSE(s.IndexOf("c").ok());
  EXPECT_TRUE(s.Has("a"));
}

TEST(SchemaTest, ConcatPrefixesDuplicates) {
  Schema a({{"id", DataType::kInt64}, {"x", DataType::kDouble}});
  Schema b({{"id", DataType::kInt64}, {"y", DataType::kDouble}});
  Schema c = Schema::Concat(a, b, "r.");
  EXPECT_EQ(c.num_columns(), 4u);
  EXPECT_TRUE(c.Has("r.id"));
  EXPECT_TRUE(c.Has("y"));
}

TEST(FilterTest, ColumnCompare) {
  Table t = MakePeople();
  auto pred = ColumnCompare(t.schema(), "age", CmpOp::kLe, int64_t{4});
  ASSERT_TRUE(pred.ok());
  Table kids = Filter(t, pred.value());
  EXPECT_EQ(kids.num_rows(), 2u);
}

TEST(FilterTest, Combinators) {
  Table t = MakePeople();
  auto young = ColumnCompare(t.schema(), "age", CmpOp::kLt, int64_t{30});
  auto nyc = ColumnCompare(t.schema(), "city", CmpOp::kEq, "NYC");
  ASSERT_TRUE(young.ok() && nyc.ok());
  EXPECT_EQ(Filter(t, And(young.value(), nyc.value())).num_rows(), 2u);
  EXPECT_EQ(Filter(t, Or(young.value(), nyc.value())).num_rows(), 4u);
  EXPECT_EQ(Filter(t, Not(nyc.value())).num_rows(), 2u);
}

TEST(ProjectTest, SelectsAndErrors) {
  Table t = MakePeople();
  auto proj = Project(t, {"pid", "city"});
  ASSERT_TRUE(proj.ok());
  EXPECT_EQ(proj.value().schema().num_columns(), 2u);
  EXPECT_EQ(proj.value().num_rows(), 5u);
  EXPECT_FALSE(Project(t, {"nope"}).ok());
}

TEST(HashJoinTest, MatchesPairs) {
  Table people = MakePeople();
  Table infected{Schema({{"pid", DataType::kInt64}})};
  infected.Append({Value(int64_t{1})});
  infected.Append({Value(int64_t{3})});
  infected.Append({Value(int64_t{99})});  // no match
  auto joined = HashJoin(people, infected, {"pid"}, {"pid"});
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined.value().num_rows(), 2u);
}

TEST(HashJoinTest, DuplicateKeysProduceCross) {
  Table a{Schema({{"k", DataType::kInt64}})};
  a.Append({Value(int64_t{1})});
  a.Append({Value(int64_t{1})});
  Table b = a;
  auto joined = HashJoin(a, b, {"k"}, {"k"});
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined.value().num_rows(), 4u);
}

TEST(HashJoinTest, NullKeysNeverJoin) {
  Table a{Schema({{"k", DataType::kInt64}})};
  a.Append({Value()});
  Table b = a;
  auto joined = HashJoin(a, b, {"k"}, {"k"});
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined.value().num_rows(), 0u);
}

TEST(NestedLoopJoinTest, ThetaJoin) {
  Table t = MakePeople();
  // Pairs where left.age < right.age.
  Table joined = NestedLoopJoin(t, t, [](const Row& l, const Row& r) {
    return l[1].AsInt() < r[1].AsInt();
  });
  EXPECT_EQ(joined.num_rows(), 10u);  // 5 choose 2 ordered pairs
}

TEST(GroupByTest, AggregatesPerGroup) {
  Table t = MakePeople();
  auto g = GroupBy(t, {"city"},
                   {{AggKind::kCount, "", "n"},
                    {AggKind::kAvg, "income", "avg_inc"},
                    {AggKind::kMax, "age", "max_age"}});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().num_rows(), 2u);
  // NYC group: 3 people, incomes 0, 55000, 30000.
  auto sorted = OrderBy(g.value(), {"city"});
  ASSERT_TRUE(sorted.ok());
  const Row& nyc = sorted.value().row(0);
  EXPECT_EQ(nyc[0].AsString(), "NYC");
  EXPECT_EQ(nyc[1].AsInt(), 3);
  EXPECT_NEAR(nyc[2].AsDouble(), 85000.0 / 3.0, 1e-9);
}

TEST(GroupByTest, GlobalAggregate) {
  Table t = MakePeople();
  auto g = GroupBy(t, {}, {{AggKind::kSum, "income", "total"}});
  ASSERT_TRUE(g.ok());
  ASSERT_EQ(g.value().num_rows(), 1u);
  EXPECT_DOUBLE_EQ(g.value().row(0)[0].AsDouble(), 175000.0);
}

TEST(GroupByTest, RejectsNonNumericAggregate) {
  Table t = MakePeople();
  EXPECT_FALSE(GroupBy(t, {}, {{AggKind::kSum, "city", "x"}}).ok());
}

TEST(OrderByTest, MultiKeyAndDescending) {
  Table t = MakePeople();
  auto sorted = OrderBy(t, {"city", "age"}, {false, true});
  ASSERT_TRUE(sorted.ok());
  EXPECT_EQ(sorted.value().row(0)[2].AsString(), "NYC");
  EXPECT_EQ(sorted.value().row(0)[1].AsInt(), 67);  // oldest NYC first
}

TEST(UnionDistinctLimitTest, Basics) {
  Table t = MakePeople();
  auto u = Union(t, t);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u.value().num_rows(), 10u);
  EXPECT_EQ(Distinct(u.value()).num_rows(), 5u);
  EXPECT_EQ(Limit(t, 2).num_rows(), 2u);
}

TEST(UnionTest, RejectsSchemaMismatch) {
  Table a{Schema({{"x", DataType::kInt64}})};
  Table b{Schema({{"y", DataType::kInt64}})};
  EXPECT_FALSE(Union(a, b).ok());
}

TEST(WithColumnTest, ComputedColumn) {
  Table t = MakePeople();
  Table t2 = WithColumn(t, "income_k", DataType::kDouble, [](const Row& r) {
    return Value(r[3].AsDouble() / 1000.0);
  });
  EXPECT_EQ(t2.schema().num_columns(), 5u);
  EXPECT_DOUBLE_EQ(t2.row(1)[4].AsDouble(), 55.0);
}

TEST(QueryTest, ChainedPipeline) {
  Table t = MakePeople();
  auto result = Query(t)
                    .Where("age", CmpOp::kGe, int64_t{18})
                    .Where("city", CmpOp::kEq, "NYC")
                    .Select({"pid", "income"})
                    .OrderByDesc({"income"})
                    .Execute();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_rows(), 2u);
  EXPECT_DOUBLE_EQ(result.value().row(0)[1].AsDouble(), 55000.0);
}

TEST(QueryTest, ErrorPoisonsChain) {
  Table t = MakePeople();
  auto result = Query(t).Where("nope", CmpOp::kEq, 1).Select({"pid"}).Execute();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(QueryTest, CountStarScalar) {
  Table t = MakePeople();
  auto n = Query(t).Where("age", CmpOp::kLe, int64_t{4}).CountStar("n")
               .ExecuteScalar();
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value().AsInt(), 2);
}

TEST(ScalarHelpersTest, SumAvg) {
  Table t = MakePeople();
  EXPECT_DOUBLE_EQ(SumColumn(t, "income").value(), 175000.0);
  EXPECT_DOUBLE_EQ(AvgColumn(t, "income").value(), 35000.0);
  EXPECT_FALSE(AvgColumn(Table{t.schema()}, "income").ok());
}

}  // namespace
}  // namespace mde::table
