#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "table/catalog.h"
#include "table/columnar.h"
#include "table/ops.h"
#include "table/plan.h"
#include "table/query.h"
#include "table/table.h"
#include "table/value.h"
#include "table/vec_ops.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace mde::table {
namespace {

// ---------------------------------------------------------------------------
// Comparison helpers
// ---------------------------------------------------------------------------

/// Cell-level equality via Value's strict variant operator== (null equals
/// null). Tests steer clear of NaN, so this is an equivalence.
void ExpectTablesIdentical(const Table& a, const Table& b,
                           const std::string& what) {
  ASSERT_TRUE(a.schema() == b.schema())
      << what << ": " << a.schema().ToString() << " vs "
      << b.schema().ToString();
  ASSERT_EQ(a.num_rows(), b.num_rows()) << what;
  for (size_t i = 0; i < a.num_rows(); ++i) {
    const Row& ra = a.row(i);
    const Row& rb = b.row(i);
    for (size_t j = 0; j < ra.size(); ++j) {
      ASSERT_TRUE(ra[j] == rb[j])
          << what << ": row " << i << " col " << j << ": " << ra[j].ToString()
          << " vs " << rb[j].ToString();
    }
  }
}

uint64_t Bits(double d) {
  uint64_t b;
  std::memcpy(&b, &d, sizeof(b));
  return b;
}

/// Bit-exact equality of the underlying blocks — the determinism contract:
/// results must not merely be numerically close across pool sizes, they
/// must be the same bits.
void ExpectColumnarBitIdentical(const ColumnarTable& a,
                                const ColumnarTable& b,
                                const std::string& what) {
  ASSERT_TRUE(a.schema() == b.schema()) << what;
  ASSERT_EQ(a.num_rows(), b.num_rows()) << what;
  for (size_t c = 0; c < a.num_columns(); ++c) {
    const Column& ca = a.col(c);
    const Column& cb = b.col(c);
    ASSERT_EQ(ca.type, cb.type) << what;
    ASSERT_EQ(ca.i64, cb.i64) << what << " col " << c;
    ASSERT_EQ(ca.f64.size(), cb.f64.size()) << what;
    for (size_t i = 0; i < ca.f64.size(); ++i) {
      ASSERT_EQ(Bits(ca.f64[i]), Bits(cb.f64[i]))
          << what << " col " << c << " row " << i;
    }
    ASSERT_EQ(ca.b8, cb.b8) << what << " col " << c;
    ASSERT_EQ(ca.codes, cb.codes) << what << " col " << c;
    if (ca.dict != nullptr || cb.dict != nullptr) {
      ASSERT_TRUE(ca.dict != nullptr && cb.dict != nullptr) << what;
      ASSERT_EQ(*ca.dict, *cb.dict) << what << " col " << c;
    }
    ASSERT_EQ(ca.valid, cb.valid) << what << " col " << c;
  }
}

// ---------------------------------------------------------------------------
// Random data generation for the differential tests. Doubles stay on the
// 0.25 lattice with small magnitude, so chunked sums are exact in IEEE
// arithmetic and row-order vs chunk-order accumulation cannot diverge.
// int64 values occasionally sit at the 2^53 double-precision edge to
// exercise Value's coerce-through-double comparison semantics.
// ---------------------------------------------------------------------------

const char* kStrings[] = {"a", "b", "c", "apple", "zed", ""};

Value RandomValueOfType(Rng& rng, DataType type, bool allow_null) {
  if (allow_null && rng.NextBounded(12) == 0) return Value();
  switch (type) {
    case DataType::kInt64: {
      if (rng.NextBounded(20) == 0) {
        const int64_t edge = int64_t{1} << 53;
        return Value(edge + static_cast<int64_t>(rng.NextBounded(3)) - 1);
      }
      return Value(static_cast<int64_t>(rng.NextBounded(13)) - 6);
    }
    case DataType::kDouble:
      return Value((static_cast<double>(rng.NextBounded(81)) - 40.0) * 0.25);
    case DataType::kBool:
      return Value(rng.NextBounded(2) == 1);
    case DataType::kString:
      return Value(kStrings[rng.NextBounded(6)]);
    case DataType::kNull:
      return Value();
  }
  return Value();
}

DataType RandomType(Rng& rng) {
  constexpr DataType kTypes[] = {DataType::kInt64, DataType::kDouble,
                                 DataType::kBool, DataType::kString};
  return kTypes[rng.NextBounded(4)];
}

Table RandomTable(Rng& rng, const std::string& prefix, size_t max_rows) {
  const size_t ncols = 1 + rng.NextBounded(4);
  std::vector<ColumnSpec> specs;
  for (size_t c = 0; c < ncols; ++c) {
    specs.push_back({prefix + std::to_string(c), RandomType(rng)});
  }
  Table t{Schema(specs)};
  const size_t rows = rng.NextBounded(max_rows + 1);
  for (size_t i = 0; i < rows; ++i) {
    Row r;
    for (size_t c = 0; c < ncols; ++c) {
      r.push_back(RandomValueOfType(rng, specs[c].type, /*allow_null=*/true));
    }
    t.Append(std::move(r));
  }
  return t;
}

std::string RandomColumn(Rng& rng, const Table& t, bool sometimes_bogus) {
  if (sometimes_bogus && rng.NextBounded(15) == 0) return "no_such_column";
  return t.schema().column(rng.NextBounded(t.schema().num_columns())).name;
}

CmpOp RandomOp(Rng& rng) {
  constexpr CmpOp kOps[] = {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt,
                            CmpOp::kLe, CmpOp::kGt, CmpOp::kGe};
  return kOps[rng.NextBounded(6)];
}

// ---------------------------------------------------------------------------
// Storage-layer unit tests
// ---------------------------------------------------------------------------

TEST(ColumnBuilderTest, LateNullBackfillsBitmap) {
  ColumnBuilder b(DataType::kInt64);
  for (int i = 0; i < 100; ++i) b.AppendInt64(i);
  b.AppendNull();
  b.AppendInt64(100);
  auto col = b.Finish();
  ASSERT_EQ(col->size, 102u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(col->IsValid(i));
    EXPECT_TRUE(col->ValueAt(i) == Value(int64_t{i}));
  }
  EXPECT_FALSE(col->IsValid(100));
  EXPECT_TRUE(col->ValueAt(100).is_null());
  EXPECT_TRUE(col->IsValid(101));
}

TEST(ColumnBuilderTest, NoNullsMeansEmptyBitmap) {
  ColumnBuilder b(DataType::kDouble);
  for (int i = 0; i < 200; ++i) b.AppendDouble(i * 0.5);
  auto col = b.Finish();
  EXPECT_TRUE(col->valid.empty());
  EXPECT_TRUE(col->IsValid(199));
}

TEST(ColumnBuilderTest, StringsAreInternedInFirstAppearanceOrder) {
  ColumnBuilder b(DataType::kString);
  b.AppendString("x");
  b.AppendString("y");
  b.AppendString("x");
  b.AppendString("z");
  b.AppendString("y");
  auto col = b.Finish();
  ASSERT_EQ(col->dict->size(), 3u);
  EXPECT_EQ((*col->dict)[0], "x");
  EXPECT_EQ((*col->dict)[1], "y");
  EXPECT_EQ((*col->dict)[2], "z");
  EXPECT_TRUE(std::equal(col->codes.begin(), col->codes.end(),
                         std::vector<uint32_t>{0, 1, 0, 2, 1}.begin()));
  EXPECT_EQ(col->codes.size(), 5u);
}

TEST(ColumnarTableTest, RoundTripsThroughTable) {
  Rng rng(7);
  Table t = RandomTable(rng, "c", 300);
  auto cols = t.ToColumnar();
  ASSERT_TRUE(cols.ok());
  Table back = Table::FromColumnar(cols.value());
  ExpectTablesIdentical(t, back, "round trip");
}

TEST(ColumnarTableTest, ToColumnarCachesOnTheTable) {
  Rng rng(8);
  Table t = RandomTable(rng, "c", 50);
  auto first = t.ToColumnar();
  auto second = t.ToColumnar();
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(first.value().get(), second.value().get());
}

TEST(ColumnarTableTest, MutationDetachesColumnarRepresentation) {
  Table t{Schema({{"a", DataType::kInt64}})};
  t.Append({Value(int64_t{1})});
  ASSERT_TRUE(t.ToColumnar().ok());
  EXPECT_NE(t.columnar(), nullptr);
  t.Append({Value(int64_t{2})});
  EXPECT_EQ(t.columnar(), nullptr);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(ColumnarTableTest, MixedTypeColumnStaysOnRowPath) {
  Table t{Schema({{"a", DataType::kInt64}})};
  t.Append({Value(int64_t{1})});
  t.Append({Value(2.5)});  // runtime double in a declared-int64 column
  auto cols = t.ToColumnar();
  EXPECT_FALSE(cols.ok());
  EXPECT_EQ(cols.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ColumnarTableTest, LazyRowMaterialization) {
  ColumnarTableBuilder b{Schema({{"a", DataType::kInt64}})};
  for (int i = 0; i < 10; ++i) b.column(0).AppendInt64(i);
  auto cols = b.Finish();
  ASSERT_TRUE(cols.ok());
  Table t = Table::FromColumnar(cols.value());
  EXPECT_EQ(t.num_rows(), 10u);
  auto v = t.At(3, "a");  // cell access without materializing
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v.value() == Value(int64_t{3}));
  EXPECT_EQ(t.rows().size(), 10u);  // materializes
  EXPECT_TRUE(t.row(9)[0] == Value(int64_t{9}));
}

// ---------------------------------------------------------------------------
// Randomized differential tests: the vectorized kernels must agree with the
// retained row-at-a-time operators row for row, cell for cell — including
// null handling, cross-type predicates, and the int64-through-double
// comparison edge at 2^53.
// ---------------------------------------------------------------------------

Value RandomLiteral(Rng& rng) {
  if (rng.NextBounded(10) == 0) return Value();  // null literal
  return RandomValueOfType(rng, RandomType(rng), /*allow_null=*/false);
}

void RunFilterDifferential(Rng& rng, ThreadPool* pool) {
  Table t = RandomTable(rng, "c", 120);
  const std::string col = RandomColumn(rng, t, /*sometimes_bogus=*/true);
  const CmpOp op = RandomOp(rng);
  const Value lit = RandomLiteral(rng);

  auto pred = ColumnCompare(t.schema(), col, op, lit);
  auto cols = t.ToColumnar();
  ASSERT_TRUE(cols.ok());
  auto sel = VecFilter(*cols.value(), nullptr, col, op, lit, pool);
  ASSERT_EQ(pred.ok(), sel.ok());
  if (!pred.ok()) {
    EXPECT_EQ(pred.status().code(), sel.status().code());
    return;
  }
  Table ref = Filter(t, pred.value());
  Table vec = BatchToTable(
      ColumnarBatch{cols.value(), std::move(sel).value(), false}, pool);
  ExpectTablesIdentical(ref, vec, "filter " + col);
}

void RunJoinDifferential(Rng& rng, ThreadPool* pool) {
  Table l = RandomTable(rng, "l", 80);
  Table r = RandomTable(rng, "r", 80);
  const size_t nkeys = 1 + rng.NextBounded(2);
  std::vector<std::string> lk, rk;
  for (size_t i = 0; i < nkeys; ++i) {
    lk.push_back(RandomColumn(rng, l, /*sometimes_bogus=*/false));
    rk.push_back(RandomColumn(rng, r, /*sometimes_bogus=*/false));
  }
  auto ref = HashJoin(l, r, lk, rk);
  auto lc = l.ToColumnar();
  auto rc = r.ToColumnar();
  ASSERT_TRUE(lc.ok() && rc.ok());
  auto vec = VecHashJoin(ColumnarBatch{lc.value(), {}, true},
                         ColumnarBatch{rc.value(), {}, true}, lk, rk, pool);
  ASSERT_EQ(ref.ok(), vec.ok());
  if (!ref.ok()) {
    EXPECT_EQ(ref.status().code(), vec.status().code());
    return;
  }
  ExpectTablesIdentical(ref.value(), Table::FromColumnar(vec.value()),
                        "join");
}

void RunGroupByDifferential(Rng& rng, ThreadPool* pool) {
  Table t = RandomTable(rng, "c", 120);
  std::vector<std::string> keys;
  const size_t nkeys = rng.NextBounded(3);
  for (size_t i = 0; i < nkeys; ++i) {
    std::string k = RandomColumn(rng, t, /*sometimes_bogus=*/false);
    // Duplicate keys would put the same name twice in the output schema.
    if (std::find(keys.begin(), keys.end(), k) == keys.end()) {
      keys.push_back(std::move(k));
    }
  }
  constexpr AggKind kKinds[] = {AggKind::kCount, AggKind::kSum, AggKind::kAvg,
                                AggKind::kMin, AggKind::kMax};
  std::vector<AggSpec> aggs;
  const size_t naggs = 1 + rng.NextBounded(2);
  for (size_t i = 0; i < naggs; ++i) {
    aggs.push_back({kKinds[rng.NextBounded(5)],
                    RandomColumn(rng, t, /*sometimes_bogus=*/false),
                    "agg" + std::to_string(i)});
  }
  auto ref = GroupBy(t, keys, aggs);
  auto cols = t.ToColumnar();
  ASSERT_TRUE(cols.ok());
  auto vec = VecGroupBy(ColumnarBatch{cols.value(), {}, true}, keys, aggs,
                        pool);
  ASSERT_EQ(ref.ok(), vec.ok());
  if (!ref.ok()) {
    EXPECT_EQ(ref.status().code(), vec.status().code());
    return;
  }
  ExpectTablesIdentical(ref.value(), Table::FromColumnar(vec.value()),
                        "group-by");
}

void RunOrderByDifferential(Rng& rng, ThreadPool* pool) {
  Table t = RandomTable(rng, "c", 120);
  const size_t ncols = 1 + rng.NextBounded(2);
  std::vector<std::string> by;
  std::vector<bool> desc;
  for (size_t i = 0; i < ncols; ++i) {
    by.push_back(RandomColumn(rng, t, /*sometimes_bogus=*/false));
    desc.push_back(rng.NextBounded(2) == 1);
  }
  auto ref = OrderBy(t, by, desc);
  auto cols = t.ToColumnar();
  ASSERT_TRUE(cols.ok());
  auto sel = VecOrderBy(ColumnarBatch{cols.value(), {}, true}, by, desc);
  ASSERT_EQ(ref.ok(), sel.ok());
  if (!ref.ok()) return;
  Table vec = BatchToTable(
      ColumnarBatch{cols.value(), std::move(sel).value(), false}, pool);
  ExpectTablesIdentical(ref.value(), vec, "order-by");
}

void RunDistinctDifferential(Rng& rng, ThreadPool* pool) {
  Table t = RandomTable(rng, "c", 120);
  Table ref = Distinct(t);
  auto cols = t.ToColumnar();
  ASSERT_TRUE(cols.ok());
  SelVector sel = VecDistinct(ColumnarBatch{cols.value(), {}, true});
  Table vec =
      BatchToTable(ColumnarBatch{cols.value(), std::move(sel), false}, pool);
  ExpectTablesIdentical(ref, vec, "distinct");
}

TEST(ColumnarDifferentialTest, TwoHundredRandomOperatorRuns) {
  Rng rng(20260806);
  ThreadPool pool(3);
  for (int iter = 0; iter < 200; ++iter) {
    ThreadPool* p = iter % 2 == 0 ? nullptr : &pool;
    switch (iter % 5) {
      case 0:
        RunFilterDifferential(rng, p);
        break;
      case 1:
        RunJoinDifferential(rng, p);
        break;
      case 2:
        RunGroupByDifferential(rng, p);
        break;
      case 3:
        RunOrderByDifferential(rng, p);
        break;
      case 4:
        RunDistinctDifferential(rng, p);
        break;
    }
    if (HasFatalFailure()) {
      ADD_FAILURE() << "failing iteration: " << iter;
      return;
    }
  }
}

TEST(ColumnarDifferentialTest, QueryChainMatchesRowComposition) {
  Rng rng(99);
  for (int iter = 0; iter < 60; ++iter) {
    Table t = RandomTable(rng, "c", 100);
    Table u = RandomTable(rng, "c", 60);  // join partner, same name space
    const std::string fcol = RandomColumn(rng, t, false);
    const CmpOp op = RandomOp(rng);
    const Value lit = RandomLiteral(rng);
    const std::string lk = RandomColumn(rng, t, false);
    const std::string rk = RandomColumn(rng, u, false);

    auto q = Query(t)
                 .Where(fcol, op, lit)
                 .Join(u, {lk}, {rk})
                 .Limit(25)
                 .Execute();

    auto pred = ColumnCompare(t.schema(), fcol, op, lit);
    ASSERT_TRUE(pred.ok());
    auto joined = HashJoin(Filter(t, pred.value()), u, {lk}, {rk});
    ASSERT_EQ(q.ok(), joined.ok());
    if (!q.ok()) continue;
    Table ref = Limit(joined.value(), 25);
    ExpectTablesIdentical(ref, q.value(), "query chain");
  }
}

TEST(ColumnarDifferentialTest, RowFallbackStepsInterleaveWithColumnar) {
  Rng rng(42);
  for (int iter = 0; iter < 40; ++iter) {
    Table t = RandomTable(rng, "c", 100);
    const std::string fcol = RandomColumn(rng, t, false);
    // Opaque row predicate: forces the row path mid-chain.
    auto idx = t.schema().IndexOf(fcol);
    ASSERT_TRUE(idx.ok());
    const size_t i = idx.value();
    RowPredicate opaque = [i](const Row& r) { return !r[i].is_null(); };

    const std::string fcol2 = RandomColumn(rng, t, false);
    const CmpOp op = RandomOp(rng);
    const Value lit = RandomLiteral(rng);

    auto q = Query(t)
                 .Where(fcol2, op, lit)  // columnar
                 .WherePred(opaque)      // row fallback
                 .Distinct()             // back to columnar
                 .Execute();
    ASSERT_TRUE(q.ok());

    auto pred = ColumnCompare(t.schema(), fcol2, op, lit);
    ASSERT_TRUE(pred.ok());
    Table ref = Distinct(Filter(Filter(t, pred.value()), opaque));
    ExpectTablesIdentical(ref, q.value(), "mixed-path chain");
  }
}

TEST(ColumnarDifferentialTest, PlanExecutorMatchesRowOperators) {
  Rng rng(314);
  for (int iter = 0; iter < 40; ++iter) {
    Table l = RandomTable(rng, "l", 90);
    Table r = RandomTable(rng, "r", 60);
    const std::string lk = RandomColumn(rng, l, false);
    const std::string rk = RandomColumn(rng, r, false);
    const std::string fc = RandomColumn(rng, l, false);
    const CmpOp op = RandomOp(rng);
    const Value lit = RandomLiteral(rng);

    auto plan = PlanNode::Filter(
        PlanNode::Join(PlanNode::Scan(&l, "l"), PlanNode::Scan(&r, "r"),
                       {lk}, {rk}),
        {{fc, op, lit}});
    ExecutionStats stats;
    auto got = ExecutePlan(plan, &stats);

    auto joined = HashJoin(l, r, {lk}, {rk});
    ASSERT_EQ(got.ok(), joined.ok());
    if (!got.ok()) continue;
    auto pred = ColumnCompare(joined.value().schema(), fc, op, lit);
    ASSERT_TRUE(pred.ok());
    Table ref = Filter(joined.value(), pred.value());
    ExpectTablesIdentical(ref, got.value(), "plan execution");
    EXPECT_EQ(stats.rows_scanned, l.num_rows() + r.num_rows());
  }
}

// ---------------------------------------------------------------------------
// Determinism: bit-identical results for pool sizes {serial, 2, 8}. These
// use arbitrary (non-lattice) doubles and enough rows for many chunks, so
// any thread-count-dependent accumulation order would show up as a bit
// difference.
// ---------------------------------------------------------------------------

std::shared_ptr<const ColumnarTable> BigMixedTable(size_t n) {
  Rng rng(5150);
  ColumnarTableBuilder b{Schema({{"k", DataType::kInt64},
                                 {"x", DataType::kDouble},
                                 {"s", DataType::kString},
                                 {"f", DataType::kBool}})};
  b.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    b.column(0).AppendInt64(static_cast<int64_t>(rng.NextBounded(100)));
    if (rng.NextBounded(20) == 0) {
      b.column(1).AppendNull();
    } else {
      b.column(1).AppendDouble((rng.NextDouble() - 0.5) * 1e6);
    }
    b.column(2).AppendString(kStrings[rng.NextBounded(6)]);
    b.column(3).AppendBool(rng.NextBounded(2) == 1);
  }
  auto cols = b.Finish();
  EXPECT_TRUE(cols.ok());
  return std::move(cols).value();
}

TEST(VecDeterminismTest, KernelsBitIdenticalAcrossPoolSizes) {
  const auto cols = BigMixedTable(50000);
  const ColumnarBatch batch{cols, {}, true};
  ThreadPool pool2(2);
  ThreadPool pool8(8);
  std::vector<ThreadPool*> pools = {nullptr, &pool2, &pool8};

  // Filter: selection vectors must match element for element.
  std::vector<SelVector> sels;
  for (ThreadPool* p : pools) {
    auto sel =
        VecFilter(*cols, nullptr, "x", CmpOp::kGt, Value(0.0), p);
    ASSERT_TRUE(sel.ok());
    sels.push_back(std::move(sel).value());
  }
  EXPECT_EQ(sels[0], sels[1]);
  EXPECT_EQ(sels[0], sels[2]);

  // Compact: gathered blocks (incl. validity bitmaps) must be identical.
  std::vector<std::shared_ptr<const ColumnarTable>> compacts;
  for (ThreadPool* p : pools) compacts.push_back(VecCompact(*cols, sels[0], p));
  ExpectColumnarBitIdentical(*compacts[0], *compacts[1], "compact serial/2");
  ExpectColumnarBitIdentical(*compacts[0], *compacts[2], "compact serial/8");

  // GroupBy: chunk-order partial-sum combination must be thread-invariant.
  const std::vector<AggSpec> aggs = {{AggKind::kSum, "x", "sx"},
                                     {AggKind::kAvg, "x", "ax"},
                                     {AggKind::kMin, "x", "mn"},
                                     {AggKind::kMax, "x", "mx"},
                                     {AggKind::kCount, "", "n"}};
  std::vector<std::shared_ptr<const ColumnarTable>> groups;
  for (ThreadPool* p : pools) {
    auto g = VecGroupBy(batch, {"k", "s"}, aggs, p);
    ASSERT_TRUE(g.ok());
    groups.push_back(std::move(g).value());
  }
  ExpectColumnarBitIdentical(*groups[0], *groups[1], "group-by serial/2");
  ExpectColumnarBitIdentical(*groups[0], *groups[2], "group-by serial/8");

  // HashJoin (self-join on the key column).
  std::vector<std::shared_ptr<const ColumnarTable>> joins;
  const auto right = BigMixedTable(3000);
  for (ThreadPool* p : pools) {
    auto j = VecHashJoin(batch, ColumnarBatch{right, {}, true}, {"k"}, {"k"},
                         p);
    ASSERT_TRUE(j.ok());
    joins.push_back(std::move(j).value());
  }
  ExpectColumnarBitIdentical(*joins[0], *joins[1], "join serial/2");
  ExpectColumnarBitIdentical(*joins[0], *joins[2], "join serial/8");
}

TEST(VecDeterminismTest, NestedLoopJoinBitIdenticalAcrossPoolSizes) {
  const auto left = BigMixedTable(9000);
  const auto right = BigMixedTable(40);
  ThreadPool pool2(2);
  ThreadPool pool8(8);
  std::vector<std::shared_ptr<const ColumnarTable>> outs;
  for (ThreadPool* p : {static_cast<ThreadPool*>(nullptr), &pool2, &pool8}) {
    auto j = VecNestedLoopJoin(*left, "x", CmpOp::kLt, *right, "x", p);
    ASSERT_TRUE(j.ok());
    outs.push_back(std::move(j).value());
  }
  ExpectColumnarBitIdentical(*outs[0], *outs[1], "nlj serial/2");
  ExpectColumnarBitIdentical(*outs[0], *outs[2], "nlj serial/8");
}

// ---------------------------------------------------------------------------
// Targeted semantics tests
// ---------------------------------------------------------------------------

TEST(VecOpsTest, GroupByEmptyInputProducesNoGroups) {
  Table t{Schema({{"k", DataType::kInt64}, {"x", DataType::kDouble}})};
  auto cols = t.ToColumnar();
  ASSERT_TRUE(cols.ok());
  auto g = VecGroupBy(ColumnarBatch{cols.value(), {}, true}, {},
                      {{AggKind::kCount, "", "n"}}, nullptr);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value()->num_rows(), 0u);
}

TEST(VecOpsTest, AggregatesOverAllNullGroupMatchRowSemantics) {
  Table t{Schema({{"k", DataType::kInt64}, {"x", DataType::kDouble}})};
  t.Append({Value(int64_t{1}), Value()});
  t.Append({Value(int64_t{1}), Value()});
  const std::vector<AggSpec> aggs = {{AggKind::kSum, "x", "s"},
                                     {AggKind::kAvg, "x", "a"},
                                     {AggKind::kMin, "x", "mn"},
                                     {AggKind::kCount, "", "n"}};
  auto ref = GroupBy(t, {"k"}, aggs);
  ASSERT_TRUE(ref.ok());
  auto cols = t.ToColumnar();
  ASSERT_TRUE(cols.ok());
  auto vec =
      VecGroupBy(ColumnarBatch{cols.value(), {}, true}, {"k"}, aggs, nullptr);
  ASSERT_TRUE(vec.ok());
  ExpectTablesIdentical(ref.value(), Table::FromColumnar(vec.value()),
                        "null aggregates");
  // SUM over an empty set is 0.0, AVG/MIN are null, COUNT counts rows.
  const Table& out = ref.value();
  EXPECT_TRUE(out.row(0)[1] == Value(0.0));
  EXPECT_TRUE(out.row(0)[2].is_null());
  EXPECT_TRUE(out.row(0)[3].is_null());
  EXPECT_TRUE(out.row(0)[4] == Value(int64_t{2}));
}

TEST(VecOpsTest, NullKeysNeverJoin) {
  Table l{Schema({{"k", DataType::kInt64}})};
  l.Append({Value()});
  l.Append({Value(int64_t{1})});
  Table r{Schema({{"k", DataType::kInt64}})};
  r.Append({Value()});
  r.Append({Value(int64_t{1})});
  auto lc = l.ToColumnar();
  auto rc = r.ToColumnar();
  ASSERT_TRUE(lc.ok() && rc.ok());
  auto j = VecHashJoin(ColumnarBatch{lc.value(), {}, true},
                       ColumnarBatch{rc.value(), {}, true}, {"k"}, {"k"},
                       nullptr);
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j.value()->num_rows(), 1u);  // only the 1=1 match
}

TEST(VecOpsTest, MismatchedKeyTypesProduceEmptyJoin) {
  Table l{Schema({{"k", DataType::kInt64}})};
  l.Append({Value(int64_t{1})});
  Table r{Schema({{"k", DataType::kDouble}})};
  r.Append({Value(1.0)});
  auto ref = HashJoin(l, r, {"k"}, {"k"});
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(ref.value().num_rows(), 0u);  // strict typing: 1 != 1.0 as keys
  auto lc = l.ToColumnar();
  auto rc = r.ToColumnar();
  auto j = VecHashJoin(ColumnarBatch{lc.value(), {}, true},
                       ColumnarBatch{rc.value(), {}, true}, {"k"}, {"k"},
                       nullptr);
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j.value()->num_rows(), 0u);
}

TEST(VecOpsTest, Int64FilterCoercesThroughDoubleAt2To53) {
  // 2^53 and 2^53+1 are the same double; the row path compares via
  // AsDouble(), so the vectorized path must collapse them too.
  const int64_t edge = int64_t{1} << 53;
  Table t{Schema({{"v", DataType::kInt64}})};
  t.Append({Value(edge)});
  t.Append({Value(edge + 1)});
  auto pred = ColumnCompare(t.schema(), "v", CmpOp::kEq, Value(edge));
  ASSERT_TRUE(pred.ok());
  Table ref = Filter(t, pred.value());
  EXPECT_EQ(ref.num_rows(), 2u);  // both "equal" after coercion
  auto cols = t.ToColumnar();
  ASSERT_TRUE(cols.ok());
  auto sel =
      VecFilter(*cols.value(), nullptr, "v", CmpOp::kEq, Value(edge), nullptr);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel.value().size(), 2u);
}

TEST(VecOpsTest, CrossTypePredicateFollowsValueRanking)
{
  // String column vs numeric literal: Value ranks numerics below strings,
  // so s > 5 is true for every non-null string and s < 5 is false.
  Table t{Schema({{"s", DataType::kString}})};
  t.Append({Value("a")});
  t.Append({Value()});
  auto cols = t.ToColumnar();
  ASSERT_TRUE(cols.ok());
  auto gt = VecFilter(*cols.value(), nullptr, "s", CmpOp::kGt,
                      Value(int64_t{5}), nullptr);
  auto lt = VecFilter(*cols.value(), nullptr, "s", CmpOp::kLt,
                      Value(int64_t{5}), nullptr);
  ASSERT_TRUE(gt.ok() && lt.ok());
  EXPECT_EQ(gt.value().size(), 1u);  // "a" only; null never matches
  EXPECT_EQ(lt.value().size(), 0u);
}

// ---------------------------------------------------------------------------
// Dictionary-code pushdown: string eq/ne runs as an integer compare on
// dictionary codes; the observable behavior must stay exactly the row
// path's, including literals absent from the dictionary and null cells.
// ---------------------------------------------------------------------------

TEST(DictPushdownTest, StringEqNeMatchesRowPath) {
  Table t{Schema({{"s", DataType::kString}, {"x", DataType::kInt64}})};
  for (int64_t i = 0; i < 300; ++i) {
    if (i % 7 == 0) {
      t.Append({Value(), Value(i)});  // null string cell
    } else {
      t.Append({Value(kStrings[i % 5]), Value(i)});
    }
  }
  auto cols = t.ToColumnar();
  ASSERT_TRUE(cols.ok());
  const ColumnarTable& ct = *cols.value();

  // A narrowing prefix filter to also exercise the selection-vector path.
  auto pre = VecFilter(ct, nullptr, "x", CmpOp::kLt, Value(int64_t{150}),
                       nullptr);
  ASSERT_TRUE(pre.ok());

  const Value literals[] = {Value("apple"), Value("durian"), Value(""),
                            Value("zed")};
  for (const Value& lit : literals) {
    for (CmpOp op : {CmpOp::kEq, CmpOp::kNe}) {
      auto pred = ColumnCompare(t.schema(), "s", op, lit);
      ASSERT_TRUE(pred.ok());
      // Dense path.
      auto sel = VecFilter(ct, nullptr, "s", op, lit, nullptr);
      ASSERT_TRUE(sel.ok());
      SelVector expect;
      for (size_t i = 0; i < t.num_rows(); ++i) {
        if (pred.value()(t.row(i))) expect.push_back(static_cast<uint32_t>(i));
      }
      EXPECT_EQ(sel.value(), expect)
          << "dense " << lit.ToString() << " op " << static_cast<int>(op);
      // Selection-vector path.
      auto sel2 = VecFilter(ct, &pre.value(), "s", op, lit, nullptr);
      ASSERT_TRUE(sel2.ok());
      SelVector expect2;
      for (uint32_t i : pre.value()) {
        if (pred.value()(t.row(i))) expect2.push_back(i);
      }
      EXPECT_EQ(sel2.value(), expect2)
          << "sel " << lit.ToString() << " op " << static_cast<int>(op);
    }
  }
}

// ---------------------------------------------------------------------------
// Cost-based join reordering, differentially against naive execution: the
// reordered plan must return the same bag of rows under the same schema,
// whatever order the optimizer picked.
// ---------------------------------------------------------------------------

std::vector<std::string> SortedRowStrings(const Table& t) {
  std::vector<std::string> out;
  out.reserve(t.num_rows());
  for (const Row& r : t.rows()) {
    std::string s;
    for (const Value& v : r) {
      s += v.ToString();
      s += '|';
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(ColumnarDifferentialTest, CostBasedReorderMatchesNaiveExecution) {
  Catalog::Global().ClearFeedback();
  Rng rng(2718);
  for (int iter = 0; iter < 200; ++iter) {
    // 2-4 relations with globally unique column names; table t carries an
    // int64 join key k<t> over a small domain so joins actually match.
    const size_t ntab = 2 + rng.NextBounded(3);
    std::vector<std::unique_ptr<Table>> tabs;
    for (size_t t = 0; t < ntab; ++t) {
      std::vector<ColumnSpec> specs;
      specs.push_back({"k" + std::to_string(t), DataType::kInt64});
      const size_t extra = rng.NextBounded(3);
      for (size_t c = 0; c < extra; ++c) {
        specs.push_back({"t" + std::to_string(t) + "c" + std::to_string(c),
                         RandomType(rng)});
      }
      auto tab = std::make_unique<Table>(Schema(specs));
      const size_t rows = rng.NextBounded(51);
      for (size_t i = 0; i < rows; ++i) {
        Row r;
        r.push_back(Value(static_cast<int64_t>(rng.NextBounded(8))));
        for (size_t c = 1; c < specs.size(); ++c) {
          r.push_back(
              RandomValueOfType(rng, specs[c].type, /*allow_null=*/true));
        }
        tab->Append(std::move(r));
      }
      tabs.push_back(std::move(tab));
    }
    // Tree-shaped cluster: each new relation joins the key of any earlier
    // one, so the reorderer sees chains, stars, and mixtures.
    PlanPtr plan = PlanNode::Scan(tabs[0].get(), "t0");
    for (size_t t = 1; t < ntab; ++t) {
      plan = PlanNode::Join(
          plan, PlanNode::Scan(tabs[t].get(), "t" + std::to_string(t)),
          {"k" + std::to_string(rng.NextBounded(t))},
          {"k" + std::to_string(t)});
    }
    if (rng.NextBounded(2) == 0) {
      const Table& ft = *tabs[rng.NextBounded(ntab)];
      plan = PlanNode::Filter(plan, {{RandomColumn(rng, ft, false),
                                      RandomOp(rng), RandomLiteral(rng)}});
    }
    auto opt = OptimizePlan(plan);
    ASSERT_TRUE(opt.ok()) << "iter " << iter;
    auto a = ExecutePlan(plan, nullptr);
    auto b = ExecutePlan(opt.value(), nullptr);
    ASSERT_EQ(a.ok(), b.ok()) << "iter " << iter;
    if (!a.ok()) continue;
    ASSERT_TRUE(a.value().schema() == b.value().schema())
        << "iter " << iter << ": " << a.value().schema().ToString() << " vs "
        << b.value().schema().ToString();
    ASSERT_EQ(SortedRowStrings(a.value()), SortedRowStrings(b.value()))
        << "iter " << iter;
  }
}

}  // namespace
}  // namespace mde::table
