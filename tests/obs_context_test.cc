#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/fault.h"
#include "mcdb/bundle.h"
#include "mcdb/mcdb.h"
#include "mcdb/vg_function.h"
#include "obs/context.h"
#include "obs/export.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "simsql/simsql.h"
#include "util/distributions.h"
#include "util/thread_pool.h"

namespace mde {
namespace {

using table::DataType;
using table::Row;
using table::Schema;
using table::Table;
using table::Value;

double CounterValue(const std::string& name) {
  for (const auto& m : obs::Registry::Global().Snapshot()) {
    if (m.name == name) return m.value;
  }
  return 0.0;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::in | std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// The paper's SBP stochastic table over `patients` outer rows (same shape
/// as the mcdb tests) — a real engine workload whose generation fans out
/// over a pool.
mcdb::MonteCarloDb MakeSbpDb(size_t patients) {
  mcdb::MonteCarloDb db;
  Table p{Schema({{"PID", DataType::kInt64}, {"GENDER", DataType::kString}})};
  for (size_t i = 0; i < patients; ++i) {
    p.Append({Value(static_cast<int64_t>(i)), Value(i % 2 ? "M" : "F")});
  }
  EXPECT_TRUE(db.AddTable("PATIENTS", std::move(p)).ok());
  Table param{
      Schema({{"MEAN", DataType::kDouble}, {"STD", DataType::kDouble}})};
  param.Append({Value(120.0), Value(9.0)});
  EXPECT_TRUE(db.AddTable("SBP_PARAM", std::move(param)).ok());

  mcdb::StochasticTableSpec spec;
  spec.name = "SBP_DATA";
  spec.outer_table = "PATIENTS";
  spec.vg = std::make_shared<mcdb::NormalVg>();
  spec.param_binder = [](const Row&, const mcdb::DatabaseInstance& det)
      -> Result<Row> {
    const Table& param = det.at("SBP_PARAM");
    return Row{param.row(0)[0], param.row(0)[1]};
  };
  spec.output_schema = Schema({{"PID", DataType::kInt64},
                               {"GENDER", DataType::kString},
                               {"SBP", DataType::kDouble}});
  spec.projector = [](const Row& outer, const Row& vg) {
    return Row{outer[0], outer[1], vg[0]};
  };
  EXPECT_TRUE(db.AddStochasticTable(std::move(spec)).ok());
  return db;
}

simsql::ChainTableSpec MakeWalkerSpec(size_t walkers) {
  simsql::ChainTableSpec spec;
  spec.name = "WALKERS";
  spec.init = [walkers](const simsql::DatabaseState&,
                        Rng&) -> Result<Table> {
    Table t{Schema({{"id", DataType::kInt64}, {"pos", DataType::kDouble}})};
    for (size_t i = 0; i < walkers; ++i) {
      t.Append({Value(static_cast<int64_t>(i)), Value(0.0)});
    }
    return t;
  };
  spec.transition = [](const simsql::DatabaseState& prev,
                       const simsql::DatabaseState&,
                       Rng& rng) -> Result<Table> {
    const Table& old = prev.at("WALKERS");
    Table t(old.schema());
    for (const Row& r : old.rows()) {
      t.Append({r[0], Value(r[1].AsDouble() + SampleStandardNormal(rng))});
    }
    return t;
  };
  return spec;
}

// ---------------------------------------------------------------------------
// Context propagation across the pool.
// ---------------------------------------------------------------------------

TEST(ObsContextTest, InactiveByDefault) {
  const obs::Context& ctx = obs::CurrentContext();
  EXPECT_FALSE(ctx.active());
  EXPECT_EQ(ctx.stats, nullptr);
}

TEST(ObsContextTest, QueryScopeInstallsAndRestores) {
  {
    MDE_OBS_QUERY_SCOPE("test.scope", 0x1234u);
    const obs::Context& ctx = obs::CurrentContext();
    EXPECT_TRUE(ctx.active());
    EXPECT_EQ(ctx.fingerprint, 0x1234u);
    ASSERT_NE(ctx.stats, nullptr);
    EXPECT_STREQ(ctx.tag, "test.scope");
  }
  EXPECT_FALSE(obs::CurrentContext().active());
}

TEST(ObsContextTest, KillSwitchMakesQueryScopeNoOp) {
  ASSERT_TRUE(obs::AttributionEnabled());
  obs::SetAttributionEnabled(false);
  {
    MDE_OBS_QUERY_SCOPE("test.killed", 0x5678u);
    // No context installed: downstream attr adds and context-gated spans
    // all take their inactive fast path.
    EXPECT_FALSE(obs::CurrentContext().active());
    EXPECT_EQ(obs::CurrentContext().stats, nullptr);
  }
  obs::SetAttributionEnabled(true);
  {
    MDE_OBS_QUERY_SCOPE("test.revived", 0x5678u);
    EXPECT_TRUE(obs::CurrentContext().active());
  }
  EXPECT_FALSE(obs::CurrentContext().active());
}

TEST(ObsContextTest, NestedScopeAdoptsOuterQuery) {
  obs::QueryScope outer("outer.query", 1u);
  const uint64_t outer_trace = obs::CurrentContext().trace_id;
  obs::QueryStats* outer_stats = obs::CurrentContext().stats;
  {
    obs::QueryScope inner("inner.query", 2u);
    EXPECT_TRUE(inner.adopted());
    // The inner engine call attributes to the OUTER query.
    EXPECT_EQ(obs::CurrentContext().trace_id, outer_trace);
    EXPECT_EQ(obs::CurrentContext().stats, outer_stats);
  }
  EXPECT_EQ(obs::CurrentContext().trace_id, outer_trace);
}

TEST(ObsContextTest, ContextPropagatesThroughSubmit) {
  ThreadPool pool(4);
  MDE_OBS_QUERY_SCOPE("test.submit", 0x77u);
  const uint64_t root_trace = obs::CurrentContext().trace_id;
  obs::QueryStats* root_stats = obs::CurrentContext().stats;
  std::atomic<uint64_t> wrong_trace{0};
  std::atomic<uint64_t> wrong_stats{0};
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&] {
      const obs::Context& ctx = obs::CurrentContext();
      if (ctx.trace_id != root_trace) ++wrong_trace;
      if (ctx.stats != root_stats) ++wrong_stats;
    });
  }
  pool.WaitAll();
  EXPECT_EQ(wrong_trace.load(), 0u);
  EXPECT_EQ(wrong_stats.load(), 0u);
}

TEST(ObsContextTest, ContextPropagatesThroughNestedParallelFor) {
  ThreadPool pool(4);
  MDE_OBS_QUERY_SCOPE("test.nested", 0x99u);
  const uint64_t root_trace = obs::CurrentContext().trace_id;
  std::atomic<uint64_t> wrong{0};
  pool.ParallelFor(8, 1, [&](size_t) {
    if (obs::CurrentContext().trace_id != root_trace) ++wrong;
    // Nested fan-out from inside a pool task (help-run path): the context
    // must survive the second hop too.
    pool.ParallelFor(8, 1, [&](size_t) {
      if (obs::CurrentContext().trace_id != root_trace) ++wrong;
    });
  });
  EXPECT_EQ(wrong.load(), 0u);
}

TEST(ObsContextTest, TaskCountsAttributed) {
  obs::AttributionTable::Global().Reset();
  ThreadPool pool(2);
  obs::QueryStats* stats = nullptr;
  {
    MDE_OBS_QUERY_SCOPE("test.tasks", 0xabcu);
    stats = obs::CurrentContext().stats;
    for (int i = 0; i < 10; ++i) pool.Submit([] {});
    pool.WaitAll();
  }
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->tasks.load(), 10u);
}

// ---------------------------------------------------------------------------
// Span parentage across the pool (one connected flame per query).
// ---------------------------------------------------------------------------

TEST(ObsContextTest, SpanParentageAndContainmentAcrossPool) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Enable();
  ThreadPool pool(4);

  bool cross_thread_seen = false;
  // The cross-thread assertion needs a worker to actually pick up a chunk;
  // retry the (cheap) fan-out rather than tolerate a scheduling flake.
  for (int attempt = 0; attempt < 5 && !cross_thread_seen; ++attempt) {
    tracer.Clear();
    {
      MDE_OBS_QUERY_SCOPE("test.flame", 0x5eedu);
      MDE_TRACE_SPAN("test.root");
      pool.ParallelFor(64, 1, [&](size_t) {
        MDE_TRACE_SPAN("test.child");
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      });
    }
    const std::vector<obs::TraceEvent> events = tracer.Collect();
    const obs::TraceEvent* root = nullptr;
    std::map<uint64_t, const obs::TraceEvent*> by_span;
    for (const auto& e : events) {
      if (std::strcmp(e.name, "test.root") == 0) root = &e;
      if (e.span_id != 0) by_span[e.span_id] = &e;
    }
    ASSERT_NE(root, nullptr);
    EXPECT_NE(root->trace_id, 0u);
    EXPECT_NE(root->span_id, 0u);
    size_t children = 0;
    for (const auto& e : events) {
      if (std::strcmp(e.name, "test.child") != 0) continue;
      ++children;
      // Same query, contained in the root's interval, and connected: the
      // parent chain (which may pass through the pool's own spans, e.g.
      // pool.parallel_for) must resolve event-by-event up to the root —
      // regardless of which worker (or the caller) ran the chunk.
      EXPECT_EQ(e.trace_id, root->trace_id);
      EXPECT_GE(e.ts_ns, root->ts_ns);
      EXPECT_LE(e.ts_ns + e.dur_ns, root->ts_ns + root->dur_ns);
      uint64_t parent = e.parent_span_id;
      int hops = 0;
      while (parent != root->span_id && hops < 10) {
        const auto it = by_span.find(parent);
        ASSERT_NE(it, by_span.end())
            << "dangling parent_span_id " << parent;
        parent = it->second->parent_span_id;
        ++hops;
      }
      EXPECT_EQ(parent, root->span_id);
      if (e.tid != root->tid) cross_thread_seen = true;
    }
    EXPECT_EQ(children, 64u);
  }
  EXPECT_TRUE(cross_thread_seen);
  tracer.Disable();
  tracer.Clear();
}

TEST(ObsContextTest, ChromeTraceHasThreadMetadataAndFlows) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Enable();
  tracer.Clear();
  obs::SetCurrentThreadName("driver");
  ThreadPool pool(2);
  {
    MDE_OBS_QUERY_SCOPE("test.chrome", 0xc2u);
    MDE_TRACE_SPAN("test.root");
    pool.ParallelFor(32, 1, [&](size_t) {
      MDE_TRACE_SPAN("test.child");
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    });
  }
  const std::string json = tracer.ChromeTraceJson();
  tracer.Disable();
  tracer.Clear();
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("worker-0"), std::string::npos);
  EXPECT_NE(json.find("worker-1"), std::string::npos);
  EXPECT_NE(json.find("driver"), std::string::npos);
  // Span ids ride in args on every in-query slice.
  EXPECT_NE(json.find("\"trace_id\""), std::string::npos);
  EXPECT_NE(json.find("\"parent_span_id\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Determinism: attribution + tracing never change engine output.
// ---------------------------------------------------------------------------

TEST(ObsContextTest, BundleGenerationBitIdenticalAcrossThreadCounts) {
  obs::Tracer::Global().Enable();
  mcdb::MonteCarloDb db = MakeSbpDb(500);
  constexpr size_t kReps = 64;

  std::vector<std::vector<double>> sums;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    ThreadPool pool(threads);
    auto bundles = mcdb::GenerateBundles(db, db.stochastic_specs()[0], "SBP",
                                         kReps, /*seed=*/13, &pool);
    ASSERT_TRUE(bundles.ok());
    auto agg = bundles.value().AggregateSum("SBP");
    ASSERT_TRUE(agg.ok());
    sums.push_back(std::move(agg).value());
  }
  obs::Tracer::Global().Disable();
  obs::Tracer::Global().Clear();

  ASSERT_EQ(sums[0].size(), kReps);
  // Bitwise, not approximate: memcmp over the IEEE-754 payloads.
  EXPECT_EQ(std::memcmp(sums[0].data(), sums[1].data(),
                        kReps * sizeof(double)),
            0);
  EXPECT_EQ(std::memcmp(sums[0].data(), sums[2].data(),
                        kReps * sizeof(double)),
            0);
}

// ---------------------------------------------------------------------------
// Attribution table: reconciliation and bounds.
// ---------------------------------------------------------------------------

TEST(ObsContextTest, CpuNsReconcilesWithGlobalCounter) {
  obs::AttributionTable::Global().Reset();
  const double before = CounterValue("attr.cpu_ns");
  {
    ThreadPool pool(4);
    mcdb::MonteCarloDb db = MakeSbpDb(400);
    auto bundles = mcdb::GenerateBundles(db, db.stochastic_specs()[0], "SBP",
                                         32, /*seed=*/7, &pool);
    ASSERT_TRUE(bundles.ok());
    MDE_OBS_QUERY_SCOPE("test.extra", 0xfeedu);
    pool.ParallelFor(128, 1, [](size_t) {
      volatile double x = 0.0;
      for (int k = 0; k < 500; ++k) x = x + static_cast<double>(k);
      (void)x;
    });
  }
  const double after = CounterValue("attr.cpu_ns");
  uint64_t table_sum = 0;
  for (const auto& row : obs::AttributionTable::Global().Snapshot()) {
    table_sum += row.cpu_ns;
  }
  // The attribution increments are placed at exactly the same sites as the
  // global counter's, so after a Reset the two agree EXACTLY — far inside
  // the ±1% reconciliation budget.
  EXPECT_GT(table_sum, 0u);
  EXPECT_EQ(static_cast<double>(table_sum), after - before);
}

TEST(ObsContextTest, AttributionRowsCarryEngineResources) {
  obs::AttributionTable::Global().Reset();
  ThreadPool pool(2);
  mcdb::MonteCarloDb db = MakeSbpDb(600);
  constexpr size_t kReps = 16;
  auto bundles = mcdb::GenerateBundles(db, db.stochastic_specs()[0], "SBP",
                                       kReps, /*seed=*/3, &pool);
  ASSERT_TRUE(bundles.ok());
  // The chunk-helper tasks have finished their chunks by return, but their
  // ContextGuards (which close out the per-task accounting) may still be
  // unwinding; WaitAll joins them before the snapshot.
  pool.WaitAll();
  const auto rows = obs::AttributionTable::Global().Snapshot();
  const obs::AttributionTable::Row* gen = nullptr;
  for (const auto& r : rows) {
    if (r.tag == "mcdb.generate") gen = &r;
  }
  ASSERT_NE(gen, nullptr);
  EXPECT_EQ(gen->vg_draws, 600u * kReps);
  EXPECT_GT(gen->bundle_bytes, 0u);
  EXPECT_GT(gen->tasks, 0u);
  EXPECT_GT(gen->cpu_ns, 0u);
}

TEST(ObsContextTest, AttributionTableBoundedWithEviction) {
  obs::AttributionTable& table = obs::AttributionTable::Global();
  table.Reset();
  const uint64_t table_evictions_before = table.evictions();
  const double evictions_before = CounterValue("attr.evictions");
  for (uint64_t fp = 1; fp <= 300; ++fp) {
    obs::QueryScope scope("test.flood", fp);
  }
  EXPECT_EQ(table.size(), obs::AttributionTable::kMaxEntries);
  EXPECT_EQ(table.evictions() - table_evictions_before,
            300 - obs::AttributionTable::kMaxEntries);
  EXPECT_EQ(CounterValue("attr.evictions") - evictions_before,
            static_cast<double>(300 - obs::AttributionTable::kMaxEntries));
  // Re-acquiring a surviving fingerprint reuses its row, no eviction.
  const uint64_t ev = table.evictions();
  obs::QueryScope again("test.flood", 300);
  EXPECT_EQ(table.evictions(), ev);
}

// ---------------------------------------------------------------------------
// Worker stats and export surfaces.
// ---------------------------------------------------------------------------

TEST(ObsContextTest, WorkerQueueDepthSnapshot) {
  ThreadPool pool(2);
  std::atomic<int> entered{0};
  std::atomic<bool> release{false};
  for (int i = 0; i < 2; ++i) {
    pool.Submit([&] {
      ++entered;
      while (!release.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }
  while (entered.load() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Both workers are parked in the gate tasks; these six can only queue.
  for (int i = 0; i < 6; ++i) pool.Submit([] {});
  auto stats = pool.WorkerStatsSnapshot();
  ASSERT_EQ(stats.size(), 2u);
  uint64_t queued = 0;
  for (const auto& s : stats) queued += s.queue_depth;
  EXPECT_EQ(queued, 6u);
  release.store(true);
  pool.WaitAll();
  stats = pool.WorkerStatsSnapshot();
  queued = 0;
  for (const auto& s : stats) queued += s.queue_depth;
  EXPECT_EQ(queued, 0u);
}

TEST(ObsContextTest, PrometheusExportsQueueDepthAndAttribution) {
  obs::AttributionTable::Global().Reset();
  ThreadPool pool(2);
  {
    MDE_OBS_QUERY_SCOPE("test.prom", 0xbeefu);
    pool.ParallelFor(32, 1, [](size_t) {});
  }
  // The no-arg overload runs the pool's sample hook (publishing the
  // per-worker queue_depth gauges) and appends the labeled attribution
  // families.
  const std::string text = obs::PrometheusText();
  EXPECT_NE(text.find("pool_worker_0_queue_depth"), std::string::npos);
  EXPECT_NE(text.find("pool_worker_1_queue_depth"), std::string::npos);
  EXPECT_NE(text.find("mde_query_cpu_ns{query=\"0x"), std::string::npos);
  EXPECT_NE(text.find("tag=\"test.prom\""), std::string::npos);
  // The snapshot overload must stay label-free (golden-format contract).
  const std::string plain =
      obs::PrometheusText(obs::Registry::Global().Snapshot());
  EXPECT_EQ(plain.find("mde_query_cpu_ns"), std::string::npos);
}

TEST(ObsContextTest, SamplerJsonlCarriesQueriesAndReportRendersThem) {
  obs::AttributionTable::Global().Reset();
  const std::string path = ::testing::TempDir() + "/obs_ctx_metrics.jsonl";
  std::remove(path.c_str());
  {
    obs::SamplerOptions opts;
    opts.path = path;
    opts.period = std::chrono::milliseconds(500);
    obs::Sampler sampler(opts);
    ASSERT_TRUE(sampler.ok());
    ThreadPool pool(2);
    mcdb::MonteCarloDb db = MakeSbpDb(200);
    auto bundles = mcdb::GenerateBundles(db, db.stochastic_specs()[0], "SBP",
                                         16, /*seed=*/5, &pool);
    ASSERT_TRUE(bundles.ok());
  }  // Sampler dtor writes the final record.
  const std::string jsonl = ReadFile(path);
  ASSERT_FALSE(jsonl.empty());
  EXPECT_NE(jsonl.find("\"queries\":{"), std::string::npos);
  EXPECT_NE(jsonl.find("\"tag\":\"mcdb.generate\""), std::string::npos);
  std::string report;
  std::string error;
  ASSERT_TRUE(obs::RenderRunReport("", jsonl, obs::RunReportOptions{},
                                   &report, &error))
      << error;
  EXPECT_NE(report.find("Per-query attribution"), std::string::npos);
  EXPECT_NE(report.find("mcdb.generate"), std::string::npos);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Flight recorder.
// ---------------------------------------------------------------------------

TEST(ObsContextTest, FlightDumpParsesViaReport) {
  const std::string path = ::testing::TempDir() + "/obs_ctx_flight.json";
  std::remove(path.c_str());
  {
    MDE_OBS_QUERY_SCOPE("test.flight", 0xf11e11u);
    MDE_TRACE_SPAN("test.flight_span");
    ASSERT_TRUE(
        obs::FlightRecorder::Global().DumpToFile(path, "unit-test"));
  }
  const std::string json = ReadFile(path);
  ASSERT_FALSE(json.empty());
  std::string report;
  std::string error;
  ASSERT_TRUE(obs::RenderFlightReport(json, obs::RunReportOptions{}, &report,
                                      &error))
      << error;
  EXPECT_NE(report.find("unit-test"), std::string::npos);
  EXPECT_NE(report.find("test.flight_span"), std::string::npos);
  EXPECT_NE(report.find("test.flight"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ObsContextTest, FaultInjectedCrashLeavesParseableDump) {
  const std::string path = ::testing::TempDir() + "/obs_ctx_fault_flight.json";
  std::remove(path.c_str());
  ::setenv("MDE_FLIGHT_PATH", path.c_str(), 1);

  ckpt::FaultInjector::Config cfg;
  cfg.enabled = true;
  cfg.point = "simsql.version";
  cfg.fire_at_hit = 3;
  ckpt::FaultInjector::Global().Configure(cfg);

  simsql::MarkovChainDb db;
  ASSERT_TRUE(db.AddChainTable(MakeWalkerSpec(10)).ok());
  simsql::ChainRunner runner(db, /*steps=*/8, /*seed=*/21, /*rep=*/0);
  bool fired = false;
  try {
    while (!runner.Done()) {
      ASSERT_TRUE(runner.StepOnce().ok());
    }
  } catch (const ckpt::FaultInjected&) {
    fired = true;
  }
  ckpt::FaultInjector::Global().Configure(ckpt::FaultInjector::Config{});
  ::unsetenv("MDE_FLIGHT_PATH");
  ASSERT_TRUE(fired);

  const std::string json = ReadFile(path);
  ASSERT_FALSE(json.empty());
  std::string report;
  std::string error;
  ASSERT_TRUE(obs::RenderFlightReport(json, obs::RunReportOptions{}, &report,
                                      &error))
      << error;
  EXPECT_NE(report.find("fault:simsql.version"), std::string::npos);
  // The chain's query context was live at the fault site.
  EXPECT_NE(report.find("simsql.chain"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ObsContextTest, FlightDumpWithoutRegistrySectionsStillParses) {
  // The signal-path dump omits counters/gauges; the parser must treat them
  // as optional.
  const std::string json =
      "{\"flight\":{\"version\":1,\"reason\":\"signal:SIGSEGV\","
      "\"contexts\":[{\"thread\":\"driver\",\"trace_id\":7,"
      "\"fingerprint\":\"0xabc\",\"tag\":\"t\"}],"
      "\"spans\":[{\"thread\":\"driver\",\"name\":\"s\",\"ts_ns\":1,"
      "\"trace_id\":7,\"span_id\":8,\"parent_span_id\":0}]}}";
  std::string report;
  std::string error;
  ASSERT_TRUE(obs::RenderFlightReport(json, obs::RunReportOptions{}, &report,
                                      &error))
      << error;
  EXPECT_NE(report.find("signal:SIGSEGV"), std::string::npos);
  EXPECT_EQ(report.find("Counters at dump"), std::string::npos);
}

}  // namespace
}  // namespace mde
