#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/fault.h"
#include "ckpt/recovery.h"
#include "ckpt/snapshot.h"
#include "obs/stat.h"
#include "util/rng.h"

namespace mde::ckpt {
namespace {

// ---------------------------------------------------------------------------
// Snapshot container format.
// ---------------------------------------------------------------------------

TEST(SnapshotTest, RoundTripsTypedSections) {
  SnapshotWriter w("unit");
  SectionWriter* a = w.AddSection("alpha");
  a->PutU8(7);
  a->PutBool(true);
  a->PutU32(0xdeadbeef);
  a->PutU64(0x1122334455667788ULL);
  a->PutI64(-42);
  a->PutDouble(3.14159);
  a->PutString("hello");
  SectionWriter* b = w.AddSection("beta");
  b->PutDoubleVec({1.5, -2.5, 0.0});
  b->PutSizeVec({9, 8, 7});
  b->PutU64Vec({1, 2});
  const std::string bytes = w.Finish();

  auto snap = SnapshotReader::Parse(bytes);
  ASSERT_TRUE(snap.ok()) << snap.status().message();
  EXPECT_EQ(snap.value().engine(), "unit");
  EXPECT_TRUE(snap.value().has_section("alpha"));
  EXPECT_TRUE(snap.value().has_section("beta"));
  EXPECT_FALSE(snap.value().has_section("gamma"));

  auto ra = snap.value().section("alpha");
  ASSERT_TRUE(ra.ok());
  SectionReader& r = ra.value();
  EXPECT_EQ(r.U8(), 7u);
  EXPECT_TRUE(r.Bool());
  EXPECT_EQ(r.U32(), 0xdeadbeefu);
  EXPECT_EQ(r.U64(), 0x1122334455667788ULL);
  EXPECT_EQ(r.I64(), -42);
  EXPECT_DOUBLE_EQ(r.Double(), 3.14159);
  EXPECT_EQ(r.String(), "hello");
  EXPECT_TRUE(r.ExpectEnd().ok());

  auto rb = snap.value().section("beta");
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(rb.value().DoubleVec(), (std::vector<double>{1.5, -2.5, 0.0}));
  EXPECT_EQ(rb.value().SizeVec(), (std::vector<size_t>{9, 8, 7}));
  EXPECT_EQ(rb.value().U64Vec(), (std::vector<uint64_t>{1, 2}));
  EXPECT_TRUE(rb.value().ExpectEnd().ok());
}

TEST(SnapshotTest, DoublesAreBitExact) {
  // Values with no short decimal representation must survive exactly.
  const double v = 0.1 + 0.2;  // 0.30000000000000004
  SnapshotWriter w("unit");
  w.AddSection("s")->PutDouble(v);
  auto snap = SnapshotReader::Parse(w.Finish());
  ASSERT_TRUE(snap.ok());
  auto r = snap.value().section("s");
  ASSERT_TRUE(r.ok());
  const double back = r.value().Double();
  EXPECT_EQ(std::memcmp(&back, &v, sizeof v), 0);
}

TEST(SnapshotTest, DetectsCorruptionViaCrc) {
  SnapshotWriter w("unit");
  w.AddSection("s")->PutU64(12345);
  std::string bytes = w.Finish();
  // Flip one payload bit.
  bytes[bytes.size() / 2] ^= 0x01;
  auto snap = SnapshotReader::Parse(bytes);
  ASSERT_FALSE(snap.ok());
  EXPECT_EQ(snap.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SnapshotTest, RejectsBadMagicAndTruncation) {
  SnapshotWriter w("unit");
  w.AddSection("s")->PutU64(1);
  std::string bytes = w.Finish();

  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_EQ(SnapshotReader::Parse(bad_magic).status().code(),
            StatusCode::kInvalidArgument);

  EXPECT_FALSE(SnapshotReader::Parse(bytes.substr(0, 10)).ok());
  EXPECT_FALSE(SnapshotReader::Parse("").ok());
}

TEST(SnapshotTest, MissingSectionIsNotFound) {
  SnapshotWriter w("unit");
  w.AddSection("present")->PutU8(1);
  auto snap = SnapshotReader::Parse(w.Finish());
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap.value().section("absent").status().code(),
            StatusCode::kNotFound);
}

TEST(SnapshotTest, ReaderLatchesOutOfBoundsReads) {
  SnapshotWriter w("unit");
  w.AddSection("s")->PutU8(5);
  auto snap = SnapshotReader::Parse(w.Finish());
  ASSERT_TRUE(snap.ok());
  auto r = snap.value().section("s");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().U8(), 5u);
  // Past the end: zero values, latched error, ExpectEnd fails too.
  EXPECT_EQ(r.value().U64(), 0u);
  EXPECT_DOUBLE_EQ(r.value().Double(), 0.0);
  EXPECT_FALSE(r.value().status().ok());
  EXPECT_FALSE(r.value().ExpectEnd().ok());
}

TEST(SnapshotTest, ExpectEndFailsOnTrailingBytes) {
  SnapshotWriter w("unit");
  SectionWriter* s = w.AddSection("s");
  s->PutU8(1);
  s->PutU8(2);
  auto snap = SnapshotReader::Parse(w.Finish());
  ASSERT_TRUE(snap.ok());
  auto r = snap.value().section("s");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().U8(), 1u);
  EXPECT_FALSE(r.value().ExpectEnd().ok());
}

TEST(SnapshotTest, RngStateRoundTripContinuesIdentically) {
  Rng rng(123);
  for (int i = 0; i < 100; ++i) rng.Next();
  SnapshotWriter w("unit");
  w.AddSection("rng")->PutRngState(rng.state());
  const std::string bytes = w.Finish();

  // Continue the original...
  std::vector<uint64_t> expected;
  for (int i = 0; i < 50; ++i) expected.push_back(rng.Next());
  // ...and a restored copy: identical stream.
  auto snap = SnapshotReader::Parse(bytes);
  ASSERT_TRUE(snap.ok());
  auto r = snap.value().section("rng");
  ASSERT_TRUE(r.ok());
  Rng restored(0);
  restored.set_state(r.value().RngState());
  for (int i = 0; i < 50; ++i) EXPECT_EQ(restored.Next(), expected[i]);
}

TEST(SnapshotTest, AtomicFileWriteRoundTrips) {
  const std::string path = ::testing::TempDir() + "/ckpt_test_snapshot.bin";
  SnapshotWriter w("unit");
  w.AddSection("s")->PutDouble(2.5);
  const std::string bytes = w.Finish();
  ASSERT_TRUE(WriteFileAtomic(path, bytes).ok());
  auto back = ReadFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), bytes);
  std::remove(path.c_str());
  EXPECT_EQ(ReadFile(path).status().code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// Accumulator serialization: restore + continue == uninterrupted, exactly.
// ---------------------------------------------------------------------------

TEST(StatSerializationTest, WelfordRoundTripIsExact) {
  obs::Welford full, half;
  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.NextDouble() * 100.0 - 50.0;
    full.Add(x);
    half.Add(x);
  }
  obs::Welford restored;
  restored.set_state(half.state());
  Rng rng2(77);
  for (int i = 0; i < 500; ++i) {
    const double x = rng2.NextDouble();
    full.Add(x);
    restored.Add(x);
  }
  EXPECT_EQ(restored.count(), full.count());
  EXPECT_EQ(restored.mean(), full.mean());          // bit-exact, not NEAR
  EXPECT_EQ(restored.variance(), full.variance());  // bit-exact
}

TEST(StatSerializationTest, P2QuantileRoundTripIsExact) {
  obs::P2Quantile full(0.9), half(0.9);
  Rng rng(13);
  for (int i = 0; i < 200; ++i) {
    const double x = rng.NextDouble();
    full.Add(x);
    half.Add(x);
  }
  obs::P2Quantile restored(0.9);
  restored.set_state(half.state());
  Rng rng2(14);
  for (int i = 0; i < 200; ++i) {
    const double x = rng2.NextDouble();
    full.Add(x);
    restored.Add(x);
  }
  EXPECT_EQ(restored.count(), full.count());
  EXPECT_EQ(restored.Value(), full.Value());  // bit-exact
}

TEST(StatSerializationTest, P2QuantileRoundTripBeforeFiveObservations) {
  // The sketch is in its exact warm-up phase below five observations; the
  // state must capture that too.
  obs::P2Quantile a(0.5);
  a.Add(3.0);
  a.Add(1.0);
  obs::P2Quantile b(0.5);
  b.set_state(a.state());
  for (double x : {2.0, 5.0, 4.0, 0.5}) {
    a.Add(x);
    b.Add(x);
  }
  EXPECT_EQ(a.Value(), b.Value());
}

TEST(StatSerializationTest, ConvergenceMonitorRoundTripKeepsVerdict) {
  obs::ConvergenceMonitor a("", /*window=*/3);
  a.Add(10.0);
  a.Add(10.0);
  a.Add(10.0);
  a.Add(10.0);  // no improvement over a full window -> stalled
  ASSERT_EQ(a.verdict(), obs::ConvergenceMonitor::Verdict::kStalled);
  obs::ConvergenceMonitor b("", /*window=*/3);
  b.set_state(a.state());
  EXPECT_EQ(b.verdict(), a.verdict());
  EXPECT_EQ(b.count(), a.count());
  EXPECT_EQ(b.best(), a.best());
  a.Add(1.0);
  b.Add(1.0);
  EXPECT_EQ(b.verdict(), a.verdict());
}

TEST(StatSerializationTest, CiMonitorRoundTripIsExact) {
  obs::CiMonitor a;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) a.Add(x);
  obs::CiMonitor b;
  b.set_state(a.state());
  a.Add(6.0);
  b.Add(6.0);
  EXPECT_EQ(a.half_width(), b.half_width());
  EXPECT_EQ(a.mean(), b.mean());
}

// ---------------------------------------------------------------------------
// Fault injection.
// ---------------------------------------------------------------------------

TEST(FaultInjectorTest, FiresExactlyAtConfiguredHit) {
  FaultInjector inj;
  FaultInjector::Config c;
  c.enabled = true;
  c.fire_at_hit = 3;
  inj.Configure(c);
  EXPECT_FALSE(inj.ShouldFail("p"));
  EXPECT_FALSE(inj.ShouldFail("p"));
  EXPECT_TRUE(inj.ShouldFail("p"));
  // max_faults defaults to 1: quiet afterwards.
  EXPECT_FALSE(inj.ShouldFail("p"));
  EXPECT_EQ(inj.faults_fired(), 1u);
  EXPECT_EQ(inj.hits("p"), 4u);
}

TEST(FaultInjectorTest, PointFilterScopesInjection) {
  FaultInjector inj;
  FaultInjector::Config c;
  c.enabled = true;
  c.point = "dsgd.round";
  c.fire_at_hit = 1;
  inj.Configure(c);
  EXPECT_FALSE(inj.ShouldFail("smc.step"));  // different point: never fires
  EXPECT_TRUE(inj.ShouldFail("dsgd.round"));
}

TEST(FaultInjectorTest, ProbabilityModeIsDeterministicPerSeed) {
  auto schedule = [](uint64_t seed) {
    FaultInjector inj;
    FaultInjector::Config c;
    c.enabled = true;
    c.probability = 0.3;
    c.seed = seed;
    c.max_faults = 1000;
    inj.Configure(c);
    std::vector<bool> fires;
    for (int i = 0; i < 100; ++i) fires.push_back(inj.ShouldFail("p"));
    return fires;
  };
  EXPECT_EQ(schedule(42), schedule(42));  // reproducible
  EXPECT_NE(schedule(42), schedule(43));  // seed-dependent
}

TEST(FaultInjectorTest, MaybeFailThrowsFaultInjected) {
  FaultInjector inj;
  FaultInjector::Config c;
  c.enabled = true;
  c.fire_at_hit = 1;
  inj.Configure(c);
  try {
    inj.MaybeFail("unit.point");
    FAIL() << "expected FaultInjected";
  } catch (const FaultInjected& e) {
    EXPECT_EQ(e.point(), "unit.point");
    EXPECT_EQ(e.hit(), 1u);
  }
}

TEST(FaultInjectorTest, FromEnvParsesKnobs) {
  ::setenv("MDE_FAULT_POINT", "dsgd.round", 1);
  ::setenv("MDE_FAULT_AT", "5", 1);
  ::setenv("MDE_FAULT_MAX", "2", 1);
  const FaultInjector::Config c = FaultInjector::FromEnv();
  EXPECT_TRUE(c.enabled);
  EXPECT_EQ(c.point, "dsgd.round");
  EXPECT_EQ(c.fire_at_hit, 5u);
  EXPECT_EQ(c.max_faults, 2u);
  ::unsetenv("MDE_FAULT_POINT");
  ::unsetenv("MDE_FAULT_AT");
  ::unsetenv("MDE_FAULT_MAX");
  const FaultInjector::Config off = FaultInjector::FromEnv();
  EXPECT_FALSE(off.enabled);
}

TEST(RetryPolicyTest, BackoffGrowsGeometrically) {
  RetryPolicy p;
  p.backoff_initial_ms = 2.0;
  p.backoff_factor = 3.0;
  EXPECT_DOUBLE_EQ(p.BackoffMs(0), 2.0);
  EXPECT_DOUBLE_EQ(p.BackoffMs(1), 6.0);
  EXPECT_DOUBLE_EQ(p.BackoffMs(2), 18.0);
}

TEST(RetryPolicyTest, RetriesTransientFaultsThenSucceeds) {
  RetryPolicy p;
  p.max_retries = 3;
  p.sleep = false;
  int calls = 0;
  const Status st = p.Run("unit", [&]() -> Status {
    if (++calls < 3) throw FaultInjected("unit", calls);
    return Status::OK();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 3);
}

TEST(RetryPolicyTest, ExhaustsRetryBudget) {
  RetryPolicy p;
  p.max_retries = 2;
  p.sleep = false;
  int calls = 0;
  const Status st = p.Run("unit", [&]() -> Status {
    throw FaultInjected("unit", ++calls);
  });
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_EQ(calls, 3);  // initial attempt + 2 retries
}

// ---------------------------------------------------------------------------
// RunWithRecovery on a toy engine.
// ---------------------------------------------------------------------------

/// Deterministic accumulator: each step folds one RNG draw into a running
/// sum. Complete state = (cursor, sum, rng), so restore + replay is exact.
class ToyEngine : public Checkpointable {
 public:
  explicit ToyEngine(size_t steps) : steps_(steps), rng_(99) {}

  std::string engine_name() const override { return "toy"; }
  bool Done() const override { return i_ >= steps_; }
  Status StepOnce() override {
    if (Done()) return Status::FailedPrecondition("done");
    MDE_FAULT_POINT("toy.step");
    sum_ += rng_.NextDouble();
    ++i_;
    return Status::OK();
  }
  Result<std::string> Save() const override {
    SnapshotWriter w(engine_name());
    SectionWriter* s = w.AddSection("state");
    s->PutU64(i_);
    s->PutDouble(sum_);
    s->PutRngState(rng_.state());
    return w.Finish();
  }
  Status Restore(const std::string& snapshot) override {
    MDE_ASSIGN_OR_RETURN(SnapshotReader snap, SnapshotReader::Parse(snapshot));
    MDE_ASSIGN_OR_RETURN(SectionReader s, snap.section("state"));
    i_ = s.U64();
    sum_ = s.Double();
    rng_.set_state(s.RngState());
    return s.ExpectEnd();
  }

  double sum() const { return sum_; }

 private:
  size_t steps_;
  size_t i_ = 0;
  double sum_ = 0.0;
  Rng rng_;
};

TEST(RunWithRecoveryTest, CompletesWithoutFaults) {
  FaultInjector::Global().Configure({});  // quiesce
  ToyEngine e(10);
  RecoveryOptions opts;
  auto stats = RunWithRecovery(e, opts);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().steps, 10u);
  EXPECT_EQ(stats.value().faults, 0u);
  EXPECT_TRUE(e.Done());
}

TEST(RunWithRecoveryTest, RecoversBitIdenticallyFromInjectedFault) {
  FaultInjector::Global().Configure({});
  ToyEngine reference(20);
  while (!reference.Done()) ASSERT_TRUE(reference.StepOnce().ok());

  FaultInjector::Config c;
  c.enabled = true;
  c.point = "toy.step";
  c.fire_at_hit = 7;
  FaultInjector::Global().Configure(c);
  ToyEngine faulty(20);
  RecoveryOptions opts;
  opts.checkpoint_every = 1;
  opts.retry.sleep = false;
  auto stats = RunWithRecovery(faulty, opts);
  FaultInjector::Global().Configure({});
  ASSERT_TRUE(stats.ok()) << stats.status().message();
  EXPECT_EQ(stats.value().faults, 1u);
  EXPECT_GE(stats.value().restores, 1u);
  EXPECT_EQ(faulty.sum(), reference.sum());  // bit-exact
}

TEST(RunWithRecoveryTest, GivesUpAfterRetryBudget) {
  // probability 1.0 with an unbounded fault budget: every step attempt
  // fails, so the retry budget must eventually give up.
  FaultInjector::Config c;
  c.enabled = true;
  c.point = "toy.step";
  c.probability = 1.0;
  c.max_faults = 1000;
  FaultInjector::Global().Configure(c);
  ToyEngine e(5);
  RecoveryOptions opts;
  opts.retry.max_retries = 2;
  opts.retry.sleep = false;
  auto stats = RunWithRecovery(e, opts);
  FaultInjector::Global().Configure({});
  EXPECT_FALSE(stats.ok());
}

TEST(RunWithRecoveryTest, PersistsCheckpointsToDisk) {
  FaultInjector::Global().Configure({});
  const std::string path = ::testing::TempDir() + "/toy.ckpt";
  ToyEngine e(6);
  RecoveryOptions opts;
  opts.checkpoint_every = 2;
  opts.checkpoint_path = path;
  ASSERT_TRUE(RunWithRecovery(e, opts).ok());
  auto bytes = ReadFile(path);
  ASSERT_TRUE(bytes.ok());
  // The persisted snapshot restores into a working engine.
  ToyEngine fresh(6);
  ASSERT_TRUE(fresh.Restore(bytes.value()).ok());
  while (!fresh.Done()) ASSERT_TRUE(fresh.StepOnce().ok());
  EXPECT_EQ(fresh.sum(), e.sum());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mde::ckpt
