#include <cmath>

#include <gtest/gtest.h>

#include "calibrate/estimation.h"
#include "calibrate/msm.h"
#include "calibrate/optimizers.h"
#include "util/distributions.h"
#include "util/stats.h"

namespace mde::calibrate {
namespace {

TEST(MleTest, ExponentialClosedForm) {
  Rng rng(1);
  std::vector<double> data;
  for (int i = 0; i < 50000; ++i) data.push_back(SampleExponential(rng, 3.0));
  auto theta = ExponentialMle(data);
  ASSERT_TRUE(theta.ok());
  EXPECT_NEAR(theta.value(), 3.0, 0.05);
  // The paper's identity: MM estimator coincides with the MLE.
  EXPECT_DOUBLE_EQ(ExponentialMm(data).value(), theta.value());
}

TEST(MleTest, ExponentialRejectsBadData) {
  EXPECT_FALSE(ExponentialMle({}).ok());
  EXPECT_FALSE(ExponentialMle({1.0, -2.0}).ok());
}

TEST(MleTest, NormalClosedForm) {
  Rng rng(2);
  std::vector<double> data;
  for (int i = 0; i < 50000; ++i) data.push_back(SampleNormal(rng, -1.0, 2.5));
  auto p = NormalMle(data);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(p.value().mu, -1.0, 0.05);
  EXPECT_NEAR(p.value().sigma, 2.5, 0.05);
}

TEST(MleTest, Generic1DMatchesClosedForm) {
  Rng rng(3);
  std::vector<double> data;
  for (int i = 0; i < 10000; ++i) data.push_back(SampleExponential(rng, 2.0));
  auto generic = GenericMle1D(
      [&](double theta) {
        double ll = 0.0;
        for (double x : data) ll += std::log(theta) - theta * x;
        return ll;
      },
      0.01, 10.0);
  ASSERT_TRUE(generic.ok());
  EXPECT_NEAR(generic.value(), ExponentialMle(data).value(), 1e-4);
}

TEST(MomTest, SolvesMonotoneMomentEquation) {
  // Poisson: E[X] = lambda. Observed mean 4.2 -> lambda = 4.2.
  auto lambda = MethodOfMoments1D([](double l) { return l; }, 4.2, 0.0, 100.0);
  ASSERT_TRUE(lambda.ok());
  EXPECT_NEAR(lambda.value(), 4.2, 1e-9);
  // No sign change -> error.
  EXPECT_FALSE(MethodOfMoments1D([](double) { return 0.0; }, 5.0, 0, 1).ok());
}

double Rosenbrock(const std::vector<double>& x) {
  return 100.0 * std::pow(x[1] - x[0] * x[0], 2) + std::pow(1.0 - x[0], 2);
}

TEST(NelderMeadTest, MinimizesRosenbrock) {
  Bounds bounds{{-5, -5}, {5, 5}};
  NelderMeadOptions opt;
  opt.max_iterations = 2000;
  auto r = NelderMead(Rosenbrock, {-1.0, 2.0}, bounds, opt);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value().x[0], 1.0, 0.05);
  EXPECT_NEAR(r.value().x[1], 1.0, 0.1);
  EXPECT_GT(r.value().evaluations, 10u);
}

TEST(NelderMeadTest, RespectsBounds) {
  // Minimum of (x+10)^2 subject to x in [0, 5] is at x = 0.
  Bounds bounds{{0}, {5}};
  auto r = NelderMead(
      [](const std::vector<double>& x) { return (x[0] + 10) * (x[0] + 10); },
      {3.0}, bounds, {});
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value().x[0], 0.0, 1e-3);
}

TEST(GeneticTest, FindsGlobalBasinOfMultimodal) {
  // Rastrigin-lite in 2-D: global minimum at 0.
  auto f = [](const std::vector<double>& x) {
    double v = 0;
    for (double xi : x) {
      v += xi * xi - 3.0 * std::cos(2.0 * M_PI * xi) + 3.0;
    }
    return v;
  };
  Bounds bounds{{-4, -4}, {4, 4}};
  GeneticOptions opt;
  opt.generations = 80;
  opt.population = 60;
  auto r = GeneticMinimize(f, bounds, opt);
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r.value().value, 1.0);
}

TEST(GoldenSectionTest, Minimizes1D) {
  auto r = GoldenSection([](double x) { return (x - 2.5) * (x - 2.5); },
                         0.0, 10.0);
  EXPECT_NEAR(r.x[0], 2.5, 1e-6);
}

TEST(RandomSearchTest, ImprovesWithBudget) {
  Bounds bounds{{-3, -3}, {3, 3}};
  auto small = RandomSearch(Rosenbrock, bounds, 20, 5);
  auto big = RandomSearch(Rosenbrock, bounds, 2000, 5);
  EXPECT_LE(big.value, small.value);
}

TEST(WeightMatrixTest, InverseOfDiagonalCovariance) {
  Rng rng(4);
  std::vector<std::vector<double>> samples;
  for (int i = 0; i < 20000; ++i) {
    samples.push_back(
        {SampleNormal(rng, 0, 1), SampleNormal(rng, 0, 2)});
  }
  auto w = OptimalWeightMatrix(samples);
  ASSERT_TRUE(w.ok());
  EXPECT_NEAR(w.value()(0, 0), 1.0, 0.05);
  EXPECT_NEAR(w.value()(1, 1), 0.25, 0.02);
  EXPECT_NEAR(w.value()(0, 1), 0.0, 0.02);
}

/// Toy "agent herding" simulator for MSM: agents flip between states with
/// probabilities controlled by theta = (herding, noise); reported moments
/// are the mean and variance of the final magnetization over agents.
Result<std::vector<double>> HerdingSimulator(const std::vector<double>& theta,
                                             uint64_t seed) {
  const double herding = theta[0];
  const double noise = theta[1];
  Rng rng(seed * 2654435761ULL + 17);
  const int agents = 80;
  std::vector<int> state(agents);
  for (auto& s : state) s = SampleBernoulli(rng, 0.5) ? 1 : -1;
  std::vector<double> magnetization;
  for (int t = 0; t < 60; ++t) {
    int total = 0;
    for (int s : state) total += s;
    const double m = static_cast<double>(total) / agents;
    for (auto& s : state) {
      const double p_up = 0.5 + 0.5 * std::tanh(herding * m + noise *
                                                SampleStandardNormal(rng));
      s = SampleBernoulli(rng, p_up) ? 1 : -1;
    }
    magnetization.push_back(m);
  }
  return std::vector<double>{Mean(magnetization),
                             Variance(magnetization),
                             Autocorrelation(magnetization, 1)};
}

MsmObjective MakeHerdingObjective(const std::vector<double>& theta_true,
                                  size_t sim_reps) {
  // "Observed" moments generated from the simulator at the true theta.
  std::vector<double> observed(3, 0.0);
  const int reps = 40;
  for (int r = 0; r < reps; ++r) {
    auto m = HerdingSimulator(theta_true, 9000 + r);
    for (int k = 0; k < 3; ++k) observed[k] += m.value()[k];
  }
  for (auto& v : observed) v /= reps;
  linalg::Matrix w = linalg::Matrix::Identity(3);
  w(1, 1) = 50.0;  // variance moment on a comparable scale
  w(2, 2) = 5.0;
  return MsmObjective(observed, w, HerdingSimulator, sim_reps, 314);
}

TEST(MsmObjectiveTest, NearZeroAtTruthLargerAway) {
  const std::vector<double> theta_true = {0.8, 0.3};
  MsmObjective obj = MakeHerdingObjective(theta_true, 30);
  auto at_truth = obj.Evaluate(theta_true);
  auto far = obj.Evaluate({0.0, 1.5});
  ASSERT_TRUE(at_truth.ok() && far.ok());
  EXPECT_LT(at_truth.value(), far.value());
  EXPECT_GT(obj.simulator_calls(), 0u);
}

TEST(MsmCalibrationTest, KrigingUsesFewerSimulatorCalls) {
  const std::vector<double> theta_true = {0.8, 0.3};
  MsmObjective obj = MakeHerdingObjective(theta_true, 10);
  Bounds bounds{{0.0, 0.05}, {2.0, 1.5}};

  KrigingCalibrateOptions kopt;
  kopt.design_points = 15;
  auto kriging = CalibrateKriging(obj, bounds, kopt);
  ASSERT_TRUE(kriging.ok());
  const size_t kriging_calls = kriging.value().simulator_calls;

  auto random = CalibrateRandomSearch(obj, bounds, 60, 77);
  ASSERT_TRUE(random.ok());
  EXPECT_LT(kriging_calls, random.value().simulator_calls);
  // The kriging result is competitive despite far fewer calls.
  EXPECT_LT(kriging.value().j_value, random.value().j_value * 5.0 + 0.05);
}

TEST(MsmCalibrationTest, NelderMeadDrivesObjectiveDown) {
  const std::vector<double> theta_true = {0.8, 0.3};
  MsmObjective obj = MakeHerdingObjective(theta_true, 10);
  Bounds bounds{{0.0, 0.05}, {2.0, 1.5}};
  NelderMeadOptions opt;
  opt.max_iterations = 40;
  auto r = CalibrateNelderMead(obj, bounds, {1.5, 1.0}, opt);
  ASSERT_TRUE(r.ok());
  auto start_j = obj.Evaluate({1.5, 1.0});
  ASSERT_TRUE(start_j.ok());
  EXPECT_LE(r.value().j_value, start_j.value());
}

}  // namespace
}  // namespace mde::calibrate
