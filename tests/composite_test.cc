#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "composite/model.h"
#include "composite/pipeline.h"
#include "composite/result_caching.h"
#include "util/distributions.h"
#include "util/stats.h"

namespace mde::composite {
namespace {

/// M1: demand model emitting a random "arrival intensity" (lognormal).
std::shared_ptr<FunctionModel> MakeDemandModel(double cost) {
  return std::make_shared<FunctionModel>(
      "demand",
      [](const std::vector<double>&, Rng& rng)
          -> Result<std::vector<double>> {
        return std::vector<double>{SampleLognormal(rng, 0.0, 0.5)};
      },
      cost);
}

/// M2: queueing model — average wait grows with intensity, with noise.
std::shared_ptr<FunctionModel> MakeQueueModel(double cost,
                                              double noise_sd) {
  return std::make_shared<FunctionModel>(
      "queue",
      [noise_sd](const std::vector<double>& in, Rng& rng)
          -> Result<std::vector<double>> {
        const double intensity = in[0];
        return std::vector<double>{2.0 * intensity +
                                   SampleNormal(rng, 0.0, noise_sd)};
      },
      cost);
}

TEST(GAlphaTest, MatchesClosedFormAtAlphaOne) {
  CostStats s{/*c1=*/4.0, /*c2=*/1.0, /*v1=*/3.0, /*v2=*/1.0};
  // alpha = 1: r = 1, bracket = 2 - 1*2 = 0 -> g = (c1 + c2) * V1.
  EXPECT_DOUBLE_EQ(GAlpha(1.0, s), 5.0 * 3.0);
  // g~ agrees at alpha = 1.
  EXPECT_DOUBLE_EQ(GTildeAlpha(1.0, s), GAlpha(1.0, s));
}

TEST(GAlphaTest, AgreesWithTildeAtReciprocalIntegers) {
  CostStats s{5.0, 1.0, 2.0, 0.5};
  for (double alpha : {1.0, 0.5, 0.25, 0.2, 0.1}) {
    EXPECT_NEAR(GAlpha(alpha, s), GTildeAlpha(alpha, s), 1e-12)
        << "alpha=" << alpha;
  }
}

TEST(OptimalAlphaTest, ClosedFormCases) {
  // Expensive M1, some shared variance -> small alpha.
  CostStats expensive_m1{100.0, 1.0, 2.0, 0.5};
  EXPECT_LT(OptimalAlpha(expensive_m1), 0.1);
  // V2 = 0 (M2 insensitive): run M1 as rarely as possible.
  CostStats insensitive{1.0, 1.0, 2.0, 0.0};
  EXPECT_DOUBLE_EQ(OptimalAlpha(insensitive, 1e-3), 1e-3);
  // V2 = V1 (M2 is a transformer): alpha* = 1.
  CostStats transformer{1.0, 1.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(OptimalAlpha(transformer), 1.0);
}

TEST(OptimalAlphaTest, MinimizesGTilde) {
  CostStats s{20.0, 1.0, 3.0, 1.0};
  const double astar = OptimalAlpha(s);
  const double g_star = GTildeAlpha(astar, s);
  for (double a = 0.01; a <= 1.0; a += 0.01) {
    EXPECT_GE(GTildeAlpha(a, s), g_star - 1e-9) << "a=" << a;
  }
}

TEST(ResultCachingTest, AlphaOneIsPlainMonteCarlo) {
  auto m1 = MakeDemandModel(1.0);
  auto m2 = MakeQueueModel(1.0, 0.1);
  auto run = RunResultCaching(*m1, *m2, {}, 1.0, 100, 3);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run.value().m1_runs, 100u);
  EXPECT_EQ(run.value().m2_runs, 100u);
  EXPECT_DOUBLE_EQ(run.value().total_cost, 200.0);
}

TEST(ResultCachingTest, SmallAlphaRunsM1Rarely) {
  auto m1 = MakeDemandModel(10.0);
  auto m2 = MakeQueueModel(1.0, 0.1);
  auto run = RunResultCaching(*m1, *m2, {}, 0.1, 100, 3);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run.value().m1_runs, 10u);
  EXPECT_EQ(run.value().m2_runs, 100u);
  EXPECT_DOUBLE_EQ(run.value().total_cost, 200.0);
}

TEST(ResultCachingTest, EstimateIsConsistent) {
  // E[Y2] = 2 * E[lognormal(0, 0.5)] = 2 * exp(0.125).
  const double theta = 2.0 * std::exp(0.125);
  auto m1 = MakeDemandModel(1.0);
  auto m2 = MakeQueueModel(1.0, 0.2);
  RunningStat estimates;
  for (uint64_t rep = 0; rep < 120; ++rep) {
    auto run = RunResultCaching(*m1, *m2, {}, 0.3, 400, 100 + rep);
    ASSERT_TRUE(run.ok());
    estimates.Add(run.value().estimate);
  }
  EXPECT_NEAR(estimates.mean(), theta, 3.5 * estimates.std_error());
}

TEST(ResultCachingTest, RejectsBadArguments) {
  auto m1 = MakeDemandModel(1.0);
  auto m2 = MakeQueueModel(1.0, 0.1);
  EXPECT_FALSE(RunResultCaching(*m1, *m2, {}, 0.0, 10, 1).ok());
  EXPECT_FALSE(RunResultCaching(*m1, *m2, {}, 1.1, 10, 1).ok());
  EXPECT_FALSE(RunResultCaching(*m1, *m2, {}, 0.5, 0, 1).ok());
}

TEST(BudgetedRunTest, RespectsBudget) {
  auto m1 = MakeDemandModel(5.0);
  auto m2 = MakeQueueModel(1.0, 0.1);
  auto run = RunWithBudget(*m1, *m2, {}, 0.5, 100.0, 9);
  ASSERT_TRUE(run.ok());
  EXPECT_LE(run.value().total_cost, 100.0);
  // A bigger budget buys more runs.
  auto big = RunWithBudget(*m1, *m2, {}, 0.5, 1000.0, 9);
  ASSERT_TRUE(big.ok());
  EXPECT_GT(big.value().m2_runs, run.value().m2_runs);
}

TEST(EstimateStatisticsTest, RecoversVarianceDecomposition) {
  // Y2 = 2 * Y1 + eps: V2 = Var(2 Y1) = 4 Var(Y1); V1 = V2 + Var(eps).
  auto m1 = MakeDemandModel(1.0);
  auto m2 = MakeQueueModel(1.0, 0.5);
  auto stats = EstimateStatistics(*m1, *m2, {}, 2000, 8, 17);
  ASSERT_TRUE(stats.ok());
  // Var(lognormal(0, 0.5)) = (e^{0.25} - 1) e^{0.25} ~ 0.3647. Lognormal
  // variance estimates are heavy-tailed, so allow 35% relative error.
  const double v_y1 = (std::exp(0.25) - 1.0) * std::exp(0.25);
  EXPECT_NEAR(stats.value().v2, 4.0 * v_y1, 0.35 * 4.0 * v_y1);
  EXPECT_NEAR(stats.value().v1, 4.0 * v_y1 + 0.25,
              0.35 * (4.0 * v_y1 + 0.25));
  EXPECT_GT(stats.value().v1, stats.value().v2);
}

TEST(EmpiricalVarianceTest, MatchesGAlphaShape) {
  // Verify the CLT: across many independent RC runs at fixed n, the
  // variance of the estimator scales like g(alpha) (up to the common 1/c
  // factor). Compare two alphas under equal budget.
  // Noisy M2 (V2 << V1) and expensive M1: caching pays off.
  auto m1 = MakeDemandModel(9.0);
  auto m2 = MakeQueueModel(1.0, 3.0);
  auto stats = EstimateStatistics(*m1, *m2, {}, 300, 8, 23);
  ASSERT_TRUE(stats.ok());
  const CostStats s = stats.value();
  const double budget = 3000.0;
  auto measure = [&](double alpha) {
    RunningStat rs;
    for (uint64_t rep = 0; rep < 60; ++rep) {
      auto run = RunWithBudget(*m1, *m2, {}, alpha, budget, 900 + rep);
      EXPECT_TRUE(run.ok());
      rs.Add(run.value().estimate);
    }
    return rs.variance();
  };
  const double astar = OptimalAlpha(s);
  const double var_opt = measure(astar);
  const double var_naive = measure(1.0);
  // g predicts the naive variance exceeds the optimal one.
  EXPECT_GT(GTildeAlpha(1.0, s), GTildeAlpha(astar, s) * 1.5);
  EXPECT_GT(var_naive, var_opt);
}

TEST(MetadataStoreTest, StoreLookupRefine) {
  MetadataStore store;
  EXPECT_FALSE(store.Lookup("demand|queue").ok());
  store.Store("demand|queue", {1, 2, 3, 4});
  auto s = store.Lookup("demand|queue");
  ASSERT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ(s.value().c1, 1.0);
  store.Refine("demand|queue", {3, 2, 3, 4}, 0.5);
  EXPECT_DOUBLE_EQ(store.Lookup("demand|queue").value().c1, 2.0);
  // Refine on a missing key inserts.
  store.Refine("new|pair", {9, 9, 9, 9}, 0.5);
  EXPECT_TRUE(store.Lookup("new|pair").ok());
}

TEST(PipelineTest, ExecutesStagesWithTransforms) {
  Pipeline p;
  p.AddStage(std::make_shared<FunctionModel>(
      "double",
      [](const std::vector<double>& in, Rng&) -> Result<std::vector<double>> {
        return std::vector<double>{in[0] * 2.0};
      }));
  p.AddStage(
      std::make_shared<FunctionModel>(
          "add1",
          [](const std::vector<double>& in, Rng&)
              -> Result<std::vector<double>> {
            return std::vector<double>{in[0] + 1.0};
          }),
      // Harmonizing transform: convert units by x10 before stage 2.
      [](const std::vector<double>& in) -> Result<std::vector<double>> {
        return std::vector<double>{in[0] * 10.0};
      });
  Rng rng(1);
  auto out = p.Execute({3.0}, rng);
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ(out.value()[0], 61.0);  // (3*2)*10 + 1
  EXPECT_DOUBLE_EQ(p.CostPerRun(), 2.0);
}

TEST(PipelineTest, MonteCarloCollectsSamples) {
  Pipeline p;
  p.AddStage(std::make_shared<FunctionModel>(
      "noise",
      [](const std::vector<double>&, Rng& rng) -> Result<std::vector<double>> {
        return std::vector<double>{SampleNormal(rng, 5.0, 1.0)};
      }));
  auto samples = p.MonteCarlo({}, 500, 77);
  ASSERT_TRUE(samples.ok());
  EXPECT_EQ(samples.value().size(), 500u);
  EXPECT_NEAR(Mean(samples.value()), 5.0, 0.15);
}

TEST(PipelineTest, EmptyPipelineErrors) {
  Pipeline p;
  Rng rng(1);
  EXPECT_FALSE(p.Execute({}, rng).ok());
}

}  // namespace
}  // namespace mde::composite
