/// Statistical property tests: chi-square goodness-of-fit on the samplers
/// the Monte Carlo layers depend on. With fixed seeds these are
/// deterministic; bounds are set at the chi-square 99.9% quantile so a
/// correct sampler passes with huge margin while a biased one fails.

#include <cmath>

#include <gtest/gtest.h>

#include "mcdb/vg_function.h"
#include "util/distributions.h"
#include "util/rng.h"

namespace mde {
namespace {

/// Chi-square statistic of observed bin counts vs expected probabilities.
double ChiSquare(const std::vector<size_t>& observed,
                 const std::vector<double>& expected_prob, size_t n) {
  double stat = 0.0;
  for (size_t k = 0; k < observed.size(); ++k) {
    const double expected = expected_prob[k] * static_cast<double>(n);
    EXPECT_GT(expected, 5.0) << "bin too small for chi-square";
    const double d = static_cast<double>(observed[k]) - expected;
    stat += d * d / expected;
  }
  return stat;
}

TEST(GoodnessOfFitTest, UniformBits) {
  Rng rng(101);
  const size_t n = 100000;
  std::vector<size_t> counts(16, 0);
  for (size_t i = 0; i < n; ++i) {
    ++counts[static_cast<size_t>(rng.NextDouble() * 16.0)];
  }
  // 15 dof, 99.9% quantile ~ 37.7.
  EXPECT_LT(ChiSquare(counts, std::vector<double>(16, 1.0 / 16), n), 37.7);
}

TEST(GoodnessOfFitTest, StandardNormalDeciles) {
  Rng rng(102);
  const size_t n = 100000;
  // Bin edges at the deciles of N(0,1): equal 10% mass per bin.
  std::vector<double> edges;
  for (int d = 1; d <= 9; ++d) edges.push_back(NormalQuantile(d / 10.0));
  std::vector<size_t> counts(10, 0);
  for (size_t i = 0; i < n; ++i) {
    const double x = SampleStandardNormal(rng);
    size_t bin = 0;
    while (bin < edges.size() && x > edges[bin]) ++bin;
    ++counts[bin];
  }
  // 9 dof, 99.9% quantile ~ 27.9.
  EXPECT_LT(ChiSquare(counts, std::vector<double>(10, 0.1), n), 27.9);
}

TEST(GoodnessOfFitTest, ExponentialQuartiles) {
  Rng rng(103);
  const size_t n = 80000;
  const double lambda = 1.7;
  // Quartile edges of Exp(lambda).
  std::vector<double> edges = {-std::log(0.75) / lambda,
                               -std::log(0.5) / lambda,
                               -std::log(0.25) / lambda};
  std::vector<size_t> counts(4, 0);
  for (size_t i = 0; i < n; ++i) {
    const double x = SampleExponential(rng, lambda);
    size_t bin = 0;
    while (bin < edges.size() && x > edges[bin]) ++bin;
    ++counts[bin];
  }
  // 3 dof, 99.9% quantile ~ 16.3.
  EXPECT_LT(ChiSquare(counts, std::vector<double>(4, 0.25), n), 16.3);
}

TEST(GoodnessOfFitTest, PoissonPmf) {
  Rng rng(104);
  const size_t n = 80000;
  const double lambda = 3.0;
  // Bins 0..7 plus ">= 8".
  std::vector<double> probs;
  double cum = 0.0;
  double p = std::exp(-lambda);
  for (int k = 0; k < 8; ++k) {
    probs.push_back(p);
    cum += p;
    p *= lambda / (k + 1);
  }
  probs.push_back(1.0 - cum);
  std::vector<size_t> counts(9, 0);
  for (size_t i = 0; i < n; ++i) {
    const int64_t x = SamplePoisson(rng, lambda);
    ++counts[std::min<int64_t>(x, 8)];
  }
  // 8 dof, 99.9% quantile ~ 26.1.
  EXPECT_LT(ChiSquare(counts, probs, n), 26.1);
}

TEST(GoodnessOfFitTest, DiscreteVgMatchesWeights) {
  mcdb::DiscreteVg vg;
  Rng rng(105);
  const size_t n = 60000;
  std::vector<size_t> counts(3, 0);
  std::vector<table::Row> out;
  for (size_t i = 0; i < n; ++i) {
    out.clear();
    ASSERT_TRUE(vg.Generate({table::Value(1.0), table::Value(2.0),
                             table::Value(7.0)},
                            rng, &out)
                    .ok());
    ++counts[static_cast<size_t>(out[0][0].AsInt())];
  }
  // 2 dof, 99.9% quantile ~ 13.8.
  EXPECT_LT(ChiSquare(counts, {0.1, 0.2, 0.7}, n), 13.8);
}

TEST(GoodnessOfFitTest, DiscreteVgRejectsBadWeights) {
  mcdb::DiscreteVg vg;
  Rng rng(1);
  std::vector<table::Row> out;
  EXPECT_FALSE(vg.Generate({}, rng, &out).ok());
  EXPECT_FALSE(vg.Generate({table::Value(-1.0)}, rng, &out).ok());
  EXPECT_FALSE(
      vg.Generate({table::Value(0.0), table::Value(0.0)}, rng, &out).ok());
}

TEST(GoodnessOfFitTest, GammaMeanVarSkewness) {
  Rng rng(106);
  const double shape = 2.5, scale = 1.4;
  const size_t n = 100000;
  double m1 = 0, m2 = 0, m3 = 0;
  std::vector<double> xs;
  xs.reserve(n);
  for (size_t i = 0; i < n; ++i) xs.push_back(SampleGamma(rng, shape, scale));
  for (double x : xs) m1 += x;
  m1 /= n;
  for (double x : xs) {
    m2 += (x - m1) * (x - m1);
    m3 += (x - m1) * (x - m1) * (x - m1);
  }
  m2 /= n;
  m3 /= n;
  EXPECT_NEAR(m1, shape * scale, 0.03);
  EXPECT_NEAR(m2, shape * scale * scale, 0.1);
  // Skewness 2/sqrt(shape).
  EXPECT_NEAR(m3 / std::pow(m2, 1.5), 2.0 / std::sqrt(shape), 0.1);
}

}  // namespace
}  // namespace mde
