// mde_report: renders a run report from the artifacts a run leaves behind.
//
//   mde_report [--trace trace.json] [--metrics metrics.jsonl]
//              [--flight flight.json] [--profile profile.folded]
//              [--format markdown|text] [--top-spans N] [--top-counters N]
//
// `--trace` is a Chrome trace-event JSON (--mde_trace_out); `--metrics` is
// the Sampler's JSONL time series (--mde_metrics_jsonl); `--flight` is a
// crash flight-recorder dump (obs/flight.h, MDE_FLIGHT_PATH); `--profile`
// is folded-stack text saved from /profilez (obs/profiler.h). Any may be
// omitted; at least one must be given. Reports go to stdout (run report,
// then flight report, then profile report). When --profile and --metrics
// are both given, per-query sample counts are reconciled against the
// JSONL's final mde_query_cpu_ns.
//
// Exit codes: 0 success, 1 bad usage or parse failure, 2 unreadable file —
// nonzero in CI means the run's artifacts are malformed.

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/report.h"

namespace {

int Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--trace FILE] [--metrics FILE] [--flight FILE]"
               " [--profile FILE]"
               " [--format markdown|text] [--top-spans N] [--top-counters N]\n";
  return 1;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::in | std::ios::binary);
  if (!in.is_open()) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  std::string metrics_path;
  std::string flight_path;
  std::string profile_path;
  mde::obs::RunReportOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--trace") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      trace_path = v;
    } else if (arg == "--metrics") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      metrics_path = v;
    } else if (arg == "--flight") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      flight_path = v;
    } else if (arg == "--profile") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      profile_path = v;
    } else if (arg == "--format") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      if (std::strcmp(v, "markdown") == 0) {
        options.markdown = true;
      } else if (std::strcmp(v, "text") == 0) {
        options.markdown = false;
      } else {
        return Usage(argv[0]);
      }
    } else if (arg == "--top-spans") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.top_spans = static_cast<size_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--top-counters") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.top_counters =
          static_cast<size_t>(std::strtoul(v, nullptr, 10));
    } else {
      return Usage(argv[0]);
    }
  }
  if (trace_path.empty() && metrics_path.empty() && flight_path.empty() &&
      profile_path.empty()) {
    return Usage(argv[0]);
  }

  std::string trace_json;
  if (!trace_path.empty() && !ReadFile(trace_path, &trace_json)) {
    std::cerr << "mde_report: cannot read " << trace_path << "\n";
    return 2;
  }
  std::string metrics_jsonl;
  if (!metrics_path.empty() && !ReadFile(metrics_path, &metrics_jsonl)) {
    std::cerr << "mde_report: cannot read " << metrics_path << "\n";
    return 2;
  }

  std::string flight_json;
  if (!flight_path.empty() && !ReadFile(flight_path, &flight_json)) {
    std::cerr << "mde_report: cannot read " << flight_path << "\n";
    return 2;
  }

  std::string profile_text;
  if (!profile_path.empty() && !ReadFile(profile_path, &profile_text)) {
    std::cerr << "mde_report: cannot read " << profile_path << "\n";
    return 2;
  }

  std::string error;
  if (!trace_path.empty() || !metrics_path.empty()) {
    std::string report;
    if (!mde::obs::RenderRunReport(trace_json, metrics_jsonl, options,
                                   &report, &error)) {
      std::cerr << "mde_report: " << error << "\n";
      return 1;
    }
    std::cout << report;
  }
  if (!flight_path.empty()) {
    std::string report;
    if (!mde::obs::RenderFlightReport(flight_json, options, &report,
                                      &error)) {
      std::cerr << "mde_report: " << error << "\n";
      return 1;
    }
    std::cout << report;
  }
  if (!profile_path.empty()) {
    std::string report;
    if (!mde::obs::RenderProfileReport(profile_text, metrics_jsonl, options,
                                       &report, &error)) {
      std::cerr << "mde_report: " << error << "\n";
      return 1;
    }
    std::cout << report;
  }
  return 0;
}
