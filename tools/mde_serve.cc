/// mde_serve: the serving layer end to end — a database-valued Markov
/// chain (simsql) advanced version by version behind MVCC snapshots, a
/// shared CLT-bounded Monte Carlo result cache, and N concurrent client
/// sessions asking for answers at an explicit precision.
///
/// Demo (default): starts the demo asset-price chain, runs a handful of
/// requests across two sessions and two database versions, and prints each
/// answer with its error bar and cache outcome. With --diag_port=N the live
/// diagnostics server runs for --serve_seconds so /sessionz, /metrics and
/// friends can be scraped while requests flow.
///
/// Bench (--bench): the closed-loop multi-client harness behind
/// BENCH_serve.json. `--sessions` clients each replay `--requests`
/// zipf-mixed requests over `--shapes` distinct request shapes per phase;
/// between phases the chain advances one version (new cache keys). Each
/// client issues its next request only after the previous one answered
/// (closed loop). Reported: hit rate, hit/miss latency percentiles,
/// precision violations (answer half-width above the requested target),
/// and a bit-identity audit — a sample of cached answers recomputed on a
/// fresh single-threaded server must match bitwise. ci/check_bench_serve.py
/// gates the JSON in CI.
///
/// Usage:
///   mde_serve [--diag_port=N] [--serve_seconds=S]
///   mde_serve --bench [--out=BENCH_serve.json] [--sessions=8]
///             [--requests=150] [--phases=2] [--shapes=12] [--seed=42]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/http.h"
#include "serve/server.h"
#include "simsql/simsql.h"
#include "table/table.h"
#include "util/rng.h"

namespace {

using mde::Rng;
using mde::Status;
using mde::serve::Answer;
using mde::serve::McQuerySpec;
using mde::serve::Request;
using mde::serve::Server;
using mde::simsql::DatabaseState;
using mde::table::DataType;
using mde::table::Schema;
using mde::table::Table;
using mde::table::Value;

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr size_t kAssets = 16;

/// Demo model: PRICES is a random-walk chain table (one row per asset),
/// POSITIONS is deterministic. One Monte Carlo replication of the "pv"
/// query simulates every price `horizon` steps forward at volatility `vol`
/// and reports the portfolio value — so the answer distribution genuinely
/// needs the CLT machinery.
mde::simsql::MarkovChainDb MakeDemoDb() {
  mde::simsql::MarkovChainDb db;
  Table pos{
      Schema({{"ASSET", DataType::kInt64}, {"QTY", DataType::kDouble}})};
  for (size_t i = 0; i < kAssets; ++i) {
    pos.Append({Value(static_cast<int64_t>(i)),
                Value(1.0 + static_cast<double>(i % 5))});
  }
  (void)db.AddDeterministic("POSITIONS", std::move(pos));

  mde::simsql::ChainTableSpec spec;
  spec.name = "PRICES";
  spec.init = [](const DatabaseState&, Rng& rng) -> mde::Result<Table> {
    Table t{
        Schema({{"ASSET", DataType::kInt64}, {"PRICE", DataType::kDouble}})};
    for (size_t i = 0; i < kAssets; ++i) {
      t.Append({Value(static_cast<int64_t>(i)),
                Value(80.0 + 5.0 * static_cast<double>(i) +
                      rng.NextDouble())});
    }
    return t;
  };
  spec.transition = [](const DatabaseState& prev, const DatabaseState&,
                       Rng& rng) -> mde::Result<Table> {
    const Table& p = prev.at("PRICES");
    Table t{
        Schema({{"ASSET", DataType::kInt64}, {"PRICE", DataType::kDouble}})};
    for (size_t i = 0; i < kAssets; ++i) {
      t.Append({p.row(i)[0],
                Value(p.row(i)[1].AsDouble() + (rng.NextDouble() - 0.5))});
    }
    return t;
  };
  (void)db.AddChainTable(std::move(spec));
  return db;
}

McQuerySpec PortfolioValueQuery() {
  McQuerySpec spec;
  spec.name = "pv";
  spec.eval = [](const DatabaseState& state,
                 const std::map<std::string, double>& params,
                 Rng& rng) -> mde::Result<double> {
    const double vol = params.count("vol") != 0 ? params.at("vol") : 1.0;
    const int horizon = params.count("horizon") != 0
                            ? static_cast<int>(params.at("horizon"))
                            : 8;
    const Table& prices = state.at("PRICES");
    const Table& pos = state.at("POSITIONS");
    double total = 0.0;
    for (size_t i = 0; i < prices.num_rows(); ++i) {
      double p = prices.row(i)[1].AsDouble();
      for (int h = 0; h < horizon; ++h) {
        p += (rng.NextDouble() - 0.5) * vol;
      }
      total += p * pos.row(i)[1].AsDouble();
    }
    return total;
  };
  return spec;
}

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

double PercentileUs(std::vector<uint64_t>* ns, double p) {
  if (ns->empty()) return 0.0;
  std::sort(ns->begin(), ns->end());
  const size_t idx = std::min(
      ns->size() - 1, static_cast<size_t>(p * static_cast<double>(ns->size())));
  return static_cast<double>((*ns)[idx]) * 1e-3;
}

struct Flags {
  bool bench = false;
  std::string out = "BENCH_serve.json";
  int sessions = 8;
  int requests = 150;  // per session per phase
  int phases = 2;
  int shapes = 12;
  uint64_t seed = 42;
  int diag_port = -1;
  int serve_seconds = 5;
};

bool ParseFlags(int argc, char** argv, Flags* f) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto intval = [&arg](const char* name, int* out) {
      const std::string prefix = std::string(name) + "=";
      if (arg.rfind(prefix, 0) != 0) return false;
      *out = std::atoi(arg.c_str() + prefix.size());
      return true;
    };
    int seed_int = -1;
    if (arg == "--bench") {
      f->bench = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      f->out = arg.substr(6);
    } else if (intval("--sessions", &f->sessions) ||
               intval("--requests", &f->requests) ||
               intval("--phases", &f->phases) ||
               intval("--shapes", &f->shapes) ||
               intval("--diag_port", &f->diag_port) ||
               intval("--serve_seconds", &f->serve_seconds)) {
      // parsed
    } else if (intval("--seed", &seed_int)) {
      f->seed = static_cast<uint64_t>(seed_int);
    } else {
      std::fprintf(stderr, "mde_serve: unknown flag '%s'\n", arg.c_str());
      return false;
    }
  }
  return true;
}

/// The request shapes a bench phase mixes over: distinct parameter
/// bindings of the one registered query, each with a reachable precision
/// target.
std::vector<Request> MakeShapes(int n) {
  std::vector<Request> shapes;
  for (int s = 0; s < n; ++s) {
    Request r;
    r.query = "pv";
    r.params = {{"vol", 0.5 + 0.25 * static_cast<double>(s % 6)},
                {"horizon", 4.0 + static_cast<double>(s % 4) * 2.0}};
    r.target_half_width = 3.0 + static_cast<double>(s % 3);
    r.max_reps = 4096;
    shapes.push_back(r);
  }
  return shapes;
}

/// Zipf-ish shape pick: half the traffic on shape 0-1, a long tail after.
size_t PickShape(Rng& rng, size_t n) {
  size_t idx = 0;
  while (idx + 1 < n && rng.NextBounded(2) == 0) ++idx;
  return idx;
}

int RunDemo(const Flags& flags) {
  mde::simsql::MarkovChainDb db = MakeDemoDb();
  Server::Options opts;
  opts.seed = flags.seed;
  Server server(db, opts);
  if (!server.AddQuery(PortfolioValueQuery()).ok()) return 1;
  Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "mde_serve: %s\n", st.ToString().c_str());
    return 1;
  }

  std::unique_ptr<mde::obs::DiagServer> diag;
  if (flags.diag_port >= 0) {
    diag = std::make_unique<mde::obs::DiagServer>();
    if (diag->Start(static_cast<uint16_t>(flags.diag_port))) {
      std::printf("diagnostics on http://127.0.0.1:%d (/sessionz)\n",
                  diag->port());
    }
  }

  std::printf("=== mde_serve demo: 2 sessions, 2 versions ===\n");
  auto alice = server.OpenSession("alice");
  auto bob = server.OpenSession("bob");
  const auto run = [](const char* who, const std::shared_ptr<mde::serve::Session>& s,
                      const Request& req) {
    auto r = s->Execute(req);
    if (!r.ok()) {
      std::printf("%-6s ERROR %s\n", who, r.status().ToString().c_str());
      return;
    }
    const Answer& a = r.value();
    std::printf(
        "%-6s v%llu pv(vol=%.2f) = %10.2f +/- %6.3f  reps=%llu (+%llu)  %s\n",
        who, static_cast<unsigned long long>(a.version),
        req.params.at("vol"), a.estimate, a.half_width,
        static_cast<unsigned long long>(a.reps),
        static_cast<unsigned long long>(a.reps_added),
        a.cache_hit ? "HIT" : (a.reps_added < a.reps ? "topup" : "miss"));
  };

  Request loose;
  loose.query = "pv";
  loose.params = {{"vol", 1.0}, {"horizon", 8.0}};
  loose.target_half_width = kInf;
  Request tight = loose;
  tight.target_half_width = 1.0;
  tight.max_reps = 8192;

  run("alice", alice, loose);   // miss: runs min_reps
  run("bob", bob, loose);       // pure hit: same key, looser-or-equal
  run("bob", bob, tight);       // topup: only incremental reps
  run("alice", alice, tight);   // pure hit at the tighter bound
  (void)server.AdvanceVersion();
  run("alice", alice, tight);   // new version: fresh key, miss again
  Request pinned = tight;
  pinned.version = 0;
  run("bob", bob, pinned);      // explicit old version: still a pure hit

  std::printf("\n%s", server.RenderSessionz().c_str());
  if (diag != nullptr && diag->running()) {
    std::printf("serving diagnostics for %d s...\n", flags.serve_seconds);
    std::this_thread::sleep_for(std::chrono::seconds(flags.serve_seconds));
  }
  return 0;
}

int RunBench(const Flags& flags) {
  mde::simsql::MarkovChainDb db = MakeDemoDb();
  Server::Options opts;
  opts.seed = flags.seed;
  Server server(db, opts);
  if (!server.AddQuery(PortfolioValueQuery()).ok()) return 1;
  if (!server.Start().ok()) return 1;

  const std::vector<Request> shapes = MakeShapes(flags.shapes);

  struct Canonical {
    double estimate = 0.0;
    double half_width = 0.0;
    uint64_t reps = 0;
  };
  std::mutex audit_mu;
  std::map<std::pair<size_t, uint64_t>, Canonical> canonical;  // (shape, ver)
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> total{0};
  std::atomic<uint64_t> precision_violations{0};
  std::atomic<bool> consistent{true};
  std::vector<uint64_t> hit_ns;
  std::vector<uint64_t> miss_ns;
  std::mutex lat_mu;

  for (int phase = 0; phase < flags.phases; ++phase) {
    if (phase > 0 && !server.AdvanceVersion().ok()) return 1;
    std::vector<std::thread> clients;
    for (int c = 0; c < flags.sessions; ++c) {
      clients.emplace_back([&, c, phase] {
        auto session = server.OpenSession(
            "bench-" + std::to_string(phase) + "-" + std::to_string(c));
        Rng pick(flags.seed + 1000 * static_cast<uint64_t>(phase) +
                 static_cast<uint64_t>(c));
        std::vector<uint64_t> local_hit_ns;
        std::vector<uint64_t> local_miss_ns;
        for (int q = 0; q < flags.requests; ++q) {
          const size_t shape = PickShape(pick, shapes.size());
          const Request& req = shapes[shape];
          const uint64_t t0 = NowNs();
          auto r = session->Execute(req);  // closed loop: wait for answer
          const uint64_t dt = NowNs() - t0;
          if (!r.ok()) {
            consistent.store(false);
            return;
          }
          const Answer& a = r.value();
          total.fetch_add(1, std::memory_order_relaxed);
          if (a.cache_hit) {
            hits.fetch_add(1, std::memory_order_relaxed);
            local_hit_ns.push_back(dt);
          } else {
            local_miss_ns.push_back(dt);
          }
          if (a.half_width > req.target_half_width &&
              a.reps < req.max_reps) {
            precision_violations.fetch_add(1, std::memory_order_relaxed);
          }
          std::lock_guard<std::mutex> lock(audit_mu);
          auto [it, inserted] = canonical.try_emplace(
              std::make_pair(shape, a.version),
              Canonical{a.estimate, a.half_width, a.reps});
          if (!inserted &&
              (std::memcmp(&it->second.estimate, &a.estimate,
                           sizeof(double)) != 0 ||
               it->second.reps != a.reps)) {
            consistent.store(false);  // cross-session answer drift
          }
        }
        std::lock_guard<std::mutex> lock(lat_mu);
        hit_ns.insert(hit_ns.end(), local_hit_ns.begin(),
                      local_hit_ns.end());
        miss_ns.insert(miss_ns.end(), local_miss_ns.begin(),
                       local_miss_ns.end());
      });
    }
    for (auto& t : clients) t.join();
  }

  // Bit-identity audit: replay a sample of cached answers on a FRESH
  // single-threaded server over an identically-seeded chain. Forcing
  // target=0 with max_reps = the canonical rep count makes the fresh
  // server run exactly those replications in one shot; the estimate must
  // match the concurrently cache-assembled one bit for bit.
  bool bit_identical = true;
  {
    mde::simsql::MarkovChainDb fresh_db = MakeDemoDb();
    Server fresh(fresh_db, opts);
    if (!fresh.AddQuery(PortfolioValueQuery()).ok() ||
        !fresh.Start().ok()) {
      return 1;
    }
    for (int phase = 1; phase < flags.phases; ++phase) {
      if (!fresh.AdvanceVersion().ok()) return 1;
    }
    auto auditor = fresh.OpenSession("audit");
    size_t audited = 0;
    for (const auto& [key, want] : canonical) {
      if (audited % 3 != 0) {  // sample every third (shape, version)
        ++audited;
        continue;
      }
      ++audited;
      Request req = shapes[key.first];
      req.version = key.second;
      req.target_half_width = 0.0;
      req.max_reps = want.reps;
      auto r = auditor->Execute(req);
      if (!r.ok() ||
          std::memcmp(&r.value().estimate, &want.estimate,
                      sizeof(double)) != 0 ||
          std::memcmp(&r.value().half_width, &want.half_width,
                      sizeof(double)) != 0) {
        bit_identical = false;
        std::fprintf(stderr,
                     "audit mismatch: shape=%zu version=%llu\n", key.first,
                     static_cast<unsigned long long>(key.second));
      }
    }
  }

  const double hit_rate =
      total.load() > 0
          ? static_cast<double>(hits.load()) / static_cast<double>(total.load())
          : 0.0;
  const double hit_p50 = PercentileUs(&hit_ns, 0.50);
  const double hit_p99 = PercentileUs(&hit_ns, 0.99);
  const double miss_p50 = PercentileUs(&miss_ns, 0.50);
  const mde::serve::CacheStats cs = server.cache().stats();

  FILE* out = std::fopen(flags.out.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "mde_serve: cannot write %s\n", flags.out.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out,
               "  \"description\": \"Closed-loop multi-session serving "
               "bench: %d sessions x %d requests x %d phases over %d "
               "request shapes (zipf-mixed); chain advances one version "
               "per phase. Acceptance: hit_rate >= 0.9, zero precision "
               "violations, cached answers bit-identical to a fresh "
               "single-threaded run. Gated by ci/check_bench_serve.py.\",\n",
               flags.sessions, flags.requests, flags.phases, flags.shapes);
  std::fprintf(out, "  \"sessions\": %d,\n", flags.sessions);
  std::fprintf(out, "  \"requests_per_session_per_phase\": %d,\n",
               flags.requests);
  std::fprintf(out, "  \"phases\": %d,\n", flags.phases);
  std::fprintf(out, "  \"shapes\": %d,\n", flags.shapes);
  std::fprintf(out, "  \"total_requests\": %llu,\n",
               static_cast<unsigned long long>(total.load()));
  std::fprintf(out, "  \"hit_rate\": %.6f,\n", hit_rate);
  std::fprintf(out, "  \"pure_hits\": %llu,\n",
               static_cast<unsigned long long>(cs.pure_hits));
  std::fprintf(out, "  \"topups\": %llu,\n",
               static_cast<unsigned long long>(cs.topups));
  std::fprintf(out, "  \"misses\": %llu,\n",
               static_cast<unsigned long long>(cs.misses));
  std::fprintf(out, "  \"reps_run\": %llu,\n",
               static_cast<unsigned long long>(cs.reps_run));
  std::fprintf(out, "  \"reps_saved\": %llu,\n",
               static_cast<unsigned long long>(cs.reps_saved));
  std::fprintf(out, "  \"hit_p50_us\": %.3f,\n", hit_p50);
  std::fprintf(out, "  \"hit_p99_us\": %.3f,\n", hit_p99);
  std::fprintf(out, "  \"miss_p50_us\": %.3f,\n", miss_p50);
  std::fprintf(out, "  \"precision_violations\": %llu,\n",
               static_cast<unsigned long long>(precision_violations.load()));
  std::fprintf(out, "  \"cross_session_consistent\": %s,\n",
               consistent.load() ? "true" : "false");
  std::fprintf(out, "  \"bit_identical\": %s\n",
               bit_identical ? "true" : "false");
  std::fprintf(out, "}\n");
  std::fclose(out);

  std::printf(
      "bench: %llu requests, hit_rate=%.3f, hit_p50=%.1fus "
      "miss_p50=%.1fus, violations=%llu, bit_identical=%s -> %s\n",
      static_cast<unsigned long long>(total.load()), hit_rate, hit_p50,
      miss_p50, static_cast<unsigned long long>(precision_violations.load()),
      bit_identical ? "yes" : "NO", flags.out.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return 2;
  mde::obs::DiagServer::MaybeStartFromEnv();
  return flags.bench ? RunBench(flags) : RunDemo(flags);
}
