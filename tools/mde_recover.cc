// mde_recover: checkpoint -> kill -> restore -> verify, from the CLI.
//
//   mde_recover [--engine dsgd|mc|simsql|pf|wildfire|all]
//               [--fault-frac F] [--threads N] [--mode manual|inject|both]
//
// For each selected engine the tool runs a small fixed problem three ways:
//
//   reference  uninterrupted run to completion
//   manual     run to step k = ceil(F * total), Save(), destroy the engine,
//              construct a fresh one, Restore(), finish
//   inject     configure the global FaultInjector to fire at the engine's
//              fault point on hit k and drive the run with RunWithRecovery
//
// and then compares the *final snapshots* byte for byte. Because snapshots
// capture the complete working state (RNG substream positions, cursors,
// accumulators, doubles as IEEE-754 bits), byte equality is exactly the
// bit-identical-recovery guarantee. Exit codes: 0 all verified, 1 bad usage
// or mismatch, 2 an engine failed outright.

#include <cmath>
#include <cstring>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/fault.h"
#include "ckpt/recovery.h"
#include "obs/http.h"
#include "dsgd/dsgd.h"
#include "dsgd/matrix_completion.h"
#include "simd/simd.h"
#include "simsql/simsql.h"
#include "smc/particle_filter.h"
#include "table/table.h"
#include "util/distributions.h"
#include "util/thread_pool.h"
#include "wildfire/assimilate.h"
#include "wildfire/fire.h"

namespace {

using mde::Result;
using mde::Rng;
using mde::Status;
using mde::ThreadPool;

int Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--engine dsgd|mc|simsql|pf|wildfire|all] [--fault-frac F]"
               " [--threads N] [--mode manual|inject|both]"
               " [--ckpt-tier scalar|sse4|avx2]\n"
               "  --ckpt-tier runs the pre-kill half of the manual mode "
               "under the given\n  SIMD tier and the restore+finish under "
               "the session tier, verifying that\n  checkpoints written on "
               "one kernel tier restore bit-identically on another.\n";
  return 1;
}

/// One engine's fixed verification problem: fresh engines over shared
/// immutable inputs, plus the step count and fault-point name.
struct Harness {
  std::string name;
  std::string fault_point;
  size_t total_steps = 0;
  std::function<std::unique_ptr<mde::ckpt::Checkpointable>()> make;
};

/// Linear-Gaussian state-space model for the particle-filter harness.
class ArModel : public mde::smc::StateSpaceModel {
 public:
  mde::smc::State SampleInitial(const mde::smc::Observation&,
                                Rng& rng) const override {
    return {mde::SampleNormal(rng, 0.0, 1.0)};
  }
  mde::smc::State SampleProposal(const mde::smc::Observation&,
                                 const mde::smc::State& x_prev,
                                 Rng& rng) const override {
    return {0.9 * x_prev[0] + mde::SampleNormal(rng, 0.0, 0.5)};
  }
  double LogObservation(const mde::smc::Observation& y,
                        const mde::smc::State& x) const override {
    return mde::NormalLogPdf(y[0], x[0], 0.4);
  }
};

/// Shared problem data; must outlive the engines the factories create.
struct Problems {
  explicit Problems(size_t threads) : pool(threads) {
    // dsgd: small conflict-free tridiagonal system.
    {
      const size_t n = 64;
      mde::linalg::Tridiagonal a;
      a.lower.assign(n - 1, 1.0);
      a.diag.assign(n, 4.0);
      a.upper.assign(n - 1, 1.0);
      mde::linalg::Vector b(n, 1.0);
      rows = mde::dsgd::RowsFromTridiagonal(a, b);
      strata = mde::dsgd::TridiagonalStrata(rows.size());
      dsgd_options.rounds = 30;
      dsgd_options.sgd.trace_every = 5;
    }
    // mc: synthetic low-rank ratings.
    {
      ratings = mde::dsgd::SyntheticRatings(40, 30, 3, 0.3, 0.1, 9);
      mc_options.rank = 4;
      mc_options.epochs = 6;
      mc_options.blocks = 3;
    }
    // simsql: a database-valued random walk.
    {
      mde::simsql::ChainTableSpec spec;
      spec.name = "WALKERS";
      spec.init = [](const mde::simsql::DatabaseState&,
                     Rng&) -> Result<mde::table::Table> {
        mde::table::Table t{mde::table::Schema(
            {{"id", mde::table::DataType::kInt64},
             {"pos", mde::table::DataType::kDouble}})};
        for (int64_t i = 0; i < 8; ++i) t.Append({i, 0.0});
        return t;
      };
      spec.transition = [](const mde::simsql::DatabaseState& prev,
                           const mde::simsql::DatabaseState&,
                           Rng& rng) -> Result<mde::table::Table> {
        const mde::table::Table& old = prev.at("WALKERS");
        mde::table::Table t(old.schema());
        for (const mde::table::Row& r : old.rows()) {
          t.Append({r[0], mde::table::Value(
                              r[1].AsDouble() +
                              mde::SampleStandardNormal(rng))});
        }
        return t;
      };
      if (!db.AddChainTable(std::move(spec)).ok()) std::abort();
      db.set_history_limit(3);
    }
    // pf: pre-generated observations from the AR model.
    {
      Rng rng(31);
      double x = 0.0;
      for (size_t t = 0; t < 12; ++t) {
        x = 0.9 * x + mde::SampleNormal(rng, 0.0, 0.5);
        observations.push_back({x + mde::SampleNormal(rng, 0.0, 0.4)});
      }
      pf_options.num_particles = 200;
      pf_options.seed = 77;
      pf_options.pool = &pool;
    }
    // wildfire: small terrain, bootstrap proposal.
    {
      terrain = mde::wildfire::GenerateTerrain(20, 20, 0.4, 0.1, 13);
      sim = std::make_unique<mde::wildfire::FireSim>(
          terrain, mde::wildfire::FireSim::Config{});
      sensors = std::make_unique<mde::wildfire::SensorModel>(
          terrain, mde::wildfire::SensorModel::Config{});
      wf_config.num_particles = 40;
    }
  }

  ThreadPool pool;
  std::vector<mde::dsgd::SparseRow> rows;
  std::vector<std::vector<size_t>> strata;
  mde::dsgd::DsgdOptions dsgd_options;
  mde::dsgd::RatingsDataset ratings;
  mde::dsgd::CompletionOptions mc_options;
  mde::simsql::MarkovChainDb db;
  ArModel model;
  std::vector<mde::smc::Observation> observations;
  mde::smc::ParticleFilterOptions pf_options;
  mde::wildfire::Terrain terrain;
  std::unique_ptr<mde::wildfire::FireSim> sim;
  std::unique_ptr<mde::wildfire::SensorModel> sensors;
  mde::wildfire::AssimilationConfig wf_config;
};

std::vector<Harness> MakeHarnesses(Problems& p) {
  std::vector<Harness> hs;
  hs.push_back({"dsgd", "dsgd.round", p.dsgd_options.rounds, [&p]() {
                  return std::make_unique<mde::dsgd::DsgdRun>(
                      p.rows, p.rows.size(), p.strata, p.pool,
                      p.dsgd_options);
                }});
  hs.push_back({"mc", "mc.sub_epoch",
                p.mc_options.epochs * p.mc_options.blocks, [&p]() {
                  return std::make_unique<mde::dsgd::MatrixCompletionRun>(
                      p.ratings.train, p.ratings.rows, p.ratings.cols,
                      p.pool, p.mc_options);
                }});
  hs.push_back({"simsql", "simsql.version", /*steps=10 -> versions 0..10*/
                11, [&p]() {
                  return std::make_unique<mde::simsql::ChainRunner>(
                      p.db, 10, /*seed=*/42, /*rep=*/0);
                }});
  hs.push_back({"pf", "smc.step", p.observations.size(), [&p]() {
                  return std::make_unique<mde::smc::FilterRun>(
                      p.model, p.observations, p.pf_options);
                }});
  hs.push_back({"wildfire", "wildfire.step", 8, [&p]() {
                  return std::make_unique<mde::wildfire::AssimilationDriver>(
                      *p.sim, *p.sensors, 8, p.wf_config,
                      /*truth_seed=*/11);
                }});
  return hs;
}

/// Uninterrupted run; returns the final snapshot.
Result<std::string> Reference(const Harness& h) {
  auto engine = h.make();
  while (!engine->Done()) MDE_RETURN_NOT_OK(engine->StepOnce());
  return engine->Save();
}

/// Run to step k, Save, destroy, Restore into a fresh engine, finish.
/// When `ckpt_tier` is set, the pre-kill half runs under that SIMD kernel
/// tier and the restore+finish under the ambient tier — snapshots carry no
/// tier state, and the kernels are bitwise tier-identical, so the final
/// snapshot must still match the reference byte for byte.
Result<std::string> ManualKillRestore(const Harness& h, size_t k,
                                      const mde::simd::Tier* ckpt_tier) {
  const mde::simd::Tier session_tier = mde::simd::ActiveTier();
  std::string mid;
  {
    if (ckpt_tier != nullptr) mde::simd::SetTier(*ckpt_tier);
    auto victim = h.make();
    for (size_t s = 0; s < k && !victim->Done(); ++s) {
      if (!victim->StepOnce().ok()) {
        mde::simd::SetTier(session_tier);
        return Status::Internal("pre-kill step failed");
      }
    }
    auto m = victim->Save();
    mde::simd::SetTier(session_tier);
    MDE_RETURN_NOT_OK(m.status());
    mid = m.value();
  }  // victim destroyed: the "kill"
  auto engine = h.make();
  MDE_RETURN_NOT_OK(engine->Restore(mid));
  while (!engine->Done()) MDE_RETURN_NOT_OK(engine->StepOnce());
  return engine->Save();
}

/// Fault injected at the k-th hit of the engine's fault point; recovery via
/// the production RunWithRecovery loop.
Result<std::string> InjectAndRecover(const Harness& h, size_t k) {
  mde::ckpt::FaultInjector::Config fc;
  fc.enabled = true;
  fc.point = h.fault_point;
  fc.fire_at_hit = k;
  mde::ckpt::FaultInjector::Global().Configure(fc);
  auto engine = h.make();
  mde::ckpt::RecoveryOptions opts;
  opts.checkpoint_every = 1;
  opts.retry.sleep = false;
  const Result<mde::ckpt::RecoveryStats> stats =
      mde::ckpt::RunWithRecovery(*engine, opts);
  mde::ckpt::FaultInjector::Global().Configure({});  // quiesce
  MDE_RETURN_NOT_OK(stats.status());
  if (stats.value().faults == 0) {
    return Status::Internal("fault point '" + h.fault_point +
                            "' never fired");
  }
  return engine->Save();
}

}  // namespace

int main(int argc, char** argv) {
  mde::obs::DiagServer::MaybeStartFromEnv();
  std::string engine_filter = "all";
  std::string mode = "both";
  double fault_frac = 0.5;
  size_t threads = 2;
  bool have_ckpt_tier = false;
  mde::simd::Tier ckpt_tier = mde::simd::Tier::kScalar;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--engine") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      engine_filter = v;
    } else if (arg == "--mode") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      mode = v;
    } else if (arg == "--fault-frac") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      fault_frac = std::atof(v);
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      threads = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--ckpt-tier") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      const std::string tier_name = v;
      if (tier_name == "scalar") {
        ckpt_tier = mde::simd::Tier::kScalar;
      } else if (tier_name == "sse4") {
        ckpt_tier = mde::simd::Tier::kSse4;
      } else if (tier_name == "avx2") {
        ckpt_tier = mde::simd::Tier::kAvx2;
      } else {
        return Usage(argv[0]);
      }
      if (static_cast<int>(ckpt_tier) >
          static_cast<int>(mde::simd::BestSupportedTier())) {
        std::cerr << "--ckpt-tier " << tier_name
                  << " not supported on this machine\n";
        return 1;
      }
      have_ckpt_tier = true;
    } else {
      return Usage(argv[0]);
    }
  }
  if (fault_frac <= 0.0 || fault_frac >= 1.0 || threads == 0 ||
      (mode != "manual" && mode != "inject" && mode != "both")) {
    return Usage(argv[0]);
  }

  Problems problems(threads);
  bool any = false;
  bool all_ok = true;
  for (const Harness& h : MakeHarnesses(problems)) {
    if (engine_filter != "all" && engine_filter != h.name) continue;
    any = true;
    const size_t k = std::max<size_t>(
        1, static_cast<size_t>(
               std::ceil(fault_frac * static_cast<double>(h.total_steps))));
    const Result<std::string> ref = Reference(h);
    if (!ref.ok()) {
      std::cerr << h.name << ": reference run failed: "
                << ref.status().message() << "\n";
      return 2;
    }
    if (mode == "manual" || mode == "both") {
      const Result<std::string> got = ManualKillRestore(
          h, k, have_ckpt_tier ? &ckpt_tier : nullptr);
      if (!got.ok()) {
        std::cerr << h.name << ": kill/restore failed: "
                  << got.status().message() << "\n";
        return 2;
      }
      const bool match = got.value() == ref.value();
      all_ok = all_ok && match;
      std::cout << h.name << " manual  kill@" << k << "/" << h.total_steps;
      if (have_ckpt_tier) {
        std::cout << "  ckpt-tier=" << mde::simd::TierName(ckpt_tier)
                  << "->" << mde::simd::TierName(mde::simd::ActiveTier());
      }
      std::cout << (match ? "  bit-identical" : "  MISMATCH") << "\n";
    }
    if (mode == "inject" || mode == "both") {
      const Result<std::string> got = InjectAndRecover(h, k);
      if (!got.ok()) {
        std::cerr << h.name << ": fault injection failed: "
                  << got.status().message() << "\n";
        return 2;
      }
      const bool match = got.value() == ref.value();
      all_ok = all_ok && match;
      std::cout << h.name << " inject  fault@" << k << "/" << h.total_steps
                << (match ? "  bit-identical" : "  MISMATCH") << "\n";
    }
  }
  if (!any) return Usage(argv[0]);
  return all_ok ? 0 : 1;
}
