#!/usr/bin/env python3
"""Checks a google-benchmark JSON file from bench_query_pushdown: the
cost-based optimizer path (BM_CostBasedPlan = OptimizePlan + execute of
the naive spelling) must not be slower than executing the plan as
written (BM_NaivePlan).

The naive plan filters above the join, so the optimized plan has a
several-fold advantage at the benchmark's data size; TOLERANCE only
absorbs CI-runner jitter, it does not let a regression that erases the
pushdown win slip through.

Usage: check_bench_opt.py BENCH_JSON   (exit 0 = pass)
"""

import json
import sys

# The cost-based path may be at most this fraction of the as-written
# time. Locally it sits near 0.13x; anything close to 1.0 means the
# optimizer stopped finding the pushed-down shape.
TOLERANCE = 0.85

NAIVE = "BM_NaivePlan"
COST_BASED = "BM_CostBasedPlan"


def real_time_ms(benchmarks, name):
    """Mean real time in ms for `name`, robust to --benchmark_repetitions
    (prefers the *_mean aggregate when present)."""
    agg = [b for b in benchmarks if b["name"] == name + "_mean"]
    plain = [b for b in benchmarks if b["name"] == name]
    chosen = agg if agg else plain
    if not chosen:
        raise SystemExit("missing benchmark: %s" % name)
    unit = chosen[0].get("time_unit", "ns")
    scale = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}[unit]
    times = [b["real_time"] * scale for b in chosen]
    return sum(times) / len(times)


def main(argv):
    if len(argv) != 2:
        raise SystemExit(__doc__)
    with open(argv[1]) as f:
        benchmarks = json.load(f)["benchmarks"]
    naive = real_time_ms(benchmarks, NAIVE)
    cost = real_time_ms(benchmarks, COST_BASED)
    ratio = cost / naive
    print("as-written %s: %.3f ms" % (NAIVE, naive))
    print("cost-based %s: %.3f ms" % (COST_BASED, cost))
    print("ratio: %.3f (must be <= %.2f)" % (ratio, TOLERANCE))
    if ratio > TOLERANCE:
        raise SystemExit(
            "FAIL: cost-based plan is not beating the as-written plan "
            "(ratio %.3f > %.2f)" % (ratio, TOLERANCE))
    print("OK: cost-based optimization beats the as-written plan")


if __name__ == "__main__":
    main(sys.argv)
