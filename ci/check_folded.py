#!/usr/bin/env python3
"""Checks a folded-stack CPU profile, as served by /profilez and rendered
by mde::obs::Profiler::Folded.

Validates, stdlib-only:
  * exactly one header comment `# mde_profile hz=H samples=N window_s=S`
    (first non-blank line; hz is a positive integer, samples a
    non-negative integer, window_s a positive float);
  * every other non-blank line is `frame;frame;...;frame count` — the
    count is split off the LAST space, so frames may contain spaces
    (demangled C++ signatures do) but never ';' (the folder sanitizes it);
  * counts are positive integers and non-increasing top to bottom
    (Folded sorts count-descending);
  * no frame is empty (no ";;" runs, no leading/trailing ';');
  * synthetic query roots, when present, are the FIRST frame and match
    `query:0x<hex>` or `query:-`;
  * the per-line counts sum to the header's samples= value.

A header with samples=0 and no stack lines is legal (an idle window).

Usage: check_folded.py FILE...   (exit 0 = all files pass)
"""

import re
import sys

HEADER_RE = re.compile(
    r"^# mde_profile hz=([0-9]+) samples=([0-9]+) window_s=([0-9.]+)$")
QUERY_ROOT_RE = re.compile(r"^query:(0x[0-9a-f]+|-)$")


def check(path, text):
    errors = []
    lines = text.splitlines()
    header = None
    total = 0
    prev_count = None
    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            m = HEADER_RE.match(line)
            if m is None:
                errors.append("%s:%d: bad comment line %r" % (path, lineno, line))
                continue
            if header is not None:
                errors.append("%s:%d: duplicate header" % (path, lineno))
                continue
            if int(m.group(1)) <= 0:
                errors.append("%s:%d: hz must be positive" % (path, lineno))
            if float(m.group(3)) <= 0:
                errors.append("%s:%d: window_s must be positive" % (path, lineno))
            header = (int(m.group(1)), int(m.group(2)), float(m.group(3)))
            continue
        if header is None:
            errors.append("%s:%d: stack line before header" % (path, lineno))
        # Count comes after the last space: frames may contain spaces
        # (demangled signatures), the count never does.
        stack, sep, count_str = line.rpartition(" ")
        if not sep or not count_str.isdigit():
            errors.append("%s:%d: no trailing count: %r" % (path, lineno, line))
            continue
        count = int(count_str)
        if count <= 0:
            errors.append("%s:%d: non-positive count" % (path, lineno))
        if prev_count is not None and count > prev_count:
            errors.append("%s:%d: counts not descending (%d after %d)"
                          % (path, lineno, count, prev_count))
        prev_count = count
        total += count
        frames = stack.split(";")
        if any(f == "" for f in frames):
            errors.append("%s:%d: empty frame in %r" % (path, lineno, stack))
            continue
        for i, frame in enumerate(frames):
            if frame.startswith("query:"):
                if i != 0:
                    errors.append("%s:%d: query root %r not first"
                                  % (path, lineno, frame))
                elif QUERY_ROOT_RE.match(frame) is None:
                    errors.append("%s:%d: bad query root %r"
                                  % (path, lineno, frame))
    if header is None:
        errors.append("%s: missing '# mde_profile ...' header" % path)
    elif total != header[1]:
        errors.append("%s: stack counts sum to %d but header says samples=%d"
                      % (path, total, header[1]))
    return errors


def main(argv):
    if len(argv) < 2:
        print("usage: check_folded.py FILE...", file=sys.stderr)
        return 2
    failed = False
    for path in argv[1:]:
        try:
            with open(path, "r", encoding="utf-8") as f:
                text = f.read()
        except OSError as e:
            print("%s: %s" % (path, e), file=sys.stderr)
            failed = True
            continue
        errors = check(path, text)
        if errors:
            failed = True
            for e in errors:
                print(e, file=sys.stderr)
        else:
            print("%s: OK (%d stacks)" % (path, sum(
                1 for l in text.splitlines() if l.strip() and not l.startswith("#"))))
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
