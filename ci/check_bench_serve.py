#!/usr/bin/env python3
"""Gates BENCH_serve.json from `mde_serve --bench` — the closed-loop
multi-session serving benchmark. This enforces the serving layer's
acceptance contract, not a raw-speed number:

  - hit_rate >= 0.9: with 8 sessions replaying a zipf-mixed workload over
    a shared CLT-bounded result cache, at least 90% of requests must be
    answered without running any Monte Carlo replication.
  - precision_violations == 0: every answer whose request did not exhaust
    max_reps must carry a CI half-width <= the requested target. A cached
    answer claiming precision it does not have is the bug class the
    tiny-n Welford/CiMonitor hardening closed.
  - bit_identical / cross_session_consistent: answers assembled
    concurrently through the cache must match, bit for bit, a fresh
    single-threaded server replaying the same replication indices. This
    is the MVCC + substream-seeding determinism contract.
  - hit_p50_us < miss_p50_us: a cache hit must be cheaper than a miss,
    and cheap in absolute terms — otherwise the cache is decorative.

Usage: check_bench_serve.py BENCH_serve.json   (exit 0 = pass)
"""

import json
import sys

MIN_HIT_RATE = 0.9
# A pure hit is a map lookup + one entry-mutex acquisition; even a loaded
# CI runner should stay well under this.
MAX_HIT_P50_US = 100.0


def main(argv):
    if len(argv) != 2:
        raise SystemExit(__doc__)
    with open(argv[1]) as f:
        bench = json.load(f)

    failures = []

    hit_rate = bench["hit_rate"]
    print("hit_rate: %.4f (need >= %.2f)" % (hit_rate, MIN_HIT_RATE))
    if hit_rate < MIN_HIT_RATE:
        failures.append("hit_rate %.4f < %.2f" % (hit_rate, MIN_HIT_RATE))

    violations = bench["precision_violations"]
    print("precision_violations: %d (need 0)" % violations)
    if violations != 0:
        failures.append("%d answers violated their precision target" %
                        violations)

    if not bench["cross_session_consistent"]:
        failures.append("concurrent sessions observed divergent answers "
                        "for the same (shape, version)")
    if not bench["bit_identical"]:
        failures.append("cached answers are not bit-identical to a fresh "
                        "single-threaded replay")
    print("cross_session_consistent: %s, bit_identical: %s" %
          (bench["cross_session_consistent"], bench["bit_identical"]))

    hit_p50 = bench["hit_p50_us"]
    miss_p50 = bench["miss_p50_us"]
    print("hit_p50: %.1f us, miss_p50: %.1f us (hit must be cheaper and "
          "<= %.0f us)" % (hit_p50, miss_p50, MAX_HIT_P50_US))
    if bench["misses"] > 0 and hit_p50 >= miss_p50:
        failures.append("hit_p50 %.1f us >= miss_p50 %.1f us" %
                        (hit_p50, miss_p50))
    if hit_p50 > MAX_HIT_P50_US:
        failures.append("hit_p50 %.1f us > %.0f us" %
                        (hit_p50, MAX_HIT_P50_US))

    # Sanity: the cache must actually be saving work, not just passing
    # requests through.
    if bench["reps_saved"] <= bench["reps_run"]:
        failures.append("reps_saved (%d) <= reps_run (%d): the cache is "
                        "not amortizing replications" %
                        (bench["reps_saved"], bench["reps_run"]))

    if failures:
        for f in failures:
            print("FAIL: %s" % f)
        raise SystemExit(1)
    print("OK: serving-layer acceptance contract holds")


if __name__ == "__main__":
    main(sys.argv)
