#!/usr/bin/env python3
"""Checks a Prometheus text-exposition (0.0.4) file, as written by
--mde_metrics_out / mde::obs::PrometheusText.

Validates, stdlib-only:
  * line grammar: `# TYPE <name> <kind>`, `<name>[{labels}] <value>`, or
    `<name>_bucket{le="<bound>"} <count>`;
  * metric names match [a-zA-Z_:][a-zA-Z0-9_:]*;
  * every sample belongs to the family declared by the preceding # TYPE;
  * label sets parse (`name="value"` pairs, \\ \" \n escapes), carry no
    duplicate label names, and no two samples in a family repeat the same
    label set;
  * the per-query attribution families (mde_query_*) label every sample
    with query="0x<hex fingerprint>" and tag="<entry point>";
  * histogram buckets are cumulative (non-decreasing), end with le="+Inf",
    and the +Inf bucket equals the family's _count;
  * histograms carry exactly one _sum and one _count.

Usage: check_prometheus.py FILE...   (exit 0 = all files pass)
"""

import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
TYPE_RE = re.compile(r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$")
SAMPLE_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?(?:[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?|[0-9]+)|[+-]?Inf|NaN)$")
BUCKET_LABEL_RE = re.compile(r'^\{le="([^"]+)"\}$')
LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
# FingerprintHex output: 0x + lowercase hex, as emitted by AttributionText.
QUERY_LABEL_RE = re.compile(r"^0x[0-9a-f]+$")


class Checker:
    def __init__(self, path):
        self.path = path
        self.errors = []
        # Per-histogram-family state.
        self.family = None
        self.family_kind = None
        self.buckets = []  # (le, cumulative_count)
        self.sums = 0
        self.counts = 0
        self.count_value = None
        self.seen_labelsets = set()

    def error(self, lineno, msg):
        self.errors.append("%s:%d: %s" % (self.path, lineno, msg))

    def close_family(self, lineno):
        """Validates the accumulated histogram family, if any."""
        if self.family is None or self.family_kind != "histogram":
            self.family = None
            return
        name = self.family
        if not self.buckets:
            self.error(lineno, "histogram %s has no _bucket samples" % name)
        else:
            prev = -1.0
            prev_le = None
            for le, cum in self.buckets:
                if prev_le is not None and le <= prev_le and le != float("inf"):
                    self.error(lineno, "histogram %s bucket bounds not ascending" % name)
                if cum < prev:
                    self.error(lineno, "histogram %s buckets not cumulative" % name)
                prev = cum
                prev_le = le
            if self.buckets[-1][0] != float("inf"):
                self.error(lineno, 'histogram %s does not end with le="+Inf"' % name)
            elif self.count_value is not None and self.buckets[-1][1] != self.count_value:
                self.error(
                    lineno,
                    "histogram %s: +Inf bucket (%g) != _count (%g)"
                    % (name, self.buckets[-1][1], self.count_value),
                )
        if self.sums != 1:
            self.error(lineno, "histogram %s has %d _sum samples" % (name, self.sums))
        if self.counts != 1:
            self.error(lineno, "histogram %s has %d _count samples" % (name, self.counts))
        self.family = None

    def start_family(self, lineno, name, kind):
        self.close_family(lineno)
        self.family = name
        self.family_kind = kind
        self.buckets = []
        self.sums = 0
        self.counts = 0
        self.count_value = None
        self.seen_labelsets = set()

    def parse_labels(self, lineno, name, labels):
        """Parses a `{k="v",...}` label block into a dict, or None on error."""
        body = labels[1:-1]
        result = {}
        pos = 0
        while pos < len(body):
            m = LABEL_PAIR_RE.match(body, pos)
            if m is None:
                self.error(lineno, "bad label set %r on %s" % (labels, name))
                return None
            if m.group(1) in result:
                self.error(lineno, "duplicate label %r on %s" % (m.group(1), name))
                return None
            result[m.group(1)] = m.group(2)
            pos = m.end()
            if pos < len(body):
                # Commas separate pairs; a trailing comma is legal.
                if body[pos] != ",":
                    self.error(lineno, "bad label set %r on %s" % (labels, name))
                    return None
                pos += 1
        return result

    def check_sample(self, lineno, line):
        m = SAMPLE_RE.match(line)
        if m is None:
            self.error(lineno, "unparseable sample line: %r" % line)
            return
        name, labels, value = m.group(1), m.group(2), m.group(3)
        if self.family is None:
            self.error(lineno, "sample %s has no preceding # TYPE" % name)
            return
        base = self.family
        if self.family_kind == "histogram":
            if name == base + "_bucket":
                if labels is None:
                    self.error(lineno, "%s_bucket without le label" % base)
                    return
                lm = BUCKET_LABEL_RE.match(labels)
                if lm is None:
                    self.error(lineno, "bad bucket labels %r" % labels)
                    return
                le = float("inf") if lm.group(1) == "+Inf" else float(lm.group(1))
                self.buckets.append((le, float(value)))
            elif name == base + "_sum":
                self.sums += 1
            elif name == base + "_count":
                self.counts += 1
                self.count_value = float(value)
            else:
                self.error(lineno, "sample %s outside family %s" % (name, base))
        else:
            if name != base:
                self.error(lineno, "sample %s under # TYPE %s" % (name, base))
                return
            parsed = {}
            if labels is not None:
                parsed = self.parse_labels(lineno, name, labels)
                if parsed is None:
                    return
            labelset = tuple(sorted(parsed.items()))
            if labelset in self.seen_labelsets:
                self.error(
                    lineno, "duplicate series %s%s" % (name, labels or ""))
            self.seen_labelsets.add(labelset)
            if base.startswith("mde_query_"):
                # Attribution families: every sample is one query's row and
                # must be keyed by fingerprint + entry-point tag.
                for required in ("query", "tag"):
                    if required not in parsed:
                        self.error(
                            lineno,
                            "%s sample missing %s= label" % (name, required))
                query = parsed.get("query")
                if query is not None and QUERY_LABEL_RE.match(query) is None:
                    self.error(
                        lineno,
                        "%s query label %r is not a 0x-hex fingerprint"
                        % (name, query))

    def run(self, text):
        lineno = 0
        for raw in text.splitlines():
            lineno += 1
            line = raw.rstrip("\n")
            if not line.strip():
                continue
            if line.startswith("#"):
                tm = TYPE_RE.match(line)
                if tm is not None:
                    self.start_family(lineno, tm.group(1), tm.group(2))
                elif not line.startswith("# HELP"):
                    self.error(lineno, "unrecognized comment line: %r" % line)
                continue
            self.check_sample(lineno, line)
        self.close_family(lineno + 1)
        return self.errors


def main(argv):
    if len(argv) < 2:
        print("usage: check_prometheus.py FILE...", file=sys.stderr)
        return 2
    failed = False
    for path in argv[1:]:
        try:
            with open(path, "r", encoding="utf-8") as f:
                text = f.read()
        except OSError as e:
            print("%s: %s" % (path, e), file=sys.stderr)
            failed = True
            continue
        errors = Checker(path).run(text)
        if errors:
            failed = True
            for e in errors:
                print(e, file=sys.stderr)
        else:
            print("%s: OK (%d lines)" % (path, len(text.splitlines())))
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
