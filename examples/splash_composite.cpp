/// Splash-style composite modeling (Sections 2.2-2.3 and 4.2): two
/// loosely-coupled component models — a weather generator and a crop-yield
/// model — communicate only through datasets. A compiled schema mapping
/// harmonizes the hand-off (unit conversion + provenance column), a time
/// aligner coarsens daily weather to the crop model's weekly ticks, and
/// the experiment manager sweeps the composite's parameters over a Latin
/// hypercube, fitting a kriging metamodel for "simulation on demand".

#include <cmath>
#include <cstdio>

#include "composite/experiment.h"
#include "doe/designs.h"
#include "metamodel/kriging.h"
#include "obs/http.h"
#include "table/schema_mapping.h"
#include "timeseries/align.h"
#include "util/check.h"
#include "util/distributions.h"

using namespace mde;  // NOLINT — example brevity

namespace {

/// Component model 1: daily temperature in Fahrenheit for one season.
timeseries::TimeSeries WeatherModel(double warming, Rng& rng) {
  timeseries::TimeSeries daily(1);
  for (int day = 0; day < 120; ++day) {
    const double seasonal =
        65.0 + warming + 18.0 * std::sin(M_PI * day / 120.0);
    MDE_CHECK(daily.Append(day, seasonal + SampleNormal(rng, 0.0, 4.0)).ok());
  }
  return daily;
}

/// Component model 2: crop yield from weekly Celsius temperatures —
/// growth peaks at an optimum temperature, scaled by irrigation.
double CropModel(const timeseries::TimeSeries& weekly_c, double irrigation,
                 Rng& rng) {
  double yield = 0.0;
  for (size_t week = 0; week < weekly_c.size(); ++week) {
    const double t = weekly_c.value(week);
    const double stress = (t - 24.0) * (t - 24.0) / 90.0;
    yield += std::max(0.0, 1.0 - stress) * (0.6 + 0.4 * irrigation);
  }
  return yield + SampleNormal(rng, 0.0, 0.15);
}

/// The data hand-off: daily Fahrenheit table -> weekly Celsius series.
/// Schema alignment (F -> C, provenance) then time alignment (aggregate
/// daily -> weekly), exactly the two Splash transformation classes.
Result<timeseries::TimeSeries> Harmonize(const timeseries::TimeSeries& daily_f) {
  // 1. Schema alignment on the tabular form.
  table::Schema src({{"day", table::DataType::kInt64},
                     {"temp_f", table::DataType::kDouble}});
  table::Table src_table{src};
  for (size_t i = 0; i < daily_f.size(); ++i) {
    src_table.Append({table::Value(static_cast<int64_t>(daily_f.time(i))),
                      table::Value(daily_f.value(i))});
  }
  table::Schema dst({{"day", table::DataType::kInt64},
                     {"temp_c", table::DataType::kDouble},
                     {"source", table::DataType::kString}});
  using CM = table::SchemaMapping::ColumnMapping;
  MDE_ASSIGN_OR_RETURN(
      table::SchemaMapping mapping,
      table::SchemaMapping::Compile(
          src, dst,
          {{"day", CM::Kind::kCopy, "day", {}, nullptr},
           {"temp_c", CM::Kind::kComputed, "", {},
            [](const table::Row& r) {
              return table::Value((r[1].AsDouble() - 32.0) * 5.0 / 9.0);
            }},
           {"source", CM::Kind::kConstant, "",
            table::Value("weather-model-v1"), nullptr}}));
  MDE_ASSIGN_OR_RETURN(table::Table celsius, mapping.Apply(src_table));

  // 2. Time alignment: daily -> weekly means.
  timeseries::TimeSeries daily_c(1);
  for (const table::Row& r : celsius.rows()) {
    MDE_RETURN_NOT_OK(daily_c.Append(
        static_cast<double>(r[0].AsInt()), r[1].AsDouble()));
  }
  std::vector<double> weekly_ticks;
  for (double t = 6.0; t < 120.0; t += 7.0) weekly_ticks.push_back(t);
  return timeseries::AggregateAlign(daily_c, weekly_ticks,
                                    timeseries::AggMethod::kMean);
}

/// The composite model as one parameterized simulation for the experiment
/// manager: parameters (warming, irrigation) -> yield.
Result<double> CompositeSim(const std::map<std::string, double>& params,
                            Rng& rng) {
  timeseries::TimeSeries daily = WeatherModel(params.at("warming"), rng);
  MDE_ASSIGN_OR_RETURN(timeseries::TimeSeries weekly, Harmonize(daily));
  return CropModel(weekly, params.at("irrigation"), rng);
}

}  // namespace

int main() {
  mde::obs::DiagServer::MaybeStartFromEnv();
  std::printf("Splash-style composite: weather -> (harmonize) -> crop\n\n");

  // One end-to-end run, narrated.
  Rng rng(1);
  timeseries::TimeSeries daily = WeatherModel(0.0, rng);
  auto weekly = Harmonize(daily).value();
  std::printf("weather model: %zu daily F readings -> harmonized to %zu "
              "weekly C ticks\n",
              daily.size(), weekly.size());
  std::printf("sample weekly temps (C):");
  for (size_t w = 0; w < weekly.size(); w += 4) {
    std::printf(" %.1f", weekly.value(w));
  }
  std::printf("\n\n");

  // Designed experiment over the composite's parameters.
  Rng design_rng(7);
  linalg::Matrix design =
      doe::NearlyOrthogonalLatinHypercube(2, 17, 64, design_rng);
  std::vector<composite::ParameterSpec> params = {
      {"warming", 0.0, 10.0}, {"irrigation", 0.0, 1.0}};
  composite::ExperimentOptions opt;
  opt.replications = 6;
  auto experiment =
      composite::RunExperiment(design, params, CompositeSim, opt).value();
  std::printf("experiment: 17-point NOLH over (warming, irrigation), 6 "
              "replications each\n\n");
  std::printf("%10s %12s %12s %14s\n", "warming", "irrigation", "yield",
              "replication sd");
  for (size_t p = 0; p < 17; p += 4) {
    std::printf("%10.2f %12.2f %12.2f %14.3f\n",
                experiment.scaled_design(p, 0),
                experiment.scaled_design(p, 1),
                experiment.mean_response[p],
                std::sqrt(experiment.response_variance[p]));
  }

  // Metamodel: instant what-if exploration.
  metamodel::KrigingModel::Options kopt;
  kopt.fit_hyperparameters = true;
  auto surface = metamodel::KrigingModel::Fit(
                     experiment.scaled_design, experiment.mean_response,
                     kopt)
                     .value();
  std::printf("\nkriging metamodel, simulation on demand:\n");
  for (double warming : {0.0, 4.0, 8.0}) {
    std::printf("  warming %.0fC: predicted yield %.2f (dry) / %.2f "
                "(irrigated)\n",
                warming, surface.Predict({warming, 0.1}),
                surface.Predict({warming, 0.9}));
  }
  std::printf("\nthe metamodel answers what-if questions in microseconds; "
              "each real composite\nrun costs two component models plus two "
              "harmonization passes.\n");
  return 0;
}
