/// Simulation as an information-integration tool (Section 3.1): an
/// agent-based "word-of-mouth" market model integrates disparate data
/// (adoption level, volatility, persistence) by calibration. We generate
/// "observed" moments from the model at a hidden true parameter value,
/// then recover the parameters with the method of simulated moments under
/// three strategies, comparing simulator-call budgets.

#include <cstdio>

#include "calibrate/msm.h"
#include "obs/http.h"
#include "util/distributions.h"
#include "util/stats.h"

using namespace mde;             // NOLINT — example brevity
using namespace mde::calibrate;  // NOLINT

namespace {

/// Agent-based adoption model: theta = (social influence, churn).
/// Agents adopt with probability rising in the adopted fraction (word of
/// mouth) and abandon at the churn rate. Moments: mean adoption, variance,
/// lag-1 autocorrelation of the adoption path.
Result<std::vector<double>> MarketSimulator(const std::vector<double>& theta,
                                            uint64_t seed) {
  const double influence = theta[0];
  const double churn = theta[1];
  Rng rng(seed * 977 + 13);
  const int agents = 200;
  std::vector<uint8_t> adopted(agents, 0);
  std::vector<double> path;
  for (int t = 0; t < 80; ++t) {
    int count = 0;
    for (uint8_t a : adopted) count += a;
    const double frac = static_cast<double>(count) / agents;
    for (auto& a : adopted) {
      if (!a) {
        a = SampleBernoulli(rng, 0.02 + influence * frac) ? 1 : 0;
      } else if (SampleBernoulli(rng, churn)) {
        a = 0;
      }
    }
    path.push_back(frac);
  }
  return std::vector<double>{Mean(path), 10.0 * Variance(path),
                             Autocorrelation(path, 1)};
}

}  // namespace

int main() {
  mde::obs::DiagServer::MaybeStartFromEnv();
  std::printf("ABS calibration by the method of simulated moments\n\n");
  const std::vector<double> theta_true = {0.5, 0.08};
  std::printf("hidden true parameters: influence=%.2f churn=%.2f\n\n",
              theta_true[0], theta_true[1]);

  // "Observed" data: moments measured from the real-world process (here:
  // the simulator at theta_true, which we pretend we cannot see).
  std::vector<double> observed(3, 0.0);
  std::vector<std::vector<double>> moment_samples;
  for (int r = 0; r < 60; ++r) {
    auto m = MarketSimulator(theta_true, 50000 + r).value();
    moment_samples.push_back(m);
    for (int k = 0; k < 3; ++k) observed[k] += m[k];
  }
  for (auto& v : observed) v /= 60.0;
  // Hansen-optimal weight matrix from the observed moment covariance.
  linalg::Matrix w = OptimalWeightMatrix(moment_samples).value();

  MsmObjective objective(observed, w, MarketSimulator, /*sim_reps=*/8, 271);
  Bounds bounds{{0.0, 0.0}, {1.5, 0.4}};

  struct Strategy {
    const char* name;
    CalibrationResult result;
  };
  std::vector<Strategy> strategies;

  // Equal-budget comparison (~300 simulator calls each), plus a
  // high-budget Nelder-Mead reference.
  strategies.push_back(
      {"random search, equal budget",
       CalibrateRandomSearch(objective, bounds, 38, 3).value()});

  NelderMeadOptions nm_small;
  nm_small.max_iterations = 16;
  strategies.push_back(
      {"Nelder-Mead, equal budget",
       CalibrateNelderMead(objective, bounds, {1.4, 0.35}, nm_small)
           .value()});

  KrigingCalibrateOptions kr;
  kr.design_points = 25;
  kr.refinement_rounds = 12;
  strategies.push_back(
      {"NOLH + kriging (EGO)",
       CalibrateKriging(objective, bounds, kr).value()});

  NelderMeadOptions nm_big;
  nm_big.max_iterations = 60;
  strategies.push_back(
      {"Nelder-Mead, 4x budget",
       CalibrateNelderMead(objective, bounds, {1.4, 0.35}, nm_big)
           .value()});

  std::printf("%-26s %10s %10s %10s %12s\n", "strategy", "influence",
              "churn", "J(theta)", "sim calls");
  for (const auto& s : strategies) {
    std::printf("%-26s %10.3f %10.3f %10.4f %12zu\n", s.name,
                s.result.theta[0], s.result.theta[1], s.result.j_value,
                s.result.simulator_calls);
  }
  std::printf(
      "\nat equal budget the DOE+kriging metamodel improves on random "
      "sampling of theta\nby an order of magnitude (the Section 3.1 "
      "claim). Nelder-Mead is strong on this\nsmooth unimodal landscape "
      "but, being local, carries no such guarantee in general.\n");
  return 0;
}
