/// MCDB-R risk analysis (Section 2.1): the paper's finance examples — a
/// backward random walk to impute missing historical prices, and
/// simulation of a stock portfolio's value to estimate extreme quantiles
/// (value-at-risk) and threshold probabilities, with bootstrap confidence
/// intervals on the tail statistics.

#include <cmath>
#include <cstdio>

#include "mcdb/estimators.h"
#include "mcdb/vg_function.h"
#include "obs/http.h"
#include "util/check.h"
#include "util/distributions.h"
#include "util/stats.h"

using namespace mde;        // NOLINT — example brevity
using namespace mde::mcdb;  // NOLINT

int main() {
  mde::obs::DiagServer::MaybeStartFromEnv();
  std::printf("MCDB-R style risk analysis\n\n");

  // 1. Impute missing prior prices with the BackwardRandomWalk VG function.
  BackwardRandomWalkVg walk;
  Rng rng(2014);
  std::printf("imputed price history (5 backward walks from $100):\n");
  std::printf("%6s", "step");
  for (int i = -5; i <= -1; ++i) std::printf("%9d", i);
  std::printf("\n");
  for (int sample = 0; sample < 3; ++sample) {
    std::vector<table::Row> out;
    MDE_CHECK(walk.Generate({table::Value(100.0), table::Value(0.0005),
                             table::Value(0.02), table::Value(int64_t{5})},
                            rng, &out)
                  .ok());
    std::printf("%6d", sample);
    for (auto it = out.rbegin(); it != out.rend(); ++it) {
      std::printf("%9.2f", (*it)[1].AsDouble());
    }
    std::printf("\n");
  }

  // 2. Portfolio value one month ahead: 20 positions, each a geometric
  // Brownian motion with its own drift/volatility; Monte Carlo over 4000
  // repetitions.
  std::printf("\nportfolio P&L distribution (4000 Monte Carlo reps):\n");
  const size_t positions = 20;
  std::vector<double> value0(positions), drift(positions), vol(positions);
  Rng setup(7);
  double initial_total = 0.0;
  for (size_t p = 0; p < positions; ++p) {
    value0[p] = 50.0 + setup.NextDouble() * 100.0;
    drift[p] = 0.002 + 0.004 * setup.NextDouble();
    vol[p] = 0.05 + 0.15 * setup.NextDouble();
    initial_total += value0[p];
  }
  std::vector<double> pnl;
  for (size_t rep = 0; rep < 4000; ++rep) {
    Rng r = Rng::Substream(99, rep);
    double total = 0.0;
    for (size_t p = 0; p < positions; ++p) {
      const double z = SampleStandardNormal(r);
      total += value0[p] *
               std::exp(drift[p] - 0.5 * vol[p] * vol[p] + vol[p] * z);
    }
    pnl.push_back(total - initial_total);
  }
  auto summary = Summarize(pnl).value();
  std::printf("  mean P&L %.1f, sd %.1f, median %.1f\n", summary.mean,
              std::sqrt(summary.variance), summary.median);

  // 3. Risk metrics: extreme quantiles with distribution-free CIs, plus a
  // bootstrap CI on expected shortfall.
  auto var99 = ExtremeQuantile(pnl, 0.01, 0.95).value();
  std::printf("\n  1%% quantile (99%% VaR): %.1f  [CI %.1f, %.1f]\n",
              var99.value, var99.ci_low, var99.ci_high);
  auto shortfall = BootstrapConfidenceInterval(
                       pnl,
                       [](const std::vector<double>& s) {
                         const double q = Quantile(s, 0.01);
                         double sum = 0.0;
                         size_t n = 0;
                         for (double v : s) {
                           if (v <= q) {
                             sum += v;
                             ++n;
                           }
                         }
                         return n > 0 ? sum / n : q;
                       },
                       400, 0.95, 11)
                       .value();
  std::printf("  expected shortfall (1%%): %.1f  [bootstrap CI %.1f, %.1f]\n",
              shortfall.estimate, shortfall.lo, shortfall.hi);
  auto loss_prob = ThresholdProbability(pnl, 0.0, 0.95).value();
  std::printf("  P(portfolio gains) = %.3f +- %.3f\n", loss_prob.probability,
              loss_prob.half_width);
  std::printf("\nthe tail quantile, not the mean, is the decision quantity — "
              "the reason MCDB-R\nadds special machinery for extreme "
              "quantiles.\n");
  return 0;
}
