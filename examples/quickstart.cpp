/// Quickstart: the MCDB workflow from Section 2.1 of the paper in ~80
/// lines. We register a deterministic CUSTOMERS table, attach a stochastic
/// DEMAND table driven by the BayesianDemand VG function, and ask the
/// paper's question: "how would revenue from East-Coast customers under 30
/// have been affected by a 5% price increase?" — answered as a Monte Carlo
/// distribution, not a single number.

#include <cmath>
#include <cstdio>

#include "mcdb/estimators.h"
#include "util/check.h"
#include "mcdb/mcdb.h"
#include "mcdb/vg_function.h"
#include "obs/http.h"
#include "table/query.h"

using mde::mcdb::DatabaseInstance;
using mde::mcdb::MonteCarloDb;
using mde::table::DataType;
using mde::table::Row;
using mde::table::Schema;
using mde::table::Table;
using mde::table::Value;

namespace {

MonteCarloDb BuildDatabase(double price_multiplier) {
  MonteCarloDb db;
  Table customers{Schema({{"cid", DataType::kInt64},
                          {"region", DataType::kString},
                          {"age", DataType::kInt64},
                          {"purchases", DataType::kDouble},
                          {"periods", DataType::kDouble},
                          {"price", DataType::kDouble}})};
  mde::Rng rng(4);
  for (int64_t c = 0; c < 400; ++c) {
    customers.Append(
        {Value(c), Value(c % 3 == 0 ? "EAST" : "WEST"),
         Value(static_cast<int64_t>(18 + rng.NextBounded(60))),
         Value(static_cast<double>(rng.NextBounded(40))),
         Value(20.0), Value(10.0 * price_multiplier)});
  }
  MDE_CHECK(db.AddTable("CUSTOMERS", std::move(customers)).ok());

  mde::mcdb::StochasticTableSpec demand;
  demand.name = "DEMAND";
  demand.outer_table = "CUSTOMERS";
  demand.vg = std::make_shared<mde::mcdb::BayesianDemandVg>();
  demand.param_binder = [](const Row& c, const DatabaseInstance&)
      -> mde::Result<Row> {
    // Global Gamma prior, personalized by each customer's history.
    return Row{Value(2.0),  Value(1.0),  c[3],        c[4],
               c[5],        Value(10.0), Value(1.4)};
  };
  demand.output_schema = Schema({{"cid", DataType::kInt64},
                                 {"region", DataType::kString},
                                 {"age", DataType::kInt64},
                                 {"price", DataType::kDouble},
                                 {"units", DataType::kInt64}});
  demand.projector = [](const Row& c, const Row& vg) {
    return Row{c[0], c[1], c[2], c[5], vg[0]};
  };
  MDE_CHECK(db.AddStochasticTable(std::move(demand)).ok());
  return db;
}

/// Revenue from East-Coast customers under 30 in one database instance.
mde::Result<double> TargetRevenue(const DatabaseInstance& instance) {
  MDE_ASSIGN_OR_RETURN(
      Table subset,
      mde::table::Query(instance.at("DEMAND"))
          .Where("region", mde::table::CmpOp::kEq, "EAST")
          .Where("age", mde::table::CmpOp::kLt, int64_t{30})
          .With("revenue", DataType::kDouble,
                [](const Row& r) {
                  return Value(r[3].AsDouble() *
                               static_cast<double>(r[4].AsInt()));
                })
          .Execute());
  return mde::table::SumColumn(subset, "revenue");
}

void Report(const char* label, const std::vector<double>& samples) {
  auto s = mde::mcdb::Summarize(samples).value();
  std::printf("%-22s mean=%9.1f  sd=%7.1f  [q05=%9.1f  q95=%9.1f]\n", label,
              s.mean, std::sqrt(s.variance), s.q05, s.q95);
}

}  // namespace

int main() {
  mde::obs::DiagServer::MaybeStartFromEnv();
  std::printf("MCDB quickstart: revenue under uncertainty (Section 2.1)\n\n");
  const size_t reps = 200;

  MonteCarloDb base = BuildDatabase(1.00);
  MonteCarloDb raised = BuildDatabase(1.05);
  auto base_samples = base.RunNaive(TargetRevenue, reps, 42).value();
  auto raised_samples = raised.RunNaive(TargetRevenue, reps, 42).value();

  Report("current price:", base_samples);
  Report("with 5% increase:", raised_samples);

  std::vector<double> delta(reps);
  for (size_t i = 0; i < reps; ++i) {
    delta[i] = raised_samples[i] - base_samples[i];
  }
  Report("revenue change:", delta);
  auto prob =
      mde::mcdb::ThresholdProbability(delta, 0.0, 0.95).value();
  std::printf("\nP(revenue increases) = %.2f +- %.2f\n", prob.probability,
              prob.half_width);
  return 0;
}
