/// Wildfire data assimilation (Section 3.2): a ground-truth fire spreads
/// over synthetic terrain and is observed through noisy temperature
/// sensors. An open-loop simulation (domain model alone) and particle
/// filters with the bootstrap and the sensor-aware proposals track the
/// front; the example prints per-step cell-classification error — model +
/// data beats either alone.

#include <cstdio>

#include "obs/http.h"
#include "util/stats.h"
#include "wildfire/assimilate.h"
#include "wildfire/fire.h"

using namespace mde::wildfire;  // NOLINT — example brevity

int main() {
  mde::obs::DiagServer::MaybeStartFromEnv();
  std::printf("Wildfire data assimilation via particle filtering\n\n");

  Terrain terrain = GenerateTerrain(40, 40, /*wind_x=*/0.6, /*wind_y=*/0.2,
                                    /*seed=*/2014);
  FireSim sim(terrain, {});
  SensorModel::Config sensor_cfg;
  sensor_cfg.stride = 5;
  sensor_cfg.noise_sd = 20.0;
  SensorModel sensors(terrain, sensor_cfg);
  std::printf("terrain 40x40, %zu sensors, noise sd %.0f deg\n",
              sensors.num_sensors(), sensor_cfg.noise_sd);

  const size_t steps = 25;
  AssimilationConfig bootstrap;
  bootstrap.num_particles = 150;
  bootstrap.proposal = ProposalKind::kBootstrap;
  bootstrap.seed = 5;
  auto boot = RunAssimilation(sim, sensors, steps, bootstrap, 99).value();

  AssimilationConfig aware = bootstrap;
  aware.proposal = ProposalKind::kSensorAware;
  aware.num_particles = 60;  // KDE weighting is pricier per particle
  aware.kde_samples = 6;
  auto smart = RunAssimilation(sim, sensors, steps, aware, 99).value();

  std::printf("\n%5s %12s %14s %16s\n", "step", "open-loop", "bootstrap PF",
              "sensor-aware PF");
  for (size_t t = 0; t < steps; t += 3) {
    std::printf("%5zu %11.3f%% %13.3f%% %15.3f%%\n", t + 1,
                100.0 * boot.open_loop_error[t],
                100.0 * boot.filter_error[t],
                100.0 * smart.filter_error[t]);
  }
  std::printf("\nmean error: open-loop %.3f%%, bootstrap %.3f%%, "
              "sensor-aware %.3f%%\n",
              100.0 * mde::Mean(boot.open_loop_error),
              100.0 * mde::Mean(boot.filter_error),
              100.0 * mde::Mean(smart.filter_error));
  std::printf("mean bootstrap ESS: %.1f of %zu particles\n",
              mde::Mean(boot.ess), bootstrap.num_particles);
  return 0;
}
