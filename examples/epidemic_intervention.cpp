/// Indemics-style epidemic study (Section 2.4): a synthetic 20k-person
/// population, an SEIR epidemic stepped by the compute engine, and the
/// paper's Algorithm 1 intervention ("vaccinate preschoolers when more
/// than 1% of them are sick") expressed through the relational query
/// engine. Compares the intervened epidemic against the baseline.

#include <cstdio>

#include "epi/indemics.h"
#include "epi/network.h"
#include "obs/http.h"
#include "table/query.h"

using namespace mde;           // NOLINT — example brevity
using namespace mde::epi;      // NOLINT

namespace {

EpidemicSim MakeSim(uint64_t seed) {
  PopulationConfig pop;
  pop.num_people = 20000;
  pop.seed = 2014;
  DiseaseConfig disease;
  disease.transmissibility = 0.010;
  disease.initial_infections = 20;
  disease.seed = seed;
  return EpidemicSim(GeneratePopulation(pop), disease);
}

void PrintCurve(const char* label, const std::vector<DailyStats>& history) {
  std::printf("%s\n  day:", label);
  for (size_t d = 9; d < history.size(); d += 30) {
    std::printf("%7zu", history[d].day);
  }
  std::printf("\n  inf:");
  for (size_t d = 9; d < history.size(); d += 30) {
    std::printf("%7zu", history[d].infectious);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  mde::obs::DiagServer::MaybeStartFromEnv();
  std::printf("Indemics-style epidemic intervention (Algorithm 1)\n\n");

  EpidemicSim baseline = MakeSim(7);
  auto base_history = RunWithPolicy(baseline, 300, 1, nullptr).value();

  EpidemicSim treated = MakeSim(7);
  auto treat_history =
      RunWithPolicy(treated, 300, 1, VaccinatePreschoolersPolicy(0.01))
          .value();

  PrintCurve("baseline (no intervention):", base_history);
  PrintCurve("with preschool vaccination:", treat_history);

  size_t vaccinated = 0;
  for (const Person& p : treated.network().people()) {
    if (p.vaccinated) ++vaccinated;
  }
  std::printf("\n%-34s %8s %8s\n", "", "baseline", "policy");
  std::printf("%-34s %8zu %8zu\n", "total ever infected",
              baseline.TotalInfected(), treated.TotalInfected());
  std::printf("%-34s %8zu %8zu\n", "peak simultaneous infectious",
              baseline.PeakInfectious(), treated.PeakInfectious());
  std::printf("%-34s %8d %8zu\n", "doses administered", 0, vaccinated);

  // A post-hoc SQL-style analysis: attack rate by age band.
  std::printf("\nattack rate by age band (policy run):\n");
  table::Table people = treated.PersonTable();
  auto banded = table::Query(people)
                    .With("band", table::DataType::kString,
                          [](const table::Row& r) {
                            const int64_t age = r[1].AsInt();
                            if (age <= 4) return table::Value("preschool");
                            if (age <= 18) return table::Value("school");
                            return table::Value("adult");
                          })
                    .With("infected", table::DataType::kInt64,
                          [](const table::Row& r) {
                            return table::Value(
                                r[3].AsString() == "S" ? int64_t{0}
                                                       : int64_t{1});
                          })
                    .GroupByAgg({"band"},
                                {{table::AggKind::kCount, "", "n"},
                                 {table::AggKind::kAvg, "infected", "rate"}})
                    .OrderByAsc({"band"})
                    .Execute()
                    .value();
  for (const table::Row& r : banded.rows()) {
    std::printf("  %-10s n=%6lld  rate=%.3f\n", r[0].AsString().c_str(),
                static_cast<long long>(r[1].AsInt()), r[2].AsDouble());
  }
  return 0;
}
