/// Bonabeau's traffic example (Section 1): simple agent rules — accelerate
/// when clear, brake behind slower cars, hesitate at random — reproduce
/// real-world jam formation that no correlation mining over speed/volume
/// data could explain. Prints the fundamental diagram (density vs mean
/// speed and flow) and shows spontaneous jams at high density; then runs
/// Schelling's segregation model, the other canonical emergent-behavior
/// ABS the paper cites.

#include <cstdio>

#include "abs/schelling.h"
#include "abs/traffic.h"
#include "obs/http.h"

using namespace mde::abs;  // NOLINT — example brevity

int main() {
  mde::obs::DiagServer::MaybeStartFromEnv();
  std::printf("Agent-based traffic on a 1000-cell ring road\n\n");
  std::printf("%9s %12s %7s\n", "density", "mean speed", "jams");
  for (size_t cars : {50, 150, 250, 350, 500, 700}) {
    TrafficSim::Config cfg;
    cfg.num_cells = 1000;
    cfg.num_cars = cars;
    cfg.seed = 99;
    TrafficSim sim(cfg);
    for (int t = 0; t < 300; ++t) sim.Step();
    double speed = 0.0;
    for (int t = 0; t < 100; ++t) {
      sim.Step();
      speed += sim.MeanSpeed();
    }
    std::printf("%8.2f%% %12.2f %7zu\n",
                100.0 * cars / cfg.num_cells, speed / 100.0,
                sim.CountJams());
  }
  std::printf("\njams emerge spontaneously above ~15%% density even though\n"
              "every driver follows the same simple local rules.\n");

  std::printf("\nSchelling segregation (mild 35%% preference)\n\n");
  SchellingSim::Config sc;
  sc.width = 50;
  sc.height = 50;
  sc.similarity_threshold = 0.35;
  sc.seed = 3;
  SchellingSim schelling(sc);
  std::printf("%7s %14s %10s\n", "sweep", "segregation", "content");
  for (int sweep = 0; sweep <= 50; sweep += 10) {
    std::printf("%7d %13.1f%% %9.1f%%\n", sweep,
                100.0 * schelling.SegregationIndex(),
                100.0 * schelling.ContentFraction());
    for (int s = 0; s < 10; ++s) schelling.Step();
  }
  std::printf("\nmildly tolerant agents still produce strongly segregated\n"
              "neighborhoods — emergent behavior a data-only model misses.\n");
  return 0;
}
