/// E10 — Section 4.3: factor screening. Shows sequential bifurcation's
/// O(k log n) run count vs one-at-a-time screening across problem sizes,
/// and benchmarks both.

#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include "screening/screening.h"
#include "util/distributions.h"

namespace {

using namespace mde;             // NOLINT
using namespace mde::screening;  // NOLINT

ScreeningResponse MakeResponse(size_t n, const std::vector<size_t>& active,
                               double noise) {
  std::vector<double> beta(n, 0.0);
  for (size_t f : active) beta[f] = 4.0;
  return [beta, noise](const std::vector<int>& levels, Rng& rng) {
    double y = 10.0;
    for (size_t f = 0; f < beta.size(); ++f) {
      y += beta[f] * static_cast<double>(levels[f]);
    }
    return y + SampleNormal(rng, 0.0, noise);
  };
}

void PrintRunCounts() {
  std::printf("=== E10: sequential bifurcation vs one-at-a-time ===\n");
  std::printf("%8s %6s %16s %16s %10s\n", "factors", "k", "SB runs",
              "one-at-a-time", "correct");
  for (size_t n : {32u, 128u, 512u, 2048u}) {
    const std::vector<size_t> active = {n / 7, n / 2, n - 3};
    auto response = MakeResponse(n, active, 0.05);
    auto sb = SequentialBifurcation(response, n, 1.0, 2, 5);
    auto oat = OneAtATimeScreening(response, n, 1.0, 2, 5);
    const bool correct = sb.important == std::vector<size_t>(
                                             {n / 7, n / 2, n - 3});
    std::printf("%8zu %6d %16zu %16zu %10s\n", n, 3, sb.runs_used,
                oat.runs_used, correct ? "yes" : "NO");
  }
  std::printf("\ngroup testing isolates the k important factors in O(k log "
              "n) runs — the\nSection 4.3 claim; the gap widens by ~2x per "
              "factor-count doubling.\n\n");
}

void BM_SequentialBifurcation(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto response = MakeResponse(n, {n / 3, n / 2}, 0.05);
  for (auto _ : state) {
    auto r = SequentialBifurcation(response, n, 1.0, 2, 5);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SequentialBifurcation)->Arg(128)->Arg(1024);

void BM_OneAtATime(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto response = MakeResponse(n, {n / 3, n / 2}, 0.05);
  for (auto _ : state) {
    auto r = OneAtATimeScreening(response, n, 1.0, 2, 5);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_OneAtATime)->Arg(128)->Arg(1024);

}  // namespace

MDE_BENCHMARK_MAIN(PrintRunCounts)
