/// F5 — Figure 5: the 9-run Latin hypercube for two factors. Prints the
/// orthogonal design of the figure, then compares randomized LH vs the
/// search-based nearly orthogonal LH on correlation and space-filling —
/// the Section 4.2 point that randomized LHs need r >> n, while
/// (nearly) orthogonal LHs behave well.

#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include "doe/designs.h"
#include "util/rng.h"
#include "util/stats.h"

namespace {

using namespace mde;       // NOLINT
using namespace mde::doe;  // NOLINT

void PrintFigure5() {
  std::printf("=== F5 / Figure 5: Latin hypercube, 2 factors, 9 runs ===\n");
  linalg::Matrix d = Figure5LatinHypercube();
  std::printf("%4s | %4s %4s\n", "run", "x1", "x2");
  for (size_t r = 0; r < d.rows(); ++r) {
    std::printf("%4zu | %+4d %+4d\n", r + 1, static_cast<int>(d(r, 0)),
                static_cast<int>(d(r, 1)));
  }
  std::printf("\ncolumn correlation = %.4f (orthogonal), maximin distance = "
              "%.3f\n\n",
              MaxColumnCorrelation(d), MaominDistance(d));

  std::printf("randomized vs nearly-orthogonal LH (5 factors, 17 levels, "
              "mean of 30 draws):\n");
  Rng rng(9);
  RunningStat rand_corr, nolh_corr, rand_dist, nolh_dist;
  for (int rep = 0; rep < 30; ++rep) {
    linalg::Matrix r = RandomLatinHypercube(5, 17, rng);
    linalg::Matrix n = NearlyOrthogonalLatinHypercube(5, 17, 100, rng);
    rand_corr.Add(MaxColumnCorrelation(r));
    nolh_corr.Add(MaxColumnCorrelation(n));
    rand_dist.Add(MaominDistance(r));
    nolh_dist.Add(MaominDistance(n));
  }
  std::printf("%24s %14s %14s\n", "", "max |corr|", "maximin dist");
  std::printf("%24s %14.3f %14.3f\n", "randomized LH", rand_corr.mean(),
              rand_dist.mean());
  std::printf("%24s %14.3f %14.3f\n", "nearly orthogonal LH",
              nolh_corr.mean(), nolh_dist.mean());
  std::printf("\nNOLH cuts spurious column correlation ~%.0f%% while "
              "keeping space-filling.\n\n",
              100.0 * (1.0 - nolh_corr.mean() / rand_corr.mean()));
}

void BM_RandomLh(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    auto d = RandomLatinHypercube(8, 33, rng);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_RandomLh);

void BM_Nolh(benchmark::State& state) {
  Rng rng(1);
  const size_t attempts = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto d = NearlyOrthogonalLatinHypercube(8, 33, attempts, rng);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_Nolh)->Arg(16)->Arg(64)->Arg(256);

}  // namespace

MDE_BENCHMARK_MAIN(PrintFigure5)
