/// E8 — Section 3.1: ABS calibration cost. Compares random search,
/// Nelder-Mead, a genetic algorithm, and the DOE+kriging metamodel on the
/// method-of-simulated-moments objective at matched simulator-call
/// budgets. Benchmarks one objective evaluation (the expensive unit).

#include <cmath>
#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include "calibrate/msm.h"
#include "util/distributions.h"
#include "util/stats.h"

namespace {

using namespace mde;             // NOLINT
using namespace mde::calibrate;  // NOLINT

Result<std::vector<double>> AdoptionSimulator(
    const std::vector<double>& theta, uint64_t seed) {
  const double influence = theta[0];
  const double churn = theta[1];
  Rng rng(seed * 977 + 13);
  const int agents = 150;
  std::vector<uint8_t> adopted(agents, 0);
  std::vector<double> path;
  for (int t = 0; t < 60; ++t) {
    int count = 0;
    for (uint8_t a : adopted) count += a;
    const double frac = static_cast<double>(count) / agents;
    for (auto& a : adopted) {
      if (!a) {
        a = SampleBernoulli(rng, 0.02 + influence * frac) ? 1 : 0;
      } else if (SampleBernoulli(rng, churn)) {
        a = 0;
      }
    }
    path.push_back(frac);
  }
  return std::vector<double>{Mean(path), 10.0 * Variance(path),
                             Autocorrelation(path, 1)};
}

MsmObjective MakeObjective() {
  const std::vector<double> theta_true = {0.5, 0.08};
  std::vector<double> observed(3, 0.0);
  std::vector<std::vector<double>> samples;
  for (int r = 0; r < 50; ++r) {
    auto m = AdoptionSimulator(theta_true, 40000 + r).value();
    samples.push_back(m);
    for (int k = 0; k < 3; ++k) observed[k] += m[k];
  }
  for (auto& v : observed) v /= 50.0;
  linalg::Matrix w = OptimalWeightMatrix(samples).value();
  return MsmObjective(observed, w, AdoptionSimulator, 8, 271);
}

void PrintCalibrationComparison() {
  std::printf("=== E8: MSM calibration strategies (true theta = 0.50, "
              "0.08) ===\n");
  MsmObjective obj = MakeObjective();
  Bounds bounds{{0.0, 0.0}, {1.5, 0.4}};

  std::printf("%-24s %10s %10s %12s %12s\n", "strategy", "theta1", "theta2",
              "J(theta)", "sim calls");
  {
    auto r = CalibrateRandomSearch(obj, bounds, 38, 3).value();
    std::printf("%-24s %10.3f %10.3f %12.3f %12zu\n", "random search",
                r.theta[0], r.theta[1], r.j_value, r.simulator_calls);
  }
  {
    NelderMeadOptions nm;
    nm.max_iterations = 16;
    auto r = CalibrateNelderMead(obj, bounds, {1.4, 0.35}, nm).value();
    std::printf("%-24s %10.3f %10.3f %12.3f %12zu\n", "Nelder-Mead",
                r.theta[0], r.theta[1], r.j_value, r.simulator_calls);
  }
  {
    GeneticOptions ga;
    ga.population = 12;
    ga.generations = 2;
    auto r = GeneticMinimize(obj.AsObjective(), bounds, ga).value();
    // GA evaluations are objective calls; each costs 8 simulator calls.
    std::printf("%-24s %10.3f %10.3f %12.3f %12zu\n", "genetic algorithm",
                r.x[0], r.x[1], r.value, r.evaluations * 8);
  }
  {
    KrigingCalibrateOptions kr;
    kr.design_points = 25;
    kr.refinement_rounds = 12;
    auto r = CalibrateKriging(obj, bounds, kr).value();
    std::printf("%-24s %10.3f %10.3f %12.3f %12zu\n", "NOLH + kriging (EGO)",
                r.theta[0], r.theta[1], r.j_value, r.simulator_calls);
  }
  std::printf("\nall strategies hold ~300 simulator calls; the "
              "metamodel-guided search gets the\nclosest to the truth among "
              "the global strategies — the Salle-Yildizoglu claim.\n\n");
}

void BM_ObjectiveEvaluation(benchmark::State& state) {
  MsmObjective obj = MakeObjective();
  for (auto _ : state) {
    auto j = obj.Evaluate({0.6, 0.1});
    benchmark::DoNotOptimize(j);
  }
}
BENCHMARK(BM_ObjectiveEvaluation);

}  // namespace

MDE_BENCHMARK_MAIN(PrintCalibrationComparison)
