/// E11 — Section 2.2: the gridfields restrict/regrid commutation. Verifies
/// the rewrite produces identical aggregates while processing a fraction
/// of the source cells, and benchmarks both evaluation orders.

#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include "gridfields/gridfields.h"
#include "util/rng.h"

namespace {

using namespace mde;             // NOLINT
using namespace mde::gridfields; // NOLINT

/// Holds the grid by value; the GridField is created on demand so its
/// grid pointer always refers to the final resting place of the grid.
struct Workload {
  Grid grid;
  std::vector<double> data;
  std::vector<size_t> assignment;
  std::vector<bool> keep;
  size_t num_targets;

  GridField MakeField() const { return GridField(&grid, 2, data); }
};

Workload MakeWorkload(size_t source_cells, size_t coarsen, double keep_frac,
                      uint64_t seed) {
  Rng rng(seed);
  Workload w{MakeRegularGrid2D(source_cells, 1), {}, {}, {}, 0};
  w.data.resize(source_cells);
  for (auto& v : w.data) v = rng.NextDouble() * 100.0;
  w.num_targets = (source_cells + coarsen - 1) / coarsen;
  w.assignment.resize(source_cells);
  for (size_t i = 0; i < source_cells; ++i) w.assignment[i] = i / coarsen;
  w.keep.resize(w.num_targets);
  for (size_t t = 0; t < w.num_targets; ++t) {
    w.keep[t] = rng.NextDouble() < keep_frac;
  }
  return w;
}

void PrintCommutation() {
  std::printf("=== E11: gridfields restrict/regrid commutation ===\n");
  std::printf("%12s %10s %18s %18s\n", "keep frac", "equal?",
              "cells (regrid 1st)", "cells (restrict 1st)");
  for (double frac : {0.1, 0.3, 0.7}) {
    // Rebuild per fraction; the field borrows the grid so keep both alive.
    Rng rng(13);
    Grid g = MakeRegularGrid2D(20000, 1);
    std::vector<double> data(20000);
    for (auto& v : data) v = rng.NextDouble() * 100.0;
    GridField field(&g, 2, data);
    std::vector<size_t> assign(20000);
    for (size_t i = 0; i < 20000; ++i) assign[i] = i / 8;
    std::vector<bool> keep(2500);
    for (size_t t = 0; t < 2500; ++t) keep[t] = rng.NextDouble() < frac;
    auto slow =
        RegridThenRestrict(field, 2500, assign, RegridAgg::kMean, keep)
            .value();
    auto fast =
        RestrictThenRegrid(field, 2500, assign, RegridAgg::kMean, keep)
            .value();
    bool equal = slow.values.size() == fast.values.size();
    for (size_t i = 0; equal && i < slow.values.size(); ++i) {
      equal = slow.values[i] == fast.values[i];
    }
    std::printf("%11.0f%% %10s %18zu %18zu\n", 100.0 * frac,
                equal ? "yes" : "NO", slow.source_cells_processed,
                fast.source_cells_processed);
  }
  std::printf("\npushing the restriction below the regrid is a pure win: "
              "identical output,\nwork proportional to the kept fraction — "
              "the Howe-Maier optimization.\n\n");
}

void BM_RegridThenRestrict(benchmark::State& state) {
  static const Workload& w = *new Workload(MakeWorkload(100000, 8, 0.2, 17));
  const GridField field = w.MakeField();
  for (auto _ : state) {
    auto r = RegridThenRestrict(field, w.num_targets, w.assignment,
                                RegridAgg::kMean, w.keep);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_RegridThenRestrict);

void BM_RestrictThenRegrid(benchmark::State& state) {
  static const Workload& w = *new Workload(MakeWorkload(100000, 8, 0.2, 17));
  const GridField field = w.MakeField();
  for (auto _ : state) {
    auto r = RestrictThenRegrid(field, w.num_targets, w.assignment,
                                RegridAgg::kMean, w.keep);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_RestrictThenRegrid);

}  // namespace

MDE_BENCHMARK_MAIN(PrintCommutation)
