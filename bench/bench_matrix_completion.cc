/// Extension / ablation — Section 2.2 (Gemulla et al. [21]): DSGD matrix
/// completion, the problem stratified SGD was invented for. Compares
/// sequential SGD against block-stratified DSGD on a synthetic low-rank
/// recommendation matrix, and ablates the blocking factor d.

#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include "dsgd/matrix_completion.h"
#include "util/thread_pool.h"

namespace {

using namespace mde;        // NOLINT
using namespace mde::dsgd;  // NOLINT

void PrintComparison() {
  std::printf("=== ablation: DSGD matrix completion ===\n");
  RatingsDataset ds = SyntheticRatings(400, 300, 5, 0.1, 0.05, 31);
  std::printf("matrix 400x300, true rank 5, %zu train / %zu test entries\n\n",
              ds.train.size(), ds.test.size());
  CompletionOptions opt;
  opt.rank = 5;
  opt.epochs = 30;

  auto seq = CompleteSgd(ds.train, ds.rows, ds.cols, opt).value();
  std::printf("%14s %12s %12s\n", "method", "train RMSE", "test RMSE");
  std::printf("%14s %12.4f %12.4f\n", "sequential SGD",
              seq.rmse_per_epoch.back(), seq.model.Rmse(ds.test));
  ThreadPool pool(4);
  for (size_t blocks : {2u, 4u, 8u}) {
    CompletionOptions d = opt;
    d.blocks = blocks;
    auto par = CompleteDsgd(ds.train, ds.rows, ds.cols, pool, d).value();
    char label[32];
    std::snprintf(label, sizeof(label), "DSGD d=%zu", blocks);
    std::printf("%14s %12.4f %12.4f\n", label, par.rmse_per_epoch.back(),
                par.model.Rmse(ds.test));
  }
  std::printf("\nstratified DSGD matches sequential SGD quality regardless "
              "of the blocking\nfactor — while its sub-epochs parallelize "
              "with zero factor shuffling.\n\n");
}

void BM_SequentialSgdEpochs(benchmark::State& state) {
  RatingsDataset ds = SyntheticRatings(400, 300, 5, 0.1, 0.05, 31);
  CompletionOptions opt;
  opt.rank = 5;
  opt.epochs = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto r = CompleteSgd(ds.train, ds.rows, ds.cols, opt);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SequentialSgdEpochs)->Arg(5)->Arg(20);

void BM_DsgdEpochs(benchmark::State& state) {
  RatingsDataset ds = SyntheticRatings(400, 300, 5, 0.1, 0.05, 31);
  ThreadPool pool(static_cast<size_t>(state.range(1)));
  CompletionOptions opt;
  opt.rank = 5;
  opt.epochs = static_cast<size_t>(state.range(0));
  opt.blocks = 4;
  for (auto _ : state) {
    auto r = CompleteDsgd(ds.train, ds.rows, ds.cols, pool, opt);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_DsgdEpochs)->Args({5, 1})->Args({5, 4})->Args({20, 4});

}  // namespace

MDE_BENCHMARK_MAIN(PrintComparison)
