/// Observability-layer microbenchmarks: the per-event cost of the obs
/// primitives that ride inside every engine hot path, plus the end-to-end
/// price of EXPLAIN ANALYZE profiling. The overhead GUARD for the engine
/// itself (BM_OptimizedPlan / BM_ChainStep with obs compiled in vs
/// -DMDE_OBS_DISABLED=ON) runs those benches from their own binaries in two
/// build trees; results live in BENCH_obs.json.

#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include "obs/context.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/stat.h"
#include "obs/trace.h"
#include "table/plan.h"
#include "util/thread_pool.h"

namespace {

using namespace mde;  // NOLINT

void PrintPreamble() {
  std::printf("=== obs: metrics/trace primitive costs ===\n");
  std::printf("counters and histograms are thread-sharded relaxed atomics; "
              "disabled spans are one relaxed load + branch.\n\n");
}

void BM_CounterAdd(benchmark::State& state) {
  obs::Counter* c = obs::Registry::Global().counter("bench.counter");
  for (auto _ : state) {
    c->Add(1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterAdd);

void BM_CounterMacro(benchmark::State& state) {
  // The engine's spelling: function-local static pointer + Add.
  for (auto _ : state) {
    MDE_OBS_COUNT("bench.counter_macro", 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterMacro);

void BM_HistogramObserve(benchmark::State& state) {
  obs::Histogram* h = obs::Registry::Global().histogram(
      "bench.histogram", obs::ExponentialBounds());
  double v = 0.0;
  for (auto _ : state) {
    h->Observe(v);
    v = v < 1e6 ? v + 17.0 : 0.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramObserve);

void BM_SpanDisabled(benchmark::State& state) {
  obs::Tracer::Global().Disable();
  for (auto _ : state) {
    MDE_TRACE_SPAN("bench.span");
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanDisabled);

void BM_SpanEnabled(benchmark::State& state) {
  obs::Tracer::Global().Enable();
  for (auto _ : state) {
    MDE_TRACE_SPAN("bench.span");
    benchmark::ClobberMemory();
  }
  obs::Tracer::Global().Disable();
  obs::Tracer::Global().Clear();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanEnabled);

void BM_WelfordAdd(benchmark::State& state) {
  obs::Welford w;
  double v = 0.0;
  for (auto _ : state) {
    w.Add(v);
    v = v < 1e6 ? v + 17.0 : 0.0;
  }
  benchmark::DoNotOptimize(w);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WelfordAdd);

void BM_P2Observe(benchmark::State& state) {
  obs::P2Quantile q(0.95);
  double v = 0.0;
  for (auto _ : state) {
    q.Add(v);
    v = v < 1e6 ? v + 17.0 : 0.0;
  }
  benchmark::DoNotOptimize(q);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_P2Observe);

void BM_CiMonitorObserve(benchmark::State& state) {
  // Publishing variant: every Add updates the half-width + count gauges.
  obs::CiMonitor ci("bench.ci_halfwidth");
  double v = 0.0;
  for (auto _ : state) {
    ci.Add(v);
    v = v < 1e6 ? v + 17.0 : 0.0;
  }
  benchmark::DoNotOptimize(ci);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CiMonitorObserve);

/// Full scrape cost: Registry::Snapshot + derived gauges + text rendering,
/// on whatever metrics this binary has registered so far. This is what one
/// Sampler tick or Prometheus pull pays.
void BM_PrometheusText(benchmark::State& state) {
  for (auto _ : state) {
    std::string text = obs::PrometheusText();
    benchmark::DoNotOptimize(text);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PrometheusText);

/// One query-scope open/close at an engine entry point: fresh trace id,
/// attribution-row acquire (a map hit after the first iteration), context
/// install + restore, and the cpu-ns fold on close.
void BM_QueryScope(benchmark::State& state) {
  for (auto _ : state) {
    MDE_OBS_QUERY_SCOPE("bench.scope", 0x9e3779b97f4a7c15ull);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QueryScope);

/// Scope opened under an already-active query: adopts the outer context
/// instead of installing a new one — what nested engine calls pay.
void BM_QueryScopeNested(benchmark::State& state) {
  MDE_OBS_QUERY_SCOPE("bench.scope_outer", 0x517cc1b727220a95ull);
  for (auto _ : state) {
    MDE_OBS_QUERY_SCOPE("bench.scope", 0x9e3779b97f4a7c15ull);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QueryScopeNested);

/// Attribution add with an active query: thread-local context read + one
/// relaxed fetch_add on the row field.
void BM_AttrAddActive(benchmark::State& state) {
  MDE_OBS_QUERY_SCOPE("bench.attr", 0x2545f4914f6cdd1dull);
  for (auto _ : state) {
    MDE_OBS_ATTR_ADD(rows_in, 1);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AttrAddActive);

/// Attribution add with no active query: the thread-local load + branch
/// every unattributed hot path pays.
void BM_AttrAddInactive(benchmark::State& state) {
  for (auto _ : state) {
    MDE_OBS_ATTR_ADD(rows_in, 1);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AttrAddInactive);

/// Context capture/restore across the work-stealing pool: 64 empty tasks
/// per iteration under an active query. Against BM_SubmitNoContext, the
/// per-task delta prices the ContextGuard each (possibly stolen) task runs.
void BM_SubmitWithContext(benchmark::State& state) {
  static ThreadPool pool(2);
  MDE_OBS_QUERY_SCOPE("bench.submit", 0xd1b54a32d192ed03ull);
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) pool.Submit([] {});
    pool.WaitAll();
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SubmitWithContext);

void BM_SubmitNoContext(benchmark::State& state) {
  static ThreadPool pool(2);
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) pool.Submit([] {});
    pool.WaitAll();
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SubmitNoContext);

table::Table MakeTable(size_t n) {
  table::Table t{table::Schema(
      {{"id", table::DataType::kInt64}, {"x", table::DataType::kDouble}})};
  for (size_t i = 0; i < n; ++i) {
    t.Append({table::Value(static_cast<int64_t>(i)),
              table::Value(static_cast<double>(i % 97))});
  }
  return t;
}

/// ExecutePlan without profiling vs with the EXPLAIN ANALYZE stats sink —
/// the per-node steady_clock reads are the only delta.
void BM_PlanNoProfile(benchmark::State& state) {
  static table::Table t = MakeTable(100000);
  table::PlanPtr plan = table::PlanNode::Filter(
      table::PlanNode::Scan(&t, "t"),
      {{"x", table::CmpOp::kGt, table::Value(50.0)}});
  for (auto _ : state) {
    auto r = table::ExecutePlan(plan, nullptr);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_PlanNoProfile);

void BM_PlanWithProfile(benchmark::State& state) {
  static table::Table t = MakeTable(100000);
  table::PlanPtr plan = table::PlanNode::Filter(
      table::PlanNode::Scan(&t, "t"),
      {{"x", table::CmpOp::kGt, table::Value(50.0)}});
  table::ExecutionStats stats;
  for (auto _ : state) {
    auto r = table::ExecutePlan(plan, &stats);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_PlanWithProfile);

/// The continuous profiler's tax, same-binary: a fixed CPU-bound kernel
/// (the plan executor over 100k rows) with the profiler stopped (/0) vs
/// running at the default 97 Hz (/1). At 97 Hz a busy thread takes ~97
/// SIGPROF deliveries per CPU-second; each is a backtrace + relaxed ring
/// stores, so the expected tax is well under the 3% BENCH_obs.json budget.
void BM_ProfilerOverhead(benchmark::State& state) {
  static table::Table t = MakeTable(100000);
  table::PlanPtr plan = table::PlanNode::Filter(
      table::PlanNode::Scan(&t, "t"),
      {{"x", table::CmpOp::kGt, table::Value(50.0)}});
  obs::Profiler& prof = obs::Profiler::Global();
  prof.RegisterCurrentThread();
  const bool on = state.range(0) != 0;
  if (on && !prof.Start(obs::Profiler::kDefaultHz)) {
    state.SkipWithError("profiler already running");
    return;
  }
  for (auto _ : state) {
    auto r = table::ExecutePlan(plan, nullptr);
    benchmark::DoNotOptimize(r);
  }
  if (on) prof.Stop();
  state.counters["prof_hz"] = on ? obs::Profiler::kDefaultHz : 0;
}
BENCHMARK(BM_ProfilerOverhead)->Arg(0)->Arg(1);

}  // namespace

MDE_BENCHMARK_MAIN(PrintPreamble)
