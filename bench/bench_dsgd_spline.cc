/// E3 — Section 2.2: distributed stochastic gradient descent for the
/// natural-cubic-spline tridiagonal system. Prints the DSGD residual
/// trajectory converging toward the exact Thomas solution, and benchmarks
/// Thomas vs DSGD (per-round) across system sizes and thread counts. The
/// point is algorithmic: DSGD shuffles no data between workers, which is
/// what made it viable on MapReduce.

#include <cmath>
#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include "util/check.h"

#include "dsgd/dsgd.h"
#include "linalg/solve.h"
#include "timeseries/align.h"
#include "timeseries/timeseries.h"
#include "util/thread_pool.h"

namespace {

using namespace mde;        // NOLINT
using namespace mde::dsgd;  // NOLINT

timeseries::SplineSystem MakeSplineSystem(size_t points) {
  timeseries::TimeSeries ts(1);
  for (size_t i = 0; i < points; ++i) {
    MDE_CHECK(ts.Append(static_cast<double>(i),
                        std::sin(0.05 * i) + 0.01 * i)
                  .ok());
  }
  return timeseries::BuildSplineSystem(ts, 0).value();
}

void PrintConvergence() {
  std::printf("=== E3: DSGD for spline constants (Section 2.2) ===\n");
  auto sys = MakeSplineSystem(2000);
  auto exact = linalg::SolveTridiagonal(sys.a, sys.b).value();
  ThreadPool pool(4);

  DsgdOptions opt;
  opt.rounds = 1500;
  opt.sgd.trace_every = 150;
  SgdResult r = SolveTridiagonalDsgd(sys.a, sys.b, pool, opt);

  std::printf("system: %zu x %zu tridiagonal (m ~ 2000-tick series)\n",
              sys.a.size(), sys.a.size());
  std::printf("%10s %16s\n", "round", "||Ax - b||");
  for (size_t i = 0; i < r.residual_trace.size(); ++i) {
    std::printf("%10zu %16.6f\n", (i + 1) * 150, r.residual_trace[i]);
  }
  double max_err = 0.0;
  for (size_t i = 0; i < exact.size(); ++i) {
    max_err = std::max(max_err, std::fabs(r.x[i] - exact[i]));
  }
  std::printf("\nmax |x_dsgd - x_thomas| = %.3e  (w.p.-1 convergence, as "
              "the regenerative\nstratum-switching theory guarantees)\n\n",
              max_err);
}

void BM_ThomasExact(benchmark::State& state) {
  auto sys = MakeSplineSystem(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto x = linalg::SolveTridiagonal(sys.a, sys.b);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_ThomasExact)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_DsgdSweep(benchmark::State& state) {
  auto sys = MakeSplineSystem(static_cast<size_t>(state.range(0)));
  const size_t threads = static_cast<size_t>(state.range(1));
  ThreadPool pool(threads);
  DsgdOptions opt;
  opt.rounds = 30;  // fixed work per measurement: 10 sweeps of each stratum
  for (auto _ : state) {
    auto r = SolveTridiagonalDsgd(sys.a, sys.b, pool, opt);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_DsgdSweep)
    ->Args({10000, 1})
    ->Args({10000, 2})
    ->Args({10000, 4})
    ->Args({100000, 4});

}  // namespace

MDE_BENCHMARK_MAIN(PrintConvergence)
