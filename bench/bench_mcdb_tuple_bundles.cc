/// E1 — Section 2.1: tuple-bundle query execution vs the naive
/// instantiate-per-repetition loop. Both compute the same query-result
/// distribution (mean SBP of female patients); the bundle executor runs
/// the plan once over bundled values. The benchmark sweeps Monte Carlo
/// repetition counts, plus a large 10k-tuple x 1k-rep configuration that
/// exercises the columnar kernels (recorded in BENCH_mcdb.json).

#include <cmath>
#include <cstdio>

#include <benchmark/benchmark.h>

#include "util/check.h"

#include "bench_main.h"
#include "mcdb/bundle.h"
#include "mcdb/estimators.h"
#include "mcdb/mcdb.h"
#include "mcdb/pregen.h"
#include "mcdb/vg_function.h"
#include "table/query.h"
#include "util/stats.h"

namespace {

using namespace mde;        // NOLINT
using namespace mde::mcdb;  // NOLINT
using table::CmpOp;
using table::DataType;
using table::Row;
using table::Schema;
using table::Table;
using table::Value;

MonteCarloDb MakeDb(size_t patients) {
  MonteCarloDb db;
  Table p{Schema({{"PID", DataType::kInt64}, {"GENDER", DataType::kString}})};
  for (size_t i = 0; i < patients; ++i) {
    p.Append({Value(static_cast<int64_t>(i)), Value(i % 2 ? "M" : "F")});
  }
  MDE_CHECK(db.AddTable("PATIENTS", std::move(p)).ok());
  Table param{Schema({{"MEAN", DataType::kDouble},
                      {"STD", DataType::kDouble}})};
  param.Append({Value(120.0), Value(15.0)});
  MDE_CHECK(db.AddTable("SBP_PARAM", std::move(param)).ok());
  StochasticTableSpec spec;
  spec.name = "SBP_DATA";
  spec.outer_table = "PATIENTS";
  spec.vg = std::make_shared<NormalVg>();
  spec.param_binder = [](const Row&, const DatabaseInstance& det)
      -> Result<Row> {
    const Table& prm = det.at("SBP_PARAM");
    return Row{prm.row(0)[0], prm.row(0)[1]};
  };
  spec.output_schema = Schema({{"PID", DataType::kInt64},
                               {"GENDER", DataType::kString},
                               {"SBP", DataType::kDouble}});
  spec.projector = [](const Row& outer, const Row& vg) {
    return Row{outer[0], outer[1], vg[0]};
  };
  MDE_CHECK(db.AddStochasticTable(std::move(spec)).ok());
  return db;
}

std::vector<double> RunNaiveQuery(const MonteCarloDb& db, size_t reps) {
  auto query = [](const DatabaseInstance& inst) -> Result<double> {
    MDE_ASSIGN_OR_RETURN(
        Table females,
        table::Query(inst.at("SBP_DATA"))
            .Where("GENDER", CmpOp::kEq, "F")
            .Execute());
    return table::AvgColumn(females, "SBP");
  };
  return db.RunNaive(query, reps, 77).value();
}

std::vector<double> RunBundleQuery(const MonteCarloDb& db, size_t reps) {
  auto bundles =
      GenerateBundles(db, db.stochastic_specs()[0], "SBP", reps, 77).value();
  auto pred =
      table::ColumnCompare(bundles.det_schema(), "GENDER", CmpOp::kEq, "F")
          .value();
  return bundles.FilterDet(pred).AggregateAvg("SBP").value();
}

void PrintEquivalence() {
  std::printf("=== E1: tuple-bundle execution (Section 2.1) ===\n");
  MonteCarloDb db = MakeDb(500);
  const size_t reps = 400;
  auto naive = RunNaiveQuery(db, reps);
  auto bundled = RunBundleQuery(db, reps);
  auto sn = Summarize(naive).value();
  auto sb = Summarize(bundled).value();
  std::printf("query: mean SBP of female patients, %zu MC repetitions\n",
              reps);
  std::printf("%16s %10s %10s\n", "", "naive", "bundled");
  std::printf("%16s %10.3f %10.3f\n", "mean", sn.mean, sb.mean);
  std::printf("%16s %10.3f %10.3f\n", "sd", std::sqrt(sn.variance),
              std::sqrt(sb.variance));
  std::printf("\nidentical distributions; the bundle plan touches each "
              "deterministic tuple once\ninstead of once per repetition — "
              "the benchmark below shows the speedup.\n\n");
}

void BM_NaivePerInstance(benchmark::State& state) {
  MonteCarloDb db = MakeDb(500);
  const size_t reps = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto samples = RunNaiveQuery(db, reps);
    benchmark::DoNotOptimize(samples);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(reps));
}
BENCHMARK(BM_NaivePerInstance)->Arg(16)->Arg(64)->Arg(256);

void BM_TupleBundles(benchmark::State& state) {
  MonteCarloDb db = MakeDb(500);
  const size_t reps = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto samples = RunBundleQuery(db, reps);
    benchmark::DoNotOptimize(samples);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(reps));
}
BENCHMARK(BM_TupleBundles)->Arg(16)->Arg(64)->Arg(256);

/// Full bundle pipeline (generation + plan) at columnar-kernel scale:
/// args = (tuples, reps). The 10000 x 1000 point is the BENCH_mcdb.json
/// before/after configuration.
void BM_BundleGenerateAndQuery(benchmark::State& state) {
  MonteCarloDb db = MakeDb(static_cast<size_t>(state.range(0)));
  const size_t reps = static_cast<size_t>(state.range(1));
  for (auto _ : state) {
    auto samples = RunBundleQuery(db, reps);
    benchmark::DoNotOptimize(samples);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          state.range(1));
}
BENCHMARK(BM_BundleGenerateAndQuery)
    ->Unit(benchmark::kMillisecond)
    ->Args({10000, 1000});

/// Same pipeline with the deterministic GENDER filter hoisted below VG
/// generation (pregen.h): half the tuples never draw their repetitions.
/// Bit-identical output to BM_BundleGenerateAndQuery's filter-after form.
void BM_BundleGenerateAndQueryPushdown(benchmark::State& state) {
  MonteCarloDb db = MakeDb(static_cast<size_t>(state.range(0)));
  const size_t reps = static_cast<size_t>(state.range(1));
  for (auto _ : state) {
    auto females =
        GenerateBundlesWhere(db, db.stochastic_specs()[0], "SBP", reps, 77,
                             {{"GENDER", CmpOp::kEq, Value("F")}})
            .value();
    auto samples = females.AggregateAvg("SBP").value();
    benchmark::DoNotOptimize(samples);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          state.range(1));
}
BENCHMARK(BM_BundleGenerateAndQueryPushdown)
    ->Unit(benchmark::kMillisecond)
    ->Args({10000, 1000});

/// Query-plan kernels only (FilterDet + stochastic filter + aggregate) over
/// a pre-generated bundle table: isolates the AoS-vs-SoA executor cost from
/// VG sampling.
void BM_BundleQueryExec(benchmark::State& state) {
  MonteCarloDb db = MakeDb(static_cast<size_t>(state.range(0)));
  const size_t reps = static_cast<size_t>(state.range(1));
  auto bundles =
      GenerateBundles(db, db.stochastic_specs()[0], "SBP", reps, 77).value();
  auto pred =
      table::ColumnCompare(bundles.det_schema(), "GENDER", CmpOp::kEq, "F")
          .value();
  for (auto _ : state) {
    auto females = bundles.FilterDet(pred);
    auto high = females.FilterStoch("SBP", CmpOp::kGt, 120.0).value();
    auto avg = high.AggregateAvg("SBP").value();
    auto sum = females.AggregateSum("SBP").value();
    benchmark::DoNotOptimize(avg);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          state.range(1));
}
BENCHMARK(BM_BundleQueryExec)
    ->Unit(benchmark::kMillisecond)
    ->Args({10000, 1000});

}  // namespace

MDE_BENCHMARK_MAIN(PrintEquivalence)
