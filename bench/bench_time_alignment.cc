/// E4 — Section 2.2: Splash-style time alignment at scale. Benchmarks the
/// windowed parallel interpolation (linear and cubic spline) across thread
/// counts, plus the aggregation aligner — the per-Monte-Carlo-repetition
/// data harmonization cost the paper worries about.

#include <cmath>
#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include "util/check.h"

#include "timeseries/align.h"
#include "timeseries/timeseries.h"
#include "util/thread_pool.h"

namespace {

using namespace mde;              // NOLINT
using namespace mde::timeseries;  // NOLINT

TimeSeries MakeSeries(size_t points) {
  TimeSeries ts(1);
  for (size_t i = 0; i < points; ++i) {
    MDE_CHECK(ts.Append(static_cast<double>(i),
                        std::sin(0.01 * i) + 0.3 * std::cos(0.003 * i))
                  .ok());
  }
  return ts;
}

void PrintAlignmentDemo() {
  std::printf("=== E4: time alignment between composite-model ticks ===\n");
  std::printf("source: 100k-tick series; target: 400k interpolated / 10k "
              "aggregated ticks\n");
  std::printf("alignment classes: %s / %s\n\n",
              DetermineAlignment(1.0, 0.25) == AlignmentKind::kInterpolation
                  ? "finer target -> interpolation"
                  : "?",
              DetermineAlignment(1.0, 10.0) == AlignmentKind::kAggregation
                  ? "coarser target -> aggregation"
                  : "?");
}

void BM_ParallelInterpolate(benchmark::State& state) {
  TimeSeries src = MakeSeries(100000);
  std::vector<double> targets = UniformGrid(0.5, 99998.5, 400000);
  const size_t threads = static_cast<size_t>(state.range(0));
  const bool spline = state.range(1) != 0;
  ThreadPool pool(threads);
  for (auto _ : state) {
    auto out = ParallelInterpolate(src, targets, pool, spline);
    MDE_CHECK(out.ok());
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(targets.size()));
  state.SetLabel(spline ? "cubic-spline" : "linear");
}
BENCHMARK(BM_ParallelInterpolate)
    ->Args({1, 0})
    ->Args({2, 0})
    ->Args({4, 0})
    ->Args({8, 0})
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({4, 1})
    ->Args({8, 1});

void BM_AggregateAlign(benchmark::State& state) {
  TimeSeries src = MakeSeries(100000);
  std::vector<double> targets = UniformGrid(10.0, 99990.0, 10000);
  for (auto _ : state) {
    auto out = AggregateAlign(src, targets, AggMethod::kMean);
    MDE_CHECK(out.ok());
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_AggregateAlign);

void BM_SplineConstantsExact(benchmark::State& state) {
  TimeSeries src = MakeSeries(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto sigma = SplineConstants(src, 0);
    benchmark::DoNotOptimize(sigma);
  }
}
BENCHMARK(BM_SplineConstantsExact)->Arg(10000)->Arg(100000);

}  // namespace

MDE_BENCHMARK_MAIN(PrintAlignmentDemo)
