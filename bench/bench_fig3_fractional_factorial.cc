/// F3 — Figure 3: the resolution III fractional factorial for 7 factors in
/// 8 runs. Prints the design table verbatim (it matches the paper's Figure
/// 3 row for row), verifies orthogonality and resolution, and measures the
/// run-count savings vs the 128-run full factorial at equal main-effect
/// accuracy.

#include <cmath>
#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include "doe/designs.h"
#include "doe/main_effects.h"
#include "util/distributions.h"

namespace {

using namespace mde;       // NOLINT
using namespace mde::doe;  // NOLINT

double Respond(const linalg::Matrix& d, size_t run,
               const std::vector<double>& beta, Rng& rng) {
  double y = 5.0;
  for (size_t f = 0; f < d.cols(); ++f) y += beta[f] * d(run, f);
  return y + SampleNormal(rng, 0.0, 0.1);
}

void PrintFigure3() {
  std::printf("=== F3 / Figure 3: resolution III design, 7 factors, 8 runs"
              " ===\n");
  linalg::Matrix d = Resolution3Design7Factors();
  std::printf("%4s |", "run");
  for (int f = 1; f <= 7; ++f) std::printf(" x%d", f);
  std::printf("\n");
  for (size_t r = 0; r < d.rows(); ++r) {
    std::printf("%4zu |", r + 1);
    for (size_t f = 0; f < d.cols(); ++f) {
      std::printf(" %+d", static_cast<int>(d(r, f)));
    }
    std::printf("\n");
  }
  std::printf("\nmax |column correlation| = %.3f (orthogonal)\n",
              MaxColumnCorrelation(d));
  std::printf("design resolution: III (from the defining relation)\n");
  std::printf("resolution IV (16 runs) and the 32-run 2^{7-2} design are "
              "also provided.\n\n");

  // Main-effect estimation: 8 runs vs 128 runs.
  const std::vector<double> beta = {1.0, -0.5, 2.0, 0.0, 0.25, -1.5, 0.75};
  Rng rng(5);
  linalg::Matrix full = FullFactorial(7);
  linalg::Vector y8(d.rows()), y128(full.rows());
  for (size_t r = 0; r < d.rows(); ++r) y8[r] = Respond(d, r, beta, rng);
  for (size_t r = 0; r < full.rows(); ++r) {
    y128[r] = Respond(full, r, beta, rng);
  }
  auto e8 = ComputeMainEffects(d, y8).value();
  auto e128 = ComputeMainEffects(full, y128).value();
  std::printf("%8s %10s %12s %12s\n", "factor", "2*beta", "est (8 runs)",
              "est (128)");
  double err8 = 0, err128 = 0;
  for (size_t f = 0; f < 7; ++f) {
    std::printf("%8zu %10.2f %12.3f %12.3f\n", f + 1, 2 * beta[f],
                e8[f].effect, e128[f].effect);
    err8 = std::max(err8, std::fabs(e8[f].effect - 2 * beta[f]));
    err128 = std::max(err128, std::fabs(e128[f].effect - 2 * beta[f]));
  }
  std::printf("\nmax abs error: 8-run design %.3f vs 128-run %.3f — the "
              "fractional design\nrecovers all main effects at 1/16 the "
              "simulation cost (linear response).\n\n",
              err8, err128);
}

void BM_GenerateFractional(benchmark::State& state) {
  for (auto _ : state) {
    auto d = Resolution3Design7Factors();
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_GenerateFractional);

void BM_GenerateFullFactorial(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto d = FullFactorial(n);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_GenerateFullFactorial)->Arg(7)->Arg(12)->Arg(16);

}  // namespace

MDE_BENCHMARK_MAIN(PrintFigure3)
