/// Microbenchmarks for the table operator suite: the retained
/// row-at-a-time reference operators vs the vectorized columnar kernels
/// (vec_ops.h), at several thread counts. These are the numbers behind
/// BENCH_table.json's kernel-level rows.

#include <cstdio>
#include <memory>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include "table/columnar.h"
#include "table/ops.h"
#include "table/table.h"
#include "table/vec_ops.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using namespace mde;  // NOLINT
using table::AggKind;
using table::AggSpec;
using table::CmpOp;
using table::ColumnarBatch;
using table::ColumnarTable;
using table::ColumnarTableBuilder;
using table::DataType;
using table::Schema;
using table::Table;
using table::Value;

/// A sales-fact-style table: int64 key with limited cardinality, doubles,
/// a low-cardinality dictionary column, and ~5% nulls in the measure.
std::shared_ptr<const ColumnarTable> MakeFacts(size_t n) {
  const char* kRegions[] = {"north", "south", "east", "west", "central"};
  Rng rng(42);
  ColumnarTableBuilder b{Schema({{"id", DataType::kInt64},
                                 {"customer", DataType::kInt64},
                                 {"amount", DataType::kDouble},
                                 {"region", DataType::kString}})};
  b.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    b.column(0).AppendInt64(static_cast<int64_t>(i));
    b.column(1).AppendInt64(static_cast<int64_t>(rng.NextBounded(n / 8 + 1)));
    if (rng.NextBounded(20) == 0) {
      b.column(2).AppendNull();
    } else {
      b.column(2).AppendDouble(rng.NextDouble() * 1000.0);
    }
    b.column(3).AppendString(kRegions[rng.NextBounded(5)]);
  }
  auto cols = b.Finish();
  MDE_CHECK(cols.ok());
  return std::move(cols).value();
}

std::shared_ptr<const ColumnarTable> MakeCustomers(size_t n) {
  Rng rng(43);
  ColumnarTableBuilder b{
      Schema({{"cid", DataType::kInt64}, {"score", DataType::kDouble}})};
  b.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    b.column(0).AppendInt64(static_cast<int64_t>(i));
    b.column(1).AppendDouble(rng.NextDouble());
  }
  auto cols = b.Finish();
  MDE_CHECK(cols.ok());
  return std::move(cols).value();
}

constexpr size_t kRows = 200000;

/// state.range(0) selects the engine for every benchmark here:
/// -1 = row-at-a-time reference; 0 = vectorized serial; k>0 = vectorized
/// over a k-thread pool.
void BM_Filter(benchmark::State& state) {
  const int64_t mode = state.range(0);
  auto cols = MakeFacts(kRows);
  Table t = Table::FromColumnar(cols);
  t.rows();  // pre-materialize so the row path measures filtering only
  std::unique_ptr<ThreadPool> pool;
  if (mode > 0) pool = std::make_unique<ThreadPool>(mode);
  const Value cutoff{500.0};
  if (mode < 0) {
    auto pred =
        table::ColumnCompare(t.schema(), "amount", CmpOp::kGt, cutoff);
    MDE_CHECK(pred.ok());
    for (auto _ : state) {
      Table out = table::Filter(t, pred.value());
      benchmark::DoNotOptimize(out);
    }
  } else {
    for (auto _ : state) {
      auto sel = table::VecFilter(*cols, nullptr, "amount", CmpOp::kGt,
                                  cutoff, pool.get());
      MDE_CHECK(sel.ok());
      auto out = table::VecCompact(*cols, sel.value(), pool.get());
      benchmark::DoNotOptimize(out);
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(kRows));
}
BENCHMARK(BM_Filter)->Arg(-1)->Arg(0)->Arg(2)->Arg(4);

void BM_HashJoin(benchmark::State& state) {
  const int64_t mode = state.range(0);
  auto facts = MakeFacts(kRows / 4);
  auto customers = MakeCustomers(kRows / 32);
  std::unique_ptr<ThreadPool> pool;
  if (mode > 0) pool = std::make_unique<ThreadPool>(mode);
  if (mode < 0) {
    Table l = Table::FromColumnar(facts);
    Table r = Table::FromColumnar(customers);
    l.rows();
    r.rows();
    for (auto _ : state) {
      auto out = table::HashJoin(l, r, {"customer"}, {"cid"});
      MDE_CHECK(out.ok());
      benchmark::DoNotOptimize(out);
    }
  } else {
    for (auto _ : state) {
      auto out = table::VecHashJoin(ColumnarBatch{facts, {}, true},
                                    ColumnarBatch{customers, {}, true},
                                    {"customer"}, {"cid"}, pool.get());
      MDE_CHECK(out.ok());
      benchmark::DoNotOptimize(out);
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kRows / 4));
}
BENCHMARK(BM_HashJoin)->Arg(-1)->Arg(0)->Arg(2)->Arg(4);

void BM_GroupBy(benchmark::State& state) {
  const int64_t mode = state.range(0);
  auto cols = MakeFacts(kRows);
  const std::vector<std::string> keys = {"region"};
  const std::vector<AggSpec> aggs = {{AggKind::kSum, "amount", "total"},
                                     {AggKind::kAvg, "amount", "avg"},
                                     {AggKind::kCount, "", "n"}};
  std::unique_ptr<ThreadPool> pool;
  if (mode > 0) pool = std::make_unique<ThreadPool>(mode);
  if (mode < 0) {
    Table t = Table::FromColumnar(cols);
    t.rows();
    for (auto _ : state) {
      auto out = table::GroupBy(t, keys, aggs);
      MDE_CHECK(out.ok());
      benchmark::DoNotOptimize(out);
    }
  } else {
    for (auto _ : state) {
      auto out = table::VecGroupBy(ColumnarBatch{cols, {}, true}, keys, aggs,
                                   pool.get());
      MDE_CHECK(out.ok());
      benchmark::DoNotOptimize(out);
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(kRows));
}
BENCHMARK(BM_GroupBy)->Arg(-1)->Arg(0)->Arg(2)->Arg(4);

void Preamble() {
  std::printf(
      "=== table operator microbenchmarks ===\n"
      "Arg(-1): row-at-a-time reference operators\n"
      "Arg(0):  vectorized kernels, serial\n"
      "Arg(k):  vectorized kernels over a k-thread pool\n\n");
}

}  // namespace

MDE_BENCHMARK_MAIN(Preamble)
