/// F4 — Figure 4: the main-effects plot for seven parameters. Runs a
/// stochastic simulation response over the Figure 3 design and prints, per
/// factor, the mean response at the low and high settings (the two points
/// of each panel in Figure 4) plus the half-normal (Daniel) diagnostic.

#include <cmath>
#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include "doe/designs.h"
#include "doe/main_effects.h"
#include "util/distributions.h"

namespace {

using namespace mde;       // NOLINT
using namespace mde::doe;  // NOLINT

void PrintFigure4() {
  std::printf("=== F4 / Figure 4: main-effects plot data ===\n");
  // A 7-parameter stochastic response: three active factors.
  const std::vector<double> beta = {1.8, 0.0, -1.1, 0.0, 0.45, 0.0, 0.0};
  linalg::Matrix d = Resolution3Design7Factors();
  Rng rng(2014);
  linalg::Vector y(d.rows());
  for (size_t r = 0; r < d.rows(); ++r) {
    double v = 12.0;
    for (size_t f = 0; f < 7; ++f) v += beta[f] * d(r, f);
    y[r] = v + SampleNormal(rng, 0.0, 0.15);
  }
  auto effects = ComputeMainEffects(d, y).value();
  std::printf("%8s %12s %12s %10s\n", "factor", "low mean", "high mean",
              "effect");
  for (const MainEffect& e : effects) {
    std::printf("%8zu %12.3f %12.3f %10.3f\n", e.factor + 1, e.low_mean,
                e.high_mean, e.effect);
  }

  auto half = HalfNormalScores(effects).value();
  std::printf("\nhalf-normal (Daniel) plot coordinates "
              "(abs effect vs quantile):\n");
  for (const HalfNormalPoint& p : half) {
    std::printf("  x%zu: |effect|=%.3f  q=%.3f\n", p.factor + 1,
                p.abs_effect, p.quantile);
  }
  auto important = ImportantFactors(effects, 3.0);
  std::printf("\nfactors declared important (Lenth-style cutoff):");
  for (size_t f : important) std::printf(" x%zu", f + 1);
  std::printf("  (truth: x1, x3, x5)\n\n");
}

void BM_MainEffects(benchmark::State& state) {
  linalg::Matrix d = FullFactorial(static_cast<size_t>(state.range(0)));
  linalg::Vector y(d.rows());
  Rng rng(1);
  for (auto& v : y) v = rng.NextDouble();
  for (auto _ : state) {
    auto e = ComputeMainEffects(d, y);
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_MainEffects)->Arg(7)->Arg(12);

}  // namespace

MDE_BENCHMARK_MAIN(PrintFigure4)
