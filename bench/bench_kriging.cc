/// E9 — Section 4.1: kriging metamodels. Shows (a) exact interpolation at
/// design points and off-design RMSE vs a polynomial metamodel on a
/// nonlinear surface, (b) stochastic kriging beating deterministic kriging
/// under replication noise, and benchmarks fit/predict cost vs design
/// size — "simulation on demand".

#include <cmath>
#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include "metamodel/kriging.h"
#include "metamodel/polynomial.h"
#include "util/distributions.h"
#include "util/rng.h"

namespace {

using namespace mde;             // NOLINT
using namespace mde::metamodel;  // NOLINT

double Surface(double a, double b) {
  return std::sin(3.0 * a) * std::cos(2.0 * b) + 0.5 * a;
}

void PrintAccuracy() {
  std::printf("=== E9: kriging vs polynomial metamodels ===\n");
  // 6x6 grid design over [0,1]^2.
  std::vector<linalg::Vector> rows;
  linalg::Vector y;
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 6; ++j) {
      const double a = i / 5.0;
      const double b = j / 5.0;
      rows.push_back({a, b});
      y.push_back(Surface(a, b));
    }
  }
  linalg::Matrix x = linalg::Matrix::FromRows(rows);
  KrigingModel::Options kopt;
  kopt.fit_hyperparameters = true;
  auto gp = KrigingModel::Fit(x, y, kopt).value();
  PolynomialMetamodel::Options popt;
  popt.max_interaction_order = 2;
  auto poly = PolynomialMetamodel::Fit(x, y, popt).value();

  Rng rng(5);
  double gp_rmse = 0.0, poly_rmse = 0.0;
  const int probes = 500;
  for (int p = 0; p < probes; ++p) {
    const double a = rng.NextDouble();
    const double b = rng.NextDouble();
    const double truth = Surface(a, b);
    gp_rmse += std::pow(gp.Predict({a, b}) - truth, 2);
    poly_rmse += std::pow(poly.Predict({a, b}) - truth, 2);
  }
  gp_rmse = std::sqrt(gp_rmse / probes);
  poly_rmse = std::sqrt(poly_rmse / probes);
  std::printf("36-run design, nonlinear response sin(3a)cos(2b)+a/2:\n");
  std::printf("%28s %10.4f\n", "kriging off-design RMSE", gp_rmse);
  std::printf("%28s %10.4f\n", "polynomial (order 2) RMSE", poly_rmse);
  std::printf("kriging interpolates design points exactly "
              "(max |resid| = %.2e)\n\n",
              [&] {
                double m = 0.0;
                for (size_t r = 0; r < rows.size(); ++r) {
                  m = std::max(m, std::fabs(gp.Predict(rows[r]) - y[r]));
                }
                return m;
              }());

  // Stochastic kriging under noise.
  Rng nrng(8);
  linalg::Vector ybar(rows.size());
  std::vector<double> pv(rows.size());
  const double noise_sd = 0.3;
  const size_t reps = 8;
  for (size_t r = 0; r < rows.size(); ++r) {
    double sum = 0.0;
    for (size_t k = 0; k < reps; ++k) {
      sum += y[r] + SampleNormal(nrng, 0.0, noise_sd);
    }
    ybar[r] = sum / reps;
    pv[r] = noise_sd * noise_sd / reps;
  }
  auto det = KrigingModel::Fit(x, ybar, kopt).value();
  KrigingModel::Options skopt = kopt;
  skopt.fit_hyperparameters = false;
  skopt.theta = det.theta();
  skopt.tau2 = det.tau2();
  auto stoch = KrigingModel::FitStochastic(x, ybar, pv, skopt).value();
  double det_rmse = 0.0, stoch_rmse = 0.0;
  for (int p = 0; p < probes; ++p) {
    const double a = rng.NextDouble();
    const double b = rng.NextDouble();
    const double truth = Surface(a, b);
    det_rmse += std::pow(det.Predict({a, b}) - truth, 2);
    stoch_rmse += std::pow(stoch.Predict({a, b}) - truth, 2);
  }
  std::printf("with noisy replications (sd %.1f, %zu reps/point):\n",
              noise_sd, reps);
  std::printf("%28s %10.4f\n", "deterministic kriging RMSE",
              std::sqrt(det_rmse / probes));
  std::printf("%28s %10.4f\n", "stochastic kriging RMSE",
              std::sqrt(stoch_rmse / probes));
  std::printf("\n");
}

void BM_KrigingFit(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(3);
  std::vector<linalg::Vector> rows;
  linalg::Vector y;
  for (size_t i = 0; i < n; ++i) {
    const double a = rng.NextDouble();
    const double b = rng.NextDouble();
    rows.push_back({a, b});
    y.push_back(Surface(a, b));
  }
  linalg::Matrix x = linalg::Matrix::FromRows(rows);
  KrigingModel::Options opt;
  opt.theta = {10.0, 10.0};
  for (auto _ : state) {
    auto m = KrigingModel::Fit(x, y, opt);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_KrigingFit)->Arg(25)->Arg(100)->Arg(400);

void BM_KrigingPredict(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(3);
  std::vector<linalg::Vector> rows;
  linalg::Vector y;
  for (size_t i = 0; i < n; ++i) {
    rows.push_back({rng.NextDouble(), rng.NextDouble()});
    y.push_back(Surface(rows.back()[0], rows.back()[1]));
  }
  KrigingModel::Options opt;
  opt.theta = {10.0, 10.0};
  auto m =
      KrigingModel::Fit(linalg::Matrix::FromRows(rows), y, opt).value();
  for (auto _ : state) {
    const double p = m.Predict({rng.NextDouble(), rng.NextDouble()});
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_KrigingPredict)->Arg(25)->Arg(400);

}  // namespace

MDE_BENCHMARK_MAIN(PrintAccuracy)
