/// Extension — the Hammersley-Handscomb efficiency theme of Section 2.3
/// (cost x variance): classical variance-reduction techniques measured on
/// the same budget. Antithetic variates, control variates, and common
/// random numbers each multiply effective efficiency without touching
/// per-run cost.

#include <cmath>
#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include "mcdb/variance_reduction.h"
#include "util/distributions.h"

namespace {

using namespace mde;        // NOLINT
using namespace mde::mcdb;  // NOLINT

void PrintComparison() {
  std::printf("=== extension: variance reduction (efficiency = 1/(cost x "
              "var)) ===\n");
  // Integrand: E[e^U], a monotone function of the driving uniform.
  auto f = [](double u) { return std::exp(u); };
  auto plain = PlainMonteCarlo(f, 100000, 3);
  auto anti = AntitheticMonteCarlo(f, 50000, 3);  // same # of f calls
  std::printf("E[e^U] = e - 1 = %.5f\n", std::exp(1.0) - 1.0);
  std::printf("%22s mean=%.5f  per-draw var=%.5f\n", "plain MC:", plain.mean,
              plain.variance);
  std::printf("%22s mean=%.5f  pair var=%.5f  (%.1fx efficiency)\n",
              "antithetic:", anti.mean, anti.variance,
              plain.variance / (2.0 * anti.variance));

  // Control variate: Y = e^U with control X = U, E[U] = 1/2.
  Rng rng(4);
  std::vector<double> y, x;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.NextDouble();
    x.push_back(u);
    y.push_back(std::exp(u));
  }
  auto cv = ControlVariate(y, x, 0.5).value();
  std::printf("%22s mean=%.5f  beta=%.3f  (%.1fx variance reduction)\n",
              "control variate:", cv.mean, cv.beta,
              cv.variance_reduction_factor);

  // CRN on a queueing comparison.
  auto run = [](int config, Rng& r) {
    const double service = config == 0 ? 1.0 : 1.15;
    double clock = 0, busy = 0, wait = 0;
    for (int c = 0; c < 100; ++c) {
      clock += SampleExponential(r, 0.8);
      const double start = std::max(clock, busy);
      wait += start - clock;
      busy = start + SampleExponential(r, service);
    }
    return wait / 100.0;
  };
  auto crn = CompareWithCrn(run, 400, 5).value();
  std::printf("%22s diff=%.4f  se(crn)=%.4f vs se(indep)=%.4f  (%.1fx)\n\n",
              "common random #s:", crn.mean_difference, crn.crn_std_error,
              crn.independent_std_error, crn.variance_reduction_factor);
}

void BM_PlainMc(benchmark::State& state) {
  auto f = [](double u) { return std::exp(u); };
  uint64_t seed = 0;
  for (auto _ : state) {
    auto e = PlainMonteCarlo(f, 10000, seed++);
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_PlainMc);

void BM_AntitheticMc(benchmark::State& state) {
  auto f = [](double u) { return std::exp(u); };
  uint64_t seed = 0;
  for (auto _ : state) {
    auto e = AntitheticMonteCarlo(f, 5000, seed++);
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_AntitheticMc);

}  // namespace

MDE_BENCHMARK_MAIN(PrintComparison)
