/// E6 — Section 2.4: PDES-MAS synchronized range queries over shared state
/// variables. Prints the pruning behavior (CLP nodes visited) as a
/// function of query selectivity and leaf size, and benchmarks range-query
/// latency for current-time and timestamped queries.

#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include "util/check.h"

#include "pdesmas/ssv.h"
#include "util/distributions.h"
#include "util/rng.h"

namespace {

using namespace mde;           // NOLINT
using namespace mde::pdesmas;  // NOLINT

/// Populates positions: agents move along a line at different rates, so
/// writes carry different timestamps per agent (the ALP-rate mismatch).
ClpTree MakeTree(size_t agents, size_t leaf_size, uint64_t seed) {
  ClpTree tree(agents, leaf_size);
  Rng rng(seed);
  for (size_t id = 0; id < agents; ++id) {
    double t = 0.0;
    double pos = rng.NextDouble() * 1000.0;
    const size_t writes = 1 + rng.NextBounded(8);
    for (size_t w = 0; w < writes; ++w) {
      t += 0.5 + rng.NextDouble();
      pos += SampleNormal(rng, 0.0, 5.0);
      MDE_CHECK(tree.Write(id, t, pos).ok());
    }
  }
  return tree;
}

void PrintPruning() {
  std::printf("=== E6: PDES-MAS range queries over SSVs ===\n");
  std::printf("16384 agents, per-agent timestamped position writes\n\n");
  std::printf("%10s %14s %14s %10s\n", "leaf size", "narrow query",
              "wide query", "hits(n)");
  for (size_t leaf : {4u, 16u, 64u, 256u}) {
    ClpTree tree = MakeTree(16384, leaf, 3);
    auto narrow = tree.CurrentRangeQuery(500.0, 510.0);
    const size_t nv = tree.last_query_nodes_visited();
    auto wide = tree.CurrentRangeQuery(0.0, 1000.0);
    const size_t wv = tree.last_query_nodes_visited();
    std::printf("%10zu %10zu vis %10zu vis %10zu\n", leaf, nv, wv,
                narrow.size());
  }
  std::printf("\nnarrow 'find all agents within range right now' queries "
              "prune most of the\nCLP tree; the leaf size trades pruning "
              "depth against scan width.\n\n");
}

void BM_CurrentRangeQuery(benchmark::State& state) {
  ClpTree tree = MakeTree(16384, static_cast<size_t>(state.range(0)), 3);
  Rng rng(9);
  for (auto _ : state) {
    const double lo = rng.NextDouble() * 950.0;
    auto hits = tree.CurrentRangeQuery(lo, lo + 20.0);
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_CurrentRangeQuery)->Arg(4)->Arg(32)->Arg(256);

void BM_TimestampedRangeQuery(benchmark::State& state) {
  ClpTree tree = MakeTree(16384, 32, 3);
  Rng rng(9);
  for (auto _ : state) {
    const double lo = rng.NextDouble() * 950.0;
    auto hits = tree.RangeQueryAt(3.0, lo, lo + 20.0);
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_TimestampedRangeQuery);

void BM_SsvWrite(benchmark::State& state) {
  ClpTree tree(16384, 32);
  Rng rng(5);
  double t = 0.0;
  for (auto _ : state) {
    t += 0.001;
    MDE_CHECK(
        tree.Write(rng.NextBounded(16384), t, rng.NextDouble() * 1000)
            .ok());
  }
}
BENCHMARK(BM_SsvWrite);

}  // namespace

MDE_BENCHMARK_MAIN(PrintPruning)
