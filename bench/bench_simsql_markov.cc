/// E2 — Section 2.1: SimSQL database-valued Markov chains and the
/// ABS-step-as-self-join observation of Wang et al. Prints the chain's
/// marginal statistics, then benchmarks (a) chain stepping throughput and
/// (b) the spatial-grid-partitioned agent self-join across thread counts —
/// the parallelizable "agents interact only with nearby agents" join.

#include <cmath>
#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include "util/check.h"

#include "abs/spatial.h"
#include "simsql/simsql.h"
#include "table/columnar.h"
#include "table/ops.h"
#include "util/distributions.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace {

using namespace mde;          // NOLINT
using namespace mde::simsql;  // NOLINT
using table::DataType;
using table::Row;
using table::Schema;
using table::Table;
using table::Value;

/// Chain tables are built columnar: the transition reads the previous
/// version's typed position block, writes a fresh position block, and
/// SHARES the id column across every version — versions differ only in the
/// one column that actually changed.
ChainTableSpec WalkerSpec(size_t walkers) {
  ChainTableSpec spec;
  spec.name = "W";
  spec.init = [walkers](const DatabaseState&, Rng&) -> Result<Table> {
    table::ColumnarTableBuilder b{
        Schema({{"id", DataType::kInt64}, {"pos", DataType::kDouble}})};
    b.Reserve(walkers);
    for (size_t i = 0; i < walkers; ++i) {
      b.column(0).AppendInt64(static_cast<int64_t>(i));
      b.column(1).AppendDouble(0.0);
    }
    MDE_ASSIGN_OR_RETURN(auto cols, b.Finish());
    return Table::FromColumnar(std::move(cols));
  };
  spec.transition = [](const DatabaseState& prev, const DatabaseState&,
                       Rng& rng) -> Result<Table> {
    const Table& old = prev.at("W");
    MDE_ASSIGN_OR_RETURN(auto old_cols, old.ToColumnar());
    const table::Column& pos = old_cols->col(1);
    table::ColumnarTableBuilder b{old.schema()};
    b.SetColumn(0, old_cols->col_ptr(0));  // ids are immutable: share them
    b.column(1).Reserve(pos.size);
    for (size_t i = 0; i < pos.size; ++i) {
      b.column(1).AppendDouble(pos.f64[i] + SampleStandardNormal(rng));
    }
    MDE_ASSIGN_OR_RETURN(auto cols, b.Finish());
    return Table::FromColumnar(std::move(cols));
  };
  return spec;
}

void PrintChainDemo() {
  std::printf("=== E2: database-valued Markov chains (SimSQL) ===\n");
  MarkovChainDb db;
  MDE_CHECK(db.AddChainTable(WalkerSpec(2000)).ok());
  std::printf("%6s %14s (theory: Var = t)\n", "step", "Var(pos)");
  for (size_t steps : {4u, 16u, 64u}) {
    auto state = db.Run(steps, 5, 0).value();
    std::vector<double> pos;
    for (const Row& r : state.at("W").rows()) {
      pos.push_back(r[1].AsDouble());
    }
    std::printf("%6zu %14.2f\n", steps, Variance(pos));
  }
  std::printf("\n");
}

void BM_ChainStep(benchmark::State& state) {
  const size_t walkers = static_cast<size_t>(state.range(0));
  MarkovChainDb db;
  MDE_CHECK(db.AddChainTable(WalkerSpec(walkers)).ok());
  uint64_t rep = 0;
  for (auto _ : state) {
    auto final_state = db.Run(10, 1, rep++);
    benchmark::DoNotOptimize(final_state);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(walkers) * 10);
}
BENCHMARK(BM_ChainStep)->Arg(1000)->Arg(10000);

/// The ABS self-join: neighbor lists for all agents within a radius,
/// partitioned by grid cell and parallelized.
void BM_AbsSelfJoin(benchmark::State& state) {
  const size_t agents = 50000;
  const size_t threads = static_cast<size_t>(state.range(0));
  Rng rng(7);
  std::vector<abs::Point> pts;
  pts.reserve(agents);
  for (size_t i = 0; i < agents; ++i) {
    pts.push_back({rng.NextDouble() * 1000.0, rng.NextDouble() * 1000.0});
  }
  abs::SpatialGrid grid(pts, 5.0);
  ThreadPool pool(threads);
  for (auto _ : state) {
    auto lists = grid.NeighborLists(5.0, &pool);
    benchmark::DoNotOptimize(lists);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(agents));
}
BENCHMARK(BM_AbsSelfJoin)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// Baseline: the unpartitioned quadratic self-join on a small agent set
/// (what the grid partitioning avoids).
void BM_NaiveSelfJoin(benchmark::State& state) {
  const size_t agents = static_cast<size_t>(state.range(0));
  Rng rng(7);
  std::vector<abs::Point> pts;
  for (size_t i = 0; i < agents; ++i) {
    pts.push_back({rng.NextDouble() * 1000.0, rng.NextDouble() * 1000.0});
  }
  for (auto _ : state) {
    size_t pairs = 0;
    for (size_t i = 0; i < agents; ++i) {
      for (size_t j = 0; j < agents; ++j) {
        if (i != j && abs::Distance(pts[i], pts[j]) <= 5.0) ++pairs;
      }
    }
    benchmark::DoNotOptimize(pairs);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(agents));
}
BENCHMARK(BM_NaiveSelfJoin)->Arg(2000)->Arg(8000);

}  // namespace

MDE_BENCHMARK_MAIN(PrintChainDemo)
