/// F2 — Figure 2 / Section 2.3: result caching for a two-model series
/// composite. Sweeps the replication fraction alpha, comparing the
/// analytic asymptotic variance-cost product g(alpha) against the measured
/// variance of budget-constrained estimates, and verifies the optimal
/// alpha* formula. The benchmark section times full RC runs.

#include <cmath>
#include <cstdio>
#include <memory>

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include "composite/model.h"
#include "composite/result_caching.h"
#include "util/distributions.h"
#include "util/stats.h"

namespace {

using namespace mde;             // NOLINT
using namespace mde::composite;  // NOLINT

std::shared_ptr<FunctionModel> MakeM1(double cost) {
  return std::make_shared<FunctionModel>(
      "demand",
      [](const std::vector<double>&, Rng& rng)
          -> Result<std::vector<double>> {
        return std::vector<double>{SampleLognormal(rng, 0.0, 0.5)};
      },
      cost);
}

std::shared_ptr<FunctionModel> MakeM2(double noise_sd) {
  return std::make_shared<FunctionModel>(
      "queue",
      [noise_sd](const std::vector<double>& in, Rng& rng)
          -> Result<std::vector<double>> {
        return std::vector<double>{2.0 * in[0] +
                                   SampleNormal(rng, 0.0, noise_sd)};
      },
      1.0);
}

void PrintFigure2() {
  std::printf("=== F2 / Figure 2 + Sec 2.3: result-caching efficiency ===\n");
  auto m1 = MakeM1(/*cost=*/9.0);
  auto m2 = MakeM2(/*noise_sd=*/3.0);
  CostStats s = EstimateStatistics(*m1, *m2, {}, 400, 8, 11).value();
  std::printf("pilot statistics: c1=%.1f c2=%.1f V1=%.3f V2=%.3f\n", s.c1,
              s.c2, s.v1, s.v2);
  const double astar = OptimalAlpha(s);
  std::printf("alpha* = sqrt((c2/c1)/(V1/V2 - 1)) = %.3f\n\n", astar);

  std::printf("%8s %12s %12s %16s\n", "alpha", "g(alpha)", "g~(alpha)",
              "measured c*Var");
  const double budget = 4000.0;
  for (double alpha : {0.05, 0.1, 0.2, astar, 0.5, 0.75, 1.0}) {
    RunningStat est;
    for (uint64_t rep = 0; rep < 200; ++rep) {
      auto run = RunWithBudget(*m1, *m2, {}, alpha, budget, 100 + rep);
      est.Add(run.value().estimate);
    }
    // CLT: c * Var[U(c)] -> g(alpha).
    std::printf("%8.3f %12.2f %12.2f %16.2f\n", alpha, GAlpha(alpha, s),
                GTildeAlpha(alpha, s), budget * est.variance());
  }
  std::printf("\nshape check: measured c*Var tracks g(alpha); the minimum "
              "sits at alpha* and\nthe naive alpha=1 strategy pays ~%.1fx "
              "the variance of the optimum.\n\n",
              GTildeAlpha(1.0, s) / GTildeAlpha(astar, s));
}

void BM_ResultCachingRun(benchmark::State& state) {
  auto m1 = MakeM1(9.0);
  auto m2 = MakeM2(3.0);
  const double alpha = static_cast<double>(state.range(0)) / 100.0;
  uint64_t seed = 0;
  for (auto _ : state) {
    auto run = RunResultCaching(*m1, *m2, {}, alpha, 2000, seed++);
    benchmark::DoNotOptimize(run);
  }
}
BENCHMARK(BM_ResultCachingRun)->Arg(10)->Arg(50)->Arg(100);

}  // namespace

MDE_BENCHMARK_MAIN(PrintFigure2)
