#ifndef MDE_BENCH_BENCH_MAIN_H_
#define MDE_BENCH_BENCH_MAIN_H_

/// Shared benchmark entry point. Every bench binary prints a human-readable
/// experiment preamble (the DESIGN.md narrative tables) followed by the
/// google-benchmark timing loop. For machine-readable output the preamble
/// must be suppressed so that `--benchmark_format=json` emits a single valid
/// JSON document on stdout:
///
///   build/bench/bench_mcdb_tuple_bundles --benchmark_format=json
///       [--benchmark_out=BENCH.json --benchmark_out_format=json]
///
/// MDE_BENCHMARK_MAIN(Preamble) expands to a main() that runs `Preamble()`
/// only when no machine-readable stdout format was requested.

#include <cstring>

#include <benchmark/benchmark.h>

namespace mde::bench {

/// True when argv requests a non-console stdout format (json/csv), in which
/// case nothing but the benchmark document may be written to stdout.
inline bool MachineReadableStdout(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_format=", 19) == 0 &&
        std::strcmp(argv[i] + 19, "console") != 0) {
      return true;
    }
  }
  return false;
}

}  // namespace mde::bench

#define MDE_BENCHMARK_MAIN(Preamble)                            \
  int main(int argc, char** argv) {                             \
    if (!mde::bench::MachineReadableStdout(argc, argv)) {       \
      Preamble();                                               \
    }                                                           \
    benchmark::Initialize(&argc, argv);                         \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) {   \
      return 1;                                                 \
    }                                                           \
    benchmark::RunSpecifiedBenchmarks();                        \
    benchmark::Shutdown();                                      \
    return 0;                                                   \
  }

#endif  // MDE_BENCH_BENCH_MAIN_H_
