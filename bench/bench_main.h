#ifndef MDE_BENCH_BENCH_MAIN_H_
#define MDE_BENCH_BENCH_MAIN_H_

/// Shared benchmark entry point. Every bench binary prints a human-readable
/// experiment preamble (the DESIGN.md narrative tables) followed by the
/// google-benchmark timing loop. For machine-readable output the preamble
/// must be suppressed so that `--benchmark_format=json` emits a single valid
/// JSON document on stdout:
///
///   build/bench/bench_mcdb_tuple_bundles --benchmark_format=json
///       [--benchmark_out=BENCH.json --benchmark_out_format=json]
///
/// MDE_BENCHMARK_MAIN(Preamble) expands to a main() that runs `Preamble()`
/// only when no machine-readable stdout format was requested.
///
/// Every bench binary also accepts `--mde_trace_out=FILE` (or the
/// space-separated `--mde_trace_out FILE`): trace spans are enabled for the
/// whole run and a Chrome trace-event JSON is written to FILE on exit. The
/// per-thread span rings drop their OLDEST events on overflow, so the file
/// holds the final iterations of each benchmark — open it at
/// chrome://tracing or https://ui.perfetto.dev.

#include <cstring>
#include <fstream>
#include <string>

#include <benchmark/benchmark.h>

#include "obs/trace.h"

namespace mde::bench {

/// True when argv requests a non-console stdout format (json/csv), in which
/// case nothing but the benchmark document may be written to stdout.
/// Recognizes both `--benchmark_format=json` and the space-separated
/// `--benchmark_format json` spelling.
inline bool MachineReadableStdout(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_format=", 19) == 0 &&
        std::strcmp(argv[i] + 19, "console") != 0) {
      return true;
    }
    if (std::strcmp(argv[i], "--benchmark_format") == 0 && i + 1 < argc &&
        std::strcmp(argv[i + 1], "console") != 0) {
      return true;
    }
  }
  return false;
}

/// benchmark::Initialize only understands `--flag=value`; folds the
/// space-separated `--benchmark_foo bar` spelling into `--benchmark_foo=bar`
/// so both work. Rewritten flags are owned by a function-local static that
/// outlives argv use.
inline void CanonicalizeBenchmarkFlags(int* argc, char** argv) {
  static std::vector<std::string> storage;
  storage.reserve(static_cast<size_t>(*argc));
  int w = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_", 12) == 0 &&
        std::strchr(argv[i], '=') == nullptr && i + 1 < *argc &&
        argv[i + 1][0] != '-') {
      storage.push_back(std::string(argv[i]) + "=" + argv[i + 1]);
      argv[w++] = storage.back().data();
      ++i;
      continue;
    }
    argv[w++] = argv[i];
  }
  *argc = w;
}

/// Consumes `--mde_trace_out=FILE` / `--mde_trace_out FILE` from argv
/// (benchmark::Initialize rejects flags it does not know) and returns the
/// requested path, or "" when the flag is absent.
inline std::string ExtractTraceOut(int* argc, char** argv) {
  std::string path;
  int w = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], "--mde_trace_out=", 16) == 0) {
      path = argv[i] + 16;
      continue;
    }
    if (std::strcmp(argv[i], "--mde_trace_out") == 0 && i + 1 < *argc) {
      path = argv[i + 1];
      ++i;
      continue;
    }
    argv[w++] = argv[i];
  }
  *argc = w;
  return path;
}

/// Enables tracing when a path was requested; dumps the trace on
/// destruction so the file exists however the benchmarks exit the happy
/// path.
class TraceDump {
 public:
  explicit TraceDump(std::string path) : path_(std::move(path)) {
    if (!path_.empty()) mde::obs::Tracer::Global().Enable();
  }
  ~TraceDump() {
    if (path_.empty()) return;
    std::ofstream out(path_);
    mde::obs::Tracer::Global().WriteChromeTrace(out);
  }

 private:
  std::string path_;
};

}  // namespace mde::bench

#define MDE_BENCHMARK_MAIN(Preamble)                                    \
  int main(int argc, char** argv) {                                     \
    mde::bench::CanonicalizeBenchmarkFlags(&argc, argv);                \
    const std::string mde_trace_path =                                  \
        mde::bench::ExtractTraceOut(&argc, argv);                       \
    mde::bench::TraceDump mde_trace_dump(mde_trace_path);               \
    if (!mde::bench::MachineReadableStdout(argc, argv)) {               \
      Preamble();                                                       \
    }                                                                   \
    benchmark::Initialize(&argc, argv);                                 \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) {           \
      return 1;                                                         \
    }                                                                   \
    benchmark::RunSpecifiedBenchmarks();                                \
    benchmark::Shutdown();                                              \
    return 0;                                                           \
  }

#endif  // MDE_BENCH_BENCH_MAIN_H_
