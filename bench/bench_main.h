#ifndef MDE_BENCH_BENCH_MAIN_H_
#define MDE_BENCH_BENCH_MAIN_H_

/// Shared benchmark entry point. Every bench binary prints a human-readable
/// experiment preamble (the DESIGN.md narrative tables) followed by the
/// google-benchmark timing loop. For machine-readable output the preamble
/// must be suppressed so that `--benchmark_format=json` emits a single valid
/// JSON document on stdout:
///
///   build/bench/bench_mcdb_tuple_bundles --benchmark_format=json
///       [--benchmark_out=BENCH.json --benchmark_out_format=json]
///
/// MDE_BENCHMARK_MAIN(Preamble) expands to a main() that runs `Preamble()`
/// only when no machine-readable stdout format was requested.
///
/// Every bench binary also accepts (each in `--flag=VALUE` or the
/// space-separated `--flag VALUE` spelling):
///
///   --mde_trace_out=FILE      enable trace spans for the whole run and
///                             write a Chrome trace-event JSON to FILE on
///                             exit. The per-thread span rings drop their
///                             OLDEST events on overflow, so the file holds
///                             the final iterations of each benchmark —
///                             open it at chrome://tracing or
///                             https://ui.perfetto.dev.
///   --mde_metrics_out=FILE    write the final registry snapshot to FILE in
///                             the Prometheus text exposition format on
///                             exit.
///   --mde_metrics_jsonl=FILE  run a background Sampler (obs/export.h) for
///                             the whole run, appending one JSONL registry
///                             record per period to FILE.
///   --mde_metrics_period_ms=N Sampler period (default 50).
///
/// Env knobs (no flags, so they compose with any harness):
///
///   MDE_DIAG_PORT=N   serve live diagnostics on http://127.0.0.1:N for the
///                     whole run (0 = ephemeral; the chosen port is printed
///                     to stderr). Endpoints: /metrics /statusz /queryz
///                     /tracez /flightz /profilez — see obs/http.h.
///   MDE_PROF_HZ=N     with MDE_DIAG_PORT: also run the continuous CPU
///                     profiler at N Hz ("default" = 97).

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include <benchmark/benchmark.h>

#include "obs/export.h"
#include "obs/http.h"
#include "obs/trace.h"
#include "simd/simd.h"

namespace mde::bench {

/// True when argv requests a non-console stdout format (json/csv), in which
/// case nothing but the benchmark document may be written to stdout.
/// Recognizes both `--benchmark_format=json` and the space-separated
/// `--benchmark_format json` spelling.
inline bool MachineReadableStdout(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_format=", 19) == 0 &&
        std::strcmp(argv[i] + 19, "console") != 0) {
      return true;
    }
    if (std::strcmp(argv[i], "--benchmark_format") == 0 && i + 1 < argc &&
        std::strcmp(argv[i + 1], "console") != 0) {
      return true;
    }
  }
  return false;
}

/// benchmark::Initialize only understands `--flag=value`; folds the
/// space-separated `--benchmark_foo bar` spelling into `--benchmark_foo=bar`
/// so both work. Rewritten flags are owned by a function-local static that
/// outlives argv use.
inline void CanonicalizeBenchmarkFlags(int* argc, char** argv) {
  static std::vector<std::string> storage;
  storage.reserve(static_cast<size_t>(*argc));
  int w = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_", 12) == 0 &&
        std::strchr(argv[i], '=') == nullptr && i + 1 < *argc &&
        argv[i + 1][0] != '-') {
      storage.push_back(std::string(argv[i]) + "=" + argv[i + 1]);
      argv[w++] = storage.back().data();
      ++i;
      continue;
    }
    argv[w++] = argv[i];
  }
  *argc = w;
}

/// Consumes `--<name>=VALUE` / `--<name> VALUE` from argv
/// (benchmark::Initialize rejects flags it does not know) and returns the
/// value, or "" when the flag is absent. `name` includes the leading
/// dashes, e.g. "--mde_trace_out".
inline std::string ExtractMdeFlag(int* argc, char** argv, const char* name) {
  const size_t len = std::strlen(name);
  std::string value;
  int w = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      value = argv[i] + len + 1;
      continue;
    }
    if (std::strcmp(argv[i], name) == 0 && i + 1 < *argc) {
      value = argv[i + 1];
      ++i;
      continue;
    }
    argv[w++] = argv[i];
  }
  *argc = w;
  return value;
}

inline std::string ExtractTraceOut(int* argc, char** argv) {
  return ExtractMdeFlag(argc, argv, "--mde_trace_out");
}

/// Enables tracing when a path was requested; dumps the trace on
/// destruction so the file exists however the benchmarks exit the happy
/// path.
class TraceDump {
 public:
  explicit TraceDump(std::string path) : path_(std::move(path)) {
    if (!path_.empty()) mde::obs::Tracer::Global().Enable();
  }
  ~TraceDump() {
    if (path_.empty()) return;
    std::ofstream out(path_);
    mde::obs::Tracer::Global().WriteChromeTrace(out);
  }

 private:
  std::string path_;
};

/// Writes the final registry snapshot (Prometheus text exposition) on
/// destruction when a path was requested.
class MetricsDump {
 public:
  explicit MetricsDump(std::string path) : path_(std::move(path)) {}
  ~MetricsDump() {
    if (path_.empty()) return;
    std::ofstream out(path_);
    out << mde::obs::PrometheusText();
  }

 private:
  std::string path_;
};

/// Starts the background Sampler when a JSONL path was requested; the
/// returned pointer (null when absent) stops the sampler — writing the
/// final record — when it goes out of scope.
inline std::unique_ptr<mde::obs::Sampler> MaybeStartSampler(
    const std::string& path, const std::string& period_ms) {
  if (path.empty()) return nullptr;
  mde::obs::SamplerOptions options;
  options.path = path;
  options.period = std::chrono::milliseconds(50);
  if (!period_ms.empty()) {
    const long ms = std::strtol(period_ms.c_str(), nullptr, 10);
    if (ms > 0) options.period = std::chrono::milliseconds(ms);
  }
  return std::make_unique<mde::obs::Sampler>(std::move(options));
}

}  // namespace mde::bench

#define MDE_BENCHMARK_MAIN(Preamble)                                    \
  int main(int argc, char** argv) {                                     \
    mde::bench::CanonicalizeBenchmarkFlags(&argc, argv);                \
    const std::string mde_trace_path =                                  \
        mde::bench::ExtractTraceOut(&argc, argv);                       \
    const std::string mde_metrics_path =                                \
        mde::bench::ExtractMdeFlag(&argc, argv, "--mde_metrics_out");   \
    const std::string mde_metrics_jsonl =                               \
        mde::bench::ExtractMdeFlag(&argc, argv, "--mde_metrics_jsonl"); \
    const std::string mde_metrics_period = mde::bench::ExtractMdeFlag(  \
        &argc, argv, "--mde_metrics_period_ms");                        \
    mde::bench::TraceDump mde_trace_dump(mde_trace_path);               \
    mde::bench::MetricsDump mde_metrics_dump(mde_metrics_path);         \
    auto mde_sampler =                                                  \
        mde::bench::MaybeStartSampler(mde_metrics_jsonl,                \
                                      mde_metrics_period);              \
    mde::obs::DiagServer::MaybeStartFromEnv();                          \
    if (!mde::bench::MachineReadableStdout(argc, argv)) {               \
      Preamble();                                                       \
    }                                                                   \
    benchmark::Initialize(&argc, argv);                                 \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) {           \
      return 1;                                                         \
    }                                                                   \
    /* Kernel tier into the JSON/console context: numbers from different \
       dispatch tiers must never be compared as like for like. */       \
    benchmark::AddCustomContext(                                        \
        "mde_simd_tier",                                                \
        mde::simd::TierName(mde::simd::ActiveTier()));                  \
    benchmark::RunSpecifiedBenchmarks();                                \
    benchmark::Shutdown();                                              \
    return 0;                                                           \
  }

#endif  // MDE_BENCH_BENCH_MAIN_H_
