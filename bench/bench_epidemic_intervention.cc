/// E5 — Section 2.4 / Algorithm 1: Indemics-style query-driven
/// intervention. Reports attack rate and peak infectious with and without
/// the preschool-vaccination policy over several replications, and
/// benchmarks the HPC step and the observation-time SQL query separately
/// (the division of labor the Indemics architecture is about).

#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include "util/check.h"

#include "epi/indemics.h"
#include "table/query.h"
#include "util/stats.h"

namespace {

using namespace mde;       // NOLINT
using namespace mde::epi;  // NOLINT

EpidemicSim MakeSim(uint64_t disease_seed) {
  PopulationConfig pop;
  pop.num_people = 8000;
  pop.seed = 2014;
  DiseaseConfig dc;
  dc.transmissibility = 0.011;
  dc.seed = disease_seed;
  return EpidemicSim(GeneratePopulation(pop), dc);
}

void PrintIntervention() {
  std::printf("=== E5: Algorithm 1 intervention (Indemics) ===\n");
  std::printf("8000-person synthetic population, 150 days, weekly "
              "observations\n\n");
  RunningStat base_attack, pol_attack, base_peak, pol_peak, doses;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    EpidemicSim baseline = MakeSim(seed);
    MDE_CHECK(RunWithPolicy(baseline, 150, 7, nullptr).ok());
    EpidemicSim treated = MakeSim(seed);
    MDE_CHECK(
        RunWithPolicy(treated, 150, 7, VaccinatePreschoolersPolicy(0.01))
            .ok());
    base_attack.Add(static_cast<double>(baseline.TotalInfected()));
    pol_attack.Add(static_cast<double>(treated.TotalInfected()));
    base_peak.Add(static_cast<double>(baseline.PeakInfectious()));
    pol_peak.Add(static_cast<double>(treated.PeakInfectious()));
    size_t v = 0;
    for (const Person& p : treated.network().people()) {
      if (p.vaccinated) ++v;
    }
    doses.Add(static_cast<double>(v));
  }
  std::printf("%-28s %12s %12s\n", "(mean of 5 replications)", "baseline",
              "policy");
  std::printf("%-28s %12.0f %12.0f\n", "total ever infected",
              base_attack.mean(), pol_attack.mean());
  std::printf("%-28s %12.0f %12.0f\n", "peak infectious", base_peak.mean(),
              pol_peak.mean());
  std::printf("%-28s %12.0f %12.0f\n", "vaccine doses", 0.0, doses.mean());
  std::printf("\nattack count reduced %.0f%% by vaccinating only "
              "preschoolers when >1%% are sick.\n\n",
              100.0 * (1.0 - pol_attack.mean() / base_attack.mean()));
}

void BM_HpcStep(benchmark::State& state) {
  EpidemicSim sim = MakeSim(3);
  for (auto _ : state) {
    sim.Advance(1);
  }
}
BENCHMARK(BM_HpcStep);

void BM_ObservationQuery(benchmark::State& state) {
  EpidemicSim sim = MakeSim(3);
  sim.Advance(30);
  for (auto _ : state) {
    auto preschool = table::Query(sim.PersonTable())
                         .Where("age", table::CmpOp::kLe, int64_t{4})
                         .Join(sim.InfectedPersonTable(), {"pid"}, {"pid"})
                         .CountStar("n")
                         .ExecuteScalar();
    benchmark::DoNotOptimize(preschool);
  }
}
BENCHMARK(BM_ObservationQuery);

}  // namespace

MDE_BENCHMARK_MAIN(PrintIntervention)
