/// E7 — Section 3.2: wildfire data assimilation. Reports cell-state error
/// for the open-loop simulation vs the bootstrap particle filter vs the
/// sensor-aware-proposal filter, plus the error-vs-particle-count curve;
/// benchmarks one filter step per proposal.

#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include "util/check.h"

#include "util/stats.h"
#include "wildfire/assimilate.h"
#include "wildfire/fire.h"

namespace {

using namespace mde;            // NOLINT
using namespace mde::wildfire;  // NOLINT

void PrintAccuracy() {
  std::printf("=== E7: particle-filter wildfire assimilation ===\n");
  Terrain terrain = GenerateTerrain(36, 36, 0.5, 0.2, 21);
  FireSim sim(terrain, {});
  SensorModel::Config sc;
  sc.stride = 4;
  sc.noise_sd = 20.0;
  SensorModel sensors(terrain, sc);
  const size_t steps = 20;

  AssimilationConfig boot;
  boot.num_particles = 120;
  boot.proposal = ProposalKind::kBootstrap;
  boot.seed = 4;
  auto rb = RunAssimilation(sim, sensors, steps, boot, 77).value();

  AssimilationConfig aware = boot;
  aware.proposal = ProposalKind::kSensorAware;
  aware.num_particles = 50;
  aware.kde_samples = 6;
  auto ra = RunAssimilation(sim, sensors, steps, aware, 77).value();

  std::printf("mean cell-classification error over %zu steps:\n", steps);
  std::printf("%24s %10.3f%%\n", "open loop (model only)",
              100.0 * Mean(rb.open_loop_error));
  std::printf("%24s %10.3f%%\n", "bootstrap PF",
              100.0 * Mean(rb.filter_error));
  std::printf("%24s %10.3f%%\n", "sensor-aware PF",
              100.0 * Mean(ra.filter_error));

  std::printf("\nerror vs particle count (bootstrap proposal):\n");
  std::printf("%12s %12s %12s\n", "particles", "error", "mean ESS");
  for (size_t n : {10u, 40u, 160u}) {
    AssimilationConfig cfg = boot;
    cfg.num_particles = n;
    auto r = RunAssimilation(sim, sensors, steps, cfg, 77).value();
    std::printf("%12zu %11.3f%% %12.1f\n", n, 100.0 * Mean(r.filter_error),
                Mean(r.ess));
  }
  std::printf("\nassimilating sensor data beats the model alone; the "
              "sensor-aware proposal\nimproves on the bootstrap filter with "
              "fewer particles — the Xue-Hu result.\n\n");
}

void BM_FilterStep(benchmark::State& state) {
  Terrain terrain = GenerateTerrain(36, 36, 0.5, 0.2, 21);
  FireSim sim(terrain, {});
  SensorModel::Config sc;
  sc.stride = 4;
  SensorModel sensors(terrain, sc);
  Rng rng(1);
  FireState truth = sim.Ignite(18, 18, rng);
  for (int i = 0; i < 5; ++i) sim.Step(&truth, rng);
  const auto readings = sensors.Observe(truth, rng);

  AssimilationConfig cfg;
  cfg.num_particles = static_cast<size_t>(state.range(0));
  cfg.proposal = state.range(1) == 0 ? ProposalKind::kBootstrap
                                     : ProposalKind::kSensorAware;
  cfg.kde_samples = 4;
  WildfireFilter filter(sim, sensors, truth, cfg);
  for (auto _ : state) {
    MDE_CHECK(filter.Step(readings).ok());
  }
  state.SetLabel(state.range(1) == 0 ? "bootstrap" : "sensor-aware");
}
BENCHMARK(BM_FilterStep)->Args({50, 0})->Args({200, 0})->Args({50, 1});

void BM_FireSimStep(benchmark::State& state) {
  Terrain terrain = GenerateTerrain(100, 100, 0.5, 0.2, 21);
  FireSim sim(terrain, {});
  Rng rng(1);
  FireState s = sim.Ignite(50, 50, rng);
  for (auto _ : state) {
    sim.Step(&s, rng);
    if (s.NumBurning() == 0) s = sim.Ignite(50, 50, rng);
  }
}
BENCHMARK(BM_FireSimStep);

}  // namespace

MDE_BENCHMARK_MAIN(PrintAccuracy)
