/// Extension — Section 2.3 grounds simulation-run optimization in query
/// optimization. This bench runs the query-side half of the analogy: a
/// filter-above-join plan executed naively vs after selection pushdown,
/// reporting intermediate-row work and wall time.

#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include "table/plan.h"
#include "util/check.h"

namespace {

using namespace mde::table;  // NOLINT

struct Dataset {
  Table orders;
  Table customers;
};

Dataset MakeData(size_t num_orders, size_t num_customers) {
  Dataset d{Table{Schema({{"oid", DataType::kInt64},
                          {"cid", DataType::kInt64},
                          {"amount", DataType::kDouble}})},
            Table{Schema({{"cid", DataType::kInt64},
                          {"region", DataType::kString}})}};
  for (size_t o = 0; o < num_orders; ++o) {
    d.orders.Append({Value(static_cast<int64_t>(o)),
                     Value(static_cast<int64_t>(o % num_customers)),
                     Value(10.0 + static_cast<double>(o % 13))});
  }
  for (size_t c = 0; c < num_customers; ++c) {
    d.customers.Append({Value(static_cast<int64_t>(c)),
                        Value(c % 5 == 0 ? "EAST" : "WEST")});
  }
  return d;
}

PlanPtr MakeNaivePlan(const Dataset& d) {
  return PlanNode::Filter(
      PlanNode::Join(PlanNode::Scan(&d.orders, "orders"),
                     PlanNode::Scan(&d.customers, "customers"), {"cid"},
                     {"cid"}),
      {{"region", CmpOp::kEq, Value("EAST")},
       {"amount", CmpOp::kGt, Value(20.0)}});
}

/// The plan a careful human writes by hand: both filters already sitting
/// on their scans. The cost-based optimizer (BM_CostBasedPlan) is expected
/// to land within a whisker of this from the naive spelling.
PlanPtr MakeHandOptimizedPlan(const Dataset& d) {
  return PlanNode::Join(
      PlanNode::Filter(PlanNode::Scan(&d.orders, "orders"),
                       {{"amount", CmpOp::kGt, Value(20.0)}}),
      PlanNode::Filter(PlanNode::Scan(&d.customers, "customers"),
                       {{"region", CmpOp::kEq, Value("EAST")}}),
      {"cid"}, {"cid"});
}

void PrintComparison() {
  std::printf("=== extension: cost-based optimization (query side of Sec "
              "2.3) ===\n");
  static Dataset d = MakeData(200000, 5000);
  PlanPtr naive = MakeNaivePlan(d);
  PlanPtr optimized = OptimizePlan(naive).value();
  std::printf("naive plan:\n%s\ncost-based plan:\n%s\n",
              ExplainPlan(naive).c_str(), ExplainPlan(optimized).c_str());
  ExecutionStats ns, os;
  auto a = ExecutePlan(naive, &ns).value();
  auto b = ExecutePlan(optimized, &os).value();
  std::printf("result rows: %zu (both)\n", a.num_rows());
  MDE_CHECK_EQ(a.num_rows(), b.num_rows());
  std::printf("intermediate rows: naive %zu vs cost-based %zu (%.1fx less "
              "work)\n\n",
              ns.intermediate_rows, os.intermediate_rows,
              static_cast<double>(ns.intermediate_rows) /
                  static_cast<double>(os.intermediate_rows));
  // Second profiled run: the catalog now holds this plan's actuals, so
  // EXPLAIN ANALYZE shows est == rows per node (the feedback loop).
  ExecutionStats again;
  ExecutePlan(optimized, &again).value();
  std::printf("EXPLAIN ANALYZE (second run, estimates fed back):\n%s\n",
              ExplainAnalyze(optimized, again).c_str());
}

void BM_NaivePlan(benchmark::State& state) {
  static Dataset d = MakeData(200000, 5000);
  PlanPtr plan = MakeNaivePlan(d);
  for (auto _ : state) {
    auto r = ExecutePlan(plan, nullptr);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_NaivePlan);

void BM_OptimizedPlan(benchmark::State& state) {
  static Dataset d = MakeData(200000, 5000);
  PlanPtr plan = MakeHandOptimizedPlan(d);
  for (auto _ : state) {
    auto r = ExecutePlan(plan, nullptr);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_OptimizedPlan);

/// End-to-end cost-based path: optimize the naive spelling every
/// iteration, then execute. The acceptance bar is within 15% of the
/// hand-optimized plan above — i.e. the optimizer finds the pushed shape
/// and its own runtime is noise at this data size.
void BM_CostBasedPlan(benchmark::State& state) {
  static Dataset d = MakeData(200000, 5000);
  PlanPtr naive = MakeNaivePlan(d);
  for (auto _ : state) {
    auto plan = OptimizePlan(naive);
    auto r = ExecutePlan(plan.value(), nullptr);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_CostBasedPlan);

void BM_OptimizeItself(benchmark::State& state) {
  static Dataset d = MakeData(1000, 100);
  PlanPtr plan = MakeNaivePlan(d);
  for (auto _ : state) {
    auto r = OptimizePlan(plan);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_OptimizeItself);

}  // namespace

MDE_BENCHMARK_MAIN(PrintComparison)
