/// F1 — Figure 1: "The dangers of extrapolation". A trend+AR(1) model is
/// fit to the synthetic housing index through 2006 and extrapolated to
/// 2011; the table shows the forecast diverging from the collapsing truth.
/// google-benchmark section times the model fit itself.

#include <cmath>
#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include "util/check.h"

#include "timeseries/forecast.h"
#include "timeseries/timeseries.h"

namespace {

using mde::timeseries::ForecastRmse;
using mde::timeseries::SyntheticHousingIndex;
using mde::timeseries::TimeSeries;
using mde::timeseries::TrendAr1Model;

void PrintFigure1() {
  std::printf("=== F1 / Figure 1: extrapolation across a regime break ===\n");
  TimeSeries truth = SyntheticHousingIndex(1970, 2011, 2006, 7);
  TimeSeries log_history(1);
  for (size_t i = 0; i < truth.size(); ++i) {
    if (truth.time(i) <= 2006) {
      MDE_CHECK(
          log_history.Append(truth.time(i), std::log(truth.value(i))).ok());
    }
  }
  auto model = TrendAr1Model::Fit(log_history, /*quadratic=*/true).value();

  std::printf("%6s %12s %12s %10s\n", "year", "truth", "forecast",
              "error%");
  std::vector<double> pred_future, truth_future;
  for (size_t i = 0; i < truth.size(); ++i) {
    const double year = truth.time(i);
    if (year < 2000) continue;
    const double forecast = std::exp(model.Forecast({year})[0]);
    const double err = 100.0 * (forecast - truth.value(i)) / truth.value(i);
    std::printf("%6.0f %12.1f %12.1f %9.1f%%\n", year, truth.value(i),
                forecast, err);
    if (year > 2006) {
      pred_future.push_back(forecast);
      truth_future.push_back(truth.value(i));
    }
  }
  const double rmse = ForecastRmse(pred_future, truth_future);
  std::printf("\npost-2006 forecast RMSE: %.1f index points (truth 2011 "
              "level: %.1f)\n",
              rmse, truth_future.back());
  std::printf("paper's point: the in-sample fit is excellent, yet the "
              "extrapolation fails\nspectacularly because the model has no "
              "knowledge of the mechanism change.\n\n");
}

void BM_FitTrendAr1(benchmark::State& state) {
  TimeSeries truth = SyntheticHousingIndex(1970, 2011, 2006, 7);
  TimeSeries history(1);
  for (size_t i = 0; i < truth.size(); ++i) {
    if (truth.time(i) <= 2006) {
      MDE_CHECK(history.Append(truth.time(i), std::log(truth.value(i))).ok());
    }
  }
  for (auto _ : state) {
    auto model = TrendAr1Model::Fit(history, true);
    benchmark::DoNotOptimize(model);
  }
}
BENCHMARK(BM_FitTrendAr1);

}  // namespace

MDE_BENCHMARK_MAIN(PrintFigure1)
