#ifndef MDE_SMC_PARTICLE_FILTER_H_
#define MDE_SMC_PARTICLE_FILTER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/recovery.h"
#include "ckpt/snapshot.h"
#include "smc/resample.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace mde::smc {

/// State vector of a particle; observations are also plain vectors.
using State = std::vector<double>;
using Observation = std::vector<double>;

/// Hidden Markov (state-space) model interface for the particle filter of
/// Section 3.2 / Algorithm 2. Implementations provide the proposal q_n, the
/// observation density p(y_n | x_n), and the (log) transition/proposal
/// density ratio needed for the incremental weight
///   alpha_n = p(y|x) p(x|x_prev) / q(x | y, x_prev).
/// A bootstrap filter (proposal = transition) returns 0 from the ratio
/// hooks.
class StateSpaceModel {
 public:
  virtual ~StateSpaceModel() = default;

  /// Samples x_1 ~ q_1(x_1 | y_1).
  virtual State SampleInitial(const Observation& y1, Rng& rng) const = 0;

  /// Samples x_n ~ q_n(x_n | y_n, x_prev).
  virtual State SampleProposal(const Observation& y, const State& x_prev,
                               Rng& rng) const = 0;

  /// log p(y_n | x_n).
  virtual double LogObservation(const Observation& y,
                                const State& x) const = 0;

  /// log [ p_1(x_1) / q_1(x_1 | y_1) ]; 0 when q_1 = p_1 (bootstrap).
  virtual double LogInitialRatio(const Observation& /*y1*/,
                                 const State& /*x1*/) const {
    return 0.0;
  }

  /// log [ p_n(x_n | x_prev) / q_n(x_n | y_n, x_prev) ]; 0 for bootstrap.
  virtual double LogTransitionRatio(const Observation& /*y*/,
                                    const State& /*x*/,
                                    const State& /*x_prev*/) const {
    return 0.0;
  }
};

/// Options for the filter.
struct ParticleFilterOptions {
  size_t num_particles = 500;
  ResampleMethod resample = ResampleMethod::kSystematic;
  /// Resample only when ESS / N drops below this fraction (1.0 = resample
  /// every step as in Algorithm 2; 0.0 = plain SIS, no resampling —
  /// exhibits the weight-collapse pathology the paper describes).
  double ess_threshold = 1.0;
  uint64_t seed = 1234;
  /// Executor for the propagate/weight loop (the model hooks must then be
  /// safe to call concurrently); nullptr runs serially. Each (step,
  /// particle) pair draws from its own RNG substream, so the filter output
  /// is identical with and without a pool, for any thread count.
  /// Resampling stays serial on the filter's own stream. Not owned.
  ThreadPool* pool = nullptr;
};

/// Per-step diagnostics.
struct FilterStepStats {
  double ess = 0.0;
  bool resampled = false;
  /// log of the incremental marginal-likelihood estimate p(y_n | y_1:n-1).
  double log_likelihood_increment = 0.0;
};

/// Sequential importance sampling with resampling, specialized to hidden
/// Markov models (Algorithm 2 of the paper).
class ParticleFilter {
 public:
  ParticleFilter(const StateSpaceModel& model,
                 const ParticleFilterOptions& options);

  /// Step 1-4 of Algorithm 2 (initial sample, weight, resample).
  Status Initialize(const Observation& y1);

  /// Steps 6-11 for one more observation.
  Status Step(const Observation& y);

  const std::vector<State>& particles() const { return particles_; }
  const std::vector<double>& weights() const { return weights_; }
  const std::vector<FilterStepStats>& step_stats() const { return stats_; }

  /// Weighted posterior mean of the state.
  State MeanState() const;

  /// Total log marginal likelihood of the observations so far.
  double TotalLogLikelihood() const;

  /// Standalone snapshot of the filter state (particles, normalized
  /// weights, per-step stats, step cursor, resampling-RNG position).
  /// Sampling RNGs are per-(step, particle) substreams and need no
  /// capture, so a restored filter continues bit-identically at any pool
  /// width.
  Result<std::string> SaveSnapshot() const;
  Status RestoreSnapshot(const std::string& snapshot);

  /// Section-level (de)serialization, for embedding the filter state in a
  /// larger engine snapshot (FilterRun, the wildfire driver). RestoreState
  /// does not call ExpectEnd; the caller owns the section.
  void SaveState(ckpt::SectionWriter* s) const;
  Status RestoreState(ckpt::SectionReader* s);

 private:
  Status WeighAndMaybeResample(const std::vector<double>& log_weights);
  /// Private substream for particle `i` at step `step` (0 = initial).
  Rng ParticleRng(size_t step, size_t i) const;
  /// Runs fn(chunk, begin, end) over the particle range — on options_.pool
  /// when set, serially otherwise.
  void RunParticleChunks(
      size_t n,
      const std::function<void(size_t, size_t, size_t)>& fn) const;

  const StateSpaceModel& model_;
  /// Attribution fingerprint: (num_particles, seed), so every run of the
  /// same filter configuration shares one attribution row.
  uint64_t fingerprint_ = 0;
  ParticleFilterOptions options_;
  Rng rng_;  // resampling only; sampling uses per-particle substreams
  std::vector<State> particles_;
  std::vector<double> weights_;  // normalized
  std::vector<FilterStepStats> stats_;
  size_t step_count_ = 0;
  bool initialized_ = false;
};

/// Resumable filtering of a fixed observation sequence: one StepOnce() per
/// observation (the first initializes the filter). Snapshots capture the
/// observation cursor plus the full filter state, so kill-at-step-k +
/// restore finishes bit-identically to an uninterrupted run. Fault point:
/// "smc.step". The observation sequence itself is immutable input and is
/// not serialized.
class FilterRun : public ckpt::Checkpointable {
 public:
  FilterRun(const StateSpaceModel& model,
            std::vector<Observation> observations,
            const ParticleFilterOptions& options);

  std::string engine_name() const override { return "particle_filter"; }
  bool Done() const override { return next_obs_ >= observations_.size(); }
  Status StepOnce() override;
  Result<std::string> Save() const override;
  Status Restore(const std::string& snapshot) override;

  size_t next_observation() const { return next_obs_; }
  const ParticleFilter& filter() const { return filter_; }

 private:
  std::vector<Observation> observations_;
  ParticleFilter filter_;
  size_t next_obs_ = 0;
};

/// Gaussian / Laplace kernel density estimator (used to approximate the
/// transition and proposal densities in the sensor-aware wildfire proposal,
/// Section 3.2): f_hat(x) = (Mh)^-1 sum K((x - x_i)/h).
class KernelDensity {
 public:
  enum class Kernel { kGaussian, kLaplace };

  /// `bandwidth` <= 0 selects Silverman's rule of thumb.
  KernelDensity(std::vector<double> samples, double bandwidth,
                Kernel kernel = Kernel::kGaussian);

  double Density(double x) const;
  double LogDensity(double x) const;
  double bandwidth() const { return h_; }

  static double SilvermanBandwidth(const std::vector<double>& samples);

 private:
  std::vector<double> samples_;
  double h_;
  Kernel kernel_;
};

}  // namespace mde::smc

#endif  // MDE_SMC_PARTICLE_FILTER_H_
