#ifndef MDE_SMC_IMPORTANCE_H_
#define MDE_SMC_IMPORTANCE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace mde::smc {

/// Static importance sampling (Section 3.2 preliminaries): to approximate a
/// distribution pi = gamma / Z that is hard to sample, draw from a proposal
/// q and correct with weights w = gamma / q. Estimates both Z-hat and the
/// self-normalized expectation of `g`.
struct ImportanceResult {
  /// Z-hat = (1/N) sum w(X_i).
  double normalizing_constant = 0.0;
  /// Self-normalized estimate of E_pi[g].
  double expectation = 0.0;
  /// Effective sample size of the normalized weights.
  double ess = 0.0;
};

Result<ImportanceResult> ImportanceSample(
    const std::function<double(double)>& log_gamma,
    const std::function<double(Rng&)>& sample_q,
    const std::function<double(double)>& log_q,
    const std::function<double(double)>& g, size_t n, uint64_t seed);

/// Sequential importance sampling over a growing product target (no
/// resampling): demonstrates the exponential weight degeneracy that
/// motivates SIR. Targets gamma_n(x_1:n) = prod_k f(x_k) with Markov
/// proposal q(x_k | x_{k-1}); returns the ESS trajectory over n steps.
struct SisTrace {
  std::vector<double> ess_per_step;
  /// max normalized weight at the final step (near 1.0 = collapse).
  double final_max_weight = 0.0;
};

Result<SisTrace> SisEssTrace(
    const std::function<double(double)>& log_f,
    const std::function<double(double, Rng&)>& sample_q,
    const std::function<double(double, double)>& log_q, size_t num_particles,
    size_t steps, uint64_t seed);

}  // namespace mde::smc

#endif  // MDE_SMC_IMPORTANCE_H_
