#include "smc/particle_filter.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "ckpt/fault.h"
#include "obs/context.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/stats.h"

namespace mde::smc {

ParticleFilter::ParticleFilter(const StateSpaceModel& model,
                               const ParticleFilterOptions& options)
    : model_(model), options_(options), rng_(options.seed) {
  MDE_CHECK_GT(options.num_particles, 0u);
#ifndef MDE_OBS_DISABLED
  fingerprint_ = obs::FingerprintMix(
      obs::FingerprintMix(obs::FingerprintString("smc.filter"),
                          options.num_particles),
      options.seed);
#endif
}

Rng ParticleFilter::ParticleRng(size_t step, size_t i) const {
  // SplitMix64-style mixing gives every (step, particle) pair a private
  // substream, so the propagate/weight loop parallelizes over particles
  // with output independent of thread count (and of pool presence).
  return Rng(options_.seed ^ (0x9e3779b97f4a7c15ULL + i * 2654435761ULL +
                              step * 0x100000001b3ULL));
}

void ParticleFilter::RunParticleChunks(
    size_t n, const std::function<void(size_t, size_t, size_t)>& fn) const {
  if (options_.pool != nullptr) {
    options_.pool->ParallelForChunks(n, /*grain=*/0, fn);
  } else {
    fn(0, 0, n);
  }
}

Status ParticleFilter::Initialize(const Observation& y1) {
  // Attribution root for the initial sweep; the chunk tasks submitted by
  // RunParticleChunks inherit this context across steals.
  MDE_OBS_QUERY_SCOPE("smc.filter", fingerprint_);
  const size_t n = options_.num_particles;
  particles_.assign(n, State{});
  std::vector<double> log_w(n);
  step_count_ = 0;
  RunParticleChunks(n, [&](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      Rng rng = ParticleRng(0, i);
      particles_[i] = model_.SampleInitial(y1, rng);
      log_w[i] = model_.LogObservation(y1, particles_[i]) +
                 model_.LogInitialRatio(y1, particles_[i]);
    }
  });
  initialized_ = true;
  return WeighAndMaybeResample(log_w);
}

Status ParticleFilter::Step(const Observation& y) {
  MDE_OBS_QUERY_SCOPE("smc.filter", fingerprint_);
  MDE_TRACE_SPAN("smc.pf_step");
  if (!initialized_) {
    return Status::FailedPrecondition("call Initialize first");
  }
  const size_t n = options_.num_particles;
  ++step_count_;
  std::vector<State> next(n);
  std::vector<double> log_w(n);
  RunParticleChunks(n, [&](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      Rng rng = ParticleRng(step_count_, i);
      State x = model_.SampleProposal(y, particles_[i], rng);
      log_w[i] = std::log(std::max(weights_[i], 1e-300)) +
                 model_.LogObservation(y, x) +
                 model_.LogTransitionRatio(y, x, particles_[i]);
      next[i] = std::move(x);
    }
  });
  particles_ = std::move(next);
  return WeighAndMaybeResample(log_w);
}

Status ParticleFilter::WeighAndMaybeResample(
    const std::vector<double>& log_weights) {
  const size_t n = options_.num_particles;
  // Marginal-likelihood increment: log mean of unnormalized weights
  // relative to the previous normalized weights.
  const double mx =
      *std::max_element(log_weights.begin(), log_weights.end());
  FilterStepStats stats;
  if (!std::isfinite(mx)) {
    return Status::NumericError("particle filter weight collapse");
  }
  double sum = 0.0;
  for (double lw : log_weights) sum += std::exp(lw - mx);
  stats.log_likelihood_increment =
      mx + std::log(sum);  // note: relative to prior normalized weights
  MDE_ASSIGN_OR_RETURN(weights_, NormalizedFromLog(log_weights));
  stats.ess = EffectiveSampleSize(weights_);
  MDE_OBS_COUNT("smc.steps", 1);
  MDE_OBS_GAUGE_SET("smc.ess", stats.ess);
  if (stats.ess <
      options_.ess_threshold * static_cast<double>(n) + 1e-12) {
    MDE_TRACE_SPAN("smc.resample");
    MDE_OBS_COUNT("smc.resamples", 1);
    MDE_OBS_COUNT("smc.resampled_particles", n);
    const std::vector<size_t> idx =
        ResampleIndices(weights_, n, options_.resample, rng_);
    std::vector<State> resampled;
    resampled.reserve(n);
    for (size_t a : idx) resampled.push_back(particles_[a]);
    particles_ = std::move(resampled);
    weights_.assign(n, 1.0 / static_cast<double>(n));
    stats.resampled = true;
  }
  stats_.push_back(stats);
  return Status::OK();
}

State ParticleFilter::MeanState() const {
  MDE_CHECK(!particles_.empty());
  State mean(particles_[0].size(), 0.0);
  for (size_t i = 0; i < particles_.size(); ++i) {
    for (size_t k = 0; k < mean.size(); ++k) {
      mean[k] += weights_[i] * particles_[i][k];
    }
  }
  return mean;
}

double ParticleFilter::TotalLogLikelihood() const {
  double total = 0.0;
  for (const FilterStepStats& s : stats_) {
    total += s.log_likelihood_increment;
  }
  return total;
}

void ParticleFilter::SaveState(ckpt::SectionWriter* s) const {
  s->PutBool(initialized_);
  s->PutU64(step_count_);
  s->PutRngState(rng_.state());
  s->PutU64(particles_.size());
  for (const State& p : particles_) s->PutDoubleVec(p);
  s->PutDoubleVec(weights_);
  s->PutU64(stats_.size());
  for (const FilterStepStats& st : stats_) {
    s->PutDouble(st.ess);
    s->PutBool(st.resampled);
    s->PutDouble(st.log_likelihood_increment);
  }
}

Status ParticleFilter::RestoreState(ckpt::SectionReader* s) {
  const bool initialized = s->Bool();
  const uint64_t step_count = s->U64();
  const Rng::State rng_state = s->RngState();
  const uint64_t np = s->U64();
  std::vector<State> particles;
  particles.reserve(np);
  for (uint64_t i = 0; i < np && s->status().ok(); ++i) {
    particles.push_back(s->DoubleVec());
  }
  std::vector<double> weights = s->DoubleVec();
  const uint64_t ns = s->U64();
  std::vector<FilterStepStats> stats;
  stats.reserve(ns);
  for (uint64_t i = 0; i < ns && s->status().ok(); ++i) {
    FilterStepStats st;
    st.ess = s->Double();
    st.resampled = s->Bool();
    st.log_likelihood_increment = s->Double();
    stats.push_back(st);
  }
  MDE_RETURN_NOT_OK(s->status());
  if (initialized && (particles.size() != options_.num_particles ||
                      weights.size() != options_.num_particles)) {
    return Status::InvalidArgument(
        "particle-filter checkpoint does not match num_particles");
  }
  initialized_ = initialized;
  step_count_ = step_count;
  rng_.set_state(rng_state);
  particles_ = std::move(particles);
  weights_ = std::move(weights);
  stats_ = std::move(stats);
  return Status::OK();
}

Result<std::string> ParticleFilter::SaveSnapshot() const {
  ckpt::SnapshotWriter snap("particle_filter");
  SaveState(snap.AddSection("filter"));
  return snap.Finish();
}

Status ParticleFilter::RestoreSnapshot(const std::string& snapshot) {
  MDE_ASSIGN_OR_RETURN(ckpt::SnapshotReader snap,
                       ckpt::SnapshotReader::Parse(snapshot));
  if (snap.engine() != "particle_filter") {
    return Status::InvalidArgument("checkpoint is for engine '" +
                                   snap.engine() + "', not particle_filter");
  }
  MDE_ASSIGN_OR_RETURN(ckpt::SectionReader s, snap.section("filter"));
  MDE_RETURN_NOT_OK(RestoreState(&s));
  return s.ExpectEnd();
}

FilterRun::FilterRun(const StateSpaceModel& model,
                     std::vector<Observation> observations,
                     const ParticleFilterOptions& options)
    : observations_(std::move(observations)), filter_(model, options) {}

Status FilterRun::StepOnce() {
  if (Done()) {
    return Status::FailedPrecondition("particle filter: already finished");
  }
  // Fault point before the filter mutates: restore replays this
  // observation exactly.
  MDE_FAULT_POINT("smc.step");
  const size_t i = next_obs_;
  if (i == 0) {
    MDE_RETURN_NOT_OK(filter_.Initialize(observations_[0]));
  } else {
    MDE_RETURN_NOT_OK(filter_.Step(observations_[i]));
  }
  ++next_obs_;
  return Status::OK();
}

Result<std::string> FilterRun::Save() const {
  ckpt::SnapshotWriter snap(engine_name());
  ckpt::SectionWriter* r = snap.AddSection("run");
  r->PutU64(next_obs_);
  r->PutU64(observations_.size());
  filter_.SaveState(snap.AddSection("filter"));
  return snap.Finish();
}

Status FilterRun::Restore(const std::string& snapshot) {
  MDE_ASSIGN_OR_RETURN(ckpt::SnapshotReader snap,
                       ckpt::SnapshotReader::Parse(snapshot));
  if (snap.engine() != engine_name()) {
    return Status::InvalidArgument("checkpoint is for engine '" +
                                   snap.engine() + "', not particle_filter");
  }
  MDE_ASSIGN_OR_RETURN(ckpt::SectionReader r, snap.section("run"));
  const uint64_t next_obs = r.U64();
  const uint64_t total_obs = r.U64();
  MDE_RETURN_NOT_OK(r.ExpectEnd());
  if (total_obs != observations_.size() ||
      next_obs > observations_.size()) {
    return Status::InvalidArgument(
        "particle-filter checkpoint is for a different observation "
        "sequence");
  }
  MDE_ASSIGN_OR_RETURN(ckpt::SectionReader f, snap.section("filter"));
  MDE_RETURN_NOT_OK(filter_.RestoreState(&f));
  MDE_RETURN_NOT_OK(f.ExpectEnd());
  next_obs_ = next_obs;
  return Status::OK();
}

KernelDensity::KernelDensity(std::vector<double> samples, double bandwidth,
                             Kernel kernel)
    : samples_(std::move(samples)), kernel_(kernel) {
  MDE_CHECK(!samples_.empty());
  h_ = bandwidth > 0.0 ? bandwidth : SilvermanBandwidth(samples_);
  if (h_ <= 0.0) h_ = 1e-3;  // degenerate (constant) samples
}

double KernelDensity::Density(double x) const {
  const double m = static_cast<double>(samples_.size());
  double total = 0.0;
  for (double xi : samples_) {
    const double u = (x - xi) / h_;
    if (kernel_ == Kernel::kGaussian) {
      total += std::exp(-0.5 * u * u) / std::sqrt(2.0 * M_PI);
    } else {
      total += 0.5 * std::exp(-std::fabs(u));
    }
  }
  return total / (m * h_);
}

double KernelDensity::LogDensity(double x) const {
  return std::log(std::max(Density(x), 1e-300));
}

double KernelDensity::SilvermanBandwidth(const std::vector<double>& samples) {
  const double sd = StdDev(samples);
  const double n = static_cast<double>(samples.size());
  return 1.06 * sd * std::pow(n, -0.2);
}

}  // namespace mde::smc
