#include "smc/particle_filter.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/stats.h"

namespace mde::smc {

ParticleFilter::ParticleFilter(const StateSpaceModel& model,
                               const ParticleFilterOptions& options)
    : model_(model), options_(options), rng_(options.seed) {
  MDE_CHECK_GT(options.num_particles, 0u);
}

Rng ParticleFilter::ParticleRng(size_t step, size_t i) const {
  // SplitMix64-style mixing gives every (step, particle) pair a private
  // substream, so the propagate/weight loop parallelizes over particles
  // with output independent of thread count (and of pool presence).
  return Rng(options_.seed ^ (0x9e3779b97f4a7c15ULL + i * 2654435761ULL +
                              step * 0x100000001b3ULL));
}

void ParticleFilter::RunParticleChunks(
    size_t n, const std::function<void(size_t, size_t, size_t)>& fn) const {
  if (options_.pool != nullptr) {
    options_.pool->ParallelForChunks(n, /*grain=*/0, fn);
  } else {
    fn(0, 0, n);
  }
}

Status ParticleFilter::Initialize(const Observation& y1) {
  const size_t n = options_.num_particles;
  particles_.assign(n, State{});
  std::vector<double> log_w(n);
  step_count_ = 0;
  RunParticleChunks(n, [&](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      Rng rng = ParticleRng(0, i);
      particles_[i] = model_.SampleInitial(y1, rng);
      log_w[i] = model_.LogObservation(y1, particles_[i]) +
                 model_.LogInitialRatio(y1, particles_[i]);
    }
  });
  initialized_ = true;
  return WeighAndMaybeResample(log_w);
}

Status ParticleFilter::Step(const Observation& y) {
  MDE_TRACE_SPAN("smc.pf_step");
  if (!initialized_) {
    return Status::FailedPrecondition("call Initialize first");
  }
  const size_t n = options_.num_particles;
  ++step_count_;
  std::vector<State> next(n);
  std::vector<double> log_w(n);
  RunParticleChunks(n, [&](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      Rng rng = ParticleRng(step_count_, i);
      State x = model_.SampleProposal(y, particles_[i], rng);
      log_w[i] = std::log(std::max(weights_[i], 1e-300)) +
                 model_.LogObservation(y, x) +
                 model_.LogTransitionRatio(y, x, particles_[i]);
      next[i] = std::move(x);
    }
  });
  particles_ = std::move(next);
  return WeighAndMaybeResample(log_w);
}

Status ParticleFilter::WeighAndMaybeResample(
    const std::vector<double>& log_weights) {
  const size_t n = options_.num_particles;
  // Marginal-likelihood increment: log mean of unnormalized weights
  // relative to the previous normalized weights.
  const double mx =
      *std::max_element(log_weights.begin(), log_weights.end());
  FilterStepStats stats;
  if (!std::isfinite(mx)) {
    return Status::NumericError("particle filter weight collapse");
  }
  double sum = 0.0;
  for (double lw : log_weights) sum += std::exp(lw - mx);
  stats.log_likelihood_increment =
      mx + std::log(sum);  // note: relative to prior normalized weights
  MDE_ASSIGN_OR_RETURN(weights_, NormalizedFromLog(log_weights));
  stats.ess = EffectiveSampleSize(weights_);
  MDE_OBS_COUNT("smc.steps", 1);
  MDE_OBS_GAUGE_SET("smc.ess", stats.ess);
  if (stats.ess <
      options_.ess_threshold * static_cast<double>(n) + 1e-12) {
    MDE_TRACE_SPAN("smc.resample");
    MDE_OBS_COUNT("smc.resamples", 1);
    MDE_OBS_COUNT("smc.resampled_particles", n);
    const std::vector<size_t> idx =
        ResampleIndices(weights_, n, options_.resample, rng_);
    std::vector<State> resampled;
    resampled.reserve(n);
    for (size_t a : idx) resampled.push_back(particles_[a]);
    particles_ = std::move(resampled);
    weights_.assign(n, 1.0 / static_cast<double>(n));
    stats.resampled = true;
  }
  stats_.push_back(stats);
  return Status::OK();
}

State ParticleFilter::MeanState() const {
  MDE_CHECK(!particles_.empty());
  State mean(particles_[0].size(), 0.0);
  for (size_t i = 0; i < particles_.size(); ++i) {
    for (size_t k = 0; k < mean.size(); ++k) {
      mean[k] += weights_[i] * particles_[i][k];
    }
  }
  return mean;
}

double ParticleFilter::TotalLogLikelihood() const {
  double total = 0.0;
  for (const FilterStepStats& s : stats_) {
    total += s.log_likelihood_increment;
  }
  return total;
}

KernelDensity::KernelDensity(std::vector<double> samples, double bandwidth,
                             Kernel kernel)
    : samples_(std::move(samples)), kernel_(kernel) {
  MDE_CHECK(!samples_.empty());
  h_ = bandwidth > 0.0 ? bandwidth : SilvermanBandwidth(samples_);
  if (h_ <= 0.0) h_ = 1e-3;  // degenerate (constant) samples
}

double KernelDensity::Density(double x) const {
  const double m = static_cast<double>(samples_.size());
  double total = 0.0;
  for (double xi : samples_) {
    const double u = (x - xi) / h_;
    if (kernel_ == Kernel::kGaussian) {
      total += std::exp(-0.5 * u * u) / std::sqrt(2.0 * M_PI);
    } else {
      total += 0.5 * std::exp(-std::fabs(u));
    }
  }
  return total / (m * h_);
}

double KernelDensity::LogDensity(double x) const {
  return std::log(std::max(Density(x), 1e-300));
}

double KernelDensity::SilvermanBandwidth(const std::vector<double>& samples) {
  const double sd = StdDev(samples);
  const double n = static_cast<double>(samples.size());
  return 1.06 * sd * std::pow(n, -0.2);
}

}  // namespace mde::smc
