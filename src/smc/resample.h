#ifndef MDE_SMC_RESAMPLE_H_
#define MDE_SMC_RESAMPLE_H_

#include <cstddef>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace mde::smc {

/// Normalizes weights in place to sum to 1; errors if the sum is zero or
/// non-finite (total weight collapse).
Status NormalizeWeights(std::vector<double>* weights);

/// Effective sample size 1 / sum(W_i^2) of normalized weights — the
/// standard diagnostic for weight degeneracy in SIS.
double EffectiveSampleSize(const std::vector<double>& normalized_weights);

/// Resampling schemes for the SIR step.
enum class ResampleMethod {
  /// N independent draws from the categorical distribution.
  kMultinomial,
  /// Single uniform offset, stratified comb — lower variance, O(N).
  kSystematic,
};

/// Draws `n` ancestor indices according to the normalized weights.
std::vector<size_t> ResampleIndices(const std::vector<double>& normalized_weights,
                                    size_t n, ResampleMethod method, Rng& rng);

/// Converts log-weights to normalized weights with the max-subtraction
/// trick (stable for very small observation densities). Errors on total
/// collapse.
Result<std::vector<double>> NormalizedFromLog(
    const std::vector<double>& log_weights);

}  // namespace mde::smc

#endif  // MDE_SMC_RESAMPLE_H_
