#include "smc/importance.h"

#include <algorithm>
#include <cmath>

#include "smc/resample.h"

namespace mde::smc {

Result<ImportanceResult> ImportanceSample(
    const std::function<double(double)>& log_gamma,
    const std::function<double(Rng&)>& sample_q,
    const std::function<double(double)>& log_q,
    const std::function<double(double)>& g, size_t n, uint64_t seed) {
  if (n == 0) return Status::InvalidArgument("n must be positive");
  Rng rng(seed);
  std::vector<double> xs(n), log_w(n);
  for (size_t i = 0; i < n; ++i) {
    xs[i] = sample_q(rng);
    log_w[i] = log_gamma(xs[i]) - log_q(xs[i]);
  }
  const double mx = *std::max_element(log_w.begin(), log_w.end());
  if (!std::isfinite(mx)) {
    return Status::NumericError("importance weights collapsed");
  }
  double sum_w = 0.0;
  for (double lw : log_w) sum_w += std::exp(lw - mx);
  ImportanceResult out;
  out.normalizing_constant =
      std::exp(mx) * sum_w / static_cast<double>(n);
  MDE_ASSIGN_OR_RETURN(std::vector<double> w, NormalizedFromLog(log_w));
  for (size_t i = 0; i < n; ++i) out.expectation += w[i] * g(xs[i]);
  out.ess = EffectiveSampleSize(w);
  return out;
}

Result<SisTrace> SisEssTrace(
    const std::function<double(double)>& log_f,
    const std::function<double(double, Rng&)>& sample_q,
    const std::function<double(double, double)>& log_q, size_t num_particles,
    size_t steps, uint64_t seed) {
  if (num_particles == 0 || steps == 0) {
    return Status::InvalidArgument("need particles and steps");
  }
  Rng rng(seed);
  std::vector<double> x(num_particles, 0.0);
  std::vector<double> log_w(num_particles, 0.0);
  SisTrace trace;
  for (size_t k = 0; k < steps; ++k) {
    for (size_t i = 0; i < num_particles; ++i) {
      const double xn = sample_q(x[i], rng);
      // Recursive weight update: w_n = w_{n-1} * f(x_n)/q(x_n | x_{n-1}).
      log_w[i] += log_f(xn) - log_q(x[i], xn);
      x[i] = xn;
    }
    MDE_ASSIGN_OR_RETURN(std::vector<double> w, NormalizedFromLog(log_w));
    trace.ess_per_step.push_back(EffectiveSampleSize(w));
    if (k == steps - 1) {
      trace.final_max_weight = *std::max_element(w.begin(), w.end());
    }
  }
  return trace;
}

}  // namespace mde::smc
