#include "smc/resample.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "util/check.h"

namespace mde::smc {

Status NormalizeWeights(std::vector<double>* weights) {
  // Compensated (Kahan) summation: with 1e6+ particles spanning extreme
  // magnitude ratios, naive accumulation loses the small weights entirely
  // and the normalized sum drifts from 1 by O(n) ulps — which is what made
  // the multinomial CDF overshoot 1.0 before its last entry.
  double sum = 0.0;
  double comp = 0.0;
  for (double w : *weights) {
    if (w < 0.0 || !std::isfinite(w)) {
      return Status::NumericError("negative or non-finite weight");
    }
    const double y = w - comp;
    const double t = sum + y;
    comp = (t - sum) - y;
    sum = t;
  }
  if (sum <= 0.0) return Status::NumericError("total weight collapse");
  for (double& w : *weights) w /= sum;
  return Status::OK();
}

double EffectiveSampleSize(const std::vector<double>& normalized_weights) {
  double ss = 0.0;
  for (double w : normalized_weights) ss += w * w;
  return ss > 0.0 ? 1.0 / ss : 0.0;
}

std::vector<size_t> ResampleIndices(
    const std::vector<double>& normalized_weights, size_t n,
    ResampleMethod method, Rng& rng) {
  const size_t m = normalized_weights.size();
  MDE_CHECK_GT(m, 0u);
  MDE_OBS_COUNT("smc.resample_draws", n);
  std::vector<size_t> out;
  out.reserve(n);
  if (method == ResampleMethod::kMultinomial) {
    // Inverse-CDF per draw. The running clamp keeps the CDF monotone even
    // when FP accumulation overshoots 1.0 before the last entry — forcing
    // only cdf[m-1] = 1.0 after a naive sum could leave cdf[m-2] > 1.0,
    // an unsorted range on which std::lower_bound is undefined.
    std::vector<double> cdf(m);
    double acc = 0.0;
    for (size_t i = 0; i < m; ++i) {
      acc += normalized_weights[i];
      cdf[i] = std::min(acc, 1.0);
    }
    cdf[m - 1] = 1.0;
    for (size_t k = 0; k < n; ++k) {
      const double u = rng.NextDouble();
      const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
      out.push_back(static_cast<size_t>(it - cdf.begin()));
    }
  } else {
    // Systematic: one uniform u ~ U[0, 1/n), comb at u + k/n. Only indices
    // that carry mass may be returned: when FP accumulation undershoots the
    // final targets, the scan runs off into a zero-weight tail, so clamping
    // to the last index would hand back a particle with weight 0. Track the
    // last positive-weight index seen and clamp to that instead.
    const double step = 1.0 / static_cast<double>(n);
    double u = rng.NextDouble() * step;
    size_t i = 0;
    // Skip any leading zero-weight particles (u may be exactly 0).
    while (i + 1 < m && normalized_weights[i] <= 0.0) ++i;
    size_t last_positive = i;
    double acc = normalized_weights[i];
    for (size_t k = 0; k < n; ++k) {
      const double target = u + static_cast<double>(k) * step;
      while (acc < target && i + 1 < m) {
        ++i;
        acc += normalized_weights[i];
        if (normalized_weights[i] > 0.0) last_positive = i;
      }
      out.push_back(normalized_weights[i] > 0.0 ? i : last_positive);
    }
  }
  return out;
}

Result<std::vector<double>> NormalizedFromLog(
    const std::vector<double>& log_weights) {
  if (log_weights.empty()) {
    return Status::InvalidArgument("no weights");
  }
  const double mx = *std::max_element(log_weights.begin(), log_weights.end());
  if (!std::isfinite(mx)) {
    return Status::NumericError("all log-weights are -inf (collapse)");
  }
  std::vector<double> w(log_weights.size());
  for (size_t i = 0; i < w.size(); ++i) w[i] = std::exp(log_weights[i] - mx);
  MDE_RETURN_NOT_OK(NormalizeWeights(&w));
  return w;
}

}  // namespace mde::smc
