#include "table/value.h"

#include <functional>

#include "util/check.h"

namespace mde::table {

const char* DataTypeName(DataType t) {
  switch (t) {
    case DataType::kNull:
      return "NULL";
    case DataType::kBool:
      return "BOOL";
    case DataType::kInt64:
      return "INT64";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "STRING";
  }
  return "?";
}

DataType Value::type() const {
  switch (v_.index()) {
    case 0:
      return DataType::kNull;
    case 1:
      return DataType::kBool;
    case 2:
      return DataType::kInt64;
    case 3:
      return DataType::kDouble;
    case 4:
      return DataType::kString;
  }
  return DataType::kNull;
}

bool Value::AsBool() const {
  MDE_CHECK_MSG(std::holds_alternative<bool>(v_), "Value is not bool");
  return std::get<bool>(v_);
}

int64_t Value::AsInt() const {
  MDE_CHECK_MSG(std::holds_alternative<int64_t>(v_), "Value is not int64");
  return std::get<int64_t>(v_);
}

double Value::AsDouble() const {
  if (std::holds_alternative<int64_t>(v_)) {
    return static_cast<double>(std::get<int64_t>(v_));
  }
  MDE_CHECK_MSG(std::holds_alternative<double>(v_), "Value is not numeric");
  return std::get<double>(v_);
}

const std::string& Value::AsString() const {
  MDE_CHECK_MSG(std::holds_alternative<std::string>(v_),
                "Value is not string");
  return std::get<std::string>(v_);
}

namespace {

bool IsNumeric(const Value& v) {
  return v.type() == DataType::kInt64 || v.type() == DataType::kDouble;
}

// Rank used for the cross-type total order.
int TypeRank(DataType t) {
  switch (t) {
    case DataType::kNull:
      return 0;
    case DataType::kBool:
      return 1;
    case DataType::kInt64:
    case DataType::kDouble:
      return 2;
    case DataType::kString:
      return 3;
  }
  return 4;
}

}  // namespace

bool Value::Equals(const Value& other) const {
  if (is_null() || other.is_null()) return false;
  if (IsNumeric(*this) && IsNumeric(other)) {
    return AsDouble() == other.AsDouble();
  }
  return v_ == other.v_;
}

bool Value::LessThan(const Value& other) const {
  const int ra = TypeRank(type());
  const int rb = TypeRank(other.type());
  if (ra != rb) return ra < rb;
  switch (type()) {
    case DataType::kNull:
      return false;
    case DataType::kBool:
      return !AsBool() && other.AsBool();
    case DataType::kInt64:
    case DataType::kDouble:
      return AsDouble() < other.AsDouble();
    case DataType::kString:
      return AsString() < other.AsString();
  }
  return false;
}

std::string Value::ToString() const {
  switch (type()) {
    case DataType::kNull:
      return "NULL";
    case DataType::kBool:
      return AsBool() ? "true" : "false";
    case DataType::kInt64:
      return std::to_string(AsInt());
    case DataType::kDouble:
      return std::to_string(AsDouble());
    case DataType::kString:
      return AsString();
  }
  return "?";
}

size_t Value::Hash() const {
  switch (type()) {
    case DataType::kNull:
      return 0x9b1f;
    case DataType::kBool:
      return AsBool() ? 0x51u : 0x52u;
    case DataType::kInt64:
    case DataType::kDouble:
      return std::hash<double>()(AsDouble());
    case DataType::kString:
      return std::hash<std::string>()(AsString());
  }
  return 0;
}

}  // namespace mde::table
