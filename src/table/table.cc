#include "table/table.h"

#include <sstream>

#include "util/check.h"

namespace mde::table {

Schema::Schema(std::vector<ColumnSpec> columns) : columns_(std::move(columns)) {
  for (size_t i = 0; i < columns_.size(); ++i) {
    for (size_t j = i + 1; j < columns_.size(); ++j) {
      MDE_CHECK_MSG(columns_[i].name != columns_[j].name,
                    "duplicate column name in schema");
    }
  }
}

Result<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return Status::NotFound("column not found: " + name);
}

bool Schema::Has(const std::string& name) const {
  return IndexOf(name).ok();
}

Schema Schema::Concat(const Schema& left, const Schema& right,
                      const std::string& right_prefix) {
  std::vector<ColumnSpec> cols = left.columns_;
  for (const auto& c : right.columns_) {
    std::string name = c.name;
    if (left.Has(name)) name = right_prefix + name;
    cols.push_back({std::move(name), c.type});
  }
  return Schema(std::move(cols));
}

bool Schema::operator==(const Schema& other) const {
  if (columns_.size() != other.columns_.size()) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name != other.columns_[i].name ||
        columns_[i].type != other.columns_[i].type) {
      return false;
    }
  }
  return true;
}

std::string Schema::ToString() const {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) os << ", ";
    os << columns_[i].name << " " << DataTypeName(columns_[i].type);
  }
  os << ")";
  return os.str();
}

Table::Table(Schema schema, std::vector<Row> rows)
    : schema_(std::move(schema)), rows_(std::move(rows)) {
  for (const Row& r : rows_) {
    MDE_CHECK_EQ(r.size(), schema_.num_columns());
  }
}

void Table::Append(Row row) {
  MDE_CHECK_EQ(row.size(), schema_.num_columns());
  rows_.push_back(std::move(row));
}

Result<Value> Table::At(size_t row, const std::string& column) const {
  MDE_CHECK_LT(row, rows_.size());
  MDE_ASSIGN_OR_RETURN(size_t idx, schema_.IndexOf(column));
  return rows_[row][idx];
}

void Table::Set(size_t row, size_t col, Value v) {
  MDE_CHECK_LT(row, rows_.size());
  MDE_CHECK_LT(col, schema_.num_columns());
  rows_[row][col] = std::move(v);
}

std::string Table::ToString(size_t max_rows) const {
  std::ostringstream os;
  os << schema_.ToString() << " [" << rows_.size() << " rows]\n";
  const size_t n = std::min(max_rows, rows_.size());
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < rows_[i].size(); ++j) {
      if (j > 0) os << " | ";
      os << rows_[i][j].ToString();
    }
    os << "\n";
  }
  if (n < rows_.size()) os << "... (" << rows_.size() - n << " more)\n";
  return os.str();
}

}  // namespace mde::table
