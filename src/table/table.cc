#include "table/table.h"

#include <atomic>
#include <sstream>

#include "obs/context.h"
#include "obs/metrics.h"
#include "table/columnar.h"
#include "util/check.h"

namespace mde::table {

uint64_t NextContentVersion() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

Schema::Schema(std::vector<ColumnSpec> columns) : columns_(std::move(columns)) {
  index_.reserve(columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) {
    const bool inserted = index_.emplace(columns_[i].name, i).second;
    MDE_CHECK_MSG(inserted, "duplicate column name in schema");
  }
}

Result<size_t> Schema::IndexOf(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) return Status::NotFound("column not found: " + name);
  return it->second;
}

bool Schema::Has(const std::string& name) const {
  return index_.count(name) > 0;
}

Schema Schema::Concat(const Schema& left, const Schema& right,
                      const std::string& right_prefix) {
  std::vector<ColumnSpec> cols = left.columns_;
  for (const auto& c : right.columns_) {
    std::string name = c.name;
    if (left.Has(name)) name = right_prefix + name;
    cols.push_back({std::move(name), c.type});
  }
  return Schema(std::move(cols));
}

bool Schema::operator==(const Schema& other) const {
  if (columns_.size() != other.columns_.size()) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name != other.columns_[i].name ||
        columns_[i].type != other.columns_[i].type) {
      return false;
    }
  }
  return true;
}

std::string Schema::ToString() const {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) os << ", ";
    os << columns_[i].name << " " << DataTypeName(columns_[i].type);
  }
  os << ")";
  return os.str();
}

Table::Table(Schema schema, std::vector<Row> rows)
    : schema_(std::move(schema)), rows_(std::move(rows)) {
  for (const Row& r : rows_) {
    MDE_CHECK_EQ(r.size(), schema_.num_columns());
  }
}

size_t Table::num_rows() const {
  return columnar_ != nullptr ? columnar_->num_rows() : rows_.size();
}

void Table::EnsureRows() const {
  if (columnar_ == nullptr || rows_.size() == columnar_->num_rows()) return;
  const size_t n = columnar_->num_rows();
  rows_.clear();
  rows_.reserve(n);
  for (size_t i = 0; i < n; ++i) rows_.push_back(columnar_->MaterializeRow(i));
}

const Row& Table::row(size_t i) const {
  EnsureRows();
  return rows_[i];
}

const std::vector<Row>& Table::rows() const {
  EnsureRows();
  return rows_;
}

void Table::Append(Row row) {
  MDE_CHECK_EQ(row.size(), schema_.num_columns());
  EnsureRows();
  columnar_.reset();
  stats_.reset();
  content_version_ = NextContentVersion();
  rows_.push_back(std::move(row));
}

void Table::Reserve(size_t n) {
  EnsureRows();
  rows_.reserve(n);
}

Result<Value> Table::At(size_t row, const std::string& column) const {
  MDE_CHECK_LT(row, num_rows());
  MDE_ASSIGN_OR_RETURN(size_t idx, schema_.IndexOf(column));
  if (columnar_ != nullptr && rows_.empty()) {
    return columnar_->col(idx).ValueAt(row);
  }
  EnsureRows();
  return rows_[row][idx];
}

void Table::Set(size_t row, size_t col, Value v) {
  MDE_CHECK_LT(row, num_rows());
  MDE_CHECK_LT(col, schema_.num_columns());
  EnsureRows();
  columnar_.reset();
  stats_.reset();
  content_version_ = NextContentVersion();
  rows_[row][col] = std::move(v);
}

Result<std::shared_ptr<const ColumnarTable>> Table::ToColumnar() const {
  if (columnar_ != nullptr) {
    // A reused cached conversion is work the active query did NOT pay for;
    // the attribution row records how often each query rode the cache.
    MDE_OBS_COUNT("table.columnar_cache_hits", 1);
    MDE_OBS_ATTR_ADD(cache_hits, 1);
    return columnar_;
  }
  std::vector<ColumnBuilder> builders;
  builders.reserve(schema_.num_columns());
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    builders.emplace_back(schema_.column(c).type);
    builders.back().Reserve(rows_.size());
  }
  for (const Row& r : rows_) {
    for (size_t c = 0; c < builders.size(); ++c) {
      if (!builders[c].AppendValue(r[c])) {
        return Status::FailedPrecondition(
            "cell type disagrees with declared column type for column " +
            schema_.column(c).name + "; staying on the row path");
      }
    }
  }
  std::vector<std::shared_ptr<const Column>> cols;
  cols.reserve(builders.size());
  for (auto& b : builders) cols.push_back(b.Finish());
  columnar_ = std::make_shared<const ColumnarTable>(schema_, std::move(cols),
                                                    rows_.size());
  return columnar_;
}

Table Table::FromColumnar(std::shared_ptr<const ColumnarTable> cols) {
  MDE_CHECK(cols != nullptr);
  Table t(cols->schema());
  // Tables wrapped from the same immutable blocks share one stamp, so
  // re-wrapping (SimSQL copies deterministic tables into every version)
  // keeps plan feedback applicable across the wraps.
  t.content_version_ = cols->content_version();
  t.columnar_ = std::move(cols);
  return t;
}

std::string Table::ToString(size_t max_rows) const {
  EnsureRows();
  std::ostringstream os;
  os << schema_.ToString() << " [" << rows_.size() << " rows]\n";
  const size_t n = std::min(max_rows, rows_.size());
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < rows_[i].size(); ++j) {
      if (j > 0) os << " | ";
      os << rows_[i][j].ToString();
    }
    os << "\n";
  }
  if (n < rows_.size()) os << "... (" << rows_.size() - n << " more)\n";
  return os.str();
}

}  // namespace mde::table
