#include "table/schema_mapping.h"

namespace mde::table {

Result<SchemaMapping> SchemaMapping::Compile(
    const Schema& source_schema, const Schema& target_schema,
    std::vector<ColumnMapping> mappings) {
  std::vector<CompiledColumn> compiled(target_schema.num_columns());
  std::vector<bool> mapped(target_schema.num_columns(), false);
  for (ColumnMapping& m : mappings) {
    MDE_ASSIGN_OR_RETURN(size_t t_idx, target_schema.IndexOf(m.target));
    if (mapped[t_idx]) {
      return Status::InvalidArgument("target column mapped twice: " +
                                     m.target);
    }
    mapped[t_idx] = true;
    CompiledColumn& c = compiled[t_idx];
    c.kind = m.kind;
    c.target_type = target_schema.column(t_idx).type;
    switch (m.kind) {
      case ColumnMapping::Kind::kCopy: {
        MDE_ASSIGN_OR_RETURN(c.source_index,
                             source_schema.IndexOf(m.source));
        if (source_schema.column(c.source_index).type != c.target_type) {
          return Status::InvalidArgument(
              "copy type mismatch for target column " + m.target +
              " (use kCast for numeric conversions)");
        }
        break;
      }
      case ColumnMapping::Kind::kCast: {
        MDE_ASSIGN_OR_RETURN(c.source_index,
                             source_schema.IndexOf(m.source));
        const DataType src = source_schema.column(c.source_index).type;
        const bool numeric_pair =
            (src == DataType::kInt64 || src == DataType::kDouble) &&
            (c.target_type == DataType::kInt64 ||
             c.target_type == DataType::kDouble);
        if (!numeric_pair) {
          return Status::InvalidArgument(
              "kCast supports numeric columns only: " + m.target);
        }
        break;
      }
      case ColumnMapping::Kind::kConstant: {
        if (m.constant.type() != c.target_type && !m.constant.is_null()) {
          return Status::InvalidArgument("constant type mismatch: " +
                                         m.target);
        }
        c.constant = std::move(m.constant);
        break;
      }
      case ColumnMapping::Kind::kComputed: {
        if (!m.compute) {
          return Status::InvalidArgument("kComputed requires an expression");
        }
        c.compute = std::move(m.compute);
        break;
      }
    }
  }
  for (size_t t = 0; t < target_schema.num_columns(); ++t) {
    if (!mapped[t]) {
      return Status::InvalidArgument("target column unmapped: " +
                                     target_schema.column(t).name);
    }
  }
  return SchemaMapping(source_schema, target_schema, std::move(compiled));
}

Result<Table> SchemaMapping::Apply(const Table& source) const {
  if (!(source.schema() == source_)) {
    return Status::InvalidArgument(
        "source table does not match the compiled source schema");
  }
  Table out(target_);
  out.Reserve(source.num_rows());
  for (const Row& row : source.rows()) {
    Row target_row;
    target_row.reserve(columns_.size());
    for (const CompiledColumn& c : columns_) {
      switch (c.kind) {
        case ColumnMapping::Kind::kCopy:
          target_row.push_back(row[c.source_index]);
          break;
        case ColumnMapping::Kind::kCast: {
          const Value& v = row[c.source_index];
          if (v.is_null()) {
            target_row.push_back(Value());
          } else if (c.target_type == DataType::kDouble) {
            target_row.push_back(Value(v.AsDouble()));
          } else {
            target_row.push_back(
                Value(static_cast<int64_t>(v.AsDouble())));
          }
          break;
        }
        case ColumnMapping::Kind::kConstant:
          target_row.push_back(c.constant);
          break;
        case ColumnMapping::Kind::kComputed: {
          Value v = c.compute(row);
          if (!v.is_null() && v.type() != c.target_type) {
            return Status::InvalidArgument(
                "computed expression produced the wrong type");
          }
          target_row.push_back(std::move(v));
          break;
        }
      }
    }
    out.Append(std::move(target_row));
  }
  return out;
}

}  // namespace mde::table
