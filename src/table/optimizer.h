#ifndef MDE_TABLE_OPTIMIZER_H_
#define MDE_TABLE_OPTIMIZER_H_

#include <cstddef>

#include "table/cost.h"
#include "table/plan.h"
#include "util/status.h"

namespace mde::table {

/// Knobs for CostBasedOptimize. OptimizePlan (plan.h) runs with defaults;
/// tests and benchmarks toggle individual passes to measure them in
/// isolation.
struct OptimizerOptions {
  /// Classical selection pushdown: filters sink below projections and
  /// joins to the deepest schema that can evaluate them; adjacent filters
  /// merge.
  bool push_selections = true;
  /// Cost-based join reordering over each maximal join cluster:
  /// exhaustive left-deep dynamic programming up to dp_max_relations
  /// relations, greedy chaining above. Only orders connected by join
  /// edges are considered (never introduces cross products), and the
  /// as-written output schema is restored with a zero-copy renaming
  /// projection when the new order changes which side the "r." duplicate
  /// prefix lands on.
  bool reorder_joins = true;
  /// Projection pushdown: under an explicit projection, narrow scans to
  /// the columns the rest of the plan actually consumes, so joins gather
  /// and materialize fewer blocks.
  bool push_projections = true;
  /// Reorder conjunctive filter predicates by estimated selectivity
  /// (most selective first), so later predicates scan shorter selection
  /// vectors.
  bool order_predicates = true;
  size_t dp_max_relations = 6;
  /// Join clusters larger than this are left as written (search space
  /// guard; greedy handles everything up to here).
  size_t max_relations = 16;
};

/// Cost-based plan optimization driven by the statistics catalog
/// (catalog.h) and cost model (cost.h). Returns a semantically equivalent
/// plan: same rows, same output schema (column names, types, and order),
/// with row order preserved except across join reorders (hash join output
/// order is an implementation detail; use order-insensitive comparison
/// when asserting on reordered plans). `OptimizePlan` in plan.h is this
/// entry point with default options.
Result<PlanPtr> CostBasedOptimize(const PlanPtr& plan,
                                  const OptimizerOptions& opts);

}  // namespace mde::table

#endif  // MDE_TABLE_OPTIMIZER_H_
