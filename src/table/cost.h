#ifndef MDE_TABLE_COST_H_
#define MDE_TABLE_COST_H_

#include <memory>
#include <string>
#include <unordered_map>

#include "table/catalog.h"
#include "table/plan.h"

namespace mde::table {

/// Canonical structural fingerprint of a plan (sub)tree, used as the key
/// for execution feedback. Canonicalizations so equivalent shapes share
/// feedback: scan fingerprints include the base-table row count (stale
/// actuals for a since-mutated table never apply), filter predicates are
/// order-insensitive, projections are transparent (they never change
/// cardinality), and joins are commutative.
std::string PlanFingerprint(const PlanPtr& plan);

/// Cardinality estimation and a coarse cost model over PlanNode trees.
///
/// Estimates consult the catalog's execution feedback first (actual row
/// counts observed by earlier profiled runs of the same subplan), then
/// fall back to textbook analytic estimates from per-column statistics:
/// equality selects 1/distinct, ranges interpolate the equi-width
/// histogram, equi-joins contribute 1/max(ndv_left, ndv_right) per key
/// pair. Costs charge each operator for the rows it touches, which is the
/// quantity the vectorized executor's wall time actually tracks.
///
/// A CostModel instance memoizes per-node results, so it is cheap to call
/// repeatedly during join-order search; make a fresh instance per
/// optimization pass (memos key on node identity).
class CostModel {
 public:
  explicit CostModel(Catalog* catalog = &Catalog::Global())
      : catalog_(catalog) {}

  /// Estimated output rows of `plan` (feedback-first). Always >= 0.
  double EstimateRows(const PlanPtr& plan) const;

  /// Estimated total work to execute `plan` (abstract row-touch units).
  double EstimateCost(const PlanPtr& plan) const;

  /// Estimated fraction of `input`'s rows that satisfy `pred`, in [0, 1].
  double PredicateSelectivity(const PlanPtr& input,
                              const PlanPredicate& pred) const;

  /// Statistics for the named output column of `plan`, traced through
  /// filters / projections / joins to the base-table column that feeds
  /// it. Returns nullptr when the column cannot be traced. The pointer
  /// lives as long as the base table's memoized stats (dropped on table
  /// mutation) — use it immediately, inside one optimization pass.
  const ColumnStats* FindColumnStats(const PlanPtr& plan,
                                     const std::string& name) const;

 private:
  Catalog* catalog_;
  mutable std::unordered_map<const PlanNode*, double> rows_memo_;
  mutable std::unordered_map<const PlanNode*, double> cost_memo_;
};

/// Fills stats->nodes[i].est_rows for every plan node (pre-order, the
/// same traversal both executors use). Call after execution but before
/// RecordActuals so the estimates reflect what the model believed going
/// in, not what this run just taught it.
void AnnotateEstimates(const PlanPtr& plan, const CostModel& model,
                       ExecutionStats* stats);

/// Folds the observed rows_out of every plan node back into the catalog,
/// keyed by fingerprint, and publishes opt.* metrics (estimation error,
/// feedback volume). The next estimate of the same subplan starts from
/// these actuals.
void RecordActuals(const PlanPtr& plan, const ExecutionStats& stats,
                   Catalog* catalog = &Catalog::Global());

}  // namespace mde::table

#endif  // MDE_TABLE_COST_H_
