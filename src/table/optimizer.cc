#include "table/optimizer.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "util/check.h"

namespace mde::table {

namespace {

/// Rebuilds a filter/projection node over a new child, preserving kind and
/// renames.
PlanPtr RebuildUnary(const PlanPtr& node, PlanPtr child) {
  if (node->kind() == PlanNode::Kind::kFilter) {
    return PlanNode::Filter(std::move(child), node->predicates());
  }
  if (node->aliases().empty()) {
    return PlanNode::Project(std::move(child), node->columns());
  }
  return PlanNode::ProjectAs(std::move(child), node->columns(),
                             node->aliases());
}

// ---------------------------------------------------------------------------
// Pass 1: selection pushdown (the original OptimizePlan rewrite).
// ---------------------------------------------------------------------------

/// Attempts to sink `preds` into `node`. Predicates that cannot sink are
/// returned in `left_over` to be applied above `node`.
Result<PlanPtr> SinkPredicates(const PlanPtr& node,
                               std::vector<PlanPredicate> preds,
                               std::vector<PlanPredicate>* left_over) {
  if (preds.empty()) return node;
  switch (node->kind()) {
    case PlanNode::Kind::kFilter: {
      // Merge into the existing filter, then recurse below it.
      std::vector<PlanPredicate> merged = node->predicates();
      merged.insert(merged.end(), preds.begin(), preds.end());
      std::vector<PlanPredicate> deeper_left_over;
      MDE_ASSIGN_OR_RETURN(
          PlanPtr child,
          SinkPredicates(node->child(), merged, &deeper_left_over));
      if (deeper_left_over.empty()) return child;
      return PlanNode::Filter(child, std::move(deeper_left_over));
    }
    case PlanNode::Kind::kScan: {
      // Deepest point: apply all predicates here.
      return PlanNode::Filter(node, std::move(preds));
    }
    case PlanNode::Kind::kProject: {
      // A predicate slides below the projection iff its column survives
      // it — the check is against the projection's OUTPUT, never the child
      // schema, or sinking would quietly legalize a predicate on a column
      // the projection dropped. Renaming projections map the output alias
      // back to its source.
      const auto& aliases = node->aliases();
      const auto& out_names = aliases.empty() ? node->columns() : aliases;
      std::vector<PlanPredicate> sinkable, stuck;
      for (auto& p : preds) {
        auto it = std::find(out_names.begin(), out_names.end(), p.column);
        if (it != out_names.end()) {
          p.column = node->columns()[it - out_names.begin()];
          sinkable.push_back(std::move(p));
        } else {
          stuck.push_back(std::move(p));
        }
      }
      // Columns removed by the projection cannot be referenced above it
      // either, so "stuck" predicates are errors; report them.
      if (!stuck.empty()) {
        return Status::InvalidArgument("predicate column not found: " +
                                       stuck[0].column);
      }
      std::vector<PlanPredicate> deeper;
      MDE_ASSIGN_OR_RETURN(PlanPtr child,
                           SinkPredicates(node->child(), sinkable, &deeper));
      if (!deeper.empty()) child = PlanNode::Filter(child, deeper);
      return RebuildUnary(node, std::move(child));
    }
    case PlanNode::Kind::kJoin: {
      MDE_ASSIGN_OR_RETURN(Schema ls, node->left()->OutputSchema());
      MDE_ASSIGN_OR_RETURN(Schema rs, node->right()->OutputSchema());
      std::vector<PlanPredicate> to_left, to_right;
      for (auto& p : preds) {
        if (ls.Has(p.column)) {
          to_left.push_back(std::move(p));
        } else if (rs.Has(p.column)) {
          // Unambiguous right-side column (possibly exposed as "r.x"
          // above the join, but referenced here by its base name).
          to_right.push_back(std::move(p));
        } else if (p.column.rfind("r.", 0) == 0 &&
                   rs.Has(p.column.substr(2))) {
          PlanPredicate stripped = std::move(p);
          stripped.column = stripped.column.substr(2);
          to_right.push_back(std::move(stripped));
        } else {
          left_over->push_back(std::move(p));
        }
      }
      std::vector<PlanPredicate> dummy_l, dummy_r;
      PlanPtr new_left = node->left();
      PlanPtr new_right = node->right();
      if (!to_left.empty()) {
        MDE_ASSIGN_OR_RETURN(new_left,
                             SinkPredicates(new_left, to_left, &dummy_l));
      }
      if (!to_right.empty()) {
        MDE_ASSIGN_OR_RETURN(new_right,
                             SinkPredicates(new_right, to_right, &dummy_r));
      }
      MDE_CHECK(dummy_l.empty() && dummy_r.empty());
      return PlanNode::Join(new_left, new_right, node->left_keys(),
                            node->right_keys());
    }
  }
  return Status::Internal("unknown plan node");
}

Result<PlanPtr> PushSelections(const PlanPtr& plan) {
  switch (plan->kind()) {
    case PlanNode::Kind::kScan:
      return plan;
    case PlanNode::Kind::kFilter: {
      MDE_ASSIGN_OR_RETURN(PlanPtr child, PushSelections(plan->child()));
      std::vector<PlanPredicate> left_over;
      MDE_ASSIGN_OR_RETURN(
          PlanPtr sunk,
          SinkPredicates(child, plan->predicates(), &left_over));
      if (left_over.empty()) return sunk;
      return PlanNode::Filter(sunk, std::move(left_over));
    }
    case PlanNode::Kind::kProject: {
      MDE_ASSIGN_OR_RETURN(PlanPtr child, PushSelections(plan->child()));
      return RebuildUnary(plan, std::move(child));
    }
    case PlanNode::Kind::kJoin: {
      MDE_ASSIGN_OR_RETURN(PlanPtr l, PushSelections(plan->left()));
      MDE_ASSIGN_OR_RETURN(PlanPtr r, PushSelections(plan->right()));
      return PlanNode::Join(l, r, plan->left_keys(), plan->right_keys());
    }
  }
  return Status::Internal("unknown plan node");
}

// ---------------------------------------------------------------------------
// Pass 2: join reordering.
//
// Each maximal cluster of adjacent kJoin nodes is flattened into its
// relations (the non-join subtrees underneath) and the equi-join edges
// connecting them, a left-deep order is searched (exhaustive DP up to
// dp_max_relations, greedy above) over connected extensions only, and the
// winner is rebuilt. Because Schema::Concat prefixes duplicate right-side
// names with "r.", a different order can change output names/positions;
// a ProjectAs wrapper restores the exact as-written schema, tracked via
// positional provenance (relation, column) through the cluster.
// ---------------------------------------------------------------------------

struct RelRef {
  size_t rel = 0;  // index into the cluster's relation list
  size_t col = 0;  // column index in that relation's output schema
  bool operator==(const RelRef& o) const {
    return rel == o.rel && col == o.col;
  }
};

struct JoinEdge {
  RelRef a, b;
};

struct SubTree {
  Schema schema;
  std::vector<RelRef> prov;  // output position -> source (relation, column)
};

/// Concat with the join renaming rule, refusing (instead of aborting)
/// when the combined names collide — e.g. the left side already exposes
/// "r.x" while the right side brings another "x".
std::optional<Schema> TryConcat(const Schema& left, const Schema& right) {
  std::unordered_set<std::string> names;
  std::vector<ColumnSpec> cols;
  cols.reserve(left.num_columns() + right.num_columns());
  for (const auto& c : left.columns()) {
    if (!names.insert(c.name).second) return std::nullopt;
    cols.push_back(c);
  }
  for (const auto& c : right.columns()) {
    std::string name = left.Has(c.name) ? "r." + c.name : c.name;
    if (!names.insert(name).second) return std::nullopt;
    cols.push_back({std::move(name), c.type});
  }
  return Schema(std::move(cols));
}

void CollectRelations(const PlanPtr& node, std::vector<PlanPtr>* rels) {
  if (node->kind() == PlanNode::Kind::kJoin) {
    CollectRelations(node->left(), rels);
    CollectRelations(node->right(), rels);
    return;
  }
  rels->push_back(node);
}

/// Resolves the original cluster tree bottom-up: per-subtree schema and
/// provenance, plus the join edges in relation/column coordinates.
/// `next_rel` walks the relation list in the same left-to-right order
/// CollectRelations produced.
Result<SubTree> ResolveCluster(const PlanPtr& node,
                               const std::vector<Schema>& rel_schemas,
                               size_t* next_rel,
                               std::vector<JoinEdge>* edges) {
  if (node->kind() != PlanNode::Kind::kJoin) {
    SubTree s;
    s.schema = rel_schemas[*next_rel];
    s.prov.reserve(s.schema.num_columns());
    for (size_t j = 0; j < s.schema.num_columns(); ++j) {
      s.prov.push_back({*next_rel, j});
    }
    ++*next_rel;
    return s;
  }
  MDE_ASSIGN_OR_RETURN(
      SubTree l, ResolveCluster(node->left(), rel_schemas, next_rel, edges));
  MDE_ASSIGN_OR_RETURN(
      SubTree r, ResolveCluster(node->right(), rel_schemas, next_rel, edges));
  if (node->left_keys().empty()) {
    return Status::InvalidArgument("join without keys");
  }
  for (size_t i = 0; i < node->left_keys().size(); ++i) {
    MDE_ASSIGN_OR_RETURN(size_t li, l.schema.IndexOf(node->left_keys()[i]));
    MDE_ASSIGN_OR_RETURN(size_t ri, r.schema.IndexOf(node->right_keys()[i]));
    edges->push_back({l.prov[li], r.prov[ri]});
  }
  auto combined = TryConcat(l.schema, r.schema);
  if (!combined.has_value()) {
    return Status::InvalidArgument("join output name collision");
  }
  SubTree out;
  out.schema = std::move(*combined);
  out.prov = std::move(l.prov);
  out.prov.insert(out.prov.end(), r.prov.begin(), r.prov.end());
  return out;
}

/// Rebuilds the original join structure over (possibly rewritten)
/// relations, preserving shape and keys.
PlanPtr RebuildCluster(const PlanPtr& node, const std::vector<PlanPtr>& rels,
                       size_t* next_rel) {
  if (node->kind() != PlanNode::Kind::kJoin) return rels[(*next_rel)++];
  PlanPtr l = RebuildCluster(node->left(), rels, next_rel);
  PlanPtr r = RebuildCluster(node->right(), rels, next_rel);
  return PlanNode::Join(std::move(l), std::move(r), node->left_keys(),
                        node->right_keys());
}

bool IsLeftDeep(const PlanPtr& node) {
  if (node->kind() != PlanNode::Kind::kJoin) return true;
  if (node->right()->kind() == PlanNode::Kind::kJoin) return false;
  return IsLeftDeep(node->left());
}

/// Shared cardinality/cost folding for a left-deep join sequence. The
/// formulas mirror CostModel: per-edge selectivity 1/max(ndv, ndv), hash
/// join cost = build(1.5 * right) + probe(left) + output.
class OrderSearch {
 public:
  OrderSearch(std::vector<double> rel_rows, std::vector<double> rel_cost,
              const std::vector<double>& edge_ndv_a,
              const std::vector<double>& edge_ndv_b,
              const std::vector<JoinEdge>& edges)
      : rows_(std::move(rel_rows)),
        cost_(std::move(rel_cost)),
        edges_(edges) {
    sel_.reserve(edges_.size());
    for (size_t e = 0; e < edges_.size(); ++e) {
      sel_.push_back(1.0 / std::max({edge_ndv_a[e], edge_ndv_b[e], 1.0}));
    }
  }

  size_t n() const { return rows_.size(); }

  /// Combined selectivity of all edges connecting `m` to the set in
  /// `in_acc`. Returns -1 when no edge connects (cross product).
  double ConnectSel(const std::vector<char>& in_acc, size_t m) const {
    double sel = 1.0;
    bool any = false;
    for (size_t e = 0; e < edges_.size(); ++e) {
      const JoinEdge& ed = edges_[e];
      const bool fwd = in_acc[ed.a.rel] && ed.b.rel == m;
      const bool rev = in_acc[ed.b.rel] && ed.a.rel == m;
      if (!fwd && !rev) continue;
      any = true;
      sel *= sel_[e];
    }
    return any ? sel : -1.0;
  }

  /// Folds a full order to its (rows, cost); returns false if the order
  /// needs a cross product.
  bool SequenceCost(const std::vector<size_t>& order, double* out_cost) const {
    std::vector<char> in_acc(n(), 0);
    double rows = rows_[order[0]];
    double cost = cost_[order[0]];
    in_acc[order[0]] = 1;
    for (size_t k = 1; k < order.size(); ++k) {
      const size_t m = order[k];
      const double sel = ConnectSel(in_acc, m);
      if (sel < 0.0) return false;
      const double out_rows = rows * rows_[m] * sel;
      cost += cost_[m] + 1.5 * rows_[m] + rows + out_rows;
      rows = out_rows;
      in_acc[m] = 1;
    }
    *out_cost = cost;
    return true;
  }

  /// Exhaustive left-deep DP over connected subsets. Returns the best
  /// order, or nullopt when the join graph is disconnected.
  std::optional<std::vector<size_t>> Dp() const {
    const size_t full = (size_t{1} << n()) - 1;
    struct Entry {
      double rows = 0.0, cost = 0.0;
      int last = -1, prev = -1;
      bool valid = false;
    };
    std::vector<Entry> best(full + 1);
    for (size_t i = 0; i < n(); ++i) {
      Entry& e = best[size_t{1} << i];
      e.rows = rows_[i];
      e.cost = cost_[i];
      e.last = static_cast<int>(i);
      e.valid = true;
    }
    for (size_t mask = 1; mask <= full; ++mask) {
      if ((mask & (mask - 1)) == 0) continue;  // singletons seeded above
      Entry& cur = best[mask];
      for (size_t m = 0; m < n(); ++m) {
        if (!(mask & (size_t{1} << m))) continue;
        const size_t prev = mask ^ (size_t{1} << m);
        if (!best[prev].valid) continue;
        std::vector<char> in_acc(n(), 0);
        for (size_t i = 0; i < n(); ++i) {
          if (prev & (size_t{1} << i)) in_acc[i] = 1;
        }
        const double sel = ConnectSel(in_acc, m);
        if (sel < 0.0) continue;
        const double out_rows = best[prev].rows * rows_[m] * sel;
        const double cost = best[prev].cost + cost_[m] + 1.5 * rows_[m] +
                            best[prev].rows + out_rows;
        if (!cur.valid || cost < cur.cost) {
          cur.rows = out_rows;
          cur.cost = cost;
          cur.last = static_cast<int>(m);
          cur.prev = static_cast<int>(prev);
          cur.valid = true;
        }
      }
    }
    if (!best[full].valid) return std::nullopt;
    std::vector<size_t> order;
    size_t mask = full;
    while (best[mask].prev >= 0) {
      order.push_back(static_cast<size_t>(best[mask].last));
      mask = static_cast<size_t>(best[mask].prev);
    }
    order.push_back(static_cast<size_t>(best[mask].last));
    std::reverse(order.begin(), order.end());
    return order;
  }

  /// Greedy chaining for clusters too large for the DP: cheapest
  /// connected start pair, then always the connected extension with the
  /// lowest step cost. Deterministic tie-breaks (smallest index).
  std::optional<std::vector<size_t>> Greedy() const {
    std::vector<size_t> order;
    std::vector<char> in_acc(n(), 0);
    double bst = -1.0;
    size_t bi = 0, bj = 0;
    for (size_t i = 0; i < n(); ++i) {
      for (size_t j = 0; j < n(); ++j) {
        if (i == j) continue;
        std::vector<char> solo(n(), 0);
        solo[i] = 1;
        const double sel = ConnectSel(solo, j);
        if (sel < 0.0) continue;
        const double out_rows = rows_[i] * rows_[j] * sel;
        const double cost =
            cost_[i] + cost_[j] + 1.5 * rows_[j] + rows_[i] + out_rows;
        if (bst < 0.0 || cost < bst) {
          bst = cost;
          bi = i;
          bj = j;
        }
      }
    }
    if (bst < 0.0) return std::nullopt;
    order = {bi, bj};
    in_acc[bi] = in_acc[bj] = 1;
    double rows;
    {
      std::vector<char> solo(n(), 0);
      solo[bi] = 1;
      rows = rows_[bi] * rows_[bj] * ConnectSel(solo, bj);
    }
    while (order.size() < n()) {
      double step_best = -1.0;
      size_t pick = 0;
      double pick_rows = 0.0;
      for (size_t m = 0; m < n(); ++m) {
        if (in_acc[m]) continue;
        const double sel = ConnectSel(in_acc, m);
        if (sel < 0.0) continue;
        const double out_rows = rows * rows_[m] * sel;
        const double cost = cost_[m] + 1.5 * rows_[m] + rows + out_rows;
        if (step_best < 0.0 || cost < step_best) {
          step_best = cost;
          pick = m;
          pick_rows = out_rows;
        }
      }
      if (step_best < 0.0) return std::nullopt;  // disconnected remainder
      order.push_back(pick);
      in_acc[pick] = 1;
      rows = pick_rows;
    }
    return order;
  }

 private:
  std::vector<double> rows_, cost_;
  const std::vector<JoinEdge>& edges_;
  std::vector<double> sel_;
};

Result<PlanPtr> ReorderRec(const PlanPtr& node, CostModel* model,
                           const OptimizerOptions& opts);

/// Reorders one maximal join cluster rooted at `root`. Any structural
/// obstacle (keyless join, untraceable key, name collision, disconnected
/// graph) keeps the original order; only a strictly cheaper connected
/// order is adopted.
Result<PlanPtr> ReorderCluster(const PlanPtr& root, CostModel* model,
                               const OptimizerOptions& opts) {
  std::vector<PlanPtr> rels_orig;
  CollectRelations(root, &rels_orig);
  const size_t n = rels_orig.size();

  // Optimize below the cluster first (nested clusters under projections).
  std::vector<PlanPtr> rels;
  rels.reserve(n);
  for (const PlanPtr& r : rels_orig) {
    MDE_ASSIGN_OR_RETURN(PlanPtr rr, ReorderRec(r, model, opts));
    rels.push_back(std::move(rr));
  }
  size_t next_rel = 0;
  if (n < 2 || n > opts.max_relations) {
    return RebuildCluster(root, rels, &next_rel);
  }

  std::vector<Schema> rel_schemas;
  rel_schemas.reserve(n);
  for (const PlanPtr& r : rels) {
    auto s = r->OutputSchema();
    if (!s.ok()) return RebuildCluster(root, rels, &next_rel);
    rel_schemas.push_back(std::move(s).value());
  }

  std::vector<JoinEdge> edges;
  auto resolved = ResolveCluster(root, rel_schemas, &next_rel, &edges);
  next_rel = 0;
  if (!resolved.ok()) return RebuildCluster(root, rels, &next_rel);
  const SubTree& orig = resolved.value();

  std::vector<double> rel_rows(n), rel_cost(n);
  for (size_t i = 0; i < n; ++i) {
    rel_rows[i] = model->EstimateRows(rels[i]);
    rel_cost[i] = model->EstimateCost(rels[i]);
  }
  auto ndv = [&](const RelRef& ref) {
    const std::string& name = rel_schemas[ref.rel].column(ref.col).name;
    const ColumnStats* s = model->FindColumnStats(rels[ref.rel], name);
    if (s != nullptr && s->distinct > 0.0) return std::max(s->distinct, 1.0);
    return std::max(rel_rows[ref.rel], 1.0);
  };
  std::vector<double> ndv_a, ndv_b;
  ndv_a.reserve(edges.size());
  ndv_b.reserve(edges.size());
  for (const JoinEdge& e : edges) {
    ndv_a.push_back(ndv(e.a));
    ndv_b.push_back(ndv(e.b));
  }
  OrderSearch search(rel_rows, rel_cost, ndv_a, ndv_b, edges);

  std::optional<std::vector<size_t>> order =
      n <= opts.dp_max_relations ? search.Dp() : search.Greedy();
  if (!order.has_value()) return RebuildCluster(root, rels, &next_rel);

  double cand_cost = 0.0;
  if (!search.SequenceCost(*order, &cand_cost)) {
    return RebuildCluster(root, rels, &next_rel);
  }
  // Cost of keeping the as-written order, measured with the same folding
  // when the original is left-deep (the common case); EstimateCost
  // otherwise.
  double orig_cost = 0.0;
  bool have_orig_cost = false;
  std::vector<size_t> identity(n);
  for (size_t i = 0; i < n; ++i) identity[i] = i;
  if (IsLeftDeep(root)) {
    if (*order == identity) return RebuildCluster(root, rels, &next_rel);
    have_orig_cost = search.SequenceCost(identity, &orig_cost);
  }
  if (!have_orig_cost) orig_cost = model->EstimateCost(root);
  if (!(cand_cost < orig_cost * 0.999)) {
    return RebuildCluster(root, rels, &next_rel);
  }

  // Build the chosen left-deep order, tracking schema + provenance.
  PlanPtr acc = rels[(*order)[0]];
  Schema acc_schema = rel_schemas[(*order)[0]];
  std::vector<RelRef> acc_prov;
  for (size_t j = 0; j < acc_schema.num_columns(); ++j) {
    acc_prov.push_back({(*order)[0], j});
  }
  std::vector<char> in_acc(n, 0);
  in_acc[(*order)[0]] = 1;
  for (size_t k = 1; k < order->size(); ++k) {
    const size_t m = (*order)[k];
    std::vector<std::pair<std::string, std::string>> key_pairs;
    for (const JoinEdge& e : edges) {
      RelRef acc_ref, m_ref;
      if (in_acc[e.a.rel] && e.b.rel == m) {
        acc_ref = e.a;
        m_ref = e.b;
      } else if (in_acc[e.b.rel] && e.a.rel == m) {
        acc_ref = e.b;
        m_ref = e.a;
      } else {
        continue;
      }
      size_t acc_pos = acc_prov.size();
      for (size_t p = 0; p < acc_prov.size(); ++p) {
        if (acc_prov[p] == acc_ref) {
          acc_pos = p;
          break;
        }
      }
      if (acc_pos == acc_prov.size()) {
        return RebuildCluster(root, rels, &next_rel);
      }
      key_pairs.emplace_back(acc_schema.column(acc_pos).name,
                             rel_schemas[m].column(m_ref.col).name);
    }
    std::sort(key_pairs.begin(), key_pairs.end());
    key_pairs.erase(std::unique(key_pairs.begin(), key_pairs.end()),
                    key_pairs.end());
    if (key_pairs.empty()) return RebuildCluster(root, rels, &next_rel);
    auto combined = TryConcat(acc_schema, rel_schemas[m]);
    if (!combined.has_value()) return RebuildCluster(root, rels, &next_rel);
    std::vector<std::string> lk, rk;
    lk.reserve(key_pairs.size());
    rk.reserve(key_pairs.size());
    for (auto& kp : key_pairs) {
      lk.push_back(std::move(kp.first));
      rk.push_back(std::move(kp.second));
    }
    acc = PlanNode::Join(std::move(acc), rels[m], std::move(lk),
                         std::move(rk));
    acc_schema = std::move(*combined);
    for (size_t j = 0; j < rel_schemas[m].num_columns(); ++j) {
      acc_prov.push_back({m, j});
    }
    in_acc[m] = 1;
  }

  // Restore the exact as-written output schema (names and positions) with
  // a renaming projection — zero-copy on the vectorized path. Skipped
  // when the new order happens to produce it already.
  std::unordered_map<uint64_t, size_t> cand_pos;
  cand_pos.reserve(acc_prov.size());
  for (size_t p = 0; p < acc_prov.size(); ++p) {
    cand_pos[(uint64_t{acc_prov[p].rel} << 32) | acc_prov[p].col] = p;
  }
  std::vector<std::string> cols, aliases;
  cols.reserve(orig.prov.size());
  aliases.reserve(orig.prov.size());
  bool identical = acc_schema.num_columns() == orig.schema.num_columns();
  bool renames = false;
  for (size_t p = 0; p < orig.prov.size(); ++p) {
    auto it =
        cand_pos.find((uint64_t{orig.prov[p].rel} << 32) | orig.prov[p].col);
    if (it == cand_pos.end()) return RebuildCluster(root, rels, &next_rel);
    const std::string& cand_name = acc_schema.column(it->second).name;
    const std::string& orig_name = orig.schema.column(p).name;
    if (it->second != p || cand_name != orig_name) identical = false;
    if (cand_name != orig_name) renames = true;
    cols.push_back(cand_name);
    aliases.push_back(orig_name);
  }
  MDE_OBS_COUNT("opt.joins_reordered", 1);
  if (identical) return acc;
  if (!renames) return PlanNode::Project(std::move(acc), std::move(cols));
  return PlanNode::ProjectAs(std::move(acc), std::move(cols),
                             std::move(aliases));
}

Result<PlanPtr> ReorderRec(const PlanPtr& node, CostModel* model,
                           const OptimizerOptions& opts) {
  switch (node->kind()) {
    case PlanNode::Kind::kScan:
      return node;
    case PlanNode::Kind::kFilter:
    case PlanNode::Kind::kProject: {
      MDE_ASSIGN_OR_RETURN(PlanPtr child,
                           ReorderRec(node->child(), model, opts));
      return RebuildUnary(node, std::move(child));
    }
    case PlanNode::Kind::kJoin:
      return ReorderCluster(node, model, opts);
  }
  return Status::Internal("unknown plan node");
}

// ---------------------------------------------------------------------------
// Pass 3: projection pushdown. Under an explicit projection, each subtree
// is narrowed to the columns actually consumed above it; scans get an
// inserted Project so joins gather fewer blocks. Conservative guard: a
// left-side join column whose name also appears on the right is kept even
// if unused, because dropping it would change the right column's "r."
// rename.
// ---------------------------------------------------------------------------

using NameSet = std::unordered_set<std::string>;

Result<PlanPtr> Prune(const PlanPtr& node, const NameSet& required);

Result<PlanPtr> PushProjections(const PlanPtr& plan) {
  switch (plan->kind()) {
    case PlanNode::Kind::kScan:
      return plan;
    case PlanNode::Kind::kProject: {
      MDE_ASSIGN_OR_RETURN(Schema out, plan->OutputSchema());
      NameSet required;
      for (const auto& c : out.columns()) required.insert(c.name);
      return Prune(plan, required);
    }
    case PlanNode::Kind::kFilter: {
      MDE_ASSIGN_OR_RETURN(PlanPtr child, PushProjections(plan->child()));
      return RebuildUnary(plan, std::move(child));
    }
    case PlanNode::Kind::kJoin: {
      MDE_ASSIGN_OR_RETURN(PlanPtr l, PushProjections(plan->left()));
      MDE_ASSIGN_OR_RETURN(PlanPtr r, PushProjections(plan->right()));
      return PlanNode::Join(l, r, plan->left_keys(), plan->right_keys());
    }
  }
  return Status::Internal("unknown plan node");
}

/// Narrows `node` so its output covers `required` (names in node's output
/// schema). Relative column order is preserved, so names above stay valid.
Result<PlanPtr> Prune(const PlanPtr& node, const NameSet& required) {
  switch (node->kind()) {
    case PlanNode::Kind::kScan: {
      const Schema& s = node->table()->schema();
      std::vector<std::string> keep;
      for (const auto& c : s.columns()) {
        if (required.count(c.name)) keep.push_back(c.name);
      }
      if (keep.empty() || keep.size() == s.num_columns()) return node;
      MDE_OBS_COUNT("opt.scans_narrowed", 1);
      return PlanNode::Project(node, std::move(keep));
    }
    case PlanNode::Kind::kFilter: {
      NameSet child_req = required;
      for (const auto& p : node->predicates()) child_req.insert(p.column);
      MDE_ASSIGN_OR_RETURN(PlanPtr child, Prune(node->child(), child_req));
      return PlanNode::Filter(std::move(child), node->predicates());
    }
    case PlanNode::Kind::kProject: {
      const auto& cols = node->columns();
      const auto& aliases = node->aliases();
      std::vector<std::string> keep_cols, keep_aliases;
      NameSet child_req;
      for (size_t i = 0; i < cols.size(); ++i) {
        const std::string& out_name = aliases.empty() ? cols[i] : aliases[i];
        if (!required.count(out_name)) continue;
        keep_cols.push_back(cols[i]);
        if (!aliases.empty()) keep_aliases.push_back(aliases[i]);
        child_req.insert(cols[i]);
      }
      if (keep_cols.empty()) return node;  // keep as-is over a 0-col drop
      MDE_ASSIGN_OR_RETURN(PlanPtr child, Prune(node->child(), child_req));
      if (keep_aliases.empty()) {
        return PlanNode::Project(std::move(child), std::move(keep_cols));
      }
      return PlanNode::ProjectAs(std::move(child), std::move(keep_cols),
                                 std::move(keep_aliases));
    }
    case PlanNode::Kind::kJoin: {
      MDE_ASSIGN_OR_RETURN(Schema ls, node->left()->OutputSchema());
      MDE_ASSIGN_OR_RETURN(Schema rs, node->right()->OutputSchema());
      NameSet left_req, right_req;
      for (const auto& c : ls.columns()) {
        // Keep left duplicates of right-side names: dropping one would
        // flip the right column's "r." rename.
        if (required.count(c.name) || rs.Has(c.name)) {
          left_req.insert(c.name);
        }
      }
      for (const auto& k : node->left_keys()) left_req.insert(k);
      for (const auto& c : rs.columns()) {
        const std::string out_name =
            ls.Has(c.name) ? "r." + c.name : c.name;
        if (required.count(out_name)) right_req.insert(c.name);
      }
      for (const auto& k : node->right_keys()) right_req.insert(k);
      MDE_ASSIGN_OR_RETURN(PlanPtr l, Prune(node->left(), left_req));
      MDE_ASSIGN_OR_RETURN(PlanPtr r, Prune(node->right(), right_req));
      return PlanNode::Join(std::move(l), std::move(r), node->left_keys(),
                            node->right_keys());
    }
  }
  return Status::Internal("unknown plan node");
}

// ---------------------------------------------------------------------------
// Pass 4: predicate ordering — most selective first, so each later
// predicate in a conjunctive filter scans a shorter selection vector.
// Stable (original order breaks ties), so equal-selectivity plans are
// untouched.
// ---------------------------------------------------------------------------

Result<PlanPtr> OrderPredicates(const PlanPtr& plan, CostModel* model) {
  switch (plan->kind()) {
    case PlanNode::Kind::kScan:
      return plan;
    case PlanNode::Kind::kProject: {
      MDE_ASSIGN_OR_RETURN(PlanPtr child,
                           OrderPredicates(plan->child(), model));
      return RebuildUnary(plan, std::move(child));
    }
    case PlanNode::Kind::kJoin: {
      MDE_ASSIGN_OR_RETURN(PlanPtr l, OrderPredicates(plan->left(), model));
      MDE_ASSIGN_OR_RETURN(PlanPtr r, OrderPredicates(plan->right(), model));
      return PlanNode::Join(l, r, plan->left_keys(), plan->right_keys());
    }
    case PlanNode::Kind::kFilter: {
      MDE_ASSIGN_OR_RETURN(PlanPtr child,
                           OrderPredicates(plan->child(), model));
      const auto& preds = plan->predicates();
      std::vector<std::pair<double, size_t>> ranked;
      ranked.reserve(preds.size());
      for (size_t i = 0; i < preds.size(); ++i) {
        ranked.emplace_back(model->PredicateSelectivity(child, preds[i]), i);
      }
      std::stable_sort(ranked.begin(), ranked.end(),
                       [](const auto& a, const auto& b) {
                         return a.first < b.first;
                       });
      std::vector<PlanPredicate> ordered;
      ordered.reserve(preds.size());
      bool changed = false;
      for (size_t i = 0; i < ranked.size(); ++i) {
        if (ranked[i].second != i) changed = true;
        ordered.push_back(preds[ranked[i].second]);
      }
      if (changed) MDE_OBS_COUNT("opt.predicates_reordered", 1);
      return PlanNode::Filter(std::move(child), std::move(ordered));
    }
  }
  return Status::Internal("unknown plan node");
}

}  // namespace

Result<PlanPtr> CostBasedOptimize(const PlanPtr& plan,
                                  const OptimizerOptions& opts) {
  if (plan == nullptr) return Status::InvalidArgument("null plan");
  PlanPtr p = plan;
  if (opts.push_selections) {
    MDE_ASSIGN_OR_RETURN(p, PushSelections(p));
  }
  if (opts.reorder_joins) {
    // Fresh model per pass: its memos key on node identity, and nodes
    // discarded between passes could alias new allocations.
    CostModel model;
    MDE_ASSIGN_OR_RETURN(p, ReorderRec(p, &model, opts));
  }
  if (opts.push_projections) {
    MDE_ASSIGN_OR_RETURN(p, PushProjections(p));
  }
  if (opts.order_predicates) {
    CostModel model;
    MDE_ASSIGN_OR_RETURN(p, OrderPredicates(p, &model));
  }
  MDE_OBS_COUNT("opt.plans_optimized", 1);
  return p;
}

}  // namespace mde::table
