#include "table/catalog.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_set>

#include "obs/metrics.h"
#include "table/columnar.h"

namespace mde::table {

namespace {

/// SplitMix64 finalizer: cheap, well-mixed, deterministic across runs.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashDoubleBits(double d) {
  if (d == 0.0) d = 0.0;  // collapse -0.0 and +0.0
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d), "double is 64-bit");
  __builtin_memcpy(&bits, &d, sizeof(bits));
  return Mix64(bits);
}

/// Distinct-count accumulator: exact up to ColumnStats::kDistinctExact
/// unique hashes, then a KMV (k-minimum-values) sketch — keep the k
/// smallest distinct hash values; with the k-th minimum at fraction U of
/// the hash space, the unseen population is about (k-1)/U.
class DistinctAcc {
 public:
  void Add(uint64_t h) {
    if (!overflow_) {
      exact_.insert(h);
      if (exact_.size() > ColumnStats::kDistinctExact) {
        for (uint64_t v : exact_) InsertKmv(v);
        exact_.clear();
        overflow_ = true;
      }
      return;
    }
    InsertKmv(h);
  }

  double Estimate() const {
    if (!overflow_) return static_cast<double>(exact_.size());
    const size_t k = kmv_.size();
    if (k < 2) return static_cast<double>(k);
    const double kth =
        static_cast<double>(*kmv_.rbegin()) / 18446744073709551616.0;  // 2^64
    if (kth <= 0.0) return static_cast<double>(k);
    return static_cast<double>(k - 1) / kth;
  }

 private:
  void InsertKmv(uint64_t h) {
    if (kmv_.size() == kKmv && h >= *kmv_.rbegin()) return;
    kmv_.insert(h);
    if (kmv_.size() > kKmv) kmv_.erase(std::prev(kmv_.end()));
  }

  static constexpr size_t kKmv = 1024;
  std::unordered_set<uint64_t> exact_;
  std::set<uint64_t> kmv_;  // k smallest distinct hashes, sorted
  bool overflow_ = false;
};

/// Numeric column pass shared by the int64/double/bool block layouts.
/// `value(i)` returns the row's value as double; `hash(i)` hashes the raw
/// representation (so int64 values beyond 2^53 still count as distinct).
template <typename ValueFn, typename HashFn>
void NumericPass(const Column& col, size_t n, ValueFn value, HashFn hash,
                 ColumnStats* s) {
  DistinctAcc distinct;
  size_t nulls = 0;
  bool first = true;
  double prev = 0.0;
  s->sorted_asc = true;
  s->sorted_desc = true;
  for (size_t i = 0; i < n; ++i) {
    if (!col.IsValid(i)) {
      ++nulls;
      continue;
    }
    const double v = value(i);
    if (first) {
      s->min = s->max = v;
      first = false;
    } else {
      s->min = std::min(s->min, v);
      s->max = std::max(s->max, v);
      if (v < prev) s->sorted_asc = false;
      if (v > prev) s->sorted_desc = false;
    }
    prev = v;
    distinct.Add(hash(i));
  }
  s->null_fraction = n == 0 ? 0.0 : static_cast<double>(nulls) / n;
  s->has_range = !first;
  s->distinct = distinct.Estimate();
  if (first) {
    s->sorted_asc = s->sorted_desc = false;
    return;
  }
  // Histogram: second pass, equi-width over [min, max]. Skipped for
  // constant columns (range selectivity degenerates to eq there anyway).
  if (s->min < s->max && col.type != DataType::kBool) {
    s->hist.assign(ColumnStats::kHistBuckets, 0);
    const double width = s->max - s->min;
    for (size_t i = 0; i < n; ++i) {
      if (!col.IsValid(i)) continue;
      const double v = value(i);
      size_t b = static_cast<size_t>((v - s->min) / width *
                                     ColumnStats::kHistBuckets);
      b = std::min(b, ColumnStats::kHistBuckets - 1);
      ++s->hist[b];
      ++s->hist_rows;
    }
  }
}

ColumnStats ComputeColumnStatsColumnar(const Column& col, size_t n) {
  ColumnStats s;
  s.type = col.type;
  switch (col.type) {
    case DataType::kInt64:
      NumericPass(
          col, n, [&](size_t i) { return static_cast<double>(col.i64[i]); },
          [&](size_t i) { return Mix64(static_cast<uint64_t>(col.i64[i])); },
          &s);
      break;
    case DataType::kDouble:
      NumericPass(
          col, n, [&](size_t i) { return col.f64[i]; },
          [&](size_t i) { return HashDoubleBits(col.f64[i]); }, &s);
      break;
    case DataType::kBool:
      NumericPass(
          col, n, [&](size_t i) { return static_cast<double>(col.b8[i]); },
          [&](size_t i) { return Mix64(col.b8[i]); }, &s);
      break;
    case DataType::kString: {
      // Satellite: the dictionary is the distinct structure — count used
      // codes with a bitset over the dictionary instead of materializing
      // or hashing strings. Exact, O(rows + dict).
      const size_t dict_size = col.dict != nullptr ? col.dict->size() : 0;
      std::vector<uint8_t> seen(dict_size, 0);
      size_t nulls = 0;
      size_t used = 0;
      bool first = true;
      uint32_t prev_code = 0;
      s.sorted_asc = s.sorted_desc = true;
      for (size_t i = 0; i < n; ++i) {
        if (!col.IsValid(i)) {
          ++nulls;
          continue;
        }
        const uint32_t c = col.codes[i];
        if (c < dict_size && !seen[c]) {
          seen[c] = 1;
          ++used;
        }
        if (!first && c != prev_code) {
          const int cmp = (*col.dict)[c].compare((*col.dict)[prev_code]);
          if (cmp < 0) s.sorted_asc = false;
          if (cmp > 0) s.sorted_desc = false;
        }
        prev_code = c;
        first = false;
      }
      s.null_fraction = n == 0 ? 0.0 : static_cast<double>(nulls) / n;
      s.distinct = static_cast<double>(used);
      if (first) s.sorted_asc = s.sorted_desc = false;
      break;
    }
    case DataType::kNull:
      s.null_fraction = n == 0 ? 0.0 : 1.0;
      break;
  }
  return s;
}

/// Fallback for tables whose cells disagree with their declared types
/// (mixed-type columns stay on the row path): min/max/nulls/distinct from
/// boxed values, no histogram.
ColumnStats ComputeColumnStatsRows(const Table& t, size_t c) {
  ColumnStats s;
  s.type = t.schema().column(c).type;
  const size_t n = t.num_rows();
  DistinctAcc distinct;
  size_t nulls = 0;
  bool numeric = true;
  bool first = true;
  s.sorted_asc = s.sorted_desc = true;
  const Value* prev = nullptr;
  for (size_t i = 0; i < n; ++i) {
    const Value& v = t.row(i)[c];
    if (v.is_null()) {
      ++nulls;
      continue;
    }
    distinct.Add(Mix64(v.Hash()));
    const DataType vt = v.type();
    // Value::AsDouble aborts on bool, so range stats cover int64/double
    // only (the columnar path handles bool; this fallback does not).
    if (vt != DataType::kInt64 && vt != DataType::kDouble) numeric = false;
    if (numeric) {
      const double d = v.AsDouble();
      if (first) {
        s.min = s.max = d;
      } else {
        s.min = std::min(s.min, d);
        s.max = std::max(s.max, d);
      }
    }
    if (prev != nullptr) {
      if (v.LessThan(*prev)) s.sorted_asc = false;
      if (prev->LessThan(v)) s.sorted_desc = false;
    }
    prev = &v;
    first = false;
  }
  s.null_fraction = n == 0 ? 0.0 : static_cast<double>(nulls) / n;
  s.has_range = numeric && !first;
  s.distinct = distinct.Estimate();
  if (first) s.sorted_asc = s.sorted_desc = false;
  return s;
}

}  // namespace

const ColumnStats* TableStats::Find(const std::string& name) const {
  auto idx = schema.IndexOf(name);
  if (!idx.ok()) return nullptr;
  return &columns[idx.value()];
}

std::shared_ptr<const TableStats> ComputeTableStats(const Table& t) {
  auto stats = std::make_shared<TableStats>();
  stats->row_count = t.num_rows();
  stats->schema = t.schema();
  const size_t ncols = t.schema().num_columns();
  stats->columns.reserve(ncols);
  auto columnar = t.ToColumnar();
  if (columnar.ok()) {
    const ColumnarTable& ct = *columnar.value();
    for (size_t c = 0; c < ncols; ++c) {
      stats->columns.push_back(
          ComputeColumnStatsColumnar(ct.col(c), ct.num_rows()));
    }
  } else {
    for (size_t c = 0; c < ncols; ++c) {
      stats->columns.push_back(ComputeColumnStatsRows(t, c));
    }
  }
  MDE_OBS_COUNT("opt.catalog.stats_computed", 1);
  return stats;
}

Catalog& Catalog::Global() {
  static Catalog* c = new Catalog();
  return *c;
}

std::shared_ptr<const TableStats> Catalog::StatsFor(const Table& t) {
  if (auto cached = t.stats_cache()) return cached;
  auto stats = ComputeTableStats(t);
  t.set_stats_cache(stats);
  return stats;
}

void Catalog::RecordActual(const std::string& fingerprint,
                           double actual_rows) {
  size_t entries;
  {
    std::lock_guard<std::mutex> lock(mu_);
    actuals_[fingerprint] = actual_rows;
    entries = actuals_.size();
  }
  MDE_OBS_COUNT("opt.feedback.records", 1);
  MDE_OBS_GAUGE_SET("opt.feedback.entries", static_cast<int64_t>(entries));
}

bool Catalog::LookupActual(const std::string& fingerprint,
                           double* rows) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = actuals_.find(fingerprint);
  if (it == actuals_.end()) return false;
  *rows = it->second;
  return true;
}

size_t Catalog::feedback_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return actuals_.size();
}

void Catalog::ClearFeedback() {
  std::lock_guard<std::mutex> lock(mu_);
  actuals_.clear();
}

}  // namespace mde::table
