#ifndef MDE_TABLE_VEC_OPS_H_
#define MDE_TABLE_VEC_OPS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "table/columnar.h"
#include "table/ops.h"
#include "table/table.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace mde::table {

/// Selection vector: ascending row indices into a ColumnarTable. Operators
/// narrow selections instead of materializing intermediate row copies; a
/// table is only compacted (gathered) when a pipeline stage genuinely needs
/// contiguous storage (join/group-by output, final materialization).
using SelVector = std::vector<uint32_t>;

/// Fixed row grain for every parallel kernel. A constant — never derived
/// from the pool size — and a multiple of 64 so per-chunk validity-bitmap
/// words never straddle chunks. Chunk boundaries and partial-aggregate
/// combine order therefore depend only on the row count, making results
/// bit-identical for any thread count (and for the pool-less path, which
/// walks the same chunks in ascending order). Same discipline as
/// mcdb::BundleTable::kRowGrain.
inline constexpr size_t kVecGrain = 4096;

/// Chunk boundaries must never tear a packed 64-bit validity/predicate
/// bitmap word: the SIMD filter path ANDs whole words per chunk, and
/// parallel gathers write disjoint words only under this invariant.
static_assert(kVecGrain % 64 == 0,
              "vector chunks must cover whole 64-bit bitmap words");

/// Dense per-chunk group-by partials are allocated num_chunks x num_groups;
/// above this many groups the aggregate kernel switches to a single serial
/// accumulation pass (the switch depends only on the data, so pooled and
/// serial runs still agree bitwise).
inline constexpr size_t kMaxParallelGroups = 4096;

/// Process-wide executor pool for the columnar operators (Query, plan
/// execution, and the Table-level wrappers). nullptr (the default) runs the
/// kernels serially over the same fixed chunking. Not owned. The
/// determinism contract makes attaching a pool observationally free.
void SetVecPool(ThreadPool* pool);
ThreadPool* VecPool();

/// Pipeline unit: shared immutable column blocks plus the rows currently
/// selected. `whole` short-circuits the common all-rows case.
struct ColumnarBatch {
  std::shared_ptr<const ColumnarTable> cols;
  SelVector sel;
  bool whole = true;

  size_t size() const { return whole ? cols->num_rows() : sel.size(); }
};

/// Materializes a batch as a row Table (compacting through the selection if
/// needed). The result keeps its columnar representation attached, so the
/// boxed rows are only built if someone actually reads them.
Table BatchToTable(const ColumnarBatch& batch, ThreadPool* pool);

/// Gathers the selected rows of `t` into a contiguous ColumnarTable.
/// String dictionaries are shared, not rebuilt.
std::shared_ptr<const ColumnarTable> VecCompact(const ColumnarTable& t,
                                                const SelVector& sel,
                                                ThreadPool* pool);

/// sigma(column <op> literal) over the selected rows; returns the surviving
/// row indices in ascending order. Exactly replicates the row-at-a-time
/// ColumnCompare semantics: nulls never match, numerics compare as double
/// across int64/double, cross-type-class comparisons follow Value's type
/// ranking.
Result<SelVector> VecFilter(const ColumnarTable& t, const SelVector* sel,
                            const std::string& column, CmpOp op,
                            const Value& literal, ThreadPool* pool);

/// pi: narrows a batch to the named columns (zero-copy — column blocks and
/// the selection are shared).
Result<ColumnarBatch> VecProject(const ColumnarBatch& in,
                                 const std::vector<std::string>& columns);

/// Equi hash join; same tuple ordering, null-key and duplicate-key
/// semantics as the row HashJoin (strict same-type key equality: an int64
/// key never matches a double key). Build is over the right batch, probe is
/// chunk-parallel over the left batch.
Result<std::shared_ptr<const ColumnarTable>> VecHashJoin(
    const ColumnarBatch& left, const ColumnarBatch& right,
    const std::vector<std::string>& left_keys,
    const std::vector<std::string>& right_keys, ThreadPool* pool);

/// Theta join on `left.left_col <op> right.right_col` — the structured
/// (and therefore vectorizable) form of NestedLoopJoin. Opaque row
/// predicates stay on the row path. Chunk-parallel over left rows.
Result<std::shared_ptr<const ColumnarTable>> VecNestedLoopJoin(
    const ColumnarTable& left, const std::string& left_col, CmpOp op,
    const ColumnarTable& right, const std::string& right_col,
    ThreadPool* pool);

/// gamma: hash group-by with first-appearance group ordering and the same
/// aggregate semantics as the row GroupBy (nulls skipped, AVG/MIN/MAX null
/// on empty, SUM 0.0). Aggregation is chunk-parallel with partials combined
/// in ascending chunk order.
Result<std::shared_ptr<const ColumnarTable>> VecGroupBy(
    const ColumnarBatch& in, const std::vector<std::string>& keys,
    const std::vector<AggSpec>& aggs, ThreadPool* pool);

/// tau: stable multi-key sort; returns the selected rows in sorted order as
/// a selection vector (gather with VecCompact / BatchToTable). Matches the
/// row OrderBy ordering exactly, including null-first ranking and the
/// int64-compares-as-double quirk of Value::LessThan.
Result<SelVector> VecOrderBy(const ColumnarBatch& in,
                             const std::vector<std::string>& columns,
                             std::vector<bool> descending);

/// delta: first occurrence of each distinct row (strict variant equality,
/// nulls equal — same as the row Distinct).
SelVector VecDistinct(const ColumnarBatch& in);

}  // namespace mde::table

#endif  // MDE_TABLE_VEC_OPS_H_
