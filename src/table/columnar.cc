#include "table/columnar.h"

#include <algorithm>
#include <cassert>

#include "obs/mem.h"
#include "util/check.h"

namespace mde::table {

namespace {

/// Sets bit i of a packed bitmap sized for `n` bits.
void SetBit(AlignedVector<uint64_t>* bits, size_t i) {
  (*bits)[i >> 6] |= uint64_t{1} << (i & 63);
}

/// Debug-only check that a finished block's storage honours the 64-byte
/// alignment contract the SIMD kernels assume for cache-line-aligned
/// chunk starts. Compiled out under NDEBUG.
void AssertColumnAligned(const Column& c) {
#ifndef NDEBUG
  assert(c.i64.empty() || IsAligned(c.i64.data(), 64));
  assert(c.f64.empty() || IsAligned(c.f64.data(), 64));
  assert(c.b8.empty() || IsAligned(c.b8.data(), 64));
  assert(c.codes.empty() || IsAligned(c.codes.data(), 64));
  assert(c.valid.empty() || IsAligned(c.valid.data(), 64));
#else
  (void)c;
#endif
}

}  // namespace

Value Column::ValueAt(size_t i) const {
  if (!IsValid(i)) return Value();
  switch (type) {
    case DataType::kInt64:
      return Value(i64[i]);
    case DataType::kDouble:
      return Value(f64[i]);
    case DataType::kBool:
      return Value(b8[i] != 0);
    case DataType::kString:
      return Value((*dict)[codes[i]]);
    case DataType::kNull:
      return Value();
  }
  return Value();
}

ColumnBuilder::ColumnBuilder(DataType type) {
  col_.type = type;
  if (type == DataType::kString) {
    dict_ = std::make_shared<std::vector<std::string>>();
    col_.dict = dict_;
  }
}

void ColumnBuilder::Reserve(size_t n) {
  switch (col_.type) {
    case DataType::kInt64:
      col_.i64.reserve(n);
      break;
    case DataType::kDouble:
      col_.f64.reserve(n);
      break;
    case DataType::kBool:
      col_.b8.reserve(n);
      break;
    case DataType::kString:
      col_.codes.reserve(n);
      break;
    case DataType::kNull:
      break;
  }
}

void ColumnBuilder::MarkValid() {
  if (has_nulls_) SetBit(&col_.valid, col_.size);
  ++col_.size;
}

void ColumnBuilder::MarkNull() {
  if (!has_nulls_) {
    // First null: backfill the bitmap with "valid" for every prior row.
    has_nulls_ = true;
    col_.valid.assign((std::max<size_t>(col_.size + 1, 64) + 63) / 64, 0);
    for (size_t i = 0; i < col_.size; ++i) SetBit(&col_.valid, i);
  }
  ++col_.size;
}

void ColumnBuilder::AppendNull() {
  if (has_nulls_ && (col_.size >> 6) >= col_.valid.size()) {
    col_.valid.push_back(0);
  }
  switch (col_.type) {
    case DataType::kInt64:
      col_.i64.push_back(0);
      break;
    case DataType::kDouble:
      col_.f64.push_back(0.0);
      break;
    case DataType::kBool:
      col_.b8.push_back(0);
      break;
    case DataType::kString:
      col_.codes.push_back(0);
      break;
    case DataType::kNull:
      break;
  }
  MarkNull();
}

void ColumnBuilder::AppendInt64(int64_t v) {
  MDE_CHECK(col_.type == DataType::kInt64);
  if (has_nulls_ && (col_.size >> 6) >= col_.valid.size()) {
    col_.valid.push_back(0);
  }
  col_.i64.push_back(v);
  MarkValid();
}

void ColumnBuilder::AppendDouble(double v) {
  MDE_CHECK(col_.type == DataType::kDouble);
  if (has_nulls_ && (col_.size >> 6) >= col_.valid.size()) {
    col_.valid.push_back(0);
  }
  col_.f64.push_back(v);
  MarkValid();
}

void ColumnBuilder::AppendBool(bool v) {
  MDE_CHECK(col_.type == DataType::kBool);
  if (has_nulls_ && (col_.size >> 6) >= col_.valid.size()) {
    col_.valid.push_back(0);
  }
  col_.b8.push_back(v ? 1 : 0);
  MarkValid();
}

void ColumnBuilder::AppendString(const std::string& v) {
  MDE_CHECK(col_.type == DataType::kString);
  if (has_nulls_ && (col_.size >> 6) >= col_.valid.size()) {
    col_.valid.push_back(0);
  }
  auto it = interned_.find(v);
  uint32_t code;
  if (it != interned_.end()) {
    code = it->second;
  } else {
    code = static_cast<uint32_t>(dict_->size());
    dict_->push_back(v);
    interned_.emplace(v, code);
  }
  col_.codes.push_back(code);
  MarkValid();
}

bool ColumnBuilder::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return true;
  }
  if (v.type() != col_.type) return false;
  switch (col_.type) {
    case DataType::kInt64:
      AppendInt64(v.AsInt());
      return true;
    case DataType::kDouble:
      AppendDouble(v.AsDouble());
      return true;
    case DataType::kBool:
      AppendBool(v.AsBool());
      return true;
    case DataType::kString:
      AppendString(v.AsString());
      return true;
    case DataType::kNull:
      return false;
  }
  return false;
}

namespace {

/// Directly-owned footprint of one column block. The string dictionary is
/// excluded: it is shared across columns/tables by shared_ptr, so charging
/// it to every holder would overstate the pool.
uint64_t ApproxColumnBytes(const Column& c) {
  uint64_t b = sizeof(Column);
  b += c.i64.capacity() * sizeof(int64_t);
  b += c.f64.capacity() * sizeof(double);
  b += c.b8.capacity() * sizeof(uint8_t);
  b += c.codes.capacity() * sizeof(uint32_t);
  b += c.valid.capacity() * sizeof(uint64_t);
  return b;
}

}  // namespace

std::shared_ptr<const Column> AccountColumnBlock(
    std::shared_ptr<Column> col) {
#ifndef MDE_OBS_DISABLED
  // Account the block to the table.columnar pool for exactly as long as any
  // owner keeps it alive: alloc here, free in the shared_ptr deleter. The
  // pool handle is resolved once; each event is a relaxed fetch_add.
  static obs::MemPool pool("table.columnar");
  const uint64_t bytes = ApproxColumnBytes(*col);
  pool.RecordAlloc(bytes);
  const Column* raw = col.get();
  return std::shared_ptr<const Column>(
      raw, [col = std::move(col), bytes](const Column*) mutable {
        pool.RecordFree(bytes);
        col.reset();
      });
#else
  return col;
#endif
}

std::shared_ptr<const Column> ColumnBuilder::Finish() {
  if (!has_nulls_) col_.valid.clear();
  AssertColumnAligned(col_);
  return AccountColumnBlock(std::make_shared<Column>(std::move(col_)));
}

ColumnarTable::ColumnarTable(Schema schema,
                             std::vector<std::shared_ptr<const Column>> cols,
                             size_t num_rows)
    : schema_(std::move(schema)), cols_(std::move(cols)), num_rows_(num_rows) {
  MDE_CHECK_EQ(cols_.size(), schema_.num_columns());
  for (const auto& c : cols_) {
    MDE_CHECK(c != nullptr);
    MDE_CHECK_EQ(c->size, num_rows_);
  }
}

Row ColumnarTable::MaterializeRow(size_t i) const {
  Row r;
  r.reserve(cols_.size());
  for (const auto& c : cols_) r.push_back(c->ValueAt(i));
  return r;
}

Result<std::shared_ptr<const ColumnarTable>> ColumnarTable::FromTable(
    const Table& t) {
  return t.ToColumnar();
}

Table ColumnarTable::ToTable(std::shared_ptr<const ColumnarTable> cols) {
  return Table::FromColumnar(std::move(cols));
}

ColumnarTableBuilder::ColumnarTableBuilder(Schema schema)
    : schema_(std::move(schema)) {
  builders_.reserve(schema_.num_columns());
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    builders_.emplace_back(schema_.column(c).type);
  }
  prebuilt_.resize(schema_.num_columns());
}

void ColumnarTableBuilder::Reserve(size_t rows) {
  for (auto& b : builders_) b.Reserve(rows);
}

void ColumnarTableBuilder::SetColumn(size_t i,
                                     std::shared_ptr<const Column> col) {
  MDE_CHECK_LT(i, prebuilt_.size());
  MDE_CHECK(col != nullptr && col->type == schema_.column(i).type);
  prebuilt_[i] = std::move(col);
}

Result<std::shared_ptr<const ColumnarTable>> ColumnarTableBuilder::Finish() {
  std::vector<std::shared_ptr<const Column>> cols(builders_.size());
  size_t rows = 0;
  for (size_t c = 0; c < builders_.size(); ++c) {
    cols[c] = prebuilt_[c] != nullptr ? prebuilt_[c] : builders_[c].Finish();
    if (c == 0) {
      rows = cols[c]->size;
    } else if (cols[c]->size != rows) {
      return Status::InvalidArgument(
          "ColumnarTableBuilder: columns have unequal lengths");
    }
  }
  return std::make_shared<const ColumnarTable>(schema_, std::move(cols), rows);
}

}  // namespace mde::table
