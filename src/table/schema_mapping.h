#ifndef MDE_TABLE_SCHEMA_MAPPING_H_
#define MDE_TABLE_SCHEMA_MAPPING_H_

#include <functional>
#include <string>
#include <vector>

#include "table/table.h"
#include "util/status.h"

namespace mde::table {

/// A compiled schema mapping in the spirit of Clio / Clio++ (Section 2.2):
/// Splash users specify, per target column, where its value comes from in
/// the source relation — a renamed column, a cast, a constant, or a
/// computed expression — and the specification is compiled once into
/// per-row code that runs at every Monte Carlo repetition. Compilation
/// resolves all column references and type checks up front, so Apply() is
/// a straight loop.
class SchemaMapping {
 public:
  /// How one target column obtains its value.
  struct ColumnMapping {
    enum class Kind {
      /// Copy source column `source` unchanged (types must match).
      kCopy,
      /// Copy with a numeric cast between int64 and double.
      kCast,
      /// A fixed value for every row.
      kConstant,
      /// Arbitrary computed expression over the source row.
      kComputed,
    };
    std::string target;
    Kind kind = Kind::kCopy;
    /// Source column (kCopy / kCast).
    std::string source;
    /// Constant value (kConstant).
    Value constant;
    /// Row expression (kComputed); must produce the target type.
    std::function<Value(const Row&)> compute;
  };

  /// Compiles the mapping: resolves source columns against
  /// `source_schema`, checks types against `target_schema`, and rejects
  /// unmapped or doubly-mapped target columns.
  static Result<SchemaMapping> Compile(const Schema& source_schema,
                                       const Schema& target_schema,
                                       std::vector<ColumnMapping> mappings);

  /// Transforms a source table (must match the compiled source schema)
  /// into the target schema.
  Result<Table> Apply(const Table& source) const;

  const Schema& target_schema() const { return target_; }

 private:
  struct CompiledColumn {
    ColumnMapping::Kind kind;
    size_t source_index = 0;  // kCopy / kCast
    DataType target_type = DataType::kNull;
    Value constant;
    std::function<Value(const Row&)> compute;
  };

  SchemaMapping(Schema source, Schema target,
                std::vector<CompiledColumn> columns)
      : source_(std::move(source)),
        target_(std::move(target)),
        columns_(std::move(columns)) {}

  Schema source_;
  Schema target_;
  std::vector<CompiledColumn> columns_;
};

}  // namespace mde::table

#endif  // MDE_TABLE_SCHEMA_MAPPING_H_
