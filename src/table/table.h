#ifndef MDE_TABLE_TABLE_H_
#define MDE_TABLE_TABLE_H_

#include <string>
#include <vector>

#include "table/value.h"
#include "util/status.h"

namespace mde::table {

/// A named, typed column slot.
struct ColumnSpec {
  std::string name;
  DataType type;
};

/// Ordered set of named, typed columns.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnSpec> columns);

  size_t num_columns() const { return columns_.size(); }
  const ColumnSpec& column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnSpec>& columns() const { return columns_; }

  /// Index of `name`, or error if absent.
  Result<size_t> IndexOf(const std::string& name) const;
  bool Has(const std::string& name) const;

  /// Concatenation for join outputs; duplicate names from the right side are
  /// prefixed with `right_prefix` (e.g. "r.").
  static Schema Concat(const Schema& left, const Schema& right,
                       const std::string& right_prefix);

  bool operator==(const Schema& other) const;

  std::string ToString() const;

 private:
  std::vector<ColumnSpec> columns_;
};

using Row = std::vector<Value>;

/// Row-oriented in-memory relation. Acts as the storage substrate for the
/// MCDB / SimSQL / Indemics layers. Rows are append-only through the public
/// API; operators produce new tables.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema) : schema_(std::move(schema)) {}
  Table(Schema schema, std::vector<Row> rows);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return rows_.size(); }
  const Row& row(size_t i) const { return rows_[i]; }
  const std::vector<Row>& rows() const { return rows_; }

  /// Appends a row; aborts if arity mismatches the schema.
  void Append(Row row);

  /// Value at (row, named column); error if the column is absent.
  Result<Value> At(size_t row, const std::string& column) const;

  /// In-place mutation used by the simulation layers that model agent state
  /// as rows (Indemics node updates, SimSQL versions mutate copies).
  void Set(size_t row, size_t col, Value v);

  /// Pretty-printed preview of up to `max_rows` rows.
  std::string ToString(size_t max_rows = 20) const;

 private:
  Schema schema_;
  std::vector<Row> rows_;
};

}  // namespace mde::table

#endif  // MDE_TABLE_TABLE_H_
