#ifndef MDE_TABLE_TABLE_H_
#define MDE_TABLE_TABLE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "table/value.h"
#include "util/status.h"

namespace mde::table {

class ColumnarTable;
struct TableStats;

/// A named, typed column slot.
struct ColumnSpec {
  std::string name;
  DataType type;
};

/// Ordered set of named, typed columns. Name lookup is O(1) via an index
/// built at construction (IndexOf used to be a linear scan, which showed up
/// in every per-row hot loop that resolved columns late).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnSpec> columns);

  size_t num_columns() const { return columns_.size(); }
  const ColumnSpec& column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnSpec>& columns() const { return columns_; }

  /// Index of `name`, or error if absent.
  Result<size_t> IndexOf(const std::string& name) const;
  bool Has(const std::string& name) const;

  /// Concatenation for join outputs; duplicate names from the right side are
  /// prefixed with `right_prefix` (e.g. "r.").
  static Schema Concat(const Schema& left, const Schema& right,
                       const std::string& right_prefix);

  bool operator==(const Schema& other) const;

  std::string ToString() const;

 private:
  std::vector<ColumnSpec> columns_;
  std::unordered_map<std::string, size_t> index_;
};

using Row = std::vector<Value>;

/// Next value of the process-wide table content-version sequence. Every
/// Table starts at a fresh stamp and takes another on each mutation, so two
/// tables (or two mutation states of one table) never share a stamp unless
/// one was copied from the other unmutated.
uint64_t NextContentVersion();

/// In-memory relation. Rows are append-only through the public API;
/// operators produce new tables.
///
/// Storage: a Table is either row-backed (vector of boxed rows, as built by
/// Append) or columnar-backed — produced by the vectorized operator
/// pipeline (columnar.h / vec_ops.h), in which case it carries a shared
/// reference to the typed column blocks and materializes the boxed row view
/// LAZILY on first row access. The row API is thus a view/materialization
/// layer: pipelines that stay columnar (Query, plan execution, chained
/// operators) never pay for boxing. Lazy materialization mutates a cache
/// under const accessors, so a Table must not be shared across threads
/// while unmaterialized; the concurrent substrate is ColumnarTable, which
/// is immutable.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema) : schema_(std::move(schema)) {}
  Table(Schema schema, std::vector<Row> rows);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const;
  const Row& row(size_t i) const;
  const std::vector<Row>& rows() const;

  /// Appends a row; aborts if arity mismatches the schema. Detaches the
  /// columnar representation (the blocks are immutable).
  void Append(Row row);

  /// Pre-sizes the row storage (cardinality-estimate reserve in operators).
  void Reserve(size_t n);

  /// Value at (row, named column); error if the column is absent.
  Result<Value> At(size_t row, const std::string& column) const;

  /// In-place mutation used by the simulation layers that model agent state
  /// as rows (Indemics node updates, SimSQL versions mutate copies).
  void Set(size_t row, size_t col, Value v);

  /// The attached columnar representation, or nullptr for row-backed
  /// tables. ColumnarTable::FromTable uses this to make Table -> columnar
  /// conversion O(1) along the vectorized pipeline.
  const std::shared_ptr<const ColumnarTable>& columnar() const {
    return columnar_;
  }

  /// Converts to a columnar representation and caches it on the table, so
  /// repeated scans of the same base table (plan execution, Query) convert
  /// once. O(1) when already attached. Fails with FailedPrecondition if a
  /// cell's runtime type disagrees with its declared column type (such
  /// mixed-type tables stay on the row path). Mutates the cache under
  /// const — same single-thread caveat as lazy row materialization.
  Result<std::shared_ptr<const ColumnarTable>> ToColumnar() const;

  /// Wraps a columnar table; the boxed row view is built on first access.
  static Table FromColumnar(std::shared_ptr<const ColumnarTable> cols);

  /// Memoized per-column statistics (catalog.h). Computed on first
  /// Catalog::StatsFor call and dropped by any mutation, the same
  /// discipline as the cached columnar conversion. Same single-thread
  /// caveat: the cache mutates under const.
  const std::shared_ptr<const TableStats>& stats_cache() const {
    return stats_;
  }
  void set_stats_cache(std::shared_ptr<const TableStats> s) const {
    stats_ = std::move(s);
  }

  /// Content-version stamp: process-unique for this table's current
  /// contents. Copies share the stamp (contents are equal at copy time);
  /// any mutation (Append / Set) takes a fresh stamp, and tables wrapped
  /// from the same ColumnarTable share its stamp. The plan-fingerprint
  /// feedback key (cost.h) salts scans with this, so execution actuals
  /// recorded against one contents state can never poison cardinality
  /// estimates after the table mutates — even when the row count happens
  /// to stay the same (a Set-heavy chain transition, say).
  uint64_t content_version() const { return content_version_; }

  /// Pretty-printed preview of up to `max_rows` rows.
  std::string ToString(size_t max_rows = 20) const;

 private:
  /// Materializes rows_ from columnar_ if not yet done.
  void EnsureRows() const;

  Schema schema_;
  mutable std::vector<Row> rows_;
  /// Non-null while columnar-backed; rows_ empty until materialized (or the
  /// table has zero rows). Reset by any mutation; also a cache for
  /// ToColumnar on row-backed tables, hence mutable.
  mutable std::shared_ptr<const ColumnarTable> columnar_;
  /// Memoized statistics; reset together with columnar_ on mutation.
  mutable std::shared_ptr<const TableStats> stats_;
  /// See content_version().
  uint64_t content_version_ = NextContentVersion();
};

}  // namespace mde::table

#endif  // MDE_TABLE_TABLE_H_
