#include "table/plan.h"

#include <sstream>

#include "table/vec_ops.h"
#include "util/check.h"

namespace mde::table {

PlanPtr MakeNode(PlanNode&& node) {
  return std::make_shared<const PlanNode>(std::move(node));
}

PlanPtr PlanNode::Scan(const Table* table, std::string name) {
  MDE_CHECK(table != nullptr);
  PlanNode n;
  n.kind_ = Kind::kScan;
  n.table_ = table;
  n.name_ = std::move(name);
  return MakeNode(std::move(n));
}

PlanPtr PlanNode::Filter(PlanPtr child, std::vector<PlanPredicate> preds) {
  MDE_CHECK(child != nullptr);
  PlanNode n;
  n.kind_ = Kind::kFilter;
  n.child_ = std::move(child);
  n.preds_ = std::move(preds);
  return MakeNode(std::move(n));
}

PlanPtr PlanNode::Project(PlanPtr child, std::vector<std::string> columns) {
  MDE_CHECK(child != nullptr);
  PlanNode n;
  n.kind_ = Kind::kProject;
  n.child_ = std::move(child);
  n.columns_ = std::move(columns);
  return MakeNode(std::move(n));
}

PlanPtr PlanNode::Join(PlanPtr left, PlanPtr right,
                       std::vector<std::string> left_keys,
                       std::vector<std::string> right_keys) {
  MDE_CHECK(left != nullptr && right != nullptr);
  PlanNode n;
  n.kind_ = Kind::kJoin;
  n.left_ = std::move(left);
  n.right_ = std::move(right);
  n.left_keys_ = std::move(left_keys);
  n.right_keys_ = std::move(right_keys);
  return MakeNode(std::move(n));
}

Result<Schema> PlanNode::OutputSchema() const {
  switch (kind_) {
    case Kind::kScan:
      return table_->schema();
    case Kind::kFilter:
      return child_->OutputSchema();
    case Kind::kProject: {
      MDE_ASSIGN_OR_RETURN(Schema in, child_->OutputSchema());
      std::vector<ColumnSpec> cols;
      for (const auto& c : columns_) {
        MDE_ASSIGN_OR_RETURN(size_t idx, in.IndexOf(c));
        cols.push_back(in.column(idx));
      }
      return Schema(std::move(cols));
    }
    case Kind::kJoin: {
      MDE_ASSIGN_OR_RETURN(Schema l, left_->OutputSchema());
      MDE_ASSIGN_OR_RETURN(Schema r, right_->OutputSchema());
      return Schema::Concat(l, r, "r.");
    }
  }
  return Status::Internal("unknown plan node");
}

namespace {

/// Row-at-a-time executor, kept as the fallback for base tables that do not
/// convert to columnar form (mixed-type cells in a column).
Result<Table> ExecutePlanRows(const PlanPtr& plan, ExecutionStats* stats) {
  switch (plan->kind()) {
    case PlanNode::Kind::kScan: {
      if (stats != nullptr) stats->rows_scanned += plan->table()->num_rows();
      return *plan->table();
    }
    case PlanNode::Kind::kFilter: {
      MDE_ASSIGN_OR_RETURN(Table in, ExecutePlanRows(plan->child(), stats));
      Table out = in;
      for (const PlanPredicate& p : plan->predicates()) {
        MDE_ASSIGN_OR_RETURN(
            RowPredicate pred,
            ColumnCompare(out.schema(), p.column, p.op, p.literal));
        out = Filter(out, pred);
      }
      if (stats != nullptr) stats->intermediate_rows += out.num_rows();
      return out;
    }
    case PlanNode::Kind::kProject: {
      MDE_ASSIGN_OR_RETURN(Table in, ExecutePlanRows(plan->child(), stats));
      MDE_ASSIGN_OR_RETURN(Table out, Project(in, plan->columns()));
      if (stats != nullptr) stats->intermediate_rows += out.num_rows();
      return out;
    }
    case PlanNode::Kind::kJoin: {
      MDE_ASSIGN_OR_RETURN(Table l, ExecutePlanRows(plan->left(), stats));
      MDE_ASSIGN_OR_RETURN(Table r, ExecutePlanRows(plan->right(), stats));
      MDE_ASSIGN_OR_RETURN(
          Table out, HashJoin(l, r, plan->left_keys(), plan->right_keys()));
      if (stats != nullptr) stats->intermediate_rows += out.num_rows();
      return out;
    }
  }
  return Status::Internal("unknown plan node");
}

/// True when every base table of the plan converts to columnar form (the
/// conversions are cached on the tables, so this also warms repeated
/// executions of plans over the same base data).
bool ScansConvert(const PlanPtr& plan) {
  switch (plan->kind()) {
    case PlanNode::Kind::kScan:
      return plan->table()->ToColumnar().ok();
    case PlanNode::Kind::kFilter:
    case PlanNode::Kind::kProject:
      return ScansConvert(plan->child());
    case PlanNode::Kind::kJoin:
      return ScansConvert(plan->left()) && ScansConvert(plan->right());
  }
  return false;
}

/// Vectorized executor: batches of shared column blocks + selection vectors
/// flow between operators; nothing is materialized until the plan root.
/// Stats keep the row executor's semantics (scanned base rows, rows each
/// intermediate operator produced).
Result<ColumnarBatch> ExecBatch(const PlanPtr& plan, ExecutionStats* stats,
                                ThreadPool* pool) {
  switch (plan->kind()) {
    case PlanNode::Kind::kScan: {
      MDE_ASSIGN_OR_RETURN(auto cols, plan->table()->ToColumnar());
      if (stats != nullptr) stats->rows_scanned += cols->num_rows();
      return ColumnarBatch{std::move(cols), {}, true};
    }
    case PlanNode::Kind::kFilter: {
      MDE_ASSIGN_OR_RETURN(ColumnarBatch in,
                           ExecBatch(plan->child(), stats, pool));
      for (const PlanPredicate& p : plan->predicates()) {
        MDE_ASSIGN_OR_RETURN(
            SelVector sel,
            VecFilter(*in.cols, in.whole ? nullptr : &in.sel, p.column, p.op,
                      p.literal, pool));
        in.sel = std::move(sel);
        in.whole = false;
      }
      if (stats != nullptr) stats->intermediate_rows += in.size();
      return in;
    }
    case PlanNode::Kind::kProject: {
      MDE_ASSIGN_OR_RETURN(ColumnarBatch in,
                           ExecBatch(plan->child(), stats, pool));
      MDE_ASSIGN_OR_RETURN(ColumnarBatch out,
                           VecProject(in, plan->columns()));
      if (stats != nullptr) stats->intermediate_rows += out.size();
      return out;
    }
    case PlanNode::Kind::kJoin: {
      MDE_ASSIGN_OR_RETURN(ColumnarBatch l,
                           ExecBatch(plan->left(), stats, pool));
      MDE_ASSIGN_OR_RETURN(ColumnarBatch r,
                           ExecBatch(plan->right(), stats, pool));
      MDE_ASSIGN_OR_RETURN(
          auto cols,
          VecHashJoin(l, r, plan->left_keys(), plan->right_keys(), pool));
      if (stats != nullptr) stats->intermediate_rows += cols->num_rows();
      return ColumnarBatch{std::move(cols), {}, true};
    }
  }
  return Status::Internal("unknown plan node");
}

}  // namespace

Result<Table> ExecutePlan(const PlanPtr& plan, ExecutionStats* stats) {
  if (plan == nullptr) return Status::InvalidArgument("null plan");
  if (ScansConvert(plan)) {
    ThreadPool* pool = VecPool();
    MDE_ASSIGN_OR_RETURN(ColumnarBatch out, ExecBatch(plan, stats, pool));
    return BatchToTable(out, pool);
  }
  return ExecutePlanRows(plan, stats);
}

namespace {

/// Recursively optimizes, returning the rewritten subtree.
Result<PlanPtr> OptimizeRec(const PlanPtr& plan);

/// Attempts to sink `preds` into `node`. Predicates that cannot sink are
/// returned in `left_over` to be applied above `node`.
Result<PlanPtr> SinkPredicates(const PlanPtr& node,
                               std::vector<PlanPredicate> preds,
                               std::vector<PlanPredicate>* left_over) {
  if (preds.empty()) return node;
  switch (node->kind()) {
    case PlanNode::Kind::kFilter: {
      // Merge into the existing filter, then recurse below it.
      std::vector<PlanPredicate> merged = node->predicates();
      merged.insert(merged.end(), preds.begin(), preds.end());
      std::vector<PlanPredicate> deeper_left_over;
      MDE_ASSIGN_OR_RETURN(
          PlanPtr child,
          SinkPredicates(node->child(), merged, &deeper_left_over));
      if (deeper_left_over.empty()) return child;
      return PlanNode::Filter(child, std::move(deeper_left_over));
    }
    case PlanNode::Kind::kScan: {
      // Deepest point: apply all predicates here.
      return PlanNode::Filter(node, std::move(preds));
    }
    case PlanNode::Kind::kProject: {
      // A predicate slides below the projection iff its column survives
      // (projection only narrows columns, never renames).
      MDE_ASSIGN_OR_RETURN(Schema child_schema,
                           node->child()->OutputSchema());
      std::vector<PlanPredicate> sinkable, stuck;
      for (auto& p : preds) {
        (child_schema.Has(p.column) ? sinkable : stuck)
            .push_back(std::move(p));
      }
      // Columns removed by the projection cannot be referenced above it
      // either, so "stuck" predicates are errors; report them.
      if (!stuck.empty()) {
        return Status::InvalidArgument("predicate column not found: " +
                                       stuck[0].column);
      }
      std::vector<PlanPredicate> deeper;
      MDE_ASSIGN_OR_RETURN(PlanPtr child,
                           SinkPredicates(node->child(), sinkable, &deeper));
      if (!deeper.empty()) child = PlanNode::Filter(child, deeper);
      return PlanNode::Project(child, node->columns());
    }
    case PlanNode::Kind::kJoin: {
      MDE_ASSIGN_OR_RETURN(Schema ls, node->left()->OutputSchema());
      MDE_ASSIGN_OR_RETURN(Schema rs, node->right()->OutputSchema());
      std::vector<PlanPredicate> to_left, to_right;
      for (auto& p : preds) {
        if (ls.Has(p.column)) {
          to_left.push_back(std::move(p));
        } else if (rs.Has(p.column)) {
          // Unambiguous right-side column (possibly exposed as "r.x"
          // above the join, but referenced here by its base name).
          to_right.push_back(std::move(p));
        } else if (p.column.rfind("r.", 0) == 0 &&
                   rs.Has(p.column.substr(2))) {
          PlanPredicate stripped = std::move(p);
          stripped.column = stripped.column.substr(2);
          to_right.push_back(std::move(stripped));
        } else {
          left_over->push_back(std::move(p));
        }
      }
      std::vector<PlanPredicate> dummy_l, dummy_r;
      PlanPtr new_left = node->left();
      PlanPtr new_right = node->right();
      if (!to_left.empty()) {
        MDE_ASSIGN_OR_RETURN(new_left,
                             SinkPredicates(new_left, to_left, &dummy_l));
      }
      if (!to_right.empty()) {
        MDE_ASSIGN_OR_RETURN(new_right,
                             SinkPredicates(new_right, to_right, &dummy_r));
      }
      MDE_CHECK(dummy_l.empty() && dummy_r.empty());
      return PlanNode::Join(new_left, new_right, node->left_keys(),
                            node->right_keys());
    }
  }
  return Status::Internal("unknown plan node");
}

Result<PlanPtr> OptimizeRec(const PlanPtr& plan) {
  switch (plan->kind()) {
    case PlanNode::Kind::kScan:
      return plan;
    case PlanNode::Kind::kFilter: {
      MDE_ASSIGN_OR_RETURN(PlanPtr child, OptimizeRec(plan->child()));
      std::vector<PlanPredicate> left_over;
      MDE_ASSIGN_OR_RETURN(
          PlanPtr sunk,
          SinkPredicates(child, plan->predicates(), &left_over));
      if (left_over.empty()) return sunk;
      return PlanNode::Filter(sunk, std::move(left_over));
    }
    case PlanNode::Kind::kProject: {
      MDE_ASSIGN_OR_RETURN(PlanPtr child, OptimizeRec(plan->child()));
      return PlanNode::Project(child, plan->columns());
    }
    case PlanNode::Kind::kJoin: {
      MDE_ASSIGN_OR_RETURN(PlanPtr l, OptimizeRec(plan->left()));
      MDE_ASSIGN_OR_RETURN(PlanPtr r, OptimizeRec(plan->right()));
      return PlanNode::Join(l, r, plan->left_keys(), plan->right_keys());
    }
  }
  return Status::Internal("unknown plan node");
}

const char* CmpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

void ExplainRec(const PlanPtr& plan, int depth, std::ostringstream* os) {
  for (int i = 0; i < depth; ++i) *os << "  ";
  switch (plan->kind()) {
    case PlanNode::Kind::kScan:
      *os << "Scan(" << plan->name() << ")\n";
      break;
    case PlanNode::Kind::kFilter: {
      *os << "Filter(";
      for (size_t i = 0; i < plan->predicates().size(); ++i) {
        if (i > 0) *os << " AND ";
        const auto& p = plan->predicates()[i];
        *os << p.column << " " << CmpName(p.op) << " "
            << p.literal.ToString();
      }
      *os << ")\n";
      ExplainRec(plan->child(), depth + 1, os);
      break;
    }
    case PlanNode::Kind::kProject: {
      *os << "Project(";
      for (size_t i = 0; i < plan->columns().size(); ++i) {
        if (i > 0) *os << ", ";
        *os << plan->columns()[i];
      }
      *os << ")\n";
      ExplainRec(plan->child(), depth + 1, os);
      break;
    }
    case PlanNode::Kind::kJoin: {
      *os << "HashJoin(";
      for (size_t i = 0; i < plan->left_keys().size(); ++i) {
        if (i > 0) *os << ", ";
        *os << plan->left_keys()[i] << "=" << plan->right_keys()[i];
      }
      *os << ")\n";
      ExplainRec(plan->left(), depth + 1, os);
      ExplainRec(plan->right(), depth + 1, os);
      break;
    }
  }
}

}  // namespace

Result<PlanPtr> OptimizePlan(const PlanPtr& plan) {
  if (plan == nullptr) return Status::InvalidArgument("null plan");
  return OptimizeRec(plan);
}

std::string ExplainPlan(const PlanPtr& plan) {
  std::ostringstream os;
  ExplainRec(plan, 0, &os);
  return os.str();
}

}  // namespace mde::table
