#include "table/plan.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "obs/context.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "table/cost.h"
#include "table/optimizer.h"
#include "table/vec_ops.h"
#include "util/check.h"

namespace mde::table {

PlanPtr MakeNode(PlanNode&& node) {
  return std::make_shared<const PlanNode>(std::move(node));
}

PlanPtr PlanNode::Scan(const Table* table, std::string name) {
  MDE_CHECK(table != nullptr);
  PlanNode n;
  n.kind_ = Kind::kScan;
  n.table_ = table;
  n.name_ = std::move(name);
  return MakeNode(std::move(n));
}

PlanPtr PlanNode::Filter(PlanPtr child, std::vector<PlanPredicate> preds) {
  MDE_CHECK(child != nullptr);
  PlanNode n;
  n.kind_ = Kind::kFilter;
  n.child_ = std::move(child);
  n.preds_ = std::move(preds);
  return MakeNode(std::move(n));
}

PlanPtr PlanNode::Project(PlanPtr child, std::vector<std::string> columns) {
  MDE_CHECK(child != nullptr);
  PlanNode n;
  n.kind_ = Kind::kProject;
  n.child_ = std::move(child);
  n.columns_ = std::move(columns);
  return MakeNode(std::move(n));
}

PlanPtr PlanNode::ProjectAs(PlanPtr child, std::vector<std::string> columns,
                            std::vector<std::string> aliases) {
  MDE_CHECK(child != nullptr);
  MDE_CHECK_EQ(columns.size(), aliases.size());
  PlanNode n;
  n.kind_ = Kind::kProject;
  n.child_ = std::move(child);
  n.columns_ = std::move(columns);
  n.aliases_ = std::move(aliases);
  return MakeNode(std::move(n));
}

PlanPtr PlanNode::Join(PlanPtr left, PlanPtr right,
                       std::vector<std::string> left_keys,
                       std::vector<std::string> right_keys) {
  MDE_CHECK(left != nullptr && right != nullptr);
  PlanNode n;
  n.kind_ = Kind::kJoin;
  n.left_ = std::move(left);
  n.right_ = std::move(right);
  n.left_keys_ = std::move(left_keys);
  n.right_keys_ = std::move(right_keys);
  return MakeNode(std::move(n));
}

Result<Schema> PlanNode::OutputSchema() const {
  switch (kind_) {
    case Kind::kScan:
      return table_->schema();
    case Kind::kFilter:
      return child_->OutputSchema();
    case Kind::kProject: {
      MDE_ASSIGN_OR_RETURN(Schema in, child_->OutputSchema());
      std::vector<ColumnSpec> cols;
      for (size_t i = 0; i < columns_.size(); ++i) {
        MDE_ASSIGN_OR_RETURN(size_t idx, in.IndexOf(columns_[i]));
        cols.push_back(
            {aliases_.empty() ? columns_[i] : aliases_[i],
             in.column(idx).type});
      }
      return Schema(std::move(cols));
    }
    case Kind::kJoin: {
      MDE_ASSIGN_OR_RETURN(Schema l, left_->OutputSchema());
      MDE_ASSIGN_OR_RETURN(Schema r, right_->OutputSchema());
      return Schema::Concat(l, r, "r.");
    }
  }
  return Status::Internal("unknown plan node");
}

namespace {

using ProfileClock = std::chrono::steady_clock;

/// Opens a NodeProfile slot for the node about to execute and returns its
/// pre-order index. Profiles are appended node-first, then children (left
/// before right), so both executors assign identical indices to identical
/// tree positions.
size_t OpenProfile(ExecutionStats* stats) {
  const size_t index = stats->nodes.size();
  stats->nodes.emplace_back();
  return index;
}

Result<Table> ExecutePlanRows(const PlanPtr& plan, ExecutionStats* stats);

/// Row-at-a-time executor, kept as the fallback for base tables that do not
/// convert to columnar form (mixed-type cells in a column).
Result<Table> ExecutePlanRowsImpl(const PlanPtr& plan,
                                  ExecutionStats* stats) {
  switch (plan->kind()) {
    case PlanNode::Kind::kScan: {
      if (stats != nullptr) stats->rows_scanned += plan->table()->num_rows();
      return *plan->table();
    }
    case PlanNode::Kind::kFilter: {
      MDE_ASSIGN_OR_RETURN(Table in, ExecutePlanRows(plan->child(), stats));
      Table out = in;
      for (const PlanPredicate& p : plan->predicates()) {
        MDE_ASSIGN_OR_RETURN(
            RowPredicate pred,
            ColumnCompare(out.schema(), p.column, p.op, p.literal));
        out = Filter(out, pred);
      }
      if (stats != nullptr) stats->intermediate_rows += out.num_rows();
      return out;
    }
    case PlanNode::Kind::kProject: {
      MDE_ASSIGN_OR_RETURN(Table in, ExecutePlanRows(plan->child(), stats));
      MDE_ASSIGN_OR_RETURN(Table out, Project(in, plan->columns()));
      if (!plan->aliases().empty()) {
        std::vector<ColumnSpec> specs;
        specs.reserve(out.schema().num_columns());
        for (size_t i = 0; i < out.schema().num_columns(); ++i) {
          specs.push_back(
              {plan->aliases()[i], out.schema().column(i).type});
        }
        std::vector<Row> rows = out.rows();
        out = Table(Schema(std::move(specs)), std::move(rows));
      }
      if (stats != nullptr) stats->intermediate_rows += out.num_rows();
      return out;
    }
    case PlanNode::Kind::kJoin: {
      MDE_ASSIGN_OR_RETURN(Table l, ExecutePlanRows(plan->left(), stats));
      MDE_ASSIGN_OR_RETURN(Table r, ExecutePlanRows(plan->right(), stats));
      MDE_ASSIGN_OR_RETURN(
          Table out, HashJoin(l, r, plan->left_keys(), plan->right_keys()));
      if (stats != nullptr) stats->intermediate_rows += out.num_rows();
      return out;
    }
  }
  return Status::Internal("unknown plan node");
}

/// Profiling shim: times the node (inclusive of children) and records rows
/// out. Timing happens only when a stats sink was passed, and is write-only
/// side-band state — results never depend on it.
Result<Table> ExecutePlanRows(const PlanPtr& plan, ExecutionStats* stats) {
  if (stats == nullptr) return ExecutePlanRowsImpl(plan, stats);
  const size_t index = OpenProfile(stats);
  const auto t0 = ProfileClock::now();
  Result<Table> r = ExecutePlanRowsImpl(plan, stats);
  ExecutionStats::NodeProfile& prof = stats->nodes[index];
  prof.wall_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          ProfileClock::now() - t0)
          .count());
  prof.vectorized = false;
  prof.chunks = 0;
  if (r.ok()) prof.rows_out = r.value().num_rows();
  return r;
}

/// True when every base table of the plan converts to columnar form (the
/// conversions are cached on the tables, so this also warms repeated
/// executions of plans over the same base data).
bool ScansConvert(const PlanPtr& plan) {
  switch (plan->kind()) {
    case PlanNode::Kind::kScan:
      return plan->table()->ToColumnar().ok();
    case PlanNode::Kind::kFilter:
    case PlanNode::Kind::kProject:
      return ScansConvert(plan->child());
    case PlanNode::Kind::kJoin:
      return ScansConvert(plan->left()) && ScansConvert(plan->right());
  }
  return false;
}

Result<ColumnarBatch> ExecBatch(const PlanPtr& plan, ExecutionStats* stats,
                                ThreadPool* pool);

/// Vectorized executor: batches of shared column blocks + selection vectors
/// flow between operators; nothing is materialized until the plan root.
/// Stats keep the row executor's semantics (scanned base rows, rows each
/// intermediate operator produced).
Result<ColumnarBatch> ExecBatchImpl(const PlanPtr& plan,
                                    ExecutionStats* stats, ThreadPool* pool) {
  switch (plan->kind()) {
    case PlanNode::Kind::kScan: {
      MDE_ASSIGN_OR_RETURN(auto cols, plan->table()->ToColumnar());
      if (stats != nullptr) stats->rows_scanned += cols->num_rows();
      return ColumnarBatch{std::move(cols), {}, true};
    }
    case PlanNode::Kind::kFilter: {
      MDE_ASSIGN_OR_RETURN(ColumnarBatch in,
                           ExecBatch(plan->child(), stats, pool));
      for (const PlanPredicate& p : plan->predicates()) {
        MDE_ASSIGN_OR_RETURN(
            SelVector sel,
            VecFilter(*in.cols, in.whole ? nullptr : &in.sel, p.column, p.op,
                      p.literal, pool));
        in.sel = std::move(sel);
        in.whole = false;
      }
      if (stats != nullptr) stats->intermediate_rows += in.size();
      return in;
    }
    case PlanNode::Kind::kProject: {
      MDE_ASSIGN_OR_RETURN(ColumnarBatch in,
                           ExecBatch(plan->child(), stats, pool));
      MDE_ASSIGN_OR_RETURN(ColumnarBatch out,
                           VecProject(in, plan->columns()));
      if (!plan->aliases().empty()) {
        // Renaming projection: rewrap the same column blocks under the
        // alias schema — zero copies, zero row work.
        std::vector<ColumnSpec> specs;
        std::vector<std::shared_ptr<const Column>> ptrs;
        specs.reserve(out.cols->num_columns());
        ptrs.reserve(out.cols->num_columns());
        for (size_t i = 0; i < out.cols->num_columns(); ++i) {
          specs.push_back(
              {plan->aliases()[i], out.cols->schema().column(i).type});
          ptrs.push_back(out.cols->col_ptr(i));
        }
        out.cols = std::make_shared<const ColumnarTable>(
            Schema(std::move(specs)), std::move(ptrs),
            out.cols->num_rows());
      }
      if (stats != nullptr) stats->intermediate_rows += out.size();
      return out;
    }
    case PlanNode::Kind::kJoin: {
      MDE_ASSIGN_OR_RETURN(ColumnarBatch l,
                           ExecBatch(plan->left(), stats, pool));
      MDE_ASSIGN_OR_RETURN(ColumnarBatch r,
                           ExecBatch(plan->right(), stats, pool));
      MDE_ASSIGN_OR_RETURN(
          auto cols,
          VecHashJoin(l, r, plan->left_keys(), plan->right_keys(), pool));
      if (stats != nullptr) stats->intermediate_rows += cols->num_rows();
      return ColumnarBatch{std::move(cols), {}, true};
    }
  }
  return Status::Internal("unknown plan node");
}

/// Profiling shim for the vectorized path. The chunk count is derived from
/// the operator's input domain: the node's first child's output cardinality
/// (pre-order puts that child's profile at index + 1), or the scanned table
/// itself for leaves.
Result<ColumnarBatch> ExecBatch(const PlanPtr& plan, ExecutionStats* stats,
                                ThreadPool* pool) {
  if (stats == nullptr) return ExecBatchImpl(plan, stats, pool);
  const size_t index = OpenProfile(stats);
  const auto t0 = ProfileClock::now();
  Result<ColumnarBatch> r = ExecBatchImpl(plan, stats, pool);
  ExecutionStats::NodeProfile& prof = stats->nodes[index];
  prof.wall_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          ProfileClock::now() - t0)
          .count());
  prof.vectorized = true;
  if (r.ok()) prof.rows_out = r.value().size();
  const size_t in_rows = plan->kind() == PlanNode::Kind::kScan
                             ? prof.rows_out
                             : stats->nodes[index + 1].rows_out;
  prof.chunks = (in_rows + kVecGrain - 1) / kVecGrain;
  return r;
}

}  // namespace

namespace {

/// Post-execution bookkeeping for profiled runs: annotate each profile
/// with the cost model's estimate (computed from the catalog state the
/// optimizer saw — feedback from THIS run is folded in afterwards), then
/// record the actuals so the next run of the same (sub)plans estimates
/// from observation.
void FeedbackProfiledRun(const PlanPtr& plan, ExecutionStats* stats) {
  CostModel model;
  AnnotateEstimates(plan, model, stats);
  RecordActuals(plan, *stats);
}

}  // namespace

Result<Table> ExecutePlan(const PlanPtr& plan, ExecutionStats* stats) {
  if (plan == nullptr) return Status::InvalidArgument("null plan");
  // Root of per-query attribution: every span, row count, and cpu-ns below
  // here — on any pool thread — lands on this plan's fingerprint.
  MDE_OBS_QUERY_SCOPE("table.query",
                      obs::FingerprintString(PlanFingerprint(plan)));
  MDE_TRACE_SPAN("plan.execute");
  if (stats != nullptr) stats->nodes.clear();
  Result<Table> out = [&]() -> Result<Table> {
    if (ScansConvert(plan)) {
      ThreadPool* pool = VecPool();
      MDE_ASSIGN_OR_RETURN(ColumnarBatch batch, ExecBatch(plan, stats, pool));
      return BatchToTable(batch, pool);
    }
    MDE_OBS_COUNT("plan.fallback_to_row_path", 1);
    return ExecutePlanRows(plan, stats);
  }();
  if (out.ok() && stats != nullptr) FeedbackProfiledRun(plan, stats);
  return out;
}

namespace internal {

Result<Table> ExecutePlanRowPath(const PlanPtr& plan, ExecutionStats* stats) {
  if (plan == nullptr) return Status::InvalidArgument("null plan");
  if (stats != nullptr) stats->nodes.clear();
  Result<Table> out = ExecutePlanRows(plan, stats);
  if (out.ok() && stats != nullptr) FeedbackProfiledRun(plan, stats);
  return out;
}

}  // namespace internal

namespace {

const char* CmpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

/// Prints the operator label shared by EXPLAIN and EXPLAIN ANALYZE:
/// "Scan(name)", "Filter(a = 1 AND b < 2)", "Project(x, y)",
/// "HashJoin(k=k)".
void PrintNodeLabel(const PlanPtr& plan, std::ostringstream* os) {
  switch (plan->kind()) {
    case PlanNode::Kind::kScan:
      *os << "Scan(" << plan->name() << ")";
      break;
    case PlanNode::Kind::kFilter: {
      *os << "Filter(";
      for (size_t i = 0; i < plan->predicates().size(); ++i) {
        if (i > 0) *os << " AND ";
        const auto& p = plan->predicates()[i];
        *os << p.column << " " << CmpName(p.op) << " "
            << p.literal.ToString();
      }
      *os << ")";
      break;
    }
    case PlanNode::Kind::kProject: {
      *os << "Project(";
      for (size_t i = 0; i < plan->columns().size(); ++i) {
        if (i > 0) *os << ", ";
        *os << plan->columns()[i];
        if (!plan->aliases().empty() &&
            plan->aliases()[i] != plan->columns()[i]) {
          *os << " AS " << plan->aliases()[i];
        }
      }
      *os << ")";
      break;
    }
    case PlanNode::Kind::kJoin: {
      *os << "HashJoin(";
      for (size_t i = 0; i < plan->left_keys().size(); ++i) {
        if (i > 0) *os << ", ";
        *os << plan->left_keys()[i] << "=" << plan->right_keys()[i];
      }
      *os << ")";
      break;
    }
  }
}

void ExplainRec(const PlanPtr& plan, int depth, std::ostringstream* os) {
  for (int i = 0; i < depth; ++i) *os << "  ";
  PrintNodeLabel(plan, os);
  *os << "\n";
  switch (plan->kind()) {
    case PlanNode::Kind::kScan:
      break;
    case PlanNode::Kind::kFilter:
    case PlanNode::Kind::kProject:
      ExplainRec(plan->child(), depth + 1, os);
      break;
    case PlanNode::Kind::kJoin:
      ExplainRec(plan->left(), depth + 1, os);
      ExplainRec(plan->right(), depth + 1, os);
      break;
  }
}

std::string FormatNanos(double ns) {
  char buf[32];
  if (ns < 1e3) {
    std::snprintf(buf, sizeof(buf), "%.0fns", ns);
  } else if (ns < 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1fus", ns / 1e3);
  } else if (ns < 1e9) {
    std::snprintf(buf, sizeof(buf), "%.1fms", ns / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", ns / 1e9);
  }
  return buf;
}

size_t CountNodes(const PlanPtr& plan) {
  switch (plan->kind()) {
    case PlanNode::Kind::kScan:
      return 1;
    case PlanNode::Kind::kFilter:
    case PlanNode::Kind::kProject:
      return 1 + CountNodes(plan->child());
    case PlanNode::Kind::kJoin:
      return 1 + CountNodes(plan->left()) + CountNodes(plan->right());
  }
  return 1;
}

/// Sum of the children's inclusive wall times for the node whose profile
/// sits at `index` (children follow in pre-order, offset by subtree size).
double ChildrenInclusiveNs(const PlanPtr& plan, const ExecutionStats& stats,
                           size_t index) {
  double ns = 0.0;
  size_t ci = index + 1;
  auto add = [&](const PlanPtr& child) {
    if (ci < stats.nodes.size()) ns += stats.nodes[ci].wall_ns;
    ci += CountNodes(child);
  };
  switch (plan->kind()) {
    case PlanNode::Kind::kScan:
      break;
    case PlanNode::Kind::kFilter:
    case PlanNode::Kind::kProject:
      add(plan->child());
      break;
    case PlanNode::Kind::kJoin:
      add(plan->left());
      add(plan->right());
      break;
  }
  return ns;
}

/// Walks the tree in the executors' pre-order, consuming one profile per
/// node from `*next`. Renders actual rows next to the optimizer's
/// estimate (when the run was estimated), inclusive wall time, and self
/// time (inclusive minus children — where the time was actually spent).
void AnalyzeRec(const PlanPtr& plan, const ExecutionStats& stats, int depth,
                size_t* next, std::ostringstream* os) {
  for (int i = 0; i < depth; ++i) *os << "  ";
  PrintNodeLabel(plan, os);
  if (*next < stats.nodes.size()) {
    const size_t index = (*next)++;
    const ExecutionStats::NodeProfile& p = stats.nodes[index];
    *os << " [rows=" << p.rows_out;
    if (p.est_rows >= 0.0) {
      *os << " est=" << static_cast<long long>(std::llround(p.est_rows));
    }
    const double self_ns =
        std::max(0.0, p.wall_ns - ChildrenInclusiveNs(plan, stats, index));
    *os << " time=" << FormatNanos(p.wall_ns)
        << " self=" << FormatNanos(self_ns);
    if (p.vectorized) *os << " chunks=" << p.chunks;
    *os << (p.vectorized ? " vec]" : " row]");
  } else {
    *os << " [no profile]";
  }
  *os << "\n";
  switch (plan->kind()) {
    case PlanNode::Kind::kScan:
      break;
    case PlanNode::Kind::kFilter:
    case PlanNode::Kind::kProject:
      AnalyzeRec(plan->child(), stats, depth + 1, next, os);
      break;
    case PlanNode::Kind::kJoin:
      AnalyzeRec(plan->left(), stats, depth + 1, next, os);
      AnalyzeRec(plan->right(), stats, depth + 1, next, os);
      break;
  }
}

}  // namespace

Result<PlanPtr> OptimizePlan(const PlanPtr& plan) {
  return CostBasedOptimize(plan, OptimizerOptions{});
}

std::string ExplainPlan(const PlanPtr& plan) {
  std::ostringstream os;
  ExplainRec(plan, 0, &os);
  return os.str();
}

std::string ExplainAnalyze(const PlanPtr& plan, const ExecutionStats& stats) {
  std::ostringstream os;
  size_t next = 0;
  AnalyzeRec(plan, stats, 0, &next, &os);
  return os.str();
}

}  // namespace mde::table
