#include "table/ops.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "obs/context.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace mde::table {

bool EvalCmp(const Value& v, CmpOp op, const Value& lit) {
  switch (op) {
    case CmpOp::kEq:
      return v.Equals(lit);
    case CmpOp::kNe:
      return !v.Equals(lit);
    case CmpOp::kLt:
      return v.LessThan(lit);
    case CmpOp::kLe:
      return v.LessThan(lit) || v.Equals(lit);
    case CmpOp::kGt:
      return lit.LessThan(v);
    case CmpOp::kGe:
      return lit.LessThan(v) || v.Equals(lit);
  }
  return false;
}

Result<RowPredicate> ColumnCompare(const Schema& schema,
                                   const std::string& column, CmpOp op,
                                   Value literal) {
  MDE_ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(column));
  return RowPredicate([idx, op, lit = std::move(literal)](const Row& row) {
    const Value& v = row[idx];
    if (v.is_null() || lit.is_null()) return false;
    return EvalCmp(v, op, lit);
  });
}

RowPredicate And(RowPredicate a, RowPredicate b) {
  return [a = std::move(a), b = std::move(b)](const Row& r) {
    return a(r) && b(r);
  };
}

RowPredicate Or(RowPredicate a, RowPredicate b) {
  return [a = std::move(a), b = std::move(b)](const Row& r) {
    return a(r) || b(r);
  };
}

RowPredicate Not(RowPredicate a) {
  return [a = std::move(a)](const Row& r) { return !a(r); };
}

Table Filter(const Table& t, const RowPredicate& pred) {
  MDE_TRACE_SPAN("row.filter");
  MDE_OBS_COUNT("row.filter.rows_in", t.num_rows());
  MDE_OBS_ATTR_ADD(rows_in, t.num_rows());
  Table out(t.schema());
  out.Reserve(t.num_rows());
  for (const Row& r : t.rows()) {
    if (pred(r)) out.Append(r);
  }
  MDE_OBS_COUNT("row.filter.rows_out", out.num_rows());
  MDE_OBS_ATTR_ADD(rows_out, out.num_rows());
  return out;
}

Result<Table> Project(const Table& t,
                      const std::vector<std::string>& columns) {
  std::vector<size_t> idx;
  std::vector<ColumnSpec> cols;
  idx.reserve(columns.size());
  for (const auto& name : columns) {
    MDE_ASSIGN_OR_RETURN(size_t i, t.schema().IndexOf(name));
    idx.push_back(i);
    cols.push_back(t.schema().column(i));
  }
  Table out{Schema(std::move(cols))};
  out.Reserve(t.num_rows());
  for (const Row& r : t.rows()) {
    Row nr;
    nr.reserve(idx.size());
    for (size_t i : idx) nr.push_back(r[i]);
    out.Append(std::move(nr));
  }
  return out;
}

namespace {

struct KeyHash {
  size_t operator()(const std::vector<Value>& key) const {
    size_t h = 0x811c9dc5;
    for (const Value& v : key) h = h * 1099511628211ULL ^ v.Hash();
    return h;
  }
};

struct KeyEq {
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!(a[i] == b[i])) return false;
    }
    return true;
  }
};

std::vector<Value> ExtractKey(const Row& row, const std::vector<size_t>& idx) {
  std::vector<Value> key;
  key.reserve(idx.size());
  for (size_t i : idx) key.push_back(row[i]);
  return key;
}

}  // namespace

Result<Table> HashJoin(const Table& left, const Table& right,
                       const std::vector<std::string>& left_keys,
                       const std::vector<std::string>& right_keys) {
  MDE_TRACE_SPAN("row.hash_join");
  MDE_OBS_COUNT("row.hash_join.rows_in", left.num_rows() + right.num_rows());
  MDE_OBS_ATTR_ADD(rows_in, left.num_rows() + right.num_rows());
  if (left_keys.size() != right_keys.size() || left_keys.empty()) {
    return Status::InvalidArgument("join keys must be non-empty and paired");
  }
  std::vector<size_t> li, ri;
  for (const auto& k : left_keys) {
    MDE_ASSIGN_OR_RETURN(size_t i, left.schema().IndexOf(k));
    li.push_back(i);
  }
  for (const auto& k : right_keys) {
    MDE_ASSIGN_OR_RETURN(size_t i, right.schema().IndexOf(k));
    ri.push_back(i);
  }
  std::unordered_map<std::vector<Value>, std::vector<size_t>, KeyHash, KeyEq>
      index;
  index.reserve(right.num_rows());
  for (size_t r = 0; r < right.num_rows(); ++r) {
    std::vector<Value> key = ExtractKey(right.row(r), ri);
    bool has_null = false;
    for (const Value& v : key) has_null |= v.is_null();
    if (!has_null) index[std::move(key)].push_back(r);
  }
  Table out{Schema::Concat(left.schema(), right.schema(), "r.")};
  out.Reserve(left.num_rows());  // one-match-per-left-row estimate
  for (const Row& lrow : left.rows()) {
    std::vector<Value> key = ExtractKey(lrow, li);
    bool has_null = false;
    for (const Value& v : key) has_null |= v.is_null();
    if (has_null) continue;
    auto it = index.find(key);
    if (it == index.end()) continue;
    for (size_t r : it->second) {
      Row nr = lrow;
      const Row& rrow = right.row(r);
      nr.insert(nr.end(), rrow.begin(), rrow.end());
      out.Append(std::move(nr));
    }
  }
  MDE_OBS_COUNT("row.hash_join.rows_out", out.num_rows());
  MDE_OBS_ATTR_ADD(rows_out, out.num_rows());
  return out;
}

Table NestedLoopJoin(
    const Table& left, const Table& right,
    const std::function<bool(const Row&, const Row&)>& pred) {
  MDE_TRACE_SPAN("row.nested_loop_join");
  MDE_OBS_COUNT("row.nested_loop_join.rows_in",
                left.num_rows() + right.num_rows());
  MDE_OBS_ATTR_ADD(rows_in, left.num_rows() + right.num_rows());
  Table out{Schema::Concat(left.schema(), right.schema(), "r.")};
  for (const Row& lrow : left.rows()) {
    for (const Row& rrow : right.rows()) {
      if (pred(lrow, rrow)) {
        Row nr = lrow;
        nr.insert(nr.end(), rrow.begin(), rrow.end());
        out.Append(std::move(nr));
      }
    }
  }
  return out;
}

namespace {

struct AggState {
  size_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
};

}  // namespace

Result<Table> GroupBy(const Table& t, const std::vector<std::string>& keys,
                      const std::vector<AggSpec>& aggs) {
  MDE_TRACE_SPAN("row.group_by");
  MDE_OBS_COUNT("row.group_by.rows_in", t.num_rows());
  MDE_OBS_ATTR_ADD(rows_in, t.num_rows());
  std::vector<size_t> key_idx;
  for (const auto& k : keys) {
    MDE_ASSIGN_OR_RETURN(size_t i, t.schema().IndexOf(k));
    key_idx.push_back(i);
  }
  std::vector<size_t> agg_idx(aggs.size(), 0);
  for (size_t a = 0; a < aggs.size(); ++a) {
    if (aggs[a].kind != AggKind::kCount) {
      MDE_ASSIGN_OR_RETURN(size_t i, t.schema().IndexOf(aggs[a].column));
      const DataType dt = t.schema().column(i).type;
      if (dt != DataType::kInt64 && dt != DataType::kDouble) {
        return Status::InvalidArgument("aggregate over non-numeric column: " +
                                       aggs[a].column);
      }
      agg_idx[a] = i;
    }
  }

  std::unordered_map<std::vector<Value>, std::vector<AggState>, KeyHash,
                     KeyEq>
      groups;
  groups.reserve(std::min<size_t>(t.num_rows(), 1024));
  std::vector<std::vector<Value>> group_order;
  group_order.reserve(std::min<size_t>(t.num_rows(), 1024));
  for (const Row& r : t.rows()) {
    std::vector<Value> key = ExtractKey(r, key_idx);
    auto it = groups.find(key);
    if (it == groups.end()) {
      it = groups.emplace(key, std::vector<AggState>(aggs.size())).first;
      group_order.push_back(key);
    }
    for (size_t a = 0; a < aggs.size(); ++a) {
      AggState& st = it->second[a];
      if (aggs[a].kind == AggKind::kCount) {
        ++st.count;
        continue;
      }
      const Value& v = r[agg_idx[a]];
      if (v.is_null()) continue;
      const double x = v.AsDouble();
      ++st.count;
      st.sum += x;
      st.min = std::min(st.min, x);
      st.max = std::max(st.max, x);
    }
  }

  std::vector<ColumnSpec> out_cols;
  for (size_t i : key_idx) out_cols.push_back(t.schema().column(i));
  for (const auto& a : aggs) {
    DataType dt = a.kind == AggKind::kCount ? DataType::kInt64
                                            : DataType::kDouble;
    out_cols.push_back({a.as, dt});
  }
  Table out{Schema(std::move(out_cols))};
  out.Reserve(group_order.size());
  for (const auto& key : group_order) {
    const auto& states = groups[key];
    Row r = key;
    for (size_t a = 0; a < aggs.size(); ++a) {
      const AggState& st = states[a];
      switch (aggs[a].kind) {
        case AggKind::kCount:
          r.push_back(static_cast<int64_t>(st.count));
          break;
        case AggKind::kSum:
          r.push_back(st.sum);
          break;
        case AggKind::kAvg:
          r.push_back(st.count > 0 ? st.sum / static_cast<double>(st.count)
                                   : Value());
          break;
        case AggKind::kMin:
          r.push_back(st.count > 0 ? Value(st.min) : Value());
          break;
        case AggKind::kMax:
          r.push_back(st.count > 0 ? Value(st.max) : Value());
          break;
      }
    }
    out.Append(std::move(r));
  }
  MDE_OBS_COUNT("row.group_by.rows_out", out.num_rows());
  MDE_OBS_ATTR_ADD(rows_out, out.num_rows());
  return out;
}

Result<Table> OrderBy(const Table& t, const std::vector<std::string>& columns,
                      std::vector<bool> descending) {
  MDE_TRACE_SPAN("row.order_by");
  MDE_OBS_COUNT("row.order_by.rows_in", t.num_rows());
  MDE_OBS_ATTR_ADD(rows_in, t.num_rows());
  std::vector<size_t> idx;
  for (const auto& c : columns) {
    MDE_ASSIGN_OR_RETURN(size_t i, t.schema().IndexOf(c));
    idx.push_back(i);
  }
  if (descending.empty()) descending.assign(columns.size(), false);
  if (descending.size() != columns.size()) {
    return Status::InvalidArgument("descending flags arity mismatch");
  }
  std::vector<Row> rows = t.rows();
  std::stable_sort(rows.begin(), rows.end(),
                   [&](const Row& a, const Row& b) {
                     for (size_t k = 0; k < idx.size(); ++k) {
                       const Value& va = a[idx[k]];
                       const Value& vb = b[idx[k]];
                       if (va.LessThan(vb)) return !descending[k];
                       if (vb.LessThan(va)) return static_cast<bool>(descending[k]);
                     }
                     return false;
                   });
  return Table(t.schema(), std::move(rows));
}

Result<Table> Union(const Table& a, const Table& b) {
  if (!(a.schema() == b.schema())) {
    return Status::InvalidArgument("UNION schema mismatch: " +
                                   a.schema().ToString() + " vs " +
                                   b.schema().ToString());
  }
  Table out = a;
  out.Reserve(a.num_rows() + b.num_rows());
  for (const Row& r : b.rows()) out.Append(r);
  return out;
}

Table Distinct(const Table& t) {
  MDE_TRACE_SPAN("row.distinct");
  MDE_OBS_COUNT("row.distinct.rows_in", t.num_rows());
  MDE_OBS_ATTR_ADD(rows_in, t.num_rows());
  std::unordered_map<std::vector<Value>, bool, KeyHash, KeyEq> seen;
  seen.reserve(t.num_rows());
  Table out(t.schema());
  out.Reserve(t.num_rows());
  for (const Row& r : t.rows()) {
    if (seen.emplace(r, true).second) out.Append(r);
  }
  return out;
}

Table Limit(const Table& t, size_t n) {
  Table out(t.schema());
  out.Reserve(std::min(n, t.num_rows()));
  for (size_t i = 0; i < std::min(n, t.num_rows()); ++i) out.Append(t.row(i));
  return out;
}

Table WithColumn(const Table& t, const std::string& name, DataType type,
                 const std::function<Value(const Row&)>& fn) {
  std::vector<ColumnSpec> cols = t.schema().columns();
  cols.push_back({name, type});
  Table out{Schema(std::move(cols))};
  out.Reserve(t.num_rows());
  for (const Row& r : t.rows()) {
    Row nr = r;
    nr.push_back(fn(r));
    out.Append(std::move(nr));
  }
  return out;
}

Result<int64_t> CountRows(const Table& t) {
  return static_cast<int64_t>(t.num_rows());
}

Result<double> SumColumn(const Table& t, const std::string& column) {
  MDE_ASSIGN_OR_RETURN(size_t i, t.schema().IndexOf(column));
  double s = 0.0;
  for (const Row& r : t.rows()) {
    if (!r[i].is_null()) s += r[i].AsDouble();
  }
  return s;
}

Result<double> AvgColumn(const Table& t, const std::string& column) {
  MDE_ASSIGN_OR_RETURN(size_t i, t.schema().IndexOf(column));
  double s = 0.0;
  size_t n = 0;
  for (const Row& r : t.rows()) {
    if (!r[i].is_null()) {
      s += r[i].AsDouble();
      ++n;
    }
  }
  if (n == 0) return Status::FailedPrecondition("AVG over empty column");
  return s / static_cast<double>(n);
}

}  // namespace mde::table
