#include "table/query.h"

#include <numeric>

#include "obs/metrics.h"

namespace mde::table {

bool Query::EnsureColumnar() {
  if (columnar_) return true;
  auto cols = table_.ToColumnar();
  if (!cols.ok()) {
    // Mixed-type cells: stay on the row path.
    MDE_OBS_COUNT("table.fallback_to_row_path", 1);
    return false;
  }
  batch_.cols = std::move(cols).value();
  batch_.sel.clear();
  batch_.whole = true;
  columnar_ = true;
  table_ = Table();
  return true;
}

void Query::EnsureRowMode() {
  if (!columnar_) return;
  MDE_OBS_COUNT("table.row_mode_switches", 1);
  table_ = BatchToTable(batch_, VecPool());
  batch_ = ColumnarBatch{};
  columnar_ = false;
}

Query& Query::Where(const std::string& column, CmpOp op, Value literal) {
  if (!status_.ok()) return *this;
  if (EnsureColumnar()) {
    auto sel = VecFilter(*batch_.cols, batch_.whole ? nullptr : &batch_.sel,
                         column, op, literal, VecPool());
    if (!sel.ok()) {
      status_ = sel.status();
      return *this;
    }
    batch_.sel = std::move(sel).value();
    batch_.whole = false;
    return *this;
  }
  auto pred = ColumnCompare(table_.schema(), column, op, std::move(literal));
  if (!pred.ok()) {
    status_ = pred.status();
    return *this;
  }
  table_ = Filter(table_, pred.value());
  return *this;
}

Query& Query::WherePred(RowPredicate pred) {
  if (!status_.ok()) return *this;
  EnsureRowMode();
  table_ = Filter(table_, pred);
  return *this;
}

Query& Query::Select(std::vector<std::string> columns) {
  if (!status_.ok()) return *this;
  if (EnsureColumnar()) {
    auto res = VecProject(batch_, columns);
    if (!res.ok()) {
      status_ = res.status();
      return *this;
    }
    batch_ = std::move(res).value();
    return *this;
  }
  auto res = Project(table_, columns);
  if (!res.ok()) {
    status_ = res.status();
    return *this;
  }
  table_ = std::move(res).value();
  return *this;
}

Query& Query::Join(const Table& right, std::vector<std::string> left_keys,
                   std::vector<std::string> right_keys) {
  if (!status_.ok()) return *this;
  auto right_cols = right.ToColumnar();
  if (right_cols.ok() && EnsureColumnar()) {
    ColumnarBatch rb{std::move(right_cols).value(), {}, true};
    auto res =
        VecHashJoin(batch_, rb, left_keys, right_keys, VecPool());
    if (!res.ok()) {
      status_ = res.status();
      return *this;
    }
    batch_ = ColumnarBatch{std::move(res).value(), {}, true};
    return *this;
  }
  EnsureRowMode();
  auto res = HashJoin(table_, right, left_keys, right_keys);
  if (!res.ok()) {
    status_ = res.status();
    return *this;
  }
  table_ = std::move(res).value();
  return *this;
}

Query& Query::GroupByAgg(std::vector<std::string> keys,
                         std::vector<AggSpec> aggs) {
  if (!status_.ok()) return *this;
  if (EnsureColumnar()) {
    auto res = VecGroupBy(batch_, keys, aggs, VecPool());
    if (!res.ok()) {
      status_ = res.status();
      return *this;
    }
    batch_ = ColumnarBatch{std::move(res).value(), {}, true};
    return *this;
  }
  auto res = GroupBy(table_, keys, aggs);
  if (!res.ok()) {
    status_ = res.status();
    return *this;
  }
  table_ = std::move(res).value();
  return *this;
}

Query& Query::CountStar(const std::string& as) {
  return GroupByAgg({}, {{AggKind::kCount, "", as}});
}

Query& Query::OrderByAsc(std::vector<std::string> columns) {
  if (!status_.ok()) return *this;
  if (EnsureColumnar()) {
    auto res = VecOrderBy(batch_, columns, {});
    if (!res.ok()) {
      status_ = res.status();
      return *this;
    }
    batch_.sel = std::move(res).value();
    batch_.whole = false;
    return *this;
  }
  auto res = OrderBy(table_, columns);
  if (!res.ok()) {
    status_ = res.status();
    return *this;
  }
  table_ = std::move(res).value();
  return *this;
}

Query& Query::OrderByDesc(std::vector<std::string> columns) {
  if (!status_.ok()) return *this;
  std::vector<bool> desc(columns.size(), true);
  if (EnsureColumnar()) {
    auto res = VecOrderBy(batch_, columns, desc);
    if (!res.ok()) {
      status_ = res.status();
      return *this;
    }
    batch_.sel = std::move(res).value();
    batch_.whole = false;
    return *this;
  }
  auto res = OrderBy(table_, columns, desc);
  if (!res.ok()) {
    status_ = res.status();
    return *this;
  }
  table_ = std::move(res).value();
  return *this;
}

Query& Query::Limit(size_t n) {
  if (!status_.ok()) return *this;
  if (EnsureColumnar()) {
    const size_t keep = std::min(n, batch_.size());
    if (batch_.whole) {
      batch_.sel.resize(keep);
      std::iota(batch_.sel.begin(), batch_.sel.end(), 0);
      batch_.whole = false;
    } else {
      batch_.sel.resize(keep);
    }
    return *this;
  }
  table_ = table::Limit(table_, n);
  return *this;
}

Query& Query::Distinct() {
  if (!status_.ok()) return *this;
  if (EnsureColumnar()) {
    batch_.sel = VecDistinct(batch_);
    batch_.whole = false;
    return *this;
  }
  table_ = table::Distinct(table_);
  return *this;
}

Query& Query::With(const std::string& name, DataType type,
                   std::function<Value(const Row&)> fn) {
  if (!status_.ok()) return *this;
  EnsureRowMode();
  table_ = WithColumn(table_, name, type, fn);
  return *this;
}

Result<Table> Query::Execute() {
  if (!status_.ok()) return status_;
  if (columnar_) return BatchToTable(batch_, VecPool());
  return std::move(table_);
}

Result<Value> Query::ExecuteScalar() {
  MDE_ASSIGN_OR_RETURN(Table t, Execute());
  if (t.num_rows() != 1 || t.schema().num_columns() != 1) {
    return Status::FailedPrecondition(
        "ExecuteScalar requires a 1x1 result, got " + t.schema().ToString());
  }
  return t.row(0)[0];
}

}  // namespace mde::table
