#include "table/query.h"

namespace mde::table {

Query& Query::Where(const std::string& column, CmpOp op, Value literal) {
  if (!status_.ok()) return *this;
  auto pred = ColumnCompare(table_.schema(), column, op, std::move(literal));
  if (!pred.ok()) {
    status_ = pred.status();
    return *this;
  }
  table_ = Filter(table_, pred.value());
  return *this;
}

Query& Query::WherePred(RowPredicate pred) {
  if (!status_.ok()) return *this;
  table_ = Filter(table_, pred);
  return *this;
}

Query& Query::Select(std::vector<std::string> columns) {
  if (!status_.ok()) return *this;
  auto res = Project(table_, columns);
  if (!res.ok()) {
    status_ = res.status();
    return *this;
  }
  table_ = std::move(res).value();
  return *this;
}

Query& Query::Join(const Table& right, std::vector<std::string> left_keys,
                   std::vector<std::string> right_keys) {
  if (!status_.ok()) return *this;
  auto res = HashJoin(table_, right, left_keys, right_keys);
  if (!res.ok()) {
    status_ = res.status();
    return *this;
  }
  table_ = std::move(res).value();
  return *this;
}

Query& Query::GroupByAgg(std::vector<std::string> keys,
                         std::vector<AggSpec> aggs) {
  if (!status_.ok()) return *this;
  auto res = GroupBy(table_, keys, aggs);
  if (!res.ok()) {
    status_ = res.status();
    return *this;
  }
  table_ = std::move(res).value();
  return *this;
}

Query& Query::CountStar(const std::string& as) {
  return GroupByAgg({}, {{AggKind::kCount, "", as}});
}

Query& Query::OrderByAsc(std::vector<std::string> columns) {
  if (!status_.ok()) return *this;
  auto res = OrderBy(table_, columns);
  if (!res.ok()) {
    status_ = res.status();
    return *this;
  }
  table_ = std::move(res).value();
  return *this;
}

Query& Query::OrderByDesc(std::vector<std::string> columns) {
  if (!status_.ok()) return *this;
  std::vector<bool> desc(columns.size(), true);
  auto res = OrderBy(table_, columns, desc);
  if (!res.ok()) {
    status_ = res.status();
    return *this;
  }
  table_ = std::move(res).value();
  return *this;
}

Query& Query::Limit(size_t n) {
  if (!status_.ok()) return *this;
  table_ = table::Limit(table_, n);
  return *this;
}

Query& Query::Distinct() {
  if (!status_.ok()) return *this;
  table_ = table::Distinct(table_);
  return *this;
}

Query& Query::With(const std::string& name, DataType type,
                   std::function<Value(const Row&)> fn) {
  if (!status_.ok()) return *this;
  table_ = WithColumn(table_, name, type, fn);
  return *this;
}

Result<Table> Query::Execute() {
  if (!status_.ok()) return status_;
  return std::move(table_);
}

Result<Value> Query::ExecuteScalar() {
  MDE_ASSIGN_OR_RETURN(Table t, Execute());
  if (t.num_rows() != 1 || t.schema().num_columns() != 1) {
    return Status::FailedPrecondition(
        "ExecuteScalar requires a 1x1 result, got " + t.schema().ToString());
  }
  return t.row(0)[0];
}

}  // namespace mde::table
