#ifndef MDE_TABLE_VALUE_H_
#define MDE_TABLE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace mde::table {

/// Column data types supported by the engine.
enum class DataType {
  kNull,
  kBool,
  kInt64,
  kDouble,
  kString,
};

const char* DataTypeName(DataType t);

/// A single cell. Null is represented by std::monostate. Numeric
/// comparisons coerce int64 <-> double so mixed-type predicates behave the
/// way SQL users expect.
class Value {
 public:
  Value() : v_(std::monostate{}) {}
  Value(bool b) : v_(b) {}                     // NOLINT(runtime/explicit)
  Value(int64_t i) : v_(i) {}                  // NOLINT
  Value(int i) : v_(static_cast<int64_t>(i)) {}  // NOLINT
  Value(double d) : v_(d) {}                   // NOLINT
  Value(std::string s) : v_(std::move(s)) {}   // NOLINT
  Value(const char* s) : v_(std::string(s)) {}  // NOLINT

  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  DataType type() const;

  /// Typed accessors; abort if the cell holds a different type.
  bool AsBool() const;
  int64_t AsInt() const;
  /// Numeric accessor: returns the value as double for both int64 and
  /// double cells.
  double AsDouble() const;
  const std::string& AsString() const;

  /// SQL-style three-valued-ish equality: null equals nothing (including
  /// null) under Equals(); operator== is strict variant equality for use in
  /// hashing/containers.
  bool Equals(const Value& other) const;
  bool operator==(const Value& other) const { return v_ == other.v_; }

  /// Total order for sorting: null < bool < numeric < string; numerics
  /// compare by value across int/double.
  bool LessThan(const Value& other) const;

  std::string ToString() const;

  /// Hash compatible with Equals() on non-null values (numerics hash by
  /// double value).
  size_t Hash() const;

 private:
  std::variant<std::monostate, bool, int64_t, double, std::string> v_;
};

}  // namespace mde::table

#endif  // MDE_TABLE_VALUE_H_
