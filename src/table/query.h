#ifndef MDE_TABLE_QUERY_H_
#define MDE_TABLE_QUERY_H_

#include <string>
#include <vector>

#include "table/ops.h"
#include "table/table.h"
#include "table/vec_ops.h"
#include "util/status.h"

namespace mde::table {

/// Fluent, SQL-flavoured query builder over Tables. Errors (unknown column,
/// schema mismatch) are deferred: the first failure poisons the chain and is
/// reported by Execute(). Example (the paper's Algorithm 1 condition):
///
///   auto n = Query(person)
///                .Where("age", CmpOp::kLe, 4)
///                .Join(infected, {"pid"}, {"pid"})
///                .CountStar("n_infected_preschool")
///                .Execute();
///
/// Execution: the chain runs on the vectorized columnar operators
/// (vec_ops.h) whenever the input converts to columnar form — structured
/// steps (Where/Select/Join/GroupByAgg/OrderBy/Limit/Distinct) then pass
/// selection vectors between kernels and only materialize at Execute().
/// Steps taking opaque row lambdas (WherePred, With) and inputs with
/// mixed-type columns fall back to the row-at-a-time operators; both paths
/// produce identical tables.
class Query {
 public:
  explicit Query(Table input) : table_(std::move(input)) {}

  /// sigma: column <op> literal.
  Query& Where(const std::string& column, CmpOp op, Value literal);
  /// sigma with an arbitrary predicate (sees the current schema's rows).
  Query& WherePred(RowPredicate pred);
  /// pi.
  Query& Select(std::vector<std::string> columns);
  /// Equi hash join against `right`.
  Query& Join(const Table& right, std::vector<std::string> left_keys,
              std::vector<std::string> right_keys);
  /// gamma: group by keys with aggregates.
  Query& GroupByAgg(std::vector<std::string> keys, std::vector<AggSpec> aggs);
  /// Global COUNT(*) named `as` — produces a 1x1 table.
  Query& CountStar(const std::string& as);
  Query& OrderByAsc(std::vector<std::string> columns);
  Query& OrderByDesc(std::vector<std::string> columns);
  Query& Limit(size_t n);
  Query& Distinct();
  /// Appends a computed column.
  Query& With(const std::string& name, DataType type,
              std::function<Value(const Row&)> fn);

  /// Runs the accumulated pipeline.
  Result<Table> Execute();

  /// Convenience: Execute and return the single scalar cell of a 1x1 result.
  Result<Value> ExecuteScalar();

 private:
  /// Switches to columnar mode if possible (no-op if already there).
  /// Returns false when the input only works row-at-a-time.
  bool EnsureColumnar();
  /// Materializes the pending batch back into table_ for row-only steps.
  void EnsureRowMode();

  Table table_;          // row-mode state (valid when !columnar_)
  ColumnarBatch batch_;  // columnar-mode state (valid when columnar_)
  bool columnar_ = false;
  Status status_;
};

}  // namespace mde::table

#endif  // MDE_TABLE_QUERY_H_
