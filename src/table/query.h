#ifndef MDE_TABLE_QUERY_H_
#define MDE_TABLE_QUERY_H_

#include <string>
#include <vector>

#include "table/ops.h"
#include "table/table.h"
#include "util/status.h"

namespace mde::table {

/// Fluent, SQL-flavoured query builder over Tables. Errors (unknown column,
/// schema mismatch) are deferred: the first failure poisons the chain and is
/// reported by Execute(). Example (the paper's Algorithm 1 condition):
///
///   auto n = Query(person)
///                .Where("age", CmpOp::kLe, 4)
///                .Join(infected, {"pid"}, {"pid"})
///                .CountStar("n_infected_preschool")
///                .Execute();
class Query {
 public:
  explicit Query(Table input) : table_(std::move(input)) {}

  /// sigma: column <op> literal.
  Query& Where(const std::string& column, CmpOp op, Value literal);
  /// sigma with an arbitrary predicate (sees the current schema's rows).
  Query& WherePred(RowPredicate pred);
  /// pi.
  Query& Select(std::vector<std::string> columns);
  /// Equi hash join against `right`.
  Query& Join(const Table& right, std::vector<std::string> left_keys,
              std::vector<std::string> right_keys);
  /// gamma: group by keys with aggregates.
  Query& GroupByAgg(std::vector<std::string> keys, std::vector<AggSpec> aggs);
  /// Global COUNT(*) named `as` — produces a 1x1 table.
  Query& CountStar(const std::string& as);
  Query& OrderByAsc(std::vector<std::string> columns);
  Query& OrderByDesc(std::vector<std::string> columns);
  Query& Limit(size_t n);
  Query& Distinct();
  /// Appends a computed column.
  Query& With(const std::string& name, DataType type,
              std::function<Value(const Row&)> fn);

  /// Runs the accumulated pipeline.
  Result<Table> Execute();

  /// Convenience: Execute and return the single scalar cell of a 1x1 result.
  Result<Value> ExecuteScalar();

 private:
  Table table_;
  Status status_;
};

}  // namespace mde::table

#endif  // MDE_TABLE_QUERY_H_
