#ifndef MDE_TABLE_OPS_H_
#define MDE_TABLE_OPS_H_

#include <functional>
#include <string>
#include <vector>

#include "table/table.h"
#include "util/status.h"

namespace mde::table {

/// Row predicate bound to a schema at build time so evaluation is a plain
/// index lookup.
using RowPredicate = std::function<bool(const Row&)>;

/// Comparison operators for column predicates.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// Evaluates `v <op> lit` with the Value comparison semantics shared by the
/// row and vectorized paths (numeric coercion through double, cross-type
/// ranking). Nulls are the caller's concern: a predicate over a null value
/// or literal is false before this is consulted.
bool EvalCmp(const Value& v, CmpOp op, const Value& lit);

/// Builds a predicate `column <op> literal` resolved against `schema`.
Result<RowPredicate> ColumnCompare(const Schema& schema,
                                   const std::string& column, CmpOp op,
                                   Value literal);

/// Conjunction / disjunction / negation combinators.
RowPredicate And(RowPredicate a, RowPredicate b);
RowPredicate Or(RowPredicate a, RowPredicate b);
RowPredicate Not(RowPredicate a);

/// sigma_p(t): rows of `t` satisfying `pred`.
Table Filter(const Table& t, const RowPredicate& pred);

/// pi_cols(t): named-column projection (errors on unknown columns).
Result<Table> Project(const Table& t, const std::vector<std::string>& columns);

/// Equi-join on left.column == right.column pairs using a hash table built
/// over the right input. Output schema is Concat(left, right, "r.").
Result<Table> HashJoin(const Table& left, const Table& right,
                       const std::vector<std::string>& left_keys,
                       const std::vector<std::string>& right_keys);

/// General theta-join: `pred` sees the concatenated row. O(n*m); used where
/// the join condition is not an equality (e.g. spatial nearness in the ABS
/// self-join before grid partitioning is applied).
Table NestedLoopJoin(const Table& left, const Table& right,
                     const std::function<bool(const Row&, const Row&)>& pred);

/// Aggregate function kinds for GroupBy.
enum class AggKind { kCount, kSum, kAvg, kMin, kMax };

/// One aggregate: `kind` over `column` (column ignored for kCount), output
/// column named `as`.
struct AggSpec {
  AggKind kind;
  std::string column;
  std::string as;
};

/// Hash group-by with the given key columns (may be empty: global
/// aggregate). Aggregate inputs must be numeric (except kCount).
Result<Table> GroupBy(const Table& t, const std::vector<std::string>& keys,
                      const std::vector<AggSpec>& aggs);

/// Sorts by the given columns ascending (descending when the matching
/// entry of `descending` is true; `descending` may be empty = all
/// ascending). Stable.
Result<Table> OrderBy(const Table& t, const std::vector<std::string>& columns,
                      std::vector<bool> descending = {});

/// Bag union; schemas must match exactly.
Result<Table> Union(const Table& a, const Table& b);

/// Removes duplicate rows (strict variant equality).
Table Distinct(const Table& t);

/// First `n` rows.
Table Limit(const Table& t, size_t n);

/// Appends a computed column `name` of type `type` produced by `fn`.
Table WithColumn(const Table& t, const std::string& name, DataType type,
                 const std::function<Value(const Row&)>& fn);

/// Scalar helpers used by the simulation layers.
Result<int64_t> CountRows(const Table& t);
Result<double> SumColumn(const Table& t, const std::string& column);
Result<double> AvgColumn(const Table& t, const std::string& column);

}  // namespace mde::table

#endif  // MDE_TABLE_OPS_H_
