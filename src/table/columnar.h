#ifndef MDE_TABLE_COLUMNAR_H_
#define MDE_TABLE_COLUMNAR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "table/table.h"
#include "table/value.h"
#include "util/aligned.h"
#include "util/status.h"

namespace mde::table {

/// One typed column block: the values of a single column for every row of a
/// ColumnarTable, stored as a contiguous typed vector instead of boxed
/// `Value` variants. Strings are dictionary-encoded (codes into an interned,
/// first-appearance-ordered dictionary shared across derived tables), and
/// nulls live in a packed 64-bit validity bitmap (empty bitmap = no nulls).
///
/// Fields are public on purpose: the vectorized kernels in vec_ops.cc are
/// tight loops over these vectors, in the same SoA spirit as
/// mcdb::BundleTable's stochastic blocks.
struct Column {
  DataType type = DataType::kNull;
  size_t size = 0;

  /// Exactly one of these carries data, selected by `type`. The blocks are
  /// 64-byte aligned (AlignedVector) so the SIMD kernel layer's widest loads
  /// start cache-line aligned and a 64-row bitmap word always covers one
  /// cache line of doubles.
  AlignedVector<int64_t> i64;  // kInt64
  AlignedVector<double> f64;   // kDouble
  AlignedVector<uint8_t> b8;   // kBool (0/1)
  /// kString: codes[i] indexes *dict. The dictionary is deduplicated
  /// (interned), ordered by first appearance, and shared by shared_ptr so
  /// projections / joins / compactions reuse it at zero cost.
  AlignedVector<uint32_t> codes;
  std::shared_ptr<const std::vector<std::string>> dict;

  /// Packed validity bitmap: bit i set = row i non-null. Empty means every
  /// row is valid. Padding bits of the last word are zero.
  AlignedVector<uint64_t> valid;

  bool IsValid(size_t i) const {
    return valid.empty() || ((valid[i >> 6] >> (i & 63)) & 1u);
  }

  /// Boxes row i back into a Value (null-aware). Materialization path only;
  /// kernels read the typed vectors directly.
  Value ValueAt(size_t i) const;

  const std::string& StringAt(size_t i) const { return (*dict)[codes[i]]; }
};

/// Append-oriented builder for one column. Interns strings and tracks the
/// validity bitmap lazily (no bitmap is allocated until the first null).
class ColumnBuilder {
 public:
  explicit ColumnBuilder(DataType type);

  void Reserve(size_t n);
  size_t size() const { return col_.size; }

  void AppendNull();
  void AppendInt64(int64_t v);
  void AppendDouble(double v);
  void AppendBool(bool v);
  void AppendString(const std::string& v);
  /// Checked boxed append: null always accepted; otherwise the Value's type
  /// must equal the column type. Returns false on type mismatch.
  bool AppendValue(const Value& v);

  /// Finalizes (pads/shrinks the bitmap) and returns the column.
  std::shared_ptr<const Column> Finish();

 private:
  void MarkValid();
  void MarkNull();

  Column col_;
  std::shared_ptr<std::vector<std::string>> dict_;
  std::unordered_map<std::string, uint32_t> interned_;
  bool has_nulls_ = false;
};

/// Wraps a freshly built column block with `table.columnar` memory-pool
/// accounting (obs/mem.h): its directly-owned footprint is recorded as
/// allocated now and as freed when the last owner drops the block. Used by
/// ColumnBuilder::Finish and the vectorized operators' gather path; under
/// MDE_OBS_DISABLED this is a pass-through.
std::shared_ptr<const Column> AccountColumnBlock(std::shared_ptr<Column> col);

/// Column-oriented relation: the storage representation behind the
/// vectorized operator suite (vec_ops.h). Schemas are identical to Table
/// schemas; `FromTable` / `ToTable` convert between the two, and Table keeps
/// a shared_ptr back to the ColumnarTable it was materialized from so the
/// conversion is O(1) for tables produced by the columnar pipeline.
class ColumnarTable {
 public:
  ColumnarTable(Schema schema, std::vector<std::shared_ptr<const Column>> cols,
                size_t num_rows);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return cols_.size(); }
  /// Content-version stamp drawn from the same process-wide sequence as
  /// Table::content_version(); every Table wrapped over these blocks
  /// reports it, so repeated wraps share plan feedback (cost.h).
  uint64_t content_version() const { return content_version_; }
  const Column& col(size_t i) const { return *cols_[i]; }
  const std::shared_ptr<const Column>& col_ptr(size_t i) const {
    return cols_[i];
  }

  /// Boxes row i (materialization path).
  Row MaterializeRow(size_t i) const;

  /// Converts a row table. Returns the attached columnar representation in
  /// O(1) when the table was produced by the columnar pipeline. Fails with
  /// FailedPrecondition when some cell's runtime type disagrees with the
  /// declared column type (mixed-type columns stay on the row path).
  static Result<std::shared_ptr<const ColumnarTable>> FromTable(
      const Table& t);

  /// Materializes a row Table that keeps `cols` attached as its columnar
  /// representation (rows are built lazily on first row access).
  static Table ToTable(std::shared_ptr<const ColumnarTable> cols);

 private:
  Schema schema_;
  std::vector<std::shared_ptr<const Column>> cols_;
  size_t num_rows_ = 0;
  uint64_t content_version_ = NextContentVersion();
};

/// Builds a ColumnarTable column-by-column. Columns may be appended
/// independently (e.g. bulk-filled from a typed vector) or row-wise; Finish
/// checks that all columns have the same length.
class ColumnarTableBuilder {
 public:
  explicit ColumnarTableBuilder(Schema schema);

  void Reserve(size_t rows);
  ColumnBuilder& column(size_t i) { return builders_[i]; }
  size_t num_columns() const { return builders_.size(); }

  /// Replaces column i wholesale with an existing block (zero-copy column
  /// reuse across derived tables); the block's type must match the schema.
  void SetColumn(size_t i, std::shared_ptr<const Column> col);

  Result<std::shared_ptr<const ColumnarTable>> Finish();

 private:
  Schema schema_;
  std::vector<ColumnBuilder> builders_;
  std::vector<std::shared_ptr<const Column>> prebuilt_;
};

}  // namespace mde::table

#endif  // MDE_TABLE_COLUMNAR_H_
