#ifndef MDE_TABLE_PLAN_H_
#define MDE_TABLE_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "table/ops.h"
#include "table/table.h"
#include "util/status.h"

namespace mde::table {

/// A small logical-plan layer with a classical rewrite optimizer. The
/// paper's Section 2.3 grounds simulation-run optimization in query
/// optimization ("the problem of simulation-experiment optimization
/// subsumes the problem of query optimization"); this is the query side of
/// that analogy: plans are built declaratively, an optimizer pushes
/// selections below joins, and the executor reports how many intermediate
/// rows each strategy touched.
class PlanNode;
using PlanPtr = std::shared_ptr<const PlanNode>;

/// A structured (and therefore optimizable) predicate: column <op> literal.
struct PlanPredicate {
  std::string column;
  CmpOp op = CmpOp::kEq;
  Value literal;
};

class PlanNode {
 public:
  enum class Kind { kScan, kFilter, kProject, kJoin };

  Kind kind() const { return kind_; }

  // --- constructors (free builders below) ---
  static PlanPtr Scan(const Table* table, std::string name);
  static PlanPtr Filter(PlanPtr child, std::vector<PlanPredicate> preds);
  static PlanPtr Project(PlanPtr child, std::vector<std::string> columns);
  static PlanPtr Join(PlanPtr left, PlanPtr right,
                      std::vector<std::string> left_keys,
                      std::vector<std::string> right_keys);

  // --- accessors used by the optimizer/executor ---
  const Table* table() const { return table_; }
  const std::string& name() const { return name_; }
  const PlanPtr& child() const { return child_; }
  const PlanPtr& left() const { return left_; }
  const PlanPtr& right() const { return right_; }
  const std::vector<PlanPredicate>& predicates() const { return preds_; }
  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<std::string>& left_keys() const { return left_keys_; }
  const std::vector<std::string>& right_keys() const { return right_keys_; }

  /// The schema this node produces (resolved structurally).
  Result<Schema> OutputSchema() const;

 private:
  friend PlanPtr MakeNode(PlanNode&&);
  PlanNode() = default;

  Kind kind_ = Kind::kScan;
  const Table* table_ = nullptr;  // kScan
  std::string name_;              // kScan
  PlanPtr child_;                 // kFilter / kProject
  std::vector<PlanPredicate> preds_;
  std::vector<std::string> columns_;
  PlanPtr left_, right_;          // kJoin
  std::vector<std::string> left_keys_, right_keys_;
};

/// Work counters from one plan execution.
struct ExecutionStats {
  /// Rows read from base tables.
  size_t rows_scanned = 0;
  /// Rows materialized by intermediate operators (filters, joins,
  /// projections) — the cost the optimizer minimizes.
  size_t intermediate_rows = 0;

  /// One operator's profile from an EXPLAIN ANALYZE run.
  struct NodeProfile {
    /// Rows the operator produced (for vectorized nodes, the selection
    /// cardinality — nothing is materialized until the plan root).
    size_t rows_out = 0;
    /// Inclusive wall time: this operator plus everything below it.
    double wall_ns = 0.0;
    /// Vectorized chunk count over the operator's input domain
    /// (ceil(rows / kVecGrain)); 0 on the row path.
    size_t chunks = 0;
    /// True when the columnar executor ran this node.
    bool vectorized = false;
  };
  /// Per-operator profiles indexed by the plan's pre-order position (node,
  /// then child — left before right for joins). Both executors traverse in
  /// the same order, so index i always refers to the same plan node. Filled
  /// whenever a stats pointer is passed to ExecutePlan; cleared at the start
  /// of each execution.
  std::vector<NodeProfile> nodes;
};

/// Executes a plan as written (no rewrites).
Result<Table> ExecutePlan(const PlanPtr& plan, ExecutionStats* stats);

/// EXPLAIN ANALYZE: the operator tree annotated with the per-node profile
/// that ExecutePlan collected into `stats` — rows produced, inclusive wall
/// time, chunk counts, and which path (vec/row) ran each operator. `plan`
/// must be the same plan that produced `stats`.
std::string ExplainAnalyze(const PlanPtr& plan, const ExecutionStats& stats);

namespace internal {
/// Forces the row-at-a-time executor regardless of columnar
/// convertibility. Exposed for row-vs-vec parity tests only.
Result<Table> ExecutePlanRowPath(const PlanPtr& plan, ExecutionStats* stats);
}  // namespace internal

/// Classical rewrite: selection pushdown. Filters above a join are split
/// by the side whose schema can evaluate them and pushed below the join;
/// filters above projections slide down when their columns survive;
/// adjacent filters merge. Returns a semantically equivalent plan.
Result<PlanPtr> OptimizePlan(const PlanPtr& plan);

/// Pretty-printed operator tree for debugging / EXPLAIN output.
std::string ExplainPlan(const PlanPtr& plan);

}  // namespace mde::table

#endif  // MDE_TABLE_PLAN_H_
