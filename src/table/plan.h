#ifndef MDE_TABLE_PLAN_H_
#define MDE_TABLE_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "table/ops.h"
#include "table/table.h"
#include "util/status.h"

namespace mde::table {

/// A small logical-plan layer with a classical rewrite optimizer. The
/// paper's Section 2.3 grounds simulation-run optimization in query
/// optimization ("the problem of simulation-experiment optimization
/// subsumes the problem of query optimization"); this is the query side of
/// that analogy: plans are built declaratively, an optimizer pushes
/// selections below joins, and the executor reports how many intermediate
/// rows each strategy touched.
class PlanNode;
using PlanPtr = std::shared_ptr<const PlanNode>;

/// A structured (and therefore optimizable) predicate: column <op> literal.
struct PlanPredicate {
  std::string column;
  CmpOp op = CmpOp::kEq;
  Value literal;
};

class PlanNode {
 public:
  enum class Kind { kScan, kFilter, kProject, kJoin };

  Kind kind() const { return kind_; }

  // --- constructors (free builders below) ---
  static PlanPtr Scan(const Table* table, std::string name);
  static PlanPtr Filter(PlanPtr child, std::vector<PlanPredicate> preds);
  static PlanPtr Project(PlanPtr child, std::vector<std::string> columns);
  /// Projection with output renaming: column i of the result is source
  /// column `columns[i]` under the name `aliases[i]`. The optimizer uses
  /// this to restore the exact as-written output schema after a join
  /// reorder changes which side gets the "r." duplicate prefix; the
  /// vectorized executor implements it as a zero-copy schema rewrap.
  static PlanPtr ProjectAs(PlanPtr child, std::vector<std::string> columns,
                           std::vector<std::string> aliases);
  static PlanPtr Join(PlanPtr left, PlanPtr right,
                      std::vector<std::string> left_keys,
                      std::vector<std::string> right_keys);

  // --- accessors used by the optimizer/executor ---
  const Table* table() const { return table_; }
  const std::string& name() const { return name_; }
  const PlanPtr& child() const { return child_; }
  const PlanPtr& left() const { return left_; }
  const PlanPtr& right() const { return right_; }
  const std::vector<PlanPredicate>& predicates() const { return preds_; }
  const std::vector<std::string>& columns() const { return columns_; }
  /// Output names for kProject, parallel to columns(); empty when the
  /// projection does not rename.
  const std::vector<std::string>& aliases() const { return aliases_; }
  const std::vector<std::string>& left_keys() const { return left_keys_; }
  const std::vector<std::string>& right_keys() const { return right_keys_; }

  /// The schema this node produces (resolved structurally).
  Result<Schema> OutputSchema() const;

 private:
  friend PlanPtr MakeNode(PlanNode&&);
  PlanNode() = default;

  Kind kind_ = Kind::kScan;
  const Table* table_ = nullptr;  // kScan
  std::string name_;              // kScan
  PlanPtr child_;                 // kFilter / kProject
  std::vector<PlanPredicate> preds_;
  std::vector<std::string> columns_;
  std::vector<std::string> aliases_;  // kProject renames (may be empty)
  PlanPtr left_, right_;          // kJoin
  std::vector<std::string> left_keys_, right_keys_;
};

/// Work counters from one plan execution.
struct ExecutionStats {
  /// Rows read from base tables.
  size_t rows_scanned = 0;
  /// Rows materialized by intermediate operators (filters, joins,
  /// projections) — the cost the optimizer minimizes.
  size_t intermediate_rows = 0;

  /// One operator's profile from an EXPLAIN ANALYZE run.
  struct NodeProfile {
    /// Rows the operator produced (for vectorized nodes, the selection
    /// cardinality — nothing is materialized until the plan root).
    size_t rows_out = 0;
    /// Inclusive wall time: this operator plus everything below it.
    double wall_ns = 0.0;
    /// Vectorized chunk count over the operator's input domain
    /// (ceil(rows / kVecGrain)); 0 on the row path.
    size_t chunks = 0;
    /// True when the columnar executor ran this node.
    bool vectorized = false;
    /// The optimizer's cardinality estimate for this node, or -1 when the
    /// plan was executed without estimation (no cost model consulted).
    /// Compared against rows_out by ExplainAnalyze and folded back into
    /// the catalog so the next run of the same (sub)plan estimates from
    /// observed actuals.
    double est_rows = -1.0;
  };
  /// Per-operator profiles indexed by the plan's pre-order position (node,
  /// then child — left before right for joins). Both executors traverse in
  /// the same order, so index i always refers to the same plan node. Filled
  /// whenever a stats pointer is passed to ExecutePlan; cleared at the start
  /// of each execution.
  std::vector<NodeProfile> nodes;
};

/// Executes a plan as written (no rewrites).
Result<Table> ExecutePlan(const PlanPtr& plan, ExecutionStats* stats);

/// EXPLAIN ANALYZE: the operator tree annotated with the per-node profile
/// that ExecutePlan collected into `stats` — rows produced, inclusive wall
/// time, chunk counts, and which path (vec/row) ran each operator. `plan`
/// must be the same plan that produced `stats`.
std::string ExplainAnalyze(const PlanPtr& plan, const ExecutionStats& stats);

namespace internal {
/// Forces the row-at-a-time executor regardless of columnar
/// convertibility. Exposed for row-vs-vec parity tests only.
Result<Table> ExecutePlanRowPath(const PlanPtr& plan, ExecutionStats* stats);
}  // namespace internal

/// Cost-based optimization (optimizer.h): selection pushdown, predicate
/// ordering by estimated selectivity, projection pushdown, and join
/// reordering driven by the statistics catalog (catalog.h) and cost model
/// (cost.h). Returns a semantically equivalent plan.
Result<PlanPtr> OptimizePlan(const PlanPtr& plan);

/// Pretty-printed operator tree for debugging / EXPLAIN output.
std::string ExplainPlan(const PlanPtr& plan);

}  // namespace mde::table

#endif  // MDE_TABLE_PLAN_H_
