#include "table/cost.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace mde::table {

namespace {

const char* CmpToken(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return "=";
    case CmpOp::kNe: return "!=";
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
  }
  return "?";
}

bool IsNumericType(DataType t) {
  return t == DataType::kInt64 || t == DataType::kDouble ||
         t == DataType::kBool;
}

/// Approximate fraction of non-null values strictly below `v`, from the
/// equi-width histogram (values smeared uniformly within a bucket) or,
/// lacking one, linear interpolation over [min, max].
double FractionBelow(const ColumnStats& s, double v) {
  if (!s.has_range) return 1.0 / 3.0;
  if (v <= s.min) return 0.0;
  if (v > s.max) return 1.0;
  if (s.min >= s.max) return 0.0;  // constant column, v in (min, max] empty
  if (!s.hist.empty() && s.hist_rows > 0) {
    const double width =
        (s.max - s.min) / static_cast<double>(s.hist.size());
    size_t b = static_cast<size_t>((v - s.min) / width);
    b = std::min(b, s.hist.size() - 1);
    double below = 0.0;
    for (size_t i = 0; i < b; ++i) below += static_cast<double>(s.hist[i]);
    const double frac_in =
        std::clamp((v - (s.min + static_cast<double>(b) * width)) / width,
                   0.0, 1.0);
    below += static_cast<double>(s.hist[b]) * frac_in;
    return std::clamp(below / static_cast<double>(s.hist_rows), 0.0, 1.0);
  }
  return std::clamp((v - s.min) / (s.max - s.min), 0.0, 1.0);
}

// Defaults when no statistics can be traced (textbook guesses).
constexpr double kDefaultEqSel = 0.1;
constexpr double kDefaultRangeSel = 1.0 / 3.0;

}  // namespace

std::string PlanFingerprint(const PlanPtr& plan) {
  switch (plan->kind()) {
    case PlanNode::Kind::kScan: {
      const size_t rows =
          plan->table() != nullptr ? plan->table()->num_rows() : 0;
      // Salted with the table's content-version stamp: a mutation takes a
      // fresh stamp even when the row count is unchanged, so actuals
      // recorded against the pre-mutation contents never survive onto the
      // new state (stale feedback used to poison estimates there).
      const uint64_t version =
          plan->table() != nullptr ? plan->table()->content_version() : 0;
      return "S(" + plan->name() + "#" + std::to_string(rows) + "@" +
             std::to_string(version) + ")";
    }
    case PlanNode::Kind::kFilter: {
      std::vector<std::string> preds;
      preds.reserve(plan->predicates().size());
      for (const auto& p : plan->predicates()) {
        preds.push_back(p.column + CmpToken(p.op) + p.literal.ToString());
      }
      std::sort(preds.begin(), preds.end());
      std::string joined;
      for (size_t i = 0; i < preds.size(); ++i) {
        if (i > 0) joined += "&";
        joined += preds[i];
      }
      return "F(" + PlanFingerprint(plan->child()) + "|" + joined + ")";
    }
    case PlanNode::Kind::kProject:
      // Projections never change cardinality: transparent, so feedback
      // learned under one projection applies under any other (including
      // the optimizer's ProjectAs schema-restoring wrapper).
      return PlanFingerprint(plan->child());
    case PlanNode::Kind::kJoin: {
      std::string a = PlanFingerprint(plan->left());
      std::string b = PlanFingerprint(plan->right());
      std::vector<std::string> keys;
      keys.reserve(plan->left_keys().size());
      const bool swap = b < a;
      for (size_t i = 0; i < plan->left_keys().size(); ++i) {
        keys.push_back(swap
                           ? plan->right_keys()[i] + "=" + plan->left_keys()[i]
                           : plan->left_keys()[i] + "=" +
                                 plan->right_keys()[i]);
      }
      if (swap) std::swap(a, b);
      std::sort(keys.begin(), keys.end());
      std::string joined;
      for (size_t i = 0; i < keys.size(); ++i) {
        if (i > 0) joined += ",";
        joined += keys[i];
      }
      return "J(" + a + "|" + b + "|" + joined + ")";
    }
  }
  return "?";
}

const ColumnStats* CostModel::FindColumnStats(const PlanPtr& plan,
                                              const std::string& name) const {
  switch (plan->kind()) {
    case PlanNode::Kind::kScan: {
      if (catalog_ == nullptr || plan->table() == nullptr) return nullptr;
      // The shared_ptr is memoized on the Table, so the pointer stays
      // valid for the duration of the optimization pass.
      auto stats = catalog_->StatsFor(*plan->table());
      return stats->Find(name);
    }
    case PlanNode::Kind::kFilter:
      // Post-filter distributions shift, but base-column stats remain the
      // best available single-column summary.
      return FindColumnStats(plan->child(), name);
    case PlanNode::Kind::kProject: {
      const auto& cols = plan->columns();
      const auto& aliases = plan->aliases();
      if (aliases.empty()) {
        for (const auto& c : cols) {
          if (c == name) return FindColumnStats(plan->child(), name);
        }
        return nullptr;
      }
      for (size_t i = 0; i < aliases.size(); ++i) {
        if (aliases[i] == name) {
          return FindColumnStats(plan->child(), cols[i]);
        }
      }
      return nullptr;
    }
    case PlanNode::Kind::kJoin: {
      auto ls = plan->left()->OutputSchema();
      if (ls.ok() && ls.value().Has(name)) {
        return FindColumnStats(plan->left(), name);
      }
      auto rs = plan->right()->OutputSchema();
      if (name.rfind("r.", 0) == 0) {
        const std::string stripped = name.substr(2);
        if (rs.ok() && rs.value().Has(stripped)) {
          return FindColumnStats(plan->right(), stripped);
        }
      }
      if (rs.ok() && rs.value().Has(name)) {
        return FindColumnStats(plan->right(), name);
      }
      return nullptr;
    }
  }
  return nullptr;
}

double CostModel::PredicateSelectivity(const PlanPtr& input,
                                       const PlanPredicate& pred) const {
  if (pred.literal.is_null()) return 0.0;  // SQL: comparisons to null fail
  const ColumnStats* s = FindColumnStats(input, pred.column);
  const bool numeric_lit = IsNumericType(pred.literal.type());
  if (s == nullptr ||
      (numeric_lit != IsNumericType(s->type) && s->type != DataType::kNull)) {
    switch (pred.op) {
      case CmpOp::kEq: return kDefaultEqSel;
      case CmpOp::kNe: return 1.0 - kDefaultEqSel;
      default: return kDefaultRangeSel;
    }
  }
  const double non_null = std::clamp(1.0 - s->null_fraction, 0.0, 1.0);
  const double ndv = std::max(s->distinct, 1.0);
  const double eq_frac = 1.0 / ndv;
  if (!numeric_lit || !s->has_range) {
    // Strings (and rangeless columns): uniform over the distinct values.
    switch (pred.op) {
      case CmpOp::kEq: return non_null * eq_frac;
      case CmpOp::kNe: return non_null * (1.0 - eq_frac);
      default: return non_null * kDefaultRangeSel;
    }
  }
  // Value::AsDouble coerces int64 but aborts on bool — widen by hand.
  const double v = pred.literal.type() == DataType::kBool
                       ? (pred.literal.AsBool() ? 1.0 : 0.0)
                       : pred.literal.AsDouble();
  const bool in_range = v >= s->min && v <= s->max;
  switch (pred.op) {
    case CmpOp::kEq:
      return in_range ? non_null * eq_frac : 0.0;
    case CmpOp::kNe:
      return in_range ? non_null * (1.0 - eq_frac) : non_null;
    case CmpOp::kLt:
      return non_null * FractionBelow(*s, v);
    case CmpOp::kLe:
      return non_null *
             std::min(1.0, FractionBelow(*s, v) + (in_range ? eq_frac : 0.0));
    case CmpOp::kGe:
      return non_null * (1.0 - FractionBelow(*s, v));
    case CmpOp::kGt:
      return non_null *
             std::max(0.0, 1.0 - FractionBelow(*s, v) -
                               (in_range ? eq_frac : 0.0));
  }
  return kDefaultRangeSel;
}

double CostModel::EstimateRows(const PlanPtr& plan) const {
  auto it = rows_memo_.find(plan.get());
  if (it != rows_memo_.end()) return it->second;
  double rows = -1.0;
  double fb = 0.0;
  if (catalog_ != nullptr &&
      catalog_->LookupActual(PlanFingerprint(plan), &fb)) {
    rows = fb;
  } else {
    switch (plan->kind()) {
      case PlanNode::Kind::kScan:
        rows = plan->table() != nullptr
                   ? static_cast<double>(plan->table()->num_rows())
                   : 0.0;
        break;
      case PlanNode::Kind::kFilter: {
        rows = EstimateRows(plan->child());
        for (const auto& p : plan->predicates()) {
          rows *= PredicateSelectivity(plan->child(), p);
        }
        break;
      }
      case PlanNode::Kind::kProject:
        rows = EstimateRows(plan->child());
        break;
      case PlanNode::Kind::kJoin: {
        const double l = EstimateRows(plan->left());
        const double r = EstimateRows(plan->right());
        rows = l * r;
        for (size_t i = 0; i < plan->left_keys().size(); ++i) {
          const ColumnStats* ls =
              FindColumnStats(plan->left(), plan->left_keys()[i]);
          const ColumnStats* rs =
              FindColumnStats(plan->right(), plan->right_keys()[i]);
          const double ndv_l = ls != nullptr && ls->distinct > 0.0
                                   ? ls->distinct
                                   : std::max(l, 1.0);
          const double ndv_r = rs != nullptr && rs->distinct > 0.0
                                   ? rs->distinct
                                   : std::max(r, 1.0);
          rows /= std::max({ndv_l, ndv_r, 1.0});
        }
        break;
      }
    }
  }
  rows = std::max(rows, 0.0);
  rows_memo_[plan.get()] = rows;
  return rows;
}

double CostModel::EstimateCost(const PlanPtr& plan) const {
  auto it = cost_memo_.find(plan.get());
  if (it != cost_memo_.end()) return it->second;
  double cost = 0.0;
  switch (plan->kind()) {
    case PlanNode::Kind::kScan:
      cost = EstimateRows(plan);
      break;
    case PlanNode::Kind::kFilter: {
      // Each predicate touches the rows surviving the ones before it —
      // this is what makes selectivity-ordered predicates cheaper.
      cost = EstimateCost(plan->child());
      double domain = EstimateRows(plan->child());
      for (const auto& p : plan->predicates()) {
        cost += domain;
        domain *= PredicateSelectivity(plan->child(), p);
      }
      break;
    }
    case PlanNode::Kind::kProject:
      // Near-free on the vectorized path (column pointer reshuffle).
      cost = EstimateCost(plan->child()) + 0.05 * EstimateRows(plan->child());
      break;
    case PlanNode::Kind::kJoin:
      // Hash join: build the right side, probe with the left, materialize
      // the output gather.
      cost = EstimateCost(plan->left()) + EstimateCost(plan->right()) +
             1.5 * EstimateRows(plan->right()) + EstimateRows(plan->left()) +
             EstimateRows(plan);
      break;
  }
  cost_memo_[plan.get()] = cost;
  return cost;
}

namespace {

void AnnotateRec(const PlanPtr& plan, const CostModel& model,
                 ExecutionStats* stats, size_t* idx) {
  if (*idx >= stats->nodes.size()) return;
  stats->nodes[*idx].est_rows = model.EstimateRows(plan);
  ++*idx;
  switch (plan->kind()) {
    case PlanNode::Kind::kScan:
      break;
    case PlanNode::Kind::kFilter:
    case PlanNode::Kind::kProject:
      AnnotateRec(plan->child(), model, stats, idx);
      break;
    case PlanNode::Kind::kJoin:
      AnnotateRec(plan->left(), model, stats, idx);
      AnnotateRec(plan->right(), model, stats, idx);
      break;
  }
}

void RecordRec(const PlanPtr& plan, const ExecutionStats& stats,
               Catalog* catalog, size_t* idx) {
  if (*idx >= stats.nodes.size()) return;
  const ExecutionStats::NodeProfile& np = stats.nodes[*idx];
  catalog->RecordActual(PlanFingerprint(plan),
                        static_cast<double>(np.rows_out));
  if (np.est_rows >= 0.0) {
    const double denom = std::max(static_cast<double>(np.rows_out), 1.0);
    MDE_OBS_OBSERVE("opt.est.rel_error",
                    std::abs(np.est_rows - static_cast<double>(np.rows_out)) /
                        denom);
  }
  ++*idx;
  switch (plan->kind()) {
    case PlanNode::Kind::kScan:
      break;
    case PlanNode::Kind::kFilter:
    case PlanNode::Kind::kProject:
      RecordRec(plan->child(), stats, catalog, idx);
      break;
    case PlanNode::Kind::kJoin:
      RecordRec(plan->left(), stats, catalog, idx);
      RecordRec(plan->right(), stats, catalog, idx);
      break;
  }
}

}  // namespace

void AnnotateEstimates(const PlanPtr& plan, const CostModel& model,
                       ExecutionStats* stats) {
  size_t idx = 0;
  AnnotateRec(plan, model, stats, &idx);
}

void RecordActuals(const PlanPtr& plan, const ExecutionStats& stats,
                   Catalog* catalog) {
  if (catalog == nullptr) return;
  size_t idx = 0;
  RecordRec(plan, stats, catalog, &idx);
  MDE_OBS_COUNT("opt.plans_profiled", 1);
}

}  // namespace mde::table
