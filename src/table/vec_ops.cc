#include "table/vec_ops.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>
#include <numeric>
#include <unordered_map>
#include <utility>

#include "obs/context.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "simd/simd.h"
#include "util/check.h"

namespace mde::table {

namespace {

std::atomic<ThreadPool*> g_vec_pool{nullptr};

size_t NumChunksFor(size_t n) { return (n + kVecGrain - 1) / kVecGrain; }

/// Runs fn(chunk, begin, end) over the fixed kVecGrain chunking — on the
/// pool when one is attached, otherwise serially over the SAME chunks in
/// ascending order, so both paths see identical chunk boundaries.
template <typename Fn>
void RunChunks(ThreadPool* pool, size_t n, Fn&& fn) {
  if (n == 0) return;
  if (pool != nullptr) {
    pool->ParallelForChunks(n, kVecGrain, fn);
    return;
  }
  const size_t chunks = NumChunksFor(n);
  for (size_t c = 0; c < chunks; ++c) {
    fn(c, c * kVecGrain, std::min(n, (c + 1) * kVecGrain));
  }
}

/// Evaluates `pred(row)` over the batch domain (selection or all rows),
/// collecting matching row indices in ascending order. Chunk-parallel;
/// per-chunk outputs are concatenated in chunk order, so the result is
/// independent of thread count.
template <typename Pred>
SelVector CollectMatches(size_t domain, const SelVector* sel, ThreadPool* pool,
                         Pred pred) {
  std::vector<SelVector> parts(NumChunksFor(domain));
  RunChunks(pool, domain, [&](size_t c, size_t b, size_t e) {
    SelVector& out = parts[c];
    out.reserve(e - b);
    if (sel != nullptr) {
      for (size_t j = b; j < e; ++j) {
        const uint32_t r = (*sel)[j];
        if (pred(r)) out.push_back(r);
      }
    } else {
      for (size_t j = b; j < e; ++j) {
        const uint32_t r = static_cast<uint32_t>(j);
        if (pred(r)) out.push_back(r);
      }
    }
  });
  size_t total = 0;
  for (const auto& p : parts) total += p.size();
  SelVector out;
  out.reserve(total);
  for (const auto& p : parts) out.insert(out.end(), p.begin(), p.end());
  return out;
}

/// Numeric filter: both sides compare as double, exactly like
/// Value::Equals/LessThan (int64 coerces through AsDouble, so values beyond
/// 2^53 collapse the same way on both paths).
template <typename Get>
SelVector FilterNumeric(size_t domain, const SelVector* sel, ThreadPool* pool,
                        const Column& c, Get get, CmpOp op, double lit) {
  switch (op) {
    case CmpOp::kEq:
      return CollectMatches(domain, sel, pool, [&c, get, lit](uint32_t r) {
        return c.IsValid(r) && get(r) == lit;
      });
    case CmpOp::kNe:
      return CollectMatches(domain, sel, pool, [&c, get, lit](uint32_t r) {
        return c.IsValid(r) && get(r) != lit;
      });
    case CmpOp::kLt:
      return CollectMatches(domain, sel, pool, [&c, get, lit](uint32_t r) {
        return c.IsValid(r) && get(r) < lit;
      });
    case CmpOp::kLe:
      return CollectMatches(domain, sel, pool, [&c, get, lit](uint32_t r) {
        return c.IsValid(r) && get(r) <= lit;
      });
    case CmpOp::kGt:
      return CollectMatches(domain, sel, pool, [&c, get, lit](uint32_t r) {
        return c.IsValid(r) && get(r) > lit;
      });
    case CmpOp::kGe:
      return CollectMatches(domain, sel, pool, [&c, get, lit](uint32_t r) {
        return c.IsValid(r) && get(r) >= lit;
      });
  }
  return {};
}

/// CmpOp and simd::Cmp enumerate the predicates in the same order with the
/// same semantics (C++ operators on double; kNe true on NaN).
simd::Cmp ToSimdCmp(CmpOp op) { return static_cast<simd::Cmp>(op); }

/// Dense (no selection vector) filter driver: per kVecGrain chunk a kernel
/// writes the predicate bitmap, validity words are ANDed in (kVecGrain is a
/// multiple of 64, so a chunk owns whole bitmap words), and BitmapToSel
/// compacts the set bits into the chunk's part of the selection. Chunk parts
/// concatenate in chunk order, so the result is byte-identical to the
/// scalar row loop for every dispatch tier and thread count.
template <typename Kernel>
SelVector CollectMatchesDense(size_t n, const Column& c, ThreadPool* pool,
                              Kernel kernel) {
  std::vector<SelVector> parts(NumChunksFor(n));
  const bool has_nulls = !c.valid.empty();
  RunChunks(pool, n, [&](size_t ck, size_t b, size_t e) {
    const size_t len = e - b;
    const size_t nwords = (len + 63) / 64;
    uint64_t words[kVecGrain / 64];
    kernel(b, len, words);
    if (has_nulls) {
      simd::AndWords(words, c.valid.data() + (b >> 6), nwords, words);
    }
    SelVector& out = parts[ck];
    out.resize(simd::PopcountWords(words, nwords));
    simd::BitmapToSel(words, nwords, static_cast<uint32_t>(b), out.data());
  });
  size_t total = 0;
  for (const auto& p : parts) total += p.size();
  SelVector out;
  out.reserve(total);
  for (const auto& p : parts) out.insert(out.end(), p.begin(), p.end());
  return out;
}

/// All-rows kernel (padding bits of the tail word zero): the dense form of
/// the "every non-null cell matches" filters.
void AllOnesBitmap(size_t len, uint64_t* words) {
  const size_t nwords = (len + 63) / 64;
  for (size_t w = 0; w < nwords; ++w) words[w] = ~uint64_t{0};
  if (len % 64 != 0) words[nwords - 1] = (uint64_t{1} << (len % 64)) - 1;
}

/// The int64 set {x : double(x) op lit} for the numeric filter. double() is
/// monotone over int64, so the set is a contiguous range [lo, hi] (possibly
/// empty, possibly complemented for kNe) — which turns the mixed
/// int64-compared-as-double predicate into pure integer compares.
struct I64CmpRange {
  int64_t lo = 1;
  int64_t hi = 0;  // lo > hi: empty range
  bool negate = false;
};

/// Smallest x with pred(x) true, where pred is monotone (all-false prefix,
/// all-true suffix). Returns false when pred is false everywhere.
template <typename Pred>
bool FirstTrueI64(Pred pred, int64_t* out) {
  int64_t hi = std::numeric_limits<int64_t>::max();
  if (!pred(hi)) return false;
  int64_t lo = std::numeric_limits<int64_t>::min();
  if (pred(lo)) {
    *out = lo;
    return true;
  }
  // Invariant: !pred(lo) && pred(hi). The unsigned difference is exact for
  // lo < hi even across the full int64 span.
  while (static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) > 1) {
    const int64_t mid =
        lo + static_cast<int64_t>(
                 (static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo)) / 2);
    (pred(mid) ? hi : lo) = mid;
  }
  *out = hi;
  return true;
}

I64CmpRange RangeForI64Cmp(CmpOp op, double lit) {
  I64CmpRange r;
  if (std::isnan(lit)) {
    // x op NaN is false for every op except !=, which is always true.
    if (op == CmpOp::kNe) r.negate = true;  // empty range, complemented
    return r;
  }
  const auto ge = [lit](int64_t x) { return static_cast<double>(x) >= lit; };
  const auto gt = [lit](int64_t x) { return static_cast<double>(x) > lit; };
  int64_t first_ge = 0, first_gt = 0;
  const bool has_ge = FirstTrueI64(ge, &first_ge);
  const bool has_gt = FirstTrueI64(gt, &first_gt);
  const int64_t kMin = std::numeric_limits<int64_t>::min();
  const int64_t kMax = std::numeric_limits<int64_t>::max();
  switch (op) {
    case CmpOp::kEq:
    case CmpOp::kNe:
      if (!has_ge) return r;  // nothing reaches lit
      r.lo = first_ge;
      r.hi = has_gt ? first_gt - 1 : kMax;
      r.negate = op == CmpOp::kNe;
      return r;
    case CmpOp::kLt:
      if (!has_ge) {
        r.lo = kMin;
        r.hi = kMax;
        return r;  // everything is < lit
      }
      if (first_ge == kMin) return r;  // nothing is < lit
      r.lo = kMin;
      r.hi = first_ge - 1;
      return r;
    case CmpOp::kLe:
      if (!has_gt) {
        r.lo = kMin;
        r.hi = kMax;
        return r;
      }
      if (first_gt == kMin) return r;
      r.lo = kMin;
      r.hi = first_gt - 1;
      return r;
    case CmpOp::kGt:
      if (!has_gt) return r;
      r.lo = first_gt;
      r.hi = kMax;
      return r;
    case CmpOp::kGe:
      if (!has_ge) return r;
      r.lo = first_ge;
      r.hi = kMax;
      return r;
  }
  return r;
}

bool CmpStrings(const std::string& a, CmpOp op, const std::string& b) {
  switch (op) {
    case CmpOp::kEq:
      return a == b;
    case CmpOp::kNe:
      return a != b;
    case CmpOp::kLt:
      return a < b;
    case CmpOp::kLe:
      return a <= b;
    case CmpOp::kGt:
      return a > b;
    case CmpOp::kGe:
      return a >= b;
  }
  return false;
}

/// Gathers `sel` out of `c` into a fresh contiguous column. String
/// dictionaries are shared, not rebuilt (the gathered dict may be a
/// superset of the codes in use — harmless). kVecGrain is a multiple of 64,
/// so parallel chunks own disjoint validity-bitmap words.
std::shared_ptr<const Column> GatherColumn(const Column& c,
                                           const SelVector& sel,
                                           ThreadPool* pool) {
  auto out = std::make_shared<Column>();
  out->type = c.type;
  const size_t n = sel.size();
  out->size = n;
  switch (c.type) {
    case DataType::kInt64:
      out->i64.resize(n);
      break;
    case DataType::kDouble:
      out->f64.resize(n);
      break;
    case DataType::kBool:
      out->b8.resize(n);
      break;
    case DataType::kString:
      out->codes.resize(n);
      out->dict = c.dict;
      break;
    case DataType::kNull:
      break;
  }
  const bool has_nulls = !c.valid.empty();
  if (has_nulls) out->valid.assign((n + 63) / 64, 0);
  // The typed blocks come from AlignedVector: cache-line-aligned starts for
  // the kernels that scan them later.
  assert(out->i64.empty() || IsAligned(out->i64.data(), 64));
  assert(out->f64.empty() || IsAligned(out->f64.data(), 64));
  assert(out->valid.empty() || IsAligned(out->valid.data(), 64));
  RunChunks(pool, n, [&](size_t, size_t b, size_t e) {
    switch (c.type) {
      case DataType::kInt64:
        for (size_t j = b; j < e; ++j) out->i64[j] = c.i64[sel[j]];
        break;
      case DataType::kDouble:
        for (size_t j = b; j < e; ++j) out->f64[j] = c.f64[sel[j]];
        break;
      case DataType::kBool:
        for (size_t j = b; j < e; ++j) out->b8[j] = c.b8[sel[j]];
        break;
      case DataType::kString:
        for (size_t j = b; j < e; ++j) out->codes[j] = c.codes[sel[j]];
        break;
      case DataType::kNull:
        break;
    }
    if (has_nulls) {
      for (size_t j = b; j < e; ++j) {
        if (c.IsValid(sel[j])) out->valid[j >> 6] |= uint64_t{1} << (j & 63);
      }
    }
  });
  return AccountColumnBlock(std::move(out));
}

uint64_t SplitMix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// A key column prepared for hashing: strings get a per-dictionary-code
/// content hash so keys from tables with different dictionaries agree.
struct KeyCol {
  const Column* col;
  std::vector<uint64_t> code_hash;
};

KeyCol MakeKeyCol(const Column& c) {
  KeyCol k{&c, {}};
  if (c.type == DataType::kString) {
    const auto& dict = *c.dict;
    k.code_hash.resize(dict.size());
    std::hash<std::string> h;
    for (size_t i = 0; i < dict.size(); ++i) k.code_hash[i] = h(dict[i]);
  }
  return k;
}

uint64_t CellHash(const KeyCol& k, uint32_t r) {
  const Column& c = *k.col;
  if (!c.IsValid(r)) return 0x9b1f;
  switch (c.type) {
    case DataType::kInt64:
      return SplitMix(static_cast<uint64_t>(c.i64[r]));
    case DataType::kDouble: {
      double d = c.f64[r];
      if (d == 0.0) d = 0.0;  // merge -0.0 and +0.0 (they compare equal)
      uint64_t bits;
      std::memcpy(&bits, &d, sizeof(bits));
      return SplitMix(bits);
    }
    case DataType::kBool:
      return c.b8[r] ? 0x51 : 0x52;
    case DataType::kString:
      return k.code_hash[c.codes[r]];
    case DataType::kNull:
      return 0x9b1f;
  }
  return 0;
}

uint64_t RowKeyHash(const std::vector<KeyCol>& ks, uint32_t r) {
  uint64_t h = 0x811c9dc5;
  for (const auto& k : ks) h = h * 1099511628211ULL ^ CellHash(k, r);
  return h;
}

/// Strict variant equality between cells of two SAME-TYPED columns: nulls
/// equal nulls (grouping semantics), doubles by IEEE == (so NaN != NaN and
/// -0.0 == +0.0, exactly like Value::operator==).
bool CellEq(const KeyCol& ka, uint32_t ra, const KeyCol& kb, uint32_t rb) {
  const Column& a = *ka.col;
  const Column& b = *kb.col;
  const bool va = a.IsValid(ra);
  const bool vb = b.IsValid(rb);
  if (!va || !vb) return va == vb;
  switch (a.type) {
    case DataType::kInt64:
      return a.i64[ra] == b.i64[rb];
    case DataType::kDouble:
      return a.f64[ra] == b.f64[rb];
    case DataType::kBool:
      return a.b8[ra] == b.b8[rb];
    case DataType::kString:
      return a.dict == b.dict ? a.codes[ra] == b.codes[rb]
                              : a.StringAt(ra) == b.StringAt(rb);
    case DataType::kNull:
      return true;
  }
  return false;
}

bool RowKeyEq(const std::vector<KeyCol>& a, uint32_t ra,
              const std::vector<KeyCol>& b, uint32_t rb) {
  for (size_t i = 0; i < a.size(); ++i) {
    if (!CellEq(a[i], ra, b[i], rb)) return false;
  }
  return true;
}

bool AnyNull(const std::vector<KeyCol>& ks, uint32_t r) {
  for (const auto& k : ks) {
    if (!k.col->IsValid(r)) return true;
  }
  return false;
}

uint32_t RowAt(const ColumnarBatch& b, size_t j) {
  return b.whole ? static_cast<uint32_t>(j) : b.sel[j];
}

/// Same accumulator as the row GroupBy.
struct AggState {
  size_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
};

std::shared_ptr<const ColumnarTable> EmptyLike(const Schema& schema) {
  ColumnarTableBuilder b(schema);
  auto r = b.Finish();
  MDE_CHECK(r.ok());
  return std::move(r).value();
}

}  // namespace

void SetVecPool(ThreadPool* pool) {
  g_vec_pool.store(pool, std::memory_order_release);
}

ThreadPool* VecPool() { return g_vec_pool.load(std::memory_order_acquire); }

Table BatchToTable(const ColumnarBatch& batch, ThreadPool* pool) {
  if (batch.whole) return Table::FromColumnar(batch.cols);
  return Table::FromColumnar(VecCompact(*batch.cols, batch.sel, pool));
}

std::shared_ptr<const ColumnarTable> VecCompact(const ColumnarTable& t,
                                                const SelVector& sel,
                                                ThreadPool* pool) {
  MDE_TRACE_SPAN("vec.compact");
  MDE_OBS_COUNT("vec.compact.rows_out", sel.size());
  MDE_OBS_ATTR_ADD(rows_out, sel.size());
  std::vector<std::shared_ptr<const Column>> cols;
  cols.reserve(t.num_columns());
  for (size_t i = 0; i < t.num_columns(); ++i) {
    cols.push_back(GatherColumn(t.col(i), sel, pool));
  }
  return std::make_shared<const ColumnarTable>(t.schema(), std::move(cols),
                                               sel.size());
}

namespace {

Result<SelVector> VecFilterImpl(const ColumnarTable& t, const SelVector* sel,
                                const std::string& column, CmpOp op,
                                const Value& literal, ThreadPool* pool) {
  MDE_ASSIGN_OR_RETURN(size_t idx, t.schema().IndexOf(column));
  if (literal.is_null()) return SelVector{};  // null literal matches nothing
  const Column& c = t.col(idx);
  const size_t domain = sel != nullptr ? sel->size() : t.num_rows();

  const DataType lt = literal.type();
  const bool col_num =
      c.type == DataType::kInt64 || c.type == DataType::kDouble;
  const bool lit_num = lt == DataType::kInt64 || lt == DataType::kDouble;
  if (col_num && lit_num) {
    const double lit = literal.AsDouble();
    if (c.type == DataType::kInt64) {
      const int64_t* data = c.i64.data();
      if (sel == nullptr) {
        const I64CmpRange rr = RangeForI64Cmp(op, lit);
        return CollectMatchesDense(
            domain, c, pool,
            [data, rr](size_t b, size_t len, uint64_t* words) {
              simd::CmpI64RangeBitmap(data + b, len, rr.lo, rr.hi, rr.negate,
                                      words);
            });
      }
      return FilterNumeric(
          domain, sel, pool, c,
          [data](uint32_t r) { return static_cast<double>(data[r]); }, op,
          lit);
    }
    const double* data = c.f64.data();
    if (sel == nullptr) {
      const simd::Cmp sop = ToSimdCmp(op);
      return CollectMatchesDense(
          domain, c, pool, [data, sop, lit](size_t b, size_t len,
                                            uint64_t* words) {
            simd::CmpF64Bitmap(data + b, len, sop, lit, words);
          });
    }
    return FilterNumeric(
        domain, sel, pool, c, [data](uint32_t r) { return data[r]; }, op, lit);
  }
  if (c.type == DataType::kString && lt == DataType::kString) {
    const auto& dict = *c.dict;
    const std::string& ls = literal.AsString();
    const uint32_t* codes_eq = c.codes.data();
    if (op == CmpOp::kEq || op == CmpOp::kNe) {
      // Equality never needs string comparisons per row OR per entry:
      // resolve the literal to its (unique, interned) dictionary code
      // once, then the filter is a pure integer compare on the code
      // block — on both the dense and the selection-vector paths.
      const bool negate = op == CmpOp::kNe;
      uint32_t code = static_cast<uint32_t>(dict.size());
      for (size_t k = 0; k < dict.size(); ++k) {
        if (dict[k] == ls) {
          code = static_cast<uint32_t>(k);
          break;
        }
      }
      if (code == dict.size()) {
        // Literal absent from the dictionary: eq matches nothing, ne
        // matches every valid row.
        if (!negate) return SelVector{};
        if (sel == nullptr) {
          return CollectMatchesDense(domain, c, pool,
                                     [](size_t, size_t len, uint64_t* words) {
                                       AllOnesBitmap(len, words);
                                     });
        }
        return CollectMatches(domain, sel, pool,
                              [&c](uint32_t r) { return c.IsValid(r); });
      }
      if (sel == nullptr) {
        return CollectMatchesDense(
            domain, c, pool,
            [codes_eq, code, negate](size_t b, size_t len, uint64_t* words) {
              simd::CmpU32EqBitmap(codes_eq + b, len, code, negate, words);
            });
      }
      return CollectMatches(domain, sel, pool,
                            [&c, codes_eq, code, negate](uint32_t r) {
                              return c.IsValid(r) &&
                                     ((codes_eq[r] == code) != negate);
                            });
    }
    // Ordered comparisons: one string comparison per distinct dictionary
    // entry, then a per-row table lookup — the payoff of dictionary
    // encoding.
    std::vector<uint8_t> match(dict.size());
    for (size_t k = 0; k < dict.size(); ++k) {
      match[k] = CmpStrings(dict[k], op, ls) ? 1 : 0;
    }
    const uint32_t* codes = c.codes.data();
    const uint8_t* m = match.data();
    if (sel == nullptr) {
      // Most dictionary filters resolve to one matching (or one excluded)
      // code — an equality bitmap kernel. Degenerate LUTs (all/none) reduce
      // to the valid-only / empty filters; multi-code LUTs stay scalar.
      const size_t nmatch = static_cast<size_t>(
          std::count(match.begin(), match.end(), uint8_t{1}));
      if (nmatch == 0) return SelVector{};
      if (nmatch == match.size()) {
        return CollectMatchesDense(domain, c, pool,
                                   [](size_t, size_t len, uint64_t* words) {
                                     AllOnesBitmap(len, words);
                                   });
      }
      if (nmatch == 1 || nmatch == match.size() - 1) {
        const bool negate = nmatch != 1;
        const uint8_t want = negate ? 0 : 1;
        const uint32_t code = static_cast<uint32_t>(
            std::find(match.begin(), match.end(), want) - match.begin());
        return CollectMatchesDense(
            domain, c, pool,
            [codes, code, negate](size_t b, size_t len, uint64_t* words) {
              simd::CmpU32EqBitmap(codes + b, len, code, negate, words);
            });
      }
    }
    return CollectMatches(domain, sel, pool, [&c, codes, m](uint32_t r) {
      return c.IsValid(r) && m[codes[r]] != 0;
    });
  }
  if (c.type == DataType::kBool && lt == DataType::kBool) {
    const bool keep_false = EvalCmp(Value(false), op, literal);
    const bool keep_true = EvalCmp(Value(true), op, literal);
    const uint8_t* data = c.b8.data();
    if (sel == nullptr) {
      if (!keep_false && !keep_true) return SelVector{};
      if (keep_false && keep_true) {
        return CollectMatchesDense(domain, c, pool,
                                   [](size_t, size_t len, uint64_t* words) {
                                     AllOnesBitmap(len, words);
                                   });
      }
      return CollectMatchesDense(
          domain, c, pool,
          [data, keep_true](size_t b, size_t len, uint64_t* words) {
            simd::CmpU8Bitmap(data + b, len, keep_true, words);
          });
    }
    return CollectMatches(domain, sel, pool,
                          [&c, data, keep_false, keep_true](uint32_t r) {
                            return c.IsValid(r) &&
                                   (data[r] != 0 ? keep_true : keep_false);
                          });
  }
  if (c.type == DataType::kNull) return SelVector{};  // every cell null
  // Cross-type-class comparison: Value ranks type classes, so the result is
  // the same for every non-null cell — evaluate once on a representative.
  Value rep = c.type == DataType::kInt64    ? Value(int64_t{0})
              : c.type == DataType::kDouble ? Value(0.0)
              : c.type == DataType::kBool   ? Value(false)
                                            : Value(std::string());
  if (!EvalCmp(rep, op, literal)) return SelVector{};
  if (sel == nullptr) {
    return CollectMatchesDense(domain, c, pool,
                               [](size_t, size_t len, uint64_t* words) {
                                 AllOnesBitmap(len, words);
                               });
  }
  return CollectMatches(domain, sel, pool,
                        [&c](uint32_t r) { return c.IsValid(r); });
}

}  // namespace

Result<SelVector> VecFilter(const ColumnarTable& t, const SelVector* sel,
                            const std::string& column, CmpOp op,
                            const Value& literal, ThreadPool* pool) {
  MDE_TRACE_SPAN("vec.filter");
  const size_t domain = sel != nullptr ? sel->size() : t.num_rows();
  MDE_OBS_COUNT("vec.filter.rows_in", domain);
  MDE_OBS_ATTR_ADD(rows_in, domain);
  MDE_OBS_COUNT("vec.chunks", NumChunksFor(domain));
  auto r = VecFilterImpl(t, sel, column, op, literal, pool);
  if (r.ok()) {
    MDE_OBS_COUNT("vec.filter.rows_out", r.value().size());
    MDE_OBS_ATTR_ADD(rows_out, r.value().size());
  }
  return r;
}

Result<ColumnarBatch> VecProject(const ColumnarBatch& in,
                                 const std::vector<std::string>& columns) {
  MDE_TRACE_SPAN("vec.project");
  std::vector<ColumnSpec> specs;
  std::vector<std::shared_ptr<const Column>> cols;
  specs.reserve(columns.size());
  cols.reserve(columns.size());
  for (const auto& name : columns) {
    MDE_ASSIGN_OR_RETURN(size_t i, in.cols->schema().IndexOf(name));
    specs.push_back(in.cols->schema().column(i));
    cols.push_back(in.cols->col_ptr(i));
  }
  ColumnarBatch out;
  out.cols = std::make_shared<const ColumnarTable>(
      Schema(std::move(specs)), std::move(cols), in.cols->num_rows());
  out.sel = in.sel;
  out.whole = in.whole;
  return out;
}

Result<std::shared_ptr<const ColumnarTable>> VecHashJoin(
    const ColumnarBatch& left, const ColumnarBatch& right,
    const std::vector<std::string>& left_keys,
    const std::vector<std::string>& right_keys, ThreadPool* pool) {
  MDE_TRACE_SPAN("vec.hash_join");
  if (left_keys.size() != right_keys.size() || left_keys.empty()) {
    return Status::InvalidArgument("join keys must be non-empty and paired");
  }
  MDE_OBS_COUNT("vec.hash_join.rows_in", left.size() + right.size());
  MDE_OBS_ATTR_ADD(rows_in, left.size() + right.size());
  MDE_OBS_COUNT("vec.chunks", NumChunksFor(left.size()));
  const ColumnarTable& L = *left.cols;
  const ColumnarTable& R = *right.cols;
  std::vector<size_t> li, ri;
  for (const auto& k : left_keys) {
    MDE_ASSIGN_OR_RETURN(size_t i, L.schema().IndexOf(k));
    li.push_back(i);
  }
  for (const auto& k : right_keys) {
    MDE_ASSIGN_OR_RETURN(size_t i, R.schema().IndexOf(k));
    ri.push_back(i);
  }
  Schema out_schema = Schema::Concat(L.schema(), R.schema(), "r.");

  // Keys compare with strict variant equality, so differently-typed key
  // pairs can never match.
  bool type_mismatch = false;
  for (size_t i = 0; i < li.size(); ++i) {
    if (L.schema().column(li[i]).type != R.schema().column(ri[i]).type) {
      type_mismatch = true;
    }
  }
  const size_t ln = left.size();
  const size_t rn = right.size();
  if (type_mismatch || ln == 0 || rn == 0) return EmptyLike(out_schema);

  // Matching (left row, right row) pairs, per probe chunk; concatenated in
  // chunk order they reproduce the row HashJoin's output order exactly
  // (left rows in order, right matches in right insertion order).
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> parts(
      NumChunksFor(ln));

  if (li.size() == 1 && L.schema().column(li[0]).type == DataType::kInt64) {
    // Hot path: single int64 key (entity ids everywhere in the sims).
    const Column& lc = L.col(li[0]);
    const Column& rc = R.col(ri[0]);
    std::unordered_map<int64_t, std::vector<uint32_t>> index;
    index.reserve(rn);
    for (size_t j = 0; j < rn; ++j) {
      const uint32_t r = RowAt(right, j);
      if (rc.IsValid(r)) index[rc.i64[r]].push_back(r);
    }
    RunChunks(pool, ln, [&](size_t c, size_t b, size_t e) {
      auto& out = parts[c];
      for (size_t j = b; j < e; ++j) {
        const uint32_t lr = RowAt(left, j);
        if (!lc.IsValid(lr)) continue;
        auto it = index.find(lc.i64[lr]);
        if (it == index.end()) continue;
        for (uint32_t rr : it->second) out.emplace_back(lr, rr);
      }
    });
  } else {
    std::vector<KeyCol> lk, rk;
    for (size_t i : li) lk.push_back(MakeKeyCol(L.col(i)));
    for (size_t i : ri) rk.push_back(MakeKeyCol(R.col(i)));
    std::unordered_map<uint64_t, std::vector<uint32_t>> index;
    index.reserve(rn);
    for (size_t j = 0; j < rn; ++j) {
      const uint32_t r = RowAt(right, j);
      if (AnyNull(rk, r)) continue;
      index[RowKeyHash(rk, r)].push_back(r);
    }
    RunChunks(pool, ln, [&](size_t c, size_t b, size_t e) {
      auto& out = parts[c];
      for (size_t j = b; j < e; ++j) {
        const uint32_t lr = RowAt(left, j);
        if (AnyNull(lk, lr)) continue;
        auto it = index.find(RowKeyHash(lk, lr));
        if (it == index.end()) continue;
        for (uint32_t rr : it->second) {
          if (RowKeyEq(lk, lr, rk, rr)) out.emplace_back(lr, rr);
        }
      }
    });
  }

  size_t total = 0;
  for (const auto& p : parts) total += p.size();
  SelVector lsel, rsel;
  lsel.reserve(total);
  rsel.reserve(total);
  for (const auto& p : parts) {
    for (const auto& [lr, rr] : p) {
      lsel.push_back(lr);
      rsel.push_back(rr);
    }
  }
  std::vector<std::shared_ptr<const Column>> out_cols;
  out_cols.reserve(L.num_columns() + R.num_columns());
  for (size_t i = 0; i < L.num_columns(); ++i) {
    out_cols.push_back(GatherColumn(L.col(i), lsel, pool));
  }
  for (size_t i = 0; i < R.num_columns(); ++i) {
    out_cols.push_back(GatherColumn(R.col(i), rsel, pool));
  }
  MDE_OBS_COUNT("vec.hash_join.rows_out", total);
  MDE_OBS_ATTR_ADD(rows_out, total);
  return std::make_shared<const ColumnarTable>(
      std::move(out_schema), std::move(out_cols), total);
}

Result<std::shared_ptr<const ColumnarTable>> VecNestedLoopJoin(
    const ColumnarTable& left, const std::string& left_col, CmpOp op,
    const ColumnarTable& right, const std::string& right_col,
    ThreadPool* pool) {
  MDE_TRACE_SPAN("vec.nested_loop_join");
  MDE_OBS_COUNT("vec.nested_loop_join.rows_in",
                left.num_rows() + right.num_rows());
  MDE_OBS_ATTR_ADD(rows_in, left.num_rows() + right.num_rows());
  MDE_OBS_COUNT("vec.chunks", NumChunksFor(left.num_rows()));
  MDE_ASSIGN_OR_RETURN(size_t li, left.schema().IndexOf(left_col));
  MDE_ASSIGN_OR_RETURN(size_t ri, right.schema().IndexOf(right_col));
  Schema out_schema = Schema::Concat(left.schema(), right.schema(), "r.");
  const Column& a = left.col(li);
  const Column& b = right.col(ri);
  const size_t ln = left.num_rows();
  const size_t rn = right.num_rows();
  const bool numeric =
      (a.type == DataType::kInt64 || a.type == DataType::kDouble) &&
      (b.type == DataType::kInt64 || b.type == DataType::kDouble);

  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> parts(
      NumChunksFor(ln));
  RunChunks(pool, ln, [&](size_t c, size_t lo, size_t hi) {
    auto& out = parts[c];
    for (size_t i = lo; i < hi; ++i) {
      const uint32_t lr = static_cast<uint32_t>(i);
      if (!a.IsValid(lr)) continue;
      if (numeric) {
        const double av = a.type == DataType::kInt64
                              ? static_cast<double>(a.i64[lr])
                              : a.f64[lr];
        for (uint32_t rr = 0; rr < rn; ++rr) {
          if (!b.IsValid(rr)) continue;
          const double bv = b.type == DataType::kInt64
                                ? static_cast<double>(b.i64[rr])
                                : b.f64[rr];
          bool keep = false;
          switch (op) {
            case CmpOp::kEq:
              keep = av == bv;
              break;
            case CmpOp::kNe:
              keep = av != bv;
              break;
            case CmpOp::kLt:
              keep = av < bv;
              break;
            case CmpOp::kLe:
              keep = av <= bv;
              break;
            case CmpOp::kGt:
              keep = av > bv;
              break;
            case CmpOp::kGe:
              keep = av >= bv;
              break;
          }
          if (keep) out.emplace_back(lr, rr);
        }
      } else {
        const Value av = a.ValueAt(lr);
        for (uint32_t rr = 0; rr < rn; ++rr) {
          const Value bv = b.ValueAt(rr);
          if (bv.is_null()) continue;
          if (EvalCmp(av, op, bv)) out.emplace_back(lr, rr);
        }
      }
    }
  });

  size_t total = 0;
  for (const auto& p : parts) total += p.size();
  SelVector lsel, rsel;
  lsel.reserve(total);
  rsel.reserve(total);
  for (const auto& p : parts) {
    for (const auto& [lr, rr] : p) {
      lsel.push_back(lr);
      rsel.push_back(rr);
    }
  }
  std::vector<std::shared_ptr<const Column>> out_cols;
  out_cols.reserve(left.num_columns() + right.num_columns());
  for (size_t i = 0; i < left.num_columns(); ++i) {
    out_cols.push_back(GatherColumn(left.col(i), lsel, pool));
  }
  for (size_t i = 0; i < right.num_columns(); ++i) {
    out_cols.push_back(GatherColumn(right.col(i), rsel, pool));
  }
  return std::make_shared<const ColumnarTable>(
      std::move(out_schema), std::move(out_cols), total);
}

Result<std::shared_ptr<const ColumnarTable>> VecGroupBy(
    const ColumnarBatch& in, const std::vector<std::string>& keys,
    const std::vector<AggSpec>& aggs, ThreadPool* pool) {
  MDE_TRACE_SPAN("vec.group_by");
  MDE_OBS_COUNT("vec.group_by.rows_in", in.size());
  MDE_OBS_ATTR_ADD(rows_in, in.size());
  MDE_OBS_COUNT("vec.chunks", NumChunksFor(in.size()));
  const ColumnarTable& T = *in.cols;
  std::vector<size_t> key_idx;
  for (const auto& k : keys) {
    MDE_ASSIGN_OR_RETURN(size_t i, T.schema().IndexOf(k));
    key_idx.push_back(i);
  }
  std::vector<size_t> agg_idx(aggs.size(), 0);
  for (size_t a = 0; a < aggs.size(); ++a) {
    if (aggs[a].kind != AggKind::kCount) {
      MDE_ASSIGN_OR_RETURN(size_t i, T.schema().IndexOf(aggs[a].column));
      const DataType dt = T.schema().column(i).type;
      if (dt != DataType::kInt64 && dt != DataType::kDouble) {
        return Status::InvalidArgument("aggregate over non-numeric column: " +
                                       aggs[a].column);
      }
      agg_idx[a] = i;
    }
  }
  const size_t n = in.size();
  const size_t naggs = aggs.size();

  // Phase 1 (serial): assign dense group ids in first-appearance order —
  // the order is part of the operator contract, so this pass stays
  // sequential; it is a cheap hash+compare per row.
  std::vector<KeyCol> kc;
  for (size_t i : key_idx) kc.push_back(MakeKeyCol(T.col(i)));
  std::vector<uint32_t> gid(n);
  SelVector first_row;  // representative (first) row of each group
  std::unordered_map<uint64_t, std::vector<uint32_t>> buckets;
  buckets.reserve(std::min<size_t>(n, 1024));
  for (size_t j = 0; j < n; ++j) {
    const uint32_t r = RowAt(in, j);
    auto& cand = buckets[RowKeyHash(kc, r)];
    uint32_t g = std::numeric_limits<uint32_t>::max();
    for (uint32_t cg : cand) {
      if (RowKeyEq(kc, r, kc, first_row[cg])) {
        g = cg;
        break;
      }
    }
    if (g == std::numeric_limits<uint32_t>::max()) {
      g = static_cast<uint32_t>(first_row.size());
      first_row.push_back(r);
      cand.push_back(g);
    }
    gid[j] = g;
  }
  const size_t ngroups = first_row.size();

  // Phase 2: accumulate. Chunk-parallel with dense per-chunk partials
  // combined in ascending chunk order when the group count is small enough
  // for the partials to be cheap; otherwise one serial row-order pass. The
  // switch depends only on the data, so any pool size produces identical
  // bits either way.
  std::vector<AggState> states(ngroups * naggs);
  auto accumulate = [&](AggState* st, size_t j, uint32_t r) {
    AggState* row_states = st + static_cast<size_t>(gid[j]) * naggs;
    for (size_t a = 0; a < naggs; ++a) {
      AggState& s = row_states[a];
      if (aggs[a].kind == AggKind::kCount) {
        ++s.count;
        continue;
      }
      const Column& ac = T.col(agg_idx[a]);
      if (!ac.IsValid(r)) continue;
      const double x = ac.type == DataType::kInt64
                           ? static_cast<double>(ac.i64[r])
                           : ac.f64[r];
      ++s.count;
      s.sum += x;
      s.min = std::min(s.min, x);
      s.max = std::max(s.max, x);
    }
  };
  if (naggs > 0 && ngroups > 0) {
    if (ngroups <= kMaxParallelGroups) {
      const size_t chunks = NumChunksFor(n);
      std::vector<std::vector<AggState>> partials(chunks);
      RunChunks(pool, n, [&](size_t c, size_t b, size_t e) {
        auto& st = partials[c];
        st.assign(ngroups * naggs, AggState{});
        for (size_t j = b; j < e; ++j) accumulate(st.data(), j, RowAt(in, j));
      });
      for (size_t c = 0; c < chunks; ++c) {
        for (size_t i = 0; i < states.size(); ++i) {
          const AggState& p = partials[c][i];
          AggState& s = states[i];
          s.count += p.count;
          s.sum += p.sum;
          s.min = std::min(s.min, p.min);
          s.max = std::max(s.max, p.max);
        }
      }
    } else {
      for (size_t j = 0; j < n; ++j) accumulate(states.data(), j, RowAt(in, j));
    }
  }

  std::vector<ColumnSpec> out_specs;
  for (size_t i : key_idx) out_specs.push_back(T.schema().column(i));
  for (const auto& a : aggs) {
    out_specs.push_back({a.as, a.kind == AggKind::kCount ? DataType::kInt64
                                                         : DataType::kDouble});
  }
  MDE_OBS_COUNT("vec.group_by.rows_out", ngroups);
  MDE_OBS_ATTR_ADD(rows_out, ngroups);
  if (out_specs.empty()) {
    return std::make_shared<const ColumnarTable>(
        Schema(std::move(out_specs)),
        std::vector<std::shared_ptr<const Column>>{}, ngroups);
  }
  ColumnarTableBuilder out(Schema(std::move(out_specs)));
  out.Reserve(ngroups);
  for (size_t i = 0; i < key_idx.size(); ++i) {
    out.SetColumn(i, GatherColumn(T.col(key_idx[i]), first_row, pool));
  }
  for (size_t a = 0; a < naggs; ++a) {
    ColumnBuilder& cb = out.column(key_idx.size() + a);
    for (size_t g = 0; g < ngroups; ++g) {
      const AggState& st = states[g * naggs + a];
      switch (aggs[a].kind) {
        case AggKind::kCount:
          cb.AppendInt64(static_cast<int64_t>(st.count));
          break;
        case AggKind::kSum:
          cb.AppendDouble(st.sum);
          break;
        case AggKind::kAvg:
          if (st.count > 0) {
            cb.AppendDouble(st.sum / static_cast<double>(st.count));
          } else {
            cb.AppendNull();
          }
          break;
        case AggKind::kMin:
          if (st.count > 0) {
            cb.AppendDouble(st.min);
          } else {
            cb.AppendNull();
          }
          break;
        case AggKind::kMax:
          if (st.count > 0) {
            cb.AppendDouble(st.max);
          } else {
            cb.AppendNull();
          }
          break;
      }
    }
  }
  return out.Finish();
}

Result<SelVector> VecOrderBy(const ColumnarBatch& in,
                             const std::vector<std::string>& columns,
                             std::vector<bool> descending) {
  MDE_TRACE_SPAN("vec.order_by");
  MDE_OBS_COUNT("vec.order_by.rows_in", in.size());
  MDE_OBS_ATTR_ADD(rows_in, in.size());
  const ColumnarTable& T = *in.cols;
  std::vector<size_t> idx;
  for (const auto& c : columns) {
    MDE_ASSIGN_OR_RETURN(size_t i, T.schema().IndexOf(c));
    idx.push_back(i);
  }
  if (descending.empty()) descending.assign(columns.size(), false);
  if (descending.size() != columns.size()) {
    return Status::InvalidArgument("descending flags arity mismatch");
  }
  // Dictionary codes are first-appearance ordered, not sorted, so sort keys
  // need a code -> lexicographic-rank table (one sort of the dictionary
  // instead of O(n log n) string compares).
  struct SortCol {
    const Column* c;
    std::vector<uint32_t> rank;
  };
  std::vector<SortCol> cols;
  for (size_t i : idx) {
    SortCol s{&T.col(i), {}};
    if (s.c->type == DataType::kString) {
      const auto& dict = *s.c->dict;
      std::vector<uint32_t> order(dict.size());
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(),
                [&dict](uint32_t x, uint32_t y) { return dict[x] < dict[y]; });
      s.rank.resize(dict.size());
      for (uint32_t k = 0; k < order.size(); ++k) s.rank[order[k]] = k;
    }
    cols.push_back(std::move(s));
  }
  auto three_way = [](const SortCol& s, uint32_t a, uint32_t b) -> int {
    const Column& c = *s.c;
    const bool va = c.IsValid(a);
    const bool vb = c.IsValid(b);
    if (!va || !vb) return static_cast<int>(va) - static_cast<int>(vb);
    switch (c.type) {
      case DataType::kInt64: {
        // Matches Value::LessThan, which compares numerics as double.
        const double x = static_cast<double>(c.i64[a]);
        const double y = static_cast<double>(c.i64[b]);
        return x < y ? -1 : (y < x ? 1 : 0);
      }
      case DataType::kDouble: {
        const double x = c.f64[a];
        const double y = c.f64[b];
        return x < y ? -1 : (y < x ? 1 : 0);
      }
      case DataType::kBool:
        return static_cast<int>(c.b8[a]) - static_cast<int>(c.b8[b]);
      case DataType::kString: {
        const uint32_t x = s.rank[c.codes[a]];
        const uint32_t y = s.rank[c.codes[b]];
        return x < y ? -1 : (y < x ? 1 : 0);
      }
      case DataType::kNull:
        return 0;
    }
    return 0;
  };
  SelVector items;
  if (in.whole) {
    items.resize(in.cols->num_rows());
    std::iota(items.begin(), items.end(), 0);
  } else {
    items = in.sel;
  }
  std::stable_sort(items.begin(), items.end(),
                   [&](uint32_t a, uint32_t b) {
                     for (size_t k = 0; k < cols.size(); ++k) {
                       const int cmp = three_way(cols[k], a, b);
                       if (cmp < 0) return !descending[k];
                       if (cmp > 0) return static_cast<bool>(descending[k]);
                     }
                     return false;
                   });
  return items;
}

SelVector VecDistinct(const ColumnarBatch& in) {
  MDE_TRACE_SPAN("vec.distinct");
  MDE_OBS_COUNT("vec.distinct.rows_in", in.size());
  MDE_OBS_ATTR_ADD(rows_in, in.size());
  const ColumnarTable& T = *in.cols;
  std::vector<KeyCol> kc;
  for (size_t i = 0; i < T.num_columns(); ++i) kc.push_back(MakeKeyCol(T.col(i)));
  std::unordered_map<uint64_t, std::vector<uint32_t>> buckets;
  buckets.reserve(in.size());
  SelVector out;
  for (size_t j = 0; j < in.size(); ++j) {
    const uint32_t r = RowAt(in, j);
    auto& cand = buckets[RowKeyHash(kc, r)];
    bool dup = false;
    for (uint32_t rr : cand) {
      if (RowKeyEq(kc, r, kc, rr)) {
        dup = true;
        break;
      }
    }
    if (!dup) {
      cand.push_back(r);
      out.push_back(r);
    }
  }
  MDE_OBS_COUNT("vec.distinct.rows_out", out.size());
  MDE_OBS_ATTR_ADD(rows_out, out.size());
  return out;
}

}  // namespace mde::table
