#ifndef MDE_TABLE_CATALOG_H_
#define MDE_TABLE_CATALOG_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "table/table.h"
#include "table/value.h"
#include "util/status.h"

namespace mde::table {

/// Per-column statistics, computed in one pass over the cached columnar
/// blocks (or the boxed rows for tables that stay on the row path) and
/// memoized on the Table. The cost model (cost.h) turns these into
/// selectivity and cardinality estimates; the optimizer (optimizer.h) turns
/// those into predicate order, projection pruning, and join order.
struct ColumnStats {
  DataType type = DataType::kNull;
  /// Fraction of rows whose cell is null.
  double null_fraction = 0.0;
  /// Numeric range (int64/double/bool as 0/1). Valid when has_range.
  bool has_range = false;
  double min = 0.0;
  double max = 0.0;
  /// Estimated count of distinct non-null values. For dictionary-encoded
  /// string columns this is the dictionary cardinality (exact for the
  /// column the dictionary was built for, an upper bound after zero-copy
  /// gathers that share a superset dictionary). Numeric columns use an
  /// exact count up to kDistinctExact values and a KMV sketch beyond it.
  double distinct = 0.0;
  /// Non-null values appear in ascending / descending order (both set for
  /// constant columns). Useful as a sargability hint and kept per the
  /// classic catalog shape even though no operator exploits it yet.
  bool sorted_asc = false;
  bool sorted_desc = false;
  /// Small equi-width histogram over [min, max] for numeric columns
  /// (empty when the column is non-numeric, all-null, or constant).
  /// hist[i] counts non-null values in bucket i; buckets split [min, max]
  /// evenly, the last bucket closed on both sides.
  std::vector<uint64_t> hist;
  uint64_t hist_rows = 0;  // total non-null values binned into hist

  static constexpr size_t kHistBuckets = 16;
  /// Distinct counts up to this are exact; beyond it the KMV estimate
  /// takes over.
  static constexpr size_t kDistinctExact = 4096;
};

/// Table-level statistics: row count plus one ColumnStats per schema slot.
struct TableStats {
  size_t row_count = 0;
  Schema schema;
  std::vector<ColumnStats> columns;

  const ColumnStats* Find(const std::string& name) const;
};

/// Computes statistics for `t` from its columnar blocks when it converts
/// (one vectorized pass per column) or from the boxed rows otherwise.
/// Deterministic: the same table always produces the same stats.
std::shared_ptr<const TableStats> ComputeTableStats(const Table& t);

/// Process-wide statistics catalog. Two roles:
///
/// 1. *Base-table statistics*, memoized on the Table itself (the same
///    discipline as the cached ToColumnar conversion): the first StatsFor
///    call scans the table once, later calls are O(1). Mutating the table
///    drops the cache.
/// 2. *Execution feedback*: after a profiled ExecutePlan, the actual
///    row counts per plan node are folded back in, keyed by the node's
///    structural fingerprint (cost.h). The cost model consults these
///    actuals before its analytic estimates, so cardinality estimates
///    self-correct across a run — the "self-tuning" half of the paper's
///    query-optimization analogy.
class Catalog {
 public:
  static Catalog& Global();

  /// Memoized per-table statistics. Never fails: a table that cannot be
  /// scanned still yields a row count.
  std::shared_ptr<const TableStats> StatsFor(const Table& t);

  /// Records the observed output cardinality of a plan node
  /// (last-write-wins; plans are usually re-run unchanged, so the most
  /// recent actual is the best predictor).
  void RecordActual(const std::string& fingerprint, double actual_rows);

  /// Looks up a previously observed cardinality. Returns false on miss.
  bool LookupActual(const std::string& fingerprint, double* rows) const;

  size_t feedback_entries() const;

  /// Drops all execution feedback (tests; a long-lived process that
  /// reloads its data wholesale may also want a clean slate).
  void ClearFeedback();

 private:
  Catalog() = default;

  mutable std::mutex mu_;
  std::unordered_map<std::string, double> actuals_;
};

}  // namespace mde::table

#endif  // MDE_TABLE_CATALOG_H_
