#ifndef MDE_GRIDFIELDS_GRIDFIELDS_H_
#define MDE_GRIDFIELDS_GRIDFIELDS_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "util/status.h"

namespace mde::gridfields {

/// The Howe-Maier gridfield algebra (Section 2.2): a grid is a collection
/// of heterogeneous cells of various dimensions with an incidence relation
/// x <= y (x = y, or dim(x) < dim(y) and x touches y). A gridfield binds
/// data to the cells of one dimension. The central operator for model data
/// harmonization is regrid: map source cells onto target cells via a
/// many-to-one assignment and aggregate the bound values.

/// Reference to one cell: its dimension and index within that dimension.
struct CellRef {
  int dim = 0;
  size_t index = 0;

  bool operator==(const CellRef& other) const {
    return dim == other.dim && index == other.index;
  }
};

/// A grid: cell counts per dimension plus the incidence relation, stored as
/// adjacency from each higher-dimensional cell to its lower-dimensional
/// faces.
class Grid {
 public:
  explicit Grid(int max_dim);

  int max_dim() const { return max_dim_; }
  size_t num_cells(int dim) const;

  /// Adds one cell of dimension `dim`; returns its index.
  size_t AddCell(int dim);

  /// Declares lower <= higher (dim(lower) must be < dim(higher)).
  Status AddIncidence(CellRef lower, CellRef higher);

  /// True iff x <= y per the paper's definition.
  bool Leq(CellRef x, CellRef y) const;

  /// Faces of `higher` of dimension `face_dim`.
  std::vector<size_t> Faces(CellRef higher, int face_dim) const;

 private:
  int max_dim_;
  std::vector<size_t> counts_;
  /// faces_[dim][index] = list of incident (lower-dim, lower-index) pairs.
  std::vector<std::vector<std::vector<CellRef>>> faces_;
};

/// Builds the standard regular 2-D grid: (nx+1)*(ny+1) 0-cells (nodes),
/// horizontal+vertical 1-cells (edges), nx*ny 2-cells (quads), with the full
/// incidence relation. This is the CORIE-style structured case; irregular
/// grids use the raw AddCell/AddIncidence API.
Grid MakeRegularGrid2D(size_t nx, size_t ny);

/// A gridfield: data bound to the cells of one dimension of a grid
/// (the function f_k of the paper, materialized).
class GridField {
 public:
  GridField(const Grid* grid, int dim, std::vector<double> data);

  const Grid& grid() const { return *grid_; }
  int dim() const { return dim_; }
  size_t size() const { return data_.size(); }
  double value(size_t cell) const { return data_[cell]; }
  const std::vector<double>& data() const { return data_; }

 private:
  const Grid* grid_;
  int dim_;
  std::vector<double> data_;
};

/// Aggregation functions for regrid.
enum class RegridAgg { kSum, kMean, kMax, kMin, kCount };

/// Many-to-one cell assignment: assignment[i] is the target cell receiving
/// source cell i, or kUnassigned to drop it.
inline constexpr size_t kUnassigned = static_cast<size_t>(-1);

/// regrid(source -> target): aggregates source values into
/// `num_target_cells` buckets per `assignment`. Target cells receiving no
/// source cells get `fill`.
Result<std::vector<double>> Regrid(const GridField& source,
                                   size_t num_target_cells,
                                   const std::vector<size_t>& assignment,
                                   RegridAgg agg, double fill = 0.0);

/// Restriction (the relational-selection analogue): keeps the cells whose
/// value satisfies `pred`. Returns the kept old indices (sorted) — callers
/// compact values/assignments through this map.
std::vector<size_t> RestrictCells(const GridField& field,
                                  const std::function<bool(double)>& pred);

/// The optimization the paper highlights: a restriction on TARGET cells
/// commutes with regrid. Both sides of the rewrite are provided so the
/// equivalence (and the cost difference) can be measured.
struct CommuteResult {
  /// Aggregates for kept target cells, in kept-target order.
  std::vector<double> values;
  /// Source cells actually aggregated (the work metric).
  size_t source_cells_processed = 0;
};

/// Unoptimized order: regrid everything, then keep only targets where
/// keep_target[t] is true.
Result<CommuteResult> RegridThenRestrict(const GridField& source,
                                         size_t num_target_cells,
                                         const std::vector<size_t>& assignment,
                                         RegridAgg agg,
                                         const std::vector<bool>& keep_target);

/// Optimized order: drop source cells assigned to unkept targets first,
/// then regrid only the survivors. Produces identical values.
Result<CommuteResult> RestrictThenRegrid(const GridField& source,
                                         size_t num_target_cells,
                                         const std::vector<size_t>& assignment,
                                         RegridAgg agg,
                                         const std::vector<bool>& keep_target);

}  // namespace mde::gridfields

#endif  // MDE_GRIDFIELDS_GRIDFIELDS_H_
