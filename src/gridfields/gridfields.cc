#include "gridfields/gridfields.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace mde::gridfields {

Grid::Grid(int max_dim) : max_dim_(max_dim) {
  MDE_CHECK_GE(max_dim, 0);
  counts_.assign(static_cast<size_t>(max_dim) + 1, 0);
  faces_.assign(static_cast<size_t>(max_dim) + 1, {});
}

size_t Grid::num_cells(int dim) const {
  MDE_CHECK(dim >= 0 && dim <= max_dim_);
  return counts_[static_cast<size_t>(dim)];
}

size_t Grid::AddCell(int dim) {
  MDE_CHECK(dim >= 0 && dim <= max_dim_);
  faces_[static_cast<size_t>(dim)].emplace_back();
  return counts_[static_cast<size_t>(dim)]++;
}

Status Grid::AddIncidence(CellRef lower, CellRef higher) {
  if (lower.dim >= higher.dim) {
    return Status::InvalidArgument(
        "incidence requires dim(lower) < dim(higher)");
  }
  if (lower.dim < 0 || higher.dim > max_dim_ ||
      lower.index >= num_cells(lower.dim) ||
      higher.index >= num_cells(higher.dim)) {
    return Status::OutOfRange("cell reference outside grid");
  }
  faces_[static_cast<size_t>(higher.dim)][higher.index].push_back(lower);
  return Status::OK();
}

bool Grid::Leq(CellRef x, CellRef y) const {
  if (x == y) return true;
  if (x.dim >= y.dim) return false;
  const auto& fy = faces_[static_cast<size_t>(y.dim)][y.index];
  for (const CellRef& f : fy) {
    if (f == x) return true;
    // Transitive closure through intermediate faces.
    if (f.dim > x.dim && Leq(x, f)) return true;
  }
  return false;
}

std::vector<size_t> Grid::Faces(CellRef higher, int face_dim) const {
  MDE_CHECK(face_dim >= 0 && face_dim < higher.dim);
  std::vector<size_t> out;
  for (const CellRef& f :
       faces_[static_cast<size_t>(higher.dim)][higher.index]) {
    if (f.dim == face_dim) out.push_back(f.index);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Grid MakeRegularGrid2D(size_t nx, size_t ny) {
  MDE_CHECK(nx > 0 && ny > 0);
  Grid g(2);
  const size_t node_cols = nx + 1;
  // 0-cells: nodes, row-major (y * (nx+1) + x).
  for (size_t i = 0; i < (nx + 1) * (ny + 1); ++i) g.AddCell(0);
  // 1-cells: horizontal edges first (per row, nx each), then vertical.
  auto node = [&](size_t x, size_t y) { return y * node_cols + x; };
  std::vector<std::pair<size_t, size_t>> edges;
  for (size_t y = 0; y <= ny; ++y) {
    for (size_t x = 0; x < nx; ++x) {
      edges.push_back({node(x, y), node(x + 1, y)});
    }
  }
  const size_t h_edges = edges.size();
  for (size_t y = 0; y < ny; ++y) {
    for (size_t x = 0; x <= nx; ++x) {
      edges.push_back({node(x, y), node(x, y + 1)});
    }
  }
  for (const auto& [a, b] : edges) {
    const size_t e = g.AddCell(1);
    MDE_CHECK(g.AddIncidence({0, a}, {1, e}).ok());
    MDE_CHECK(g.AddIncidence({0, b}, {1, e}).ok());
  }
  // 2-cells: quads with their four edges and four corners.
  auto h_edge = [&](size_t x, size_t y) { return y * nx + x; };
  auto v_edge = [&](size_t x, size_t y) {
    return h_edges + y * (nx + 1) + x;
  };
  for (size_t y = 0; y < ny; ++y) {
    for (size_t x = 0; x < nx; ++x) {
      const size_t q = g.AddCell(2);
      MDE_CHECK(g.AddIncidence({1, h_edge(x, y)}, {2, q}).ok());
      MDE_CHECK(g.AddIncidence({1, h_edge(x, y + 1)}, {2, q}).ok());
      MDE_CHECK(g.AddIncidence({1, v_edge(x, y)}, {2, q}).ok());
      MDE_CHECK(g.AddIncidence({1, v_edge(x + 1, y)}, {2, q}).ok());
      MDE_CHECK(g.AddIncidence({0, node(x, y)}, {2, q}).ok());
      MDE_CHECK(g.AddIncidence({0, node(x + 1, y)}, {2, q}).ok());
      MDE_CHECK(g.AddIncidence({0, node(x, y + 1)}, {2, q}).ok());
      MDE_CHECK(g.AddIncidence({0, node(x + 1, y + 1)}, {2, q}).ok());
    }
  }
  return g;
}

GridField::GridField(const Grid* grid, int dim, std::vector<double> data)
    : grid_(grid), dim_(dim), data_(std::move(data)) {
  MDE_CHECK(grid != nullptr);
  MDE_CHECK_EQ(data_.size(), grid->num_cells(dim));
}

namespace {

struct AggState {
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  size_t count = 0;
};

double Finalize(const AggState& st, RegridAgg agg, double fill) {
  if (st.count == 0) return fill;
  switch (agg) {
    case RegridAgg::kSum:
      return st.sum;
    case RegridAgg::kMean:
      return st.sum / static_cast<double>(st.count);
    case RegridAgg::kMax:
      return st.max;
    case RegridAgg::kMin:
      return st.min;
    case RegridAgg::kCount:
      return static_cast<double>(st.count);
  }
  return fill;
}

}  // namespace

Result<std::vector<double>> Regrid(const GridField& source,
                                   size_t num_target_cells,
                                   const std::vector<size_t>& assignment,
                                   RegridAgg agg, double fill) {
  if (assignment.size() != source.size()) {
    return Status::InvalidArgument("one assignment entry per source cell");
  }
  std::vector<AggState> states(num_target_cells);
  for (size_t i = 0; i < assignment.size(); ++i) {
    const size_t t = assignment[i];
    if (t == kUnassigned) continue;
    if (t >= num_target_cells) {
      return Status::OutOfRange("assignment outside target grid");
    }
    AggState& st = states[t];
    const double v = source.value(i);
    st.sum += v;
    st.min = std::min(st.min, v);
    st.max = std::max(st.max, v);
    ++st.count;
  }
  std::vector<double> out(num_target_cells);
  for (size_t t = 0; t < num_target_cells; ++t) {
    out[t] = Finalize(states[t], agg, fill);
  }
  return out;
}

std::vector<size_t> RestrictCells(const GridField& field,
                                  const std::function<bool(double)>& pred) {
  std::vector<size_t> kept;
  for (size_t i = 0; i < field.size(); ++i) {
    if (pred(field.value(i))) kept.push_back(i);
  }
  return kept;
}

Result<CommuteResult> RegridThenRestrict(const GridField& source,
                                         size_t num_target_cells,
                                         const std::vector<size_t>& assignment,
                                         RegridAgg agg,
                                         const std::vector<bool>& keep_target) {
  if (keep_target.size() != num_target_cells) {
    return Status::InvalidArgument("one keep flag per target cell");
  }
  MDE_ASSIGN_OR_RETURN(std::vector<double> all,
                       Regrid(source, num_target_cells, assignment, agg));
  CommuteResult out;
  // Every assigned source cell was processed.
  for (size_t t : assignment) {
    if (t != kUnassigned) ++out.source_cells_processed;
  }
  for (size_t t = 0; t < num_target_cells; ++t) {
    if (keep_target[t]) out.values.push_back(all[t]);
  }
  return out;
}

Result<CommuteResult> RestrictThenRegrid(const GridField& source,
                                         size_t num_target_cells,
                                         const std::vector<size_t>& assignment,
                                         RegridAgg agg,
                                         const std::vector<bool>& keep_target) {
  if (keep_target.size() != num_target_cells) {
    return Status::InvalidArgument("one keep flag per target cell");
  }
  if (assignment.size() != source.size()) {
    return Status::InvalidArgument("one assignment entry per source cell");
  }
  // Pushed-down restriction: unassign source cells mapping to dropped
  // targets before aggregating.
  std::vector<size_t> pruned = assignment;
  CommuteResult out;
  for (size_t i = 0; i < pruned.size(); ++i) {
    if (pruned[i] == kUnassigned) continue;
    if (pruned[i] >= num_target_cells) {
      return Status::OutOfRange("assignment outside target grid");
    }
    if (!keep_target[pruned[i]]) {
      pruned[i] = kUnassigned;
    } else {
      ++out.source_cells_processed;
    }
  }
  MDE_ASSIGN_OR_RETURN(std::vector<double> all,
                       Regrid(source, num_target_cells, pruned, agg));
  for (size_t t = 0; t < num_target_cells; ++t) {
    if (keep_target[t]) out.values.push_back(all[t]);
  }
  return out;
}

}  // namespace mde::gridfields
