#ifndef MDE_UTIL_DISTRIBUTIONS_H_
#define MDE_UTIL_DISTRIBUTIONS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace mde {

/// Samplers for the distributions used throughout the library. All are
/// implemented from scratch (no <random> distribution objects) so that
/// results are bit-reproducible across standard-library implementations.

/// Uniform real on [lo, hi).
double SampleUniform(Rng& rng, double lo, double hi);

/// Standard normal via Marsaglia's polar method.
double SampleStandardNormal(Rng& rng);

/// Normal with the given mean and standard deviation (sigma >= 0).
double SampleNormal(Rng& rng, double mean, double sigma);

/// Exponential with rate lambda > 0 (mean 1/lambda).
double SampleExponential(Rng& rng, double lambda);

/// Lognormal: exp(Normal(mu, sigma)).
double SampleLognormal(Rng& rng, double mu, double sigma);

/// Gamma(shape k > 0, scale theta > 0) via Marsaglia–Tsang squeeze.
double SampleGamma(Rng& rng, double shape, double scale);

/// Beta(a, b) via two gammas.
double SampleBeta(Rng& rng, double a, double b);

/// Poisson with mean lambda >= 0. Knuth's product method for small lambda,
/// PTRS-style transformed rejection fallback for large lambda.
int64_t SamplePoisson(Rng& rng, double lambda);

/// Binomial(n, p) by inversion / waiting-time decomposition.
int64_t SampleBinomial(Rng& rng, int64_t n, double p);

/// Geometric number of failures before the first success, p in (0, 1].
int64_t SampleGeometric(Rng& rng, double p);

/// Bernoulli(p).
bool SampleBernoulli(Rng& rng, double p);

/// Discrete distribution over {0, ..., n-1} with O(1) sampling after O(n)
/// setup (Walker/Vose alias method). Weights need not be normalized.
class AliasTable {
 public:
  explicit AliasTable(const std::vector<double>& weights);

  /// Returns an index in [0, size()) with probability proportional to its
  /// weight.
  size_t Sample(Rng& rng) const;

  size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<size_t> alias_;
};

/// Standard normal density.
double NormalPdf(double x, double mean, double sigma);

/// Log of the normal density (numerically safe for small densities).
double NormalLogPdf(double x, double mean, double sigma);

/// Standard normal CDF via erfc.
double NormalCdf(double x, double mean, double sigma);

/// Inverse standard normal CDF (Acklam's rational approximation, |err| <
/// 1.15e-9). `p` must lie in (0, 1).
double NormalQuantile(double p);

}  // namespace mde

#endif  // MDE_UTIL_DISTRIBUTIONS_H_
