#ifndef MDE_UTIL_CHECK_H_
#define MDE_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// MDE_CHECK family: abort-on-failure assertions for programmer errors
/// (dimension mismatches, out-of-range indices, broken invariants). These are
/// always on, including in release builds — the library is used for
/// statistical experiments where silent corruption is worse than a crash.

#define MDE_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "MDE_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (false)

#define MDE_CHECK_MSG(cond, msg)                                            \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "MDE_CHECK failed at %s:%d: %s (%s)\n",          \
                   __FILE__, __LINE__, #cond, msg);                         \
      std::abort();                                                         \
    }                                                                       \
  } while (false)

#define MDE_CHECK_EQ(a, b) MDE_CHECK((a) == (b))
#define MDE_CHECK_NE(a, b) MDE_CHECK((a) != (b))
#define MDE_CHECK_LT(a, b) MDE_CHECK((a) < (b))
#define MDE_CHECK_LE(a, b) MDE_CHECK((a) <= (b))
#define MDE_CHECK_GT(a, b) MDE_CHECK((a) > (b))
#define MDE_CHECK_GE(a, b) MDE_CHECK((a) >= (b))

#endif  // MDE_UTIL_CHECK_H_
