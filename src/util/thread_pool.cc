#include "util/thread_pool.h"

#include "util/check.h"

namespace mde {

ThreadPool::ThreadPool(size_t num_threads) {
  MDE_CHECK_GE(num_threads, 1u);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_ready_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::WaitAll() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  // Chunk so each worker gets a contiguous block: preserves cache locality
  // for the partitioned-data workloads this pool serves.
  const size_t workers = threads_.size();
  const size_t chunk = (n + workers - 1) / workers;
  for (size_t start = 0; start < n; start += chunk) {
    const size_t end = std::min(n, start + chunk);
    Submit([&fn, start, end] {
      for (size_t i = start; i < end; ++i) fn(i);
    });
  }
  WaitAll();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace mde
