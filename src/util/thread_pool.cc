#include "util/thread_pool.h"

#include <algorithm>
#include <string>

#include "obs/context.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "util/check.h"

namespace mde {
namespace {

/// Identifies the pool (and worker slot) owning the current thread so that
/// Submit/WaitAll/ParallelFor can detect reentrant calls from pool tasks.
thread_local ThreadPool* tls_pool = nullptr;
thread_local size_t tls_worker = 0;
/// Number of pool tasks currently on this thread's call stack. WaitAll
/// called from depth d cannot wait for in_flight_ to reach 0 — the d
/// enclosing tasks are themselves in flight — so it waits for
/// in_flight_ <= d instead.
thread_local size_t tls_depth = 0;

}  // namespace

ThreadPool::ThreadPool(size_t num_threads)
    : worker_counters_(num_threads) {
  MDE_CHECK_GE(num_threads, 1u);
  queues_.resize(num_threads);
  queue_mus_ = std::make_unique<std::mutex[]>(num_threads);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
#ifndef MDE_OBS_DISABLED
  // Publish each worker's WorkerStats at sample time: the INSTANT queue
  // depth (the cumulative counters cannot show backlog) plus the cumulative
  // execution counters, so /statusz and /metrics see the same
  // WorkerStatsSnapshot the API returns. Gauge handles are resolved once
  // here; the hook itself only reads the snapshot and stores.
  struct WorkerGauges {
    obs::Gauge* queue_depth;
    obs::Gauge* tasks_executed;
    obs::Gauge* steals;
    obs::Gauge* help_runs;
  };
  std::vector<WorkerGauges> gauges;
  gauges.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    const std::string prefix = "pool.worker." + std::to_string(i);
    gauges.push_back(
        {obs::Registry::Global().gauge(prefix + ".queue_depth"),
         obs::Registry::Global().gauge(prefix + ".tasks_executed"),
         obs::Registry::Global().gauge(prefix + ".steals"),
         obs::Registry::Global().gauge(prefix + ".help_runs")});
  }
  sample_hook_id_ =
      obs::RegisterSampleHook([this, gauges = std::move(gauges)] {
        const std::vector<WorkerStats> stats = WorkerStatsSnapshot();
        for (size_t i = 0; i < stats.size() && i < gauges.size(); ++i) {
          gauges[i].queue_depth->Set(
              static_cast<double>(stats[i].queue_depth));
          gauges[i].tasks_executed->Set(
              static_cast<double>(stats[i].tasks_executed));
          gauges[i].steals->Set(static_cast<double>(stats[i].steals));
          gauges[i].help_runs->Set(static_cast<double>(stats[i].help_runs));
        }
      });
#endif
}

ThreadPool::~ThreadPool() {
#ifndef MDE_OBS_DISABLED
  // Before anything else: the hook captures `this`, and UnregisterSampleHook
  // blocks until any in-flight hook run completes.
  if (sample_hook_id_ != 0) obs::UnregisterSampleHook(sample_hook_id_);
#endif
  shutdown_.store(true, std::memory_order_seq_cst);
  {
    std::lock_guard<std::mutex> lock(sleep_mu_);
  }
  task_ready_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
#ifndef MDE_OBS_DISABLED
  // Causal context propagation: capture the submitter's query context and
  // restore it in whichever thread executes the task — the chosen worker, a
  // thief, or a help-running waiter. Write-only side-band state, so this
  // cannot affect task results or scheduling.
  if (const obs::Context& ctx = obs::CurrentContext(); ctx.active()) {
    task = [ctx, inner = std::move(task)] {
      obs::ContextGuard guard(ctx);
      inner();
    };
  }
#endif
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  // A worker submitting work keeps it on its own deque (front = hot end);
  // external submitters round-robin across workers.
  const size_t target = (tls_pool == this)
                            ? tls_worker
                            : next_queue_.fetch_add(
                                  1, std::memory_order_relaxed) %
                                  queues_.size();
  {
    std::lock_guard<std::mutex> lock(queue_mus_[target]);
    queues_[target].push_front(std::move(task));
  }
  const size_t depth = pending_.fetch_add(1, std::memory_order_seq_cst) + 1;
  MDE_OBS_COUNT("pool.submitted", 1);
  MDE_OBS_OBSERVE("pool.queue_depth", depth);
  {
    // Empty critical section: serializes with a worker's checked wait so
    // the notify below cannot be lost between its predicate check and
    // going to sleep.
    std::lock_guard<std::mutex> lock(sleep_mu_);
  }
  task_ready_.notify_one();
}

bool ThreadPool::TryGetTask(size_t self, std::function<void()>* out) {
  const size_t n = queues_.size();
  // Own deque first (front), then steal from siblings (back).
  {
    std::lock_guard<std::mutex> lock(queue_mus_[self]);
    if (!queues_[self].empty()) {
      *out = std::move(queues_[self].front());
      queues_[self].pop_front();
      pending_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  for (size_t k = 1; k < n; ++k) {
    const size_t victim = (self + k) % n;
    std::lock_guard<std::mutex> lock(queue_mus_[victim]);
    if (!queues_[victim].empty()) {
      *out = std::move(queues_[victim].back());
      queues_[victim].pop_back();
      pending_.fetch_sub(1, std::memory_order_relaxed);
      worker_counters_[self].steals.fetch_add(1, std::memory_order_relaxed);
      MDE_OBS_COUNT("pool.steals", 1);
      return true;
    }
  }
  return false;
}

std::vector<ThreadPool::WorkerStats> ThreadPool::WorkerStatsSnapshot() const {
  std::vector<WorkerStats> out(worker_counters_.size());
  for (size_t i = 0; i < worker_counters_.size(); ++i) {
    out[i].tasks_executed =
        worker_counters_[i].tasks_executed.load(std::memory_order_relaxed);
    out[i].steals =
        worker_counters_[i].steals.load(std::memory_order_relaxed);
    out[i].help_runs =
        worker_counters_[i].help_runs.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(queue_mus_[i]);
    out[i].queue_depth = queues_[i].size();
  }
  return out;
}

void ThreadPool::Execute(std::function<void()>& task) {
  MDE_OBS_COUNT("pool.tasks_executed", 1);
  if (tls_pool == this) {
    worker_counters_[tls_worker].tasks_executed.fetch_add(
        1, std::memory_order_relaxed);
  }
  ++tls_depth;
  task();
  --tls_depth;
  if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    {
      std::lock_guard<std::mutex> lock(wait_mu_);
    }
    all_done_.notify_all();
  }
}

void ThreadPool::WorkerLoop(size_t index) {
  tls_pool = this;
  tls_worker = index;
#ifndef MDE_OBS_DISABLED
  obs::SetCurrentThreadName("worker-" + std::to_string(index));
  // Register with the sampling profiler so a running (or later-started)
  // session arms a per-thread CPU timer for this worker.
  obs::Profiler::Global().RegisterCurrentThread();
#endif
  std::function<void()> task;
  while (true) {
    if (TryGetTask(index, &task)) {
      Execute(task);
      task = nullptr;
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mu_);
    task_ready_.wait(lock, [this] {
      return shutdown_.load(std::memory_order_seq_cst) ||
             pending_.load(std::memory_order_seq_cst) > 0;
    });
    if (shutdown_.load(std::memory_order_seq_cst) &&
        pending_.load(std::memory_order_seq_cst) == 0) {
      return;
    }
  }
}

void ThreadPool::WaitAll() {
  if (tls_pool == this) {
    // Called from inside a pool task: help-run instead of blocking so the
    // pool cannot deadlock on its own workers. "Every task finished"
    // necessarily excludes the tls_depth enclosing tasks paused under this
    // frame. (Two tasks that each WaitAll on the other still cannot
    // terminate — use ParallelFor, which waits on its own chunk group, for
    // composable nesting.)
    std::function<void()> task;
    while (in_flight_.load(std::memory_order_acquire) > tls_depth) {
      if (TryGetTask(tls_worker, &task)) {
        worker_counters_[tls_worker].help_runs.fetch_add(
            1, std::memory_order_relaxed);
        MDE_OBS_COUNT("pool.help_runs", 1);
        Execute(task);
        task = nullptr;
      } else {
        std::this_thread::yield();
      }
    }
    return;
  }
  std::unique_lock<std::mutex> lock(wait_mu_);
  all_done_.wait(lock, [this] {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
}

size_t ThreadPool::ResolveGrain(size_t n, size_t grain) const {
  if (grain > 0) return grain;
  // Default: ~8 chunks per worker for steal-friendly load balance, but
  // never chunks smaller than 1 index.
  const size_t target_chunks = 8 * threads_.size();
  return std::max<size_t>(1, n / std::max<size_t>(1, target_chunks));
}

size_t ThreadPool::NumChunks(size_t n, size_t grain) const {
  if (n == 0) return 0;
  const size_t g = ResolveGrain(n, grain);
  return (n + g - 1) / g;
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& fn) {
  ParallelFor(n, 0, fn);
}

void ThreadPool::ParallelFor(size_t n, size_t grain,
                             const std::function<void(size_t)>& fn) {
  ParallelForChunks(n, grain,
                    [&fn](size_t /*chunk*/, size_t begin, size_t end) {
                      for (size_t i = begin; i < end; ++i) fn(i);
                    });
}

void ThreadPool::ParallelForChunks(
    size_t n, size_t grain,
    const std::function<void(size_t, size_t, size_t)>& fn) {
  if (n == 0) return;
  MDE_TRACE_SPAN("pool.parallel_for");
  const size_t g = ResolveGrain(n, grain);
  const size_t chunks = (n + g - 1) / g;
  MDE_OBS_COUNT("pool.parallel_for.calls", 1);
  MDE_OBS_COUNT("pool.parallel_for.chunks", chunks);
  if (chunks == 1) {
    fn(0, 0, n);
    return;
  }

  auto state = std::make_shared<ForState>();
  state->num_chunks = chunks;
  // Claims chunks until none remain. `fn` is only dereferenced under a
  // successful claim, which can happen only while the caller is still
  // blocked in this frame — so capturing it by pointer is safe even though
  // helper tasks may run (and immediately no-op) after we return.
  const auto* fn_ptr = &fn;
  auto run_chunks = [state, fn_ptr, n, g] {
    while (true) {
      const size_t c =
          state->next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= state->num_chunks) return;
      const size_t begin = c * g;
      const size_t end = std::min(n, begin + g);
      (*fn_ptr)(c, begin, end);
      if (state->completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          state->num_chunks) {
        {
          std::lock_guard<std::mutex> lock(state->mu);
        }
        state->done.notify_all();
      }
    }
  };

  const size_t helpers = std::min(threads_.size(), chunks - 1);
  for (size_t i = 0; i < helpers; ++i) Submit(run_chunks);
  // The caller participates: even if every worker is busy (e.g. this is a
  // nested ParallelFor issued from inside a pool task), all chunks get
  // executed right here.
  run_chunks();
  std::unique_lock<std::mutex> lock(state->mu);
  state->done.wait(lock, [&state] {
    return state->completed.load(std::memory_order_acquire) ==
           state->num_chunks;
  });
}

}  // namespace mde
