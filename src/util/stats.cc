#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/distributions.h"

namespace mde {

void RunningStat::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStat::Merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStat::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::std_error() const {
  return n_ > 0 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

void RunningCovariance::Add(double x, double y) {
  ++n_;
  const double n = static_cast<double>(n_);
  const double dx = x - mean_x_;
  const double dy = y - mean_y_;
  mean_x_ += dx / n;
  mean_y_ += dy / n;
  c_ += dx * (y - mean_y_);
  m2x_ += dx * (x - mean_x_);
  m2y_ += dy * (y - mean_y_);
}

double RunningCovariance::covariance() const {
  return n_ > 1 ? c_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningCovariance::correlation() const {
  if (n_ < 2) return 0.0;
  const double denom = std::sqrt(m2x_ * m2y_);
  return denom > 0.0 ? c_ / denom : 0.0;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double Variance(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double m = Mean(values);
  double ss = 0.0;
  for (double v : values) ss += (v - m) * (v - m);
  return ss / static_cast<double>(values.size() - 1);
}

double StdDev(const std::vector<double>& values) {
  return std::sqrt(Variance(values));
}

double Covariance(const std::vector<double>& x,
                  const std::vector<double>& y) {
  MDE_CHECK_EQ(x.size(), y.size());
  if (x.size() < 2) return 0.0;
  const double mx = Mean(x);
  const double my = Mean(y);
  double s = 0.0;
  for (size_t i = 0; i < x.size(); ++i) s += (x[i] - mx) * (y[i] - my);
  return s / static_cast<double>(x.size() - 1);
}

double Correlation(const std::vector<double>& x,
                   const std::vector<double>& y) {
  const double sx = StdDev(x);
  const double sy = StdDev(y);
  if (sx == 0.0 || sy == 0.0) return 0.0;
  return Covariance(x, y) / (sx * sy);
}

double Quantile(std::vector<double> values, double q) {
  MDE_CHECK(!values.empty());
  MDE_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double Autocorrelation(const std::vector<double>& values, size_t lag) {
  if (values.size() <= lag + 1) return 0.0;
  const double m = Mean(values);
  double num = 0.0;
  double den = 0.0;
  for (size_t i = 0; i < values.size(); ++i) {
    den += (values[i] - m) * (values[i] - m);
  }
  if (den == 0.0) return 0.0;
  for (size_t i = 0; i + lag < values.size(); ++i) {
    num += (values[i] - m) * (values[i + lag] - m);
  }
  return num / den;
}

double ConfidenceHalfWidth(const RunningStat& stat, double level) {
  MDE_CHECK(level > 0.0 && level < 1.0);
  if (stat.count() < 2) return 0.0;
  const double z = NormalQuantile(0.5 + level / 2.0);
  return z * stat.std_error();
}

std::vector<size_t> Histogram(const std::vector<double>& values, double lo,
                              double hi, size_t bins) {
  MDE_CHECK_GT(bins, 0u);
  MDE_CHECK_LT(lo, hi);
  std::vector<size_t> counts(bins, 0);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (double v : values) {
    double idx = (v - lo) / width;
    long b = static_cast<long>(idx);
    b = std::clamp<long>(b, 0, static_cast<long>(bins) - 1);
    ++counts[static_cast<size_t>(b)];
  }
  return counts;
}

}  // namespace mde
