#ifndef MDE_UTIL_THREAD_POOL_H_
#define MDE_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mde {

/// Work-stealing worker pool. Stands in for the MapReduce / HPC worker
/// fleets of the surveyed systems, but structured for the columnar
/// tuple-bundle kernels: each worker owns a deque of tasks (local pushes and
/// pops at the front, thieves steal from the back), so fan-out from inside a
/// pool task stays on the submitting worker's queue instead of funnelling
/// through one global lock.
///
/// Composability contract: ParallelFor / ParallelForChunks / ParallelReduce
/// and WaitAll are safe to call from INSIDE a pool task. The calling thread
/// help-runs outstanding chunks (or, for WaitAll, any queued task) instead
/// of blocking, so nested parallelism cannot deadlock — in the worst case
/// the nested call degenerates to a serial loop on the calling thread.
///
/// Determinism contract: chunk boundaries depend only on (n, grain), never
/// on the number of threads or the scheduling order, and ParallelReduce
/// combines per-chunk partials in ascending chunk order. A kernel whose
/// chunk results are position-addressed (as all the mcdb kernels are) is
/// therefore bit-identical across thread counts.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// Point-in-time copy of one worker's execution counters. Readable while
  /// the pool runs (the cells are relaxed atomics updated only by their
  /// owning worker): tasks_executed counts tasks run in the worker loop,
  /// steals counts tasks taken from a sibling's deque, help_runs counts
  /// tasks the worker drained from inside WaitAll instead of blocking.
  /// queue_depth is the worker deque's CURRENT length (read under the
  /// queue lock at snapshot time, not cumulative) — the backlog signal the
  /// per-worker sample-time gauges publish.
  struct WorkerStats {
    uint64_t tasks_executed = 0;
    uint64_t steals = 0;
    uint64_t help_runs = 0;
    uint64_t queue_depth = 0;
  };

  /// Per-worker counters, index-aligned with the worker threads.
  std::vector<WorkerStats> WorkerStatsSnapshot() const;

  /// Blocks until every submitted task has finished. When called from a
  /// worker thread of this pool, help-runs queued tasks instead of
  /// blocking.
  void WaitAll();

  size_t num_threads() const { return threads_.size(); }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// fn must be safe to call concurrently for distinct i. Equivalent to
  /// ParallelFor(n, /*grain=*/0, fn).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// As above with an explicit grain: indices are processed in contiguous
  /// chunks of `grain` (the last chunk may be short). grain == 0 selects a
  /// default of roughly n / (8 * num_threads), clamped to >= 1. n == 0 is a
  /// no-op.
  void ParallelFor(size_t n, size_t grain,
                   const std::function<void(size_t)>& fn);

  /// Chunk-granular variant for vectorizable kernels: runs
  /// fn(chunk_index, begin, end) for each chunk [begin, end) of size
  /// `grain`. Chunk boundaries are a pure function of (n, grain).
  void ParallelForChunks(
      size_t n, size_t grain,
      const std::function<void(size_t chunk, size_t begin, size_t end)>& fn);

  /// Number of chunks ParallelForChunks / ParallelReduce will use for
  /// (n, grain) — exposed so callers can pre-size per-chunk scratch.
  size_t NumChunks(size_t n, size_t grain) const;

  /// Deterministic parallel reduction: `map(begin, end)` produces the
  /// partial result of one chunk, and partials are folded left-to-right in
  /// chunk order with `combine`, independent of thread count and timing.
  template <typename T>
  T ParallelReduce(size_t n, size_t grain, T identity,
                   const std::function<T(size_t begin, size_t end)>& map,
                   const std::function<T(T, T)>& combine) {
    if (n == 0) return identity;
    const size_t g = ResolveGrain(n, grain);
    const size_t chunks = (n + g - 1) / g;
    std::vector<T> partials(chunks, identity);
    ParallelForChunks(n, g,
                      [&partials, &map](size_t c, size_t begin, size_t end) {
                        partials[c] = map(begin, end);
                      });
    T acc = std::move(partials[0]);
    for (size_t c = 1; c < chunks; ++c) {
      acc = combine(std::move(acc), std::move(partials[c]));
    }
    return acc;
  }

 private:
  /// Completion state shared between a ParallelFor caller and its helper
  /// tasks; helpers may outlive the call (they no-op once all chunks are
  /// claimed), hence shared_ptr ownership.
  struct ForState {
    std::atomic<size_t> next_chunk{0};
    std::atomic<size_t> completed{0};
    size_t num_chunks = 0;
    std::mutex mu;
    std::condition_variable done;
  };

  void WorkerLoop(size_t index);
  /// Pops from the worker's own deque or steals from a sibling.
  bool TryGetTask(size_t self, std::function<void()>* out);
  void Execute(std::function<void()>& task);
  size_t ResolveGrain(size_t n, size_t grain) const;

  /// One cache line per worker so counter updates never contend.
  struct alignas(64) WorkerCounters {
    std::atomic<uint64_t> tasks_executed{0};
    std::atomic<uint64_t> steals{0};
    std::atomic<uint64_t> help_runs{0};
  };

  std::vector<std::thread> threads_;
  std::vector<WorkerCounters> worker_counters_;
  /// queues_[i] is worker i's deque; guarded by queue_mus_[i].
  std::vector<std::deque<std::function<void()>>> queues_;
  std::unique_ptr<std::mutex[]> queue_mus_;
  std::atomic<size_t> next_queue_{0};  // round-robin for external Submit
  std::atomic<size_t> pending_{0};     // queued, not yet claimed
  std::atomic<size_t> in_flight_{0};   // queued + executing
  std::atomic<bool> shutdown_{false};

  std::mutex sleep_mu_;
  std::condition_variable task_ready_;
  std::mutex wait_mu_;
  std::condition_variable all_done_;
  /// Sampler-hook registration publishing per-worker queue_depth gauges
  /// (0 = none registered). Unregistered FIRST in the destructor — the
  /// hook runner blocks unregistration until in-flight hooks finish, so a
  /// hook can never observe a dying pool.
  uint64_t sample_hook_id_ = 0;
};

}  // namespace mde

#endif  // MDE_UTIL_THREAD_POOL_H_
