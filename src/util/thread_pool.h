#ifndef MDE_UTIL_THREAD_POOL_H_
#define MDE_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace mde {

/// Minimal fixed-size worker pool. Stands in for the MapReduce / HPC worker
/// fleets of the surveyed systems: tasks are independent partitions and the
/// caller joins on a batch with WaitAll().
class ThreadPool {
 public:
  /// Starts `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void WaitAll();

  size_t num_threads() const { return threads_.size(); }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// fn must be safe to call concurrently for distinct i.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace mde

#endif  // MDE_UTIL_THREAD_POOL_H_
