#include "util/distributions.h"

#include <cmath>

#include "util/check.h"

namespace mde {

double SampleUniform(Rng& rng, double lo, double hi) {
  MDE_CHECK_LE(lo, hi);
  return lo + (hi - lo) * rng.NextDouble();
}

double SampleStandardNormal(Rng& rng) {
  // Marsaglia polar method; discard the second variate to keep the sampler
  // stateless (bit-reproducibility across call orders matters more here than
  // the factor-of-two cost).
  while (true) {
    double u = 2.0 * rng.NextDouble() - 1.0;
    double v = 2.0 * rng.NextDouble() - 1.0;
    double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

double SampleNormal(Rng& rng, double mean, double sigma) {
  MDE_CHECK_GE(sigma, 0.0);
  return mean + sigma * SampleStandardNormal(rng);
}

double SampleExponential(Rng& rng, double lambda) {
  MDE_CHECK_GT(lambda, 0.0);
  // -log(1-U) avoids log(0) since NextDouble() < 1.
  return -std::log1p(-rng.NextDouble()) / lambda;
}

double SampleLognormal(Rng& rng, double mu, double sigma) {
  return std::exp(SampleNormal(rng, mu, sigma));
}

double SampleGamma(Rng& rng, double shape, double scale) {
  MDE_CHECK_GT(shape, 0.0);
  MDE_CHECK_GT(scale, 0.0);
  if (shape < 1.0) {
    // Boost to shape+1 then correct (Marsaglia–Tsang, section 6).
    double u = rng.NextDouble();
    while (u <= 0.0) u = rng.NextDouble();
    return SampleGamma(rng, shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  while (true) {
    double x = SampleStandardNormal(rng);
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    double u = rng.NextDouble();
    if (u < 1.0 - 0.0331 * x * x * x * x) return scale * d * v;
    if (u > 0.0 &&
        std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return scale * d * v;
    }
  }
}

double SampleBeta(Rng& rng, double a, double b) {
  double x = SampleGamma(rng, a, 1.0);
  double y = SampleGamma(rng, b, 1.0);
  return x / (x + y);
}

int64_t SamplePoisson(Rng& rng, double lambda) {
  MDE_CHECK_GE(lambda, 0.0);
  if (lambda == 0.0) return 0;
  if (lambda < 30.0) {
    // Knuth: multiply uniforms until the product drops below e^-lambda.
    const double limit = std::exp(-lambda);
    int64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= rng.NextDouble();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction, rejected below 0. For
  // lambda >= 30 the relative error is negligible for our simulation uses.
  while (true) {
    double x = lambda + std::sqrt(lambda) * SampleStandardNormal(rng);
    if (x >= -0.5) return static_cast<int64_t>(std::llround(x));
  }
}

int64_t SampleBinomial(Rng& rng, int64_t n, double p) {
  MDE_CHECK_GE(n, 0);
  MDE_CHECK(p >= 0.0 && p <= 1.0);
  if (n == 0 || p == 0.0) return 0;
  if (p == 1.0) return n;
  if (p > 0.5) return n - SampleBinomial(rng, n, 1.0 - p);
  if (static_cast<double>(n) * p < 30.0) {
    // Waiting-time (geometric skips) method: O(np) expected.
    const double log_q = std::log1p(-p);
    int64_t x = -1;
    double sum = 0.0;
    while (true) {
      double u = rng.NextDouble();
      while (u <= 0.0) u = rng.NextDouble();
      double g = std::floor(std::log(u) / log_q) + 1.0;
      sum += g;
      ++x;
      if (sum > static_cast<double>(n)) break;
    }
    return x;
  }
  // Normal approximation for large np, with continuity correction.
  const double mean = static_cast<double>(n) * p;
  const double sd = std::sqrt(mean * (1.0 - p));
  while (true) {
    double x = mean + sd * SampleStandardNormal(rng);
    int64_t k = static_cast<int64_t>(std::llround(x));
    if (k >= 0 && k <= n) return k;
  }
}

int64_t SampleGeometric(Rng& rng, double p) {
  MDE_CHECK(p > 0.0 && p <= 1.0);
  if (p == 1.0) return 0;
  double u = rng.NextDouble();
  while (u <= 0.0) u = rng.NextDouble();
  return static_cast<int64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

bool SampleBernoulli(Rng& rng, double p) { return rng.NextDouble() < p; }

AliasTable::AliasTable(const std::vector<double>& weights) {
  const size_t n = weights.size();
  MDE_CHECK_GT(n, 0u);
  double total = 0.0;
  for (double w : weights) {
    MDE_CHECK_GE(w, 0.0);
    total += w;
  }
  MDE_CHECK_GT(total, 0.0);
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) scaled[i] = weights[i] * n / total;
  std::vector<size_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    size_t s = small.back();
    small.pop_back();
    size_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (size_t i : large) prob_[i] = 1.0;
  for (size_t i : small) prob_[i] = 1.0;  // numeric leftovers
}

size_t AliasTable::Sample(Rng& rng) const {
  size_t column = rng.NextBounded(prob_.size());
  return rng.NextDouble() < prob_[column] ? column : alias_[column];
}

double NormalPdf(double x, double mean, double sigma) {
  const double z = (x - mean) / sigma;
  return std::exp(-0.5 * z * z) / (sigma * std::sqrt(2.0 * M_PI));
}

double NormalLogPdf(double x, double mean, double sigma) {
  const double z = (x - mean) / sigma;
  return -0.5 * z * z - std::log(sigma) - 0.5 * std::log(2.0 * M_PI);
}

double NormalCdf(double x, double mean, double sigma) {
  return 0.5 * std::erfc(-(x - mean) / (sigma * std::sqrt(2.0)));
}

double NormalQuantile(double p) {
  MDE_CHECK(p > 0.0 && p < 1.0);
  // Acklam's rational approximation.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  const double phigh = 1.0 - plow;
  double q, r;
  if (p < plow) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > phigh) {
    q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  q = p - 0.5;
  r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
          a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

}  // namespace mde
