#include "util/rng.h"

namespace mde {
namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& w : s_) w = sm.Next();
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0,1) with full double precision.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless method.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = -bound % bound;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

void Rng::Jump() {
  static constexpr uint64_t kJump[] = {0x180ec6d33cfd0abaULL,
                                       0xd5a61266f0c9392cULL,
                                       0xa9582618e03fc9aaULL,
                                       0x39abdc4529b1661cULL};
  uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (1ULL << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      Next();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

Rng Rng::Substream(uint64_t seed, uint64_t index) {
  Rng rng(seed);
  for (uint64_t i = 0; i < index; ++i) rng.Jump();
  return rng;
}

BatchRng::BatchRng(Rng& seeder) {
  for (int l = 0; l < 4; ++l) {
    SplitMix64 sm(seeder.Next());
    for (int w = 0; w < 4; ++w) state_[w * 4 + l] = sm.Next();
  }
}

void BatchRng::RefillUniform() {
  simd::RngBlock(state_, raw_);
  simd::UniformBlock(raw_, uni_);
  upos_ = 0;
}

void BatchRng::RefillNormal() {
  simd::RngBlock(state_, raw_);
  simd::NormalBlock(raw_, nrm_);
  npos_ = 0;
}

double BatchRng::NextUniform() {
  if (upos_ == simd::kRngBatch) RefillUniform();
  return uni_[upos_++];
}

double BatchRng::NextNormal() {
  if (npos_ == simd::kRngBatch) RefillNormal();
  return nrm_[npos_++];
}

void BatchRng::FillUniform(double* out, size_t n) {
  size_t i = 0;
  while (upos_ < simd::kRngBatch && i < n) out[i++] = uni_[upos_++];
  while (n - i >= simd::kRngBatch) {
    simd::RngBlock(state_, raw_);
    simd::UniformBlock(raw_, out + i);
    i += simd::kRngBatch;
  }
  if (i < n) {
    RefillUniform();
    while (i < n) out[i++] = uni_[upos_++];
  }
}

void BatchRng::FillNormal(double* out, size_t n) {
  size_t i = 0;
  while (npos_ < simd::kRngBatch && i < n) out[i++] = nrm_[npos_++];
  while (n - i >= simd::kRngBatch) {
    simd::RngBlock(state_, raw_);
    simd::NormalBlock(raw_, out + i);
    i += simd::kRngBatch;
  }
  if (i < n) {
    RefillNormal();
    while (i < n) out[i++] = nrm_[npos_++];
  }
}

}  // namespace mde
