#ifndef MDE_UTIL_STATS_H_
#define MDE_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace mde {

/// Numerically stable running mean/variance accumulator (Welford's
/// algorithm). Merge() allows parallel partial accumulations to be combined
/// (Chan et al.), which the Monte Carlo executors rely on.
class RunningStat {
 public:
  RunningStat() = default;

  void Add(double x);
  /// Combines `other` into this accumulator.
  void Merge(const RunningStat& other);

  size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (divides by n-1); 0 when n < 2.
  double variance() const;
  double stddev() const;
  /// Standard error of the mean.
  double std_error() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Running covariance accumulator for paired observations.
class RunningCovariance {
 public:
  void Add(double x, double y);
  size_t count() const { return n_; }
  double mean_x() const { return mean_x_; }
  double mean_y() const { return mean_y_; }
  /// Sample covariance (divides by n-1); 0 when n < 2.
  double covariance() const;
  double correlation() const;

 private:
  size_t n_ = 0;
  double mean_x_ = 0.0;
  double mean_y_ = 0.0;
  double c_ = 0.0;
  double m2x_ = 0.0;
  double m2y_ = 0.0;
};

/// Mean of `values`; 0 for empty input.
double Mean(const std::vector<double>& values);

/// Sample variance of `values` (n-1 denominator); 0 when size < 2.
double Variance(const std::vector<double>& values);

double StdDev(const std::vector<double>& values);

/// Sample covariance between x and y (must be the same length).
double Covariance(const std::vector<double>& x, const std::vector<double>& y);

/// Pearson correlation; 0 if either side is constant.
double Correlation(const std::vector<double>& x, const std::vector<double>& y);

/// q-quantile (q in [0,1]) by linear interpolation between order statistics
/// (type-7, the R/NumPy default). Copies and partially sorts internally.
double Quantile(std::vector<double> values, double q);

/// Lag-k sample autocorrelation.
double Autocorrelation(const std::vector<double>& values, size_t lag);

/// Two-sided normal-theory confidence interval half-width for the mean of
/// `stat` at the given confidence level (e.g. 0.95).
double ConfidenceHalfWidth(const RunningStat& stat, double level);

/// Equi-width histogram over [lo, hi] with `bins` buckets; values outside
/// the range are clamped into the edge buckets.
std::vector<size_t> Histogram(const std::vector<double>& values, double lo,
                              double hi, size_t bins);

}  // namespace mde

#endif  // MDE_UTIL_STATS_H_
