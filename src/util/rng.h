#ifndef MDE_UTIL_RNG_H_
#define MDE_UTIL_RNG_H_

#include <array>
#include <cstddef>
#include <cstdint>

#include "simd/simd.h"

namespace mde {

/// SplitMix64: used to seed Xoshiro state from a single 64-bit seed.
/// Reference: Vigna, http://prng.di.unimi.it/splitmix64.c.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// Xoshiro256++ pseudorandom generator. Fast, high-quality, with a 2^256-1
/// period and an efficient jump function that partitions the stream into
/// 2^128 non-overlapping substreams — the property we rely on for
/// reproducible parallel Monte Carlo (each worker/replication gets its own
/// substream). Satisfies the C++ UniformRandomBitGenerator concept.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the four state words from `seed` via SplitMix64.
  explicit Rng(uint64_t seed = 0x1234abcd5678efULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next 64 random bits.
  result_type operator()() { return Next(); }
  uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, bound) with no modulo bias (Lemire's method).
  uint64_t NextBounded(uint64_t bound);

  /// Advances this generator by 2^128 steps. Calling Jump() k times on a
  /// fresh generator yields the start of substream k.
  void Jump();

  /// Returns a generator positioned at substream `index` relative to `seed`:
  /// equivalent to seeding then calling Jump() `index` times, but documents
  /// intent at call sites that fan out replications.
  static Rng Substream(uint64_t seed, uint64_t index);

  /// The four Xoshiro256++ state words. Exporting and re-importing the
  /// state positions a generator exactly where it was — the basis of the
  /// checkpoint/restart layer's bit-identical replay (src/ckpt).
  using State = std::array<uint64_t, 4>;
  State state() const { return {s_[0], s_[1], s_[2], s_[3]}; }
  void set_state(const State& s) {
    s_[0] = s[0];
    s_[1] = s[1];
    s_[2] = s[2];
    s_[3] = s[3];
  }

 private:
  uint64_t s_[4];
};

/// Batched variate generator over the SIMD kernel layer: four interleaved
/// xoshiro256++ lanes advanced simd::kRngBatch (= 64) draws at a time, with
/// the raw bits mapped to uniforms or Box-Muller normals by the dispatched
/// block kernels. The produced stream is a pure function of the seeding Rng
/// and the sequence of calls — independent of dispatch tier (bitwise, see
/// simd/simd.h) and of how consumers chunk their Fill requests.
///
/// This is deliberately NOT the same stream as Rng::NextDouble() or the
/// scalar one-at-a-time samplers; consumers switching to BatchRng change
/// their sampled values (but not their distribution). Within BatchRng the
/// stream is stable and reproducible.
class BatchRng {
 public:
  /// Seeds the four lanes by drawing exactly four values from `seeder`
  /// (advancing it deterministically), each expanded to a lane state via
  /// SplitMix64.
  explicit BatchRng(Rng& seeder);

  /// Next uniform draw in [0, 1).
  double NextUniform();
  /// Next standard normal draw.
  double NextNormal();

  /// Fills out[0..n) with the next n uniforms in [0, 1). Full 64-draw
  /// blocks are written directly to `out`; partial blocks go through an
  /// internal buffer, so chunking does not change the stream.
  void FillUniform(double* out, size_t n);
  /// Fills out[0..n) with the next n standard normals.
  void FillNormal(double* out, size_t n);

 private:
  void RefillUniform();
  void RefillNormal();

  alignas(64) uint64_t state_[16];  // lane l word w at state_[w * 4 + l]
  alignas(64) uint64_t raw_[simd::kRngBatch];
  alignas(64) double uni_[simd::kRngBatch];
  alignas(64) double nrm_[simd::kRngBatch];
  size_t upos_ = simd::kRngBatch;  // buffer drained
  size_t npos_ = simd::kRngBatch;
};

}  // namespace mde

#endif  // MDE_UTIL_RNG_H_
