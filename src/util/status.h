#ifndef MDE_UTIL_STATUS_H_
#define MDE_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace mde {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kNumericError,
  kUnimplemented,
  kInternal,
};

/// Returns a short human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Arrow-style status object: an (code, message) pair where kOk carries no
/// message. Returned by every fallible operation in the library. Cheap to
/// copy in the OK case.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NumericError(std::string msg) {
    return Status(StatusCode::kNumericError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Result<T> holds either a value or an error Status. Access to the value of
/// a failed result aborts the program (programmer error).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value keeps `return value;` ergonomic.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return value_.value(); }
  T& value() & { return value_.value(); }
  T&& value() && { return std::move(value_).value(); }

  /// Returns the value, or `fallback` if this result failed.
  T value_or(T fallback) const {
    return ok() ? value_.value() : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace mde

/// Propagates a non-OK Status out of the enclosing function.
#define MDE_RETURN_NOT_OK(expr)                \
  do {                                         \
    ::mde::Status _st = (expr);                \
    if (!_st.ok()) return _st;                 \
  } while (false)

/// Evaluates a Result<T> expression, propagating errors, else binds `lhs`.
#define MDE_ASSIGN_OR_RETURN(lhs, expr)        \
  auto MDE_CONCAT_(_res_, __LINE__) = (expr);  \
  if (!MDE_CONCAT_(_res_, __LINE__).ok())      \
    return MDE_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(MDE_CONCAT_(_res_, __LINE__)).value()

#define MDE_CONCAT_IMPL_(a, b) a##b
#define MDE_CONCAT_(a, b) MDE_CONCAT_IMPL_(a, b)

#endif  // MDE_UTIL_STATUS_H_
