#ifndef MDE_UTIL_ALIGNED_H_
#define MDE_UTIL_ALIGNED_H_

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace mde {

/// Minimal allocator that over-aligns every allocation to `Align` bytes.
/// Column blocks and bundle attribute blocks use 64 (one cache line), so
/// SIMD loads never split a line and the AVX2 kernels may use aligned
/// moves on block starts. Zero-size allocations still return a unique,
/// aligned pointer (operator new guarantees this).
template <typename T, size_t Align = 64>
class AlignedAllocator {
 public:
  static_assert(Align >= alignof(T), "Align must not weaken T's alignment");
  static_assert((Align & (Align - 1)) == 0, "Align must be a power of two");

  using value_type = T;
  using size_type = size_t;
  using difference_type = ptrdiff_t;
  using propagate_on_container_move_assignment = std::true_type;
  using is_always_equal = std::true_type;

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  T* allocate(size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Align}));
  }
  void deallocate(T* p, size_t) noexcept {
    ::operator delete(p, std::align_val_t{Align});
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
};

/// std::vector whose data() is 64-byte aligned. Drop-in replacement for the
/// hot block vectors; iterators/element access are unchanged.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T, 64>>;

/// True when `p` is aligned to `align` bytes. For debug asserts at kernel
/// entry points.
inline bool IsAligned(const void* p, size_t align) {
  return (reinterpret_cast<uintptr_t>(p) & (align - 1)) == 0;
}

}  // namespace mde

#endif  // MDE_UTIL_ALIGNED_H_
