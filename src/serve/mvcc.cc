#include "serve/mvcc.h"

#include <utility>

#include "obs/metrics.h"

namespace mde::serve {

/// Shared between the chain's deque and every SnapshotRef pinning the
/// version. `pins` is the reclamation ground truth: incremented only under
/// the chain mutex (Pin), decremented lock-free by SnapshotRef::Release —
/// so a zero observed under the mutex can only stay zero or be re-raised by
/// a later Pin, never concurrently resurrected.
struct SnapshotRef::Node {
  explicit Node(Version v) : version(std::move(v)) {}
  const Version version;
  std::atomic<uint64_t> pins{0};
  uint64_t retire_epoch = kLive;  // guarded by the chain mutex
  static constexpr uint64_t kLive = ~0ull;
};

uint64_t SnapshotRef::version() const { return node_->version.number; }

const simsql::DatabaseState& SnapshotRef::state() const {
  return node_->version.state;
}

void SnapshotRef::Release() {
  if (node_ != nullptr) {
    node_->pins.fetch_sub(1, std::memory_order_release);
    node_.reset();
  }
}

VersionChain::VersionChain(size_t min_retain)
    : min_retain_(min_retain == 0 ? 1 : min_retain) {}

uint64_t VersionChain::Install(simsql::DatabaseState state) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t epoch = epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
  Version v;
  v.number = next_number_++;
  v.install_epoch = epoch;
  v.state = std::move(state);
  if (!nodes_.empty()) nodes_.back()->retire_epoch = epoch;
  nodes_.push_back(std::make_shared<SnapshotRef::Node>(std::move(v)));
  ReclaimLocked();
  MDE_OBS_GAUGE_SET("serve.mvcc.live_versions",
                    static_cast<double>(nodes_.size()));
  return next_number_ - 1;
}

SnapshotRef VersionChain::PinHead() {
  std::lock_guard<std::mutex> lock(mu_);
  if (nodes_.empty()) return SnapshotRef();
  std::shared_ptr<SnapshotRef::Node> node = nodes_.back();
  node->pins.fetch_add(1, std::memory_order_relaxed);
  return SnapshotRef(std::move(node));
}

SnapshotRef VersionChain::Pin(uint64_t number) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& node : nodes_) {
    if (node->version.number == number) {
      node->pins.fetch_add(1, std::memory_order_relaxed);
      return SnapshotRef(node);
    }
  }
  return SnapshotRef();
}

uint64_t VersionChain::head_version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return nodes_.empty() ? kNone : nodes_.back()->version.number;
}

size_t VersionChain::live_versions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return nodes_.size();
}

void VersionChain::ReclaimLocked() {
  // A version is reclaimable iff it is retired, unpinned, and older than
  // the min_retain_ newest versions. The acquire fence pairs with the
  // release decrement in SnapshotRef::Release: once we observe pins == 0
  // here, every read the releasing session made through its snapshot
  // happened-before the state is destroyed.
  uint64_t freed = 0;
  for (auto it = nodes_.begin();
       it != nodes_.end() && nodes_.size() > min_retain_;) {
    SnapshotRef::Node& node = **it;
    if (node.retire_epoch != SnapshotRef::Node::kLive &&
        node.pins.load(std::memory_order_acquire) == 0) {
      it = nodes_.erase(it);
      ++freed;
    } else {
      ++it;
    }
  }
  if (freed > 0) {
    reclaimed_.fetch_add(freed, std::memory_order_relaxed);
    MDE_OBS_COUNT("serve.mvcc.reclaimed", freed);
  }
}

}  // namespace mde::serve
