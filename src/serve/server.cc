#include "serve/server.h"

#include <cstring>
#include <limits>
#include <sstream>
#include <utility>

#include "obs/context.h"
#include "obs/http.h"
#include "obs/metrics.h"

namespace mde::serve {

namespace {

/// Stable fingerprint of a query name (cache key + attribution).
uint64_t QueryFingerprint(const std::string& name) {
  return obs::FingerprintString("serve.query:" + name);
}

/// Order-independent parameter hash: std::map iterates sorted by name, so
/// two requests binding the same values hash identically regardless of how
/// the caller built the map. Doubles are hashed by IEEE-754 payload —
/// bit-identity is the contract everywhere else too.
uint64_t ParamHash(const std::map<std::string, double>& params) {
  uint64_t h = obs::FingerprintString("serve.params");
  for (const auto& [name, value] : params) {
    h = obs::FingerprintMix(h, obs::FingerprintString(name));
    uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    h = obs::FingerprintMix(h, bits);
  }
  return h;
}

}  // namespace

Session::Session(Server* server, uint64_t id, std::string tag)
    : server_(server),
      id_(id),
      tag_(std::move(tag)),
      fingerprint_(
          obs::FingerprintMix(obs::FingerprintString("serve.session"), id)) {}

Result<Answer> Session::Execute(const Request& req) {
  return server_->Execute(*this, req);
}

Server::Server(simsql::MarkovChainDb& db, Options opts)
    : db_(db),
      opts_(opts),
      chain_(opts.min_retain_versions),
      cache_(opts.cache) {
  diag_handler_id_ = obs::RegisterDiagHandler(
      "/sessionz",
      [this](const std::string&) {
        obs::DiagPage page;
        page.body = RenderSessionz();
        return page;
      },
      "<a href=\"/sessionz\">/sessionz</a> — serve sessions &amp; result "
      "cache");
}

Server::~Server() { obs::UnregisterDiagHandler(diag_handler_id_); }

Status Server::AddQuery(McQuerySpec spec) {
  if (spec.name.empty() || !spec.eval) {
    return Status::InvalidArgument("serve: query needs a name and an eval");
  }
  if (!queries_.emplace(spec.name, spec).second) {
    return Status::AlreadyExists("serve: query '" + spec.name +
                                 "' already registered");
  }
  return Status::OK();
}

Status Server::Start() {
  std::lock_guard<std::mutex> lock(advance_mu_);
  if (runner_ != nullptr) {
    return Status::FailedPrecondition("serve: already started");
  }
  // Effectively unbounded steps: the serving chain advances for the
  // process lifetime; Done() is never the stop condition here.
  const size_t steps = std::numeric_limits<size_t>::max() - 1;
  runner_ = std::make_unique<simsql::ChainRunner>(
      db_, steps, opts_.seed, /*rep=*/0,
      [this](size_t version, const simsql::DatabaseState& state) -> Status {
        // Copy-install: the runner keeps evolving its working state; the
        // chain owns an immutable copy per version. Tables share their
        // frozen columnar blocks, so the copy is cheap after first freeze.
        const uint64_t installed = chain_.Install(state);
        if (installed != version) {
          return Status::Internal("serve: version drift between runner and "
                                  "chain");
        }
        return Status::OK();
      });
  return runner_->StepOnce();  // realize + install version 0
}

Status Server::AdvanceVersion() {
  std::lock_guard<std::mutex> lock(advance_mu_);
  if (runner_ == nullptr) {
    return Status::FailedPrecondition("serve: Start() before advancing");
  }
  MDE_RETURN_NOT_OK(runner_->StepOnce());
  // New head: age the cache one epoch so entries about superseded versions
  // drift toward eviction.
  cache_.AdvanceEpoch();
  return Status::OK();
}

std::shared_ptr<Session> Server::OpenSession(std::string tag) {
  const uint64_t id =
      next_session_id_.fetch_add(1, std::memory_order_relaxed);
  std::shared_ptr<Session> session(
      new Session(this, id, std::move(tag)));
  std::lock_guard<std::mutex> lock(sessions_mu_);
  sessions_.push_back(session);
  MDE_OBS_COUNT("serve.sessions.opened", 1);
  return session;
}

Result<Answer> Server::Execute(Session& session, const Request& req) {
  MDE_OBS_QUERY_SCOPE("serve.session", session.fingerprint_);
  const auto it = queries_.find(req.query);
  if (it == queries_.end()) {
    return Status::NotFound("serve: no query '" + req.query + "'");
  }
  SnapshotRef snap = req.version == Request::kHead
                         ? chain_.PinHead()
                         : chain_.Pin(req.version);
  if (!snap.valid()) {
    return Status::FailedPrecondition(
        req.version == Request::kHead
            ? "serve: no version installed yet (Start() the server)"
            : "serve: version " + std::to_string(req.version) +
                  " is not resident (never installed, or reclaimed)");
  }

  CacheKey key;
  key.query_fp = QueryFingerprint(req.query);
  key.param_hash = ParamHash(req.params);
  key.version = snap.version();
  // Replication i of this key always evaluates with Substream(rep_seed, i):
  // a pure function of (base seed, key, i). This is what makes an answer
  // assembled from cached + topped-up reps bit-identical to any single
  // session running the same reps itself.
  const uint64_t rep_seed = obs::FingerprintMix(
      obs::FingerprintMix(obs::FingerprintMix(opts_.seed, key.query_fp),
                          key.param_hash),
      key.version);
  const McQuerySpec& spec = it->second;
  Result<ResultCache::FetchResult> fetched = cache_.Fetch(
      key, req.target_half_width, opts_.min_reps, req.max_reps,
      [&](uint64_t rep) -> Result<double> {
        Rng rng = Rng::Substream(rep_seed, rep);
        return spec.eval(snap.state(), req.params, rng);
      });
  if (!fetched.ok()) return fetched.status();

  Answer answer;
  answer.estimate = fetched.value().estimate;
  answer.half_width = fetched.value().half_width;
  answer.reps = fetched.value().reps;
  answer.reps_added = fetched.value().reps_added;
  answer.version = key.version;
  answer.cache_hit = fetched.value().pure_hit;

  session.queries_.fetch_add(1, std::memory_order_relaxed);
  if (answer.cache_hit) {
    session.cache_hits_.fetch_add(1, std::memory_order_relaxed);
  }
  session.reps_run_.fetch_add(answer.reps_added, std::memory_order_relaxed);
  MDE_OBS_COUNT("serve.requests", 1);
  return answer;
}

std::string Server::RenderSessionz() const {
  std::ostringstream os;
  os << "serve sessions\n";
  os << "head_version: ";
  const uint64_t head = chain_.head_version();
  if (head == VersionChain::kNone) {
    os << "(none)";
  } else {
    os << head;
  }
  os << "\nlive_versions: " << chain_.live_versions()
     << "\nreclaimed_versions: " << chain_.reclaimed() << "\n";
  const CacheStats cs = cache_.stats();
  os << "cache: entries=" << cs.entries << " bytes=" << cs.bytes
     << " pure_hits=" << cs.pure_hits << " topups=" << cs.topups
     << " misses=" << cs.misses << " reps_run=" << cs.reps_run
     << " reps_saved=" << cs.reps_saved << " evictions=" << cs.evictions
     << "\n";
  os << "sessions:\n";
  std::lock_guard<std::mutex> lock(sessions_mu_);
  size_t open = 0;
  for (const auto& weak : sessions_) {
    const std::shared_ptr<Session> s = weak.lock();
    if (s == nullptr) continue;
    ++open;
    os << "  #" << s->id() << " tag=" << s->tag()
       << " queries=" << s->queries() << " cache_hits=" << s->cache_hits()
       << " reps_run=" << s->reps_run() << "\n";
  }
  if (open == 0) os << "  (none open)\n";
  return os.str();
}

Result<std::vector<std::vector<Answer>>> ServeLoop(
    Server& server, const std::vector<SessionWorkload>& workloads,
    ThreadPool* pool) {
  std::vector<std::vector<Answer>> results(workloads.size());
  std::vector<Status> statuses(workloads.size());
  const auto run_one = [&server, &workloads, &results,
                        &statuses](size_t i) {
    const std::shared_ptr<Session> session =
        server.OpenSession(workloads[i].tag);
    results[i].reserve(workloads[i].requests.size());
    for (const Request& req : workloads[i].requests) {
      Result<Answer> answer = session->Execute(req);
      if (!answer.ok()) {
        statuses[i] = answer.status();
        return;  // abort this session's replay; others continue
      }
      results[i].push_back(std::move(answer).value());
    }
  };
  if (pool != nullptr) {
    for (size_t i = 0; i < workloads.size(); ++i) {
      pool->Submit([&run_one, i] { run_one(i); });
    }
    pool->WaitAll();
  } else {
    for (size_t i = 0; i < workloads.size(); ++i) run_one(i);
  }
  for (const Status& st : statuses) {
    if (!st.ok()) return st;
  }
  return results;
}

}  // namespace mde::serve
