#include "serve/cache.h"

#include <cmath>
#include <limits>
#include <vector>

#include "obs/context.h"
#include "obs/metrics.h"

namespace mde::serve {

namespace {

/// z * s / sqrt(n) with the same tiny-n discipline as obs::CiMonitor: with
/// fewer than two draws no CLT bound exists, and a zero would satisfy every
/// precision target — the exact cache-poisoning path the monitor hardening
/// closed.
double HalfWidth(const obs::Welford& stat, double z) {
  if (stat.count() < 2) return std::numeric_limits<double>::infinity();
  return z * stat.std_error();
}

}  // namespace

size_t CacheKeyHash::operator()(const CacheKey& k) const {
  uint64_t h = obs::FingerprintMix(k.query_fp, k.param_hash);
  h = obs::FingerprintMix(h, k.version);
  return static_cast<size_t>(h);
}

ResultCache::ResultCache() : ResultCache(Options()) {}

ResultCache::ResultCache(Options opts) : opts_(opts) {}

Result<ResultCache::FetchResult> ResultCache::Fetch(
    const CacheKey& key, double target_half_width, uint64_t min_reps,
    uint64_t max_reps, const RepFn& rep_fn) {
  if (min_reps < 2) min_reps = 2;  // a CLT bound needs n >= 2
  if (max_reps < min_reps) max_reps = min_reps;

  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it == map_.end()) {
      entry = std::make_shared<Entry>();
      entry->last_touch_epoch = epoch_;
      map_.emplace(key, entry);
      counters_.entries = map_.size();
      counters_.bytes = map_.size() * kEntryBytes;
      EvictIfNeededLocked();
    } else {
      entry = it->second;
      it->second->last_touch_epoch = epoch_;
    }
  }

  // Per-entry critical section: every concurrent session asking for this
  // key queues here, so each replication index is computed exactly once.
  std::lock_guard<std::mutex> entry_lock(entry->mu);
  const uint64_t cached_reps = entry->stat.count();
  FetchResult out;
  while (entry->stat.count() < max_reps &&
         (entry->stat.count() < min_reps ||
          HalfWidth(entry->stat, opts_.z) > target_half_width)) {
    // Sequential Add at index n keeps the accumulator bit-identical to a
    // single session running reps 0..n-1 itself (no parallel Merge — the
    // merge order would differ from the sequential order).
    Result<double> draw = rep_fn(entry->stat.count());
    if (!draw.ok()) return draw.status();
    entry->stat.Add(draw.value());
    ++out.reps_added;
  }
  out.estimate = entry->stat.mean();
  out.half_width = HalfWidth(entry->stat, opts_.z);
  out.reps = entry->stat.count();
  out.pure_hit = out.reps_added == 0;

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (out.pure_hit) {
      ++counters_.pure_hits;
    } else if (cached_reps > 0) {
      ++counters_.topups;
    } else {
      ++counters_.misses;
    }
    counters_.reps_run += out.reps_added;
    counters_.reps_saved += cached_reps;
    PublishGauges();
  }
  if (out.pure_hit) {
    MDE_OBS_ATTR_ADD(cache_hits, 1);
  }
  return out;
}

void ResultCache::AdvanceEpoch() {
  std::lock_guard<std::mutex> lock(mu_);
  ++epoch_;
}

CacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

void ResultCache::EvictIfNeededLocked() {
  const size_t budget_entries =
      opts_.max_bytes < kEntryBytes ? 1 : opts_.max_bytes / kEntryBytes;
  while (map_.size() > budget_entries) {
    // Highest bytes x staleness score goes first; with O(1) entries the
    // bytes factor is constant, leaving staleness (epochs since last
    // touch) as the score. Never evict an entry touched this epoch — that
    // set includes the entry the current Fetch just created.
    auto victim = map_.end();
    uint64_t victim_age = 0;
    for (auto it = map_.begin(); it != map_.end(); ++it) {
      const uint64_t age = epoch_ - it->second->last_touch_epoch;
      if (age > 0 && (victim == map_.end() || age > victim_age)) {
        victim = it;
        victim_age = age;
      }
    }
    if (victim == map_.end()) break;  // everything is current-epoch
    map_.erase(victim);
    ++counters_.evictions;
    MDE_OBS_COUNT("serve.cache.evictions", 1);
  }
  counters_.entries = map_.size();
  counters_.bytes = map_.size() * kEntryBytes;
}

void ResultCache::PublishGauges() const {
  MDE_OBS_GAUGE_SET("serve.cache.entries",
                    static_cast<double>(counters_.entries));
  MDE_OBS_GAUGE_SET("serve.cache.bytes",
                    static_cast<double>(counters_.bytes));
  MDE_OBS_GAUGE_SET("serve.cache.pure_hits",
                    static_cast<double>(counters_.pure_hits));
  MDE_OBS_GAUGE_SET("serve.cache.reps_saved",
                    static_cast<double>(counters_.reps_saved));
}

}  // namespace mde::serve
