#ifndef MDE_SERVE_MVCC_H_
#define MDE_SERVE_MVCC_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>

#include "simsql/simsql.h"

/// MVCC snapshot layer for the serving milestone: many concurrent reader
/// sessions query one database-valued Markov chain (simsql) while a writer
/// keeps advancing it. Readers pin an immutable version of the whole
/// database (a SimSQL DatabaseState) and compute against it for as long as
/// they like; the writer installs new versions without ever blocking or
/// perturbing a pinned reader. This is snapshot isolation in its simplest
/// honest form — the state is copy-on-write at table granularity (Tables
/// share immutable columnar blocks), a version is never mutated after
/// install, and a pinned read is therefore bit-identical no matter what the
/// writer does concurrently.
///
/// Reclamation is epoch-based with per-version pin counts as ground truth:
/// every install advances the global epoch and retires the previous head;
/// a retired version is reclaimed once (a) its pin count is zero and (b) at
/// least `min_retain` newer versions exist (a grace window for readers that
/// looked up the head version number but have not pinned yet — Pin and
/// Install serialize on the chain mutex, so the window only needs to cover
/// versions, not instructions).
namespace mde::serve {

/// One installed, immutable database version.
struct Version {
  uint64_t number = 0;         // 0, 1, 2, ... (the chain's step index)
  uint64_t install_epoch = 0;  // global epoch at install time
  simsql::DatabaseState state;
};

class VersionChain;

/// Move-only RAII pin on one Version. While any SnapshotRef for a version
/// is alive the VersionChain will not reclaim it; `state()` is valid and
/// immutable for the ref's whole lifetime (and stays valid even if the
/// chain object itself is destroyed first — the ref shares ownership).
class SnapshotRef {
 public:
  SnapshotRef() = default;
  ~SnapshotRef() { Release(); }

  SnapshotRef(SnapshotRef&& other) noexcept : node_(std::move(other.node_)) {
    other.node_.reset();
  }
  SnapshotRef& operator=(SnapshotRef&& other) noexcept {
    if (this != &other) {
      Release();
      node_ = std::move(other.node_);
      other.node_.reset();
    }
    return *this;
  }
  SnapshotRef(const SnapshotRef&) = delete;
  SnapshotRef& operator=(const SnapshotRef&) = delete;

  bool valid() const { return node_ != nullptr; }
  uint64_t version() const;
  const simsql::DatabaseState& state() const;

  /// Drops the pin early (valid() becomes false). Idempotent.
  void Release();

 private:
  friend class VersionChain;
  struct Node;
  explicit SnapshotRef(std::shared_ptr<Node> node) : node_(std::move(node)) {}

  std::shared_ptr<Node> node_;
};

/// The version sequence plus its reclamation machinery. Thread-safe:
/// Install / Pin / PinHead / counters may be called concurrently from any
/// thread (installs of DIFFERENT states may interleave arbitrarily with
/// pins; the caller is responsible for the order of its own installs).
class VersionChain {
 public:
  /// `min_retain` >= 1: number of most-recent versions exempt from
  /// reclamation even when unpinned.
  explicit VersionChain(size_t min_retain = 1);

  VersionChain(const VersionChain&) = delete;
  VersionChain& operator=(const VersionChain&) = delete;

  /// Installs `state` as the next version (numbers are consecutive from 0),
  /// retires the previous head, reclaims what the epoch + pin rules allow,
  /// and returns the new version number.
  uint64_t Install(simsql::DatabaseState state);

  /// Pins the newest version. Invalid ref iff nothing has been installed.
  SnapshotRef PinHead();

  /// Pins version `number`; invalid ref if it was never installed or has
  /// been reclaimed.
  SnapshotRef Pin(uint64_t number);

  /// Number of the newest installed version; kNone before any install.
  static constexpr uint64_t kNone = ~0ull;
  uint64_t head_version() const;

  /// Currently resident (installed, not yet reclaimed) versions.
  size_t live_versions() const;
  /// Versions reclaimed so far.
  uint64_t reclaimed() const { return reclaimed_.load(std::memory_order_relaxed); }
  /// Current global epoch (== number of installs).
  uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }

 private:
  void ReclaimLocked();

  const size_t min_retain_;
  mutable std::mutex mu_;
  /// Oldest first; guarded by mu_. shared_ptr so a pinned node outlives
  /// its removal from the deque (and the chain itself).
  std::deque<std::shared_ptr<SnapshotRef::Node>> nodes_;
  std::atomic<uint64_t> epoch_{0};
  std::atomic<uint64_t> reclaimed_{0};
  uint64_t next_number_ = 0;  // guarded by mu_
};

}  // namespace mde::serve

#endif  // MDE_SERVE_MVCC_H_
