#ifndef MDE_SERVE_CACHE_H_
#define MDE_SERVE_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "obs/stat.h"
#include "util/status.h"

/// CLT-bounded Monte Carlo result cache — the paper's result-caching idea
/// (MCDB Fig. 2) promoted to a shared, multi-session structure. A cached
/// answer is not a number but a SUFFICIENT STATISTIC: the Welford (n, mean,
/// m2) of the per-replication draws, from which mean and CLT half-width
/// z*s/sqrt(n) are recovered at any time. That makes precision negotiable
/// after the fact:
///
///   - a request whose target half-width is LOOSER than the cached bound is
///     a pure hit — zero replications run;
///   - a TIGHTER request spends only the incremental replications, resuming
///     the substream at index n (the cache never re-runs reps it has).
///
/// Bit-identity contract: the value of replication i for a key must be a
/// pure function of (key, i) — the caller's rep_fn derives an Rng substream
/// from them. Top-ups Add draws sequentially in index order, so a
/// cache-assembled answer at n reps is bit-identical to a fresh session
/// running reps 0..n-1 itself. A per-entry mutex serializes top-ups: each
/// replication index is computed exactly once per key, process-wide.
///
/// Keys include the database version (serve/mvcc.h), so advancing the chain
/// naturally starts new entries; old-version entries age out via the
/// bytes x staleness eviction score.
namespace mde::serve {

/// Identity of one cacheable answer.
struct CacheKey {
  uint64_t query_fp = 0;    // query structure (plan/spec fingerprint)
  uint64_t param_hash = 0;  // bound parameter values
  uint64_t version = 0;     // database version the answer is about
  bool operator==(const CacheKey& o) const {
    return query_fp == o.query_fp && param_hash == o.param_hash &&
           version == o.version;
  }
};

struct CacheKeyHash {
  size_t operator()(const CacheKey& k) const;
};

/// Point-in-time counters (monotonic except bytes/entries).
struct CacheStats {
  uint64_t pure_hits = 0;   // answered without running any replication
  uint64_t topups = 0;      // hit the entry but ran incremental reps
  uint64_t misses = 0;      // entry did not exist
  uint64_t reps_run = 0;    // total replications executed through Fetch
  uint64_t reps_saved = 0;  // cached reps reused (sum of n at hit time)
  uint64_t evictions = 0;
  size_t entries = 0;
  size_t bytes = 0;
};

class ResultCache {
 public:
  struct Options {
    /// Resident budget; eviction runs when exceeded. Each entry costs a
    /// fixed ~kEntryBytes (the sufficient statistic is O(1)).
    size_t max_bytes = 1u << 20;
    /// Two-sided normal critical value for the half-width (95% default).
    double z = 1.959964;
  };

  /// Estimated resident cost of one entry (key + Welford + bookkeeping +
  /// hash-table overhead). An estimate, not an accounting identity; it
  /// exists so max_bytes translates into an entry budget.
  static constexpr size_t kEntryBytes = 160;

  ResultCache();
  explicit ResultCache(Options opts);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Runs replication `rep_index` (a pure function of the key and index).
  using RepFn = std::function<Result<double>(uint64_t rep_index)>;

  struct FetchResult {
    double estimate = 0.0;
    double half_width = 0.0;  // z * s / sqrt(n); +inf when n < 2
    uint64_t reps = 0;        // total reps backing the answer
    uint64_t reps_added = 0;  // reps this call executed
    bool pure_hit = false;    // no replication ran
  };

  /// Returns an answer for `key` whose half-width is <= target_half_width
  /// if that is reachable within max_reps, running at most the missing
  /// replications via `rep_fn`. At least min_reps replications always back
  /// the answer (a CLT bound needs n >= 2; callers choose higher floors).
  /// On a rep_fn error the failed rep is not recorded and the error is
  /// returned; reps already recorded stay cached.
  Result<FetchResult> Fetch(const CacheKey& key, double target_half_width,
                            uint64_t min_reps, uint64_t max_reps,
                            const RepFn& rep_fn);

  /// Ages every entry one epoch — call when a new database version is
  /// installed. Staleness (epochs since last touch) scales the eviction
  /// score, so superseded-version entries go first.
  void AdvanceEpoch();

  CacheStats stats() const;

 private:
  struct Entry {
    std::mutex mu;       // serializes top-ups for this key
    obs::Welford stat;   // guarded by mu
    uint64_t last_touch_epoch = 0;  // guarded by the cache mutex
  };

  void EvictIfNeededLocked();
  void PublishGauges() const;  // requires mu_ (reads counters_)

  const Options opts_;
  mutable std::mutex mu_;  // guards map_, epoch_, counters_
  std::unordered_map<CacheKey, std::shared_ptr<Entry>, CacheKeyHash> map_;
  uint64_t epoch_ = 0;
  CacheStats counters_;
};

}  // namespace mde::serve

#endif  // MDE_SERVE_CACHE_H_
