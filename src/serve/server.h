#ifndef MDE_SERVE_SERVER_H_
#define MDE_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/cache.h"
#include "serve/mvcc.h"
#include "simsql/simsql.h"
#include "util/status.h"
#include "util/thread_pool.h"

/// Concurrent multi-session serving front end — the "millions of users"
/// shape from the ROADMAP: most traffic is answered from the shared result
/// cache with an explicit error bar, and only precision-raising traffic
/// spends compute. A Server owns
///
///   - the version chain (serve/mvcc.h) fed by a resumable simsql
///     ChainRunner: AdvanceVersion() realizes the next database version and
///     installs it atomically; readers keep their pinned versions;
///   - the CLT-bounded result cache (serve/cache.h), shared by every
///     session, keyed by (query fingerprint, parameter hash, version);
///   - the registered Monte Carlo queries and the replication seed
///     discipline that makes answers bit-identical across sessions: the
///     Rng for replication i of a key is Substream(derive(seed, key), i),
///     a pure function of key and index.
///
/// Sessions are cheap handles carrying a tag and per-session counters;
/// Session::Execute runs under an obs::QueryScope so /queryz, the profiler,
/// and the flight recorder attribute work to the session. The Server
/// exports /sessionz on any running obs::DiagServer via the handler
/// registry.
namespace mde::serve {

/// One registered Monte Carlo query: replication = eval once against a
/// pinned database version with a dedicated Rng substream. eval MUST be a
/// pure function of (state, params, rng) — no hidden mutable state — or
/// the cache's bit-identity contract breaks.
struct McQuerySpec {
  std::string name;
  std::function<Result<double>(const simsql::DatabaseState& state,
                               const std::map<std::string, double>& params,
                               Rng& rng)>
      eval;
};

/// One client request.
struct Request {
  std::string query;
  /// Bound parameters, hashed into the cache key (order-independent: the
  /// map is sorted by name).
  std::map<std::string, double> params;
  /// Requested precision: the answer's CLT half-width must be <= this, or
  /// max_reps was hit (the answer then reports the honest wider bound).
  double target_half_width = 0.0;
  uint64_t max_reps = 256;
  /// kHead = newest version at execution time; otherwise a pinned read of
  /// that exact version (fails if reclaimed).
  static constexpr uint64_t kHead = ~0ull;
  uint64_t version = kHead;
};

/// One answer; always carries its error bar.
struct Answer {
  double estimate = 0.0;
  double half_width = 0.0;
  uint64_t reps = 0;        // replications backing the estimate
  uint64_t reps_added = 0;  // replications this request actually ran
  uint64_t version = 0;     // database version the answer is about
  bool cache_hit = false;   // answered without running any replication
};

class Server;

/// A client session: a tagged handle over the shared server. Thread-safe
/// only in the usual session sense — one logical client at a time; distinct
/// sessions execute fully concurrently.
class Session {
 public:
  Result<Answer> Execute(const Request& req);

  uint64_t id() const { return id_; }
  const std::string& tag() const { return tag_; }
  uint64_t queries() const { return queries_.load(std::memory_order_relaxed); }
  uint64_t cache_hits() const {
    return cache_hits_.load(std::memory_order_relaxed);
  }
  uint64_t reps_run() const {
    return reps_run_.load(std::memory_order_relaxed);
  }

 private:
  friend class Server;
  Session(Server* server, uint64_t id, std::string tag);

  Server* server_;
  uint64_t id_;
  std::string tag_;
  uint64_t fingerprint_;  // attribution fp: serve.session x id
  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> reps_run_{0};
};

class Server {
 public:
  struct Options {
    /// Base seed for the chain AND the per-key replication substreams.
    uint64_t seed = 0x5e17e5eed;
    /// Replication floor per answer (>= 2; the CLT needs it).
    uint64_t min_reps = 8;
    /// Unpinned versions kept resident behind the head.
    size_t min_retain_versions = 2;
    ResultCache::Options cache;
  };

  /// `db` must outlive the server and must not be mutated externally while
  /// the server runs (the server's ChainRunner owns its evolution).
  Server(simsql::MarkovChainDb& db, Options opts);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Registers a query; name must be unique. Not concurrent with Execute.
  Status AddQuery(McQuerySpec spec);

  /// Realizes and installs version 0. Call once before serving.
  Status Start();

  /// Realizes the next chain version and installs it atomically; readers
  /// holding older versions are unaffected. One writer at a time — calls
  /// serialize internally; concurrent with Execute by design.
  Status AdvanceVersion();

  /// Opens a tagged session. Sessions may outlive the Server's serving
  /// phase but must not Execute after the Server is destroyed.
  std::shared_ptr<Session> OpenSession(std::string tag);

  uint64_t head_version() const { return chain_.head_version(); }
  VersionChain& chain() { return chain_; }
  ResultCache& cache() { return cache_; }
  const Options& options() const { return opts_; }

  /// The /sessionz page body (text). Exposed for tests and for the
  /// registered DiagServer handler.
  std::string RenderSessionz() const;

 private:
  friend class Session;
  Result<Answer> Execute(Session& session, const Request& req);

  simsql::MarkovChainDb& db_;
  const Options opts_;
  VersionChain chain_;
  ResultCache cache_;
  std::unique_ptr<simsql::ChainRunner> runner_;
  std::mutex advance_mu_;  // serializes Start/AdvanceVersion
  std::map<std::string, McQuerySpec> queries_;

  mutable std::mutex sessions_mu_;
  std::vector<std::weak_ptr<Session>> sessions_;  // guarded by sessions_mu_
  std::atomic<uint64_t> next_session_id_{1};
  uint64_t diag_handler_id_ = 0;
};

/// One session's scripted workload for the closed-loop serve driver.
struct SessionWorkload {
  std::string tag;
  std::vector<Request> requests;
};

/// Replays every workload concurrently (one pool task per session; inline
/// when pool is null), preserving per-session request order. Returns the
/// per-session answer vectors, index-aligned with `workloads`; the first
/// error aborts that session's replay and fails the whole call.
Result<std::vector<std::vector<Answer>>> ServeLoop(
    Server& server, const std::vector<SessionWorkload>& workloads,
    ThreadPool* pool);

}  // namespace mde::serve

#endif  // MDE_SERVE_SERVER_H_
