#include "obs/metrics.h"

#include <algorithm>
#include <cstring>
#include <iomanip>
#include <limits>
#include <sstream>

namespace mde::obs {

namespace internal {
namespace {
/// Monotone per-thread index; threads map to shard cells round-robin, so
/// the first kMetricShards live threads are contention-free.
std::atomic<size_t> g_next_thread_index{0};
}  // namespace

size_t ThisThreadShard() {
  thread_local const size_t shard =
      g_next_thread_index.fetch_add(1, std::memory_order_relaxed) &
      (kMetricShards - 1);
  return shard;
}
}  // namespace internal

uint64_t Gauge::ToBits(double v) {
  uint64_t b;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

double Gauge::FromBits(uint64_t b) {
  double v;
  std::memcpy(&v, &b, sizeof(v));
  return v;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), shards_(kMetricShards) {
  for (auto& s : shards_) {
    s.buckets = std::vector<std::atomic<uint64_t>>(bounds_.size() + 1);
  }
}

void Histogram::Observe(double v) {
  const size_t b = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  Shard& s = shards_[internal::ThisThreadShard()];
  s.buckets[b].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  // Accumulate the double sum with a CAS loop on the shard's bit cell;
  // contention is already divided across shards.
  uint64_t old = s.sum_bits.load(std::memory_order_relaxed);
  while (true) {
    double d;
    std::memcpy(&d, &old, sizeof(d));
    d += v;
    uint64_t desired;
    std::memcpy(&desired, &d, sizeof(desired));
    if (s.sum_bits.compare_exchange_weak(old, desired,
                                         std::memory_order_relaxed)) {
      break;
    }
  }
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> out(bounds_.size() + 1, 0);
  for (const auto& s : shards_) {
    for (size_t i = 0; i < out.size(); ++i) {
      out[i] += s.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return out;
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const auto& s : shards_) {
    total += s.count.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Sum() const {
  double total = 0.0;
  for (const auto& s : shards_) {
    const uint64_t b = s.sum_bits.load(std::memory_order_relaxed);
    double d;
    std::memcpy(&d, &b, sizeof(d));
    total += d;
  }
  return total;
}

std::vector<double> ExponentialBounds(size_t n) {
  std::vector<double> out;
  out.reserve(n);
  double b = 1.0;
  for (size_t i = 0; i < n; ++i, b *= 2.0) out.push_back(b);
  return out;
}

Registry& Registry::Global() {
  // Leaked singleton: metric pointers cached in function-local statics at
  // call sites must outlive every other static destructor.
  static Registry* r = new Registry();
  return *r;
}

Counter* Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::histogram(const std::string& name,
                               std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(std::move(bounds));
  } else if (slot->bounds() != bounds) {
    // First registration wins; count the conflict so mismatched bucket
    // layouts at different call sites are visible instead of silent.
    // mu_ is non-recursive, so bump the counter via the map directly
    // rather than re-entering counter().
    auto& conflict = counters_["obs.histogram.bounds_conflict"];
    if (conflict == nullptr) conflict = std::make_unique<Counter>();
    conflict->Add(1);
  }
  return slot.get();
}

std::vector<MetricSnapshot> Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSnapshot> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    MetricSnapshot m;
    m.name = name;
    m.kind = MetricSnapshot::Kind::kCounter;
    m.value = static_cast<double>(c->Value());
    out.push_back(std::move(m));
  }
  for (const auto& [name, g] : gauges_) {
    MetricSnapshot m;
    m.name = name;
    m.kind = MetricSnapshot::Kind::kGauge;
    m.value = g->Value();
    out.push_back(std::move(m));
  }
  for (const auto& [name, h] : histograms_) {
    MetricSnapshot m;
    m.name = name;
    m.kind = MetricSnapshot::Kind::kHistogram;
    m.value = h->Sum();
    m.count = h->Count();
    m.bounds = h->bounds();
    m.buckets = h->BucketCounts();
    out.push_back(std::move(m));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

std::string Registry::TextDump() const {
  std::ostringstream os;
  // Round-trip precision: parsing a dumped gauge back recovers the exact
  // stored double (default ostream precision truncates to 6 digits).
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (const MetricSnapshot& m : Snapshot()) {
    switch (m.kind) {
      case MetricSnapshot::Kind::kCounter:
        os << m.name << " " << static_cast<uint64_t>(m.value) << "\n";
        break;
      case MetricSnapshot::Kind::kGauge:
        os << m.name << " " << m.value << "\n";
        break;
      case MetricSnapshot::Kind::kHistogram:
        os << m.name << " count=" << m.count << " sum=" << m.value << "\n";
        break;
    }
  }
  return os.str();
}

}  // namespace mde::obs
