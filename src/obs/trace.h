#ifndef MDE_OBS_TRACE_H_
#define MDE_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

/// Scoped tracing for the mde engine (EFECT's argument: a stochastic-
/// simulation run is only comparable to another run if it is instrumented
/// enough to see what it did). `MDE_TRACE_SPAN("vec.hash_join")` opens an
/// RAII span; completed spans land in a per-thread ring buffer and are
/// exported either as Chrome trace-event JSON (load chrome://tracing or
/// https://ui.perfetto.dev) or as a plain-text flame summary.
///
/// Cost model: tracing is globally OFF by default — a span on a disabled
/// tracer is one relaxed atomic load and a branch. When enabled, a span is
/// two steady_clock reads plus one short critical section on a mutex owned
/// by the recording thread's buffer (spans wrap operator-granularity work,
/// micro- to milliseconds, so this never shows up in profiles). Ring
/// buffers keep the NEWEST events: a long benchmark run retains its final
/// iteration(s), which is exactly what --mde_trace_out wants. Span names
/// must be string literals (storage is never copied).
///
/// Determinism: spans observe the clock and write to side-band buffers
/// only; enabling tracing cannot change any engine output.
namespace mde::obs {

/// A completed span. `ts_ns`/`dur_ns` come from steady_clock; `tid` is a
/// small sequential id assigned per recording thread; `depth` is the
/// span-nesting depth on that thread at open time (0 = top level).
/// `trace_id` groups all spans of one query (0 = outside any query);
/// `span_id`/`parent_span_id` form the causal tree — the parent may live on
/// a DIFFERENT thread when the task was stolen or help-run, which is
/// exactly what the context-propagation layer (obs/context.h) preserves.
struct TraceEvent {
  const char* name = nullptr;
  uint64_t ts_ns = 0;
  uint64_t dur_ns = 0;
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  uint32_t tid = 0;
  uint32_t depth = 0;
};

/// Monotonic nanoseconds (steady_clock).
uint64_t NowNanos();

class Tracer {
 public:
  static Tracer& Global();

  /// Ring capacity per recording thread, in events.
  static constexpr size_t kRingCapacity = 1 << 14;

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Appends a completed span to the calling thread's ring.
  void Record(const char* name, uint64_t ts_ns, uint64_t dur_ns,
              uint32_t depth, uint64_t trace_id = 0, uint64_t span_id = 0,
              uint64_t parent_span_id = 0);

  /// Names the calling thread's lane in Chrome trace output ("worker-3",
  /// "driver"); copies `name`. Unnamed threads render as "thread-<tid>".
  void SetCurrentThreadName(const std::string& name);

  /// Drains a copy of every thread's retained events, oldest-first within a
  /// thread, sorted globally by start time. Includes events recorded by
  /// threads that have since exited.
  std::vector<TraceEvent> Collect() const;

  /// Total events ever recorded / events evicted by ring wrap-around.
  uint64_t recorded() const { return recorded_.load(std::memory_order_relaxed); }
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  /// Discards all retained events (buffers stay registered).
  void Clear();

  /// Chrome trace-event JSON: {"traceEvents":[...]} with complete ("ph":
  /// "X") events, timestamps in microseconds relative to the earliest
  /// retained event. Leads with "ph":"M" metadata naming the process and
  /// every recording thread's lane; spans carry trace/span ids in "args",
  /// and cross-thread parent->child edges emit flow events ("ph":"s"/"f")
  /// so Perfetto draws arrows across stolen tasks.
  std::string ChromeTraceJson() const;
  void WriteChromeTrace(std::ostream& os) const;

  /// Plain-text flame summary: per span name, call count, inclusive and
  /// self wall time (self = inclusive minus same-thread child spans),
  /// sorted by self time descending.
  std::string FlameSummary() const;

 private:
  struct ThreadBuffer;

  Tracer() = default;
  ThreadBuffer* BufferForThisThread();

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> recorded_{0};
  std::atomic<uint64_t> dropped_{0};
  mutable std::mutex mu_;  // guards buffers_ registration and collection
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// RAII span. Open/close cost when the tracer is disabled AND no query
/// context is active: one relaxed load plus one thread-local read. A span
/// under an active query context is additionally recorded in the crash
/// flight recorder (obs/flight.h) at open and threads its span id through
/// the context so children — on any thread — know their parent.
class SpanGuard {
 public:
  explicit SpanGuard(const char* name);
  ~SpanGuard();

  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
  const char* name_;
  uint64_t start_ns_ = 0;
  uint64_t trace_id_ = 0;
  uint64_t span_id_ = 0;
  uint64_t parent_span_id_ = 0;
  uint32_t depth_ = 0;
  bool active_ = false;
  bool traced_ = false;
};

/// Names the calling thread everywhere it appears: Chrome trace lanes and
/// flight-recorder dumps. Copies `name`; call once per thread (workers call
/// it on start; the first QueryScope on an unnamed thread applies
/// "driver").
void SetCurrentThreadName(const std::string& name);
/// SetCurrentThreadName(fallback) if this thread was never named (cheap:
/// one thread-local check).
void EnsureCurrentThreadNamed(const char* fallback);

}  // namespace mde::obs

#ifndef MDE_OBS_DISABLED

#define MDE_OBS_CONCAT_INNER(a, b) a##b
#define MDE_OBS_CONCAT(a, b) MDE_OBS_CONCAT_INNER(a, b)
/// Opens a span covering the rest of the enclosing scope. `name` must be a
/// string literal (or otherwise outlive the tracer).
#define MDE_TRACE_SPAN(name) \
  ::mde::obs::SpanGuard MDE_OBS_CONCAT(_mde_trace_span_, __LINE__)(name)

#else  // MDE_OBS_DISABLED

#define MDE_TRACE_SPAN(name) \
  do {                       \
  } while (0)

#endif  // MDE_OBS_DISABLED

#endif  // MDE_OBS_TRACE_H_
