#include "obs/stat.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/metrics.h"

namespace mde::obs {

namespace {

/// Resolves a gauge handle, or nullptr for the empty name / disabled build.
Gauge* MaybeGauge(const std::string& name) {
#ifndef MDE_OBS_DISABLED
  if (!name.empty()) return Registry::Global().gauge(name);
#else
  (void)name;
#endif
  return nullptr;
}

}  // namespace

void Welford::Add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void Welford::Merge(const Welford& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  n_ += other.n_;
}

double Welford::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Welford::stddev() const { return std::sqrt(variance()); }

double Welford::std_error() const {
  return n_ > 1 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

P2Quantile::P2Quantile(double p) : p_(p) {
  for (int i = 0; i < 5; ++i) {
    q_[i] = 0.0;
    pos_[i] = static_cast<double>(i + 1);
  }
  des_[0] = 1.0;
  des_[1] = 1.0 + 2.0 * p;
  des_[2] = 1.0 + 4.0 * p;
  des_[3] = 3.0 + 2.0 * p;
  des_[4] = 5.0;
  inc_[0] = 0.0;
  inc_[1] = p / 2.0;
  inc_[2] = p;
  inc_[3] = (1.0 + p) / 2.0;
  inc_[4] = 1.0;
}

void P2Quantile::Add(double x) {
  if (n_ < 5) {
    q_[n_++] = x;
    if (n_ == 5) std::sort(q_, q_ + 5);
    return;
  }
  // Locate the cell and update the extreme markers.
  int k;
  if (x < q_[0]) {
    q_[0] = x;
    k = 0;
  } else if (x >= q_[4]) {
    q_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= q_[k + 1]) ++k;
  }
  ++n_;
  for (int i = k + 1; i < 5; ++i) pos_[i] += 1.0;
  for (int i = 0; i < 5; ++i) des_[i] += inc_[i];
  // Adjust the interior markers toward their desired positions.
  for (int i = 1; i <= 3; ++i) {
    const double d = des_[i] - pos_[i];
    if ((d >= 1.0 && pos_[i + 1] - pos_[i] > 1.0) ||
        (d <= -1.0 && pos_[i - 1] - pos_[i] < -1.0)) {
      const double s = d >= 0.0 ? 1.0 : -1.0;
      // Piecewise-parabolic (P²) height prediction.
      const double qp =
          q_[i] +
          s / (pos_[i + 1] - pos_[i - 1]) *
              ((pos_[i] - pos_[i - 1] + s) * (q_[i + 1] - q_[i]) /
                   (pos_[i + 1] - pos_[i]) +
               (pos_[i + 1] - pos_[i] - s) * (q_[i] - q_[i - 1]) /
                   (pos_[i] - pos_[i - 1]));
      if (q_[i - 1] < qp && qp < q_[i + 1]) {
        q_[i] = qp;
      } else {
        // Parabolic prediction would break monotonicity: fall back linear.
        const int j = i + static_cast<int>(s);
        q_[i] += s * (q_[j] - q_[i]) / (pos_[j] - pos_[i]);
      }
      pos_[i] += s;
    }
  }
}

P2Quantile::State P2Quantile::state() const {
  State s;
  s.n = n_;
  for (int i = 0; i < 5; ++i) {
    s.q[i] = q_[i];
    s.pos[i] = pos_[i];
    s.des[i] = des_[i];
  }
  return s;
}

void P2Quantile::set_state(const State& s) {
  n_ = s.n;
  for (int i = 0; i < 5; ++i) {
    q_[i] = s.q[i];
    pos_[i] = s.pos[i];
    des_[i] = s.des[i];
  }
  // inc_ is a pure function of p and is untouched by Add; nothing to
  // restore.
}

double P2Quantile::Value() const {
  if (n_ == 0) return 0.0;
  if (n_ <= 5) {
    // Exact small-sample quantile over the sorted prefix. n == 5 included:
    // at that point the markers ARE the sorted sample but have not adapted
    // toward p yet, so the middle marker q_[2] would be returned for every
    // p — garbage for tail quantiles (p = 0.05 of {1,3,5,7,9} is ~1.4, not
    // 5). Interpolating the sorted sample is exact there.
    double sorted[5];
    std::copy(q_, q_ + n_, sorted);
    std::sort(sorted, sorted + n_);
    const double rank = p_ * static_cast<double>(n_ - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = std::min<size_t>(lo + 1, n_ - 1);
    return sorted[lo] + (rank - static_cast<double>(lo)) *
                            (sorted[hi] - sorted[lo]);
  }
  return q_[2];
}

CiMonitor::CiMonitor(const std::string& gauge_name, double z)
    : z_(z),
      gauge_(MaybeGauge(gauge_name)),
      n_gauge_(MaybeGauge(gauge_name.empty() ? "" : gauge_name + ".n")) {}

void CiMonitor::Add(double x) {
  stat_.Add(x);
  if (gauge_ != nullptr) {
    // Exporters (Prometheus text, the JSONL sampler) expect finite gauge
    // values; the infinite pre-CLT half-width stays in-process.
    if (stat_.count() >= 2) gauge_->Set(half_width());
    n_gauge_->Set(static_cast<double>(stat_.count()));
  }
}

double CiMonitor::half_width() const {
  if (stat_.count() < 2) return std::numeric_limits<double>::infinity();
  return z_ * stat_.std_error();
}

ConvergenceMonitor::ConvergenceMonitor(const std::string& name, size_t window,
                                       double rel_tol, double diverge_factor)
    : window_(window),
      rel_tol_(rel_tol),
      diverge_factor_(diverge_factor),
      verdict_gauge_(MaybeGauge(name.empty() ? "" : "obs.health." + name)),
      loss_gauge_(MaybeGauge(name.empty() ? "" : name + ".loss")) {}

ConvergenceMonitor::Verdict ConvergenceMonitor::Add(double loss) {
  ++n_;
  // Divergence is sticky: once a solve blows up it stays failed.
  if (verdict_ != Verdict::kDiverged) {
    if (!std::isfinite(loss) ||
        (n_ > 1 && loss > diverge_factor_ * best_ + 1e-9)) {
      verdict_ = Verdict::kDiverged;
    } else {
      if (n_ == 1 || loss < best_ * (1.0 - rel_tol_)) {
        best_ = loss;
        since_improvement_ = 0;
      } else {
        ++since_improvement_;
      }
      verdict_ = since_improvement_ >= window_ ? Verdict::kStalled
                                               : Verdict::kImproving;
    }
  }
  Publish(loss);
  return verdict_;
}

void ConvergenceMonitor::Publish(double loss) {
  if (verdict_gauge_ != nullptr) {
    verdict_gauge_->Set(static_cast<double>(verdict_));
    loss_gauge_->Set(loss);
  }
}

const char* ConvergenceMonitor::VerdictName(Verdict v) {
  switch (v) {
    case Verdict::kImproving:
      return "improving";
    case Verdict::kStalled:
      return "stalled";
    case Verdict::kDiverged:
      return "diverged";
  }
  return "unknown";
}

}  // namespace mde::obs
