#ifndef MDE_OBS_CONTEXT_H_
#define MDE_OBS_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

/// Query-scoped observability: a causal context (trace id, span id, query
/// fingerprint) carried in a thread-local slot and propagated across
/// ThreadPool::Submit / ParallelFor task boundaries, so every span and every
/// attributed resource — no matter which worker stole the task — lands on
/// the query that caused it. EFECT's instrumentation argument (PAPERS.md)
/// applied to a SHARED engine: aggregate counters say what the process did;
/// the attribution table says which query burned the draws/bytes/cpu-ns.
///
/// Three pieces:
///
///  * `Context` + `QueryScope`: engine entry points (ExecutePlan,
///    GenerateBundles(Where), SimSQL chain steps, the SMC/DSGD drivers) open
///    a QueryScope tagged with a stable fingerprint. If a context is already
///    active the scope ADOPTS it (a chain step's inner table query
///    attributes to the chain, not to itself); otherwise it installs a fresh
///    trace id and acquires a QueryStats slot.
///  * `ContextGuard`: restores a captured context inside a pool task. The
///    pool captures `CurrentContext()` at Submit time and the executing
///    worker — including thieves and help-runners — installs it for the
///    task's duration, so causality survives work stealing.
///  * `QueryStats` / `AttributionTable`: bounded per-fingerprint accumulator
///    (rows in/out, VG draws, bundle bytes, cpu-ns self time, cache hits)
///    exported via Prometheus labels and the JSONL sampler.
///
/// cpu-ns accounting: each timed scope (QueryScope root or pool-task
/// ContextGuard) records wall time MINUS the wall time of timed scopes
/// nested on the SAME thread (a thread-local child ledger), so a driver that
/// help-runs its own query's tasks never double-counts. The per-query total
/// is therefore the sum of disjoint per-thread segments. The identical
/// value is added to the global `attr.cpu_ns` counter, which is what the
/// reconciliation test compares against.
///
/// Determinism: contexts ride alongside tasks and are write-only side-band
/// state — nothing in a kernel reads them — so enabling attribution cannot
/// change any engine output. All macros compile out under MDE_OBS_DISABLED;
/// the classes stay linkable.
namespace mde::obs {

/// Per-query resource accumulator. Stable address for the process lifetime
/// (slots are recycled on eviction, never freed); fields are relaxed
/// atomics so any worker can add without coordination.
struct QueryStats {
  std::atomic<uint64_t> cpu_ns{0};
  std::atomic<uint64_t> tasks{0};
  std::atomic<uint64_t> spans{0};
  std::atomic<uint64_t> rows_in{0};
  std::atomic<uint64_t> rows_out{0};
  std::atomic<uint64_t> vg_draws{0};
  std::atomic<uint64_t> bundle_bytes{0};
  std::atomic<uint64_t> cache_hits{0};
};

/// The causal context: who is asking. `trace_id` groups every span of one
/// query across all workers; `span_id` is the innermost open span on the
/// current path (the parent for spans opened next); `fingerprint`/`tag`
/// identify the query shape for attribution. Plain value type — capturing
/// it into a task copies five words.
struct Context {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t fingerprint = 0;
  const char* tag = nullptr;  // string literal, e.g. "table.query"
  QueryStats* stats = nullptr;

  bool active() const { return trace_id != 0; }
};

/// The calling thread's current context (inactive default outside any
/// QueryScope / ContextGuard).
const Context& CurrentContext();

/// Runtime kill switch for query attribution. When off, QueryScope installs
/// nothing (no trace id, no stats slot), so every downstream MDE_OBS_ATTR_ADD
/// and context-gated span sees an inactive context and takes its cheap path.
/// Defaults to on; `MDE_OBS_ATTR=0|off` in the environment flips the startup
/// default. Because the switch is consulted only at scope-open time, toggling
/// it mid-query affects the NEXT query, never a running one — and it is the
/// lever the same-binary overhead guard in BENCH_obs.json uses to price the
/// context layer without cross-binary code-layout noise.
bool AttributionEnabled();
void SetAttributionEnabled(bool on);

namespace internal {
/// Mutable access for SpanGuard's parent-span bookkeeping.
Context& MutableCurrentContext();
/// Process-unique nonzero id (trace and span ids share the sequence).
uint64_t NextId();
/// Same-thread child-wall-time ledger used by the timed scopes.
uint64_t ExchangeChildNs(uint64_t v);
void AddChildNs(uint64_t ns);
/// Installs `ctx` as the thread's current context (and mirrors it into the
/// flight recorder's per-thread slot); returns the previous context.
Context Install(const Context& ctx);
}  // namespace internal

/// FNV-1a 64-bit over a byte string — the fingerprint helper for engines
/// whose identity is a name (chain spec names, bundle table + VG shape).
uint64_t FingerprintString(const std::string& s);
/// Mixes an integer into a fingerprint (seed, rep count, ...).
uint64_t FingerprintMix(uint64_t fp, uint64_t v);

/// Restores a captured context for the duration of a pool task, timing the
/// task's self wall time into the context's QueryStats when attribution is
/// active. Used by ThreadPool; also usable by any hand-rolled worker.
class ContextGuard {
 public:
  explicit ContextGuard(const Context& ctx);
  ~ContextGuard();

  ContextGuard(const ContextGuard&) = delete;
  ContextGuard& operator=(const ContextGuard&) = delete;

 private:
  Context prev_;
  uint64_t start_ns_ = 0;
  uint64_t saved_child_ns_ = 0;
  bool timed_ = false;
};

/// Root scope opened by an engine entry point. Creates a fresh context
/// (new trace id, QueryStats slot for `fingerprint`) unless one is already
/// active, in which case it adopts the outer query and does nothing else.
class QueryScope {
 public:
  QueryScope(const char* tag, uint64_t fingerprint);
  ~QueryScope();

  QueryScope(const QueryScope&) = delete;
  QueryScope& operator=(const QueryScope&) = delete;

  /// True when an outer context was already active (nothing was installed).
  bool adopted() const { return adopted_; }

 private:
  bool adopted_ = false;
  Context prev_;
  uint64_t start_ns_ = 0;
  uint64_t saved_child_ns_ = 0;
};

/// Bounded per-fingerprint attribution table. At most kMaxEntries distinct
/// fingerprints are tracked; acquiring a new fingerprint on a full table
/// evicts the least-recently-acquired entry and RECYCLES its slot (counters
/// zeroed). A query still running when its slot is recycled keeps writing
/// into the recycled slot — bounded misattribution under fingerprint-
/// cardinality pressure, by design: the table can never grow without bound
/// no matter how many distinct queries a serving process sees. Evictions
/// are counted on `attr.evictions`.
class AttributionTable {
 public:
  static AttributionTable& Global();

  static constexpr size_t kMaxEntries = 256;

  /// Returns the stats slot for `fingerprint`, creating (or evicting +
  /// recycling) as needed. `tag` is recorded on first acquire.
  QueryStats* Acquire(uint64_t fingerprint, const char* tag);

  /// One exported row (counters read relaxed at snapshot time).
  struct Row {
    uint64_t fingerprint = 0;
    std::string tag;
    uint64_t cpu_ns = 0;
    uint64_t tasks = 0;
    uint64_t spans = 0;
    uint64_t rows_in = 0;
    uint64_t rows_out = 0;
    uint64_t vg_draws = 0;
    uint64_t bundle_bytes = 0;
    uint64_t cache_hits = 0;
  };
  /// All live entries, highest cpu-ns first.
  std::vector<Row> Snapshot() const;

  size_t size() const;
  uint64_t evictions() const;

  /// Drops all keyed entries and zeroes recycled slots (tests only; slots
  /// handed out earlier remain valid writable memory).
  void Reset();

 private:
  struct Entry {
    uint64_t fingerprint = 0;
    std::string tag;
    uint64_t last_acquire = 0;
    QueryStats stats;
  };

  AttributionTable() = default;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> slots_;
  /// Slots owned by slots_ but not currently keyed in by_fp_ (only ever
  /// populated by Reset); reused before allocating or evicting.
  std::vector<Entry*> free_slots_;
  std::map<uint64_t, Entry*> by_fp_;
  uint64_t acquire_epoch_ = 0;
  uint64_t evictions_ = 0;
};

/// Hex "0x..." rendering of a fingerprint, the label value used by the
/// Prometheus exporter, the JSONL sampler, and mde_report.
std::string FingerprintHex(uint64_t fingerprint);

}  // namespace mde::obs

#ifndef MDE_OBS_DISABLED

#ifndef MDE_OBS_CONCAT
#define MDE_OBS_CONCAT_INNER(a, b) a##b
#define MDE_OBS_CONCAT(a, b) MDE_OBS_CONCAT_INNER(a, b)
#endif

/// Opens a query scope covering the rest of the enclosing block. `tag` must
/// be a string literal; `fp` is any uint64 fingerprint expression (not
/// evaluated under MDE_OBS_DISABLED).
#define MDE_OBS_QUERY_SCOPE(tag, fp) \
  ::mde::obs::QueryScope MDE_OBS_CONCAT(_mde_obs_qscope_, __LINE__)((tag), (fp))

/// Adds `n` to the active query's `field` accumulator (no-op when no query
/// context is active). `field` is a QueryStats member name.
#define MDE_OBS_ATTR_ADD(field, n)                                     \
  do {                                                                 \
    ::mde::obs::QueryStats* _mde_obs_qs =                              \
        ::mde::obs::CurrentContext().stats;                            \
    if (_mde_obs_qs != nullptr) {                                      \
      _mde_obs_qs->field.fetch_add(static_cast<uint64_t>(n),           \
                                   std::memory_order_relaxed);         \
    }                                                                  \
  } while (0)

#else  // MDE_OBS_DISABLED

#define MDE_OBS_QUERY_SCOPE(tag, fp) \
  do {                               \
    (void)sizeof((fp));              \
  } while (0)

#define MDE_OBS_ATTR_ADD(field, n) \
  do {                             \
    (void)sizeof((n));             \
  } while (0)

#endif  // MDE_OBS_DISABLED

#endif  // MDE_OBS_CONTEXT_H_
